// Quickstart: build a uniform BBC game, run best-response dynamics, and
// inspect the outcome.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bbc/internal/analysis"
	"bbc/internal/core"
	"bbc/internal/dynamics"
)

func main() {
	// A (12, 2)-uniform BBC game: 12 players, each buying 2 unit-cost
	// links, all players equally interested in all others.
	spec, err := core.NewUniform(12, 2)
	if err != nil {
		log.Fatal(err)
	}

	// Start from the empty network and let players take turns playing
	// exact best responses (round-robin).
	res, err := dynamics.Run(spec, core.NewEmptyProfile(spec.N()),
		dynamics.NewRoundRobin(spec.N()), core.SumDistances,
		dynamics.Options{DetectLoops: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("after %d steps (%d rewirings):\n", res.Steps, res.Moves)
	switch {
	case res.Converged:
		fmt.Println("  the walk converged to a pure Nash equilibrium")
	case res.Loop != nil:
		fmt.Printf("  the walk entered a best-response loop of %d moves\n", len(res.Loop.Moves))
		fmt.Println("  (uniform BBC games are not potential games — Figure 4 of the paper)")
	default:
		fmt.Println("  the walk exhausted its step budget")
	}

	// Verify the claim independently with the exact equilibrium checker.
	if res.Converged {
		stable, err := core.IsEquilibrium(spec, res.Final, core.SumDistances)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  exact stability check agrees: %v\n", stable)
	}

	// Inspect the final network.
	fair := analysis.MeasureFairness(spec, res.Final, core.SumDistances)
	diam := analysis.MeasureDiameter(spec, res.Final)
	fmt.Printf("final network: social cost %d, cost spread %d..%d (ratio %.2f)\n",
		core.SocialCost(spec, res.Final, core.SumDistances), fair.Min, fair.Max, fair.Ratio)
	fmt.Printf("               diameter %d, strongly connected %v\n",
		diam.Diameter, diam.StronglyConnected)
	fmt.Printf("               connectivity was reached at step %d (Theorem 6 bound: n² = %d)\n",
		res.ConnectivityStep, spec.N()*spec.N())

	// Each node's strategy in the final profile.
	for u, s := range res.Final {
		fmt.Printf("  node %2d buys links to %v\n", u, []int(s))
	}
}
