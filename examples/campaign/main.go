// Campaign: the paper's opening motivation — a campaign manager with a
// limited budget placing connections into a network of political
// operatives to maximize influence (minimize preference-weighted distance
// to the voters that matter), while the operatives keep rewiring for their
// own agendas. The candidate's placement problem is exactly a constrained
// best response, and the Oracle exposes the exact, greedy and local-search
// solvers for it.
//
// Run with: go run ./examples/campaign
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bbc/internal/core"
	"bbc/internal/dynamics"
)

const (
	operatives = 14 // nodes 1..14 are operatives; node 0 is the candidate
	n          = operatives + 1
	candidate  = 0
)

func main() {
	rng := rand.New(rand.NewSource(23))
	spec := buildCampaignGame(rng)
	fmt.Printf("campaign: 1 candidate (budget %d) + %d operatives (budget 1)\n",
		spec.Budgets[candidate], operatives)

	// Let the operative network churn for a while without the candidate.
	p := dynamics.RandomStart(rng, n, 1)
	p[candidate] = core.Strategy{}
	res, err := dynamics.Run(spec, p, dynamics.NewRoundRobin(n), core.SumDistances,
		dynamics.Options{MaxSteps: 2000, BR: core.Options{Method: core.GreedySwap}})
	if err != nil {
		log.Fatal(err)
	}
	p = res.Final
	p[candidate] = core.Strategy{} // the candidate has not campaigned yet

	// Now the placement question: where should the candidate spend its
	// budget? Compare the three solvers on the same snapshot.
	g := p.Realize(spec)
	oracle := core.NewOracle(spec, g, candidate, core.SumDistances)

	exact, exactCost, err := oracle.BestExact(0)
	if err != nil {
		log.Fatal(err)
	}
	greedy, greedyCost := oracle.BestGreedy()
	swapped, swappedCost := oracle.ImproveBySwaps(greedy, 50)

	fmt.Printf("placement (lower weighted remoteness is better):\n")
	fmt.Printf("  exact k-median:  %v -> influence cost %d\n", []int(exact), exactCost)
	fmt.Printf("  greedy:          %v -> influence cost %d\n", []int(greedy), greedyCost)
	fmt.Printf("  greedy + swaps:  %v -> influence cost %d\n", []int(swapped), swappedCost)
	fmt.Printf("  doing nothing:   influence cost %d\n", oracle.Evaluate(core.Strategy{}))

	// Commit the exact placement and let the ecosystem respond: do the
	// operatives' rewires erode the candidate's position?
	p[candidate] = exact
	res2, err := dynamics.Run(spec, p, dynamics.NewRoundRobin(n), core.SumDistances,
		dynamics.Options{MaxSteps: 2000, BR: core.Options{Method: core.GreedySwap}})
	if err != nil {
		log.Fatal(err)
	}
	after := core.NodeCost(spec, res2.Final.Realize(spec), candidate, core.SumDistances)
	fmt.Printf("after the field reacts (%d rewirings): candidate influence cost %d\n",
		res2.Moves, after)
	dev, err := core.NodeDeviation(spec, res2.Final.Realize(spec), res2.Final, candidate,
		core.SumDistances, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if dev == nil {
		fmt.Println("the placement is still a best response — no re-buy needed")
	} else {
		fmt.Printf("worth re-buying: %v would improve cost %d -> %d\n",
			[]int(dev.Strategy), dev.OldCost, dev.NewCost)
	}
}

// buildCampaignGame gives the candidate budget 3 and high preference for a
// few "swing" operatives, moderate preference for the rest; operatives
// mostly care about their faction peers.
func buildCampaignGame(rng *rand.Rand) *core.Dense {
	d := core.NewDense(n)
	d.Budgets[candidate] = 3
	swing := rng.Perm(operatives)[:4]
	for v := 1; v < n; v++ {
		d.Weights[candidate][v] = 1
	}
	for _, s := range swing {
		d.Weights[candidate][s+1] = 6
	}
	for u := 1; u < n; u++ {
		d.Budgets[u] = 1
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			switch {
			case v == candidate:
				d.Weights[u][v] = 2 // everyone keeps an eye on the candidate
			case (u-1)%3 == (v-1)%3:
				d.Weights[u][v] = 3 // faction peers
			default:
				d.Weights[u][v] = 1
			}
		}
	}
	return d.MustSeal()
}
