// Overlay: the paper's peer-to-peer motivation (Section 1.1). Peers in an
// overlay network have bounded out-degree, heterogeneous link latencies
// (link lengths) and interest in only a subset of other peers (the
// Halevi–Mansour flavor the paper cites). Each peer selfishly rewires its
// neighbor set to minimize its interest-weighted latency; we watch whether
// selfish neighbor selection finds a stable overlay and how far it lands
// from a socially planned one.
//
// Run with: go run ./examples/overlay
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bbc/internal/core"
	"bbc/internal/dynamics"
)

const (
	peers      = 16
	outDegree  = 3
	interested = 5 // each peer cares about this many others
)

func main() {
	rng := rand.New(rand.NewSource(7))
	spec := buildOverlayGame(rng)

	fmt.Printf("overlay: %d peers, out-degree budget %d, %d interests per peer, latencies 1..9\n",
		peers, outDegree, interested)

	// Selfish neighbor selection: random initial overlay, round-robin
	// exact best responses.
	start := dynamics.RandomStart(rng, peers, outDegree)
	res, err := dynamics.Run(spec, start, dynamics.NewRoundRobin(peers), core.SumDistances,
		dynamics.Options{MaxSteps: 4000, DetectLoops: true})
	if err != nil {
		log.Fatal(err)
	}
	switch {
	case res.Converged:
		fmt.Printf("selfish rewiring converged after %d rewirings\n", res.Moves)
	case res.Loop != nil:
		fmt.Printf("selfish rewiring entered a loop after %d rewirings (no stable overlay on this path)\n", res.Moves)
	default:
		fmt.Printf("selfish rewiring still churning after %d steps\n", res.Steps)
	}

	selfish := core.SocialCost(spec, res.Final, core.SumDistances)
	fmt.Printf("selfish overlay: social latency %d (started at %d)\n",
		selfish, core.SocialCost(spec, start, core.SumDistances))

	// A crude "planned" overlay for comparison: every peer greedily links
	// its best targets as if it were alone on a fresh graph seeded by a
	// latency-sorted ring (a designer's static heuristic).
	planned := plannedOverlay(spec)
	fmt.Printf("planned overlay: social latency %d\n", core.SocialCost(spec, planned, core.SumDistances))

	// Per-peer view: worst-served peers under selfish rewiring.
	costs := core.CostVector(spec, res.Final, core.SumDistances)
	worst, worstCost := 0, int64(0)
	for u, c := range costs {
		if c > worstCost {
			worst, worstCost = u, c
		}
	}
	fmt.Printf("worst-served peer: %d with interest-weighted latency %d\n", worst, worstCost)
}

// buildOverlayGame makes a Dense spec: latencies (lengths) uniform in
// 1..9, each peer interested (weight 2) in a random subset plus mildly
// (weight 1) in everyone else so the overlay must stay connected.
func buildOverlayGame(rng *rand.Rand) *core.Dense {
	d := core.NewDense(peers)
	for u := 0; u < peers; u++ {
		d.Budgets[u] = outDegree
		for v := 0; v < peers; v++ {
			if u == v {
				continue
			}
			d.Lengths[u][v] = int64(1 + rng.Intn(9))
			d.Weights[u][v] = 1
		}
		for _, v := range rng.Perm(peers)[:interested+1] {
			if v != u {
				d.Weights[u][v] = 4
			}
		}
	}
	d.M = int64(peers)*9*10 + 1
	return d.MustSeal()
}

// plannedOverlay links each peer to its `outDegree` lowest-latency
// interesting targets — the static design a non-game-aware operator might
// ship.
func plannedOverlay(spec *core.Dense) core.Profile {
	p := core.NewEmptyProfile(peers)
	for u := 0; u < peers; u++ {
		type cand struct {
			v     int
			score int64
		}
		cands := make([]cand, 0, peers-1)
		for v := 0; v < peers; v++ {
			if v == u {
				continue
			}
			cands = append(cands, cand{v: v, score: spec.Lengths[u][v] * 10 / spec.Weights[u][v]})
		}
		for i := 0; i < len(cands); i++ {
			for j := i + 1; j < len(cands); j++ {
				if cands[j].score < cands[i].score {
					cands[i], cands[j] = cands[j], cands[i]
				}
			}
		}
		targets := make([]int, 0, outDegree)
		for _, c := range cands[:outDegree] {
			targets = append(targets, c.v)
		}
		p[u] = core.NormalizeStrategy(targets)
	}
	return p
}
