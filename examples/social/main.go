// Social: the paper's friend-finder motivation (Section 1.1). People have
// a Dunbar-style cap on direct ties (the budget) and community-structured
// preferences: strong interest inside their community, weak interest
// outside. Left to their own devices, do they form a well-connected
// network, or do communities wall themselves off?
//
// Run with: go run ./examples/social
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bbc/internal/analysis"
	"bbc/internal/core"
	"bbc/internal/dynamics"
)

const (
	communities   = 3
	perCommunity  = 6
	dunbar        = 2 // direct-tie budget
	insideWeight  = 5
	outsideWeight = 1
)

func main() {
	n := communities * perCommunity
	spec := buildSocialGame(n)
	fmt.Printf("social network: %d people in %d communities, tie budget %d, in/out interest %d:%d\n",
		n, communities, dunbar, insideWeight, outsideWeight)

	rng := rand.New(rand.NewSource(11))
	res, err := dynamics.Run(spec, dynamics.RandomStart(rng, n, dunbar),
		dynamics.NewRoundRobin(n), core.SumDistances,
		dynamics.Options{MaxSteps: 6000, DetectLoops: true})
	if err != nil {
		log.Fatal(err)
	}
	switch {
	case res.Converged:
		fmt.Printf("tie formation settled after %d rewirings\n", res.Moves)
	case res.Loop != nil:
		fmt.Printf("tie formation cycles (%d rewirings seen) — no stable friendship graph on this path\n", res.Moves)
	default:
		fmt.Printf("tie formation still churning after %d steps\n", res.Steps)
	}

	g := res.Final.Realize(spec)
	diam := analysis.MeasureDiameter(spec, res.Final)
	fmt.Printf("network: strongly connected %v, diameter %d\n", diam.StronglyConnected, diam.Diameter)

	// How clannish did it get? Count in-community vs out-community ties.
	inside, outside := 0, 0
	for u, s := range res.Final {
		for _, v := range s {
			if u/perCommunity == v/perCommunity {
				inside++
			} else {
				outside++
			}
		}
	}
	fmt.Printf("ties: %d inside communities, %d across (bridges)\n", inside, outside)

	// Influence: who ends up closest to everyone (weighted closeness)?
	costs := core.CostVector(spec, res.Final, core.SumDistances)
	best, bestCost := 0, costs[0]
	for u, c := range costs {
		if c < bestCost {
			best, bestCost = u, c
		}
	}
	fmt.Printf("most influential person: %d (community %d) with weighted remoteness %d\n",
		best, best/perCommunity, bestCost)
	fair := analysis.MeasureFairness(spec, res.Final, core.SumDistances)
	fmt.Printf("inequality: remoteness spread %d..%d (ratio %.2f)\n", fair.Min, fair.Max, fair.Ratio)
	_ = g
}

func buildSocialGame(n int) *core.Dense {
	d := core.NewDense(n)
	for u := 0; u < n; u++ {
		d.Budgets[u] = dunbar
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			if u/perCommunity == v/perCommunity {
				d.Weights[u][v] = insideWeight
			} else {
				d.Weights[u][v] = outsideWeight
			}
		}
	}
	return d.MustSeal()
}
