// Willows: walk the paper's Forest of Willows family (Definition 1,
// Figure 3) across the tail-length spectrum — every member is a pure Nash
// equilibrium, from the near-optimal l=0 forest to the expensive
// long-tailed one, tracing the price-of-anarchy lower bound of Theorem 4.
//
// Run with: go run ./examples/willows
package main

import (
	"fmt"
	"log"

	"bbc/internal/analysis"
	"bbc/internal/construct"
	"bbc/internal/core"
)

func main() {
	fmt.Println("Forest of Willows, K=2, H=2, tails L=0..4 (all verified stable):")
	fmt.Println()
	fmt.Printf("%-4s %-5s %-10s %-12s %-9s %-8s\n", "L", "n", "socialCost", "optimumLB", "ratio", "diameter")
	for l := 0; l <= 4; l++ {
		p := construct.WillowsParams{K: 2, H: 2, L: l}
		w, err := construct.NewWillows(p)
		if err != nil {
			log.Fatal(err)
		}
		dev, err := core.FindDeviation(w.Spec, w.Profile, core.SumDistances, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if dev != nil {
			log.Fatalf("willows %+v is not stable: %+v", p, dev)
		}
		cost := core.SocialCost(w.Spec, w.Profile, core.SumDistances)
		lb := analysis.SocialOptimumLowerBound(p.N(), p.K)
		d := analysis.MeasureDiameter(w.Spec, w.Profile)
		fmt.Printf("%-4d %-5d %-10d %-12d %-9.2f %-8d\n",
			l, p.N(), cost, lb, float64(cost)/float64(lb), d.Diameter)
	}
	fmt.Println()
	fmt.Println("the ratio column is the equilibrium's distance from the social optimum:")
	fmt.Println("L=0 sits at Θ(1) (the price-of-stability end), growing L climbs toward")
	fmt.Println("the Ω(sqrt(n/k)/log_k n) price-of-anarchy bound of Theorem 4.")

	// The same family under the BBC-max cost (Theorem 9): l=0 stays stable.
	w, err := construct.NewWillows(construct.WillowsParams{K: 2, H: 2, L: 0})
	if err != nil {
		log.Fatal(err)
	}
	dev, err := core.FindDeviation(w.Spec, w.Profile, core.MaxDistance, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("L=0 forest under max-distance cost: stable=%v (Theorem 9: BBC-max PoS = Θ(1))\n", dev == nil)
}
