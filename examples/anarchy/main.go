// Anarchy: the paper's central question made concrete — "could it be
// possible that left to their own devices people will generate poorly
// connected networks?" We compare what selfish rewiring produces against
// designed baselines (ring, bidirectional ring, Forest of Willows) at the
// same budget, and watch the social cost trajectory as anarchy unfolds.
//
// Run with: go run ./examples/anarchy
package main

import (
	"fmt"
	"log"

	"bbc/internal/analysis"
	"bbc/internal/construct"
	"bbc/internal/core"
	"bbc/internal/dynamics"
)

func main() {
	const n, k = 22, 2

	// The designed reference at this size and budget: the Forest of
	// Willows (a *stable* design — nobody wants to rewire away from it).
	w, err := construct.NewWillows(construct.WillowsParams{K: 2, H: 2, L: 1}) // n = 22
	if err != nil {
		log.Fatal(err)
	}
	if w.Params.N() != n {
		log.Fatalf("example miswired: willows has %d nodes, want %d", w.Params.N(), n)
	}
	designed := core.SocialCost(w.Spec, w.Profile, core.SumDistances)

	// The naive designed baseline: a bidirectional ring (same budget k=2).
	ringSpec, ringP, err := construct.BidirectionalRing(n)
	if err != nil {
		log.Fatal(err)
	}
	ringCost := core.SocialCost(ringSpec, ringP, core.SumDistances)
	ringStable, err := core.IsEquilibrium(ringSpec, ringP, core.SumDistances)
	if err != nil {
		log.Fatal(err)
	}

	// Anarchy: start from nothing and let everyone optimize selfishly.
	spec := core.MustUniform(n, k)
	res, err := dynamics.Run(spec, core.NewEmptyProfile(n), dynamics.NewRoundRobin(n),
		core.SumDistances, dynamics.Options{RecordSocialCost: true, DetectLoops: true, MaxSteps: 3000})
	if err != nil {
		log.Fatal(err)
	}
	anarchy := core.SocialCost(spec, res.Final, core.SumDistances)

	lb := analysis.SocialOptimumLowerBound(n, k)
	fmt.Printf("(n=%d, k=%d) social costs — optimum lower bound %d:\n", n, k, lb)
	fmt.Printf("  forest of willows (stable design):  %6d  (%.2fx bound)\n", designed, ratio(designed, lb))
	fmt.Printf("  bidirectional ring (naive design):  %6d  (%.2fx bound, stable=%v)\n", ringCost, ratio(ringCost, lb), ringStable)
	outcome := "converged"
	if res.Loop != nil {
		outcome = "entered a loop"
	} else if !res.Converged {
		outcome = "kept churning"
	}
	fmt.Printf("  selfish from empty (%s):     %6d  (%.2fx bound)\n", outcome, anarchy, ratio(anarchy, lb))

	// The anarchy trajectory: how fast does selfish rewiring approach the
	// bound? Print a coarse view of the social-cost series.
	series := res.SocialCostSeries
	fmt.Println()
	fmt.Println("selfish social-cost trajectory (sampled):")
	for _, i := range []int{0, n, 2 * n, 4 * n, 8 * n, 16 * n, 32 * n, 64 * n, 128 * n} {
		if i < len(series) {
			fmt.Printf("  after %4d steps: %d\n", i, series[i])
		}
	}
	fmt.Printf("  after %4d steps: %d (final)\n", len(series)-1, series[len(series)-1])

	// Who ended up influential under anarchy?
	rep := analysis.MeasureInfluence(spec, res.Final, core.SumDistances)
	fmt.Println()
	fmt.Printf("most central nodes after anarchy: %v\n", analysis.TopK(rep.ByCloseness, 3))
	fmt.Printf("most popular nodes after anarchy: %v\n", analysis.TopK(rep.ByPopularity, 3))
	fair := analysis.MeasureFairness(spec, res.Final, core.SumDistances)
	fmt.Printf("fairness under anarchy: costs %d..%d (ratio %.2f — Lemma 1 bound %.2f+o(1))\n",
		fair.Min, fair.Max, fair.Ratio, analysis.FairnessRatioBound(k))
}

func ratio(a, b int64) float64 { return float64(a) / float64(b) }
