#!/usr/bin/env bash
# bench.sh — record the benchmark trajectory of the evaluation engine.
#
# Runs the fixed-workload micro-benchmarks (Theorem 1 gadget scan, oracle
# build, best response, stability check, dynamics round) with -benchmem and
# emits one JSON snapshot with ns/op, B/op, allocs/op and every custom
# metric the benchmarks report (profiles/sec, bfs/op, ...). The committed
# BENCH_<pr>.json records pair such snapshots — a baseline and the tree
# under test — so regressions are diffs, not anecdotes.
#
# Usage:
#   scripts/bench.sh                 # micro-benchmarks → BENCH_dev.snapshot.json
#   TAG=10 scripts/bench.sh          # name the snapshot BENCH_10.snapshot.json
#   OUT=out.json scripts/bench.sh    # or choose the output path outright
#   SWEEP=1 scripts/bench.sh         # also run the fixed bbcsweep grid (all
#                                    # three workloads × both dists × both
#                                    # aggregations at n=5) and fold per-
#                                    # workload tuple counts and wall times
#                                    # into the snapshot
#   FULL=1 scripts/bench.sh          # also run the full 7,529,536-profile
#                                    # Theorem 1 serial enumeration (minutes
#                                    # on the baseline engine, ~10s on the
#                                    # incremental one) and record wall time
#                                    # and profiles/sec
#   FULL8=1 scripts/bench.sh         # run the PR 8 full-scan matrix instead:
#                                    # the same gadget enumeration three ways
#                                    # (scalar BFS, bit-parallel BFS, and
#                                    # bit-parallel + symmetry quotient),
#                                    # asserting all three report identical
#                                    # checked/equilibria counts
#   BENCHES='Theorem1' BENCHTIME=5x  # narrow the run / pin iteration count
#
# The snapshot is plain `go test -bench` output parsed with awk; no
# dependencies beyond the Go toolchain and POSIX tools.
set -euo pipefail
cd "$(dirname "$0")/.."

# TAG names the snapshot for the change under test ("dev" for local
# iteration, the PR number when recording a committed baseline); OUT
# overrides the full path.
TAG="${TAG:-dev}"
OUT="${OUT:-BENCH_${TAG}.snapshot.json}"
BENCHES="${BENCHES:-BenchmarkTheorem1Scan\$|BenchmarkOracleBuild\$|BenchmarkBestResponse\$|BenchmarkStabilityCheck\$|BenchmarkDynamicsRound\$}"
BENCHTIME="${BENCHTIME:-}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

args=(test -run '^$' -bench "$BENCHES" -benchmem)
if [ -n "$BENCHTIME" ]; then
    args+=(-benchtime "$BENCHTIME")
fi
go "${args[@]}" . | tee "$raw" >&2

full_section=""
if [ "${FULL8:-0}" = "1" ]; then
    tmpdir="$(mktemp -d)"
    go build -o "$tmpdir/bbcgen" ./cmd/bbcgen
    go build -o "$tmpdir/bbcsim" ./cmd/bbcsim
    "$tmpdir/bbcgen" -kind gadget > "$tmpdir/gadget.json"
    ref_summary=""
    for variant in scalar bitset quotient; do
        case "$variant" in
            scalar)   flags="-batch-bfs=false" ;;
            bitset)   flags="" ;;
            quotient) flags="-quotient" ;;
        esac
        echo "bench.sh: running full Theorem 1 serial enumeration ($variant)..." >&2
        t0=$(date +%s%N)
        # shellcheck disable=SC2086
        "$tmpdir/bbcsim" -load "$tmpdir/gadget.json" -enumerate -pin -parallel 1 \
            $flags -json > "$tmpdir/scan-$variant.json"
        t1=$(date +%s%N)
        wall_ns=$((t1 - t0))
        checked=$(grep -o '"checked": *[0-9]*' "$tmpdir/scan-$variant.json" | head -1 | grep -o '[0-9]*')
        ne=$(grep -c '"equilibria": \[\]' "$tmpdir/scan-$variant.json" || true)
        summary="checked=$checked empty_ne=$ne"
        if [ -z "$ref_summary" ]; then
            ref_summary="$summary"
        elif [ "$summary" != "$ref_summary" ]; then
            echo "bench.sh: DIFFERENTIAL FAILURE: $variant reported '$summary', want '$ref_summary'" >&2
            exit 1
        fi
        full_section="$full_section$(awk -v ns="$wall_ns" -v checked="$checked" -v v="$variant" 'BEGIN {
            printf ",\n  \"full_theorem1_serial_%s\": {\"profiles\": %s, \"wall_seconds\": %.3f, \"profiles_per_sec\": %.0f}", \
                v, checked, ns / 1e9, checked / (ns / 1e9)
        }')"
    done
    rm -rf "$tmpdir"
elif [ "${FULL:-0}" = "1" ]; then
    tmpdir="$(mktemp -d)"
    go build -o "$tmpdir/bbcgen" ./cmd/bbcgen
    go build -o "$tmpdir/bbcsim" ./cmd/bbcsim
    "$tmpdir/bbcgen" -kind gadget > "$tmpdir/gadget.json"
    echo "bench.sh: running full Theorem 1 serial enumeration..." >&2
    t0=$(date +%s%N)
    "$tmpdir/bbcsim" -load "$tmpdir/gadget.json" -enumerate -pin -parallel 1 -json > "$tmpdir/scan.json"
    t1=$(date +%s%N)
    wall_ns=$((t1 - t0))
    checked=$(grep -o '"checked": *[0-9]*' "$tmpdir/scan.json" | head -1 | grep -o '[0-9]*')
    full_section=$(awk -v ns="$wall_ns" -v checked="$checked" 'BEGIN {
        printf ",\n  \"full_theorem1_serial\": {\"profiles\": %s, \"wall_seconds\": %.3f, \"profiles_per_sec\": %.0f}", \
            checked, ns / 1e9, checked / (ns / 1e9)
    }')
    rm -rf "$tmpdir"
fi

sweep_section=""
if [ "${SWEEP:-0}" = "1" ]; then
    tmpdir="$(mktemp -d)"
    go build -o "$tmpdir/bbcsweep" ./cmd/bbcsweep
    echo "bench.sh: running the fixed sweep grid (24 tuples)..." >&2
    t0=$(date +%s%N)
    "$tmpdir/bbcsweep" -n 5 -k 1,2 -workload enumerate,dynamics,experiment \
        -dist uniform,nonuniform -agg sum,max -csv "$tmpdir/rows.csv"
    t1=$(date +%s%N)
    # Fold per-workload tuple counts and wall-time sums (CSV columns 2 and
    # 17) into the snapshot, plus the grid's end-to-end wall time.
    sweep_section="$(awk -F, -v total_ns=$((t1 - t0)) '
        NR > 1 { ms[$2] += $17; cnt[$2]++ }
        END {
            split("enumerate dynamics experiment", ws, " ")
            out = ""
            for (i = 1; i <= 3; i++) {
                w = ws[i]
                if (cnt[w] == 0) continue
                if (out != "") out = out ",\n"
                out = out sprintf("    \"%s\": {\"tuples\": %d, \"wall_ms\": %.3f}", w, cnt[w], ms[w])
            }
            printf ",\n  \"sweep_workloads\": {\n%s\n  }", out
            printf ",\n  \"sweep_total\": {\"tuples\": %d, \"wall_seconds\": %.3f}", NR - 1, total_ns / 1e9
        }
    ' "$tmpdir/rows.csv")"
    rm -rf "$tmpdir"
fi

{
    printf '{\n'
    printf '  "generated_by": "scripts/bench.sh",\n'
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "git_rev": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
    printf '  "benchmarks": {\n'
    awk '
        /^Benchmark/ {
            name = $1
            sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
            line = sprintf("    \"%s\": {\"iterations\": %s", name, $2)
            for (i = 3; i + 1 <= NF; i += 2) {
                unit = $(i + 1)
                gsub(/"/, "", unit)
                line = line sprintf(", \"%s\": %s", unit, $i)
            }
            line = line "}"
            if (out != "") out = out ",\n"
            out = out line
        }
        END { print out }
    ' "$raw"
    printf '  }%s%s\n' "$full_section" "$sweep_section"
    printf '}\n'
} > "$OUT"
echo "bench.sh: wrote $OUT" >&2
