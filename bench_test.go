package bbc

// One benchmark per reproduction experiment (E1–E23, see DESIGN.md), plus
// micro-benchmarks for the engine's hot paths. The experiment benches run
// the same code as cmd/bbcexp in quick mode and additionally report
// domain metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates every figure/theorem measurement in one sweep.

import (
	"math/rand"
	"os"
	"testing"

	"bbc/internal/analysis"
	"bbc/internal/construct"
	"bbc/internal/core"
	"bbc/internal/dynamics"
	"bbc/internal/exper"
	"bbc/internal/graph"
	"bbc/internal/group"
	"bbc/internal/obs"
)

// benchRegistry installs a fresh obs registry for the benchmark so work
// counters (profiles, oracle evals, BFS traversals) can be reported per
// op alongside ns/op. Set BBC_BENCH_OBS=off to benchmark the
// uninstrumented nil-registry baseline instead.
func benchRegistry(b *testing.B) *obs.Registry {
	b.Helper()
	if os.Getenv("BBC_BENCH_OBS") == "off" {
		return nil
	}
	reg := obs.NewRegistry()
	prev := obs.SetGlobal(reg)
	b.Cleanup(func() { obs.SetGlobal(prev) })
	return reg
}

// benchObsMetrics is the metric set exported into benchmark output (and
// hence BENCH_*.json): work done per op, not just time per op.
var benchObsMetrics = []struct {
	m    obs.Metric
	name string
}{
	{obs.MProfilesChecked, "profiles/op"},
	{obs.MOracleBuild, "oracle-builds/op"},
	{obs.MOracleEval, "oracle-evals/op"},
	{obs.MBestExactLeaves, "exact-leaves/op"},
	{obs.MBFS, "bfs/op"},
	{obs.MDeviationChecks, "dev-checks/op"},
	{obs.MWalkSteps, "steps/op"},
}

// reportObsMetrics emits the nonzero registry counters scaled per op.
func reportObsMetrics(b *testing.B, reg *obs.Registry) {
	b.Helper()
	for _, mm := range benchObsMetrics {
		if v := reg.Get(mm.m); v > 0 {
			b.ReportMetric(float64(v)/float64(b.N), mm.name)
		}
	}
}

// benchExperiment runs one experiment per iteration and fails the bench if
// its reproduction criteria do not hold.
func benchExperiment(b *testing.B, run func(exper.Config) *exper.Report) {
	b.Helper()
	reg := benchRegistry(b)
	for i := 0; i < b.N; i++ {
		r := run(exper.Config{Quick: true})
		if !r.Pass {
			b.Fatalf("experiment %s failed:\n%s", r.ID, r)
		}
	}
	reportObsMetrics(b, reg)
}

func BenchmarkE1GadgetNoNE(b *testing.B)            { benchExperiment(b, exper.E1) }
func BenchmarkE2Reduction(b *testing.B)             { benchExperiment(b, exper.E2) }
func BenchmarkE3FractionalEquilibrium(b *testing.B) { benchExperiment(b, exper.E3) }
func BenchmarkE4Willows(b *testing.B)               { benchExperiment(b, exper.E4) }
func BenchmarkE5Fairness(b *testing.B)              { benchExperiment(b, exper.E5) }
func BenchmarkE6Diameter(b *testing.B)              { benchExperiment(b, exper.E6) }
func BenchmarkE7PoA(b *testing.B)                   { benchExperiment(b, exper.E7) }
func BenchmarkE8Cayley(b *testing.B)                { benchExperiment(b, exper.E8) }
func BenchmarkE9DenseCayley(b *testing.B)           { benchExperiment(b, exper.E9) }
func BenchmarkE10Connectivity(b *testing.B)         { benchExperiment(b, exper.E10) }
func BenchmarkE11RingPath(b *testing.B)             { benchExperiment(b, exper.E11) }
func BenchmarkE12Loop(b *testing.B)                 { benchExperiment(b, exper.E12) }
func BenchmarkE13MaxCostWalk(b *testing.B)          { benchExperiment(b, exper.E13) }
func BenchmarkE14MaxGadget(b *testing.B)            { benchExperiment(b, exper.E14) }
func BenchmarkE15MaxPoA(b *testing.B)               { benchExperiment(b, exper.E15) }
func BenchmarkE16MaxPoS(b *testing.B)               { benchExperiment(b, exper.E16) }
func BenchmarkE17BudgetConjecture(b *testing.B)     { benchExperiment(b, exper.E17) }
func BenchmarkE18BRGraphStructure(b *testing.B)     { benchExperiment(b, exper.E18) }
func BenchmarkE19SolverAblation(b *testing.B)       { benchExperiment(b, exper.E19) }
func BenchmarkE20GadgetRobustness(b *testing.B)     { benchExperiment(b, exper.E20) }
func BenchmarkE21Synchronous(b *testing.B)          { benchExperiment(b, exper.E21) }
func BenchmarkE22WillowsPadding(b *testing.B)       { benchExperiment(b, exper.E22) }
func BenchmarkE23OverlayPressure(b *testing.B)      { benchExperiment(b, exper.E23) }

// --- engine micro-benchmarks and ablations ---

// BenchmarkOracleBuild measures the cost of precomputing the candidate
// distance rows (n−1 BFS traversals with the node deleted).
func BenchmarkOracleBuild(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		b.Run(sizeName(n), func(b *testing.B) {
			spec := core.MustUniform(n, 2)
			p := dynamics.RandomStart(rand.New(rand.NewSource(1)), n, 2)
			g := p.Realize(spec)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.NewOracle(spec, g, i%n, core.SumDistances)
			}
		})
	}
}

// BenchmarkBestResponse compares the exact, greedy and swap oracles — the
// ablation DESIGN.md calls out for the best-response solver choice.
func BenchmarkBestResponse(b *testing.B) {
	const n, k = 64, 2
	spec := core.MustUniform(n, k)
	p := dynamics.RandomStart(rand.New(rand.NewSource(2)), n, k)
	g := p.Realize(spec)
	oracles := make([]*core.Oracle, n)
	for u := 0; u < n; u++ {
		oracles[u] = core.NewOracle(spec, g, u, core.SumDistances)
	}
	b.Run("exact", func(b *testing.B) {
		reg := benchRegistry(b)
		for i := 0; i < b.N; i++ {
			if _, _, err := oracles[i%n].BestExact(0); err != nil {
				b.Fatal(err)
			}
		}
		reportObsMetrics(b, reg)
	})
	b.Run("greedy", func(b *testing.B) {
		reg := benchRegistry(b)
		for i := 0; i < b.N; i++ {
			oracles[i%n].BestGreedy()
		}
		reportObsMetrics(b, reg)
	})
	b.Run("greedy-swap", func(b *testing.B) {
		reg := benchRegistry(b)
		for i := 0; i < b.N; i++ {
			s, _ := oracles[i%n].BestGreedy()
			oracles[i%n].ImproveBySwaps(s, 50)
		}
		reportObsMetrics(b, reg)
	})
}

// BenchmarkGreedyOptimalityGap reports how far greedy lands from the exact
// best response (quality ablation; the gap is reported as a metric rather
// than time).
func BenchmarkGreedyOptimalityGap(b *testing.B) {
	const n, k = 48, 3
	spec := core.MustUniform(n, k)
	rng := rand.New(rand.NewSource(3))
	var worst float64 = 1
	for i := 0; i < b.N; i++ {
		p := dynamics.RandomStart(rng, n, k)
		g := p.Realize(spec)
		u := rng.Intn(n)
		o := core.NewOracle(spec, g, u, core.SumDistances)
		_, exact, err := o.BestExact(0)
		if err != nil {
			b.Fatal(err)
		}
		_, greedy := o.BestGreedy()
		if ratio := float64(greedy) / float64(exact); ratio > worst {
			worst = ratio
		}
	}
	b.ReportMetric(worst, "worst-greedy/exact")
}

// BenchmarkStabilityCheck measures the full-profile equilibrium check on
// Willows instances (the workhorse of E4/E15/E16).
func BenchmarkStabilityCheck(b *testing.B) {
	for _, p := range []construct.WillowsParams{{K: 2, H: 2, L: 1}, {K: 2, H: 3, L: 0}} {
		w, err := construct.NewWillows(p)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(sizeName(p.N()), func(b *testing.B) {
			reg := benchRegistry(b)
			defer func() { reportObsMetrics(b, reg) }()
			for i := 0; i < b.N; i++ {
				dev, err := core.FindDeviation(w.Spec, w.Profile, core.SumDistances, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if dev != nil {
					b.Fatal("willows must be stable")
				}
			}
		})
	}
}

// BenchmarkDynamicsRound measures one full round-robin round of exact best
// responses from a random start.
func BenchmarkDynamicsRound(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run(sizeName(n), func(b *testing.B) {
			spec := core.MustUniform(n, 2)
			rng := rand.New(rand.NewSource(4))
			reg := benchRegistry(b)
			defer func() { reportObsMetrics(b, reg) }()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				start := dynamics.RandomStart(rng, n, 2)
				b.StartTimer()
				if _, err := dynamics.Run(spec, start, dynamics.NewRoundRobin(n),
					core.SumDistances, dynamics.Options{MaxSteps: n}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTheorem1Scan measures the serial exhaustive no-NE scan of the
// Theorem 1 gadget — the workload tracked by the BENCH_*.json perf
// trajectory (scripts/bench.sh). A full scan covers 7,529,536 pinned
// profiles; each benchmark iteration scans a fixed 50,000-profile slice so
// profiles/sec and allocs/profile extrapolate to the full run.
func BenchmarkTheorem1Scan(b *testing.B) {
	benchTheorem1Slice(b, core.EnumConfig{})
}

// BenchmarkTheorem1ScanScalar is the same slice with the bit-parallel
// multi-source BFS disabled — the ablation isolating the batch rebuild's
// contribution to the trajectory.
func BenchmarkTheorem1ScanScalar(b *testing.B) {
	benchTheorem1Slice(b, core.EnumConfig{DisableBatchBFS: true})
}

// BenchmarkTheorem1ScanQuotient layers the symmetry quotient (the
// gadget's automorphism group) on top of the batch path. Skipped orbit
// states still count as Checked, so the slice covers the same 50,000
// states — the win shows up as fewer oracle builds per op.
func BenchmarkTheorem1ScanQuotient(b *testing.B) {
	d := construct.MatchingPennies(construct.DefaultGadgetWeights())
	ss, err := core.PinnedSpace(d, 0)
	if err != nil {
		b.Fatal(err)
	}
	gens, err := core.SpecAutomorphisms(d, 512)
	if err != nil {
		b.Fatal(err)
	}
	q, err := core.NewQuotient(d, ss, gens)
	if err != nil {
		b.Fatal(err)
	}
	benchTheorem1Slice(b, core.EnumConfig{Quotient: q})
}

func benchTheorem1Slice(b *testing.B, cfg core.EnumConfig) {
	b.Helper()
	const sliceProfiles = 50000
	d := construct.MatchingPennies(construct.DefaultGadgetWeights())
	ss, err := core.PinnedSpace(d, 0)
	if err != nil {
		b.Fatal(err)
	}
	reg := benchRegistry(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := cfg
		cfg.MaxProfiles = sliceProfiles
		res, err := core.EnumeratePureNEOpts(d, core.SumDistances, ss, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Checked != sliceProfiles || len(res.Equilibria) != 0 {
			b.Fatalf("scan slice: checked %d profiles, %d equilibria", res.Checked, len(res.Equilibria))
		}
	}
	b.ReportMetric(float64(sliceProfiles)*float64(b.N)/b.Elapsed().Seconds(), "profiles/sec")
	reportObsMetrics(b, reg)
}

// BenchmarkBFSBatch compares one 64-source bit-parallel BFS against 64
// scalar traversals of the same random unit-length digraph — the raw
// speedup the oracle rebuild inherits on unit-length games.
func BenchmarkBFSBatch(b *testing.B) {
	const n = 256
	rng := rand.New(rand.NewSource(11))
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for d := 0; d < 3; d++ {
			v := rng.Intn(n)
			if v != u {
				g.AddArc(u, v, 1)
			}
		}
	}
	srcs := make([]int, graph.BatchWidth)
	for i := range srcs {
		srcs[i] = i
	}
	dist := make([]int64, graph.BatchWidth*n)
	b.Run("batch64", func(b *testing.B) {
		var bs graph.BitScratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.BFSBatchInto(dist, srcs, graph.Options{Skip: -1}, &bs)
		}
	})
	b.Run("scalar64", func(b *testing.B) {
		var gs graph.Scratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j, s := range srcs {
				g.BFSInto(dist[j*n:(j+1)*n], s, graph.Options{Skip: -1}, &gs)
			}
		}
	})
}

// BenchmarkCayleyCheck measures the vertex-transitive stability check that
// powers the Theorem 5 sweeps.
func BenchmarkCayleyCheck(b *testing.B) {
	ab := group.MustCyclic(30)
	for i := 0; i < b.N; i++ {
		if _, _, err := analysis.CayleyStable(ab, []int{1, 6}, core.SumDistances, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSocialCost measures whole-profile cost evaluation.
func BenchmarkSocialCost(b *testing.B) {
	w, err := construct.NewWillows(construct.WillowsParams{K: 2, H: 3, L: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SocialCost(w.Spec, w.Profile, core.SumDistances)
	}
}

func sizeName(n int) string {
	switch {
	case n < 10:
		return "n=00" + string(rune('0'+n))
	case n < 100:
		return "n=0" + itoa(n)
	default:
		return "n=" + itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
