package main

import (
	"strings"
	"testing"
)

func TestRenderAllConstructions(t *testing.T) {
	tests := []struct {
		name string
		what string
		want string
	}{
		{name: "willows", what: "willows", want: `"r1"`},
		{name: "gadget", what: "gadget", want: `"0C"`},
		{name: "figure4", what: "figure4", want: "digraph"},
		{name: "maxpoa", what: "maxpoa", want: `"r"`},
		{name: "ringpath", what: "ringpath", want: `"T"`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			dot, err := render(tt.what, 3, 2, 2, 8, 4)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(dot, tt.want) {
				t.Fatalf("%s output missing %q", tt.what, tt.want)
			}
			if !strings.HasPrefix(dot, "digraph") {
				t.Fatalf("%s output is not DOT", tt.what)
			}
		})
	}
}

func TestRenderErrors(t *testing.T) {
	if _, err := render("nope", 2, 2, 1, 8, 4); err == nil {
		t.Fatal("expected error for unknown construction")
	}
	if _, err := render("willows", 0, 2, 1, 8, 4); err == nil {
		t.Fatal("expected error for invalid willows params")
	}
	if _, err := render("maxpoa", 2, 0, 1, 8, 4); err == nil {
		t.Fatal("expected error for invalid maxpoa params")
	}
	if _, err := render("ringpath", 2, 0, 1, 1, 0); err == nil {
		t.Fatal("expected error for invalid ringpath params")
	}
}
