// Command bbcviz renders the paper's constructions as Graphviz DOT, for
// figures analogous to the paper's Figures 1, 3, 4 and 6.
//
// Usage:
//
//	bbcviz -what willows -k 2 -h 2 -l 1 > willows.dot
//	bbcviz -what gadget > gadget.dot
//	bbcviz -what figure4 > figure4.dot
//	bbcviz -what maxpoa -k 3 -l 3 > maxpoa.dot
//	bbcviz -what ringpath -ring 8 -path 4 > ringpath.dot
//
// Output contract: stdout carries only the DOT document; progress lines
// and diagnostics go to stderr. The shared observability flags are
// -journal out.jsonl (one "render" record per run), -progress
// (completion line on stderr) and -pprof addr (pprof + expvar counters).
//
// Run control: a SIGINT/SIGTERM before the DOT document is written
// suppresses the (possibly torn) output, flushes a final run_status
// journal record and exits 130; after the output is written the run is
// complete and exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"bbc/internal/construct"
	"bbc/internal/obs"
	"bbc/internal/runctl"
)

func main() {
	var (
		what      = flag.String("what", "willows", "construction: willows, gadget, figure4, maxpoa or ringpath")
		k         = flag.Int("k", 2, "budget / tree count (willows, maxpoa)")
		h         = flag.Int("h", 2, "tree height (willows)")
		l         = flag.Int("l", 1, "tail length (willows, maxpoa)")
		ring      = flag.Int("ring", 8, "ring size (ringpath)")
		path      = flag.Int("path", 4, "path size (ringpath)")
		journal   = flag.String("journal", "", "write a JSONL run journal to this file")
		trace     = flag.String("trace", "", "write a Chrome trace-event JSON file of solver spans to this file")
		progress  = flag.Bool("progress", false, "print a completion line to stderr")
		pprofAddr = flag.String("pprof", "", "serve pprof/expvar at this address (e.g. :6060)")
	)
	flag.Parse()
	ctx, signalled, stopSignals := runctl.SignalContext(context.Background())
	defer stopSignals()
	rt, err := obs.StartCLIConfig(obs.CLIConfig{
		Name: "bbcviz", Journal: *journal, Trace: *trace, Pprof: *pprofAddr, Stderr: os.Stderr,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bbcviz: %v\n", err)
		os.Exit(runctl.ExitCodeForError(err))
	}
	start := time.Now()
	dot, err := render(*what, *k, *h, *l, *ring, *path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bbcviz: %v\n", err)
		os.Exit(runctl.ExitCodeForError(err))
	}
	rt.Journal.Event("render", map[string]any{
		"what": *what, "bytes": len(dot),
		"wall_ms": float64(time.Since(start).Microseconds()) / 1000,
	})
	status := runctl.StatusFromContext(ctx)
	rt.Journal.RunStatus(status.String(), status.Complete(), map[string]any{"what": *what})
	if !status.Complete() {
		rt.Close()
		fmt.Fprintf(os.Stderr, "bbcviz: interrupted by %v before output; no document written\n", signalled())
		os.Exit(runctl.ExitCode(status))
	}
	fmt.Print(dot)
	if *progress {
		fmt.Fprintf(os.Stderr, "bbc: render %s done in %s\n", *what, time.Since(start).Round(time.Millisecond))
	}
	if err := rt.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "bbcviz: %v\n", err)
		os.Exit(runctl.ExitCodeForError(err))
	}
}

func render(what string, k, h, l, ring, path int) (string, error) {
	switch what {
	case "willows":
		w, err := construct.NewWillows(construct.WillowsParams{K: k, H: h, L: l})
		if err != nil {
			return "", err
		}
		labels := make(map[int]string, len(w.Roots))
		for i, r := range w.Roots {
			labels[r] = fmt.Sprintf("r%d", i+1)
		}
		return w.Profile.Realize(w.Spec).DOT("willows", labels), nil
	case "gadget":
		d := construct.MatchingPennies(construct.DefaultGadgetWeights())
		p := construct.IntendedGadgetProfile(true, true)
		return p.Realize(d).DOT("gadget", construct.GadgetLabels()), nil
	case "figure4":
		spec, p := construct.Figure4Start()
		return p.Realize(spec).DOT("figure4", nil), nil
	case "maxpoa":
		m, err := construct.NewMaxPoA(construct.MaxPoAParams{K: k, L: l})
		if err != nil {
			return "", err
		}
		labels := map[int]string{m.Root: "r"}
		return m.Profile.Realize(m.Spec).DOT("maxpoa", labels), nil
	case "ringpath":
		spec, p, err := construct.RingPath(ring, path)
		if err != nil {
			return "", err
		}
		return p.Realize(spec).DOT("ringpath", map[int]string{0: "T"}), nil
	default:
		return "", fmt.Errorf("unknown construction %q", what)
	}
}
