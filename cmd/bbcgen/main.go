// Command bbcgen generates BBC game instances as JSON (readable by the
// core.Instance format), for scripting experiments outside this
// repository.
//
// Usage:
//
//	bbcgen -kind uniform -n 12 -k 2 > game.json
//	bbcgen -kind random -n 10 -max-weight 4 -max-budget 3 -seed 7 > game.json
//	bbcgen -kind willows -k 2 -h 2 -l 1 > willows.json
//	bbcgen -kind gadget > gadget.json
//
// The emitted instance carries a profile: empty for uniform/random, the
// stable construction profile for willows, and the (L,L) intended state
// for the gadget.
//
// Output contract: stdout carries only the instance JSON; progress lines
// and diagnostics go to stderr. The shared observability flags are
// -journal out.jsonl (one "generate" record per run), -progress
// (completion line on stderr) and -pprof addr (pprof + expvar counters).
//
// Run control: a SIGINT/SIGTERM before the instance JSON is written
// suppresses the (possibly torn) output, flushes a final run_status
// journal record and exits 130; after the output is written the run is
// complete and exits 0.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"bbc/internal/construct"
	"bbc/internal/core"
	"bbc/internal/obs"
	"bbc/internal/runctl"
)

func main() {
	var (
		kind      = flag.String("kind", "uniform", "instance kind: uniform, random, willows or gadget")
		n         = flag.Int("n", 10, "players (uniform, random)")
		k         = flag.Int("k", 2, "budget (uniform) / tree count (willows)")
		h         = flag.Int("h", 2, "tree height (willows)")
		l         = flag.Int("l", 1, "tail length (willows)")
		maxWeight = flag.Int64("max-weight", 3, "random: weights drawn from 0..max-weight")
		maxCost   = flag.Int64("max-cost", 0, "random: link costs drawn from 1..max-cost (0 = uniform)")
		maxLength = flag.Int64("max-length", 0, "random: lengths drawn from 1..max-length (0 = uniform)")
		maxBudget = flag.Int64("max-budget", 2, "random: budgets drawn from 1..max-budget")
		seed      = flag.Int64("seed", 1, "random seed")
		journal   = flag.String("journal", "", "write a JSONL run journal to this file")
		trace     = flag.String("trace", "", "write a Chrome trace-event JSON file of solver spans to this file")
		progress  = flag.Bool("progress", false, "print a completion line to stderr")
		pprofAddr = flag.String("pprof", "", "serve pprof/expvar at this address (e.g. :6060)")
	)
	flag.Parse()
	ctx, signalled, stopSignals := runctl.SignalContext(context.Background())
	defer stopSignals()
	rt, err := obs.StartCLIConfig(obs.CLIConfig{
		Name: "bbcgen", Journal: *journal, Trace: *trace, Pprof: *pprofAddr, Stderr: os.Stderr,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bbcgen: %v\n", err)
		os.Exit(runctl.ExitCodeForError(err))
	}
	start := time.Now()
	inst, err := generate(*kind, *n, *k, *h, *l, *maxWeight, *maxCost, *maxLength, *maxBudget, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bbcgen: %v\n", err)
		os.Exit(runctl.ExitCodeForError(err))
	}
	rt.Journal.Event("generate", map[string]any{
		"kind": *kind, "n": inst.Spec.N(), "seed": *seed,
		"wall_ms": float64(time.Since(start).Microseconds()) / 1000,
	})
	status := runctl.StatusFromContext(ctx)
	rt.Journal.RunStatus(status.String(), status.Complete(), map[string]any{"kind": *kind})
	if !status.Complete() {
		rt.Close()
		fmt.Fprintf(os.Stderr, "bbcgen: interrupted by %v before output; no instance written\n", signalled())
		os.Exit(runctl.ExitCode(status))
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(inst); err != nil {
		fmt.Fprintf(os.Stderr, "bbcgen: %v\n", err)
		os.Exit(runctl.ExitCodeForError(err))
	}
	if *progress {
		fmt.Fprintf(os.Stderr, "bbc: generate %s n=%d done in %s\n",
			*kind, inst.Spec.N(), time.Since(start).Round(time.Millisecond))
	}
	if err := rt.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "bbcgen: %v\n", err)
		os.Exit(runctl.ExitCodeForError(err))
	}
}

func generate(kind string, n, k, h, l int, maxWeight, maxCost, maxLength, maxBudget, seed int64) (*core.Instance, error) {
	switch kind {
	case "uniform":
		spec, err := core.NewUniform(n, k)
		if err != nil {
			return nil, err
		}
		return &core.Instance{Spec: spec, Profile: core.NewEmptyProfile(n)}, nil
	case "random":
		rng := rand.New(rand.NewSource(seed))
		spec, err := core.GenerateDense(rng, core.GenerateParams{
			N:             n,
			MaxWeight:     maxWeight,
			EnsureSupport: maxWeight > 0,
			MaxCost:       maxCost,
			MaxLength:     maxLength,
			MaxBudget:     maxBudget,
		})
		if err != nil {
			return nil, err
		}
		return &core.Instance{Spec: spec, Profile: core.NewEmptyProfile(n)}, nil
	case "willows":
		w, err := construct.NewWillows(construct.WillowsParams{K: k, H: h, L: l})
		if err != nil {
			return nil, err
		}
		return &core.Instance{Spec: w.Spec, Profile: w.Profile}, nil
	case "gadget":
		d := construct.MatchingPennies(construct.DefaultGadgetWeights())
		return &core.Instance{Spec: d, Profile: construct.IntendedGadgetProfile(true, true)}, nil
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}
