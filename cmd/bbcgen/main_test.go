package main

import (
	"encoding/json"
	"testing"

	"bbc/internal/core"
)

func TestGenerateKindsRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		kind string
	}{
		{name: "uniform", kind: "uniform"},
		{name: "random", kind: "random"},
		{name: "willows", kind: "willows"},
		{name: "gadget", kind: "gadget"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			inst, err := generate(tt.kind, 8, 2, 2, 1, 3, 0, 0, 2, 7)
			if err != nil {
				t.Fatal(err)
			}
			if err := inst.Profile.Validate(inst.Spec); err != nil {
				t.Fatalf("generated profile infeasible: %v", err)
			}
			data, err := json.Marshal(inst)
			if err != nil {
				t.Fatal(err)
			}
			var back core.Instance
			if err := json.Unmarshal(data, &back); err != nil {
				t.Fatalf("emitted JSON does not round trip: %v", err)
			}
			if back.Spec.N() != inst.Spec.N() {
				t.Fatal("round trip changed node count")
			}
		})
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := generate("mystery", 8, 2, 2, 1, 3, 0, 0, 2, 7); err == nil {
		t.Fatal("expected error for unknown kind")
	}
	if _, err := generate("uniform", 1, 1, 0, 0, 0, 0, 0, 0, 7); err == nil {
		t.Fatal("expected error for n=1")
	}
	if _, err := generate("willows", 8, 0, 2, 1, 0, 0, 0, 0, 7); err == nil {
		t.Fatal("expected error for bad willows params")
	}
}

func TestGenerateWillowsIsStableInstance(t *testing.T) {
	inst, err := generate("willows", 0, 2, 2, 0, 0, 0, 0, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	stable, err := core.IsEquilibrium(inst.Spec, inst.Profile, core.SumDistances)
	if err != nil {
		t.Fatal(err)
	}
	if !stable {
		t.Fatal("generated willows instance should carry its stable profile")
	}
}
