package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"bbc/internal/exper"
	"bbc/internal/runctl"
)

// expOptions returns a baseline option set running a small quick-mode
// selection into in-memory buffers.
func expOptions() (options, *bytes.Buffer, *bytes.Buffer) {
	var stdout, stderr bytes.Buffer
	return options{
		quick: true, only: "E8,E20", jsonOut: true,
		stdout: &stdout, stderr: &stderr,
	}, &stdout, &stderr
}

func decodeReports(t *testing.T, stdout *bytes.Buffer) []*exper.Report {
	t.Helper()
	var reports []*exper.Report
	if err := json.Unmarshal(stdout.Bytes(), &reports); err != nil {
		t.Fatalf("stdout is not valid JSON: %v\n%s", err, stdout.String())
	}
	return reports
}

// TestSuiteCheckpointResume: a completed suite leaves a checkpoint with
// every report; a resumed run replays them without re-running and prints
// the same reports.
func TestSuiteCheckpointResume(t *testing.T) {
	ckpt := t.TempDir() + "/suite.ckpt"
	o, stdout, _ := expOptions()
	o.checkpoint = ckpt
	status, failures, err := run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if status != runctl.StatusComplete || failures != 0 {
		t.Fatalf("suite run: status=%v failures=%d", status, failures)
	}
	ref := decodeReports(t, stdout)
	if len(ref) != 2 {
		t.Fatalf("want 2 reports, got %d", len(ref))
	}

	env, err := runctl.Load(ckpt)
	if err != nil {
		t.Fatalf("suite left no valid checkpoint: %v", err)
	}
	if env.Kind != "suite" {
		t.Errorf("checkpoint kind = %q, want suite", env.Kind)
	}

	o2, stdout2, stderr2 := expOptions()
	o2.resume = ckpt
	status, failures, err = run(context.Background(), o2)
	if err != nil {
		t.Fatal(err)
	}
	if status != runctl.StatusComplete || failures != 0 {
		t.Fatalf("resumed suite: status=%v failures=%d", status, failures)
	}
	if !strings.Contains(stderr2.String(), "resuming suite") {
		t.Errorf("resume note missing from stderr:\n%s", stderr2.String())
	}
	resumed := decodeReports(t, stdout2)
	refJSON, _ := json.Marshal(ref)
	resJSON, _ := json.Marshal(resumed)
	if !bytes.Equal(refJSON, resJSON) {
		t.Errorf("replayed reports differ from the original run")
	}
}

// TestSuiteResumeRejectsDifferentSelection: the fingerprint ties a
// checkpoint to its -only selection and quick mode.
func TestSuiteResumeRejectsDifferentSelection(t *testing.T) {
	ckpt := t.TempDir() + "/suite.ckpt"
	o, _, _ := expOptions()
	o.only, o.checkpoint = "E20", ckpt
	if _, _, err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	o2, _, _ := expOptions()
	o2.only, o2.resume = "E8", ckpt
	if _, _, err := run(context.Background(), o2); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("want fingerprint mismatch error, got %v", err)
	}
}

// TestSuiteCancelledBeforeStart: a pre-cancelled context schedules no
// experiments and reports an interrupted, failure-free partial run.
func TestSuiteCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o, stdout, _ := expOptions()
	status, failures, err := run(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	if status != runctl.StatusCancelled || runctl.ExitCode(status) != runctl.ExitInterrupted {
		t.Fatalf("want cancelled status (exit %d), got %v", runctl.ExitInterrupted, status)
	}
	if failures != 0 {
		t.Errorf("cancelled run reported %d failures", failures)
	}
	if reports := decodeReports(t, stdout); len(reports) != 0 {
		t.Errorf("cancelled run still produced %d reports", len(reports))
	}
}

// TestSuiteUnknownIDIsUsageError pins the exit-2 classification.
func TestSuiteUnknownIDIsUsageError(t *testing.T) {
	o, _, _ := expOptions()
	o.only = "E99"
	_, _, err := run(context.Background(), o)
	if err == nil || !errors.Is(err, errUsage) {
		t.Fatalf("want usage error for unknown id, got %v", err)
	}
}
