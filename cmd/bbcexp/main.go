// Command bbcexp runs the paper-reproduction experiment suite (E1–E23,
// indexed in DESIGN.md) and prints the measured tables and findings that
// EXPERIMENTS.md records.
//
// Usage:
//
//	bbcexp [-quick] [-only E4,E12]
//
// -quick skips the multi-minute exhaustive scans; -only restricts the run
// to a comma-separated list of experiment ids.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"bbc/internal/exper"
)

func main() {
	quick := flag.Bool("quick", false, "skip the multi-minute exhaustive scans")
	only := flag.String("only", "", "comma-separated experiment ids to run (default: all)")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of text")
	flag.Parse()

	wanted := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	var selected []*exper.Report
	failures := 0
	for _, r := range exper.All(exper.Config{Quick: *quick}) {
		if len(wanted) > 0 && !wanted[r.ID] {
			continue
		}
		selected = append(selected, r)
		if !*asJSON {
			fmt.Print(r)
			fmt.Println()
		}
		if !r.Pass {
			failures++
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(selected); err != nil {
			fmt.Fprintf(os.Stderr, "bbcexp: %v\n", err)
			os.Exit(1)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "bbcexp: %d experiment(s) failed\n", failures)
		os.Exit(1)
	}
}
