// Command bbcexp runs the paper-reproduction experiment suite (E1–E23,
// indexed in DESIGN.md) and prints the measured tables and findings that
// EXPERIMENTS.md records.
//
// Usage:
//
//	bbcexp [-quick] [-only E4,E12] [-json] [-timeout 0]
//	       [-checkpoint suite.ckpt] [-resume suite.ckpt]
//	       [-journal suite.jsonl] [-progress] [-pprof :6060]
//
// -quick skips the multi-minute exhaustive scans; -only restricts the run
// to a comma-separated list of experiment ids.
//
// Run control: SIGINT/SIGTERM stop the suite gracefully — the running
// experiment observes the cancellation (long scans and ensembles return
// partial, failing reports instead of hanging), no further experiments
// are scheduled, the reports collected so far are printed, and the
// journal receives a final run_status record. -timeout bounds the whole
// suite's wall time the same way. -checkpoint persists every completed
// experiment report (atomic, checksummed write-fsync-rename after each
// experiment, keeping the previous good snapshot as <path>.prev);
// -resume replays those reports and runs only the remaining
// experiments, quarantining a corrupt primary to <path>.corrupt and
// falling back to the previous generation automatically. Exit codes: 0
// full pass, 1 experiment failure or error, 2 usage, 3 deadline
// truncation, 4 unrecoverable checkpoint corruption, 130 interrupted by
// signal.
//
// Output contract: stdout carries only the experiment reports (text, or
// a JSON array with -json); progress lines and diagnostics go to stderr,
// so stdout stays machine-parseable.
//
// Observability: every report includes its wall time and the solver
// counter deltas it caused (oracle builds, BFS traversals, profiles
// checked, ...), so suite runs double as perf baselines. -journal
// additionally writes one JSONL "experiment" record per report plus
// "checkpoint" and final "run_status" records, -progress prints
// completion/ETA lines to stderr, and -pprof serves net/http/pprof and
// the counter registry (expvar "bbc_counters") while the suite runs.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"bbc/internal/exper"
	"bbc/internal/obs"
	"bbc/internal/runctl"
)

// suiteCheckpointKind names the bbcexp snapshot schema inside the
// runctl.Checkpoint envelope.
const suiteCheckpointKind = "suite"

// suiteCheckpoint is the experiment-granular resume state: every
// completed experiment's full report, keyed by id.
type suiteCheckpoint struct {
	Reports map[string]*exper.Report `json:"reports"`
}

// options collects every flag; run consumes it so tests can drive the
// command without a process boundary.
type options struct {
	quick      bool
	only       string
	jsonOut    bool
	timeout    time.Duration
	checkpoint string
	resume     string
	journal    string
	trace      string
	progress   bool
	pprof      string

	stdout, stderr io.Writer
}

func main() {
	var o options
	flag.BoolVar(&o.quick, "quick", false, "skip the multi-minute exhaustive scans")
	flag.StringVar(&o.only, "only", "", "comma-separated experiment ids to run (default: all)")
	flag.BoolVar(&o.jsonOut, "json", false, "emit machine-readable JSON instead of text")
	flag.DurationVar(&o.timeout, "timeout", 0, "wall-time budget for the whole suite, e.g. 10m (0 = none)")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "persist completed experiment reports to this file after each experiment")
	flag.StringVar(&o.resume, "resume", "", "replay completed reports from this snapshot and run only the rest")
	flag.StringVar(&o.journal, "journal", "", "write a JSONL run journal to this file")
	flag.StringVar(&o.trace, "trace", "", "write a Chrome trace-event JSON file of solver spans to this file")
	flag.BoolVar(&o.progress, "progress", false, "print progress/ETA to stderr")
	flag.StringVar(&o.pprof, "pprof", "", "serve pprof/expvar at this address (e.g. :6060)")
	flag.Parse()
	o.stdout, o.stderr = os.Stdout, os.Stderr

	ctx, signalled, stopSignals := runctl.SignalContext(context.Background())
	status, failures, err := run(ctx, o)
	stopSignals()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bbcexp: %v\n", err)
		if errors.Is(err, errUsage) {
			os.Exit(runctl.ExitUsage)
		}
		os.Exit(runctl.ExitCodeForError(err))
	}
	if sig := signalled(); sig != nil {
		fmt.Fprintf(os.Stderr, "bbcexp: interrupted by %v; partial results flushed\n", sig)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "bbcexp: %d experiment(s) failed\n", failures)
		os.Exit(runctl.ExitError)
	}
	os.Exit(runctl.ExitCode(status))
}

// run executes the selected experiments under run control and reports
// how the suite ended plus the number of failing experiments.
func run(ctx context.Context, o options) (runctl.Status, int, error) {
	suite, err := selectSuite(o.only)
	if err != nil {
		return runctl.StatusComplete, 0, err
	}
	ctx, cancelTimeout := runctl.WithDeadline(ctx, o.timeout)
	defer cancelTimeout()

	fp := suiteFingerprint(o.quick, suite)
	done := map[string]*exper.Report{}
	var recovered *runctl.Recovery
	if o.resume != "" {
		st := &runctl.Store{Path: o.resume}
		env, rec, err := st.Load()
		if err != nil {
			return runctl.StatusComplete, 0, err
		}
		if rec.Fallback {
			fmt.Fprintf(o.stderr, "bbcexp: checkpoint %s was not loadable (%v); resuming from the previous generation %s\n",
				o.resume, rec.Err, rec.Path)
			if rec.Quarantined != "" {
				fmt.Fprintf(o.stderr, "bbcexp: the corrupt snapshot was preserved at %s for inspection\n", rec.Quarantined)
			}
			recovered = rec
		}
		var cp suiteCheckpoint
		if err := env.Decode(suiteCheckpointKind, fp, &cp); err != nil {
			return runctl.StatusComplete, 0, err
		}
		done = cp.Reports
		if done == nil {
			done = map[string]*exper.Report{}
		}
		fmt.Fprintf(o.stderr, "bbcexp: resuming suite from %s (%d of %d experiments already done)\n",
			rec.Path, len(done), len(suite))
	}

	rt, err := obs.StartCLIConfig(obs.CLIConfig{
		Name:    "bbcexp",
		Journal: o.journal,
		// Resumed suites append to the interrupted run's journal.
		AppendJournal: o.resume != "",
		Trace:         o.trace,
		Pprof:         o.pprof,
		Stderr:        o.stderr,
	})
	if err != nil {
		return runctl.StatusComplete, 0, err
	}
	if recovered != nil {
		rt.Journal.Event("checkpoint_recovered", map[string]any{
			"path":        o.resume,
			"loaded_from": recovered.Path,
			"quarantined": recovered.Quarantined,
			"reason":      fmt.Sprint(recovered.Err),
		})
	}
	status, failures, runErr := runSuite(ctx, o, suite, done, fp, rt)
	if cerr := rt.Close(); runErr == nil && cerr != nil {
		runErr = cerr
	}
	return status, failures, runErr
}

// runSuite drives the experiment loop: replayed reports come from the
// resume snapshot, fresh ones run under ctx, and each completion is
// checkpointed before the next experiment starts.
func runSuite(ctx context.Context, o options, suite []exper.Experiment, done map[string]*exper.Report, fp string, rt *obs.Runtime) (runctl.Status, int, error) {
	var completed atomic.Int64
	var prog *obs.Progress
	if o.progress {
		prog = obs.StartProgress(o.stderr, "experiments", uint64(len(suite)),
			func() uint64 { return uint64(completed.Load()) }, time.Second)
	}
	defer prog.Stop()

	ckptStore := &runctl.Store{Path: o.checkpoint, Retries: 2}
	// save persists the completed-report set with rotation and bounded
	// retry. A failure degrades gracefully: the suite keeps running on
	// in-memory state (losing resumability, not results), the failure is
	// journaled, and the next completed experiment retries from scratch.
	save := func() {
		if o.checkpoint == "" {
			return
		}
		env, err := runctl.NewCheckpoint(suiteCheckpointKind, fp,
			runctl.StatusFromContext(ctx), rt.Reg.Snapshot(), &suiteCheckpoint{Reports: done})
		if err == nil {
			err = ckptStore.Save(env)
		}
		if err != nil {
			fmt.Fprintf(o.stderr, "bbcexp: checkpoint save failed (suite continues): %v\n", err)
			rt.Journal.Event("checkpoint_error", map[string]any{
				"path": o.checkpoint, "completed": len(done), "error": err.Error(),
			})
			return
		}
		rt.Journal.Checkpoint(o.checkpoint, suiteCheckpointKind, map[string]any{
			"completed": len(done),
		})
	}

	cfg := exper.Config{Quick: o.quick, Ctx: ctx}
	selected := []*exper.Report{} // non-nil: an interrupted run still emits [] on stdout
	failures := 0
	interrupted := false
	for _, e := range suite {
		if cfg.Interrupted() {
			interrupted = true
			break
		}
		r, resumed := done[e.ID], true
		if r == nil {
			r, resumed = exper.Instrumented(e.Run, cfg), false
			// An experiment cut short by cancellation reports a partial
			// failure; keep it out of the snapshot so a resumed suite
			// re-runs it in full.
			if !cfg.Interrupted() {
				done[e.ID] = r
				save()
			}
		}
		completed.Add(1)
		selected = append(selected, r)
		rt.Journal.Event("experiment", map[string]any{
			"id":       r.ID,
			"title":    r.Title,
			"pass":     r.Pass,
			"wall_ms":  r.WallMS,
			"counters": r.Counters,
			"resumed":  resumed,
		})
		if !o.jsonOut {
			fmt.Fprint(o.stdout, r)
			fmt.Fprintln(o.stdout)
		}
		if !r.Pass {
			failures++
		}
	}

	status := runctl.StatusComplete
	if interrupted || cfg.Interrupted() {
		status = runctl.StatusFromContext(ctx)
		if status == runctl.StatusComplete {
			status = runctl.StatusCancelled
		}
	}
	rt.Journal.RunStatus(status.String(), status.Complete(), map[string]any{
		"completed": len(selected),
		"total":     len(suite),
		"failures":  failures,
	})
	if o.jsonOut {
		enc := json.NewEncoder(o.stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(selected); err != nil {
			return status, failures, err
		}
	}
	return status, failures, nil
}

// errUsage marks command-line mistakes, which exit with ExitUsage.
var errUsage = errors.New("usage")

// selectSuite resolves -only against the full suite, rejecting unknown
// ids.
func selectSuite(only string) ([]exper.Experiment, error) {
	wanted := map[string]bool{}
	if only != "" {
		for _, id := range strings.Split(only, ",") {
			wanted[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	// Track the full selection and the not-yet-seen ids separately:
	// deleting matches from the selection set while iterating would turn
	// "all requested ids seen" into "run everything after them".
	all := len(wanted) == 0
	var suite []exper.Experiment
	for _, e := range exper.Suite() {
		if all || wanted[e.ID] {
			suite = append(suite, e)
			delete(wanted, e.ID)
		}
	}
	if len(wanted) > 0 {
		var unknown []string
		for id := range wanted {
			unknown = append(unknown, id)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("%w: unknown experiment id(s): %s", errUsage, strings.Join(unknown, ", "))
	}
	return suite, nil
}

// suiteFingerprint ties a suite checkpoint to the experiment selection
// and quick mode that produced it, so reports are never replayed into a
// differently-configured run.
func suiteFingerprint(quick bool, suite []exper.Experiment) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "quick=%v;", quick)
	for _, e := range suite {
		fmt.Fprintf(h, "%s;", e.ID)
	}
	return fmt.Sprintf("suite-%016x", h.Sum64())
}
