// Command bbcexp runs the paper-reproduction experiment suite (E1–E23,
// indexed in DESIGN.md) and prints the measured tables and findings that
// EXPERIMENTS.md records.
//
// Usage:
//
//	bbcexp [-quick] [-only E4,E12] [-json]
//	       [-journal suite.jsonl] [-progress] [-pprof :6060]
//
// -quick skips the multi-minute exhaustive scans; -only restricts the run
// to a comma-separated list of experiment ids.
//
// Output contract: stdout carries only the experiment reports (text, or
// a JSON array with -json); progress lines and diagnostics go to stderr,
// so stdout stays machine-parseable.
//
// Observability: every report includes its wall time and the solver
// counter deltas it caused (oracle builds, BFS traversals, profiles
// checked, ...), so suite runs double as perf baselines. -journal
// additionally writes one JSONL "experiment" record per report,
// -progress prints completion/ETA lines to stderr, and -pprof serves
// net/http/pprof and the counter registry (expvar "bbc_counters") while
// the suite runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"bbc/internal/exper"
	"bbc/internal/obs"
)

func main() {
	quick := flag.Bool("quick", false, "skip the multi-minute exhaustive scans")
	only := flag.String("only", "", "comma-separated experiment ids to run (default: all)")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of text")
	journal := flag.String("journal", "", "write a JSONL run journal to this file")
	progress := flag.Bool("progress", false, "print progress/ETA to stderr")
	pprofAddr := flag.String("pprof", "", "serve pprof/expvar at this address (e.g. :6060)")
	flag.Parse()

	wanted := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	var suite []exper.Experiment
	for _, e := range exper.Suite() {
		if len(wanted) == 0 || wanted[e.ID] {
			suite = append(suite, e)
			delete(wanted, e.ID)
		}
	}
	if len(wanted) > 0 {
		var unknown []string
		for id := range wanted {
			unknown = append(unknown, id)
		}
		sort.Strings(unknown)
		fmt.Fprintf(os.Stderr, "bbcexp: unknown experiment id(s): %s\n", strings.Join(unknown, ", "))
		os.Exit(2)
	}

	rt, err := obs.StartCLI("bbcexp", *journal, *pprofAddr, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bbcexp: %v\n", err)
		os.Exit(1)
	}
	var completed atomic.Int64
	var prog *obs.Progress
	if *progress {
		prog = obs.StartProgress(os.Stderr, "experiments", uint64(len(suite)),
			func() uint64 { return uint64(completed.Load()) }, time.Second)
	}

	var selected []*exper.Report
	failures := 0
	for _, e := range suite {
		r := exper.Instrumented(e.Run, exper.Config{Quick: *quick})
		completed.Add(1)
		selected = append(selected, r)
		rt.Journal.Event("experiment", map[string]any{
			"id":       r.ID,
			"title":    r.Title,
			"pass":     r.Pass,
			"wall_ms":  r.WallMS,
			"counters": r.Counters,
		})
		if !*asJSON {
			fmt.Print(r)
			fmt.Println()
		}
		if !r.Pass {
			failures++
		}
	}
	prog.Stop()
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(selected); err != nil {
			fmt.Fprintf(os.Stderr, "bbcexp: %v\n", err)
			os.Exit(1)
		}
	}
	if err := rt.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "bbcexp: %v\n", err)
		os.Exit(1)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "bbcexp: %d experiment(s) failed\n", failures)
		os.Exit(1)
	}
}
