// Command bbcserved is the BBC batch-solve service: it exposes the
// pure-NE enumerators, best-response dynamics and the reproduction
// experiment suite as asynchronous HTTP/JSON jobs with fingerprint
// dedup, per-job run control (deadline, budget, cancel) and persisted
// enumeration checkpoints.
//
// Lifecycle: on SIGINT/SIGTERM the server drains — new submissions get
// 503 + Retry-After, queued jobs are rejected with a retry hint,
// in-flight jobs are cancelled and flush a final checkpoint — then the
// HTTP listener closes and the process exits 0 on a clean drain.
//
// Exit codes: 0 clean start-serve-drain cycle, 1 startup or serve
// error, 2 flag error, 130 a second signal force-exited a wedged drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"bbc/internal/obs"
	"bbc/internal/runctl"
	"bbc/internal/serve"
	"bbc/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, stderr *os.File) int {
	fs := flag.NewFlagSet("bbcserved", flag.ExitOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:8371", "listen address (use :0 for an ephemeral port)")
		workers      = fs.Int("workers", 0, "job pool size (0 = NumCPU capped at 8)")
		queueSize    = fs.Int("queue", 0, "queued-job bound (0 = 64); full queue refuses with 429")
		cacheSize    = fs.Int("cache", 0, "terminal jobs retained for polling/dedup (0 = 128)")
		dataDir      = fs.String("data", "", "directory for enumeration checkpoints and per-job journals (\"\" = off)")
		storeDir     = fs.String("store", "", "durable job store directory (WAL + compacted index): results dedup across restarts, interrupted jobs re-queue (\"\" = in-memory)")
		compactEvery = fs.Int("compact-every", 0, "store WAL appends between index compactions (0 = 256)")
		ckptEvery    = fs.Uint64("checkpoint-every", 0, "serial-scan checkpoint period in profiles (0 = 1048576)")
		rate         = fs.Float64("rate", 0, "per-client sustained submissions per second admitted (0 = unlimited)")
		burst        = fs.Int("burst", 0, "per-client submission burst above -rate (0 = ceil(rate))")
		maxInflight  = fs.Int("max-inflight", 0, "per-client cap on jobs queued or running at once (0 = unlimited)")
		journalPath  = fs.String("journal", "", "server lifecycle JSONL journal path (\"\" = off)")
		journalMax   = fs.Int64("journal-max-bytes", 0, "rotate the lifecycle journal to <path>.1 past this size (0 = unbounded)")
		tracePath    = fs.String("trace", "", "write a Chrome trace-event JSON file of job spans on exit (\"\" = off)")
		pprofAddr    = fs.String("pprof", "", "pprof/expvar debug server address (\"\" = off)")
		retryAfter   = fs.Duration("retry-after", 0, "Retry-After hint on refused submissions and drain rejections (0 = 5s)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "bound on the HTTP listener shutdown after the pool drains")
	)
	fs.Parse(args)

	rt, err := obs.StartCLIConfig(obs.CLIConfig{
		Name: "bbcserved", Journal: *journalPath, JournalMaxBytes: *journalMax,
		Trace: *tracePath, Pprof: *pprofAddr, Stderr: stderr,
	})
	if err != nil {
		fmt.Fprintf(stderr, "bbcserved: %v\n", err)
		return runctl.ExitError
	}

	cfg := serve.Config{
		Workers:         *workers,
		QueueSize:       *queueSize,
		CacheSize:       *cacheSize,
		DataDir:         *dataDir,
		CheckpointEvery: *ckptEvery,
		RetryAfter:      *retryAfter,
		Admission:       serve.AdmissionConfig{Rate: *rate, Burst: *burst, MaxInFlight: *maxInflight},
		Reg:             rt.Reg,
		Journal:         rt.Journal,
	}
	if *storeDir != "" {
		st, rec, err := store.Open(*storeDir, store.Options{
			CompactEvery: *compactEvery, Reg: rt.Reg, Journal: rt.Journal,
		})
		if err != nil {
			fmt.Fprintf(stderr, "bbcserved: open store: %v\n", err)
			return runctl.ExitError
		}
		// The recovery report goes to stderr so operators see at a glance
		// what a restart salvaged; quarantines are loud but non-fatal.
		fmt.Fprintf(stderr, "bbcserved: store %s: %d indexed + %d replayed jobs", *storeDir, rec.IndexJobs, rec.Replayed)
		if rec.Quarantined > 0 {
			fmt.Fprintf(stderr, ", %d records quarantined", rec.Quarantined)
		}
		if rec.TornBytes > 0 {
			fmt.Fprintf(stderr, ", torn tail of %d bytes truncated", rec.TornBytes)
		}
		fmt.Fprintln(stderr)
		cfg.Store = st
	}

	// serve.New re-queues any interrupted jobs the store recovered and
	// Drain closes the store, so nothing here needs to.
	srv, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "bbcserved: %v\n", err)
		return runctl.ExitError
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "bbcserved: %v\n", err)
		return runctl.ExitError
	}
	// Announced on stderr so scripts (and the CI smoke test) can discover
	// the bound port when -addr :0 is used.
	fmt.Fprintf(stderr, "bbcserved: listening on http://%s\n", ln.Addr())
	rt.Journal.Event("serve_start", map[string]any{"addr": ln.Addr().String()})

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, signalled, stopSignals := runctl.SignalContext(context.Background())
	defer stopSignals()

	code := runctl.ExitOK
	select {
	case err := <-serveErr:
		// The listener died underneath us; there is nothing to drain into.
		fmt.Fprintf(stderr, "bbcserved: serve: %v\n", err)
		code = runctl.ExitError
	case <-ctx.Done():
		sig := signalled()
		fmt.Fprintf(stderr, "bbcserved: %v: draining (in-flight jobs checkpoint, queued jobs rejected)\n", sig)
		sum := srv.Drain()
		fmt.Fprintf(stderr, "bbcserved: drained: %d in-flight cancelled, %d queued rejected\n",
			sum.Cancelled, sum.Rejected)

		shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		err := httpSrv.Shutdown(shutCtx)
		cancel()
		if err != nil {
			fmt.Fprintf(stderr, "bbcserved: shutdown: %v\n", err)
			code = runctl.ExitError
		}
		if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(stderr, "bbcserved: serve: %v\n", err)
			code = runctl.ExitError
		}
		rt.Journal.RunStatus(runctl.StatusCancelled.String(), code == runctl.ExitOK, map[string]any{
			"signal":              fmt.Sprint(sig),
			"cancelled_in_flight": sum.Cancelled,
			"rejected_queued":     sum.Rejected,
		})
	}

	if err := rt.Close(); err != nil {
		fmt.Fprintf(stderr, "bbcserved: %v\n", err)
		if code == runctl.ExitOK {
			code = runctl.ExitError
		}
	}
	return code
}
