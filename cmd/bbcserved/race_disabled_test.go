//go:build !race

package main

const raceEnabled = false
