package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bbc/internal/serve"
)

// TestMain doubles the test binary as the bbcserved binary: with
// BBCSERVED_HELPER=1 it runs main's run() on its own argv instead of
// the test suite, which is what lets the restart test SIGKILL a real
// process mid-scan — an in-process server could never be killed
// uncleanly.
func TestMain(m *testing.M) {
	if os.Getenv("BBCSERVED_HELPER") == "1" {
		os.Exit(run(os.Args[1:], os.Stderr))
	}
	os.Exit(m.Run())
}

// helperServer is one bbcserved process generation under test.
type helperServer struct {
	cmd    *exec.Cmd
	base   string // http://host:port from the listen announcement
	stderr *bytes.Buffer
}

// startHelper execs the test binary as bbcserved and waits for the
// listen announcement.
func startHelper(t *testing.T, args ...string) *helperServer {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "BBCSERVED_HELPER=1")
	pipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	h := &helperServer{cmd: cmd, stderr: &bytes.Buffer{}}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill() //nolint:errcheck
			cmd.Wait()         //nolint:errcheck
		}
	})
	announce := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(io.TeeReader(pipe, h.stderr))
		for sc.Scan() {
			if i := strings.Index(sc.Text(), "listening on "); i >= 0 {
				announce <- strings.TrimSpace(sc.Text()[i+len("listening on "):])
				break
			}
		}
		for sc.Scan() { // keep draining so the child never blocks on stderr
		}
		close(announce)
	}()
	select {
	case base, ok := <-announce:
		if !ok || base == "" {
			t.Fatalf("no listen announcement; stderr so far:\n%s", h.stderr.String())
		}
		h.base = base
	case <-time.After(30 * time.Second):
		t.Fatalf("helper never announced a listener; stderr so far:\n%s", h.stderr.String())
	}
	return h
}

// getJob polls one job view over HTTP.
func getJob(t *testing.T, base, id string) (state string, complete bool, result json.RawMessage) {
	t.Helper()
	res, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var v struct {
		State    string          `json:"state"`
		Complete bool            `json:"complete"`
		Result   json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(res.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v.State, v.Complete, v.Result
}

// TestKillRestartByteIdenticalResume is the crash-recovery acceptance
// test at the binary level: SIGKILL bbcserved mid-enumeration, restart
// it on the same -store and -data directories, and the recovered
// process re-queues the interrupted job, resumes its enumeration
// checkpoint, and serves a result byte-identical to an uninterrupted
// solve — then answers a resubmission of the same spec from the durable
// dedup tier without re-solving.
func TestKillRestartByteIdenticalResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills real server processes")
	}
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	dataDir := filepath.Join(dir, "data")
	game := `{"mode":"enumerate","game":{"kind":"uniform","n":6,"k":2}}`
	checkpointEvery := "65536"
	ckptWait := 30 * time.Second
	finishWait := 120 * time.Second
	if raceEnabled {
		// Race instrumentation slows the scan ~15-20x; a smaller space
		// keeps the kill-mid-scan window while the run stays in budget.
		game = `{"mode":"enumerate","game":{"kind":"uniform","n":5,"k":2}}`
		checkpointEvery = "512"
		ckptWait = 60 * time.Second
		finishWait = 300 * time.Second
	}

	// The uninterrupted reference, solved through the same serve stack
	// in-process so the result marshal path is identical.
	ref, err := serve.New(serve.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var refReq serve.Request
	if err := json.Unmarshal([]byte(game), &refReq); err != nil {
		t.Fatal(err)
	}
	refView, outcome, err := ref.Submit(&refReq)
	if err != nil || outcome != serve.Accepted {
		t.Fatalf("reference submit: outcome=%v err=%v", outcome, err)
	}
	refFinal, ok := ref.Wait(context.Background(), refView.ID)
	if !ok || !refFinal.Complete {
		t.Fatalf("reference job: %+v", refFinal)
	}
	ref.Drain()

	// Generation 1: start scanning, then die without warning. The small
	// checkpoint period guarantees resume state lands on disk quickly.
	serverArgs := []string{
		"-addr", "127.0.0.1:0", "-workers", "1",
		"-store", storeDir, "-data", dataDir,
		"-checkpoint-every", checkpointEvery,
		"-journal", filepath.Join(dir, "gen2.jsonl"), // only gen2's survives the kill uncorrupted
	}
	gen1 := startHelper(t, serverArgs...)
	res, err := http.Post(gen1.base+"/v1/jobs", "application/json", strings.NewReader(game))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		Job struct {
			ID  string `json:"id"`
			Key string `json:"key"`
		} `json:"job"`
	}
	err = json.NewDecoder(res.Body).Decode(&sub)
	res.Body.Close()
	if err != nil || res.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d err %v", res.StatusCode, err)
	}

	// Kill only after at least one enumeration checkpoint exists, so the
	// restart genuinely resumes mid-scan.
	ckpt := filepath.Join(dataDir, sub.Job.Key+".ckpt")
	deadline := time.Now().Add(ckptWait)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if state, _, _ := getJob(t, gen1.base, sub.Job.ID); state == "done" {
			t.Fatalf("job finished before any checkpoint was written; shrink -checkpoint-every")
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint appeared at %s", ckpt)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := gen1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	gen1.cmd.Wait() //nolint:errcheck

	// Generation 2: same store, same data dir. The interrupted job must
	// be re-queued and finish under its original id.
	gen2 := startHelper(t, serverArgs...)
	deadline = time.Now().Add(finishWait)
	var result json.RawMessage
	for {
		state, complete, r := getJob(t, gen2.base, sub.Job.ID)
		if state == "done" {
			if !complete {
				t.Fatalf("recovered job ended incomplete")
			}
			result = r
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered job %s never completed (state %s)", sub.Job.ID, state)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The resumed result is byte-identical to the uninterrupted solve.
	var got, want bytes.Buffer
	if err := json.Compact(&got, result); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&want, refFinal.Result); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("resumed result differs from uninterrupted solve:\n got %s\nwant %s", got.Bytes(), want.Bytes())
	}

	// The per-job journal proves this was a resume, not a recompute.
	jj, err := os.ReadFile(filepath.Join(dataDir, sub.Job.ID+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(jj, []byte(`"resume"`)) {
		t.Error("job journal records no resume event; the restart recomputed from scratch")
	}

	// Resubmitting the same spec is a durable dedup hit on the original
	// job — no second solve.
	res, err = http.Post(gen2.base+"/v1/jobs", "application/json", strings.NewReader(game))
	if err != nil {
		t.Fatal(err)
	}
	var dedup struct {
		Deduped bool `json:"deduped"`
		Job     struct {
			ID string `json:"id"`
		} `json:"job"`
	}
	err = json.NewDecoder(res.Body).Decode(&dedup)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !dedup.Deduped || dedup.Job.ID != sub.Job.ID {
		t.Errorf("resubmit after restart: deduped=%t id=%s, want hit on %s", dedup.Deduped, dedup.Job.ID, sub.Job.ID)
	}

	// The fingerprint query serves the recovered job.
	res, err = http.Get(gen2.base + "/v1/jobs?spec_fingerprint=" + sub.Job.Key)
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Jobs []struct {
			ID string `json:"id"`
		} `json:"jobs"`
	}
	err = json.NewDecoder(res.Body).Decode(&listing)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) != 1 || listing.Jobs[0].ID != sub.Job.ID {
		t.Errorf("fingerprint query after restart: %+v", listing.Jobs)
	}

	// A graceful stop: SIGTERM and a clean exit, closing the store.
	if err := gen2.cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := gen2.cmd.Wait(); err != nil {
		t.Fatalf("gen2 exit after SIGTERM: %v\nstderr:\n%s", err, gen2.stderr.String())
	}
	if !strings.Contains(gen2.stderr.String(), "store "+storeDir) {
		t.Errorf("gen2 stderr carries no store recovery report:\n%s", gen2.stderr.String())
	}
}
