package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"bbc/internal/obs"
)

// TestServeSubmitDrainCycle runs the full binary lifecycle in-process:
// start, discover the ephemeral port from the stderr announcement,
// submit an enumeration, poll it to completion, SIGTERM the process,
// and assert a clean drain (exit 0, final run_status journal record).
func TestServeSubmitDrainCycle(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "server.jsonl")

	stderrR, stderrW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	codeCh := make(chan int, 1)
	go func() {
		codeCh <- run([]string{
			"-addr", "127.0.0.1:0",
			"-workers", "2",
			"-data", filepath.Join(dir, "data"),
			"-journal", journal,
		}, stderrW)
		stderrW.Close()
	}()

	// The listen announcement carries the bound port.
	sc := bufio.NewScanner(stderrR)
	var base string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			base = strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if base == "" {
		t.Fatalf("no listen announcement on stderr (scan err: %v)", sc.Err())
	}
	// Keep draining stderr so the server never blocks on a full pipe.
	go func() {
		for sc.Scan() {
		}
	}()

	res, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"mode":"enumerate","game":{"kind":"uniform","n":4,"k":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		Job struct {
			ID string `json:"id"`
		} `json:"job"`
	}
	if err := json.NewDecoder(res.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusAccepted || sub.Job.ID == "" {
		t.Fatalf("submit: status %d, job %q", res.StatusCode, sub.Job.ID)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job never completed")
		}
		res, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s", base, sub.Job.ID))
		if err != nil {
			t.Fatal(err)
		}
		var v struct {
			State     string `json:"state"`
			RunStatus string `json:"run_status"`
			Complete  bool   `json:"complete"`
		}
		err = json.NewDecoder(res.Body).Decode(&v)
		res.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.State == "done" {
			if !v.Complete || v.RunStatus != "complete" {
				t.Fatalf("job ended %+v", v)
			}
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-codeCh:
		if code != 0 {
			t.Fatalf("exit code %d after SIGTERM drain, want 0", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain within 30s of SIGTERM")
	}

	// The server journal closed with a final run_status record.
	raw, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	var rec obs.Record
	if err := json.Unmarshal(lines[len(lines)-1], &rec); err != nil {
		t.Fatalf("parse journal tail: %v", err)
	}
	if rec.Type != "run_status" || rec.Data["complete"] != true {
		t.Fatalf("journal tail = %s, want a clean run_status record", lines[len(lines)-1])
	}
}
