package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bbc/internal/core"
	"bbc/internal/obs"
	"bbc/internal/runctl"
	"bbc/internal/serve"
)

// startWorker runs a real serve core behind an httptest listener.
func startWorker(t *testing.T) string {
	t.Helper()
	s, err := serve.New(serve.Config{Workers: 1, DataDir: t.TempDir(), Reg: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Drain()
	})
	return hs.URL
}

func runFleet(t *testing.T, o options) (*result, runctl.Status) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	o.stdout, o.stderr = &stdout, &stderr
	status, err := run(context.Background(), o)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	var out result
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		t.Fatalf("stdout is not one JSON object: %v\n%s", err, stdout.String())
	}
	return &out, status
}

func TestFleetCLIMatchesSingleBox(t *testing.T) {
	w1, w2 := startWorker(t), startWorker(t)

	spec, err := core.NewUniform(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := core.FullSpace(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.EnumeratePureNE(spec, core.SumDistances, ss, 0)
	if err != nil {
		t.Fatal(err)
	}

	journal := filepath.Join(t.TempDir(), "run.jsonl")
	out, status := runFleet(t, options{
		n: 4, k: 1, agg: "sum",
		workers:  w1 + " , " + w2 + "/", // whitespace and trailing slash are tolerated
		shards:   3,
		leaseTTL: 10 * time.Second,
		poll:     5 * time.Millisecond,
		jsonOut:  true,
		journal:  journal,
	})
	if status != runctl.StatusComplete {
		t.Errorf("status = %v, want complete (exit 0)", status)
	}
	if !out.Complete || out.Workers != 2 || out.Shards != 3 || out.ShardsDone != 3 {
		t.Fatalf("unexpected run shape: %+v", out)
	}

	// The deterministic projection the CI smoke test byte-compares.
	got, _ := json.Marshal(struct {
		Checked    uint64         `json:"checked"`
		Equilibria []core.Profile `json:"equilibria"`
	}{out.Checked, out.Equilibria})
	want, _ := json.Marshal(struct {
		Checked    uint64         `json:"checked"`
		Equilibria []core.Profile `json:"equilibria"`
	}{ref.Checked, ref.Equilibria})
	if !bytes.Equal(got, want) {
		t.Errorf("fleet merge != single-box scan:\n got %s\nwant %s", got, want)
	}

	// The journal must tell the lease story: every shard leased, the
	// final merge recorded.
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	var leases, merges int
	for _, line := range bytes.Split(bytes.TrimSpace(data), []byte("\n")) {
		var rec struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("bad journal line %q: %v", line, err)
		}
		switch rec.Type {
		case "lease":
			leases++
		case "merge":
			merges++
		}
	}
	if leases < 3 || merges != 1 {
		t.Errorf("journal has %d lease and %d merge records, want >= 3 and exactly 1", leases, merges)
	}
}

func TestFleetCLILoadSpecFile(t *testing.T) {
	w := startWorker(t)
	game := filepath.Join(t.TempDir(), "game.json")
	if err := os.WriteFile(game, []byte(`{"kind":"uniform","n":4,"k":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _ := runFleet(t, options{
		load: game, agg: "sum", workers: w, shards: 2,
		leaseTTL: 10 * time.Second, poll: 5 * time.Millisecond, jsonOut: true,
	})
	if !out.Complete || out.N != 4 {
		t.Fatalf("unexpected result from -load run: %+v", out)
	}
}

func TestFleetCLIUsageErrors(t *testing.T) {
	for name, o := range map[string]options{
		"no workers":          {n: 4, k: 1, agg: "sum"},
		"exclusive ckpt":      {n: 4, k: 1, agg: "sum", workers: "http://x", checkpoint: "a", resume: "b"},
		"unknown aggregation": {n: 4, k: 1, agg: "median", workers: "http://x"},
	} {
		o.stdout, o.stderr = &bytes.Buffer{}, &bytes.Buffer{}
		if _, err := run(context.Background(), o); err == nil {
			t.Errorf("%s: run accepted bad options", name)
		}
	}
}
