// Command bbcfleet coordinates a fault-tolerant sharded pure-NE scan
// across a fleet of bbcserved workers and merges the shard results into
// output byte-identical to a single-box scan.
//
// Usage:
//
//	bbcfleet -workers http://host1:8371,http://host2:8371
//	         [-load game.json | -n 6 -k 1] [-agg sum|max] [-pin]
//	         [-shards 0] [-lease-ttl 30s] [-solve-workers 0] [-poll 100ms]
//	         [-max-attempts 8] [-tail] [-json] [-timeout 0]
//	         [-checkpoint fleet.ckpt | -resume fleet.ckpt]
//	         [-journal run.jsonl] [-trace run.trace.json]
//	         [-progress] [-pprof :6060]
//
// The odometer space is split along the pivot axis into contiguous
// shard leases. Each lease is granted to a worker under a TTL deadline,
// dispatched over the bbcserved HTTP/JSON job API through a retrying
// client (jittered exponential backoff, Retry-After honored), and
// returned to pending when the worker fails or the deadline expires —
// a killed worker costs the fleet at most one lease TTL. Duplicate
// completions from re-lease races are verified and dropped, never
// merged twice. Concatenating shard results in range order reproduces
// the serial odometer order exactly, so a complete run's equilibria
// list and checked count are byte-identical to `bbcsim -enumerate` on
// the same game, whatever subset of workers failed along the way.
//
// Run control mirrors bbcsim: SIGINT/SIGTERM end the run gracefully
// with partial results (Complete: false and a status naming the
// reason), -timeout bounds wall time, and -checkpoint persists the
// lease table (atomic write-fsync-rename, previous generation kept) so
// -resume continues with every merged shard intact. Exit codes: 0
// complete, 1 error, 2 usage, 3 deadline truncation, 4 unrecoverable
// checkpoint corruption, 130 interrupted by signal.
//
// Output contract: stdout carries only the final result — a text
// summary, or with -json a single JSON object whose "checked" and
// "equilibria" fields are the deterministic merge (project those two
// for byte-comparison; the surrounding object also carries run
// metadata and counters). Diagnostics go to stderr.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"bbc/internal/core"
	"bbc/internal/fleet"
	"bbc/internal/obs"
	"bbc/internal/runctl"
)

// options collects every flag; run consumes it so tests can drive the
// command without a process boundary.
type options struct {
	n, k         int
	load         string
	agg          string
	pin          bool
	workers      string
	shards       int
	leaseTTL     time.Duration
	solveWorkers int
	poll         time.Duration
	maxAttempts  int
	apiKey       string
	tail         bool
	jsonOut      bool
	timeout      time.Duration
	checkpoint   string
	resume       string
	journal      string
	trace        string
	progress     bool
	pprof        string

	stdout, stderr io.Writer
}

func main() {
	var o options
	flag.IntVar(&o.n, "n", 6, "number of players (uniform game; ignored with -load)")
	flag.IntVar(&o.k, "k", 1, "per-player link budget (uniform game; ignored with -load)")
	flag.StringVar(&o.load, "load", "", "load a game spec or core.Instance JSON file instead of -n/-k")
	flag.StringVar(&o.agg, "agg", "sum", "cost aggregation: sum or max")
	flag.BoolVar(&o.pin, "pin", false, "scan the soundly pinned search space (unit-length games)")
	flag.StringVar(&o.workers, "workers", "", "comma-separated bbcserved base URLs (required)")
	flag.IntVar(&o.shards, "shards", 0, "shard leases to split the space into (0 = 4 per worker)")
	flag.DurationVar(&o.leaseTTL, "lease-ttl", 30*time.Second, "lease deadline without a heartbeat before a shard is re-leased")
	flag.IntVar(&o.solveWorkers, "solve-workers", 0, "per-shard solver parallelism on each worker (0 = serial)")
	flag.DurationVar(&o.poll, "poll", 100*time.Millisecond, "job status poll period (each poll heartbeats the lease)")
	flag.IntVar(&o.maxAttempts, "max-attempts", 0, "lease grants per shard before the run fails (0 = 8)")
	flag.StringVar(&o.apiKey, "api-key", "", "X-API-Key identifying this fleet to worker admission control")
	flag.BoolVar(&o.tail, "tail", false, "stream worker job events into the journal over SSE")
	flag.BoolVar(&o.jsonOut, "json", false, "emit the result as one JSON object on stdout")
	flag.DurationVar(&o.timeout, "timeout", 0, "wall-time budget, e.g. 30s; truncates with status deadline (0 = none)")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "persist the lease table to this file")
	flag.StringVar(&o.resume, "resume", "", "resume from this lease-table checkpoint (and keep persisting to it)")
	flag.StringVar(&o.journal, "journal", "", "write a JSONL run journal to this file")
	flag.StringVar(&o.trace, "trace", "", "write a Chrome trace-event JSON file of shard spans to this file")
	flag.BoolVar(&o.progress, "progress", false, "print shard progress to stderr")
	flag.StringVar(&o.pprof, "pprof", "", "serve pprof/expvar at this address (e.g. :6060)")
	flag.Parse()
	o.stdout, o.stderr = os.Stdout, os.Stderr

	ctx, signalled, stopSignals := runctl.SignalContext(context.Background())
	status, err := run(ctx, o)
	stopSignals()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bbcfleet: %v\n", err)
		os.Exit(runctl.ExitCodeForError(err))
	}
	if sig := signalled(); sig != nil {
		fmt.Fprintf(os.Stderr, "bbcfleet: interrupted by %v; partial results flushed\n", sig)
	}
	os.Exit(runctl.ExitCode(status))
}

// result is the machine-readable run outcome. Checked and Equilibria
// are the deterministic merge; everything else is run metadata.
type result struct {
	N          int              `json:"n"`
	Agg        string           `json:"agg"`
	Space      string           `json:"space"`
	SpaceSize  uint64           `json:"space_size"`
	Pivot      int              `json:"pivot"`
	Workers    int              `json:"workers"`
	Shards     int              `json:"shards"`
	ShardsDone int              `json:"shards_done"`
	Checked    uint64           `json:"checked"`
	Equilibria []core.Profile   `json:"equilibria"`
	Complete   bool             `json:"complete"`
	Status     string           `json:"status"`
	Counters   map[string]int64 `json:"counters,omitempty"`
}

// run executes one fleet scan according to the options.
func run(ctx context.Context, o options) (runctl.Status, error) {
	var workers []string
	for _, w := range strings.Split(o.workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			workers = append(workers, strings.TrimRight(w, "/"))
		}
	}
	if len(workers) == 0 {
		return runctl.StatusComplete, fmt.Errorf("at least one -workers URL is required")
	}
	if o.checkpoint != "" && o.resume != "" {
		return runctl.StatusComplete, fmt.Errorf("-checkpoint and -resume are exclusive; -resume keeps persisting to its path")
	}

	spec, err := loadSpec(o)
	if err != nil {
		return runctl.StatusComplete, err
	}

	ctx, cancelTimeout := runctl.WithDeadline(ctx, o.timeout)
	defer cancelTimeout()

	rt, err := obs.StartCLIConfig(obs.CLIConfig{
		Name:    "bbcfleet",
		Journal: o.journal,
		// A resumed run continues the interrupted run's journal instead of
		// truncating it: its records survive, sequence numbers continue.
		AppendJournal: o.resume != "",
		Trace:         o.trace,
		Pprof:         o.pprof,
		Stderr:        o.stderr,
	})
	if err != nil {
		return runctl.StatusComplete, err
	}

	cfg := fleet.Config{
		Spec:           spec,
		Agg:            o.agg,
		Pin:            o.pin,
		Workers:        workers,
		Shards:         o.shards,
		LeaseTTL:       o.leaseTTL,
		PollEvery:      o.poll,
		SolveWorkers:   o.solveWorkers,
		MaxAttempts:    o.maxAttempts,
		APIKey:         o.apiKey,
		CheckpointPath: o.checkpoint,
		Tail:           o.tail,
		Reg:            rt.Reg,
		Journal:        rt.Journal,
	}
	if o.resume != "" {
		cfg.CheckpointPath = o.resume
		cfg.Resume = true
	}

	var prog *obs.Progress
	if o.progress {
		total := o.shards
		if total <= 0 {
			total = 4 * len(workers)
		}
		prog = obs.StartProgress(o.stderr, "shards", uint64(total),
			obs.MetricReader(rt.Reg, obs.MFleetShardsDone), time.Second)
	}
	res, err := fleet.Run(ctx, cfg)
	prog.Stop()
	if err != nil {
		if cerr := rt.Close(); cerr != nil {
			fmt.Fprintf(o.stderr, "bbcfleet: %v\n", cerr)
		}
		return runctl.StatusComplete, err
	}

	out := &result{
		N:          spec.N(),
		Agg:        o.agg,
		Space:      res.Space,
		SpaceSize:  res.SpaceSize,
		Pivot:      res.Pivot,
		Workers:    len(workers),
		Shards:     res.Shards,
		ShardsDone: res.ShardsDone,
		Checked:    res.NE.Checked,
		Equilibria: res.NE.Equilibria,
		Complete:   res.NE.Complete,
		Status:     res.NE.Status.String(),
		Counters:   rt.Reg.Snapshot(),
	}
	rt.Journal.RunStatus(out.Status, out.Complete, map[string]any{
		"mode": "fleet", "shards": out.Shards, "shards_done": out.ShardsDone,
		"checked": out.Checked, "equilibria": len(out.Equilibria),
	})
	if cerr := rt.Close(); cerr != nil {
		return res.NE.Status, cerr
	}

	if o.jsonOut {
		enc := json.NewEncoder(o.stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return res.NE.Status, err
		}
		return res.NE.Status, nil
	}
	report(o.stdout, out)
	return res.NE.Status, nil
}

// loadSpec reads the game: a -load file holding either a bare spec or a
// core.Instance (whose profile is ignored — the fleet scans the whole
// space), or the -n/-k uniform game.
func loadSpec(o options) (core.Spec, error) {
	if o.load == "" {
		return core.NewUniform(o.n, o.k)
	}
	data, err := os.ReadFile(o.load)
	if err != nil {
		return nil, err
	}
	var inst core.Instance
	if err := json.Unmarshal(data, &inst); err == nil && inst.Spec != nil {
		return inst.Spec, nil
	}
	return core.UnmarshalSpec(data)
}

// report prints the human-readable fleet summary.
func report(w io.Writer, out *result) {
	fmt.Fprintf(w, "(n=%d, %s cost, %s space of %d profiles, pivot node %d)\n",
		out.N, out.Agg, out.Space, out.SpaceSize, out.Pivot)
	fmt.Fprintf(w, "fleet: %d workers, %d shards, %d merged\n", out.Workers, out.Shards, out.ShardsDone)
	fmt.Fprintf(w, "checked %d profiles, found %d pure Nash equilibria\n", out.Checked, len(out.Equilibria))
	if out.Complete {
		fmt.Fprintln(w, "run complete: merge is byte-identical to a single-box scan")
	} else {
		fmt.Fprintf(w, "run ended early (status %s): partial merge of %d/%d shards\n",
			out.Status, out.ShardsDone, out.Shards)
	}
}
