package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"bbc/internal/runctl"
)

// enumOptions returns a baseline enumerate-mode option set for a small
// uniform game.
func enumOptions(n, k int) (options, *bytes.Buffer, *bytes.Buffer) {
	o, stdout, stderr := testOptions(n, k)
	o.enumerate, o.jsonOut, o.parallel = true, true, 1
	return o, stdout, stderr
}

func decodeEnum(t *testing.T, stdout *bytes.Buffer) *enumResult {
	t.Helper()
	var out enumResult
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		t.Fatalf("stdout is not valid JSON: %v\n%s", err, stdout.String())
	}
	return &out
}

// TestEnumerateCLIComplete pins the happy path: a full scan reports
// status complete and exits 0.
func TestEnumerateCLIComplete(t *testing.T) {
	o, stdout, _ := enumOptions(5, 1)
	status, err := run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if status != runctl.StatusComplete {
		t.Fatalf("want complete status (exit 0), got %v (exit %d)", status, runctl.ExitCode(status))
	}
	out := decodeEnum(t, stdout)
	if !out.Complete || out.Status != "complete" || out.Checked != out.SpaceSize {
		t.Errorf("implausible complete scan: %+v", out)
	}
}

// TestEnumerateCLIBudgetCheckpointResume is the end-to-end run-control
// contract: a -max-profiles interrupted run exits with the budget code
// and leaves a valid checkpoint, and -resume from it reproduces the
// uninterrupted equilibria byte-identically.
func TestEnumerateCLIBudgetCheckpointResume(t *testing.T) {
	// Ground truth: one uninterrupted scan.
	oRef, refOut, _ := enumOptions(5, 1)
	if _, err := run(context.Background(), oRef); err != nil {
		t.Fatal(err)
	}
	ref := decodeEnum(t, refOut)

	ckpt := t.TempDir() + "/enum.ckpt"
	o, stdout, _ := enumOptions(5, 1)
	o.maxProfiles, o.checkpoint = ref.Checked/2, ckpt
	status, err := run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if status != runctl.StatusBudget || runctl.ExitCode(status) != runctl.ExitBudget {
		t.Fatalf("budget-truncated run: want exit %d, got status %v", runctl.ExitBudget, status)
	}
	partial := decodeEnum(t, stdout)
	if partial.Complete || partial.Status != "budget" {
		t.Fatalf("want partial budget result, got %+v", partial)
	}
	env, err := runctl.Load(ckpt)
	if err != nil {
		t.Fatalf("interrupted run left no valid checkpoint: %v", err)
	}
	if env.Kind != "enumeration" || env.Status != runctl.StatusBudget {
		t.Errorf("checkpoint envelope: kind=%q status=%v", env.Kind, env.Status)
	}

	// Resume to completion and compare byte-identically.
	o2, stdout2, _ := enumOptions(5, 1)
	o2.resume = ckpt
	status, err = run(context.Background(), o2)
	if err != nil {
		t.Fatal(err)
	}
	if status != runctl.StatusComplete {
		t.Fatalf("resumed run did not complete: %v", status)
	}
	resumed := decodeEnum(t, stdout2)
	refEq, _ := json.Marshal(ref.Equilibria)
	resEq, _ := json.Marshal(resumed.Equilibria)
	if !bytes.Equal(refEq, resEq) {
		t.Errorf("resumed equilibria not byte-identical:\n got %s\nwant %s", resEq, refEq)
	}
	if resumed.Checked != ref.Checked {
		t.Errorf("resumed checked %d profiles, want %d", resumed.Checked, ref.Checked)
	}
}

// TestEnumerateCLIResumeRejectsWrongGame: a checkpoint from one game
// must not resume a scan of another.
func TestEnumerateCLIResumeRejectsWrongGame(t *testing.T) {
	ckpt := t.TempDir() + "/enum.ckpt"
	o, _, _ := enumOptions(5, 1)
	o.maxProfiles, o.checkpoint = 10, ckpt
	if _, err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	o2, _, _ := enumOptions(6, 1)
	o2.resume = ckpt
	if _, err := run(context.Background(), o2); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("want fingerprint mismatch error, got %v", err)
	}
}

// TestEnumerateCLIDeadline: an expired -timeout yields a deadline
// partial result and the truncation exit code.
func TestEnumerateCLIDeadline(t *testing.T) {
	o, stdout, _ := enumOptions(7, 2) // large enough to outlive a tiny deadline
	o.timeout = time.Nanosecond
	status, err := run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if status != runctl.StatusDeadline || runctl.ExitCode(status) != runctl.ExitBudget {
		t.Fatalf("want deadline status (exit %d), got %v", runctl.ExitBudget, status)
	}
	out := decodeEnum(t, stdout)
	if out.Complete || out.Status != "deadline" {
		t.Errorf("want deadline partial result, got %+v", out)
	}
}

// TestEnumerateCLIJournalRunStatus: enumerate-mode journals end with a
// run_status record carrying the scan outcome.
func TestEnumerateCLIJournalRunStatus(t *testing.T) {
	path := t.TempDir() + "/enum.jsonl"
	o, _, _ := enumOptions(5, 1)
	o.journal = path
	if _, err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	var last map[string]any
	if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
		t.Fatal(err)
	}
	if last["type"] != "run_status" {
		t.Errorf("journal must end with run_status, got %v", last["type"])
	}
}

// TestEnumerateCLIQuotientAndScalarMatch pins the CLI differential
// contract: -quotient and -batch-bfs=false are pure performance switches
// — checked counts, equilibria bytes, and completion status all match the
// default scan exactly.
func TestEnumerateCLIQuotientAndScalarMatch(t *testing.T) {
	oRef, refOut, _ := enumOptions(5, 1)
	if _, err := run(context.Background(), oRef); err != nil {
		t.Fatal(err)
	}
	ref := decodeEnum(t, refOut)
	refEq, _ := json.Marshal(ref.Equilibria)

	for _, tc := range []struct {
		name string
		mod  func(o *options)
	}{
		{"quotient", func(o *options) { o.quotient = true }},
		{"quotient-parallel", func(o *options) { o.quotient = true; o.parallel = 3 }},
		{"scalar-bfs", func(o *options) { o.batchBFS = false }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			o, stdout, stderr := enumOptions(5, 1)
			tc.mod(&o)
			status, err := run(context.Background(), o)
			if err != nil {
				t.Fatal(err)
			}
			if status != runctl.StatusComplete {
				t.Fatalf("want complete, got %v", status)
			}
			out := decodeEnum(t, stdout)
			gotEq, _ := json.Marshal(out.Equilibria)
			if !bytes.Equal(gotEq, refEq) {
				t.Errorf("equilibria diverged:\n got %s\nwant %s", gotEq, refEq)
			}
			if out.Checked != ref.Checked || !out.Complete {
				t.Errorf("checked=%d complete=%v, want checked=%d complete=true", out.Checked, out.Complete, ref.Checked)
			}
			if o.quotient {
				if out.Quotient < 2 {
					t.Errorf("quotient_order=%d, want >= 2", out.Quotient)
				}
				if !strings.Contains(stderr.String(), "symmetry group of order") {
					t.Errorf("missing group-order note on stderr:\n%s", stderr.String())
				}
			}
		})
	}
}

// TestEnumerateCLIQuotientCheckpointIncompatible pins the fingerprint
// qualifier: a plain scan's checkpoint must not resume a quotiented scan
// (the cursors mean different things), and vice versa.
func TestEnumerateCLIQuotientCheckpointIncompatible(t *testing.T) {
	ckpt := t.TempDir() + "/enum.ckpt"
	o, _, _ := enumOptions(5, 1)
	o.maxProfiles, o.checkpoint = 10, ckpt
	if _, err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	o2, _, _ := enumOptions(5, 1)
	o2.resume, o2.quotient = ckpt, true
	if _, err := run(context.Background(), o2); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("quotient run accepted a plain checkpoint: %v", err)
	}
}

// TestEnumerateCLIQuotientResume runs the quotiented scan through a
// budget interruption and a -resume leg, demanding the uninterrupted
// equilibria byte-identically.
func TestEnumerateCLIQuotientResume(t *testing.T) {
	oRef, refOut, _ := enumOptions(5, 1)
	if _, err := run(context.Background(), oRef); err != nil {
		t.Fatal(err)
	}
	ref := decodeEnum(t, refOut)

	ckpt := t.TempDir() + "/enum.ckpt"
	o, _, _ := enumOptions(5, 1)
	o.quotient, o.maxProfiles, o.checkpoint = true, ref.Checked/2, ckpt
	if status, err := run(context.Background(), o); err != nil || status != runctl.StatusBudget {
		t.Fatalf("interrupted leg: status=%v err=%v", status, err)
	}
	o2, stdout2, _ := enumOptions(5, 1)
	o2.quotient, o2.resume = true, ckpt
	if status, err := run(context.Background(), o2); err != nil || status != runctl.StatusComplete {
		t.Fatalf("resumed leg: status=%v err=%v", status, err)
	}
	resumed := decodeEnum(t, stdout2)
	refEq, _ := json.Marshal(ref.Equilibria)
	resEq, _ := json.Marshal(resumed.Equilibria)
	if !bytes.Equal(refEq, resEq) {
		t.Errorf("resumed quotient equilibria not byte-identical:\n got %s\nwant %s", resEq, refEq)
	}
	if resumed.Checked != ref.Checked {
		t.Errorf("resumed checked %d, want %d", resumed.Checked, ref.Checked)
	}
}

// TestWalkModeRejectsCheckpointFlags pins the usage contract:
// -checkpoint/-resume apply to -enumerate runs only.
func TestWalkModeRejectsCheckpointFlags(t *testing.T) {
	o, _, _ := testOptions(5, 1)
	o.checkpoint = "x.ckpt"
	if _, err := run(context.Background(), o); err == nil {
		t.Fatal("walk mode accepted -checkpoint")
	}
}
