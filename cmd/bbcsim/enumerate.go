package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"bbc/internal/core"
	"bbc/internal/group"
	"bbc/internal/obs"
	"bbc/internal/runctl"
)

// enumCheckpointKind names the bbcsim enumeration snapshot schema inside
// the runctl.Checkpoint envelope.
const enumCheckpointKind = "enumeration"

// enumResult is the machine-readable enumeration outcome (-json).
type enumResult struct {
	N          int              `json:"n"`
	Agg        string           `json:"agg"`
	Space      string           `json:"space"` // full | pinned
	SpaceSize  uint64           `json:"space_size"`
	Workers    int              `json:"workers"`
	Checked    uint64           `json:"checked"`
	Status     string           `json:"status"` // complete | cancelled | deadline | budget
	Complete   bool             `json:"complete"`
	Quotient   int              `json:"quotient_order,omitempty"`
	Equilibria []core.Profile   `json:"equilibria"`
	Counters   map[string]int64 `json:"counters,omitempty"`
}

// runEnumerate executes the exhaustive pure-NE scan mode with run
// control: the scan honors ctx (signals, -timeout), the -max-ne and
// -max-profiles budgets, and persists/consumes -checkpoint/-resume
// snapshots so an interrupted scan can continue without re-checking any
// profile.
func runEnumerate(ctx context.Context, o options, spec core.Spec, agg core.Aggregation, rt *obs.Runtime) (runctl.Status, error) {
	var (
		ss        *core.SearchSpace
		spaceName = "full"
		err       error
	)
	if o.pin {
		spaceName = "pinned"
		ss, err = core.PinnedSpace(spec, 0)
	} else {
		ss, err = core.FullSpace(spec, 0)
	}
	if err != nil {
		return runctl.StatusComplete, err
	}
	fp := core.EnumFingerprint(spec, agg, ss)

	var quo *core.Quotient
	if o.quotient {
		gens, err := quotientPerms(spec)
		if err != nil {
			return runctl.StatusComplete, fmt.Errorf("-quotient: %w", err)
		}
		if quo, err = core.NewQuotient(spec, ss, gens); err != nil {
			return runctl.StatusComplete, fmt.Errorf("-quotient: %w", err)
		}
		// A quotiented cursor skips states a plain scan would visit, so its
		// checkpoints are only exchangeable with scans under the same group:
		// the fingerprint gains a group qualifier.
		fp = quo.QualifyFingerprint(fp)
		fmt.Fprintf(o.stderr, "bbcsim: quotienting the scan by a symmetry group of order %d\n", quo.Order())
	}

	var resume *core.EnumCheckpoint
	if o.resume != "" {
		st := &runctl.Store{Path: o.resume}
		env, rec, err := st.Load()
		if err != nil {
			return runctl.StatusComplete, err
		}
		if rec.Fallback {
			fmt.Fprintf(o.stderr, "bbcsim: checkpoint %s was not loadable (%v); resuming from the previous generation %s\n",
				o.resume, rec.Err, rec.Path)
			if rec.Quarantined != "" {
				fmt.Fprintf(o.stderr, "bbcsim: the corrupt snapshot was preserved at %s for inspection\n", rec.Quarantined)
			}
			rt.Journal.Event("checkpoint_recovered", map[string]any{
				"path":        o.resume,
				"loaded_from": rec.Path,
				"quarantined": rec.Quarantined,
				"reason":      fmt.Sprint(rec.Err),
			})
		}
		var cp core.EnumCheckpoint
		if err := env.Decode(enumCheckpointKind, fp, &cp); err != nil {
			return runctl.StatusComplete, err
		}
		resume = &cp
		fmt.Fprintf(o.stderr, "bbcsim: resuming enumeration from %s (%d profiles already checked)\n",
			rec.Path, cp.Checked)
	}

	// save persists a snapshot atomically — with generation rotation and
	// bounded retry for transient errors — and journals the event; scan
	// progress is never lost to a torn write, and the previous good
	// snapshot survives as .prev until the new one is published.
	ckptStore := &runctl.Store{Path: o.checkpoint, Retries: 2}
	save := func(cp *core.EnumCheckpoint, status runctl.Status) error {
		if o.checkpoint == "" || cp == nil {
			return nil
		}
		env, err := runctl.NewCheckpoint(enumCheckpointKind, fp, status, rt.Reg.Snapshot(), cp)
		if err != nil {
			return err
		}
		if err := ckptStore.Save(env); err != nil {
			return err
		}
		rt.Journal.Checkpoint(o.checkpoint, enumCheckpointKind, map[string]any{
			"checked": cp.Checked,
		})
		return nil
	}

	var prog *obs.Progress
	if o.progress {
		prog = obs.StartProgress(o.stderr, "enumerate", ss.Size(),
			obs.MetricReader(rt.Reg, obs.MProfilesChecked), time.Second)
	}
	cfg := core.EnumConfig{
		Ctx:             ctx,
		MaxEquilibria:   o.maxNE,
		MaxProfiles:     o.maxProfiles,
		Resume:          resume,
		Workers:         o.parallel,
		Quotient:        quo,
		DisableBatchBFS: !o.batchBFS,
		OnCheckpoint: func(cp *core.EnumCheckpoint) {
			// Mid-run snapshot: the run has not ended, so the envelope
			// records the control state at save time. A failed save
			// degrades gracefully — the failure is journaled and the scan
			// keeps computing; the next interval retries from scratch.
			if err := save(cp, runctl.StatusFromContext(ctx)); err != nil {
				fmt.Fprintf(o.stderr, "bbcsim: checkpoint save failed (scan continues): %v\n", err)
				rt.Journal.Event("checkpoint_error", map[string]any{
					"path": o.checkpoint, "checked": cp.Checked, "error": err.Error(),
				})
			}
		},
	}
	var res *core.NEResult
	if o.parallel == 1 {
		res, err = core.EnumeratePureNEOpts(spec, agg, ss, cfg)
	} else {
		res, err = core.EnumeratePureNEParallelOpts(spec, agg, ss, cfg)
	}
	prog.Stop()
	if err != nil {
		return runctl.StatusComplete, err
	}
	// Final snapshot: on any early stop with work left, leave a resumable
	// checkpoint carrying the definitive stop status. A failure here must
	// not swallow the computed result — the summary still prints and the
	// error surfaces afterwards.
	var finalSaveErr error
	if res.Resume != nil {
		if finalSaveErr = save(res.Resume, res.Status); finalSaveErr != nil {
			finalSaveErr = fmt.Errorf("final checkpoint: %w", finalSaveErr)
			fmt.Fprintf(o.stderr, "bbcsim: %v (results follow, but the run cannot be resumed)\n", finalSaveErr)
			rt.Journal.Event("checkpoint_error", map[string]any{
				"path": o.checkpoint, "checked": res.Checked, "error": finalSaveErr.Error(),
			})
		}
	}

	out := &enumResult{
		N:          spec.N(),
		Agg:        o.agg,
		Space:      spaceName,
		SpaceSize:  ss.Size(),
		Workers:    o.parallel,
		Checked:    res.Checked,
		Status:     res.Status.String(),
		Complete:   res.Complete,
		Equilibria: res.Equilibria,
		Counters:   rt.Reg.Snapshot(),
	}
	if quo != nil {
		out.Quotient = quo.Order()
	}
	rt.Journal.Event("summary", map[string]any{
		"n":          out.N,
		"agg":        out.Agg,
		"space":      out.Space,
		"space_size": out.SpaceSize,
		"checked":    out.Checked,
		"equilibria": len(out.Equilibria),
	})
	rt.Journal.RunStatus(out.Status, out.Complete, map[string]any{
		"mode":    "enumerate",
		"checked": out.Checked,
	})

	if o.jsonOut {
		enc := json.NewEncoder(o.stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return res.Status, err
		}
		return enumExitStatus(o, res), finalSaveErr
	}
	reportEnum(o.stdout, out, res)
	return enumExitStatus(o, res), finalSaveErr
}

// quotientPerms derives the symmetry generators backing -quotient. The
// uniform game's full automorphism group is Sₙ — far past any useful
// closure — so it gets the structural cyclic translations u ↦ u+t plus
// the reflection u ↦ −u (the dihedral group, order 2n). Every other spec
// is searched for its automorphisms, with a cap that rejects groups too
// large to quotient profitably.
func quotientPerms(spec core.Spec) ([][]int, error) {
	if _, ok := spec.(*core.Uniform); ok {
		z := group.MustCyclic(spec.N())
		gens := group.Translations(z)
		return append(gens, group.Negation(z)), nil
	}
	return core.SpecAutomorphisms(spec, 512)
}

// enumExitStatus maps a scan result to the process exit status. Hitting
// the caller's own -max-ne cap after finding the asked-for equilibria is
// a successful run; every other early stop is a truncation.
func enumExitStatus(o options, res *core.NEResult) runctl.Status {
	if res.Status == runctl.StatusBudget && o.maxNE > 0 && len(res.Equilibria) >= o.maxNE {
		return runctl.StatusComplete
	}
	return res.Status
}

// reportEnum prints the human-readable enumeration summary.
func reportEnum(w io.Writer, out *enumResult, res *core.NEResult) {
	fmt.Fprintf(w, "(n=%d, %s cost, %s space of %d profiles, workers=%d)\n",
		out.N, out.Agg, out.Space, out.SpaceSize, out.Workers)
	fmt.Fprintf(w, "checked: %d profiles, equilibria found: %d\n", out.Checked, len(out.Equilibria))
	switch {
	case out.Complete:
		fmt.Fprintln(w, "outcome: complete scan")
	case res.Status == runctl.StatusCancelled:
		fmt.Fprintln(w, "outcome: interrupted (partial result; resume with -resume)")
	case res.Status == runctl.StatusDeadline:
		fmt.Fprintln(w, "outcome: wall-time budget exhausted (partial result; resume with -resume)")
	default:
		fmt.Fprintln(w, "outcome: work budget exhausted (partial result)")
	}
	for i, eq := range out.Equilibria {
		if i == 5 {
			fmt.Fprintf(w, "  ... %d more\n", len(out.Equilibria)-5)
			break
		}
		fmt.Fprintf(w, "  NE %d: %v\n", i, eq)
	}
}
