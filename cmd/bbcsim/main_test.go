package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"bbc/internal/obs"
)

// testOptions returns a baseline option set writing to in-memory buffers.
func testOptions(n, k int) (options, *bytes.Buffer, *bytes.Buffer) {
	var stdout, stderr bytes.Buffer
	return options{
		n: n, k: k,
		agg: "sum", sched: "round-robin", start: "empty",
		seed: 1, steps: 200,
		batchBFS: true, // mirror the flag default
		stdout:   &stdout, stderr: &stderr,
	}, &stdout, &stderr
}

func TestRunValidConfigurations(t *testing.T) {
	tests := []struct {
		name              string
		agg, sched, start string
	}{
		{name: "defaults", agg: "sum", sched: "round-robin", start: "empty"},
		{name: "max cost", agg: "max", sched: "round-robin", start: "empty"},
		{name: "max-cost-first", agg: "sum", sched: "max-cost-first", start: "random"},
		{name: "random walk", agg: "sum", sched: "random", start: "random"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			o, _, _ := testOptions(6, 1)
			o.agg, o.sched, o.start = tt.agg, tt.sched, tt.start
			if _, err := run(context.Background(), o); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRunMovesToStderr pins the output contract: move lines go to
// stderr, the result summary to stdout.
func TestRunMovesToStderr(t *testing.T) {
	o, stdout, stderr := testOptions(5, 1)
	o.seed, o.steps, o.printMoves = 2, 100, true
	if _, err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(stdout.String(), "rewires") {
		t.Error("trace lines leaked to stdout")
	}
	if !strings.Contains(stderr.String(), "rewires") {
		t.Error("trace lines missing from stderr")
	}
	if !strings.Contains(stdout.String(), "outcome:") {
		t.Error("summary missing from stdout")
	}
}

func TestRunJSONOutput(t *testing.T) {
	o, stdout, _ := testOptions(6, 1)
	o.jsonOut = true
	if _, err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	var out result
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		t.Fatalf("stdout is not valid JSON: %v\n%s", err, stdout.String())
	}
	if out.N != 6 || out.Outcome == "" || out.Steps <= 0 {
		t.Errorf("implausible JSON result: %+v", out)
	}
	if len(out.Counters) == 0 {
		t.Error("JSON result carries no registry counters")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	tests := []struct {
		name              string
		n, k              int
		agg, sched, start string
	}{
		{name: "bad n", n: 1, k: 1, agg: "sum", sched: "round-robin", start: "empty"},
		{name: "bad agg", n: 5, k: 1, agg: "median", sched: "round-robin", start: "empty"},
		{name: "bad sched", n: 5, k: 1, agg: "sum", sched: "zigzag", start: "empty"},
		{name: "bad start", n: 5, k: 1, agg: "sum", sched: "round-robin", start: "willows"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			o, _, _ := testOptions(tt.n, tt.k)
			o.agg, o.sched, o.start, o.steps = tt.agg, tt.sched, tt.start, 50
			if _, err := run(context.Background(), o); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestRunLoadedInstance(t *testing.T) {
	// Generate a gadget instance file and walk it: the gadget must loop.
	dir := t.TempDir()
	path := dir + "/gadget.json"
	data := `{"game":{"kind":"uniform","n":6,"k":1},"profile":[[1],[2],[3],[4],[5],[0]]}`
	if err := os.WriteFile(path, []byte(data), 0o600); err != nil {
		t.Fatal(err)
	}
	o, _, _ := testOptions(0, 0)
	o.load, o.steps = path, 100
	if _, err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	o.load = dir + "/missing.json"
	if _, err := run(context.Background(), o); err == nil {
		t.Fatal("expected error for missing file")
	}
	if err := os.WriteFile(path, []byte("{"), 0o600); err != nil {
		t.Fatal(err)
	}
	o.load = path
	if _, err := run(context.Background(), o); err == nil {
		t.Fatal("expected error for corrupt file")
	}
}

// TestJournalGolden pins the JSONL journal contract: every line is a
// valid obs.Record with the stable top-level schema, move records carry
// the move payload, and the file ends with exactly one summary record
// followed by exactly one run_status record whose move count matches the
// number of move records.
func TestJournalGolden(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/run.jsonl"
	o, _, stderr := testOptions(8, 2)
	o.steps, o.journal, o.progress = 0, path, true
	if _, err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "bbc: walk") {
		t.Errorf("progress reporter printed nothing to stderr:\n%s", stderr.String())
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var (
		moves     int
		summaries int
		statuses  int
		lastType  string
		seq       int64
	)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Bytes()
		var rec obs.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
		// Top-level schema stability: exactly the known keys.
		var raw map[string]json.RawMessage
		if err := json.Unmarshal(line, &raw); err != nil {
			t.Fatal(err)
		}
		for key := range raw {
			switch key {
			case "type", "seq", "elapsed_ms", "run_id", "data", "counters":
			default:
				t.Errorf("unexpected top-level journal key %q", key)
			}
		}
		if rec.RunID != obs.RunID() {
			t.Errorf("%s record run_id = %q, want the process run id %q", rec.Type, rec.RunID, obs.RunID())
		}
		if rec.Seq != seq {
			t.Errorf("journal seq gap: got %d, want %d", rec.Seq, seq)
		}
		seq++
		if rec.ElapsedMS < 0 {
			t.Errorf("negative elapsed_ms in %s record", rec.Type)
		}
		if len(rec.Counters) == 0 {
			t.Errorf("%s record lacks counters", rec.Type)
		}
		lastType = rec.Type
		switch rec.Type {
		case "move":
			moves++
			for _, want := range []string{"step", "node", "from", "to", "cost_before", "cost_after"} {
				if _, ok := rec.Data[want]; !ok {
					t.Errorf("move record missing data key %q", want)
				}
			}
		case "summary":
			summaries++
			if got := rec.Data["moves"]; got != float64(moves) {
				t.Errorf("summary moves = %v, want %d", got, moves)
			}
			if rec.Data["outcome"] == "" {
				t.Error("summary lacks outcome")
			}
		case obs.EventRunStatus:
			statuses++
			if _, ok := rec.Data["status"]; !ok {
				t.Error("run_status record lacks status")
			}
			if _, ok := rec.Data["complete"]; !ok {
				t.Error("run_status record lacks complete")
			}
		default:
			t.Errorf("unexpected record type %q", rec.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if moves == 0 {
		t.Error("journal recorded no moves for a converging walk")
	}
	if summaries != 1 {
		t.Errorf("journal must carry exactly one summary record (got %d)", summaries)
	}
	if statuses != 1 || lastType != obs.EventRunStatus {
		t.Errorf("journal must end with exactly one run_status record (got %d, last %q)", statuses, lastType)
	}
}
