package main

import (
	"os"
	"testing"
)

func TestRunValidConfigurations(t *testing.T) {
	tests := []struct {
		name              string
		agg, sched, start string
	}{
		{name: "defaults", agg: "sum", sched: "round-robin", start: "empty"},
		{name: "max cost", agg: "max", sched: "round-robin", start: "empty"},
		{name: "max-cost-first", agg: "sum", sched: "max-cost-first", start: "random"},
		{name: "random walk", agg: "sum", sched: "random", start: "random"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(6, 1, tt.agg, tt.sched, tt.start, 1, 200, false); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunTrace(t *testing.T) {
	if err := run(5, 1, "sum", "round-robin", "empty", 2, 100, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	tests := []struct {
		name              string
		n, k              int
		agg, sched, start string
	}{
		{name: "bad n", n: 1, k: 1, agg: "sum", sched: "round-robin", start: "empty"},
		{name: "bad agg", n: 5, k: 1, agg: "median", sched: "round-robin", start: "empty"},
		{name: "bad sched", n: 5, k: 1, agg: "sum", sched: "zigzag", start: "empty"},
		{name: "bad start", n: 5, k: 1, agg: "sum", sched: "round-robin", start: "willows"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.n, tt.k, tt.agg, tt.sched, tt.start, 1, 50, false); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestRunLoadedInstance(t *testing.T) {
	// Generate a gadget instance file and walk it: the gadget must loop.
	dir := t.TempDir()
	path := dir + "/gadget.json"
	data := `{"game":{"kind":"uniform","n":6,"k":1},"profile":[[1],[2],[3],[4],[5],[0]]}`
	if err := os.WriteFile(path, []byte(data), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := runLoaded(path, "sum", "round-robin", 1, 100, false); err != nil {
		t.Fatal(err)
	}
	if err := runLoaded(dir+"/missing.json", "sum", "round-robin", 1, 100, false); err == nil {
		t.Fatal("expected error for missing file")
	}
	if err := os.WriteFile(path, []byte("{"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := runLoaded(path, "sum", "round-robin", 1, 100, false); err == nil {
		t.Fatal("expected error for corrupt file")
	}
}
