package main

// End-to-end corruption recovery through the real CLI flow: a corrupt
// checkpoint must be quarantined, the previous generation used
// automatically, and the resumed scan must still reproduce the
// uninterrupted result; only when no generation is loadable may the run
// fail, and then with a plain-language diagnosis and the corruption
// exit code.

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"bbc/internal/obs"
	"bbc/internal/runctl"
)

// interruptTwice produces a checkpoint with two generations (primary
// and .prev) by running two budget-truncated legs of the same scan.
// It returns the checkpoint path and the uninterrupted reference result.
func interruptTwice(t *testing.T) (string, *enumResult) {
	t.Helper()
	oRef, refOut, _ := enumOptions(5, 1)
	if _, err := run(context.Background(), oRef); err != nil {
		t.Fatal(err)
	}
	ref := decodeEnum(t, refOut)

	ckpt := t.TempDir() + "/enum.ckpt"
	o1, _, _ := enumOptions(5, 1)
	o1.maxProfiles, o1.checkpoint = ref.Checked/3, ckpt
	if _, err := run(context.Background(), o1); err != nil {
		t.Fatal(err)
	}
	o2, _, _ := enumOptions(5, 1)
	o2.maxProfiles, o2.resume, o2.checkpoint = 2*ref.Checked/3, ckpt, ckpt
	if _, err := run(context.Background(), o2); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt + ".prev"); err != nil {
		t.Fatalf("second save did not rotate the first generation to .prev: %v", err)
	}
	return ckpt, ref
}

// corrupt flips a byte in the middle of the file, keeping it valid
// UTF-8 so only the checksum (not the JSON parser) can catch it.
func corrupt(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := len(data) / 2
	for data[i] == 'x' {
		i++
	}
	data[i] = 'x'
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestEnumerateCLICorruptCheckpointFallback: bit-flip the primary
// snapshot; the resume must quarantine it, fall back to .prev, journal
// the recovery, and still complete the scan with the reference
// equilibria.
func TestEnumerateCLICorruptCheckpointFallback(t *testing.T) {
	ckpt, ref := interruptTwice(t)
	corrupt(t, ckpt)

	journal := t.TempDir() + "/resume.jsonl"
	o, stdout, stderr := enumOptions(5, 1)
	o.resume, o.journal = ckpt, journal
	status, err := run(context.Background(), o)
	if err != nil {
		t.Fatalf("recovery resume failed: %v", err)
	}
	if status != runctl.StatusComplete {
		t.Fatalf("recovered run did not complete: %v", status)
	}

	resumed := decodeEnum(t, stdout)
	refEq, _ := json.Marshal(ref.Equilibria)
	resEq, _ := json.Marshal(resumed.Equilibria)
	if !bytes.Equal(refEq, resEq) {
		t.Errorf("recovered scan equilibria differ:\n got %s\nwant %s", resEq, refEq)
	}
	if resumed.Checked != ref.Checked {
		t.Errorf("recovered scan checked %d profiles, want %d", resumed.Checked, ref.Checked)
	}

	msg := stderr.String()
	if !strings.Contains(msg, "previous generation") {
		t.Errorf("stderr does not explain the fallback:\n%s", msg)
	}
	if _, err := os.Stat(ckpt + ".corrupt"); err != nil {
		t.Errorf("corrupt snapshot was not quarantined to .corrupt: %v", err)
	}
	if !strings.Contains(msg, ckpt+".corrupt") {
		t.Errorf("stderr does not name the quarantine file:\n%s", msg)
	}

	recs, _, err := obs.RecoverJournal(nil, journal)
	if err != nil {
		t.Fatalf("recovery journal: %v", err)
	}
	found := false
	for _, rec := range recs {
		found = found || rec.Type == "checkpoint_recovered"
	}
	if !found {
		t.Errorf("journal has no checkpoint_recovered record: %+v", recs)
	}
}

// TestEnumerateCLITruncatedCheckpointFallback: the classic crash
// artifact — a truncated primary — recovers the same way.
func TestEnumerateCLITruncatedCheckpointFallback(t *testing.T) {
	ckpt, _ := interruptTwice(t)
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	o, _, stderr := enumOptions(5, 1)
	o.resume = ckpt
	status, err := run(context.Background(), o)
	if err != nil {
		t.Fatalf("recovery resume failed: %v", err)
	}
	if status != runctl.StatusComplete {
		t.Fatalf("recovered run did not complete: %v", status)
	}
	if !strings.Contains(stderr.String(), "previous generation") {
		t.Errorf("stderr does not explain the fallback:\n%s", stderr.String())
	}
}

// TestEnumerateCLINoLoadableCheckpoint: when every generation is
// corrupt the run must fail with a plain-language diagnosis and the
// dedicated corruption exit code — not a raw JSON error.
func TestEnumerateCLINoLoadableCheckpoint(t *testing.T) {
	ckpt, _ := interruptTwice(t)
	corrupt(t, ckpt)
	corrupt(t, ckpt+".prev")

	o, _, _ := enumOptions(5, 1)
	o.resume = ckpt
	_, err := run(context.Background(), o)
	if err == nil {
		t.Fatal("resume from doubly-corrupt checkpoint succeeded")
	}
	if !runctl.IsCorrupt(err) {
		t.Fatalf("want a corruption error, got %v", err)
	}
	if got := runctl.ExitCodeForError(err); got != runctl.ExitCorrupt {
		t.Fatalf("corruption must exit %d, got %d", runctl.ExitCorrupt, got)
	}
	msg := err.Error()
	for _, want := range []string{"quarantined", "previous generation", "restore a snapshot"} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnosis missing %q:\n%s", want, msg)
		}
	}
}
