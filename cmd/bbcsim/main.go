// Command bbcsim runs a best-response walk on a BBC game and reports the
// outcome: convergence to a pure Nash equilibrium, a certified loop, or
// step exhaustion, plus cost and connectivity statistics.
//
// Usage:
//
//	bbcsim -n 12 -k 2 [-agg sum|max] [-sched round-robin|max-cost-first|random]
//	       [-start empty|random] [-seed 1] [-steps 0] [-trace]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"bbc/internal/analysis"
	"bbc/internal/core"
	"bbc/internal/dynamics"
)

func main() {
	var (
		n     = flag.Int("n", 12, "number of players")
		k     = flag.Int("k", 2, "per-player link budget")
		agg   = flag.String("agg", "sum", "cost aggregation: sum or max")
		sched = flag.String("sched", "round-robin", "scheduler: round-robin, max-cost-first or random")
		start = flag.String("start", "empty", "starting profile: empty or random")
		seed  = flag.Int64("seed", 1, "random seed")
		steps = flag.Int("steps", 0, "max steps (0 = 10·n²)")
		trace = flag.Bool("trace", false, "print every move")
		load  = flag.String("load", "", "load a core.Instance JSON file (e.g. from bbcgen) instead of -n/-k/-start")
	)
	flag.Parse()

	var err error
	if *load != "" {
		err = runLoaded(*load, *agg, *sched, *seed, *steps, *trace)
	} else {
		err = run(*n, *k, *agg, *sched, *start, *seed, *steps, *trace)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bbcsim: %v\n", err)
		os.Exit(1)
	}
}

// runLoaded runs a walk on an instance loaded from a JSON file: the
// instance's profile is the starting configuration.
func runLoaded(path, aggName, schedName string, seed int64, steps int, trace bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var inst core.Instance
	if err := json.Unmarshal(data, &inst); err != nil {
		return err
	}
	agg, err := parseAgg(aggName)
	if err != nil {
		return err
	}
	sched, err := parseScheduler(schedName, inst.Spec.N(), agg, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	res, err := dynamics.Run(inst.Spec, inst.Profile, sched, agg, dynamics.Options{
		MaxSteps:    steps,
		DetectLoops: schedName != "random",
		Trace:       trace,
	})
	if err != nil {
		return err
	}
	report(res, inst.Spec, aggName, schedName, "loaded:"+path, seed, trace)
	return nil
}

func run(n, k int, aggName, schedName, startName string, seed int64, steps int, trace bool) error {
	spec, err := core.NewUniform(n, k)
	if err != nil {
		return err
	}
	agg, err := parseAgg(aggName)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	var p core.Profile
	switch startName {
	case "empty":
		p = core.NewEmptyProfile(n)
	case "random":
		p = dynamics.RandomStart(rng, n, k)
	default:
		return fmt.Errorf("unknown start %q", startName)
	}
	sched, err := parseScheduler(schedName, n, agg, rng)
	if err != nil {
		return err
	}
	res, err := dynamics.Run(spec, p, sched, agg, dynamics.Options{
		MaxSteps:    steps,
		DetectLoops: schedName != "random",
		Trace:       trace,
	})
	if err != nil {
		return err
	}
	report(res, spec, aggName, schedName, startName, seed, trace)
	return nil
}

func parseAgg(name string) (core.Aggregation, error) {
	switch name {
	case "sum":
		return core.SumDistances, nil
	case "max":
		return core.MaxDistance, nil
	default:
		return 0, fmt.Errorf("unknown aggregation %q", name)
	}
}

func parseScheduler(name string, n int, agg core.Aggregation, rng *rand.Rand) (dynamics.Scheduler, error) {
	switch name {
	case "round-robin":
		return dynamics.NewRoundRobin(n), nil
	case "max-cost-first":
		return &dynamics.MaxCostFirst{Agg: agg}, nil
	case "random":
		return &dynamics.RandomScheduler{Rng: rng}, nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q", name)
	}
}

// report prints the walk outcome summary.
func report(res *dynamics.Result, spec core.Spec, aggName, schedName, startName string, seed int64, trace bool) {
	agg, _ := parseAgg(aggName)
	n := spec.N()
	if trace {
		for _, rec := range res.Trace {
			if rec.Moved {
				fmt.Printf("step %4d: node %d rewires %v -> %v (cost %d -> %d)\n",
					rec.Step, rec.Node, rec.From, rec.To, rec.CostBefore, rec.CostAfter)
			}
		}
	}
	fmt.Printf("(n=%d, %s cost, %s walk from %s, seed %d)\n",
		n, aggName, schedName, startName, seed)
	fmt.Printf("steps: %d, moves: %d\n", res.Steps, res.Moves)
	switch {
	case res.Converged:
		fmt.Println("outcome: converged to a pure Nash equilibrium")
	case res.Loop != nil:
		fmt.Printf("outcome: certified best-response loop (%d moves over %d steps)\n",
			len(res.Loop.Moves), res.Loop.Length)
	default:
		fmt.Println("outcome: step budget exhausted without convergence or loop")
	}
	if res.ConnectivityStep >= 0 {
		fmt.Printf("strong connectivity reached at step %d (n² = %d)\n", res.ConnectivityStep, n*n)
	} else {
		fmt.Println("strong connectivity never reached")
	}
	fair := analysis.MeasureFairness(spec, res.Final, agg)
	fmt.Printf("final costs: min=%d max=%d ratio=%.3f\n", fair.Min, fair.Max, fair.Ratio)
	d := analysis.MeasureDiameter(spec, res.Final)
	fmt.Printf("final graph: diameter=%d stronglyConnected=%v socialCost=%d\n",
		d.Diameter, d.StronglyConnected, core.SocialCost(spec, res.Final, agg))
}
