// Command bbcsim runs a best-response walk on a BBC game and reports the
// outcome: convergence to a pure Nash equilibrium, a certified loop, or
// step exhaustion, plus cost and connectivity statistics.
//
// Usage:
//
//	bbcsim -n 12 -k 2 [-agg sum|max] [-sched round-robin|max-cost-first|random]
//	       [-start empty|random] [-seed 1] [-steps 0] [-trace] [-json]
//	       [-journal run.jsonl] [-progress] [-pprof :6060]
//
// Output contract: stdout carries only the final run result — the text
// summary, or a single JSON object with -json — so it stays
// machine-parseable. Trace lines (-trace), progress/ETA lines
// (-progress) and all diagnostics go to stderr.
//
// Observability: -journal writes a JSONL run journal (one "move" record
// per rewiring step plus a final "summary" record, each with wall time
// and solver counter snapshots), -progress prints a throttled rate/ETA
// line to stderr, and -pprof serves net/http/pprof and the counter
// registry (expvar "bbc_counters") at the given address while the walk
// runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"time"

	"bbc/internal/analysis"
	"bbc/internal/core"
	"bbc/internal/dynamics"
	"bbc/internal/obs"
)

// options collects every flag; run consumes it so tests can drive the
// command without a process boundary.
type options struct {
	n, k     int
	agg      string
	sched    string
	start    string
	load     string
	seed     int64
	steps    int
	trace    bool
	jsonOut  bool
	journal  string
	progress bool
	pprof    string

	stdout, stderr io.Writer
}

func main() {
	var o options
	flag.IntVar(&o.n, "n", 12, "number of players")
	flag.IntVar(&o.k, "k", 2, "per-player link budget")
	flag.StringVar(&o.agg, "agg", "sum", "cost aggregation: sum or max")
	flag.StringVar(&o.sched, "sched", "round-robin", "scheduler: round-robin, max-cost-first or random")
	flag.StringVar(&o.start, "start", "empty", "starting profile: empty or random")
	flag.StringVar(&o.load, "load", "", "load a core.Instance JSON file (e.g. from bbcgen) instead of -n/-k/-start")
	flag.Int64Var(&o.seed, "seed", 1, "random seed")
	flag.IntVar(&o.steps, "steps", 0, "max steps (0 = 10·n²)")
	flag.BoolVar(&o.trace, "trace", false, "print every move to stderr")
	flag.BoolVar(&o.jsonOut, "json", false, "emit the result as one JSON object on stdout")
	flag.StringVar(&o.journal, "journal", "", "write a JSONL run journal to this file")
	flag.BoolVar(&o.progress, "progress", false, "print progress/ETA to stderr")
	flag.StringVar(&o.pprof, "pprof", "", "serve pprof/expvar at this address (e.g. :6060)")
	flag.Parse()
	o.stdout, o.stderr = os.Stdout, os.Stderr

	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "bbcsim: %v\n", err)
		os.Exit(1)
	}
}

// run executes one walk according to the options.
func run(o options) error {
	agg, err := parseAgg(o.agg)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(o.seed))

	var (
		spec      core.Spec
		p         core.Profile
		startName string
	)
	if o.load != "" {
		data, err := os.ReadFile(o.load)
		if err != nil {
			return err
		}
		var inst core.Instance
		if err := json.Unmarshal(data, &inst); err != nil {
			return err
		}
		spec, p, startName = inst.Spec, inst.Profile, "loaded:"+o.load
	} else {
		uni, err := core.NewUniform(o.n, o.k)
		if err != nil {
			return err
		}
		spec = uni
		startName = o.start
		switch o.start {
		case "empty":
			p = core.NewEmptyProfile(o.n)
		case "random":
			p = dynamics.RandomStart(rng, o.n, o.k)
		default:
			return fmt.Errorf("unknown start %q", o.start)
		}
	}
	n := spec.N()
	sched, err := parseScheduler(o.sched, n, agg, rng)
	if err != nil {
		return err
	}

	rt, err := obs.StartCLI("bbcsim", o.journal, o.pprof, o.stderr)
	if err != nil {
		return err
	}
	var prog *obs.Progress
	if o.progress {
		maxSteps := o.steps
		if maxSteps <= 0 {
			maxSteps = 10 * n * n
		}
		prog = obs.StartProgress(o.stderr, "walk", uint64(maxSteps),
			obs.MetricReader(rt.Reg, obs.MWalkSteps), time.Second)
	}
	res, err := dynamics.Run(spec, p, sched, agg, dynamics.Options{
		MaxSteps:    o.steps,
		DetectLoops: o.sched != "random",
		Trace:       o.trace,
		Journal:     rt.Journal,
	})
	prog.Stop()
	if err != nil {
		rt.Close()
		return err
	}

	out := summarize(res, spec, o, startName, rt.Reg)
	rt.Journal.Event("summary", map[string]any{
		"n":                 out.N,
		"agg":               out.Agg,
		"scheduler":         out.Scheduler,
		"start":             out.Start,
		"seed":              out.Seed,
		"steps":             out.Steps,
		"moves":             out.Moves,
		"outcome":           out.Outcome,
		"connectivity_step": out.ConnectivityStep,
		"social_cost":       out.SocialCost,
	})
	if err := rt.Close(); err != nil {
		return err
	}

	if o.trace {
		for _, rec := range res.Trace {
			if rec.Moved {
				fmt.Fprintf(o.stderr, "step %4d: node %d rewires %v -> %v (cost %d -> %d)\n",
					rec.Step, rec.Node, rec.From, rec.To, rec.CostBefore, rec.CostAfter)
			}
		}
	}
	if o.jsonOut {
		enc := json.NewEncoder(o.stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	report(o.stdout, res, out, n)
	return nil
}

// result is the machine-readable run outcome (-json, and mirrored by the
// journal's summary record).
type result struct {
	N                 int              `json:"n"`
	Agg               string           `json:"agg"`
	Scheduler         string           `json:"scheduler"`
	Start             string           `json:"start"`
	Seed              int64            `json:"seed"`
	Steps             int              `json:"steps"`
	Moves             int              `json:"moves"`
	Outcome           string           `json:"outcome"` // converged | loop | exhausted
	LoopLength        int              `json:"loop_length,omitempty"`
	LoopMoves         int              `json:"loop_moves,omitempty"`
	ConnectivityStep  int              `json:"connectivity_step"`
	MinCost           int64            `json:"min_cost"`
	MaxCost           int64            `json:"max_cost"`
	FairnessRatio     float64          `json:"fairness_ratio"`
	Diameter          int64            `json:"diameter"`
	StronglyConnected bool             `json:"strongly_connected"`
	SocialCost        int64            `json:"social_cost"`
	Counters          map[string]int64 `json:"counters,omitempty"`
}

func summarize(res *dynamics.Result, spec core.Spec, o options, startName string, reg *obs.Registry) *result {
	agg, _ := parseAgg(o.agg)
	out := &result{
		N:                spec.N(),
		Agg:              o.agg,
		Scheduler:        o.sched,
		Start:            startName,
		Seed:             o.seed,
		Steps:            res.Steps,
		Moves:            res.Moves,
		ConnectivityStep: res.ConnectivityStep,
		SocialCost:       core.SocialCost(spec, res.Final, agg),
	}
	switch {
	case res.Converged:
		out.Outcome = "converged"
	case res.Loop != nil:
		out.Outcome = "loop"
		out.LoopLength = res.Loop.Length
		out.LoopMoves = len(res.Loop.Moves)
	default:
		out.Outcome = "exhausted"
	}
	fair := analysis.MeasureFairness(spec, res.Final, agg)
	out.MinCost, out.MaxCost, out.FairnessRatio = fair.Min, fair.Max, fair.Ratio
	if math.IsInf(out.FairnessRatio, 0) {
		out.FairnessRatio = -1 // JSON has no Inf; -1 marks "min cost is zero"
	}
	d := analysis.MeasureDiameter(spec, res.Final)
	out.Diameter, out.StronglyConnected = d.Diameter, d.StronglyConnected
	out.Counters = reg.Snapshot()
	return out
}

func parseAgg(name string) (core.Aggregation, error) {
	switch name {
	case "sum":
		return core.SumDistances, nil
	case "max":
		return core.MaxDistance, nil
	default:
		return 0, fmt.Errorf("unknown aggregation %q", name)
	}
}

func parseScheduler(name string, n int, agg core.Aggregation, rng *rand.Rand) (dynamics.Scheduler, error) {
	switch name {
	case "round-robin":
		return dynamics.NewRoundRobin(n), nil
	case "max-cost-first":
		return &dynamics.MaxCostFirst{Agg: agg}, nil
	case "random":
		return &dynamics.RandomScheduler{Rng: rng}, nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q", name)
	}
}

// report prints the human-readable walk summary.
func report(w io.Writer, res *dynamics.Result, out *result, n int) {
	fmt.Fprintf(w, "(n=%d, %s cost, %s walk from %s, seed %d)\n",
		n, out.Agg, out.Scheduler, out.Start, out.Seed)
	fmt.Fprintf(w, "steps: %d, moves: %d\n", res.Steps, res.Moves)
	switch out.Outcome {
	case "converged":
		fmt.Fprintln(w, "outcome: converged to a pure Nash equilibrium")
	case "loop":
		fmt.Fprintf(w, "outcome: certified best-response loop (%d moves over %d steps)\n",
			out.LoopMoves, out.LoopLength)
	default:
		fmt.Fprintln(w, "outcome: step budget exhausted without convergence or loop")
	}
	if res.ConnectivityStep >= 0 {
		fmt.Fprintf(w, "strong connectivity reached at step %d (n² = %d)\n", res.ConnectivityStep, n*n)
	} else {
		fmt.Fprintln(w, "strong connectivity never reached")
	}
	fmt.Fprintf(w, "final costs: min=%d max=%d ratio=%.3f\n", out.MinCost, out.MaxCost, out.FairnessRatio)
	fmt.Fprintf(w, "final graph: diameter=%d stronglyConnected=%v socialCost=%d\n",
		out.Diameter, out.StronglyConnected, out.SocialCost)
}
