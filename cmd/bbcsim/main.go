// Command bbcsim runs a best-response walk — or, with -enumerate, an
// exhaustive pure-Nash-equilibrium scan — on a BBC game and reports the
// outcome with full run control: cancellation, deadlines, work budgets
// and checkpoint/resume.
//
// Usage:
//
//	bbcsim -n 12 -k 2 [-agg sum|max] [-sched round-robin|max-cost-first|random]
//	       [-start empty|random] [-seed 1] [-steps 0] [-print-moves] [-json]
//	       [-timeout 0] [-journal run.jsonl] [-trace run.trace.json]
//	       [-progress] [-pprof :6060]
//	bbcsim -enumerate [-load game.json | -n 6 -k 1] [-pin] [-parallel 0]
//	       [-quotient] [-batch-bfs=false] [-max-ne 0] [-max-profiles 0]
//	       [-timeout 30s] [-checkpoint run.ckpt] [-resume run.ckpt] [-json]
//
// Run control: SIGINT/SIGTERM cancel the run gracefully — partial
// results are reported (Complete: false plus a status naming the
// reason), the journal receives a final run_status record, and when
// -checkpoint is set a resumable snapshot is flushed. -timeout bounds
// wall time; -max-profiles (enumeration) and -steps (walks) bound work;
// both truncate with status "budget". Exit codes: 0 complete, 1 error,
// 2 usage, 3 budget/deadline truncation, 4 unrecoverable checkpoint
// corruption, 130 interrupted by signal.
//
// Checkpoint/resume: -checkpoint writes a versioned, checksummed JSON
// snapshot (atomic write-fsync-rename) periodically and on every early
// stop, keeping the previous good snapshot as <path>.prev. -resume
// continues from one: a corrupt primary is quarantined to
// <path>.corrupt and the previous generation is used automatically;
// only when no generation is loadable does the run fail (exit 4). A
// resumed enumeration checks exactly the profiles the uninterrupted run
// would have and returns identical equilibria in identical order. With
// -parallel 1 the scan is serial and checkpoints at profile
// granularity; otherwise it checkpoints per completed partition.
//
// Output contract: stdout carries only the final run result — the text
// summary, or a single JSON object with -json — so it stays
// machine-parseable. Move lines (-print-moves), progress/ETA lines
// (-progress) and all diagnostics go to stderr.
//
// Observability: -journal writes a JSONL run journal (one "move" record
// per rewiring step plus "summary", "checkpoint" and a final
// "run_status" record, each with wall time and solver counter
// snapshots), -trace records solver spans and writes them as a Chrome
// trace-event JSON file on exit (load it in Perfetto or
// chrome://tracing), -progress prints a throttled rate/ETA line to
// stderr, and -pprof serves net/http/pprof, the counter registry
// (expvar "bbc_counters") and a Prometheus /metrics endpoint at the
// given address while the run is live.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"time"

	"bbc/internal/analysis"
	"bbc/internal/core"
	"bbc/internal/dynamics"
	"bbc/internal/obs"
	"bbc/internal/runctl"
)

// options collects every flag; run consumes it so tests can drive the
// command without a process boundary.
type options struct {
	n, k       int
	agg        string
	sched      string
	start      string
	load       string
	seed       int64
	steps      int
	printMoves bool
	jsonOut    bool
	journal    string
	trace      string
	progress   bool
	pprof      string

	enumerate   bool
	pin         bool
	quotient    bool
	batchBFS    bool
	parallel    int
	maxNE       int
	maxProfiles uint64
	timeout     time.Duration
	checkpoint  string
	resume      string

	stdout, stderr io.Writer
}

func main() {
	var o options
	flag.IntVar(&o.n, "n", 12, "number of players")
	flag.IntVar(&o.k, "k", 2, "per-player link budget")
	flag.StringVar(&o.agg, "agg", "sum", "cost aggregation: sum or max")
	flag.StringVar(&o.sched, "sched", "round-robin", "scheduler: round-robin, max-cost-first or random")
	flag.StringVar(&o.start, "start", "empty", "starting profile: empty or random")
	flag.StringVar(&o.load, "load", "", "load a core.Instance JSON file (e.g. from bbcgen) instead of -n/-k/-start")
	flag.Int64Var(&o.seed, "seed", 1, "random seed")
	flag.IntVar(&o.steps, "steps", 0, "max walk steps, a work budget (0 = 10·n²)")
	flag.BoolVar(&o.printMoves, "print-moves", false, "print every move to stderr")
	flag.BoolVar(&o.jsonOut, "json", false, "emit the result as one JSON object on stdout")
	flag.StringVar(&o.journal, "journal", "", "write a JSONL run journal to this file")
	flag.StringVar(&o.trace, "trace", "", "write a Chrome trace-event JSON file of solver spans to this file")
	flag.BoolVar(&o.progress, "progress", false, "print progress/ETA to stderr")
	flag.StringVar(&o.pprof, "pprof", "", "serve pprof/expvar at this address (e.g. :6060)")
	flag.BoolVar(&o.enumerate, "enumerate", false, "exhaustively enumerate pure Nash equilibria instead of walking")
	flag.BoolVar(&o.pin, "pin", false, "enumerate over the soundly pinned search space (unit-length games)")
	flag.BoolVar(&o.quotient, "quotient", false, "skip profiles equivalent under the game's symmetry group (output is unchanged)")
	flag.BoolVar(&o.batchBFS, "batch-bfs", true, "rebuild distance oracles with bit-parallel multi-source BFS on unit-length games")
	flag.IntVar(&o.parallel, "parallel", 0, "enumeration workers (0 = NumCPU, 1 = serial with fine-grained checkpoints)")
	flag.IntVar(&o.maxNE, "max-ne", 0, "stop after this many equilibria (0 = all)")
	flag.Uint64Var(&o.maxProfiles, "max-profiles", 0, "profile budget for enumeration; truncates with status budget (0 = unbounded)")
	flag.DurationVar(&o.timeout, "timeout", 0, "wall-time budget, e.g. 30s; truncates with status deadline (0 = none)")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "write a resumable snapshot to this file (enumerate mode)")
	flag.StringVar(&o.resume, "resume", "", "resume an enumeration from this snapshot file")
	flag.Parse()
	o.stdout, o.stderr = os.Stdout, os.Stderr

	ctx, signalled, stopSignals := runctl.SignalContext(context.Background())
	status, err := run(ctx, o)
	stopSignals()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bbcsim: %v\n", err)
		os.Exit(runctl.ExitCodeForError(err))
	}
	if sig := signalled(); sig != nil {
		fmt.Fprintf(os.Stderr, "bbcsim: interrupted by %v; partial results flushed\n", sig)
	}
	os.Exit(runctl.ExitCode(status))
}

// run executes one walk or enumeration according to the options and
// reports how the run ended.
func run(ctx context.Context, o options) (runctl.Status, error) {
	agg, err := parseAgg(o.agg)
	if err != nil {
		return runctl.StatusComplete, err
	}
	if !o.enumerate && (o.checkpoint != "" || o.resume != "") {
		return runctl.StatusComplete, fmt.Errorf("-checkpoint/-resume apply to -enumerate runs")
	}
	ctx, cancelTimeout := runctl.WithDeadline(ctx, o.timeout)
	defer cancelTimeout()
	rng := rand.New(rand.NewSource(o.seed))

	var (
		spec      core.Spec
		p         core.Profile
		startName string
	)
	if o.load != "" {
		data, err := os.ReadFile(o.load)
		if err != nil {
			return runctl.StatusComplete, err
		}
		var inst core.Instance
		if err := json.Unmarshal(data, &inst); err != nil {
			return runctl.StatusComplete, err
		}
		spec, p, startName = inst.Spec, inst.Profile, "loaded:"+o.load
	} else {
		uni, err := core.NewUniform(o.n, o.k)
		if err != nil {
			return runctl.StatusComplete, err
		}
		spec = uni
		startName = o.start
		switch o.start {
		case "empty":
			p = core.NewEmptyProfile(o.n)
		case "random":
			p = dynamics.RandomStart(rng, o.n, o.k)
		default:
			return runctl.StatusComplete, fmt.Errorf("unknown start %q", o.start)
		}
	}

	rt, err := obs.StartCLIConfig(obs.CLIConfig{
		Name:    "bbcsim",
		Journal: o.journal,
		// A resumed run continues the interrupted run's journal instead of
		// truncating it: its records survive, sequence numbers continue.
		AppendJournal: o.resume != "",
		Trace:         o.trace,
		Pprof:         o.pprof,
		Stderr:        o.stderr,
	})
	if err != nil {
		return runctl.StatusComplete, err
	}
	if o.enumerate {
		status, err := runEnumerate(ctx, o, spec, agg, rt)
		if cerr := rt.Close(); err == nil && cerr != nil {
			err = cerr
		}
		return status, err
	}
	status, err := runWalk(ctx, o, spec, p, agg, startName, rng, rt)
	if cerr := rt.Close(); err == nil && cerr != nil {
		err = cerr
	}
	return status, err
}

// runWalk executes the best-response walk mode.
func runWalk(ctx context.Context, o options, spec core.Spec, p core.Profile, agg core.Aggregation, startName string, rng *rand.Rand, rt *obs.Runtime) (runctl.Status, error) {
	n := spec.N()
	sched, err := parseScheduler(o.sched, n, agg, rng)
	if err != nil {
		return runctl.StatusComplete, err
	}
	var prog *obs.Progress
	if o.progress {
		maxSteps := o.steps
		if maxSteps <= 0 {
			maxSteps = 10 * n * n
		}
		prog = obs.StartProgress(o.stderr, "walk", uint64(maxSteps),
			obs.MetricReader(rt.Reg, obs.MWalkSteps), time.Second)
	}
	res, err := dynamics.Run(spec, p, sched, agg, dynamics.Options{
		Ctx:         ctx,
		MaxSteps:    o.steps,
		DetectLoops: o.sched != "random",
		Trace:       o.printMoves,
		Journal:     rt.Journal,
	})
	prog.Stop()
	if err != nil {
		return runctl.StatusComplete, err
	}

	out := summarize(res, spec, o, startName, rt.Reg)
	rt.Journal.Event("summary", map[string]any{
		"n":                 out.N,
		"agg":               out.Agg,
		"scheduler":         out.Scheduler,
		"start":             out.Start,
		"seed":              out.Seed,
		"steps":             out.Steps,
		"moves":             out.Moves,
		"outcome":           out.Outcome,
		"connectivity_step": out.ConnectivityStep,
		"social_cost":       out.SocialCost,
	})
	rt.Journal.RunStatus(res.Status.String(), out.Complete, map[string]any{
		"mode":  "walk",
		"steps": out.Steps,
	})

	if o.printMoves {
		for _, rec := range res.Trace {
			if rec.Moved {
				fmt.Fprintf(o.stderr, "step %4d: node %d rewires %v -> %v (cost %d -> %d)\n",
					rec.Step, rec.Node, rec.From, rec.To, rec.CostBefore, rec.CostAfter)
			}
		}
	}
	if o.jsonOut {
		enc := json.NewEncoder(o.stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return res.Status, err
		}
		return walkExitStatus(res), nil
	}
	report(o.stdout, res, out, n)
	return walkExitStatus(res), nil
}

// walkExitStatus maps a walk result to the process exit status: budget
// exhaustion ("exhausted" walks) is an expected outcome for walks that
// need not converge, so only cancellation and deadlines are non-zero.
func walkExitStatus(res *dynamics.Result) runctl.Status {
	if res.Status == runctl.StatusBudget {
		return runctl.StatusComplete
	}
	return res.Status
}

// result is the machine-readable run outcome (-json, and mirrored by the
// journal's summary record).
type result struct {
	N                 int              `json:"n"`
	Agg               string           `json:"agg"`
	Scheduler         string           `json:"scheduler"`
	Start             string           `json:"start"`
	Seed              int64            `json:"seed"`
	Steps             int              `json:"steps"`
	Moves             int              `json:"moves"`
	Outcome           string           `json:"outcome"` // converged | loop | exhausted | cancelled | deadline
	Status            string           `json:"status"`  // complete | cancelled | deadline | budget
	Complete          bool             `json:"complete"`
	LoopLength        int              `json:"loop_length,omitempty"`
	LoopMoves         int              `json:"loop_moves,omitempty"`
	ConnectivityStep  int              `json:"connectivity_step"`
	MinCost           int64            `json:"min_cost"`
	MaxCost           int64            `json:"max_cost"`
	FairnessRatio     float64          `json:"fairness_ratio"`
	Diameter          int64            `json:"diameter"`
	StronglyConnected bool             `json:"strongly_connected"`
	SocialCost        int64            `json:"social_cost"`
	Counters          map[string]int64 `json:"counters,omitempty"`
}

func summarize(res *dynamics.Result, spec core.Spec, o options, startName string, reg *obs.Registry) *result {
	agg, _ := parseAgg(o.agg)
	out := &result{
		N:                spec.N(),
		Agg:              o.agg,
		Scheduler:        o.sched,
		Start:            startName,
		Seed:             o.seed,
		Steps:            res.Steps,
		Moves:            res.Moves,
		Status:           res.Status.String(),
		Complete:         res.Status != runctl.StatusCancelled && res.Status != runctl.StatusDeadline,
		ConnectivityStep: res.ConnectivityStep,
		SocialCost:       core.SocialCost(spec, res.Final, agg),
	}
	switch {
	case res.Converged:
		out.Outcome = "converged"
	case res.Loop != nil:
		out.Outcome = "loop"
		out.LoopLength = res.Loop.Length
		out.LoopMoves = len(res.Loop.Moves)
	case res.Status == runctl.StatusCancelled:
		out.Outcome = "cancelled"
	case res.Status == runctl.StatusDeadline:
		out.Outcome = "deadline"
	default:
		out.Outcome = "exhausted"
	}
	fair := analysis.MeasureFairness(spec, res.Final, agg)
	out.MinCost, out.MaxCost, out.FairnessRatio = fair.Min, fair.Max, fair.Ratio
	if math.IsInf(out.FairnessRatio, 0) {
		out.FairnessRatio = -1 // JSON has no Inf; -1 marks "min cost is zero"
	}
	d := analysis.MeasureDiameter(spec, res.Final)
	out.Diameter, out.StronglyConnected = d.Diameter, d.StronglyConnected
	out.Counters = reg.Snapshot()
	return out
}

func parseAgg(name string) (core.Aggregation, error) {
	switch name {
	case "sum":
		return core.SumDistances, nil
	case "max":
		return core.MaxDistance, nil
	default:
		return 0, fmt.Errorf("unknown aggregation %q", name)
	}
}

func parseScheduler(name string, n int, agg core.Aggregation, rng *rand.Rand) (dynamics.Scheduler, error) {
	switch name {
	case "round-robin":
		return dynamics.NewRoundRobin(n), nil
	case "max-cost-first":
		return &dynamics.MaxCostFirst{Agg: agg}, nil
	case "random":
		return &dynamics.RandomScheduler{Rng: rng}, nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q", name)
	}
}

// report prints the human-readable walk summary.
func report(w io.Writer, res *dynamics.Result, out *result, n int) {
	fmt.Fprintf(w, "(n=%d, %s cost, %s walk from %s, seed %d)\n",
		n, out.Agg, out.Scheduler, out.Start, out.Seed)
	fmt.Fprintf(w, "steps: %d, moves: %d\n", res.Steps, res.Moves)
	switch out.Outcome {
	case "converged":
		fmt.Fprintln(w, "outcome: converged to a pure Nash equilibrium")
	case "loop":
		fmt.Fprintf(w, "outcome: certified best-response loop (%d moves over %d steps)\n",
			out.LoopMoves, out.LoopLength)
	case "cancelled":
		fmt.Fprintln(w, "outcome: interrupted (partial result)")
	case "deadline":
		fmt.Fprintln(w, "outcome: wall-time budget exhausted (partial result)")
	default:
		fmt.Fprintln(w, "outcome: step budget exhausted without convergence or loop")
	}
	if res.ConnectivityStep >= 0 {
		fmt.Fprintf(w, "strong connectivity reached at step %d (n² = %d)\n", res.ConnectivityStep, n*n)
	} else {
		fmt.Fprintln(w, "strong connectivity never reached")
	}
	fmt.Fprintf(w, "final costs: min=%d max=%d ratio=%.3f\n", out.MinCost, out.MaxCost, out.FairnessRatio)
	fmt.Fprintf(w, "final graph: diameter=%d stronglyConnected=%v socialCost=%d\n",
		out.Diameter, out.StronglyConnected, out.SocialCost)
}
