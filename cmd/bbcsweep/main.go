// Command bbcsweep runs resumable parameter-grid sweeps over the BBC
// engines: every (workload, dist, agg, n, k, trial) tuple in the cross
// product of the comma-separated axis flags runs through the enumeration
// scanner, the best-response walker or the exact PoA/PoS pipeline, and
// emits one CSV row (stdout, or -csv FILE) plus, with -jsonl, one JSON
// record — verdicts, work counters, wall time, latency quantiles.
//
// Usage:
//
//	bbcsweep -n 4,5 -k 1,2 [-dist uniform,nonuniform] [-agg sum,max]
//	         [-workload enumerate,dynamics,experiment] [-trials 2]
//	         [-max-profiles 1048576] [-max-steps 0] [-seed 0]
//	         [-csv rows.csv] [-jsonl rows.jsonl] [-deterministic]
//	         [-checkpoint sweep.ckpt] [-resume sweep.ckpt] [-timeout 10m]
//	         [-journal run.jsonl] [-progress] [-trace trace.json] [-pprof :6060]
//
// Run control: SIGINT/SIGTERM stop the sweep gracefully — the running
// tuple observes the cancellation, its partial result is dropped, rows
// emitted so far stand, and the journal receives a final run_status
// record. -checkpoint persists every completed tuple (atomic,
// checksummed write-fsync-rename, previous generation kept at
// <path>.prev); -resume replays completed tuples byte-identically and
// runs only the rest — output files are rewritten from the start, so a
// resumed -deterministic sweep's CSV/JSONL are byte-identical to an
// uninterrupted run's. Exit codes: 0 full pass, 1 tuple failure or
// error, 2 usage, 3 deadline truncation, 4 unrecoverable checkpoint
// corruption, 130 interrupted by signal.
//
// Output contract: stdout carries only CSV rows (suppressed when -csv
// redirects them to a file); diagnostics and progress go to stderr.
// -deterministic masks the volatile timing fields (wall_ms, latency
// quantiles, *_nanos counters) so identical grids produce byte-identical
// files — the mode CI diffs run under.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"bbc/internal/obs"
	"bbc/internal/runctl"
	"bbc/internal/sweep"
)

// options collects every flag; run consumes it so tests can drive the
// command without a process boundary.
type options struct {
	workloads, dists, aggs string
	ns, ks                 string
	trials                 int
	maxProfiles            uint64
	maxSteps               int
	seed                   int64

	csvPath, jsonlPath string
	deterministic      bool

	timeout    time.Duration
	checkpoint string
	resume     string
	journal    string
	trace      string
	progress   bool
	pprof      string

	stdout, stderr io.Writer
}

func main() {
	os.Exit(cliMain(os.Args[1:], os.Stdout, os.Stderr))
}

// cliMain is the whole command behind a testable seam: the e2e tests
// re-exec the test binary into it to exercise real signals and kill -9.
func cliMain(args []string, stdout, stderr io.Writer) int {
	var o options
	fs := flag.NewFlagSet("bbcsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&o.workloads, "workload", "enumerate", "comma-separated workloads: enumerate, dynamics, experiment")
	fs.StringVar(&o.dists, "dist", "uniform", "comma-separated length distributions: uniform, nonuniform")
	fs.StringVar(&o.aggs, "agg", "sum", "comma-separated aggregations: sum, max")
	fs.StringVar(&o.ns, "n", "", "comma-separated player counts (required)")
	fs.StringVar(&o.ks, "k", "", "comma-separated budgets (required)")
	fs.IntVar(&o.trials, "trials", 1, "trials per grid point (the trial index seeds each tuple's RNG)")
	fs.Uint64Var(&o.maxProfiles, "max-profiles", 0, "profile budget per enumeration/optimum scan (0 = 1048576)")
	fs.IntVar(&o.maxSteps, "max-steps", 0, "step budget per best-response walk (0 = 10·n²)")
	fs.Int64Var(&o.seed, "seed", 0, "base seed offsetting every tuple's RNG stream")
	fs.StringVar(&o.csvPath, "csv", "", "write CSV rows to this file instead of stdout")
	fs.StringVar(&o.jsonlPath, "jsonl", "", "additionally write one JSON record per tuple to this file")
	fs.BoolVar(&o.deterministic, "deterministic", false, "mask volatile timing fields so identical grids emit byte-identical files")
	fs.DurationVar(&o.timeout, "timeout", 0, "wall-time budget for the whole sweep, e.g. 10m (0 = none)")
	fs.StringVar(&o.checkpoint, "checkpoint", "", "persist completed tuples to this file after each tuple")
	fs.StringVar(&o.resume, "resume", "", "replay completed tuples from this snapshot and run only the rest")
	fs.StringVar(&o.journal, "journal", "", "write a JSONL run journal to this file")
	fs.StringVar(&o.trace, "trace", "", "write a Chrome trace-event JSON file of solver spans to this file")
	fs.BoolVar(&o.progress, "progress", false, "print progress/ETA to stderr")
	fs.StringVar(&o.pprof, "pprof", "", "serve pprof/expvar at this address (e.g. :6060)")
	if err := fs.Parse(args); err != nil {
		return runctl.ExitUsage
	}
	o.stdout, o.stderr = stdout, stderr

	ctx, signalled, stopSignals := runctl.SignalContext(context.Background())
	status, failures, err := run(ctx, o)
	stopSignals()
	if err != nil {
		fmt.Fprintf(stderr, "bbcsweep: %v\n", err)
		if errors.Is(err, errUsage) {
			return runctl.ExitUsage
		}
		return runctl.ExitCodeForError(err)
	}
	if sig := signalled(); sig != nil {
		fmt.Fprintf(stderr, "bbcsweep: interrupted by %v; completed rows flushed\n", sig)
	}
	if failures > 0 {
		fmt.Fprintf(stderr, "bbcsweep: %d tuple(s) failed\n", failures)
		return runctl.ExitError
	}
	return runctl.ExitCode(status)
}

// errUsage marks command-line mistakes, which exit with ExitUsage.
var errUsage = errors.New("usage")

// parseGrid turns the axis flags into a validated sweep.Config.
func parseGrid(o options) (sweep.Config, error) {
	cfg := sweep.Config{
		Workloads:   splitList(o.workloads),
		Dists:       splitList(o.dists),
		Aggs:        splitList(o.aggs),
		Trials:      o.trials,
		MaxProfiles: o.maxProfiles,
		MaxSteps:    o.maxSteps,
		Seed:        o.seed,
	}
	var err error
	if cfg.Ns, err = parseInts(o.ns); err != nil {
		return cfg, fmt.Errorf("%w: -n: %v", errUsage, err)
	}
	if cfg.Ks, err = parseInts(o.ks); err != nil {
		return cfg, fmt.Errorf("%w: -k: %v", errUsage, err)
	}
	if err := cfg.Validate(); err != nil {
		return cfg, fmt.Errorf("%w: %v", errUsage, err)
	}
	return cfg, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, errors.New("at least one value is required")
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// run executes the sweep under run control and reports how it ended plus
// the number of failing tuples.
func run(ctx context.Context, o options) (runctl.Status, int, error) {
	cfg, err := parseGrid(o)
	if err != nil {
		return runctl.StatusComplete, 0, err
	}
	ctx, cancelTimeout := runctl.WithDeadline(ctx, o.timeout)
	defer cancelTimeout()

	fp := cfg.Fingerprint()
	done := map[int]*sweep.Result{}
	var recovered *runctl.Recovery
	if o.resume != "" {
		st := &runctl.Store{Path: o.resume}
		env, rec, err := st.Load()
		if err != nil {
			return runctl.StatusComplete, 0, err
		}
		if rec.Fallback {
			fmt.Fprintf(o.stderr, "bbcsweep: checkpoint %s was not loadable (%v); resuming from the previous generation %s\n",
				o.resume, rec.Err, rec.Path)
			if rec.Quarantined != "" {
				fmt.Fprintf(o.stderr, "bbcsweep: the corrupt snapshot was preserved at %s for inspection\n", rec.Quarantined)
			}
			recovered = rec
		}
		var cp sweep.Checkpoint
		if err := env.Decode(sweep.CheckpointKind, fp, &cp); err != nil {
			return runctl.StatusComplete, 0, err
		}
		if cp.Results != nil {
			done = cp.Results
		}
		fmt.Fprintf(o.stderr, "bbcsweep: resuming grid from %s (%d of %d tuples already done)\n",
			rec.Path, len(done), len(cfg.Tuples()))
	}

	rt, err := obs.StartCLIConfig(obs.CLIConfig{
		Name:    "bbcsweep",
		Journal: o.journal,
		// Resumed sweeps append to the interrupted run's journal.
		AppendJournal: o.resume != "",
		Trace:         o.trace,
		Pprof:         o.pprof,
		Stderr:        o.stderr,
	})
	if err != nil {
		return runctl.StatusComplete, 0, err
	}
	if recovered != nil {
		rt.Journal.Event("checkpoint_recovered", map[string]any{
			"path":        o.resume,
			"loaded_from": recovered.Path,
			"quarantined": recovered.Quarantined,
			"reason":      fmt.Sprint(recovered.Err),
		})
	}
	status, failures, runErr := runSweep(ctx, o, cfg, fp, done, rt)
	if cerr := rt.Close(); runErr == nil && cerr != nil {
		runErr = cerr
	}
	return status, failures, runErr
}

// runSweep drives the grid: output sinks are (re)created from the start
// — resume rewrites, never appends, so the merged files are identical to
// an uninterrupted run's — and every fresh tuple is checkpointed before
// the next starts.
func runSweep(ctx context.Context, o options, cfg sweep.Config, fp string, done map[int]*sweep.Result, rt *obs.Runtime) (runctl.Status, int, error) {
	var csv *obs.CSVWriter
	if o.csvPath != "" {
		f, err := obs.CreateCSVFile(nil, o.csvPath, sweep.Columns...)
		if err != nil {
			return runctl.StatusComplete, 0, err
		}
		csv = f
	} else {
		csv = obs.NewCSVWriter(o.stdout, sweep.Columns...)
	}
	defer csv.Close()
	var jsonl *obs.JSONLWriter
	if o.jsonlPath != "" {
		j, err := obs.CreateJSONLFile(nil, o.jsonlPath)
		if err != nil {
			return runctl.StatusComplete, 0, err
		}
		jsonl = j
	}
	defer jsonl.Close()

	tuples := cfg.Tuples()
	emitted := 0
	var prog *obs.Progress
	if o.progress {
		progRead := func() uint64 { return uint64(emitted) }
		prog = obs.StartProgress(o.stderr, "tuples", uint64(len(tuples)), progRead, time.Second)
	}
	defer prog.Stop()

	ckptStore := &runctl.Store{Path: o.checkpoint, Retries: 2}
	// save persists the completed-tuple set with rotation and bounded
	// retry. A failure degrades gracefully: the sweep keeps running on
	// in-memory state (losing resumability, not rows), the failure is
	// journaled, and the next completed tuple retries from scratch.
	save := func(done map[int]*sweep.Result) {
		if o.checkpoint == "" {
			return
		}
		env, err := runctl.NewCheckpoint(sweep.CheckpointKind, fp,
			runctl.StatusFromContext(ctx), rt.Reg.Snapshot(), &sweep.Checkpoint{Results: done})
		if err == nil {
			err = ckptStore.Save(env)
		}
		if err != nil {
			fmt.Fprintf(o.stderr, "bbcsweep: checkpoint save failed (sweep continues): %v\n", err)
			rt.Journal.Event("checkpoint_error", map[string]any{
				"path": o.checkpoint, "completed": len(done), "error": err.Error(),
			})
			return
		}
		rt.Journal.Checkpoint(o.checkpoint, sweep.CheckpointKind, map[string]any{
			"completed": len(done),
		})
	}

	sum, err := sweep.Run(cfg, sweep.RunConfig{
		Ctx:  ctx,
		Done: done,
		Save: save,
		OnResult: func(r *sweep.Result, resumed bool) {
			csv.Record(r.CSVRecord(o.deterministic)...)
			jsonl.Record(r.Masked(o.deterministic))
			emitted++
			rt.Journal.Event("tuple", map[string]any{
				"index":   r.Index,
				"verdict": r.Verdict,
				"pass":    r.Pass,
				"wall_ms": r.WallMS,
				"resumed": resumed,
			})
		},
	})
	if err != nil {
		return runctl.StatusComplete, 0, fmt.Errorf("%w: %v", errUsage, err)
	}
	rt.Journal.RunStatus(sum.Status.String(), sum.Status.Complete(), map[string]any{
		"completed": sum.Completed,
		"total":     sum.Total,
		"failures":  sum.Failures,
		"resumed":   sum.Resumed,
	})
	if cerr := csv.Close(); cerr != nil {
		return sum.Status, sum.Failures, cerr
	}
	if jerr := jsonl.Close(); jerr != nil {
		return sum.Status, sum.Failures, jerr
	}
	fmt.Fprintf(o.stderr, "bbcsweep: %d/%d tuples (%d resumed, %d failed), status %s\n",
		sum.Completed, sum.Total, sum.Resumed, sum.Failures, sum.Status)
	return sum.Status, sum.Failures, nil
}
