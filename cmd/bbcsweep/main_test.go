package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bbc/internal/runctl"
	"bbc/internal/sweep"
)

// TestMain doubles the test binary as the bbcsweep binary: with
// BBCSWEEP_HELPER=1 it runs cliMain on its own argv instead of the test
// suite, which is what lets the crash test SIGKILL a real sweep process
// mid-grid — an in-process run could never be killed uncleanly.
func TestMain(m *testing.M) {
	if os.Getenv("BBCSWEEP_HELPER") == "1" {
		os.Exit(cliMain(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// runCLI drives the command in-process.
func runCLI(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = cliMain(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestCLIUsageErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"missing n", []string{"-k", "1"}},
		{"missing k", []string{"-n", "4"}},
		{"bad n", []string{"-n", "4,x", "-k", "1"}},
		{"unknown workload", []string{"-n", "4", "-k", "1", "-workload", "enumarate"}},
		{"unknown dist", []string{"-n", "4", "-k", "1", "-dist", "zipf"}},
		{"unknown agg", []string{"-n", "4", "-k", "1", "-agg", "avg"}},
		{"zero trials", []string{"-n", "4", "-k", "1", "-trials", "0"}},
		{"unknown flag", []string{"-n", "4", "-k", "1", "-frobnicate"}},
	} {
		code, _, stderr := runCLI(tc.args...)
		if code != runctl.ExitUsage {
			t.Errorf("%s: exit %d (stderr %q), want %d", tc.name, code, stderr, runctl.ExitUsage)
		}
	}
}

func TestCLISmallGridStdoutCSV(t *testing.T) {
	code, stdout, stderr := runCLI(
		"-n", "4", "-k", "1,2", "-workload", "enumerate,dynamics",
		"-agg", "sum,max", "-deterministic")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	lines := strings.Split(strings.TrimRight(stdout, "\n"), "\n")
	if lines[0] != strings.Join(sweep.Columns, ",") {
		t.Fatalf("header = %q", lines[0])
	}
	if got, want := len(lines)-1, 2*2*2; got != want {
		t.Fatalf("%d data rows, want %d\n%s", got, want, stdout)
	}
	if !strings.Contains(stderr, "8/8 tuples") {
		t.Fatalf("summary missing from stderr: %q", stderr)
	}
}

func TestCLIDeterministicRunsAreByteIdentical(t *testing.T) {
	dir := t.TempDir()
	args := func(csv, jsonl string) []string {
		return []string{
			"-n", "4", "-k", "1", "-workload", "enumerate,dynamics,experiment",
			"-dist", "uniform,nonuniform", "-deterministic",
			"-csv", csv, "-jsonl", jsonl,
		}
	}
	if code, _, stderr := runCLI(args(filepath.Join(dir, "a.csv"), filepath.Join(dir, "a.jsonl"))...); code != 0 {
		t.Fatalf("first run exit %d: %s", code, stderr)
	}
	if code, _, stderr := runCLI(args(filepath.Join(dir, "b.csv"), filepath.Join(dir, "b.jsonl"))...); code != 0 {
		t.Fatalf("second run exit %d: %s", code, stderr)
	}
	for _, ext := range []string{".csv", ".jsonl"} {
		a, err := os.ReadFile(filepath.Join(dir, "a"+ext))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir, "b"+ext))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s output differs between identical runs", ext)
		}
	}
}

func TestCLIJournalAndCheckpointFlags(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "sweep.ckpt")
	journal := filepath.Join(dir, "run.jsonl")
	code, _, stderr := runCLI(
		"-n", "4", "-k", "1", "-workload", "dynamics", "-trials", "3",
		"-deterministic", "-csv", filepath.Join(dir, "rows.csv"),
		"-checkpoint", ckpt, "-journal", journal)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	env, err := runctl.Load(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if env.Kind != sweep.CheckpointKind {
		t.Fatalf("checkpoint kind %q, want %q", env.Kind, sweep.CheckpointKind)
	}
	j, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"tuple"`, `"checkpoint"`, `"run_status"`, `"complete":true`} {
		if !strings.Contains(string(j), want) {
			t.Errorf("journal lacks %s:\n%s", want, j)
		}
	}
}

// crashGrid is the kill -9 grid: front-loaded with two fast tuples (so
// rows land quickly) and tailed by profile-capped scans slow enough that
// the process is reliably still working when the test kills it.
var crashGrid = []string{
	"-n", "5,6", "-k", "1,2", "-workload", "enumerate",
	"-dist", "uniform,nonuniform", "-agg", "sum",
	"-max-profiles", "400000", "-deterministic",
}

// helper execs the test binary as bbcsweep.
func helper(t *testing.T, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "BBCSWEEP_HELPER=1")
	return cmd
}

// TestKillDashNineResumeByteIdentity is the binary-level crash contract:
// SIGKILL a sweep mid-grid, resume from its checkpoint, and the merged
// CSV must be byte-identical to an uninterrupted run's.
func TestKillDashNineResumeByteIdentity(t *testing.T) {
	dir := t.TempDir()
	refCSV := filepath.Join(dir, "ref.csv")
	ref := helper(t, append(append([]string{}, crashGrid...), "-csv", refCSV)...)
	if out, err := ref.CombinedOutput(); err != nil {
		t.Fatalf("reference run: %v\n%s", err, out)
	}

	partCSV := filepath.Join(dir, "part.csv")
	ckpt := filepath.Join(dir, "sweep.ckpt")
	victim := helper(t, append(append([]string{}, crashGrid...), "-csv", partCSV, "-checkpoint", ckpt)...)
	victim.Stderr = os.Stderr
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		victim.Process.Kill() //nolint:errcheck
		victim.Wait()         //nolint:errcheck
	}()

	// Wait until the checkpoint exists and at least two data rows are on
	// disk, then SIGKILL with tail tuples still to run.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for the victim to emit 2 rows and a checkpoint")
		}
		rows, _ := os.ReadFile(partCSV)
		if _, err := os.Stat(ckpt); err == nil && bytes.Count(rows, []byte("\n")) >= 3 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	err := victim.Wait()
	if err == nil {
		t.Fatal("victim exited cleanly before the kill; grid finished too fast to test a crash")
	}

	// The partial file's complete lines must be a prefix of the
	// reference (a torn final line is legal after SIGKILL).
	part, readErr := os.ReadFile(partCSV)
	if readErr != nil {
		t.Fatal(readErr)
	}
	refBytes, readErr := os.ReadFile(refCSV)
	if readErr != nil {
		t.Fatal(readErr)
	}
	if i := bytes.LastIndexByte(part, '\n'); i >= 0 {
		if complete := part[:i+1]; !bytes.HasPrefix(refBytes, complete) {
			t.Fatalf("partial CSV is not a prefix of the reference\npartial:\n%s", complete)
		}
	}

	mergedCSV := filepath.Join(dir, "merged.csv")
	resume := helper(t, append(append([]string{}, crashGrid...),
		"-csv", mergedCSV, "-checkpoint", ckpt, "-resume", ckpt)...)
	out, err := resume.CombinedOutput()
	if err != nil {
		t.Fatalf("resume run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "resuming grid from") {
		t.Fatalf("resume did not report replay:\n%s", out)
	}
	merged, err := os.ReadFile(mergedCSV)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged, refBytes) {
		t.Fatalf("resumed CSV differs from the uninterrupted reference\nmerged:\n%s\nref:\n%s", merged, refBytes)
	}
}

// TestCLIResumeRejectsDifferentGrid: a checkpoint must not resume into a
// differently-shaped sweep.
func TestCLIResumeRejectsDifferentGrid(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "sweep.ckpt")
	if code, _, stderr := runCLI("-n", "4", "-k", "1", "-workload", "dynamics",
		"-deterministic", "-csv", filepath.Join(dir, "a.csv"), "-checkpoint", ckpt); code != 0 {
		t.Fatalf("seed run exit %d: %s", code, stderr)
	}
	code, _, stderr := runCLI("-n", "5", "-k", "1", "-workload", "dynamics",
		"-deterministic", "-csv", filepath.Join(dir, "b.csv"), "-resume", ckpt)
	if code == 0 {
		t.Fatal("resume under a different grid succeeded")
	}
	if !strings.Contains(stderr, "fingerprint") {
		t.Fatalf("error does not mention the fingerprint mismatch: %q", stderr)
	}
}
