module bbc

go 1.22
