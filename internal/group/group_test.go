package group

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAbelianValidation(t *testing.T) {
	tests := []struct {
		name    string
		moduli  []int
		wantErr bool
		order   int
	}{
		{name: "cyclic", moduli: []int{7}, order: 7},
		{name: "product", moduli: []int{2, 3, 4}, order: 24},
		{name: "trivial factor", moduli: []int{1, 5}, order: 5},
		{name: "empty", moduli: nil, wantErr: true},
		{name: "zero modulus", moduli: []int{0}, wantErr: true},
		{name: "negative modulus", moduli: []int{3, -1}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, err := NewAbelian(tt.moduli...)
			if tt.wantErr {
				if err == nil {
					t.Fatal("expected error")
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if g.Order() != tt.order {
				t.Fatalf("Order = %d, want %d", g.Order(), tt.order)
			}
		})
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g, err := NewAbelian(3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < g.Order(); x++ {
		if got := g.Encode(g.Decode(x)); got != x {
			t.Fatalf("Encode(Decode(%d)) = %d", x, got)
		}
	}
	// Negative and oversized coordinates are reduced.
	if g.Encode([]int{-1, 5, 7}) != g.Encode([]int{2, 1, 2}) {
		t.Fatal("Encode did not reduce coordinates modulo factor sizes")
	}
}

func TestGroupAxioms(t *testing.T) {
	groups := []*Abelian{
		MustCyclic(1),
		MustCyclic(8),
		MustBoolean(4),
		mustNew(t, 2, 3),
		mustNew(t, 4, 5, 3),
	}
	rng := rand.New(rand.NewSource(21))
	for _, g := range groups {
		t.Run(g.String(), func(t *testing.T) {
			for trial := 0; trial < 200; trial++ {
				x := rng.Intn(g.Order())
				y := rng.Intn(g.Order())
				z := rng.Intn(g.Order())
				if g.Add(x, y) != g.Add(y, x) {
					t.Fatalf("commutativity failed on %d,%d", x, y)
				}
				if g.Add(g.Add(x, y), z) != g.Add(x, g.Add(y, z)) {
					t.Fatalf("associativity failed on %d,%d,%d", x, y, z)
				}
				if g.Add(x, g.Identity()) != x {
					t.Fatalf("identity failed on %d", x)
				}
				if g.Add(x, g.Neg(x)) != g.Identity() {
					t.Fatalf("inverse failed on %d", x)
				}
				if g.Sub(x, y) != g.Add(x, g.Neg(y)) {
					t.Fatalf("Sub inconsistent on %d,%d", x, y)
				}
				if g.Double(x) != g.Add(x, x) {
					t.Fatalf("Double inconsistent on %d", x)
				}
			}
		})
	}
}

func mustNew(t *testing.T, moduli ...int) *Abelian {
	t.Helper()
	g, err := NewAbelian(moduli...)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestElementOrderDividesGroupOrder(t *testing.T) {
	f := func(rawN, rawX uint8) bool {
		n := int(rawN%30) + 1
		g := MustCyclic(n)
		x := int(rawX) % n
		ord := g.ElementOrder(x)
		return ord >= 1 && g.Order()%ord == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestElementOrderKnown(t *testing.T) {
	g := MustCyclic(12)
	tests := []struct{ x, order int }{
		{0, 1}, {1, 12}, {2, 6}, {3, 4}, {4, 3}, {6, 2}, {8, 3},
	}
	for _, tt := range tests {
		if got := g.ElementOrder(tt.x); got != tt.order {
			t.Errorf("ElementOrder(%d) = %d, want %d", tt.x, got, tt.order)
		}
	}
}

func TestGenerates(t *testing.T) {
	z12 := MustCyclic(12)
	tests := []struct {
		name string
		g    *Abelian
		gens []int
		want bool
	}{
		{name: "1 generates Z12", g: z12, gens: []int{1}, want: true},
		{name: "5 generates Z12", g: z12, gens: []int{5}, want: true},
		{name: "2 does not generate Z12", g: z12, gens: []int{2}, want: false},
		{name: "2 and 3 together generate", g: z12, gens: []int{2, 3}, want: true},
		{name: "unit vectors generate boolean cube", g: MustBoolean(3), gens: []int{1, 2, 4}, want: true},
		{name: "missing dimension fails", g: MustBoolean(3), gens: []int{1, 2}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.Generates(tt.gens); got != tt.want {
				t.Fatalf("Generates(%v) = %v, want %v", tt.gens, got, tt.want)
			}
		})
	}
}

func TestNormalizeGens(t *testing.T) {
	g := MustCyclic(10)
	norm, err := g.NormalizeGens([]int{3, 7, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 7}
	if len(norm) != len(want) {
		t.Fatalf("NormalizeGens = %v, want %v", norm, want)
	}
	for i := range want {
		if norm[i] != want[i] {
			t.Fatalf("NormalizeGens = %v, want %v", norm, want)
		}
	}
	if _, err := g.NormalizeGens([]int{0, 1}); err == nil {
		t.Fatal("expected error for identity generator")
	}
}

func TestString(t *testing.T) {
	g := mustNew(t, 2, 5)
	if got := g.String(); got != "Z_2 x Z_5" {
		t.Fatalf("String = %q", got)
	}
}
