package group

import (
	"math/rand"
	"testing"

	"bbc/internal/graph"
)

func TestCayleyCycle(t *testing.T) {
	g, err := Cayley(MustCyclic(5), []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5 || g.M() != 5 {
		t.Fatalf("N=%d M=%d, want 5,5", g.N(), g.M())
	}
	if !g.StronglyConnected() {
		t.Fatal("directed cycle should be strongly connected")
	}
	diam, _ := g.Diameter(true)
	if diam != 4 {
		t.Fatalf("diameter = %d, want 4", diam)
	}
}

func TestCayleyVertexTransitiveDistances(t *testing.T) {
	// In any Cayley graph the multiset of distances from every node is the
	// same (vertex transitivity); check sums of distances match.
	rng := rand.New(rand.NewSource(31))
	groups := []*Abelian{MustCyclic(12), MustBoolean(3), mustNewB(t, 3, 4)}
	for _, ab := range groups {
		for trial := 0; trial < 10; trial++ {
			k := 1 + rng.Intn(3)
			gens := make([]int, 0, k)
			for len(gens) < k {
				a := 1 + rng.Intn(ab.Order()-1)
				gens = append(gens, a)
			}
			dg, err := Cayley(ab, gens)
			if err != nil {
				t.Fatal(err)
			}
			base := dg.SumDistances(0, true, 1_000)
			for u := 1; u < dg.N(); u++ {
				if got := dg.SumDistances(u, true, 1_000); got != base {
					t.Fatalf("%s gens %v: node %d sum %d != node 0 sum %d",
						ab, gens, u, got, base)
				}
			}
		}
	}
}

func mustNewB(t *testing.T, moduli ...int) *Abelian {
	t.Helper()
	g, err := NewAbelian(moduli...)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCayleyRejectsIdentityAndEmpty(t *testing.T) {
	if _, err := Cayley(MustCyclic(4), []int{0}); err == nil {
		t.Fatal("expected error for identity generator")
	}
	if _, err := Cayley(MustCyclic(4), nil); err == nil {
		t.Fatal("expected error for empty generator set")
	}
}

func TestOffsetGraph(t *testing.T) {
	g, err := OffsetGraph(8, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.OutDegree(0) != 2 {
		t.Fatalf("out-degree = %d, want 2", g.OutDegree(0))
	}
	if !g.HasArc(6, 7) || !g.HasArc(6, 1) {
		t.Fatal("offset arcs missing")
	}
	// Negative offsets are reduced mod n.
	g2, err := OffsetGraph(8, []int{-1})
	if err != nil {
		t.Fatal(err)
	}
	if !g2.HasArc(0, 7) {
		t.Fatal("negative offset not reduced")
	}
}

func TestHypercube(t *testing.T) {
	for d := 1; d <= 5; d++ {
		g, err := Hypercube(d)
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != 1<<d {
			t.Fatalf("d=%d: N=%d, want %d", d, g.N(), 1<<d)
		}
		if g.M() != d*(1<<d) {
			t.Fatalf("d=%d: M=%d, want %d", d, g.M(), d*(1<<d))
		}
		diam, strong := g.Diameter(true)
		if !strong || diam != int64(d) {
			t.Fatalf("d=%d: diameter=%d strong=%v, want %d,true", d, diam, strong, d)
		}
	}
	if _, err := Hypercube(0); err == nil {
		t.Fatal("expected error for dimension 0")
	}
}

func TestHypercubeNeighborsDifferInOneBit(t *testing.T) {
	g, err := Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		for _, a := range g.Out(u) {
			x := u ^ a.To
			if x&(x-1) != 0 || x == 0 {
				t.Fatalf("arc %d->%d differs in more than one bit", u, a.To)
			}
		}
	}
}

func TestGeneratorsForDiameter(t *testing.T) {
	tests := []struct {
		n, k int
	}{
		{n: 64, k: 2}, {n: 100, k: 3}, {n: 17, k: 1}, {n: 1000, k: 4},
	}
	for _, tt := range tests {
		gens := GeneratorsForDiameter(tt.n, tt.k)
		if len(gens) != tt.k {
			t.Fatalf("n=%d k=%d: got %d gens", tt.n, tt.k, len(gens))
		}
		dg, err := OffsetGraph(tt.n, gens)
		if err != nil {
			t.Fatal(err)
		}
		if !dg.StronglyConnected() {
			t.Fatalf("n=%d k=%d gens=%v: graph not strongly connected", tt.n, tt.k, gens)
		}
		// Diameter should be at most k * ceil(n^{1/k}) (generous bound).
		diam, _ := dg.Diameter(true)
		s := 1
		for pow(s, tt.k) < tt.n {
			s++
		}
		if diam > int64(tt.k*s) {
			t.Fatalf("n=%d k=%d: diameter %d exceeds %d", tt.n, tt.k, diam, tt.k*s)
		}
	}
	if GeneratorsForDiameter(1, 2) != nil || GeneratorsForDiameter(10, 0) != nil {
		t.Fatal("degenerate parameters should return nil")
	}
}

func TestCayleyMatchesManualRing(t *testing.T) {
	want := graph.New(4)
	for i := 0; i < 4; i++ {
		want.AddArc(i, (i+1)%4, 1)
	}
	got, err := Cayley(MustCyclic(4), []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("Cayley(Z4, {1}) differs from the directed 4-cycle")
	}
}
