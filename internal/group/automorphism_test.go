package group

import (
	"testing"

	"bbc/internal/graph"
)

// relabel builds the image of dg under the node permutation p: the arc
// u → v becomes p[u] → p[v] with its length kept.
func relabel(dg *graph.Digraph, p []int) *graph.Digraph {
	out := graph.New(dg.N())
	for u := 0; u < dg.N(); u++ {
		for _, a := range dg.Out(u) {
			out.AddArc(p[u], p[a.To], a.Len)
		}
	}
	return out
}

// checkAutomorphism asserts p is a permutation and that relabeling dg by
// p reproduces dg exactly — structurally via Equal and through both
// canonical encodings (Key must match byte-for-byte, Fingerprint must
// collide, since both hash the same labeled structure).
func checkAutomorphism(t *testing.T, dg *graph.Digraph, p []int, what string) {
	t.Helper()
	if len(p) != dg.N() {
		t.Fatalf("%s: permutation length %d, graph has %d nodes", what, len(p), dg.N())
	}
	seen := make([]bool, len(p))
	for _, x := range p {
		if x < 0 || x >= len(p) || seen[x] {
			t.Fatalf("%s: %v is not a permutation", what, p)
		}
		seen[x] = true
	}
	img := relabel(dg, p)
	if !dg.Equal(img) {
		t.Errorf("%s: relabeled graph differs from the original", what)
	}
	if dg.Key() != img.Key() {
		t.Errorf("%s: canonical keys differ:\n got %s\nwant %s", what, img.Key(), dg.Key())
	}
	if dg.Fingerprint() != img.Fingerprint() {
		t.Errorf("%s: fingerprints differ", what)
	}
}

func TestTranslationsAreCayleyAutomorphisms(t *testing.T) {
	g := MustCyclic(9)
	dg, err := Cayley(g, []int{1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	perms := Translations(g)
	if len(perms) != 8 {
		t.Fatalf("Z_9 has %d non-identity translations, want 8", len(perms))
	}
	for i, p := range perms {
		checkAutomorphism(t, dg, p, "translation")
		if p[0] != i+1 {
			t.Errorf("translation %d maps identity to %d, want %d", i, p[0], i+1)
		}
	}
}

func TestNegationOnSymmetricGenerators(t *testing.T) {
	g := MustCyclic(10)
	// S = {1, 9} = −S: negation is an automorphism of this Cayley graph.
	dg, err := Cayley(g, []int{1, 9})
	if err != nil {
		t.Fatal(err)
	}
	checkAutomorphism(t, dg, Negation(g), "negation")

	// S = {1, 3} is not symmetric: negation maps the arc 0 → 1 to 0 → 9,
	// which does not exist, so the relabeled graph must differ.
	asym, err := Cayley(g, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if asym.Equal(relabel(asym, Negation(g))) {
		t.Error("negation preserved a Cayley graph over an asymmetric generator set")
	}
}

func TestCoordinateSwapsOnHypercube(t *testing.T) {
	g := MustBoolean(3)
	dg, err := Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	swaps := CoordinateSwaps(g)
	if len(swaps) != 3 {
		t.Fatalf("Z_2^3 has %d coordinate swaps, want 3", len(swaps))
	}
	for _, p := range swaps {
		checkAutomorphism(t, dg, p, "coordinate swap")
	}
	// Mixed moduli with no equal pair admit no swaps.
	mixed, err := NewAbelian(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := CoordinateSwaps(mixed); len(got) != 0 {
		t.Errorf("Z_2 x Z_3 has %d coordinate swaps, want 0", len(got))
	}
}

func TestCayleyAutomorphisms(t *testing.T) {
	g := MustCyclic(8)
	gens := []int{1, 7} // symmetric: negation qualifies
	dg, err := Cayley(g, gens)
	if err != nil {
		t.Fatal(err)
	}
	perms, err := CayleyAutomorphisms(g, gens)
	if err != nil {
		t.Fatal(err)
	}
	// 7 translations + negation.
	if len(perms) != 8 {
		t.Fatalf("got %d generators, want 8 (7 translations + negation)", len(perms))
	}
	for _, p := range perms {
		checkAutomorphism(t, dg, p, "CayleyAutomorphisms generator")
	}

	// Asymmetric generators: negation is filtered out.
	asymGens := []int{1, 2}
	asymDg, err := Cayley(g, asymGens)
	if err != nil {
		t.Fatal(err)
	}
	asymPerms, err := CayleyAutomorphisms(g, asymGens)
	if err != nil {
		t.Fatal(err)
	}
	if len(asymPerms) != 7 {
		t.Fatalf("got %d generators for asymmetric set, want 7 translations only", len(asymPerms))
	}
	for _, p := range asymPerms {
		checkAutomorphism(t, asymDg, p, "translation-only generator")
	}

	// Hypercube: swaps preserve the unit-vector generator set.
	h := MustBoolean(2)
	hg, err := Hypercube(2)
	if err != nil {
		t.Fatal(err)
	}
	unitGens := []int{h.Encode([]int{1, 0}), h.Encode([]int{0, 1})}
	hPerms, err := CayleyAutomorphisms(h, unitGens)
	if err != nil {
		t.Fatal(err)
	}
	// 3 translations + 1 swap; negation is the identity on Z_2^2 and must
	// be filtered out.
	if len(hPerms) != 4 {
		t.Fatalf("got %d hypercube generators, want 4 (3 translations + swap)", len(hPerms))
	}
	foundSwap := false
	for _, p := range hPerms {
		checkAutomorphism(t, hg, p, "hypercube generator")
		if p[h.Encode([]int{1, 0})] == h.Encode([]int{0, 1}) && p[0] == 0 {
			foundSwap = true
		}
	}
	if !foundSwap {
		t.Error("coordinate swap missing from hypercube automorphism generators")
	}

	// Invalid generator sets are rejected.
	if _, err := CayleyAutomorphisms(g, []int{0}); err == nil {
		t.Error("identity generator accepted")
	}
}
