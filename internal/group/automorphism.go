package group

// Automorphisms of Cayley digraphs, used by the enumeration layer to
// quotient the strategy-profile scan by spec-preserving player symmetry.
// For a Cayley digraph Cay(G, S) two structural families come for free,
// with no graph search at all:
//
//   - translations x ↦ x + t: automorphisms for every t (the arc x → x+a
//     maps to x+t → (x+t)+a), so Cay(G, S) is always vertex-transitive;
//   - group automorphisms φ with φ(S) = S: the arc x → x+a maps to
//     φ(x) → φ(x) + φ(a), and φ(a) stays a generator.
//
// The helpers return generator sets, not full groups — core.NewQuotient
// closes its generators under composition itself.

// Translations returns the |G|−1 non-identity translation permutations
// x ↦ x + t of g. Every one is an automorphism of every Cayley digraph
// over g regardless of the generator set.
func Translations(g *Abelian) [][]int {
	out := make([][]int, 0, g.Order()-1)
	for t := 1; t < g.Order(); t++ {
		p := make([]int, g.Order())
		for x := range p {
			p[x] = g.Add(x, t)
		}
		out = append(out, p)
	}
	return out
}

// Negation returns the inversion permutation x ↦ −x. It is a group
// automorphism of every abelian group, hence a Cayley digraph
// automorphism whenever the generator set is symmetric (−S = S).
func Negation(g *Abelian) []int {
	p := make([]int, g.Order())
	for x := range p {
		p[x] = g.Neg(x)
	}
	return p
}

// CoordinateSwaps returns, for every pair of cyclic factors with equal
// modulus, the permutation exchanging those two coordinates. Each is a
// group automorphism of g; it is a Cayley digraph automorphism exactly
// when it maps the generator set onto itself.
func CoordinateSwaps(g *Abelian) [][]int {
	moduli := g.Moduli()
	var out [][]int
	for i := 0; i < len(moduli); i++ {
		for j := i + 1; j < len(moduli); j++ {
			if moduli[i] != moduli[j] {
				continue
			}
			p := make([]int, g.Order())
			for x := range p {
				c := g.Decode(x)
				c[i], c[j] = c[j], c[i]
				p[x] = g.Encode(c)
			}
			out = append(out, p)
		}
	}
	return out
}

// CayleyAutomorphisms returns a generator set for a subgroup of
// Aut(Cay(g, gens)): every translation, plus negation and each
// equal-modulus coordinate swap that preserves the generator set. It is
// a generating set — close it under composition before use — and not in
// general the full automorphism group.
func CayleyAutomorphisms(g *Abelian, gens []int) ([][]int, error) {
	norm, err := g.NormalizeGens(gens)
	if err != nil {
		return nil, err
	}
	inSet := make(map[int]bool, len(norm))
	for _, a := range norm {
		inSet[a] = true
	}
	preserves := func(p []int) bool {
		for _, a := range norm {
			if !inSet[p[a]] {
				return false
			}
		}
		return true
	}
	identity := func(p []int) bool {
		for x, y := range p {
			if x != y {
				return false
			}
		}
		return true
	}
	out := Translations(g)
	// Negation degenerates to the identity on elementary 2-groups — skip
	// it there rather than hand the consumer a trivial generator.
	if p := Negation(g); preserves(p) && !identity(p) {
		out = append(out, p)
	}
	for _, p := range CoordinateSwaps(g) {
		if preserves(p) {
			out = append(out, p)
		}
	}
	return out, nil
}
