package group

import (
	"fmt"

	"bbc/internal/graph"
)

// Cayley builds the directed Cayley graph of g over the generator set S:
// nodes are group elements (by index) and each node x has an arc to x + a
// for every a in S. Generators must exclude the identity. The out-degree of
// every node is |S| after deduplication, matching a uniform budget of k=|S|
// in the BBC game.
func Cayley(g *Abelian, gens []int) (*graph.Digraph, error) {
	norm, err := g.NormalizeGens(gens)
	if err != nil {
		return nil, err
	}
	if len(norm) == 0 {
		return nil, fmt.Errorf("group: empty generator set")
	}
	dg := graph.New(g.Order())
	for x := 0; x < g.Order(); x++ {
		for _, a := range norm {
			dg.AddArc(x, g.Add(x, a), 1)
		}
	}
	return dg, nil
}

// OffsetGraph builds the "regular graph" of Section 4.2: nodes are Z_n and
// the i-th arc from node x goes to x + offsets[i] mod n. It is exactly the
// Cayley graph of the cyclic group.
func OffsetGraph(n int, offsets []int) (*graph.Digraph, error) {
	g := MustCyclic(n)
	reduced := make([]int, len(offsets))
	for i, o := range offsets {
		r := o % n
		if r < 0 {
			r += n
		}
		reduced[i] = r
	}
	return Cayley(g, reduced)
}

// Hypercube builds the directed d-dimensional hypercube: the Cayley graph
// of Z_2^d over the unit vectors. Every undirected hypercube edge appears
// as two opposite arcs, giving each node out-degree d (Corollary 1 of the
// paper concerns the (2^k, k)-uniform game on this graph).
func Hypercube(d int) (*graph.Digraph, error) {
	if d < 1 {
		return nil, fmt.Errorf("group: hypercube dimension %d must be >= 1", d)
	}
	g := MustBoolean(d)
	gens := make([]int, d)
	for i := 0; i < d; i++ {
		coords := make([]int, d)
		coords[i] = 1
		gens[i] = g.Encode(coords)
	}
	return Cayley(g, gens)
}

// GeneratorsForDiameter returns the classic k-offset set {1, s, s^2, ...}
// with s = ceil(n^(1/k)), which yields a Z_n Cayley graph of diameter
// O(k · n^(1/k)). It is the natural "designed" regular overlay the paper
// alludes to when discussing P2P networks.
func GeneratorsForDiameter(n, k int) []int {
	if k < 1 || n < 2 {
		return nil
	}
	// s = smallest integer with s^k >= n.
	s := 1
	for pow(s, k) < n {
		s++
	}
	gens := make([]int, 0, k)
	val := 1
	for i := 0; i < k; i++ {
		gens = append(gens, val%n)
		val *= s
	}
	return gens
}

func pow(base, exp int) int {
	r := 1
	for i := 0; i < exp; i++ {
		if r > 1<<30/max(base, 1) {
			return 1 << 30
		}
		r *= base
	}
	return r
}
