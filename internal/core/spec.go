// Package core implements the Bounded Budget Connection (BBC) game of
// Laoutaris et al. (PODC 2008): n players each buy a set of outgoing links
// subject to a budget, and seek to minimize their preference-weighted
// distances (sum or max) to the other players in the resulting digraph.
//
// The package provides the game specification (V, w, c, ℓ, b, M), strategy
// profiles and their realized graphs, node cost under the Sum (BBC) and Max
// (BBC-max) aggregations, exact and approximate best-response oracles,
// pure-Nash-equilibrium (stability) checking, and exhaustive equilibrium
// search for small games.
package core

import (
	"fmt"
)

// Aggregation selects the utility variant of the game.
type Aggregation int

const (
	// SumDistances is the standard BBC cost: sum over v of w(u,v)·d(u,v).
	SumDistances Aggregation = iota + 1
	// MaxDistance is the BBC-max cost of Section 5: max over v of
	// w(u,v)·d(u,v).
	MaxDistance
)

// String returns a human-readable name for the aggregation.
func (a Aggregation) String() string {
	switch a {
	case SumDistances:
		return "sum"
	case MaxDistance:
		return "max"
	default:
		return fmt.Sprintf("Aggregation(%d)", int(a))
	}
}

// Spec describes a BBC game instance 〈V, w, c, ℓ, b〉 plus the
// disconnection penalty M. Nodes are indices in [0, N()).
//
// Implementations must be immutable while a game is being analyzed, and all
// returned values must be non-negative with Penalty() strictly larger than
// N() times the largest link length, matching the paper's M ≫ n·max ℓ.
type Spec interface {
	// N is the number of players.
	N() int
	// Weight is u's preference for communicating with v (w in the paper).
	Weight(u, v int) int64
	// LinkCost is the cost for u to buy the link (u, v) (c in the paper).
	LinkCost(u, v int) int64
	// Length is the length of the link (u, v) if established (ℓ).
	Length(u, v int) int64
	// Budget is u's total link-purchase budget (b).
	Budget(u int) int64
	// Penalty is the distance charged for unreachable targets (M).
	Penalty() int64
	// UnitLengths reports whether every link length equals 1, enabling the
	// BFS fast path in distance computations.
	UnitLengths() bool
}

// Uniform is the (n, k)-uniform game of Section 4: all weights, link costs
// and lengths are 1 and every budget is k.
type Uniform struct {
	n, k    int
	penalty int64
}

// NewUniform returns an (n, k)-uniform game. The disconnection penalty is
// set to n² + n + 1, comfortably above the n·max ℓ = n threshold the paper
// requires, while keeping total costs within int64 for any practical n.
func NewUniform(n, k int) (*Uniform, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: uniform game needs n >= 2, got %d", n)
	}
	if k < 1 || k > n-1 {
		return nil, fmt.Errorf("core: uniform budget k=%d out of range [1,%d]", k, n-1)
	}
	return &Uniform{n: n, k: k, penalty: int64(n)*int64(n) + int64(n) + 1}, nil
}

// MustUniform is NewUniform that panics on error; for fixtures.
func MustUniform(n, k int) *Uniform {
	u, err := NewUniform(n, k)
	if err != nil {
		panic(err)
	}
	return u
}

// N returns the number of players.
func (u *Uniform) N() int { return u.n }

// K returns the per-node link budget.
func (u *Uniform) K() int { return u.k }

// Weight returns 1 for every ordered pair of distinct players.
func (u *Uniform) Weight(_, _ int) int64 { return 1 }

// LinkCost returns 1 for every link.
func (u *Uniform) LinkCost(_, _ int) int64 { return 1 }

// Length returns 1 for every link.
func (u *Uniform) Length(_, _ int) int64 { return 1 }

// Budget returns k for every player.
func (u *Uniform) Budget(_ int) int64 { return int64(u.k) }

// Penalty returns the disconnection penalty M.
func (u *Uniform) Penalty() int64 { return u.penalty }

// UnitLengths reports true: uniform games use hop counts.
func (u *Uniform) UnitLengths() bool { return true }

// Dense is a fully general BBC game backed by explicit matrices. The zero
// value is unusable; construct with NewDense and then adjust entries.
type Dense struct {
	Weights [][]int64
	Costs   [][]int64
	Lengths [][]int64
	Budgets []int64
	M       int64
	unit    bool
	sealed  bool
}

// NewDense returns an n-player game with all weights, costs and lengths 1,
// all budgets 1, and penalty M = n²+n+1. Callers mutate the exported
// matrices to shape the instance and then call Seal.
func NewDense(n int) *Dense {
	if n < 2 {
		panic(fmt.Sprintf("core: dense game needs n >= 2, got %d", n))
	}
	d := &Dense{
		Weights: ones(n),
		Costs:   ones(n),
		Lengths: ones(n),
		Budgets: make([]int64, n),
		M:       int64(n)*int64(n) + int64(n) + 1,
	}
	for i := range d.Budgets {
		d.Budgets[i] = 1
	}
	return d
}

func ones(n int) [][]int64 {
	m := make([][]int64, n)
	row := make([]int64, n*n)
	for i := range row {
		row[i] = 1
	}
	for i := range m {
		m[i] = row[i*n : (i+1)*n : (i+1)*n]
		m[i][i] = 0
	}
	return m
}

// Seal validates the instance and freezes derived properties (the
// unit-length fast path flag). It must be called after the matrices are
// shaped and before the game is analyzed.
func (d *Dense) Seal() error {
	n := len(d.Budgets)
	if n < 2 {
		return fmt.Errorf("core: dense game needs n >= 2, got %d", n)
	}
	if len(d.Weights) != n || len(d.Costs) != n || len(d.Lengths) != n {
		return fmt.Errorf("core: matrix dimensions disagree with budget vector length %d", n)
	}
	d.unit = true
	var maxLen int64 = 1
	for u := 0; u < n; u++ {
		if len(d.Weights[u]) != n || len(d.Costs[u]) != n || len(d.Lengths[u]) != n {
			return fmt.Errorf("core: row %d has wrong length", u)
		}
		if d.Budgets[u] < 0 {
			return fmt.Errorf("core: negative budget %d for node %d", d.Budgets[u], u)
		}
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			if d.Weights[u][v] < 0 {
				return fmt.Errorf("core: negative weight w(%d,%d)=%d", u, v, d.Weights[u][v])
			}
			if d.Costs[u][v] <= 0 {
				return fmt.Errorf("core: non-positive link cost c(%d,%d)=%d", u, v, d.Costs[u][v])
			}
			if d.Lengths[u][v] <= 0 {
				return fmt.Errorf("core: non-positive length ℓ(%d,%d)=%d", u, v, d.Lengths[u][v])
			}
			if d.Lengths[u][v] != 1 {
				d.unit = false
			}
			if d.Lengths[u][v] > maxLen {
				maxLen = d.Lengths[u][v]
			}
		}
	}
	if d.M <= int64(n)*maxLen {
		return fmt.Errorf("core: penalty M=%d must exceed n·max ℓ = %d", d.M, int64(n)*maxLen)
	}
	d.sealed = true
	return nil
}

// MustSeal is Seal that panics on error; for fixtures.
func (d *Dense) MustSeal() *Dense {
	if err := d.Seal(); err != nil {
		panic(err)
	}
	return d
}

// N returns the number of players.
func (d *Dense) N() int { return len(d.Budgets) }

// Weight returns w(u, v).
func (d *Dense) Weight(u, v int) int64 { return d.Weights[u][v] }

// LinkCost returns c(u, v).
func (d *Dense) LinkCost(u, v int) int64 { return d.Costs[u][v] }

// Length returns ℓ(u, v).
func (d *Dense) Length(u, v int) int64 { return d.Lengths[u][v] }

// Budget returns b(u).
func (d *Dense) Budget(u int) int64 { return d.Budgets[u] }

// Penalty returns the disconnection penalty M.
func (d *Dense) Penalty() int64 { return d.M }

// UnitLengths reports whether all lengths are 1 (valid only after Seal).
func (d *Dense) UnitLengths() bool {
	if !d.sealed {
		panic("core: Dense spec used before Seal")
	}
	return d.unit
}
