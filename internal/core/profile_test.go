package core

import (
	"math/rand"
	"strings"
	"testing"
)

func TestNormalizeStrategy(t *testing.T) {
	tests := []struct {
		name string
		in   []int
		want Strategy
	}{
		{name: "empty", in: nil, want: Strategy{}},
		{name: "sorted kept", in: []int{1, 3}, want: Strategy{1, 3}},
		{name: "unsorted", in: []int{3, 1}, want: Strategy{1, 3}},
		{name: "duplicates", in: []int{2, 2, 1, 2}, want: Strategy{1, 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := NormalizeStrategy(tt.in); !got.Equal(tt.want) {
				t.Fatalf("NormalizeStrategy(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestStrategyContains(t *testing.T) {
	s := Strategy{1, 4, 7}
	for _, v := range []int{1, 4, 7} {
		if !s.Contains(v) {
			t.Fatalf("Contains(%d) = false", v)
		}
	}
	for _, v := range []int{0, 2, 8} {
		if s.Contains(v) {
			t.Fatalf("Contains(%d) = true", v)
		}
	}
}

func TestProfileValidate(t *testing.T) {
	spec := MustUniform(4, 2)
	tests := []struct {
		name    string
		p       Profile
		wantErr string
	}{
		{name: "valid", p: Profile{{1, 2}, {0}, {}, {0, 1}}},
		{name: "wrong length", p: Profile{{1}}, wantErr: "strategies"},
		{name: "self link", p: Profile{{0}, {}, {}, {}}, wantErr: "self link"},
		{name: "out of range", p: Profile{{9}, {}, {}, {}}, wantErr: "out-of-range"},
		{name: "unsorted", p: Profile{{2, 1}, {}, {}, {}}, wantErr: "not sorted"},
		{name: "duplicate", p: Profile{{1, 1}, {}, {}, {}}, wantErr: "not sorted"},
		{name: "over budget", p: Profile{{1, 2, 3}, {}, {}, {}}, wantErr: "budget"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate(spec)
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("err = %v, want containing %q", err, tt.wantErr)
			}
		})
	}
}

func TestRealizeAndFromGraphRoundTrip(t *testing.T) {
	spec := MustUniform(5, 2)
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 50; trial++ {
		p := randomProfile(rng, 5, 2)
		g := p.Realize(spec)
		back := FromGraph(g)
		if !back.Equal(p) {
			t.Fatalf("round trip failed: %v -> %v", p, back)
		}
	}
}

func TestRealizeUsesSpecLengths(t *testing.T) {
	d := NewDense(3)
	d.Lengths[0][1] = 9
	d.M = 100
	d.MustSeal()
	p := Profile{{1}, {}, {}}
	g := p.Realize(d)
	if g.Out(0)[0].Len != 9 {
		t.Fatalf("arc length = %d, want 9", g.Out(0)[0].Len)
	}
}

func TestProfileKeyAndEqual(t *testing.T) {
	a := Profile{{1, 2}, {0}, {}}
	b := Profile{{1, 2}, {0}, {}}
	c := Profile{{1}, {0}, {}}
	if a.Key() != b.Key() || !a.Equal(b) {
		t.Fatal("identical profiles must share keys")
	}
	if a.Key() == c.Key() || a.Equal(c) {
		t.Fatal("different profiles must differ")
	}
	if a.Equal(Profile{{1, 2}, {0}}) {
		t.Fatal("different lengths must not be equal")
	}
}

func TestProfileCloneIsDeep(t *testing.T) {
	p := Profile{{1}, {}}
	c := p.Clone()
	c[0][0] = 0 // mutate clone's backing array
	if p[0][0] != 1 {
		t.Fatal("clone shares backing storage with original")
	}
}

func TestProfileString(t *testing.T) {
	p := Profile{{1, 2}, {}}
	if got := p.String(); got != "0→{1,2} 1→{}" {
		t.Fatalf("String = %q", got)
	}
}

// randomProfile builds a random feasible profile for an (n, k)-uniform
// game: every node buys exactly k distinct targets (or fewer at random).
func randomProfile(rng *rand.Rand, n, k int) Profile {
	p := make(Profile, n)
	for u := 0; u < n; u++ {
		size := rng.Intn(k + 1)
		perm := rng.Perm(n)
		s := make([]int, 0, size)
		for _, v := range perm {
			if v != u && len(s) < size {
				s = append(s, v)
			}
		}
		p[u] = NormalizeStrategy(s)
	}
	return p
}
