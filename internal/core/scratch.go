package core

import (
	"bbc/internal/graph"
	"bbc/internal/obs"
)

// EvalScratch is the reusable state behind incremental stability and
// best-response evaluation: one traversal scratch plus a per-node cache of
// oracles, all backed by buffers that are retained across queries. A warm
// EvalScratch answers Oracle queries with zero steady-state heap
// allocation.
//
// The cache exploits the oracle decomposition: the oracle for node u
// depends only on G−u (u's own out-arcs are deleted from every traversal),
// so rewiring node v invalidates the cached oracle of every node except v
// itself. Odometer-style enumeration, where one node's strategy changes
// per profile step, therefore reuses the changed node's own oracle
// verbatim; best-response walks reuse every oracle while probing nodes
// that end up not moving. Invalidation is tracked with version counters —
// Bind stamps version 1, NoteRewire(v) bumps the global version and
// stamps v, and a cached oracle built at time b is valid iff no node
// other than its owner was rewired after b.
//
// An EvalScratch is bound to one (spec, graph, aggregation) triple at a
// time via Bind and is NOT safe for concurrent use: parallel scans own
// one per worker goroutine. While bound, every mutation of the graph must
// be reported through NoteRewire (or by re-Binding), otherwise cached
// oracles go stale silently.
type EvalScratch struct {
	spec Spec
	g    *graph.Digraph
	agg  Aggregation

	gs   graph.Scratch
	dist []int64

	// Bit-parallel traversal state: on uniform-length specs oracle rebuilds
	// batch their node-deleted BFS calls through bs into the flat bdist
	// buffer (min(BatchWidth, n−1) × n entries), cutting a rebuild to a
	// handful of level-synchronized traversals. noBatch forces the scalar
	// path (SetBatchBFS), which produces bit-identical oracles.
	bs      graph.BitScratch
	bdist   []int64
	noBatch bool

	// rev is the arc-reversal of g, maintained incrementally by NoteRewire
	// on uniform-length bindings (nil otherwise): with it, a rebuild runs
	// one reverse traversal per *support* node instead of one forward
	// traversal per candidate — a large saving whenever few targets carry
	// positive preference weight. known[u] mirrors the out-targets of u
	// currently reflected in rev, so a rewire retracts exactly the arcs it
	// previously added.
	rev   *graph.Digraph
	known [][]int

	slots   []*evalSlot
	version uint64   // bumped by every NoteRewire
	rewired []uint64 // rewired[v] = version at v's last rewire (1 = at Bind)
}

// evalSlot caches one node's oracle. builtAt is the version at which the
// oracle was built; 0 means never built for the current binding.
type evalSlot struct {
	o       Oracle
	builtAt uint64
}

// NewEvalScratch returns an empty scratch; Bind attaches it to a game.
// Batched bit-parallel traversals are on by default where they apply
// (uniform-length specs); SetBatchBFS(false) opts out.
func NewEvalScratch() *EvalScratch { return &EvalScratch{} }

// SetBatchBFS enables or disables the bit-parallel traversal path for
// oracle rebuilds. Both settings produce bit-identical oracles; disabling
// exists for benchmarks isolating the scalar engine and for diagnosing the
// batch path itself.
func (es *EvalScratch) SetBatchBFS(on bool) { es.noBatch = !on }

// Bind attaches the scratch to a (spec, graph, aggregation) triple,
// invalidating every cached oracle unless the triple is identical to the
// current binding (in which case Bind is a no-op and the cache survives).
// Buffers are retained across re-binds, so alternating between games of
// the same size stays allocation-free after warm-up.
func (es *EvalScratch) Bind(spec Spec, g *graph.Digraph, agg Aggregation) {
	if es.spec == spec && es.g == g && es.agg == agg && es.version != 0 {
		return
	}
	es.spec, es.g, es.agg = spec, g, agg
	n := spec.N()
	if cap(es.dist) < n {
		es.dist = make([]int64, n)
	}
	es.dist = es.dist[:n]
	if spec.UnitLengths() {
		es.bdist = growInt64(es.bdist, min(graph.BatchWidth, n-1)*n)
		if es.rev == nil || es.rev.N() != n {
			es.rev = graph.New(n)
			es.known = make([][]int, n)
		}
		for v := 0; v < n; v++ {
			es.rev.RemoveArcs(v)
		}
		for u := 0; u < n; u++ {
			es.known[u] = es.known[u][:0]
			for _, a := range g.Out(u) {
				es.rev.AddArc(a.To, u, a.Len)
				es.known[u] = append(es.known[u], a.To)
			}
		}
	} else {
		es.rev = nil
	}
	if cap(es.slots) < n {
		slots := make([]*evalSlot, n)
		copy(slots, es.slots)
		es.slots = slots
	}
	es.slots = es.slots[:n]
	if cap(es.rewired) < n {
		es.rewired = make([]uint64, n)
	}
	es.rewired = es.rewired[:n]
	es.version = 1
	for v := range es.rewired {
		es.rewired[v] = 1
	}
	for _, s := range es.slots {
		if s != nil {
			s.builtAt = 0
		}
	}
}

// NoteRewire records that node u's out-arcs changed in the bound graph,
// invalidating every cached oracle except u's own and reconciling the
// reversed twin with the bound graph's new arcs.
func (es *EvalScratch) NoteRewire(u int) {
	es.version++
	es.rewired[u] = es.version
	if es.rev == nil {
		return
	}
	for _, v := range es.known[u] {
		es.rev.RemoveArcTo(v, u)
	}
	es.known[u] = es.known[u][:0]
	for _, a := range es.g.Out(u) {
		es.rev.AddArc(a.To, u, a.Len)
		es.known[u] = append(es.known[u], a.To)
	}
}

// OracleFor returns node u's oracle against the bound graph, serving it
// from cache when no other node has been rewired since it was built, and
// rebuilding it in place (reusing the slot's buffers and the shared
// traversal scratch) otherwise. The returned oracle is owned by the
// scratch and valid until the next OracleFor, NoteRewire or Bind call
// touching it.
func (es *EvalScratch) OracleFor(u int) *Oracle {
	slot := es.slots[u]
	if slot == nil {
		slot = &evalSlot{}
		es.slots[u] = slot
	}
	if slot.builtAt != 0 {
		valid := true
		for v, rv := range es.rewired {
			if v != u && rv > slot.builtAt {
				valid = false
				break
			}
		}
		if valid {
			obs.Global().Inc(obs.MOracleCacheHits)
			return &slot.o
		}
	}
	bs, rev := &es.bs, es.rev
	if es.noBatch {
		bs, rev = nil, nil
	}
	slot.o.build(es.spec, es.g, u, es.agg, &es.gs, bs, es.dist, es.bdist, rev)
	slot.builtAt = es.version
	return &slot.o
}
