package core

import (
	"encoding/json"
	"testing"

	"bbc/internal/runctl"
)

// A parallel scan given exactly enough MaxProfiles for the whole space
// must classify as a complete scan, not a budget truncation.
func TestParallelExactBudgetCompletes(t *testing.T) {
	spec := MustUniform(3, 1)
	ss, err := FullSpace(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	size := ss.Size()
	res, err := EnumeratePureNEParallelOpts(spec, SumDistances, ss, EnumConfig{
		MaxProfiles: size,
		Workers:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checked != size {
		t.Fatalf("checked %d of %d profiles", res.Checked, size)
	}
	if res.Status != runctl.StatusComplete || !res.Complete {
		t.Fatalf("exactly-sufficient budget must complete: status=%v complete=%v", res.Status, res.Complete)
	}
}

// Regression: the post-merge budget probe must be read-only. The old
// probe called take(), debiting one profile from the shared budget as a
// side effect of classifying the merge, so an exactly-sufficient budget
// drained to -1 instead of 0 — observable drift in the remaining count.
func TestParallelBudgetProbeDoesNotDebit(t *testing.T) {
	spec := MustUniform(3, 1)
	ss, err := FullSpace(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	size := ss.Size()
	b := newProfileBudget(size, 0)
	res, err := EnumeratePureNEParallelOpts(spec, SumDistances, ss, EnumConfig{
		budget:  b,
		Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != runctl.StatusComplete {
		t.Fatalf("exactly-sufficient budget must complete, got %v", res.Status)
	}
	if rem := b.remaining.Load(); rem != 0 {
		t.Fatalf("budget drifted: %d profiles were taken for %d checked (remaining %d, want 0)",
			size-uint64(rem), res.Checked, rem)
	}
	// Probing an exhausted budget any number of times must not move it.
	for i := 0; i < 3; i++ {
		if !b.exhausted() {
			t.Fatal("a drained budget must read as exhausted")
		}
	}
	if rem := b.remaining.Load(); rem != 0 {
		t.Fatalf("exhausted() mutated the budget: remaining %d", rem)
	}
}

// A truncated-then-resumed scan must report stable checkpoint Checked
// counts: re-running the merge (and its budget probe) against the same
// cumulative MaxProfiles may not move the persisted progress numbers.
func TestParallelBudgetCheckpointCheckedStable(t *testing.T) {
	spec := MustUniform(3, 1)
	ss, err := FullSpace(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Partition size for uniform(3,1) full space is 9; a budget of 14
	// completes partition 0 and truncates partition 1 mid-scan.
	const maxProfiles = 14
	res, err := EnumeratePureNEParallelOpts(spec, SumDistances, ss, EnumConfig{
		MaxProfiles: maxProfiles,
		Workers:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != runctl.StatusBudget || res.Resume == nil {
		t.Fatalf("expected a budget truncation with resume state, got status=%v resume=%v", res.Status, res.Resume)
	}
	ckptChecked := res.Resume.Checked
	// Resuming under the same cumulative budget re-runs the merge and its
	// probe with no allowance left; the persisted Checked must not drift.
	cp := res.Resume
	for round := 0; round < 3; round++ {
		r, err := EnumeratePureNEParallelOpts(spec, SumDistances, ss, EnumConfig{
			MaxProfiles: ckptChecked, // all credit already spent
			Workers:     1,
			Resume:      cp,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Status != runctl.StatusBudget || r.Resume == nil {
			t.Fatalf("round %d: expected budget stop, got %v", round, r.Status)
		}
		if r.Resume.Checked != ckptChecked {
			t.Fatalf("round %d: checkpointed Checked drifted %d -> %d", round, ckptChecked, r.Resume.Checked)
		}
		cp = r.Resume
	}
}

// Resume after a partition hit the MaxEquilibria cap: a capped partition
// is not recorded in done[] (its scan did not complete), so the resumed
// run rescans it. The merged resumed result must be byte-identical to the
// uninterrupted capped scan's NEResult JSON.
func TestParallelResumeAfterCappedPartition(t *testing.T) {
	spec := MustUniform(4, 1)
	ss, err := FullSpace(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := EnumConfig{MaxEquilibria: 1, Workers: 2}
	ref, err := EnumeratePureNEParallelOpts(spec, SumDistances, ss, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Status != runctl.StatusBudget || ref.Resume == nil {
		t.Fatalf("test premise broken: the capped scan must truncate with resume state, got status=%v", ref.Status)
	}
	capped := 0
	for _, part := range ref.Resume.Parts {
		if part == nil {
			capped++
		}
	}
	if capped == 0 {
		t.Fatal("test premise broken: no partition was left incomplete by the cap")
	}

	resumedCfg := cfg
	resumedCfg.Resume = ref.Resume
	got, err := EnumeratePureNEParallelOpts(spec, SumDistances, ss, resumedCfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	have, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != string(have) {
		t.Fatalf("resumed result diverged from the uninterrupted scan:\nwant %s\nhave %s", want, have)
	}
}
