package core

// Native fuzz targets for the untrusted-input loaders: game specs and
// instances arrive from files users hand to the CLIs (-load, bbcgen
// output), so the decoders must never panic and must uphold their
// round-trip contracts on whatever bytes they accept.

import (
	"bytes"
	"encoding/json"
	"testing"
)

// specSeeds covers both kinds, the error branches, and shape attacks
// (matrix/budget length mismatches, huge claimed sizes).
var specSeeds = []string{
	`{"kind":"uniform","n":5,"k":2}`,
	`{"kind":"uniform","n":2,"k":1}`,
	`{"kind":"uniform","n":-3,"k":9}`,
	`{"kind":"dense","weights":[[0,1],[1,0]],"costs":[[0,1],[1,0]],"lengths":[[0,1],[1,0]],"budgets":[1,1],"penalty":7}`,
	`{"kind":"dense","weights":[[0,1]],"costs":[[0,1],[1,0]],"lengths":[[0,1],[1,0]],"budgets":[1,1]}`,
	`{"kind":"dense","budgets":[1,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1]}`,
	`{"kind":"mystery"}`,
	`{}`,
	`null`,
	`[1,2,3]`,
	`{"kind":"dense","budgets":`,
}

func FuzzUnmarshalSpec(f *testing.F) {
	for _, seed := range specSeeds {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := UnmarshalSpec(data)
		if err != nil {
			return
		}
		// Whatever the loader accepts must round-trip to an equivalent
		// spec: marshal, re-load, compare the canonical encodings.
		out, err := MarshalSpec(spec)
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v", err)
		}
		spec2, err := UnmarshalSpec(out)
		if err != nil {
			t.Fatalf("marshalled spec does not re-load: %v\n%s", err, out)
		}
		out2, err := MarshalSpec(spec2)
		if err != nil {
			t.Fatalf("re-loaded spec does not marshal: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("spec round trip not stable:\n%s\n%s", out, out2)
		}
		if spec.N() < 2 {
			t.Fatalf("accepted spec has %d nodes", spec.N())
		}
	})
}

// instanceSeeds exercises game/profile interplay: feasible profiles,
// infeasible ones (over budget, out-of-range targets), and malformed
// nesting.
var instanceSeeds = []string{
	`{"game":{"kind":"uniform","n":4,"k":1},"profile":[[1],[2],[3],[0]]}`,
	`{"game":{"kind":"uniform","n":4,"k":1},"profile":[[],[],[],[]]}`,
	`{"game":{"kind":"uniform","n":4,"k":1},"profile":[[1,2],[2],[3],[0]]}`,
	`{"game":{"kind":"uniform","n":4,"k":1},"profile":[[9],[2],[3],[0]]}`,
	`{"game":{"kind":"uniform","n":4,"k":1},"profile":[[-1],[2],[3],[0]]}`,
	`{"game":{"kind":"dense","weights":[[0,1],[1,0]],"costs":[[0,1],[1,0]],"lengths":[[0,1],[1,0]],"budgets":[1,1],"penalty":7},"profile":[[1],[0]]}`,
	`{"game":null,"profile":null}`,
	`{"profile":[[0]]}`,
	`{`,
}

func FuzzInstanceJSON(f *testing.F) {
	for _, seed := range instanceSeeds {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var in Instance
		if err := json.Unmarshal(data, &in); err != nil {
			return
		}
		// An accepted instance is validated: the profile must actually be
		// feasible for the game it came with.
		if err := in.Profile.Validate(in.Spec); err != nil {
			t.Fatalf("loader accepted an infeasible profile: %v", err)
		}
		out, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("accepted instance does not marshal: %v", err)
		}
		var in2 Instance
		if err := json.Unmarshal(out, &in2); err != nil {
			t.Fatalf("marshalled instance does not re-load: %v\n%s", err, out)
		}
	})
}
