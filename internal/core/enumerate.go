package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync/atomic"
	"time"

	"bbc/internal/graph"
	"bbc/internal/obs"
	"bbc/internal/runctl"
)

// AllStrategies enumerates feasible strategies for node u. When maximalOnly
// is set, only budget-maximal sets are returned (no affordable link can be
// added); otherwise every feasible set including the empty one is returned.
// limit caps the result length (0 = unlimited); exceeding it returns an
// *EnumerationLimitError.
func AllStrategies(spec Spec, u int, maximalOnly bool, limit int) ([]Strategy, error) {
	n := spec.N()
	cands := make([]int, 0, n-1)
	costs := make([]int64, 0, n-1)
	for v := 0; v < n; v++ {
		if v != u {
			cands = append(cands, v)
			costs = append(costs, spec.LinkCost(u, v))
		}
	}
	minRemain := make([]int64, len(cands)+1)
	minRemain[len(cands)] = int64(1)<<62 - 1
	for i := len(cands) - 1; i >= 0; i-- {
		minRemain[i] = costs[i]
		if minRemain[i+1] < minRemain[i] {
			minRemain[i] = minRemain[i+1]
		}
	}
	var (
		out      []Strategy
		chosen   []int
		inSet    = make([]bool, len(cands))
		limitHit bool
	)
	// isMaximal reports whether no unchosen candidate fits in rem.
	isMaximal := func(rem int64) bool {
		for i := range cands {
			if !inSet[i] && costs[i] <= rem {
				return false
			}
		}
		return true
	}
	emit := func(rem int64) {
		if maximalOnly && !isMaximal(rem) {
			return
		}
		if limit > 0 && len(out) >= limit {
			limitHit = true
			return
		}
		s := make(Strategy, len(chosen))
		copy(s, chosen)
		out = append(out, s)
	}
	var dfs func(i int, rem int64)
	dfs = func(i int, rem int64) {
		if limitHit {
			return
		}
		if i == len(cands) {
			emit(rem)
			return
		}
		if maximalOnly && minRemain[i] > rem {
			emit(rem)
			return
		}
		if costs[i] <= rem {
			chosen = append(chosen, cands[i])
			inSet[i] = true
			dfs(i+1, rem-costs[i])
			inSet[i] = false
			chosen = chosen[:len(chosen)-1]
		}
		if limitHit {
			return
		}
		if !maximalOnly {
			dfs(i+1, rem)
			return
		}
		if costs[i] > rem || minRemain[i+1] <= rem {
			dfs(i+1, rem)
		}
	}
	dfs(0, spec.Budget(u))
	if limitHit {
		return nil, &EnumerationLimitError{Node: u, Limit: limit}
	}
	return out, nil
}

// SearchSpace restricts the per-node strategy sets explored by
// EnumeratePureNE. A nil entry means "not restricted" and is invalid; use
// FullSpace or PinnedSpace to build one.
type SearchSpace struct {
	PerNode [][]Strategy
}

// Size returns the number of profiles in the product space, saturating at
// 2^63-1.
func (ss *SearchSpace) Size() uint64 {
	size := uint64(1)
	const cap64 = uint64(1) << 63
	for _, set := range ss.PerNode {
		if uint64(len(set)) == 0 {
			return 0
		}
		if size > cap64/uint64(len(set)) {
			return cap64
		}
		size *= uint64(len(set))
	}
	return size
}

// Pivot returns the index of the first node with more than one strategy
// — the axis the parallel enumerator (and the distributed fleet) splits
// the odometer space along — or -1 when every set is a singleton and the
// space holds exactly one profile. Splitting on the pivot keeps the
// serial odometer order: partition i in full is scanned before any
// profile of partition i+1, so concatenating partition (or shard)
// results in index order reproduces the unsplit scan byte for byte.
func (ss *SearchSpace) Pivot() int {
	for u, set := range ss.PerNode {
		if len(set) > 1 {
			return u
		}
	}
	return -1
}

// FullSpace builds the unrestricted search space: every feasible strategy
// for every node (including non-maximal ones, since ties can make
// non-maximal strategies equilibrium components).
func FullSpace(spec Spec, limitPerNode int) (*SearchSpace, error) {
	ss := &SearchSpace{PerNode: make([][]Strategy, spec.N())}
	for u := 0; u < spec.N(); u++ {
		set, err := AllStrategies(spec, u, false, limitPerNode)
		if err != nil {
			return nil, err
		}
		ss.PerNode[u] = set
	}
	return ss, nil
}

// PinnedSpace builds a search space with the singleton-support pin rule
// applied: in a unit-length game, a node u whose preference weights are
// positive for exactly one target v (and which can afford the link to v)
// achieves distance 1 to v only by buying that link, so every best response
// of u contains v; strategies omitting v can be soundly excluded. The rule
// preserves all pure Nash equilibria, so "no NE in the pinned space"
// implies "no NE at all".
func PinnedSpace(spec Spec, limitPerNode int) (*SearchSpace, error) {
	if !spec.UnitLengths() {
		return nil, fmt.Errorf("core: PinnedSpace requires unit link lengths")
	}
	full, err := FullSpace(spec, limitPerNode)
	if err != nil {
		return nil, err
	}
	n := spec.N()
	for u := 0; u < n; u++ {
		support := -1
		multi := false
		for v := 0; v < n; v++ {
			if v != u && spec.Weight(u, v) > 0 {
				if support >= 0 {
					multi = true
					break
				}
				support = v
			}
		}
		if multi || support < 0 || spec.LinkCost(u, support) > spec.Budget(u) {
			continue
		}
		kept := full.PerNode[u][:0]
		for _, s := range full.PerNode[u] {
			if s.Contains(support) {
				kept = append(kept, s)
			}
		}
		full.PerNode[u] = kept
	}
	return full, nil
}

// NEResult reports the outcome of an exhaustive equilibrium search.
type NEResult struct {
	// Equilibria holds the pure Nash equilibria found (up to the caller's
	// cap), in odometer order.
	Equilibria []Profile
	// Checked is the number of profiles whose stability was tested,
	// including profiles credited from a resumed checkpoint.
	Checked uint64
	// Complete is true when the whole space was scanned (the search did not
	// stop early at a cap, budget, deadline or cancellation).
	Complete bool
	// Status classifies how the scan ended: complete, cancelled (context
	// cancel / signal), deadline (-timeout), or budget (max-equilibria or
	// max-profiles cap). Every early stop returns the partial result with
	// a nil error; hard failures (bad input, worker panic) return errors.
	Status runctl.Status
	// Resume, non-nil on an early stop with work left, is the state from
	// which a new scan continues without re-checking any profile.
	Resume *EnumCheckpoint
}

// EnumCheckpoint is the serialized progress of an enumeration scan: the
// serial scan stores the odometer cursor of the next unchecked profile,
// the parallel scan stores per-partition completed results. Wrap it in a
// runctl.Checkpoint envelope (kind "enumeration") to persist it.
type EnumCheckpoint struct {
	// Cursor holds the per-node strategy indices of the next profile a
	// serial scan will check. Nil for parallel checkpoints.
	Cursor []int `json:"cursor,omitempty"`
	// Checked is the number of profiles already checked.
	Checked uint64 `json:"checked"`
	// Equilibria are the equilibria found so far, in odometer order
	// (serial scans only; parallel scans keep them per partition).
	Equilibria []Profile `json:"equilibria,omitempty"`
	// Parts records, for a parallel scan, each fully-scanned partition's
	// result; a nil entry is a partition still to do. Nil for serial
	// checkpoints.
	Parts []*PartProgress `json:"parts,omitempty"`
	// Pending holds, for a quotiented serial scan, the cursor-order index
	// vectors (strictly ascending, all at or past Cursor) of equilibria
	// already known by orbit expansion but not yet reached by the cursor.
	// Resuming replays them so the emitted equilibria match the
	// unquotiented scan byte for byte. Empty for plain scans — every orbit
	// is the trivial one — and for parallel checkpoints, which only record
	// completed partitions (a finished partition has drained its pending
	// list by construction).
	Pending [][]int `json:"pending,omitempty"`
}

// PartProgress is one completed partition of a parallel scan.
type PartProgress struct {
	Checked    uint64    `json:"checked"`
	Equilibria []Profile `json:"equilibria,omitempty"`
}

// validate sanity-checks the checkpoint's carried results against the
// spec. Envelope checksums catch accidental corruption, but a resumed
// payload still crosses a trust boundary (hand-edited files, schema
// drift); a checkpoint that passes here can be replayed into a result
// without further checking.
func (cp *EnumCheckpoint) validate(spec Spec) error {
	if err := validateCarried(spec, cp.Equilibria, cp.Checked); err != nil {
		return err
	}
	for i, part := range cp.Parts {
		if part == nil {
			continue
		}
		if err := validateCarried(spec, part.Equilibria, part.Checked); err != nil {
			return fmt.Errorf("core: checkpoint partition %d: %w", i, err)
		}
	}
	return nil
}

// validateCarried checks one carried result set: every equilibrium must
// be a feasible profile for the spec, and the checked count must cover
// at least the equilibria it claims to contain.
func validateCarried(spec Spec, eqs []Profile, checked uint64) error {
	if uint64(len(eqs)) > checked {
		return fmt.Errorf("core: checkpoint claims %d equilibria in only %d checked profiles", len(eqs), checked)
	}
	for i, eq := range eqs {
		if err := eq.Validate(spec); err != nil {
			return fmt.Errorf("core: checkpoint equilibrium %d is not a feasible profile: %w", i, err)
		}
	}
	return nil
}

// EnumFingerprint identifies a scan configuration for checkpoint
// validation: two runs share a fingerprint exactly when they scan the
// same spec, aggregation and per-node strategy sets, so a checkpoint is
// never resumed against a different search.
func EnumFingerprint(spec Spec, agg Aggregation, ss *SearchSpace) string {
	h := fnv.New64a()
	n := spec.N()
	fmt.Fprintf(h, "n=%d;agg=%d;M=%d;", n, agg, spec.Penalty())
	for u := 0; u < n; u++ {
		fmt.Fprintf(h, "b=%d;", spec.Budget(u))
		for v := 0; v < n; v++ {
			if v != u {
				fmt.Fprintf(h, "%d,%d,%d;", spec.Weight(u, v), spec.LinkCost(u, v), spec.Length(u, v))
			}
		}
	}
	for _, set := range ss.PerNode {
		fmt.Fprintf(h, "s=%d;", len(set))
	}
	return fmt.Sprintf("enum-%016x", h.Sum64())
}

// EnumConfig tunes a run-controlled enumeration scan. The zero value
// reproduces the classic uncontrolled scan.
type EnumConfig struct {
	// Ctx, when non-nil, is polled every CheckEvery profiles; a cancel or
	// deadline stops the scan with a partial result and resume state.
	Ctx context.Context
	// MaxEquilibria stops collecting after this many equilibria (0 = all).
	MaxEquilibria int
	// MaxProfiles bounds the cumulative number of profiles checked
	// (including profiles credited from a resumed checkpoint); hitting it
	// stops the scan with StatusBudget. 0 means unbounded.
	MaxProfiles uint64
	// CheckEvery is the context-poll period in profiles (0 = runctl.CheckEvery).
	CheckEvery uint64
	// CheckpointEvery is the period, in profiles checked this run, at
	// which OnCheckpoint fires (0 = every 1<<20 profiles).
	CheckpointEvery uint64
	// OnCheckpoint, when non-nil, receives periodic progress snapshots
	// (serial: every CheckpointEvery profiles; parallel: after each
	// completed partition). The callback must not mutate the snapshot.
	OnCheckpoint func(*EnumCheckpoint)
	// Resume continues a previous scan from its checkpoint instead of
	// starting at the first profile.
	Resume *EnumCheckpoint
	// Workers bounds parallel-scan concurrency (0 = NumCPU); ignored by
	// the serial scan.
	Workers int
	// Quotient, when non-nil, must be compiled (NewQuotient) against this
	// scan's spec and search space: the scan then evaluates stability only
	// at canonical orbit representatives, crediting the skipped states and
	// re-expanding stable representatives into their full orbits at the
	// moment the cursor reaches each member — so a completed quotiented
	// scan returns equilibria, counts and ordering byte-identical to the
	// plain scan at a fraction of the evaluations. Checkpoints from
	// quotiented and plain scans are mutually incompatible (resume both
	// sides of a split under the same Quotient; see QualifyFingerprint).
	Quotient *Quotient
	// DisableBatchBFS forces scalar per-source traversals during oracle
	// rebuilds instead of the bit-parallel batch path (see
	// EvalScratch.SetBatchBFS). Results are identical either way.
	DisableBatchBFS bool

	// qview is the partition-bound quotient view handed to a parallel
	// worker's sub-scan; it takes precedence over Quotient.
	qview *quotientView
	// budget, when non-nil, is the shared cross-partition profile budget
	// of a parallel scan and takes precedence over MaxProfiles.
	budget *profileBudget
	// scratch, when non-nil, is the caller-owned evaluation scratch the
	// scan binds to its realized graph; parallel workers pass one per
	// goroutine so oracle caches and traversal buffers persist across the
	// partitions a worker drains.
	scratch *EvalScratch
}

func (c EnumConfig) checkpointEvery() uint64 {
	if c.CheckpointEvery > 0 {
		return c.CheckpointEvery
	}
	return 1 << 20
}

// profileBudget is a race-safe profile allowance shared by concurrent
// partition scans.
type profileBudget struct{ remaining atomic.Int64 }

// newProfileBudget grants max profiles minus the already-spent credit.
func newProfileBudget(max, spent uint64) *profileBudget {
	b := &profileBudget{}
	rem := int64(max) - int64(spent)
	if rem < 0 {
		rem = 0
	}
	b.remaining.Store(rem)
	return b
}

// take debits one profile; false means the budget is exhausted.
func (b *profileBudget) take() bool { return b.remaining.Add(-1) >= 0 }

// exhausted reports whether the budget has no profiles left, without
// debiting anything: probes (post-merge status classification) must not
// consume allowance a concurrent or later scan could still use.
func (b *profileBudget) exhausted() bool { return b.remaining.Load() <= 0 }

// EnumeratePureNE scans the product space and returns all pure Nash
// equilibria it contains (up to maxEquilibria; 0 means collect all). The
// stability test is exact. The scan maintains the realized graph
// incrementally, so successive profiles that differ in one node's strategy
// cost only that node's rewiring.
func EnumeratePureNE(spec Spec, agg Aggregation, ss *SearchSpace, maxEquilibria int) (*NEResult, error) {
	return EnumeratePureNEOpts(spec, agg, ss, EnumConfig{MaxEquilibria: maxEquilibria})
}

// EnumeratePureNEOpts is EnumeratePureNE under run control: the scan
// observes cfg.Ctx within CheckEvery profiles, truncates at the
// MaxProfiles budget, periodically reports resumable checkpoints, and can
// itself resume from one. An interrupted-then-resumed scan checks exactly
// the profiles the uninterrupted scan would have and returns identical
// equilibria in identical order.
func EnumeratePureNEOpts(spec Spec, agg Aggregation, ss *SearchSpace, cfg EnumConfig) (*NEResult, error) {
	sp := obs.Trace().StartSpan("enum.scan")
	res, err := enumeratePureNEOpts(spec, agg, ss, cfg)
	if res != nil {
		sp.EndInt("checked", int64(res.Checked))
	} else {
		sp.End()
	}
	return res, err
}

// evalSampleMask samples 1 in 64 profile-stability checks into the
// HProfileEval latency histogram: two extra clock reads against a
// ~500ns check would be measurable at every profile, negligible at 1/64.
const evalSampleMask = 63

func enumeratePureNEOpts(spec Spec, agg Aggregation, ss *SearchSpace, cfg EnumConfig) (*NEResult, error) {
	n := spec.N()
	if len(ss.PerNode) != n {
		return nil, fmt.Errorf("core: search space covers %d nodes, spec has %d", len(ss.PerNode), n)
	}
	for u, set := range ss.PerNode {
		if len(set) == 0 {
			return nil, fmt.Errorf("core: node %d has an empty strategy set", u)
		}
	}
	res := &NEResult{Complete: true}
	idx := make([]int, n)
	var pending [][]int
	if cfg.Resume != nil {
		if cfg.Resume.Parts != nil {
			return nil, fmt.Errorf("core: checkpoint is from a parallel scan; resume with EnumeratePureNEParallelOpts")
		}
		if len(cfg.Resume.Cursor) != n {
			return nil, fmt.Errorf("core: checkpoint cursor covers %d nodes, search space has %d", len(cfg.Resume.Cursor), n)
		}
		for u, i := range cfg.Resume.Cursor {
			if i < 0 || i >= len(ss.PerNode[u]) {
				return nil, fmt.Errorf("core: checkpoint cursor[%d]=%d out of range [0,%d)", u, i, len(ss.PerNode[u]))
			}
		}
		if err := cfg.Resume.validate(spec); err != nil {
			return nil, err
		}
		copy(idx, cfg.Resume.Cursor)
		for k, pv := range cfg.Resume.Pending {
			if len(pv) != n {
				return nil, fmt.Errorf("core: checkpoint pending[%d] covers %d nodes, search space has %d", k, len(pv), n)
			}
			for u, i := range pv {
				if i < 0 || i >= len(ss.PerNode[u]) {
					return nil, fmt.Errorf("core: checkpoint pending[%d][%d]=%d out of range [0,%d)", k, u, i, len(ss.PerNode[u]))
				}
			}
			if k > 0 && !lexLessInts(cfg.Resume.Pending[k-1], pv) {
				return nil, fmt.Errorf("core: checkpoint pending entries not strictly ascending at %d", k)
			}
			if lexLessInts(pv, idx) {
				return nil, fmt.Errorf("core: checkpoint pending[%d] lies before the cursor", k)
			}
			pending = append(pending, append([]int(nil), pv...))
		}
		res.Checked = cfg.Resume.Checked
		res.Equilibria = append([]Profile(nil), cfg.Resume.Equilibria...)
	}
	qv := cfg.qview
	if qv == nil && cfg.Quotient != nil {
		var err error
		if qv, err = cfg.Quotient.ViewFor(ss, -1, 0); err != nil {
			return nil, err
		}
	}
	p := make(Profile, n)
	for u := range p {
		p[u] = ss.PerNode[u][idx[u]]
	}
	g := p.Realize(spec)
	es := cfg.scratch
	if es == nil {
		es = NewEvalScratch()
	}
	if cfg.DisableBatchBFS {
		es.SetBatchBFS(false)
	}
	// The realized graph is a fresh pointer, so Bind always invalidates a
	// reused scratch's oracle cache here while keeping its buffers warm.
	es.Bind(spec, g, agg)

	// Check nodes with larger strategy sets first: they are the ones whose
	// current strategy is least likely to be a best response, so the
	// early-exit in profileStable fires sooner. (Pure reordering — the
	// stability verdict is order-independent.)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(ss.PerNode[order[a]]) > len(ss.PerNode[order[b]])
	})

	budget := cfg.budget
	if budget == nil && cfg.MaxProfiles > 0 {
		budget = newProfileBudget(cfg.MaxProfiles, res.Checked)
	}
	poll := runctl.NewPoller(cfg.Ctx, cfg.CheckEvery)
	ckptEvery := cfg.checkpointEvery()

	// advance steps the odometer to the next state, recording which digits
	// changed without touching the graph; true means the space wrapped
	// around (done). Rewires are deferred into the dirty list and applied
	// only when a state is actually evaluated (applyRewires), so runs of
	// skipped states — non-canonical orbit members under a quotient, or
	// pending emissions — cost pure odometer arithmetic. Carrying through a
	// singleton digit wraps it back to its only value, a no-op that is
	// never marked dirty. lastChanged is the node rewired by the last
	// applyRewires when exactly one digit changed since the previous
	// evaluation (-1 at the start, after a resume, or after a multi-digit
	// carry): the one node whose cached oracle survived the rewire.
	lastChanged := -1
	dirty := make([]int, 0, n)
	markDirty := func(u int) {
		for _, d := range dirty {
			if d == u {
				return
			}
		}
		dirty = append(dirty, u)
	}
	advance := func() bool {
		for u := n - 1; u >= 0; u-- {
			idx[u]++
			if idx[u] < len(ss.PerNode[u]) {
				markDirty(u)
				return false
			}
			idx[u] = 0
			if len(ss.PerNode[u]) > 1 {
				markDirty(u)
			}
		}
		return true
	}
	applyRewires := func() {
		if len(dirty) == 1 {
			lastChanged = dirty[0]
		} else if len(dirty) > 1 {
			lastChanged = -1
		}
		for _, u := range dirty {
			p[u] = ss.PerNode[u][idx[u]]
			setStrategyArcs(spec, g, u, p[u])
			es.NoteRewire(u)
		}
		dirty = dirty[:0]
	}
	// Bulk suffix-block skipping: refuteLevel certifies that every state
	// sharing digits 0..level with a non-canonical state is refuted by the
	// same group element, so the scan can credit the whole block in one
	// arithmetic step instead of walking it. Enabled only for a serial scan
	// of the full compiled space (partition-local views read the pivot
	// digit outside the certificate) with no profile budget (a bulk credit
	// must not overdraw MaxProfiles mid-block) and with suffix products
	// that fit comfortably in uint64. suffSize[u] is the number of states
	// of the odometer suffix starting at level u.
	var suffSize []uint64
	var jbuf []int
	if qv != nil && qv.pivot < 0 && budget == nil {
		suffSize = make([]uint64, n+1)
		suffSize[n] = 1
		for u := n - 1; u >= 0; u-- {
			w := uint64(len(ss.PerNode[u]))
			if suffSize[u+1] > (uint64(1)<<62)/w {
				suffSize = nil
				break
			}
			suffSize[u] = suffSize[u+1] * w
		}
		if suffSize != nil {
			jbuf = make([]int, n)
		}
	}
	skipLevel := -1
	// canonicalAt is the scan's canonicality test; under bulk skipping it
	// also leaves the refutation's block level in skipLevel.
	canonicalAt := func() bool {
		if suffSize == nil {
			return qv.canonical(idx)
		}
		ok, lvl := qv.refuteLevel(idx)
		skipLevel = lvl
		return ok
	}
	// bulkSkip credits and jumps over the rest of the suffix block sharing
	// digits 0..L with idx. extra is the number of states strictly between
	// idx and the new cursor; done means the block ran to the end of the
	// space; jumped means idx was repositioned (the caller skips its own
	// advance). A pending emission inside the block clamps the jump to it.
	bulkSkip := func(L int) (extra uint64, done, jumped bool) {
		var rest uint64
		for l := L + 1; l < n; l++ {
			rest += uint64(len(ss.PerNode[l])-1-idx[l]) * suffSize[l+1]
		}
		if rest == 0 {
			return 0, false, false
		}
		copy(jbuf, idx)
		for l := L + 1; l < n; l++ {
			jbuf[l] = 0
		}
		wrapped := false
		for l := L; ; l-- {
			if l < 0 {
				wrapped = true
				break
			}
			jbuf[l]++
			if jbuf[l] < len(ss.PerNode[l]) {
				break
			}
			jbuf[l] = 0
		}
		if len(pending) > 0 && (wrapped || lexLessInts(pending[0], jbuf)) {
			copy(jbuf, pending[0])
			wrapped = false
		}
		if wrapped {
			return rest, true, false
		}
		var d int64
		for l := 0; l < n; l++ {
			d += int64(jbuf[l]-idx[l]) * int64(suffSize[l+1])
		}
		for l := 0; l < n; l++ {
			if jbuf[l] != idx[l] {
				idx[l] = jbuf[l]
				markDirty(l)
			}
		}
		return uint64(d - 1), false, true
	}
	// insertPending merges orbit index vectors (ascending, deduplicated,
	// all past the cursor) into the pending list, keeping it sorted.
	insertPending := func(vecs [][]int) {
		for _, v := range vecs {
			at := sort.Search(len(pending), func(i int) bool { return !lexLessInts(pending[i], v) })
			if at < len(pending) && intsEqual(pending[at], v) {
				continue
			}
			pending = append(pending, nil)
			copy(pending[at+1:], pending[at:])
			pending[at] = v
		}
	}
	// snapshot captures the resume state with the cursor at the next
	// unchecked profile.
	snapshot := func() *EnumCheckpoint {
		cp := &EnumCheckpoint{
			Cursor:     append([]int(nil), idx...),
			Checked:    res.Checked,
			Equilibria: append([]Profile(nil), res.Equilibria...),
		}
		for _, v := range pending {
			cp.Pending = append(cp.Pending, append([]int(nil), v...))
		}
		return cp
	}
	// stop finalizes an early exit: the partial result is returned with a
	// nil error, carrying the reason and the resume state.
	stop := func(st runctl.Status) (*NEResult, error) {
		res.Complete = false
		res.Status = st
		res.Resume = snapshot()
		return res, nil
	}

	reg := obs.Global()
	var sinceCkpt uint64
	// capReturn finalizes a MaxEquilibria stop; the cursor advances past
	// the emitting state first so a resume does not re-emit it.
	capReturn := func() (*NEResult, error) {
		res.Complete = false
		res.Status = runctl.StatusBudget
		if !advance() {
			res.Resume = snapshot()
		}
		return res, nil
	}
	for {
		if err := poll.Check(); err != nil {
			return stop(runctl.StatusFromError(err))
		}
		if budget != nil && !budget.take() {
			return stop(runctl.StatusBudget)
		}
		if cfg.OnCheckpoint != nil && sinceCkpt >= ckptEvery {
			sinceCkpt = 0
			cfg.OnCheckpoint(snapshot())
		}
		sinceCkpt++
		res.Checked++
		reg.Inc(obs.MProfilesChecked)
		switch {
		case len(pending) > 0 && intsEqual(pending[0], idx):
			// A known equilibrium: the orbit image of an earlier canonical
			// representative. Emit without evaluating; the profile is built
			// from the search space directly, because the incrementally
			// maintained p lags behind idx across skipped states.
			pending = pending[1:]
			reg.Inc(obs.MEquilibriaFound)
			reg.Inc(obs.MQuotientOrbits)
			res.Equilibria = append(res.Equilibria, profileAt(ss, idx))
			if cfg.MaxEquilibria > 0 && len(res.Equilibria) >= cfg.MaxEquilibria {
				return capReturn()
			}
		case qv != nil && !canonicalAt():
			// A lex-smaller orbit member decides this state: if that
			// representative is stable this state reappears via pending;
			// either way it is credited as checked without an evaluation.
			// Under bulk skipping the whole certified suffix block is
			// credited at once and the cursor jumps past it.
			reg.Inc(obs.MQuotientSkipped)
			if suffSize != nil {
				extra, done, jumped := bulkSkip(skipLevel)
				if extra > 0 {
					res.Checked += extra
					sinceCkpt += extra
					reg.Add(obs.MProfilesChecked, int64(extra))
					reg.Add(obs.MQuotientSkipped, int64(extra))
				}
				if done {
					return res, nil
				}
				if jumped {
					continue
				}
			}
		default:
			applyRewires()
			var stable bool
			if reg != nil && res.Checked&evalSampleMask == 0 {
				t0 := time.Now()
				stable = profileStable(es, p, order, lastChanged)
				reg.Observe(obs.HProfileEval, time.Since(t0).Nanoseconds())
			} else {
				stable = profileStable(es, p, order, lastChanged)
			}
			if stable {
				reg.Inc(obs.MEquilibriaFound)
				res.Equilibria = append(res.Equilibria, p.Clone())
				if qv != nil {
					insertPending(qv.orbit(idx))
				}
				if cfg.MaxEquilibria > 0 && len(res.Equilibria) >= cfg.MaxEquilibria {
					return capReturn()
				}
			}
		}
		if advance() {
			return res, nil
		}
	}
}

// profileAt materializes the profile at an odometer state, cloning each
// strategy so later rewires cannot alias it (same deep-copy shape as
// Profile.Clone, so emitted equilibria are byte-identical either way).
func profileAt(ss *SearchSpace, idx []int) Profile {
	p := make(Profile, len(idx))
	for u, i := range idx {
		p[u] = append(Strategy(nil), ss.PerNode[u][i]...)
	}
	return p
}

// setStrategyArcs rewires node u's out-arcs in g to match strategy s.
func setStrategyArcs(spec Spec, g *graph.Digraph, u int, s Strategy) {
	g.RemoveArcs(u)
	for _, v := range s {
		g.AddArc(u, v, spec.Length(u, v))
	}
}

// profileStable is an exact per-profile stability check with early exit at
// the first node that has a strictly improving deviation. Each node's
// stability is decided by the pruned existence query HasImprovement,
// which is verdict-identical to a full BestExact enumeration (its root
// bound also subsumes the LowerBound short-circuit the pre-incremental
// checker used).
//
// The check starts with lastChanged, the node whose odometer digit the
// previous advance stepped (-1 when unknown): its oracle is independent
// of its own out-arcs, so it is the one node whose cached oracle survived
// the rewire — when it is the node with the improving deviation, the
// whole profile is refuted without a single traversal. The remaining
// nodes follow in the given order (larger strategy sets first). The
// stability verdict is a conjunction, so check order cannot change it —
// only how fast the early exit fires.
func profileStable(es *EvalScratch, p Profile, order []int, lastChanged int) bool {
	obs.Global().Inc(obs.MStabilityChecks)
	if lastChanged >= 0 {
		o := es.OracleFor(lastChanged)
		if o.HasImprovement(o.Evaluate(p[lastChanged])) {
			return false
		}
	}
	for _, u := range order {
		if u == lastChanged {
			continue
		}
		o := es.OracleFor(u)
		if o.HasImprovement(o.Evaluate(p[u])) {
			return false
		}
	}
	return true
}
