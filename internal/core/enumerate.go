package core

import (
	"fmt"
	"sort"

	"bbc/internal/graph"
	"bbc/internal/obs"
)

// AllStrategies enumerates feasible strategies for node u. When maximalOnly
// is set, only budget-maximal sets are returned (no affordable link can be
// added); otherwise every feasible set including the empty one is returned.
// limit caps the result length (0 = unlimited); exceeding it returns an
// *EnumerationLimitError.
func AllStrategies(spec Spec, u int, maximalOnly bool, limit int) ([]Strategy, error) {
	n := spec.N()
	cands := make([]int, 0, n-1)
	costs := make([]int64, 0, n-1)
	for v := 0; v < n; v++ {
		if v != u {
			cands = append(cands, v)
			costs = append(costs, spec.LinkCost(u, v))
		}
	}
	minRemain := make([]int64, len(cands)+1)
	minRemain[len(cands)] = int64(1)<<62 - 1
	for i := len(cands) - 1; i >= 0; i-- {
		minRemain[i] = costs[i]
		if minRemain[i+1] < minRemain[i] {
			minRemain[i] = minRemain[i+1]
		}
	}
	var (
		out      []Strategy
		chosen   []int
		inSet    = make([]bool, len(cands))
		limitHit bool
	)
	// isMaximal reports whether no unchosen candidate fits in rem.
	isMaximal := func(rem int64) bool {
		for i := range cands {
			if !inSet[i] && costs[i] <= rem {
				return false
			}
		}
		return true
	}
	emit := func(rem int64) {
		if maximalOnly && !isMaximal(rem) {
			return
		}
		if limit > 0 && len(out) >= limit {
			limitHit = true
			return
		}
		s := make(Strategy, len(chosen))
		copy(s, chosen)
		out = append(out, s)
	}
	var dfs func(i int, rem int64)
	dfs = func(i int, rem int64) {
		if limitHit {
			return
		}
		if i == len(cands) {
			emit(rem)
			return
		}
		if maximalOnly && minRemain[i] > rem {
			emit(rem)
			return
		}
		if costs[i] <= rem {
			chosen = append(chosen, cands[i])
			inSet[i] = true
			dfs(i+1, rem-costs[i])
			inSet[i] = false
			chosen = chosen[:len(chosen)-1]
		}
		if limitHit {
			return
		}
		if !maximalOnly {
			dfs(i+1, rem)
			return
		}
		if costs[i] > rem || minRemain[i+1] <= rem {
			dfs(i+1, rem)
		}
	}
	dfs(0, spec.Budget(u))
	if limitHit {
		return nil, &EnumerationLimitError{Node: u, Limit: limit}
	}
	return out, nil
}

// SearchSpace restricts the per-node strategy sets explored by
// EnumeratePureNE. A nil entry means "not restricted" and is invalid; use
// FullSpace or PinnedSpace to build one.
type SearchSpace struct {
	PerNode [][]Strategy
}

// Size returns the number of profiles in the product space, saturating at
// 2^63-1.
func (ss *SearchSpace) Size() uint64 {
	size := uint64(1)
	const cap64 = uint64(1) << 63
	for _, set := range ss.PerNode {
		if uint64(len(set)) == 0 {
			return 0
		}
		if size > cap64/uint64(len(set)) {
			return cap64
		}
		size *= uint64(len(set))
	}
	return size
}

// FullSpace builds the unrestricted search space: every feasible strategy
// for every node (including non-maximal ones, since ties can make
// non-maximal strategies equilibrium components).
func FullSpace(spec Spec, limitPerNode int) (*SearchSpace, error) {
	ss := &SearchSpace{PerNode: make([][]Strategy, spec.N())}
	for u := 0; u < spec.N(); u++ {
		set, err := AllStrategies(spec, u, false, limitPerNode)
		if err != nil {
			return nil, err
		}
		ss.PerNode[u] = set
	}
	return ss, nil
}

// PinnedSpace builds a search space with the singleton-support pin rule
// applied: in a unit-length game, a node u whose preference weights are
// positive for exactly one target v (and which can afford the link to v)
// achieves distance 1 to v only by buying that link, so every best response
// of u contains v; strategies omitting v can be soundly excluded. The rule
// preserves all pure Nash equilibria, so "no NE in the pinned space"
// implies "no NE at all".
func PinnedSpace(spec Spec, limitPerNode int) (*SearchSpace, error) {
	if !spec.UnitLengths() {
		return nil, fmt.Errorf("core: PinnedSpace requires unit link lengths")
	}
	full, err := FullSpace(spec, limitPerNode)
	if err != nil {
		return nil, err
	}
	n := spec.N()
	for u := 0; u < n; u++ {
		support := -1
		multi := false
		for v := 0; v < n; v++ {
			if v != u && spec.Weight(u, v) > 0 {
				if support >= 0 {
					multi = true
					break
				}
				support = v
			}
		}
		if multi || support < 0 || spec.LinkCost(u, support) > spec.Budget(u) {
			continue
		}
		kept := full.PerNode[u][:0]
		for _, s := range full.PerNode[u] {
			if s.Contains(support) {
				kept = append(kept, s)
			}
		}
		full.PerNode[u] = kept
	}
	return full, nil
}

// NEResult reports the outcome of an exhaustive equilibrium search.
type NEResult struct {
	// Equilibria holds the pure Nash equilibria found (up to the caller's
	// cap), in odometer order.
	Equilibria []Profile
	// Checked is the number of profiles whose stability was tested.
	Checked uint64
	// Complete is true when the whole space was scanned (the search did not
	// stop early at maxEquilibria).
	Complete bool
}

// EnumeratePureNE scans the product space and returns all pure Nash
// equilibria it contains (up to maxEquilibria; 0 means collect all). The
// stability test is exact. The scan maintains the realized graph
// incrementally, so successive profiles that differ in one node's strategy
// cost only that node's rewiring.
func EnumeratePureNE(spec Spec, agg Aggregation, ss *SearchSpace, maxEquilibria int) (*NEResult, error) {
	n := spec.N()
	if len(ss.PerNode) != n {
		return nil, fmt.Errorf("core: search space covers %d nodes, spec has %d", len(ss.PerNode), n)
	}
	for u, set := range ss.PerNode {
		if len(set) == 0 {
			return nil, fmt.Errorf("core: node %d has an empty strategy set", u)
		}
	}
	res := &NEResult{Complete: true}
	idx := make([]int, n)
	p := make(Profile, n)
	for u := range p {
		p[u] = ss.PerNode[u][0]
	}
	g := p.Realize(spec)

	// Check nodes with larger strategy sets first: they are the ones whose
	// current strategy is least likely to be a best response, so the
	// early-exit in profileStable fires sooner. (Pure reordering — the
	// stability verdict is order-independent.)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(ss.PerNode[order[a]]) > len(ss.PerNode[order[b]])
	})

	reg := obs.Global()
	for {
		res.Checked++
		reg.Inc(obs.MProfilesChecked)
		if profileStable(spec, g, p, agg, order) {
			reg.Inc(obs.MEquilibriaFound)
			res.Equilibria = append(res.Equilibria, p.Clone())
			if maxEquilibria > 0 && len(res.Equilibria) >= maxEquilibria {
				res.Complete = false
				return res, nil
			}
		}
		// Odometer step.
		u := n - 1
		for u >= 0 {
			idx[u]++
			if idx[u] < len(ss.PerNode[u]) {
				p[u] = ss.PerNode[u][idx[u]]
				setStrategyArcs(spec, g, u, p[u])
				break
			}
			idx[u] = 0
			p[u] = ss.PerNode[u][0]
			setStrategyArcs(spec, g, u, p[u])
			u--
		}
		if u < 0 {
			return res, nil
		}
	}
}

// setStrategyArcs rewires node u's out-arcs in g to match strategy s.
func setStrategyArcs(spec Spec, g *graph.Digraph, u int, s Strategy) {
	g.RemoveArcs(u)
	for _, v := range s {
		g.AddArc(u, v, spec.Length(u, v))
	}
}

// profileStable is an exact per-profile stability check with early exit at
// the first node (in the given check order) that has a strictly improving
// deviation.
func profileStable(spec Spec, g *graph.Digraph, p Profile, agg Aggregation, order []int) bool {
	obs.Global().Inc(obs.MStabilityChecks)
	for _, u := range order {
		o := NewOracle(spec, g, u, agg)
		cur := o.Evaluate(p[u])
		if cur == o.LowerBound() {
			continue // provably optimal
		}
		_, bestCost, err := o.BestExact(0)
		if err != nil {
			panic(err) // unreachable: limit 0 never errors
		}
		if bestCost < cur {
			return false
		}
	}
	return true
}
