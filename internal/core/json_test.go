package core

import (
	"encoding/json"
	"math/rand"
	"testing"
)

func TestSpecJSONRoundTripUniform(t *testing.T) {
	spec := MustUniform(9, 3)
	data, err := MarshalSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	u, ok := back.(*Uniform)
	if !ok {
		t.Fatalf("decoded type %T, want *Uniform", back)
	}
	if u.N() != 9 || u.K() != 3 {
		t.Fatalf("round trip changed (n,k) to (%d,%d)", u.N(), u.K())
	}
}

func TestSpecJSONRoundTripDense(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	d := NewDense(5)
	for u := 0; u < 5; u++ {
		d.Budgets[u] = int64(1 + rng.Intn(3))
		for v := 0; v < 5; v++ {
			if u != v {
				d.Weights[u][v] = int64(rng.Intn(5))
				d.Costs[u][v] = int64(1 + rng.Intn(3))
				d.Lengths[u][v] = int64(1 + rng.Intn(4))
			}
		}
	}
	d.M = 1000
	d.MustSeal()
	data, err := MarshalSpec(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 5; u++ {
		if back.Budget(u) != d.Budget(u) {
			t.Fatalf("budget mismatch at %d", u)
		}
		for v := 0; v < 5; v++ {
			if u == v {
				continue
			}
			if back.Weight(u, v) != d.Weight(u, v) ||
				back.LinkCost(u, v) != d.LinkCost(u, v) ||
				back.Length(u, v) != d.Length(u, v) {
				t.Fatalf("entry mismatch at (%d,%d)", u, v)
			}
		}
	}
	if back.Penalty() != d.Penalty() {
		t.Fatal("penalty mismatch")
	}
	if back.UnitLengths() != d.UnitLengths() {
		t.Fatal("unit-length flag mismatch")
	}
}

func TestUnmarshalSpecErrors(t *testing.T) {
	tests := []struct {
		name string
		data string
	}{
		{name: "bad json", data: "{"},
		{name: "unknown kind", data: `{"kind":"weird"}`},
		{name: "uniform invalid", data: `{"kind":"uniform","n":1,"k":1}`},
		{name: "dense too small", data: `{"kind":"dense","budgets":[1]}`},
		{name: "dense wrong rows", data: `{"kind":"dense","budgets":[1,1],"weights":[[0,1]],"costs":[[0,1],[1,0]],"lengths":[[0,1],[1,0]],"penalty":100}`},
		{name: "dense seal failure", data: `{"kind":"dense","budgets":[1,1],"weights":[[0,1],[1,0]],"costs":[[0,1],[1,0]],"lengths":[[0,1],[1,0]],"penalty":1}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := UnmarshalSpec([]byte(tt.data)); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	p := Profile{{1, 3}, {}, {0}, {0, 1, 2}}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Profile
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(p) {
		t.Fatalf("round trip changed profile: %v -> %v", p, back)
	}
}

func TestProfileJSONNormalizes(t *testing.T) {
	var p Profile
	if err := json.Unmarshal([]byte(`[[3,1,3],[]]`), &p); err != nil {
		t.Fatal(err)
	}
	if !p[0].Equal(Strategy{1, 3}) {
		t.Fatalf("strategy not normalized: %v", p[0])
	}
}

func TestInstanceRoundTrip(t *testing.T) {
	spec := MustUniform(5, 1)
	in := Instance{Spec: spec, Profile: ringProfile(5)}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var back Instance
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Profile.Equal(in.Profile) {
		t.Fatal("profile changed in round trip")
	}
	if back.Spec.N() != 5 {
		t.Fatal("spec changed in round trip")
	}
}

func TestInstanceRejectsInfeasibleProfile(t *testing.T) {
	data := []byte(`{"game":{"kind":"uniform","n":4,"k":1},"profile":[[1,2],[],[],[]]}`)
	var in Instance
	if err := json.Unmarshal(data, &in); err == nil {
		t.Fatal("expected feasibility error (two links on budget 1)")
	}
}

func TestMarshalSpecRejectsUnknownTypes(t *testing.T) {
	if _, err := MarshalSpec(fakeSpec{}); err == nil {
		t.Fatal("expected error for unknown spec type")
	}
}

// fakeSpec is a minimal Spec used to exercise the marshal type check.
type fakeSpec struct{}

func (fakeSpec) N() int                  { return 2 }
func (fakeSpec) Weight(_, _ int) int64   { return 1 }
func (fakeSpec) LinkCost(_, _ int) int64 { return 1 }
func (fakeSpec) Length(_, _ int) int64   { return 1 }
func (fakeSpec) Budget(_ int) int64      { return 1 }
func (fakeSpec) Penalty() int64          { return 100 }
func (fakeSpec) UnitLengths() bool       { return true }
