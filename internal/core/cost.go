package core

import (
	"bbc/internal/graph"
)

// NodeCost returns the cost of node u in the realized graph g: the
// preference-weighted sum (or max) of distances to all other nodes, with
// unreachable nodes charged the disconnection penalty M. The paper's
// utility is the negation of this cost; we work with costs throughout and
// minimize.
func NodeCost(spec Spec, g *graph.Digraph, u int, agg Aggregation) int64 {
	var dist []int64
	if spec.UnitLengths() {
		dist = g.BFS(u, graph.Options{Skip: -1})
	} else {
		dist = g.Dijkstra(u, graph.Options{Skip: -1})
	}
	return aggregate(spec, u, dist, agg)
}

// aggregate folds a distance vector into a node cost. dist uses
// graph.Unreachable for missing paths.
func aggregate(spec Spec, u int, dist []int64, agg Aggregation) int64 {
	var total int64
	m := spec.Penalty()
	for v, d := range dist {
		if v == u {
			continue
		}
		w := spec.Weight(u, v)
		if w == 0 {
			continue
		}
		if d == graph.Unreachable {
			d = m
		}
		term := w * d
		switch agg {
		case SumDistances:
			total += term
		case MaxDistance:
			if term > total {
				total = term
			}
		default:
			panic("core: unknown aggregation")
		}
	}
	return total
}

// CostVector returns every node's cost under the profile.
func CostVector(spec Spec, p Profile, agg Aggregation) []int64 {
	g := p.Realize(spec)
	costs := make([]int64, spec.N())
	for u := range costs {
		costs[u] = NodeCost(spec, g, u, agg)
	}
	return costs
}

// SocialCost returns the sum of all node costs (the negation of the
// paper's total social utility).
func SocialCost(spec Spec, p Profile, agg Aggregation) int64 {
	var total int64
	for _, c := range CostVector(spec, p, agg) {
		total += c
	}
	return total
}

// SocialCostOnGraph is SocialCost for an already-realized graph.
func SocialCostOnGraph(spec Spec, g *graph.Digraph, agg Aggregation) int64 {
	var total int64
	for u := 0; u < spec.N(); u++ {
		total += NodeCost(spec, g, u, agg)
	}
	return total
}
