package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"bbc/internal/obs"
	"bbc/internal/runctl"
)

// EnumeratePureNEParallel is EnumeratePureNE with the product space
// partitioned across workers: the scan fixes each strategy of the first
// node whose strategy set has more than one entry and hands the resulting
// subspace to a worker. Results are merged in partition order, so the
// equilibria come back in the same order as the serial scan. maxEquilibria
// caps the total collected (0 = all); when the cap is hit remaining
// partitions are still scanned but stop collecting, and Complete reports
// whether every profile was checked before the cap ended the collection.
func EnumeratePureNEParallel(spec Spec, agg Aggregation, ss *SearchSpace, maxEquilibria, workers int) (*NEResult, error) {
	return EnumeratePureNEParallelOpts(spec, agg, ss, EnumConfig{MaxEquilibria: maxEquilibria, Workers: workers})
}

// EnumeratePureNEParallelOpts is the run-controlled parallel scan. At
// most cfg.Workers goroutines pull partitions from a queue (never one
// goroutine per partition), each partition scan observes cfg.Ctx and the
// shared cfg.MaxProfiles budget, and a panic inside a partition surfaces
// as an error naming that partition instead of killing the process.
// Checkpointing is partition-granular: OnCheckpoint fires after each
// completed partition, and resuming skips completed partitions, so an
// interrupted-then-resumed scan merges to exactly the uninterrupted
// result.
func EnumeratePureNEParallelOpts(spec Spec, agg Aggregation, ss *SearchSpace, cfg EnumConfig) (*NEResult, error) {
	n := spec.N()
	if len(ss.PerNode) != n {
		return nil, fmt.Errorf("core: search space covers %d nodes, spec has %d", len(ss.PerNode), n)
	}
	pivot := -1
	for u, set := range ss.PerNode {
		if len(set) == 0 {
			return nil, fmt.Errorf("core: node %d has an empty strategy set", u)
		}
		if pivot < 0 && len(set) > 1 {
			pivot = u
		}
	}
	if pivot < 0 {
		// Single profile; no parallelism to extract.
		if cfg.Resume != nil && cfg.Resume.Parts != nil {
			return nil, fmt.Errorf("core: parallel checkpoint has %d partitions, search space has none", len(cfg.Resume.Parts))
		}
		return EnumeratePureNEOpts(spec, agg, ss, cfg)
	}

	parts := ss.PerNode[pivot]
	done := make([]*PartProgress, len(parts))
	if cfg.Resume != nil {
		if cfg.Resume.Cursor != nil {
			return nil, fmt.Errorf("core: checkpoint is from a serial scan; resume with EnumeratePureNEOpts")
		}
		if len(cfg.Resume.Parts) != len(parts) {
			return nil, fmt.Errorf("core: checkpoint has %d partitions, search space has %d", len(cfg.Resume.Parts), len(parts))
		}
		if err := cfg.Resume.validate(spec); err != nil {
			return nil, err
		}
		copy(done, cfg.Resume.Parts)
	}
	var resumedChecked uint64
	pending := make([]int, 0, len(parts))
	for i := range parts {
		if done[i] != nil {
			resumedChecked += done[i].Checked
		} else {
			pending = append(pending, i)
		}
	}

	budget := cfg.budget
	if budget == nil && cfg.MaxProfiles > 0 {
		budget = newProfileBudget(cfg.MaxProfiles, resumedChecked)
	}
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	// ictx lets the first hard error (panic, internal failure) stop the
	// remaining partitions promptly.
	ictx, icancel := context.WithCancel(ctx)
	defer icancel()

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(pending) {
		workers = len(pending)
	}

	results := make([]*NEResult, len(parts))
	errs := make([]error, len(parts))
	jobs := make(chan int)
	var (
		wg     sync.WaitGroup
		ckptMu sync.Mutex // serializes done[] updates and OnCheckpoint calls
	)
	partSnapshot := func() *EnumCheckpoint {
		cp := &EnumCheckpoint{Parts: append([]*PartProgress(nil), done...)}
		for _, pp := range cp.Parts {
			if pp != nil {
				cp.Checked += pp.Checked
			}
		}
		return cp
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		track := w + 1
		go func() {
			defer wg.Done()
			reg := obs.Global()
			tr := obs.Trace()
			// One evaluation scratch per worker goroutine: traversal buffers
			// and oracle arenas stay warm across every partition this worker
			// drains (each partition re-binds to its own realized graph).
			es := NewEvalScratch()
			for i := range jobs {
				reg.Inc(obs.MWorkerTasks)
				// Busy time covers partition work only, not queue wait:
				// the timer starts after the job is received.
				t0 := reg.Started()
				sp := tr.StartSpan("enum.partition").OnTrack(track)
				errs[i] = runctl.Guard(fmt.Sprintf("enumeration partition %d (pivot node %d, strategy %v)", i, pivot, parts[i]), func() error {
					sub := &SearchSpace{PerNode: make([][]Strategy, n)}
					copy(sub.PerNode, ss.PerNode)
					sub.PerNode[pivot] = []Strategy{parts[i]}
					subCfg := EnumConfig{
						Ctx:             ictx,
						MaxEquilibria:   cfg.MaxEquilibria,
						CheckEvery:      cfg.CheckEvery,
						DisableBatchBFS: cfg.DisableBatchBFS,
						budget:          budget,
						scratch:         es,
					}
					if cfg.Quotient != nil {
						// Partition-local quotient view: states are skipped
						// only when a lex-smaller orbit member shares this
						// partition's pivot digit, and orbits re-expand within
						// the partition — every orbit member is emitted by its
						// own partition, so the merge in partition order
						// reproduces the plain scan without coordination.
						qv, err := cfg.Quotient.ViewFor(sub, pivot, i)
						if err != nil {
							return err
						}
						subCfg.qview = qv
					}
					r, err := EnumeratePureNEOpts(spec, agg, sub, subCfg)
					results[i] = r
					return err
				})
				sp.EndInt("part", int64(i))
				reg.ElapsedSince(obs.MWorkerBusyNanos, t0)
				if errs[i] != nil {
					icancel()
					continue
				}
				if results[i].Status.Complete() {
					ckptMu.Lock()
					done[i] = &PartProgress{Checked: results[i].Checked, Equilibria: results[i].Equilibria}
					if cfg.OnCheckpoint != nil {
						cfg.OnCheckpoint(partSnapshot())
					}
					ckptMu.Unlock()
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, i := range pending {
			select {
			case jobs <- i:
			case <-ictx.Done():
				return
			}
		}
	}()
	wg.Wait()

	for _, i := range pending {
		if errs[i] != nil {
			return nil, errs[i]
		}
	}

	merged := &NEResult{Complete: true}
	// Read-only probe: take() here would debit one profile from the shared
	// budget as a side effect of classifying the merge, so an
	// exactly-sufficient MaxProfiles would drift by one per probe.
	budgetSpent := budget != nil && budget.exhausted()
	capped := false
	for i := range parts {
		var (
			checked uint64
			eqs     []Profile
			status  runctl.Status
		)
		switch {
		case done[i] != nil:
			checked, eqs, status = done[i].Checked, done[i].Equilibria, runctl.StatusComplete
		case results[i] != nil:
			checked, eqs, status = results[i].Checked, results[i].Equilibria, results[i].Status
			merged.Complete = false
		default:
			// Never dispatched: the context stopped the run first, unless
			// the shared budget drained before this partition's turn.
			status = runctl.StatusFromContext(ctx)
			if status == runctl.StatusComplete && budgetSpent {
				status = runctl.StatusBudget
			}
			merged.Complete = false
		}
		merged.Checked += checked
		merged.Status = runctl.Merge(merged.Status, status)
		for _, p := range eqs {
			if cfg.MaxEquilibria > 0 && len(merged.Equilibria) >= cfg.MaxEquilibria {
				capped = true
				break
			}
			merged.Equilibria = append(merged.Equilibria, p)
		}
	}
	if capped {
		merged.Complete = false
		merged.Status = runctl.Merge(merged.Status, runctl.StatusBudget)
	}
	if !merged.Status.Complete() {
		merged.Resume = partSnapshot()
	}
	return merged, nil
}
