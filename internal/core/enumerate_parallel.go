package core

import (
	"fmt"
	"runtime"
	"sync"

	"bbc/internal/obs"
)

// EnumeratePureNEParallel is EnumeratePureNE with the product space
// partitioned across workers: the scan fixes each strategy of the first
// node whose strategy set has more than one entry and hands the resulting
// subspace to a worker. Results are merged in partition order, so the
// equilibria come back in the same order as the serial scan. maxEquilibria
// caps the total collected (0 = all); when the cap is hit remaining
// partitions are still scanned but stop collecting, and Complete reports
// whether every profile was checked before the cap ended the collection.
func EnumeratePureNEParallel(spec Spec, agg Aggregation, ss *SearchSpace, maxEquilibria, workers int) (*NEResult, error) {
	n := spec.N()
	if len(ss.PerNode) != n {
		return nil, fmt.Errorf("core: search space covers %d nodes, spec has %d", len(ss.PerNode), n)
	}
	pivot := -1
	for u, set := range ss.PerNode {
		if len(set) == 0 {
			return nil, fmt.Errorf("core: node %d has an empty strategy set", u)
		}
		if pivot < 0 && len(set) > 1 {
			pivot = u
		}
	}
	if pivot < 0 {
		// Single profile; no parallelism to extract.
		return EnumeratePureNE(spec, agg, ss, maxEquilibria)
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}

	parts := ss.PerNode[pivot]
	results := make([]*NEResult, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			reg := obs.Global()
			reg.Inc(obs.MWorkerTasks)
			defer reg.Time(obs.MWorkerBusyNanos)()
			sub := &SearchSpace{PerNode: make([][]Strategy, n)}
			copy(sub.PerNode, ss.PerNode)
			sub.PerNode[pivot] = []Strategy{parts[i]}
			results[i], errs[i] = EnumeratePureNE(spec, agg, sub, maxEquilibria)
		}(i)
	}
	wg.Wait()

	merged := &NEResult{Complete: true}
	for i := range parts {
		if errs[i] != nil {
			return nil, errs[i]
		}
		merged.Checked += results[i].Checked
		if !results[i].Complete {
			merged.Complete = false
		}
		for _, p := range results[i].Equilibria {
			if maxEquilibria > 0 && len(merged.Equilibria) >= maxEquilibria {
				merged.Complete = false
				return merged, nil
			}
			merged.Equilibria = append(merged.Equilibria, p)
		}
	}
	return merged, nil
}
