package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// profileFromSeed deterministically derives a random (n,k)-uniform game
// and feasible profile from a compact seed, for quick.Check generators.
func profileFromSeed(seed int64, maxN, maxK int) (*Uniform, Profile) {
	rng := rand.New(rand.NewSource(seed))
	n := 3 + rng.Intn(maxN-2)
	k := 1 + rng.Intn(min(maxK, n-1))
	spec := MustUniform(n, k)
	return spec, randomProfile(rng, n, k)
}

// TestQuickCostMonotoneUnderAddedLinks: adding a link never increases any
// node cost (weights are non-negative), under both aggregations.
func TestQuickCostMonotoneUnderAddedLinks(t *testing.T) {
	f := func(seed int64, whoRaw, targetRaw uint8) bool {
		spec, p := profileFromSeed(seed, 9, 3)
		n := spec.N()
		who := int(whoRaw) % n
		target := int(targetRaw) % n
		if target == who || p[who].Contains(target) {
			return true // nothing to add
		}
		if int64(len(p[who])+1) > spec.Budget(who) {
			return true // over budget; skip
		}
		q := p.Clone()
		q[who] = NormalizeStrategy(append(append([]int{}, p[who]...), target))
		gBefore := p.Realize(spec)
		gAfter := q.Realize(spec)
		for u := 0; u < n; u++ {
			for _, agg := range []Aggregation{SumDistances, MaxDistance} {
				if NodeCost(spec, gAfter, u, agg) > NodeCost(spec, gBefore, u, agg) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOracleBoundsChain: LowerBound <= BestExact <= Evaluate(current)
// for every node of every random profile.
func TestQuickOracleBoundsChain(t *testing.T) {
	f := func(seed int64) bool {
		spec, p := profileFromSeed(seed, 8, 2)
		g := p.Realize(spec)
		for u := 0; u < spec.N(); u++ {
			o := NewOracle(spec, g, u, SumDistances)
			lb := o.LowerBound()
			_, best, err := o.BestExact(0)
			if err != nil {
				return false
			}
			cur := o.Evaluate(p[u])
			if lb > best || best > cur {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBestExactFeasible: the exact best response always respects the
// budget and never self-links.
func TestQuickBestExactFeasible(t *testing.T) {
	f := func(seed int64) bool {
		spec, p := profileFromSeed(seed, 8, 3)
		g := p.Realize(spec)
		for u := 0; u < spec.N(); u++ {
			o := NewOracle(spec, g, u, SumDistances)
			s, _, err := o.BestExact(0)
			if err != nil {
				return false
			}
			if s.Contains(u) {
				return false
			}
			if s.TotalCost(spec, u) > spec.Budget(u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNormalizeIdempotent: NormalizeStrategy is idempotent and sorted.
func TestQuickNormalizeIdempotent(t *testing.T) {
	f := func(raw []uint8) bool {
		targets := make([]int, len(raw))
		for i, r := range raw {
			targets[i] = int(r % 20)
		}
		s := NormalizeStrategy(targets)
		if !NormalizeStrategy(s).Equal(s) {
			return false
		}
		for i := 1; i < len(s); i++ {
			if s[i] <= s[i-1] {
				return false
			}
		}
		for _, v := range targets {
			if !s.Contains(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickProfileKeyFaithful: two profiles have equal keys iff Equal.
func TestQuickProfileKeyFaithful(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		specA, a := profileFromSeed(seedA, 7, 2)
		specB, b := profileFromSeed(seedB, 7, 2)
		if specA.N() != specB.N() {
			return true // different games; keys compare only within a game size
		}
		return (a.Key() == b.Key()) == a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSocialCostDecomposition: SocialCost equals the sum of node
// costs and is non-negative.
func TestQuickSocialCostDecomposition(t *testing.T) {
	f := func(seed int64) bool {
		spec, p := profileFromSeed(seed, 9, 3)
		var sum int64
		for _, c := range CostVector(spec, p, SumDistances) {
			if c < 0 {
				return false
			}
			sum += c
		}
		return SocialCost(spec, p, SumDistances) == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMaxLeqSum: for the uniform game (all weights 1) the max cost
// never exceeds the sum cost, and both are at least n-1 on strongly
// connected profiles.
func TestQuickMaxLeqSum(t *testing.T) {
	f := func(seed int64) bool {
		spec, p := profileFromSeed(seed, 9, 3)
		g := p.Realize(spec)
		for u := 0; u < spec.N(); u++ {
			if NodeCost(spec, g, u, MaxDistance) > NodeCost(spec, g, u, SumDistances) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeviationImprovesWhenApplied: any deviation reported by
// FindDeviation, when applied, yields exactly its promised cost.
func TestQuickDeviationImprovesWhenApplied(t *testing.T) {
	f := func(seed int64) bool {
		spec, p := profileFromSeed(seed, 7, 2)
		dev, err := FindDeviation(spec, p, SumDistances, Options{})
		if err != nil {
			return false
		}
		if dev == nil {
			return true
		}
		q := p.Clone()
		q[dev.Node] = dev.Strategy
		got := NodeCost(spec, q.Realize(spec), dev.Node, SumDistances)
		return got == dev.NewCost && got < dev.OldCost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
