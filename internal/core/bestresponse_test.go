package core

import (
	"errors"
	"math/rand"
	"testing"
)

// TestOracleEvaluateMatchesNodeCost is the load-bearing consistency check
// for the best-response decomposition d(u,v) = min_t (ℓ(u,t) + d_{G−u}(t,v)):
// evaluating u's current strategy through the oracle must equal the direct
// shortest-path cost in the realized graph.
func TestOracleEvaluateMatchesNodeCost(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 80; trial++ {
		n := 3 + rng.Intn(8)
		k := 1 + rng.Intn(min(3, n-1))
		spec := MustUniform(n, k)
		p := randomProfile(rng, n, k)
		g := p.Realize(spec)
		for u := 0; u < n; u++ {
			for _, agg := range []Aggregation{SumDistances, MaxDistance} {
				o := NewOracle(spec, g, u, agg)
				want := NodeCost(spec, g, u, agg)
				if got := o.Evaluate(p[u]); got != want {
					t.Fatalf("trial %d node %d agg %v: oracle %d != direct %d (profile %v)",
						trial, u, agg, got, want, p)
				}
			}
		}
	}
}

func TestOracleEvaluateMatchesNodeCostWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(6)
		d := NewDense(n)
		for u := 0; u < n; u++ {
			d.Budgets[u] = int64(1 + rng.Intn(3))
			for v := 0; v < n; v++ {
				if u == v {
					continue
				}
				d.Weights[u][v] = int64(rng.Intn(4))
				d.Lengths[u][v] = int64(1 + rng.Intn(5))
				d.Costs[u][v] = int64(1 + rng.Intn(2))
			}
		}
		d.M = 10_000
		d.MustSeal()
		p := randomFeasibleProfile(rng, d)
		g := p.Realize(d)
		for u := 0; u < n; u++ {
			for _, agg := range []Aggregation{SumDistances, MaxDistance} {
				o := NewOracle(d, g, u, agg)
				want := NodeCost(d, g, u, agg)
				if got := o.Evaluate(p[u]); got != want {
					t.Fatalf("trial %d node %d agg %v: oracle %d != direct %d",
						trial, u, agg, got, want)
				}
			}
		}
	}
}

// randomFeasibleProfile draws a random feasible strategy for each node of a
// dense spec by greedy random inclusion.
func randomFeasibleProfile(rng *rand.Rand, spec Spec) Profile {
	n := spec.N()
	p := make(Profile, n)
	for u := 0; u < n; u++ {
		rem := spec.Budget(u)
		var s []int
		for _, v := range rng.Perm(n) {
			if v == u || rng.Intn(2) == 0 {
				continue
			}
			if c := spec.LinkCost(u, v); c <= rem {
				rem -= c
				s = append(s, v)
			}
		}
		p[u] = NormalizeStrategy(s)
	}
	return p
}

// bruteForceBest computes u's true best response by scoring every feasible
// strategy through the oracle (independent of BestExact's pruning).
func bruteForceBest(t *testing.T, spec Spec, o *Oracle, u int) int64 {
	t.Helper()
	all, err := AllStrategies(spec, u, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	best := int64(1)<<62 - 1
	for _, s := range all {
		if c := o.Evaluate(s); c < best {
			best = c
		}
	}
	return best
}

func TestBestExactMatchesBruteForceUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(5)
		k := 1 + rng.Intn(min(2, n-1))
		spec := MustUniform(n, k)
		p := randomProfile(rng, n, k)
		g := p.Realize(spec)
		for u := 0; u < n; u++ {
			for _, agg := range []Aggregation{SumDistances, MaxDistance} {
				o := NewOracle(spec, g, u, agg)
				s, got, err := o.BestExact(0)
				if err != nil {
					t.Fatal(err)
				}
				if want := bruteForceBest(t, spec, o, u); got != want {
					t.Fatalf("trial %d node %d agg %v: BestExact %d != brute force %d",
						trial, u, agg, got, want)
				}
				if got2 := o.Evaluate(s); got2 != got {
					t.Fatalf("returned strategy %v evaluates to %d, reported %d", s, got2, got)
				}
			}
		}
	}
}

func TestBestExactMatchesBruteForceNonuniformCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(4)
		d := NewDense(n)
		for u := 0; u < n; u++ {
			d.Budgets[u] = int64(1 + rng.Intn(4))
			for v := 0; v < n; v++ {
				if u == v {
					continue
				}
				d.Weights[u][v] = int64(rng.Intn(3))
				d.Costs[u][v] = int64(1 + rng.Intn(3))
			}
		}
		d.MustSeal()
		p := randomFeasibleProfile(rng, d)
		g := p.Realize(d)
		for u := 0; u < n; u++ {
			o := NewOracle(d, g, u, SumDistances)
			_, got, err := o.BestExact(0)
			if err != nil {
				t.Fatal(err)
			}
			if want := bruteForceBest(t, d, o, u); got != want {
				t.Fatalf("trial %d node %d: BestExact %d != brute force %d", trial, u, got, want)
			}
		}
	}
}

func TestGreedyNeverBeatsExactAndSwapHelps(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(6)
		k := 1 + rng.Intn(min(3, n-1))
		spec := MustUniform(n, k)
		p := randomProfile(rng, n, k)
		g := p.Realize(spec)
		u := rng.Intn(n)
		o := NewOracle(spec, g, u, SumDistances)
		_, exact, err := o.BestExact(0)
		if err != nil {
			t.Fatal(err)
		}
		gs, greedy := o.BestGreedy()
		if greedy < exact {
			t.Fatalf("greedy %d beat exact %d", greedy, exact)
		}
		_, swapped := o.ImproveBySwaps(gs, 50)
		if swapped > greedy {
			t.Fatalf("swap made things worse: %d > %d", swapped, greedy)
		}
		if swapped < exact {
			t.Fatalf("swap %d beat exact %d", swapped, exact)
		}
	}
}

func TestGreedyRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(4)
		d := NewDense(n)
		for u := 0; u < n; u++ {
			d.Budgets[u] = int64(1 + rng.Intn(4))
			for v := 0; v < n; v++ {
				if u != v {
					d.Costs[u][v] = int64(1 + rng.Intn(3))
				}
			}
		}
		d.MustSeal()
		p := randomFeasibleProfile(rng, d)
		g := p.Realize(d)
		for u := 0; u < n; u++ {
			o := NewOracle(d, g, u, SumDistances)
			s, _ := o.BestGreedy()
			if got := s.TotalCost(d, u); got > d.Budget(u) {
				t.Fatalf("greedy strategy %v costs %d > budget %d", s, got, d.Budget(u))
			}
		}
	}
}

func TestBestExactEnumerationLimit(t *testing.T) {
	spec := MustUniform(10, 4)
	p := randomProfile(rand.New(rand.NewSource(87)), 10, 4)
	g := p.Realize(spec)
	o := NewOracle(spec, g, 0, SumDistances)
	_, _, err := o.BestExact(3)
	var lim *EnumerationLimitError
	if !errors.As(err, &lim) {
		t.Fatalf("err = %v, want EnumerationLimitError", err)
	}
	if lim.Node != 0 || lim.Limit != 3 {
		t.Fatalf("error fields = %+v", lim)
	}
}

func TestBestResponseDispatch(t *testing.T) {
	spec := MustUniform(5, 2)
	p := ringProfile(5)
	g := p.Realize(spec)
	for _, m := range []Method{Exact, Greedy, GreedySwap} {
		s, c, err := BestResponse(spec, g, 0, SumDistances, Options{Method: m})
		if err != nil {
			t.Fatalf("method %d: %v", m, err)
		}
		if len(s) == 0 || c <= 0 {
			t.Fatalf("method %d: degenerate response %v cost %d", m, s, c)
		}
	}
	if _, _, err := BestResponse(spec, g, 0, SumDistances, Options{Method: Method(42)}); err == nil {
		t.Fatal("unknown method should error")
	}
}

func TestOracleRowIndexPanicsOnNonCandidate(t *testing.T) {
	spec := MustUniform(3, 1)
	g := ringProfile(3).Realize(spec)
	o := NewOracle(spec, g, 0, SumDistances)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for self target")
		}
	}()
	o.Evaluate(Strategy{0})
}
