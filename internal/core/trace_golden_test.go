package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"bbc/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestChromeTraceGoldenTwoPartitionScan runs a deterministic
// two-partition parallel scan under a fresh tracer and compares the
// exported Chrome trace — with the nondeterministic parts (timestamps,
// durations, run id) normalized away — against a golden file. The span
// sequence, names, tracks and annotations are the contract: a refactor
// that silently stops emitting partition or oracle spans fails here.
//
// Regenerate with: go test ./internal/core/ -run ChromeTraceGolden -update
func TestChromeTraceGoldenTwoPartitionScan(t *testing.T) {
	spec, err := NewUniform(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 has two strategies — the pivot — so the scan splits into
	// exactly two partitions; one worker drains them in order, which
	// makes the span sequence deterministic.
	ss := &SearchSpace{PerNode: [][]Strategy{
		{{1}, {2}},
		{{2}},
		{{0}},
	}}
	tr := obs.NewTracer(256)
	prev := obs.SetTracer(tr)
	defer obs.SetTracer(prev)

	res, err := EnumeratePureNEParallelOpts(spec, SumDistances, ss, EnumConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checked != 2 {
		t.Fatalf("Checked = %d, want 2 (one profile per partition)", res.Checked)
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	got := normalizeChromeTrace(t, buf.Bytes())

	goldenPath := filepath.Join("testdata", "chrome_trace_two_partition.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("normalized trace differs from golden (regenerate with -update if the change is intended)\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// normalizeChromeTrace strips wall-clock and per-process values from an
// exported trace so runs compare structurally: ts/dur are zeroed and the
// run id is replaced by a placeholder everywhere it appears.
func normalizeChromeTrace(t *testing.T, raw []byte) []byte {
	t.Helper()
	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		OtherData       map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	for _, ev := range doc.TraceEvents {
		if _, ok := ev["ts"]; ok {
			ev["ts"] = 0
		}
		if _, ok := ev["dur"]; ok {
			ev["dur"] = 0
		}
		if args, ok := ev["args"].(map[string]any); ok {
			if _, ok := args["run_id"]; ok {
				args["run_id"] = "RUN_ID"
			}
			if name, ok := args["name"].(string); ok && len(name) > 8 && name[:8] == "bbc run " {
				args["name"] = "bbc run RUN_ID"
			}
		}
	}
	if doc.OtherData != nil {
		doc.OtherData["run_id"] = "RUN_ID"
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}
