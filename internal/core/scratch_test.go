package core

import (
	"testing"

	"bbc/internal/obs"
)

// TestOracleForCacheSemantics pins the invalidation rule: node u's oracle
// depends only on G−u, so rewiring u itself must NOT invalidate u's cached
// oracle, while rewiring any other node must. Cache hits are observed
// through the oracle.cache_hits counter, and a served oracle must agree
// with a freshly built one.
func TestOracleForCacheSemantics(t *testing.T) {
	reg := obs.NewRegistry()
	prev := obs.SetGlobal(reg)
	t.Cleanup(func() { obs.SetGlobal(prev) })

	spec := MustUniform(6, 2)
	p := NewEmptyProfile(6)
	for u := 0; u < 6; u++ {
		p[u] = NormalizeStrategy([]int{(u + 1) % 6, (u + 2) % 6})
	}
	g := p.Realize(spec)
	es := NewEvalScratch()
	es.Bind(spec, g, SumDistances)

	hits := func() int64 { return reg.Get(obs.MOracleCacheHits) }
	builds := func() int64 { return reg.Get(obs.MOracleBuild) }

	es.OracleFor(0) // cold build
	b0, h0 := builds(), hits()
	es.OracleFor(0) // nothing changed → hit
	if builds() != b0 || hits() != h0+1 {
		t.Fatalf("unchanged graph: want cache hit, got builds %d→%d hits %d→%d", b0, builds(), h0, hits())
	}

	// The odometer case: node 0's own digit changes. Its oracle ignores
	// its own out-arcs, so it must still be served from cache.
	newS := NormalizeStrategy([]int{2, 3})
	setStrategyArcs(spec, g, 0, newS)
	es.NoteRewire(0)
	b1, h1 := builds(), hits()
	o := es.OracleFor(0)
	if builds() != b1 || hits() != h1+1 {
		t.Fatalf("self-rewire: want cache hit, got builds %d→%d hits %d→%d", b1, builds(), h1, hits())
	}
	p[0] = newS
	if got, want := o.Evaluate(p[0]), NewOracle(spec, g, 0, SumDistances).Evaluate(p[0]); got != want {
		t.Fatalf("cached oracle after self-rewire: cost %d, fresh oracle says %d", got, want)
	}

	// Rewiring another node must invalidate node 0's oracle.
	setStrategyArcs(spec, g, 3, NormalizeStrategy([]int{0, 1}))
	es.NoteRewire(3)
	b2, h2 := builds(), hits()
	o = es.OracleFor(0)
	if builds() != b2+1 || hits() != h2 {
		t.Fatalf("cross-rewire: want rebuild, got builds %d→%d hits %d→%d", b2, builds(), h2, hits())
	}
	if got, want := o.Evaluate(p[0]), NewOracle(spec, g, 0, SumDistances).Evaluate(p[0]); got != want {
		t.Fatalf("rebuilt oracle: cost %d, fresh oracle says %d", got, want)
	}
	// ...but node 3's own oracle, built after its rewire, is then cacheable.
	es.OracleFor(3)
	b3, h3 := builds(), hits()
	es.OracleFor(3)
	if builds() != b3 || hits() != h3+1 {
		t.Fatalf("post-rewire node 3: want cache hit, got builds %d→%d hits %d→%d", b3, builds(), h3, hits())
	}
}

// TestEvalScratchRebindInvalidates pins Bind's contract: re-binding to a
// different graph pointer clears the cache, re-binding to the identical
// triple keeps it.
func TestEvalScratchRebindInvalidates(t *testing.T) {
	reg := obs.NewRegistry()
	prev := obs.SetGlobal(reg)
	t.Cleanup(func() { obs.SetGlobal(prev) })

	spec := MustUniform(5, 1)
	p := NewEmptyProfile(5)
	for u := 0; u < 5; u++ {
		p[u] = Strategy{(u + 1) % 5}
	}
	es := NewEvalScratch()
	g1 := p.Realize(spec)
	es.Bind(spec, g1, SumDistances)
	es.OracleFor(2)

	es.Bind(spec, g1, SumDistances) // identical triple: cache survives
	b0 := reg.Get(obs.MOracleBuild)
	es.OracleFor(2)
	if reg.Get(obs.MOracleBuild) != b0 {
		t.Fatal("re-bind to identical triple dropped the cache")
	}

	g2 := p.Realize(spec) // fresh pointer, same shape: cache must reset
	es.Bind(spec, g2, SumDistances)
	es.OracleFor(2)
	if reg.Get(obs.MOracleBuild) != b0+1 {
		t.Fatal("re-bind to a new graph did not invalidate the cache")
	}
}
