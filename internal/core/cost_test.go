package core

import (
	"math/rand"
	"testing"
)

// ringProfile is the directed cycle 0→1→...→n-1→0.
func ringProfile(n int) Profile {
	p := make(Profile, n)
	for u := 0; u < n; u++ {
		p[u] = Strategy{(u + 1) % n}
	}
	return p
}

func TestNodeCostOnRing(t *testing.T) {
	const n = 6
	spec := MustUniform(n, 1)
	p := ringProfile(n)
	g := p.Realize(spec)
	want := int64(n * (n - 1) / 2) // 1+2+...+(n-1)
	for u := 0; u < n; u++ {
		if got := NodeCost(spec, g, u, SumDistances); got != want {
			t.Fatalf("node %d sum cost = %d, want %d", u, got, want)
		}
		if got := NodeCost(spec, g, u, MaxDistance); got != int64(n-1) {
			t.Fatalf("node %d max cost = %d, want %d", u, got, n-1)
		}
	}
}

func TestNodeCostPenalty(t *testing.T) {
	spec := MustUniform(4, 1)
	p := Profile{{1}, {}, {}, {}}
	g := p.Realize(spec)
	m := spec.Penalty()
	if got := NodeCost(spec, g, 0, SumDistances); got != 1+2*m {
		t.Fatalf("cost = %d, want %d", got, 1+2*m)
	}
	if got := NodeCost(spec, g, 1, SumDistances); got != 3*m {
		t.Fatalf("isolated-out node cost = %d, want %d", got, 3*m)
	}
	if got := NodeCost(spec, g, 0, MaxDistance); got != m {
		t.Fatalf("max cost = %d, want %d", got, m)
	}
}

func TestNodeCostZeroWeightsIgnored(t *testing.T) {
	d := NewDense(3)
	d.Weights[0][2] = 0 // 0 does not care about 2
	d.MustSeal()
	p := Profile{{1}, {}, {}}
	g := p.Realize(d)
	if got := NodeCost(d, g, 0, SumDistances); got != 1 {
		t.Fatalf("cost = %d, want 1 (unreachable zero-weight target must not be charged)", got)
	}
}

func TestNodeCostWeightedLengths(t *testing.T) {
	d := NewDense(3)
	d.Lengths[0][1] = 4
	d.Lengths[1][2] = 5
	d.M = 1000
	d.MustSeal()
	p := Profile{{1}, {2}, {}}
	g := p.Realize(d)
	if got := NodeCost(d, g, 0, SumDistances); got != 4+9 {
		t.Fatalf("cost = %d, want 13", got)
	}
	if got := NodeCost(d, g, 0, MaxDistance); got != 9 {
		t.Fatalf("max cost = %d, want 9", got)
	}
}

func TestSocialCostMatchesCostVector(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	spec := MustUniform(7, 2)
	for trial := 0; trial < 30; trial++ {
		p := randomProfile(rng, 7, 2)
		var sum int64
		for _, c := range CostVector(spec, p, SumDistances) {
			sum += c
		}
		if got := SocialCost(spec, p, SumDistances); got != sum {
			t.Fatalf("SocialCost = %d, CostVector sum = %d", got, sum)
		}
		if got := SocialCostOnGraph(spec, p.Realize(spec), SumDistances); got != sum {
			t.Fatalf("SocialCostOnGraph = %d, want %d", got, sum)
		}
	}
}

func TestCompleteGraphCost(t *testing.T) {
	const n = 5
	spec := MustUniform(n, n-1)
	p := make(Profile, n)
	for u := range p {
		s := make(Strategy, 0, n-1)
		for v := 0; v < n; v++ {
			if v != u {
				s = append(s, v)
			}
		}
		p[u] = s
	}
	for u, c := range CostVector(spec, p, SumDistances) {
		if c != n-1 {
			t.Fatalf("node %d cost = %d, want %d", u, c, n-1)
		}
	}
}
