package core

import (
	"math/rand"
	"testing"
)

func binom(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
	}
	return r
}

func TestAllStrategiesCounts(t *testing.T) {
	tests := []struct {
		n, k int
	}{
		{n: 4, k: 1}, {n: 5, k: 2}, {n: 6, k: 3}, {n: 5, k: 4},
	}
	for _, tt := range tests {
		spec := MustUniform(tt.n, tt.k)
		maximal, err := AllStrategies(spec, 0, true, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := binom(tt.n-1, tt.k); len(maximal) != want {
			t.Fatalf("n=%d k=%d: %d maximal strategies, want C(%d,%d)=%d",
				tt.n, tt.k, len(maximal), tt.n-1, tt.k, want)
		}
		full, err := AllStrategies(spec, 0, false, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for i := 0; i <= tt.k; i++ {
			want += binom(tt.n-1, i)
		}
		if len(full) != want {
			t.Fatalf("n=%d k=%d: %d full strategies, want %d", tt.n, tt.k, len(full), want)
		}
	}
}

func TestAllStrategiesNonuniformCostsMaximality(t *testing.T) {
	d := NewDense(4)
	d.Budgets[0] = 3
	d.Costs[0][1] = 1
	d.Costs[0][2] = 2
	d.Costs[0][3] = 3
	d.MustSeal()
	maximal, err := AllStrategies(d, 0, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Maximal sets within budget 3: {1,2} (cost 3), {3} (cost 3).
	// {1} (cost 1, can add 2), {2} (can add 1) are not maximal.
	want := map[string]bool{"[1 2]": true, "[3]": true}
	if len(maximal) != len(want) {
		t.Fatalf("maximal = %v, want two sets", maximal)
	}
	for _, s := range maximal {
		key := ""
		if len(s) == 1 {
			key = "[3]"
			if s[0] != 3 {
				t.Fatalf("unexpected singleton %v", s)
			}
		} else {
			key = "[1 2]"
			if s[0] != 1 || s[1] != 2 {
				t.Fatalf("unexpected pair %v", s)
			}
		}
		if !want[key] {
			t.Fatalf("unexpected maximal set %v", s)
		}
	}
}

func TestAllStrategiesLimit(t *testing.T) {
	spec := MustUniform(10, 3)
	_, err := AllStrategies(spec, 0, true, 5)
	if err == nil {
		t.Fatal("expected limit error")
	}
}

func TestSearchSpaceSize(t *testing.T) {
	spec := MustUniform(4, 1)
	ss, err := FullSpace(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Each node: 3 singletons + empty = 4 strategies; 4 nodes -> 256.
	if got := ss.Size(); got != 256 {
		t.Fatalf("Size = %d, want 256", got)
	}
}

func TestEnumeratePureNEFindsCycleEquilibria(t *testing.T) {
	// In the (3,1)-uniform game the equilibria are exactly the two directed
	// 3-cycles (every node must reach both others; with one link each the
	// only strongly connected 1-out-regular graphs are the two rotations).
	spec := MustUniform(3, 1)
	ss, err := FullSpace(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EnumeratePureNE(spec, SumDistances, ss, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("scan should complete")
	}
	// Each node has 2 candidate targets: empty + 2 singletons = 3
	// strategies, so the space has 3^3 = 27 profiles.
	if res.Checked != 27 {
		t.Fatalf("checked %d profiles, want 3^3 = 27", res.Checked)
	}
	if len(res.Equilibria) != 2 {
		t.Fatalf("found %d equilibria, want 2: %v", len(res.Equilibria), res.Equilibria)
	}
	for _, p := range res.Equilibria {
		if !p.Realize(spec).StronglyConnected() {
			t.Fatalf("equilibrium %v is not strongly connected", p)
		}
	}
}

func TestEnumeratePureNEAgreesWithIsEquilibrium(t *testing.T) {
	// Every profile the enumerator labels stable must pass IsEquilibrium,
	// and sampling other profiles must find them unstable.
	spec := MustUniform(4, 1)
	ss, err := FullSpace(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EnumeratePureNE(spec, SumDistances, ss, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := make(map[string]bool, len(res.Equilibria))
	for _, p := range res.Equilibria {
		stable, err := IsEquilibrium(spec, p, SumDistances)
		if err != nil {
			t.Fatal(err)
		}
		if !stable {
			t.Fatalf("enumerator returned non-equilibrium %v", p)
		}
		found[p.Key()] = true
	}
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 200; trial++ {
		p := randomProfile(rng, 4, 1)
		stable, err := IsEquilibrium(spec, p, SumDistances)
		if err != nil {
			t.Fatal(err)
		}
		if stable && !found[p.Key()] {
			t.Fatalf("IsEquilibrium found %v stable but the enumerator missed it", p)
		}
	}
}

func TestEnumeratePureNEMaxCap(t *testing.T) {
	spec := MustUniform(3, 1)
	ss, err := FullSpace(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EnumeratePureNE(spec, SumDistances, ss, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Equilibria) != 1 || res.Complete {
		t.Fatalf("cap not honored: %d equilibria, complete=%v", len(res.Equilibria), res.Complete)
	}
}

func TestPinnedSpaceSoundness(t *testing.T) {
	// Build a game where several nodes have singleton support; the pinned
	// space must contain exactly the same equilibria as the full space.
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 10; trial++ {
		n := 4
		d := NewDense(n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v {
					d.Weights[u][v] = 0
				}
			}
			// Half the nodes get singleton support, half get two targets.
			v1 := (u + 1 + rng.Intn(n-1)) % n
			if v1 == u {
				v1 = (u + 1) % n
			}
			d.Weights[u][v1] = int64(1 + rng.Intn(3))
			if u%2 == 0 {
				v2 := (v1 + 1) % n
				if v2 == u {
					v2 = (v2 + 1) % n
				}
				d.Weights[u][v2] = int64(1 + rng.Intn(3))
			}
		}
		d.MustSeal()

		full, err := FullSpace(d, 0)
		if err != nil {
			t.Fatal(err)
		}
		pinned, err := PinnedSpace(d, 0)
		if err != nil {
			t.Fatal(err)
		}
		if pinned.Size() > full.Size() {
			t.Fatal("pinning enlarged the space")
		}
		fullRes, err := EnumeratePureNE(d, SumDistances, full, 0)
		if err != nil {
			t.Fatal(err)
		}
		pinRes, err := EnumeratePureNE(d, SumDistances, pinned, 0)
		if err != nil {
			t.Fatal(err)
		}
		fullKeys := map[string]bool{}
		for _, p := range fullRes.Equilibria {
			fullKeys[p.Key()] = true
		}
		pinKeys := map[string]bool{}
		for _, p := range pinRes.Equilibria {
			pinKeys[p.Key()] = true
		}
		// Every pinned equilibrium is a full equilibrium...
		for k := range pinKeys {
			if !fullKeys[k] {
				t.Fatalf("trial %d: pinned space found spurious equilibrium", trial)
			}
		}
		// ...and pinning must not lose any equilibrium whose pinned nodes
		// play strategies containing their support (the pin-rule guarantee:
		// all equilibria satisfy this).
		for k := range fullKeys {
			if !pinKeys[k] {
				t.Fatalf("trial %d: pinned space lost equilibrium %s", trial, k)
			}
		}
	}
}

func TestPinnedSpaceRejectsNonUnitLengths(t *testing.T) {
	d := NewDense(3)
	d.Lengths[0][1] = 2
	d.M = 100
	d.MustSeal()
	if _, err := PinnedSpace(d, 0); err == nil {
		t.Fatal("expected error for non-unit lengths")
	}
}

func TestEnumerateRejectsBadSpace(t *testing.T) {
	spec := MustUniform(3, 1)
	_, err := EnumeratePureNE(spec, SumDistances, &SearchSpace{PerNode: make([][]Strategy, 2)}, 0)
	if err == nil {
		t.Fatal("expected error for wrong node count")
	}
	_, err = EnumeratePureNE(spec, SumDistances, &SearchSpace{PerNode: make([][]Strategy, 3)}, 0)
	if err == nil {
		t.Fatal("expected error for empty strategy sets")
	}
}
