package core

import (
	"math/rand"
	"testing"
)

func TestDirectedCycleIsStableForK1(t *testing.T) {
	// The paper notes the simple directed cycle is stable for k=1 (it is
	// the k=1 Abelian Cayley graph).
	for _, n := range []int{3, 5, 8, 12} {
		spec := MustUniform(n, 1)
		stable, err := IsEquilibrium(spec, ringProfile(n), SumDistances)
		if err != nil {
			t.Fatal(err)
		}
		if !stable {
			t.Fatalf("n=%d: directed cycle not stable", n)
		}
	}
}

func TestCompleteGraphIsStable(t *testing.T) {
	const n = 5
	spec := MustUniform(n, n-1)
	p := make(Profile, n)
	for u := range p {
		s := make(Strategy, 0, n-1)
		for v := 0; v < n; v++ {
			if v != u {
				s = append(s, v)
			}
		}
		p[u] = s
	}
	stable, err := IsEquilibrium(spec, p, SumDistances)
	if err != nil {
		t.Fatal(err)
	}
	if !stable {
		t.Fatal("complete graph should be stable for k=n-1")
	}
}

func TestEmptyProfileIsUnstable(t *testing.T) {
	spec := MustUniform(5, 1)
	dev, err := FindDeviation(spec, NewEmptyProfile(5), SumDistances, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dev == nil {
		t.Fatal("empty profile should admit a deviation")
	}
	if dev.Improvement() <= 0 {
		t.Fatalf("deviation improvement = %d, want > 0", dev.Improvement())
	}
	if len(dev.Strategy) != 1 {
		t.Fatalf("best deviation for k=1 should buy one link, got %v", dev.Strategy)
	}
}

func TestDeviationActuallyImproves(t *testing.T) {
	// Whatever deviation is reported must, when applied, give exactly the
	// promised new cost.
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(5)
		k := 1 + rng.Intn(2)
		spec := MustUniform(n, k)
		p := randomProfile(rng, n, k)
		dev, err := FindDeviation(spec, p, SumDistances, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if dev == nil {
			continue
		}
		q := p.Clone()
		q[dev.Node] = dev.Strategy
		gOld := p.Realize(spec)
		gNew := q.Realize(spec)
		oldCost := NodeCost(spec, gOld, dev.Node, SumDistances)
		newCost := NodeCost(spec, gNew, dev.Node, SumDistances)
		if oldCost != dev.OldCost || newCost != dev.NewCost {
			t.Fatalf("trial %d: reported %d→%d, actual %d→%d",
				trial, dev.OldCost, dev.NewCost, oldCost, newCost)
		}
		if newCost >= oldCost {
			t.Fatalf("trial %d: deviation does not improve (%d → %d)", trial, oldCost, newCost)
		}
	}
}

func TestRingStableUnderMaxCost(t *testing.T) {
	// Under max-distance cost with k=1, rewiring breaks reachability of the
	// successor, so the cycle remains stable.
	spec := MustUniform(6, 1)
	stable, err := IsEquilibrium(spec, ringProfile(6), MaxDistance)
	if err != nil {
		t.Fatal(err)
	}
	if !stable {
		t.Fatal("cycle should be stable under max cost for k=1")
	}
}

func TestMustBeEquilibriumPanicsOnUnstable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustBeEquilibrium(MustUniform(4, 1), NewEmptyProfile(4), SumDistances)
}

func TestHeuristicStabilityCheckIsConservative(t *testing.T) {
	// A deviation found by Greedy must also exist under Exact.
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(5)
		spec := MustUniform(n, 2)
		p := randomProfile(rng, n, 2)
		devGreedy, err := FindDeviation(spec, p, SumDistances, Options{Method: Greedy})
		if err != nil {
			t.Fatal(err)
		}
		if devGreedy == nil {
			continue
		}
		devExact, err := FindDeviation(spec, p, SumDistances, Options{Method: Exact})
		if err != nil {
			t.Fatal(err)
		}
		if devExact == nil {
			t.Fatalf("trial %d: greedy found a deviation but exact says stable", trial)
		}
	}
}
