package core

import (
	"errors"
	"testing"
)

func TestSocialOptimumRing(t *testing.T) {
	// For (n,1)-uniform games the optimum maximal profile is a directed
	// cycle with cost n·n(n-1)/2.
	spec := MustUniform(5, 1)
	opt, err := SocialOptimum(spec, SumDistances, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(5 * 10)
	if opt.Cost != want {
		t.Fatalf("optimum cost = %d, want %d", opt.Cost, want)
	}
	if !opt.Profile.Realize(spec).StronglyConnected() {
		t.Fatal("optimal profile should be strongly connected")
	}
	// 4 maximal strategies per node -> 4^5 = 1024 profiles scanned.
	if opt.Scanned != 1024 {
		t.Fatalf("scanned %d profiles, want 1024", opt.Scanned)
	}
}

func TestSocialOptimumCompleteGraph(t *testing.T) {
	spec := MustUniform(4, 3)
	opt, err := SocialOptimum(spec, SumDistances, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Cost != 12 { // every node: 3 at distance 1
		t.Fatalf("optimum = %d, want 12", opt.Cost)
	}
}

func TestSocialOptimumRespectsCap(t *testing.T) {
	spec := MustUniform(12, 4)
	_, err := SocialOptimum(spec, SumDistances, 1000)
	var lim *EnumerationLimitError
	if !errors.As(err, &lim) {
		t.Fatalf("err = %v, want EnumerationLimitError", err)
	}
}

func TestSocialOptimumMaxAggregation(t *testing.T) {
	spec := MustUniform(4, 2)
	opt, err := SocialOptimum(spec, MaxDistance, 0)
	if err != nil {
		t.Fatal(err)
	}
	// With k=2, n=4: each node reaches 2 at distance 1, the remaining one
	// at distance 2; best possible social max-cost = 4·2 = 8.
	if opt.Cost != 8 {
		t.Fatalf("optimum max-cost = %d, want 8", opt.Cost)
	}
}

func TestPriceOfAnarchyExactSmall(t *testing.T) {
	// (4,1)-uniform: equilibria are the strongly connected 1-out-regular
	// graphs reachable... exact scan gives PoA and PoS >= 1 with
	// PoS <= PoA, both small.
	spec := MustUniform(4, 1)
	poa, pos, err := PriceOfAnarchyExact(spec, SumDistances, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pos < 1 || poa < pos {
		t.Fatalf("inconsistent PoA=%.3f PoS=%.3f", poa, pos)
	}
	if poa > 3 {
		t.Fatalf("PoA=%.3f implausibly large for (4,1)", poa)
	}
}

func TestPriceOfAnarchyExactNoEquilibrium(t *testing.T) {
	// A game with no pure NE must be reported as such. Use a tiny
	// nonuniform game... the 14-node gadget is too large for the full
	// scan here, so instead verify the error path with a cap.
	spec := MustUniform(12, 4)
	_, _, err := PriceOfAnarchyExact(spec, SumDistances, 100)
	if err == nil {
		t.Fatal("expected cap error")
	}
}

func TestSocialOptimumBeatsOrMatchesEquilibria(t *testing.T) {
	// Sanity: the optimum is no worse than any equilibrium of the game.
	spec := MustUniform(5, 1)
	opt, err := SocialOptimum(spec, SumDistances, 0)
	if err != nil {
		t.Fatal(err)
	}
	eqCost := SocialCost(spec, ringProfile(5), SumDistances)
	if opt.Cost > eqCost {
		t.Fatalf("optimum %d worse than the ring equilibrium %d", opt.Cost, eqCost)
	}
}
