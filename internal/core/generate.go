package core

import (
	"fmt"
	"math/rand"
)

// GenerateParams shapes a random Dense instance. Zero values mean "uniform
// in that dimension": MaxWeight 0 keeps all weights 1, MaxCost 0 keeps all
// link costs 1, MaxLength 0 keeps all lengths 1, MaxBudget 0 keeps all
// budgets 1.
type GenerateParams struct {
	N int
	// MaxWeight draws weights uniformly from 0..MaxWeight (0 = uniform 1).
	MaxWeight int64
	// EnsureSupport re-draws any node whose weights all came up zero, so
	// every player wants something (only meaningful with MaxWeight > 0).
	EnsureSupport bool
	// MaxCost draws link costs from 1..MaxCost (0 = uniform 1).
	MaxCost int64
	// MaxLength draws lengths from 1..MaxLength (0 = uniform 1).
	MaxLength int64
	// MaxBudget draws budgets from 1..MaxBudget (0 = uniform 1).
	MaxBudget int64
}

// GenerateDense draws a random sealed Dense instance. It is the shared
// workload generator behind the randomized experiments (no-equilibrium
// searches, the budget-conjecture probe E17, fuzz-style property tests).
func GenerateDense(rng *rand.Rand, p GenerateParams) (*Dense, error) {
	if p.N < 2 {
		return nil, fmt.Errorf("core: generate needs N >= 2, got %d", p.N)
	}
	d := NewDense(p.N)
	var maxLen int64 = 1
	for u := 0; u < p.N; u++ {
		if p.MaxBudget > 0 {
			d.Budgets[u] = 1 + rng.Int63n(p.MaxBudget)
		}
		for v := 0; v < p.N; v++ {
			if u == v {
				continue
			}
			if p.MaxWeight > 0 {
				d.Weights[u][v] = rng.Int63n(p.MaxWeight + 1)
			}
			if p.MaxCost > 0 {
				d.Costs[u][v] = 1 + rng.Int63n(p.MaxCost)
			}
			if p.MaxLength > 0 {
				d.Lengths[u][v] = 1 + rng.Int63n(p.MaxLength)
				if d.Lengths[u][v] > maxLen {
					maxLen = d.Lengths[u][v]
				}
			}
		}
		if p.EnsureSupport && p.MaxWeight > 0 {
			hasSupport := false
			for v := 0; v < p.N; v++ {
				if v != u && d.Weights[u][v] > 0 {
					hasSupport = true
					break
				}
			}
			if !hasSupport {
				v := rng.Intn(p.N - 1)
				if v >= u {
					v++
				}
				d.Weights[u][v] = 1 + rng.Int63n(p.MaxWeight)
			}
		}
	}
	d.M = int64(p.N)*maxLen*int64(p.N) + 1
	if err := d.Seal(); err != nil {
		return nil, err
	}
	return d, nil
}
