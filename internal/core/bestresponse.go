package core

import (
	"fmt"
	"sort"

	"bbc/internal/graph"
	"bbc/internal/obs"
)

// infDist is the internal sentinel for "no path"; it is mapped to the
// spec's penalty M at aggregation time so that the min over candidate rows
// stays well-defined.
const infDist = int64(1) << 60

// Oracle answers best-response queries for one node against a fixed rest-
// of-profile. It exploits the structural fact that a shortest path from u
// never revisits u, so u's distance to v under strategy S decomposes as
//
//	d(u, v) = min_{t ∈ S} ( ℓ(u,t) + d_{G−u}(t, v) )
//
// where d_{G−u} is the distance in the realized graph with u deleted. The
// oracle precomputes one row per candidate target t: row_t[v] = ℓ(u,t) +
// d_{G−u}(t, v). Best response is then a budget-constrained weighted
// k-median over the rows; the oracle offers exact enumeration, greedy, and
// swap local search.
//
// The oracle is independent of u's own current strategy (u is deleted from
// every traversal), so one oracle serves both "is u stable?" and "what is
// u's best response?".
type Oracle struct {
	spec    Spec
	u       int
	agg     Aggregation
	cands   []int     // candidate targets, ascending, excludes u
	rows    [][]int64 // rows[i][v] = ℓ(u,cands[i]) + d_{G−u}(cands[i],v); infDist if unreachable
	weights []int64   // weights[v] = w(u, v)
	costs   []int64   // costs[i] = c(u, cands[i])
}

// NewOracle precomputes the candidate distance rows for node u against the
// given realized graph (whose arcs out of u are ignored).
func NewOracle(spec Spec, g *graph.Digraph, u int, agg Aggregation) *Oracle {
	n := spec.N()
	if g.N() != n {
		panic(fmt.Sprintf("core: graph has %d nodes, spec has %d", g.N(), n))
	}
	if u < 0 || u >= n {
		panic(fmt.Sprintf("core: node %d out of range", u))
	}
	reg := obs.Global()
	reg.Inc(obs.MOracleBuild)
	defer reg.Time(obs.MOracleBuildNanos)()
	o := &Oracle{
		spec:    spec,
		u:       u,
		agg:     agg,
		cands:   make([]int, 0, n-1),
		rows:    make([][]int64, 0, n-1),
		weights: make([]int64, n),
	}
	for v := 0; v < n; v++ {
		if v != u {
			o.weights[v] = spec.Weight(u, v)
		}
	}
	unit := spec.UnitLengths()
	opt := graph.Options{Skip: u}
	for t := 0; t < n; t++ {
		if t == u {
			continue
		}
		var dist []int64
		if unit {
			dist = g.BFS(t, opt)
		} else {
			dist = g.Dijkstra(t, opt)
		}
		row := make([]int64, n)
		offset := spec.Length(u, t)
		for v := 0; v < n; v++ {
			if dist[v] == graph.Unreachable {
				row[v] = infDist
			} else {
				row[v] = offset + dist[v]
			}
		}
		o.cands = append(o.cands, t)
		o.rows = append(o.rows, row)
		o.costs = append(o.costs, spec.LinkCost(u, t))
	}
	return o
}

// Node returns the node this oracle answers for.
func (o *Oracle) Node() int { return o.u }

// Evaluate returns u's cost when playing the given (feasible, normalized)
// strategy against the fixed rest-of-profile.
func (o *Oracle) Evaluate(s Strategy) int64 {
	obs.Global().Inc(obs.MOracleEval)
	n := o.spec.N()
	min := make([]int64, n)
	for v := range min {
		min[v] = infDist
	}
	for _, t := range s {
		row := o.rows[o.rowIndex(t)]
		for v := 0; v < n; v++ {
			if row[v] < min[v] {
				min[v] = row[v]
			}
		}
	}
	return o.foldCost(min)
}

// foldCost aggregates a per-target min-distance vector into u's cost.
func (o *Oracle) foldCost(min []int64) int64 {
	var total int64
	m := o.spec.Penalty()
	for v, d := range min {
		if v == o.u {
			continue
		}
		w := o.weights[v]
		if w == 0 {
			continue
		}
		if d >= infDist {
			d = m
		}
		term := w * d
		switch o.agg {
		case SumDistances:
			total += term
		case MaxDistance:
			if term > total {
				total = term
			}
		default:
			panic("core: unknown aggregation")
		}
	}
	return total
}

// LowerBound returns a certified lower bound on u's achievable cost
// against the fixed rest-of-profile: the cost u would have if it could buy
// every link at once (the column-wise minimum over all candidate rows).
// Any strategy's distance to v is the minimum over its chosen rows, hence
// at least this bound; a node whose current cost equals the bound is
// provably playing a best response, which lets stability checks skip the
// exponential enumeration for large-budget nodes.
func (o *Oracle) LowerBound() int64 {
	n := o.spec.N()
	min := make([]int64, n)
	for v := range min {
		min[v] = infDist
	}
	for _, row := range o.rows {
		for v := 0; v < n; v++ {
			if row[v] < min[v] {
				min[v] = row[v]
			}
		}
	}
	return o.foldCost(min)
}

// rowIndex maps a target node id to its candidate row index.
func (o *Oracle) rowIndex(t int) int {
	i := sort.SearchInts(o.cands, t)
	if i >= len(o.cands) || o.cands[i] != t {
		panic(fmt.Sprintf("core: node %d is not a candidate target for %d", t, o.u))
	}
	return i
}

// EnumerationLimitError is returned by BestExact when the number of
// feasible maximal strategies exceeds the caller's limit.
type EnumerationLimitError struct {
	Node  int
	Limit int
}

func (e *EnumerationLimitError) Error() string {
	return fmt.Sprintf("core: best-response enumeration for node %d exceeded limit %d", e.Node, e.Limit)
}

// BestExact enumerates every maximal budget-feasible strategy and returns a
// minimum-cost one (ties broken toward the lexicographically smallest
// strategy, so the result is deterministic). Because weights are
// non-negative, cost is monotone non-increasing under adding links, so
// restricting to maximal sets is lossless.
//
// limit caps the number of strategies examined; 0 means no cap. When the
// cap is hit, an *EnumerationLimitError is returned.
func (o *Oracle) BestExact(limit int) (Strategy, int64, error) {
	reg := obs.Global()
	reg.Inc(obs.MBestExact)
	n := o.spec.N()
	budget := o.spec.Budget(o.u)

	cur := make([]int64, n)
	for v := range cur {
		cur[v] = infDist
	}
	var (
		chosen   []int // candidate indices currently included
		best     Strategy
		bestCost = int64(1)<<62 - 1
		examined int
		limitHit bool
	)
	// cell records an overwritten entry of cur so include branches can undo.
	type cell struct {
		v   int
		old int64
	}

	// minRemainCost[i] = the cheapest link cost among candidates i..end;
	// used to decide maximality at leaves.
	minRemain := make([]int64, len(o.cands)+1)
	minRemain[len(o.cands)] = int64(1)<<62 - 1
	for i := len(o.cands) - 1; i >= 0; i-- {
		minRemain[i] = o.costs[i]
		if minRemain[i+1] < minRemain[i] {
			minRemain[i] = minRemain[i+1]
		}
	}

	record := func() {
		examined++
		cost := o.foldCost(cur)
		if cost < bestCost {
			bestCost = cost
			best = make(Strategy, len(chosen))
			for i, ci := range chosen {
				best[i] = o.cands[ci]
			}
			sort.Ints(best)
		}
	}

	var dfs func(i int, rem int64)
	dfs = func(i int, rem int64) {
		if limitHit {
			return
		}
		if limit > 0 && examined >= limit {
			limitHit = true
			return
		}
		if i == len(o.cands) {
			record()
			return
		}
		// Prune: if nothing from here on fits, this branch is one leaf.
		if minRemain[i] > rem {
			record()
			return
		}
		// Include candidate i when affordable.
		if o.costs[i] <= rem {
			cells := make([]cell, 0, 8)
			row := o.rows[i]
			for v := 0; v < n; v++ {
				if row[v] < cur[v] {
					cells = append(cells, cell{v: v, old: cur[v]})
					cur[v] = row[v]
				}
			}
			chosen = append(chosen, i)
			dfs(i+1, rem-o.costs[i])
			chosen = chosen[:len(chosen)-1]
			for _, c := range cells {
				cur[c.v] = c.old
			}
		}
		// Exclude candidate i — but only if a maximal set can still be
		// completed, i.e. some later candidate is affordable, OR excluding i
		// is forced because i itself is unaffordable.
		if o.costs[i] > rem {
			dfs(i+1, rem)
			return
		}
		if minRemain[i+1] <= rem {
			dfs(i+1, rem)
			return
		}
		// Excluding i would end at a non-maximal leaf (i still fits and
		// nothing after it does): skip, since some maximal superset
		// dominates it.
	}
	dfs(0, budget)
	reg.Add(obs.MBestExactLeaves, int64(examined))
	if limitHit {
		return nil, 0, &EnumerationLimitError{Node: o.u, Limit: limit}
	}
	if best == nil {
		// No candidate affordable at all: the empty strategy is the only
		// option.
		return Strategy{}, o.Evaluate(Strategy{}), nil
	}
	return best, bestCost, nil
}

// BestGreedy builds a strategy by repeatedly adding the affordable link
// with the largest marginal cost decrease (k-median greedy). Ties break
// toward the lowest candidate index. It returns the strategy and its cost.
// Greedy continues adding links while budget remains even when the marginal
// gain is zero, since extra links never hurt and maximality matches the
// exact oracle's search space.
func (o *Oracle) BestGreedy() (Strategy, int64) {
	obs.Global().Inc(obs.MBestGreedy)
	n := o.spec.N()
	budget := o.spec.Budget(o.u)
	cur := make([]int64, n)
	for v := range cur {
		cur[v] = infDist
	}
	taken := make([]bool, len(o.cands))
	var out Strategy
	for {
		bestIdx := -1
		bestCost := int64(1)<<62 - 1
		for i := range o.cands {
			if taken[i] || o.costs[i] > budget {
				continue
			}
			cost := o.foldCostWithRow(cur, o.rows[i])
			if cost < bestCost {
				bestCost = cost
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break
		}
		taken[bestIdx] = true
		budget -= o.costs[bestIdx]
		row := o.rows[bestIdx]
		for v := 0; v < n; v++ {
			if row[v] < cur[v] {
				cur[v] = row[v]
			}
		}
		out = append(out, o.cands[bestIdx])
	}
	sort.Ints(out)
	return out, o.foldCost(cur)
}

// foldCostWithRow computes the cost of cur overlaid with one extra row,
// without mutating cur.
func (o *Oracle) foldCostWithRow(cur, row []int64) int64 {
	var total int64
	m := o.spec.Penalty()
	for v := range cur {
		if v == o.u {
			continue
		}
		w := o.weights[v]
		if w == 0 {
			continue
		}
		d := cur[v]
		if row[v] < d {
			d = row[v]
		}
		if d >= infDist {
			d = m
		}
		term := w * d
		switch o.agg {
		case SumDistances:
			total += term
		case MaxDistance:
			if term > total {
				total = term
			}
		}
	}
	return total
}

// ImproveBySwaps runs 1-swap local search from the given strategy: replace
// one bought link with one unbought affordable link whenever that strictly
// lowers cost, until a local optimum or maxRounds is reached. It returns
// the improved strategy and its cost.
func (o *Oracle) ImproveBySwaps(s Strategy, maxRounds int) (Strategy, int64) {
	cur := append(Strategy(nil), s...)
	curCost := o.Evaluate(cur)
	for round := 0; round < maxRounds; round++ {
		improved := false
		spent := cur.TotalCost(o.spec, o.u)
		budget := o.spec.Budget(o.u)
		for si := 0; si < len(cur) && !improved; si++ {
			old := cur[si]
			oldCost := o.spec.LinkCost(o.u, old)
			for _, t := range o.cands {
				if cur.Contains(t) {
					continue
				}
				if spent-oldCost+o.spec.LinkCost(o.u, t) > budget {
					continue
				}
				trial := append(Strategy(nil), cur...)
				trial[si] = t
				trial = NormalizeStrategy(trial)
				if c := o.Evaluate(trial); c < curCost {
					cur, curCost = trial, c
					improved = true
					break
				}
			}
		}
		if !improved {
			break
		}
	}
	return cur, curCost
}
