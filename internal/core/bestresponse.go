package core

import (
	"fmt"
	"sort"

	"bbc/internal/graph"
	"bbc/internal/obs"
)

// infDist is the internal sentinel for "no path"; it is mapped to the
// spec's penalty M at aggregation time so that the min over candidate rows
// stays well-defined.
const infDist = int64(1) << 60

// Oracle answers best-response queries for one node against a fixed rest-
// of-profile. It exploits the structural fact that a shortest path from u
// never revisits u, so u's distance to v under strategy S decomposes as
//
//	d(u, v) = min_{t ∈ S} ( ℓ(u,t) + d_{G−u}(t, v) )
//
// where d_{G−u} is the distance in the realized graph with u deleted. The
// oracle precomputes one row per candidate target t: row_t[v] = ℓ(u,t) +
// d_{G−u}(t, v). Best response is then a budget-constrained weighted
// k-median over the rows; the oracle offers exact enumeration, a pruned
// existence-only stability query, greedy, and swap local search.
//
// The oracle is independent of u's own current strategy (u is deleted from
// every traversal), so one oracle serves both "is u stable?" and "what is
// u's best response?".
//
// Internally the rows are support-compressed and arena-backed: only the
// columns with positive preference weight w(u,v) are materialized (zero-
// weight targets never contribute to the cost), and all rows live in one
// flat slice instead of n−1 heap slices. An Oracle carries its own fold
// scratch, so Evaluate, LowerBound and HasImprovement allocate nothing.
// The scratch makes an Oracle unsafe for concurrent use; parallel callers
// build one oracle per goroutine.
type Oracle struct {
	spec    Spec
	u       int
	agg     Aggregation
	n       int
	penalty int64
	budget  int64
	cands   []int   // candidate targets, ascending, excludes u
	costs   []int64 // costs[i] = c(u, cands[i])
	support []int   // targets v≠u with w(u,v) > 0, ascending
	weights []int64 // weights[j] = w(u, support[j])
	// arena is the flat row storage: row i occupies
	// arena[i*len(support) : (i+1)*len(support)], with
	// row_i[j] = ℓ(u,cands[i]) + d_{G−u}(cands[i], support[j]); infDist if
	// unreachable.
	arena []int64
	// suffix[i*S:(i+1)*S] is the column-wise minimum over rows i..end
	// (S = len(support)); suffix row len(cands) is all infDist. Row 0 is
	// the everything-at-once lower-bound vector; deeper rows are the
	// branch-and-bound optimistic completions of HasImprovement. Built
	// lazily on the first LowerBound/HasImprovement call, so pure
	// best-response queries never pay for it.
	suffix      []int64
	suffixValid bool
	// minRemain[i] = the cheapest link cost among candidates i..end; used
	// to decide maximality at leaves and to shortcut exhausted budgets.
	minRemain []int64
	offs      []int64 // offs[i] = ℓ(u, cands[i]), the row offset of candidate i
	// pairCost is the sum of the two cheapest candidate link costs (2^64−1
	// when fewer than two candidates exist). pairCost > budget means no
	// feasible strategy holds two links, so the best-response optimum is
	// the cheapest affordable single row — cached in singleOpt per rebuild,
	// collapsing HasImprovement to one comparison on budget-1 games.
	pairCost       uint64
	singleOpt      int64
	singleOptValid bool
	// specCached marks cands/costs/support/weights/offs/minRemain/pairCost
	// as valid for the current (spec, u): those arrays are derived from the
	// spec alone, so a rebuild for the same node of the same game skips
	// straight to the traversals and the arena fill.
	specCached bool
	minVec     []int64 // fold scratch for Evaluate
	curVec     []int64 // DFS overlay state for BestExact / HasImprovement
	cells      []undoCell
	chosen     []int
	taken      []bool // BestGreedy marks
}

// undoCell records an overwritten curVec entry so DFS include branches can
// backtrack without copying the whole vector.
type undoCell struct {
	j   int32
	old int64
}

// NewOracle precomputes the candidate distance rows for node u against the
// given realized graph (whose arcs out of u are ignored). It always takes
// the scalar per-source traversal path; the bit-parallel batch path belongs
// to EvalScratch, which owns the buffers that make it worthwhile (and the
// reference paths in differential tests rely on NewOracle staying scalar).
func NewOracle(spec Spec, g *graph.Digraph, u int, agg Aggregation) *Oracle {
	o := &Oracle{}
	var gs graph.Scratch
	o.build(spec, g, u, agg, &gs, nil, make([]int64, spec.N()), nil, nil)
	return o
}

// build (re)initializes the oracle in place, reusing every buffer whose
// capacity suffices. gs and dist are the traversal scratch and an n-length
// distance buffer; EvalScratch shares one pair across all of its oracles.
// bs and bdist, when both non-nil, enable the bit-parallel traversal path
// on uniform-length specs: sources are chunked into batches of up to
// graph.BatchWidth and each batch costs one level-synchronized
// BFSBatchInto instead of one BFSInto per source. bdist must hold
// min(BatchWidth, n−1) × n entries.
//
// rev, when non-nil alongside bs on a uniform-length spec, must be the
// exact arc-reversal of g (EvalScratch maintains one incrementally): the
// rebuild then traverses column-wise — one reverse BFS per *support* node
// v yields d_{G−u}(t, v) for every candidate t at once, because a t→v
// path in G−u is a v→t path in rev−u. Support sets are typically far
// smaller than candidate sets (only positive-weight targets are
// materialized), so the reverse path runs |support| traversals instead of
// n−1. Non-unit specs, nil bs and nil rev fall back to the scalar forward
// path, which is bit-for-bit equivalent (every path fills the same arena
// cells from the same hop counts).
func (o *Oracle) build(spec Spec, g *graph.Digraph, u int, agg Aggregation, gs *graph.Scratch, bs *graph.BitScratch, dist []int64, bdist []int64, rev *graph.Digraph) {
	n := spec.N()
	if g.N() != n {
		panic(fmt.Sprintf("core: graph has %d nodes, spec has %d", g.N(), n))
	}
	if u < 0 || u >= n {
		panic(fmt.Sprintf("core: node %d out of range", u))
	}
	reg := obs.Global()
	reg.Inc(obs.MOracleBuild)
	t0 := reg.Started()
	sp := obs.Trace().StartSpan("oracle.build")
	if !(o.specCached && o.spec == spec && o.u == u) {
		o.spec, o.u = spec, u
		o.support = o.support[:0]
		o.weights = o.weights[:0]
		o.cands = o.cands[:0]
		o.costs = o.costs[:0]
		o.offs = o.offs[:0]
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			if w := spec.Weight(u, v); w > 0 {
				o.support = append(o.support, v)
				o.weights = append(o.weights, w)
			}
			o.cands = append(o.cands, v)
			o.costs = append(o.costs, spec.LinkCost(u, v))
			o.offs = append(o.offs, spec.Length(u, v))
		}
		C := len(o.cands)
		o.minRemain = growInt64(o.minRemain, C+1)
		o.minRemain[C] = int64(1)<<62 - 1
		for i := C - 1; i >= 0; i-- {
			o.minRemain[i] = o.costs[i]
			if o.minRemain[i+1] < o.minRemain[i] {
				o.minRemain[i] = o.minRemain[i+1]
			}
		}
		c1, c2 := uint64(1)<<63, uint64(1)<<63
		for _, c := range o.costs {
			if uc := uint64(c); uc < c1 {
				c1, c2 = uc, c1
			} else if uc < c2 {
				c2 = uc
			}
		}
		if c2 == uint64(1)<<63 { // fewer than two candidates: no pair exists
			o.pairCost = ^uint64(0)
		} else {
			o.pairCost = c1 + c2 // exact: two int64 costs cannot wrap a uint64
		}
		o.specCached = true
	}
	o.agg, o.n = agg, n
	o.penalty = spec.Penalty()
	o.budget = spec.Budget(u)
	C, S := len(o.cands), len(o.support)

	o.arena = growInt64(o.arena, C*S)
	if len(dist) != n {
		dist = make([]int64, n)
	}
	unit := spec.UnitLengths()
	opt := graph.Options{Skip: u}
	switch {
	case unit && rev != nil && bs != nil && len(bdist) >= min(graph.BatchWidth, max(S, 1))*n:
		for lo := 0; lo < S; lo += graph.BatchWidth {
			hi := min(lo+graph.BatchWidth, S)
			m := hi - lo
			rev.BFSBatchInto(bdist[:m*n], o.support[lo:hi], opt, bs)
			for i, t := range o.cands {
				row := o.arena[i*S+lo : i*S+hi]
				off := o.offs[i]
				for j := 0; j < m; j++ {
					if d := bdist[j*n+t]; d == graph.Unreachable {
						row[j] = infDist
					} else {
						row[j] = off + d
					}
				}
			}
		}
	case unit && bs != nil && len(bdist) >= min(graph.BatchWidth, C)*n && C > 1:
		for lo := 0; lo < C; lo += graph.BatchWidth {
			hi := min(lo+graph.BatchWidth, C)
			m := hi - lo
			g.BFSBatchInto(bdist[:m*n], o.cands[lo:hi], opt, bs)
			for ci := 0; ci < m; ci++ {
				offset := o.offs[lo+ci]
				d := bdist[ci*n : (ci+1)*n]
				row := o.arena[(lo+ci)*S : (lo+ci+1)*S]
				for j, v := range o.support {
					if dv := d[v]; dv == graph.Unreachable {
						row[j] = infDist
					} else {
						row[j] = offset + dv
					}
				}
			}
		}
	default:
		for i, t := range o.cands {
			if unit {
				g.BFSInto(dist, t, opt, gs)
			} else {
				g.DijkstraInto(dist, t, opt, gs)
			}
			offset := o.offs[i]
			row := o.arena[i*S : (i+1)*S]
			for j, v := range o.support {
				if d := dist[v]; d == graph.Unreachable {
					row[j] = infDist
				} else {
					row[j] = offset + d
				}
			}
		}
	}

	o.suffixValid = false
	o.singleOptValid = false

	o.minVec = growInt64(o.minVec, S)
	o.curVec = growInt64(o.curVec, S)
	o.cells = o.cells[:0]
	o.chosen = o.chosen[:0]
	reg.ElapsedSince(obs.MOracleBuildNanos, t0)
	reg.ObserveSince(obs.HOracleBuild, t0)
	sp.EndInt("node", int64(u))
}

// growInt64 reslices buf to length want, reallocating only when the
// capacity is insufficient.
func growInt64(buf []int64, want int) []int64 {
	if cap(buf) < want {
		return make([]int64, want)
	}
	return buf[:want]
}

// Node returns the node this oracle answers for.
func (o *Oracle) Node() int { return o.u }

// row returns candidate i's support-compressed distance row.
func (o *Oracle) row(i int) []int64 {
	S := len(o.support)
	return o.arena[i*S : (i+1)*S]
}

// suffixRow returns the column-wise minimum over rows i..end. Callers
// must have run ensureSuffix since the last build.
func (o *Oracle) suffixRow(i int) []int64 {
	S := len(o.support)
	return o.suffix[i*S : (i+1)*S]
}

// ensureSuffix materializes the suffix column-minima matrix, reusing its
// buffer across rebuilds (0 allocs once the buffer has grown).
func (o *Oracle) ensureSuffix() {
	if o.suffixValid {
		return
	}
	C, S := len(o.cands), len(o.support)
	o.suffix = growInt64(o.suffix, (C+1)*S)
	last := o.suffix[C*S:]
	for j := range last {
		last[j] = infDist
	}
	for i := C - 1; i >= 0; i-- {
		row := o.arena[i*S : (i+1)*S]
		next := o.suffix[(i+1)*S : (i+2)*S]
		cur := o.suffix[i*S : (i+1)*S]
		for j := 0; j < S; j++ {
			m := next[j]
			if row[j] < m {
				m = row[j]
			}
			cur[j] = m
		}
	}
	o.suffixValid = true
}

// Evaluate returns u's cost when playing the given (feasible, normalized)
// strategy against the fixed rest-of-profile. It allocates nothing.
func (o *Oracle) Evaluate(s Strategy) int64 {
	obs.Global().Inc(obs.MOracleEval)
	S := len(o.support)
	min := o.minVec
	for j := range min {
		min[j] = infDist
	}
	for _, t := range s {
		row := o.row(o.rowIndex(t))
		for j := 0; j < S; j++ {
			if row[j] < min[j] {
				min[j] = row[j]
			}
		}
	}
	return o.foldCost(min)
}

// foldCost aggregates a support-indexed min-distance vector into u's cost.
func (o *Oracle) foldCost(vec []int64) int64 {
	m := o.penalty
	var total int64
	switch o.agg {
	case SumDistances:
		for j, d := range vec {
			if d >= infDist {
				d = m
			}
			total += o.weights[j] * d
		}
	case MaxDistance:
		for j, d := range vec {
			if d >= infDist {
				d = m
			}
			if t := o.weights[j] * d; t > total {
				total = t
			}
		}
	default:
		panic("core: unknown aggregation")
	}
	return total
}

// foldCostMin2 folds the element-wise minimum of two support-indexed
// vectors without materializing it.
func (o *Oracle) foldCostMin2(a, b []int64) int64 {
	m := o.penalty
	var total int64
	switch o.agg {
	case SumDistances:
		for j, d := range a {
			if b[j] < d {
				d = b[j]
			}
			if d >= infDist {
				d = m
			}
			total += o.weights[j] * d
		}
	case MaxDistance:
		for j, d := range a {
			if b[j] < d {
				d = b[j]
			}
			if d >= infDist {
				d = m
			}
			if t := o.weights[j] * d; t > total {
				total = t
			}
		}
	default:
		panic("core: unknown aggregation")
	}
	return total
}

// LowerBound returns a certified lower bound on u's achievable cost
// against the fixed rest-of-profile: the cost u would have if it could buy
// every link at once (the column-wise minimum over all candidate rows,
// precomputed as suffix row 0). Any strategy's distance to v is the
// minimum over its chosen rows, hence at least this bound; a node whose
// current cost equals the bound is provably playing a best response, which
// lets stability checks skip the exponential enumeration for large-budget
// nodes.
func (o *Oracle) LowerBound() int64 {
	o.ensureSuffix()
	return o.foldCost(o.suffixRow(0))
}

// HasImprovement reports whether some budget-feasible strategy achieves a
// cost strictly below cur (u's incumbent cost). It is output-equivalent to
// comparing cur against BestExact's optimum — cost is monotone
// non-increasing under adding links, so an improving feasible set exists
// exactly when an improving maximal set does — but instead of enumerating
// every maximal strategy it branch-and-bounds the subset search against
// cur: a subtree is pruned when even buying all of its remaining
// candidates (budget ignored, a valid optimistic bound) cannot beat cur,
// and the search exits at the first strictly improving set, checked at
// every include step rather than only at leaves. It allocates nothing on a
// warm oracle.
func (o *Oracle) HasImprovement(cur int64) bool {
	obs.Global().Inc(obs.MHasImprovement)
	if o.pairCost > uint64(o.budget) {
		// No feasible strategy holds two links (the two cheapest together
		// exceed the budget, or fewer than two candidates exist), so the
		// exact optimum is the cheapest affordable single row — cached per
		// rebuild, making repeated stability queries one comparison each.
		return o.singleBest() < cur
	}
	o.ensureSuffix()
	v := o.curVec
	for j := range v {
		v[j] = infDist
	}
	o.cells = o.cells[:0]
	return o.hasImp(0, o.budget, cur)
}

// singleBest returns the exact best-response cost when every feasible
// strategy is empty or a single link (pairCost > budget): cost is monotone
// non-increasing under adding links, so the optimum is the minimum over
// the affordable single-link rows, or the empty-strategy cost when no link
// is affordable. The value survives until the next rebuild.
func (o *Oracle) singleBest() int64 {
	if o.singleOptValid {
		return o.singleOpt
	}
	v := o.minVec
	for j := range v {
		v[j] = infDist
	}
	opt := o.foldCost(v) // the empty strategy: every target at the penalty
	for i := range o.cands {
		if o.costs[i] > o.budget {
			continue
		}
		if c := o.foldCost(o.row(i)); c < opt {
			opt = c
		}
	}
	o.singleOpt, o.singleOptValid = opt, true
	return opt
}

// hasImp is the branch-and-bound DFS behind HasImprovement. curVec holds
// the column minima of the currently included rows; cells is the shared
// backtracking stack.
func (o *Oracle) hasImp(i int, rem, cur int64) bool {
	// Optimistic completion: even overlaying every remaining row cannot
	// beat cur → no leaf below improves.
	if o.foldCostMin2(o.curVec, o.suffixRow(i)) >= cur {
		return false
	}
	if i == len(o.cands) {
		// The bound at a leaf is the leaf's exact cost, and it beat cur.
		return true
	}
	if o.minRemain[i] > rem {
		// Nothing further fits the budget: the current set is the only
		// reachable leaf.
		return o.foldCost(o.curVec) < cur
	}
	if o.costs[i] <= rem {
		mark := len(o.cells)
		row := o.row(i)
		for j := 0; j < len(row); j++ {
			if row[j] < o.curVec[j] {
				o.cells = append(o.cells, undoCell{j: int32(j), old: o.curVec[j]})
				o.curVec[j] = row[j]
			}
		}
		// A partial set is itself feasible; exit at the first improvement.
		if o.foldCost(o.curVec) < cur {
			return true
		}
		if o.hasImp(i+1, rem-o.costs[i], cur) {
			return true
		}
		for _, c := range o.cells[mark:] {
			o.curVec[c.j] = c.old
		}
		o.cells = o.cells[:mark]
	}
	return o.hasImp(i+1, rem, cur)
}

// rowIndex maps a target node id to its candidate row index.
func (o *Oracle) rowIndex(t int) int {
	i := sort.SearchInts(o.cands, t)
	if i >= len(o.cands) || o.cands[i] != t {
		panic(fmt.Sprintf("core: node %d is not a candidate target for %d", t, o.u))
	}
	return i
}

// EnumerationLimitError is returned by BestExact when the number of
// feasible maximal strategies exceeds the caller's limit.
type EnumerationLimitError struct {
	Node  int
	Limit int
}

func (e *EnumerationLimitError) Error() string {
	return fmt.Sprintf("core: best-response enumeration for node %d exceeded limit %d", e.Node, e.Limit)
}

// BestExact enumerates every maximal budget-feasible strategy and returns a
// minimum-cost one (ties broken toward the lexicographically smallest
// strategy, so the result is deterministic). Because weights are
// non-negative, cost is monotone non-increasing under adding links, so
// restricting to maximal sets is lossless.
//
// limit caps the number of strategies examined; 0 means no cap. When the
// cap is hit, an *EnumerationLimitError is returned.
func (o *Oracle) BestExact(limit int) (Strategy, int64, error) {
	reg := obs.Global()
	reg.Inc(obs.MBestExact)
	budget := o.budget

	cur := o.curVec
	for j := range cur {
		cur[j] = infDist
	}
	o.cells = o.cells[:0]
	o.chosen = o.chosen[:0]
	var (
		best     Strategy
		bestCost = int64(1)<<62 - 1
		examined int
		limitHit bool
	)

	record := func() {
		examined++
		cost := o.foldCost(cur)
		if cost < bestCost {
			bestCost = cost
			best = make(Strategy, len(o.chosen))
			for i, ci := range o.chosen {
				best[i] = o.cands[ci]
			}
			sort.Ints(best)
		}
	}

	var dfs func(i int, rem int64)
	dfs = func(i int, rem int64) {
		if limitHit {
			return
		}
		if limit > 0 && examined >= limit {
			limitHit = true
			return
		}
		if i == len(o.cands) {
			record()
			return
		}
		// Prune: if nothing from here on fits, this branch is one leaf.
		if o.minRemain[i] > rem {
			record()
			return
		}
		// Include candidate i when affordable.
		if o.costs[i] <= rem {
			mark := len(o.cells)
			row := o.row(i)
			for j := 0; j < len(row); j++ {
				if row[j] < cur[j] {
					o.cells = append(o.cells, undoCell{j: int32(j), old: cur[j]})
					cur[j] = row[j]
				}
			}
			o.chosen = append(o.chosen, i)
			dfs(i+1, rem-o.costs[i])
			o.chosen = o.chosen[:len(o.chosen)-1]
			for _, c := range o.cells[mark:] {
				cur[c.j] = c.old
			}
			o.cells = o.cells[:mark]
		}
		// Exclude candidate i — but only if a maximal set can still be
		// completed, i.e. some later candidate is affordable, OR excluding i
		// is forced because i itself is unaffordable.
		if o.costs[i] > rem {
			dfs(i+1, rem)
			return
		}
		if o.minRemain[i+1] <= rem {
			dfs(i+1, rem)
			return
		}
		// Excluding i would end at a non-maximal leaf (i still fits and
		// nothing after it does): skip, since some maximal superset
		// dominates it.
	}
	dfs(0, budget)
	reg.Add(obs.MBestExactLeaves, int64(examined))
	if limitHit {
		return nil, 0, &EnumerationLimitError{Node: o.u, Limit: limit}
	}
	if best == nil {
		// No candidate affordable at all: the empty strategy is the only
		// option.
		return Strategy{}, o.Evaluate(Strategy{}), nil
	}
	return best, bestCost, nil
}

// BestGreedy builds a strategy by repeatedly adding the affordable link
// with the largest marginal cost decrease (k-median greedy). Ties break
// toward the lowest candidate index. It returns the strategy and its cost.
// Greedy continues adding links while budget remains even when the marginal
// gain is zero, since extra links never hurt and maximality matches the
// exact oracle's search space.
func (o *Oracle) BestGreedy() (Strategy, int64) {
	obs.Global().Inc(obs.MBestGreedy)
	budget := o.budget
	cur := o.curVec
	for j := range cur {
		cur[j] = infDist
	}
	if cap(o.taken) < len(o.cands) {
		o.taken = make([]bool, len(o.cands))
	}
	taken := o.taken[:len(o.cands)]
	for i := range taken {
		taken[i] = false
	}
	var out Strategy
	for {
		bestIdx := -1
		bestCost := int64(1)<<62 - 1
		for i := range o.cands {
			if taken[i] || o.costs[i] > budget {
				continue
			}
			cost := o.foldCostMin2(cur, o.row(i))
			if cost < bestCost {
				bestCost = cost
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break
		}
		taken[bestIdx] = true
		budget -= o.costs[bestIdx]
		row := o.row(bestIdx)
		for j := 0; j < len(row); j++ {
			if row[j] < cur[j] {
				cur[j] = row[j]
			}
		}
		out = append(out, o.cands[bestIdx])
	}
	sort.Ints(out)
	return out, o.foldCost(cur)
}

// ImproveBySwaps runs 1-swap local search from the given strategy: replace
// one bought link with one unbought affordable link whenever that strictly
// lowers cost, until a local optimum or maxRounds is reached. It returns
// the improved strategy and its cost.
func (o *Oracle) ImproveBySwaps(s Strategy, maxRounds int) (Strategy, int64) {
	cur := append(Strategy(nil), s...)
	curCost := o.Evaluate(cur)
	for round := 0; round < maxRounds; round++ {
		improved := false
		spent := cur.TotalCost(o.spec, o.u)
		budget := o.spec.Budget(o.u)
		for si := 0; si < len(cur) && !improved; si++ {
			old := cur[si]
			oldCost := o.spec.LinkCost(o.u, old)
			for _, t := range o.cands {
				if cur.Contains(t) {
					continue
				}
				if spent-oldCost+o.spec.LinkCost(o.u, t) > budget {
					continue
				}
				trial := append(Strategy(nil), cur...)
				trial[si] = t
				trial = NormalizeStrategy(trial)
				if c := o.Evaluate(trial); c < curCost {
					cur, curCost = trial, c
					improved = true
					break
				}
			}
		}
		if !improved {
			break
		}
	}
	return cur, curCost
}
