package core

import (
	"encoding/json"
	"fmt"
)

// gameJSON is the on-disk representation of a BBC game instance. Uniform
// games are stored compactly; dense games carry their full matrices.
type gameJSON struct {
	// Kind is "uniform" or "dense".
	Kind string `json:"kind"`
	// N and K describe uniform games.
	N int `json:"n,omitempty"`
	K int `json:"k,omitempty"`
	// Dense payload.
	Weights [][]int64 `json:"weights,omitempty"`
	Costs   [][]int64 `json:"costs,omitempty"`
	Lengths [][]int64 `json:"lengths,omitempty"`
	Budgets []int64   `json:"budgets,omitempty"`
	Penalty int64     `json:"penalty,omitempty"`
}

// maxDenseSpecNodes bounds the size of a dense spec accepted from JSON:
// decoding allocates O(n²) memory, so untrusted documents must not pick
// n freely. Every tractable BBC instance is orders of magnitude smaller.
const maxDenseSpecNodes = 1024

// MarshalSpec encodes a Uniform or Dense spec as JSON. Other Spec
// implementations are rejected.
func MarshalSpec(spec Spec) ([]byte, error) {
	switch s := spec.(type) {
	case *Uniform:
		return json.Marshal(gameJSON{Kind: "uniform", N: s.N(), K: s.K()})
	case *Dense:
		return json.Marshal(gameJSON{
			Kind:    "dense",
			Weights: s.Weights,
			Costs:   s.Costs,
			Lengths: s.Lengths,
			Budgets: s.Budgets,
			Penalty: s.M,
		})
	default:
		return nil, fmt.Errorf("core: cannot marshal spec of type %T", spec)
	}
}

// UnmarshalSpec decodes a spec written by MarshalSpec, validating it
// (dense games are sealed).
func UnmarshalSpec(data []byte) (Spec, error) {
	var g gameJSON
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("core: decode spec: %w", err)
	}
	switch g.Kind {
	case "uniform":
		return NewUniform(g.N, g.K)
	case "dense":
		n := len(g.Budgets)
		if n < 2 {
			return nil, fmt.Errorf("core: dense spec needs at least 2 budgets")
		}
		if n > maxDenseSpecNodes {
			// A dense decode allocates three n×n matrices, so a short
			// hostile document could demand gigabytes; no tractable BBC
			// instance comes anywhere near this bound.
			return nil, fmt.Errorf("core: dense spec has %d nodes, limit %d", n, maxDenseSpecNodes)
		}
		if len(g.Weights) != n || len(g.Costs) != n || len(g.Lengths) != n {
			return nil, fmt.Errorf("core: dense spec matrices must be %dx%d", n, n)
		}
		d := NewDense(n)
		for u := 0; u < n; u++ {
			if len(g.Weights[u]) != n || len(g.Costs[u]) != n || len(g.Lengths[u]) != n {
				return nil, fmt.Errorf("core: dense spec row %d has wrong length", u)
			}
			copy(d.Weights[u], g.Weights[u])
			copy(d.Costs[u], g.Costs[u])
			copy(d.Lengths[u], g.Lengths[u])
		}
		copy(d.Budgets, g.Budgets)
		d.M = g.Penalty
		if err := d.Seal(); err != nil {
			return nil, err
		}
		return d, nil
	default:
		return nil, fmt.Errorf("core: unknown spec kind %q", g.Kind)
	}
}

// MarshalJSON encodes a profile as a JSON array of target lists.
func (p Profile) MarshalJSON() ([]byte, error) {
	lists := make([][]int, len(p))
	for u, s := range p {
		lists[u] = append([]int{}, s...)
	}
	return json.Marshal(lists)
}

// UnmarshalJSON decodes a profile, normalizing every strategy.
func (p *Profile) UnmarshalJSON(data []byte) error {
	var lists [][]int
	if err := json.Unmarshal(data, &lists); err != nil {
		return fmt.Errorf("core: decode profile: %w", err)
	}
	out := make(Profile, len(lists))
	for u, l := range lists {
		out[u] = NormalizeStrategy(l)
	}
	*p = out
	return nil
}

// Instance bundles a game and a profile for save/load round trips (used
// by tooling to persist interesting configurations, e.g. loop starts).
type Instance struct {
	Spec    Spec
	Profile Profile
}

type instanceJSON struct {
	Game    json.RawMessage `json:"game"`
	Profile Profile         `json:"profile"`
}

// MarshalJSON encodes the instance.
func (in Instance) MarshalJSON() ([]byte, error) {
	game, err := MarshalSpec(in.Spec)
	if err != nil {
		return nil, err
	}
	return json.Marshal(instanceJSON{Game: game, Profile: in.Profile})
}

// UnmarshalJSON decodes and validates the instance (the profile must be
// feasible for the game).
func (in *Instance) UnmarshalJSON(data []byte) error {
	var raw instanceJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("core: decode instance: %w", err)
	}
	spec, err := UnmarshalSpec(raw.Game)
	if err != nil {
		return err
	}
	if err := raw.Profile.Validate(spec); err != nil {
		return err
	}
	in.Spec = spec
	in.Profile = raw.Profile
	return nil
}
