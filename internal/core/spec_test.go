package core

import (
	"testing"
)

func TestNewUniformValidation(t *testing.T) {
	tests := []struct {
		name    string
		n, k    int
		wantErr bool
	}{
		{name: "minimal", n: 2, k: 1},
		{name: "typical", n: 10, k: 3},
		{name: "k equals n-1", n: 5, k: 4},
		{name: "n too small", n: 1, k: 1, wantErr: true},
		{name: "k zero", n: 5, k: 0, wantErr: true},
		{name: "k too large", n: 5, k: 5, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			u, err := NewUniform(tt.n, tt.k)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil {
				return
			}
			if u.N() != tt.n || u.K() != tt.k {
				t.Fatalf("N,K = %d,%d want %d,%d", u.N(), u.K(), tt.n, tt.k)
			}
			if u.Weight(0, 1) != 1 || u.LinkCost(0, 1) != 1 || u.Length(0, 1) != 1 {
				t.Fatal("uniform game entries must all be 1")
			}
			if u.Budget(0) != int64(tt.k) {
				t.Fatalf("Budget = %d, want %d", u.Budget(0), tt.k)
			}
			if u.Penalty() <= int64(tt.n) {
				t.Fatalf("Penalty %d must exceed n·maxℓ = %d", u.Penalty(), tt.n)
			}
			if !u.UnitLengths() {
				t.Fatal("uniform game must report unit lengths")
			}
		})
	}
}

func TestDenseSealValidation(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(d *Dense)
		wantErr bool
	}{
		{name: "default valid", mutate: func(*Dense) {}},
		{name: "negative weight", mutate: func(d *Dense) { d.Weights[0][1] = -1 }, wantErr: true},
		{name: "zero link cost", mutate: func(d *Dense) { d.Costs[0][1] = 0 }, wantErr: true},
		{name: "zero length", mutate: func(d *Dense) { d.Lengths[1][2] = 0 }, wantErr: true},
		{name: "negative budget", mutate: func(d *Dense) { d.Budgets[2] = -1 }, wantErr: true},
		{name: "penalty too small", mutate: func(d *Dense) { d.M = 3 }, wantErr: true},
		{name: "zero budget allowed", mutate: func(d *Dense) { d.Budgets[0] = 0 }},
		{name: "bigger weights ok", mutate: func(d *Dense) { d.Weights[0][1] = 100 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := NewDense(4)
			tt.mutate(d)
			err := d.Seal()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Seal err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestDenseUnitLengthDetection(t *testing.T) {
	d := NewDense(3)
	d.MustSeal()
	if !d.UnitLengths() {
		t.Fatal("all-ones lengths should be unit")
	}
	d2 := NewDense(3)
	d2.Lengths[0][1] = 5
	d2.M = 100
	d2.MustSeal()
	if d2.UnitLengths() {
		t.Fatal("length 5 present, should not be unit")
	}
}

func TestDenseUnsealedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic using UnitLengths before Seal")
		}
	}()
	NewDense(3).UnitLengths()
}

func TestAggregationString(t *testing.T) {
	if SumDistances.String() != "sum" || MaxDistance.String() != "max" {
		t.Fatal("aggregation names wrong")
	}
	if Aggregation(99).String() == "" {
		t.Fatal("unknown aggregation should still render")
	}
}

func TestDenseDiagonalUntouched(t *testing.T) {
	d := NewDense(3)
	for i := 0; i < 3; i++ {
		if d.Weights[i][i] != 0 || d.Costs[i][i] != 0 || d.Lengths[i][i] != 0 {
			t.Fatal("diagonal entries should be zero")
		}
	}
}
