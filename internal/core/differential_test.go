package core

import (
	"context"
	"encoding/json"
	"math/rand"
	"testing"
)

// referenceEnumerate replays the full odometer scan through the retained
// non-incremental reference path: every profile is checked from scratch
// with IsEquilibrium (fresh graph realization, fresh NewOracle per node,
// LowerBound skip + full BestExact). It shares no code with the
// incremental EvalScratch/HasImprovement engine beyond the Oracle row
// semantics, so agreement between the two is evidence, not tautology.
func referenceEnumerate(t *testing.T, spec Spec, agg Aggregation, ss *SearchSpace) *NEResult {
	t.Helper()
	n := spec.N()
	idx := make([]int, n)
	res := &NEResult{Complete: true}
	for {
		p := make(Profile, n)
		for u := range p {
			p[u] = ss.PerNode[u][idx[u]]
		}
		res.Checked++
		stable, err := IsEquilibrium(spec, p, agg)
		if err != nil {
			t.Fatalf("reference IsEquilibrium: %v", err)
		}
		if stable {
			res.Equilibria = append(res.Equilibria, p.Clone())
		}
		u := n - 1
		for u >= 0 {
			idx[u]++
			if idx[u] < len(ss.PerNode[u]) {
				break
			}
			idx[u] = 0
			u--
		}
		if u < 0 {
			return res
		}
	}
}

// randomDense draws a general game: weights may be zero (exercising
// support compression), costs and budgets vary, and with probability 1/2
// the lengths are non-unit (exercising the Dijkstra path).
func randomDense(rng *rand.Rand, n int) *Dense {
	d := NewDense(n)
	nonUnit := rng.Intn(2) == 1
	for u := 0; u < n; u++ {
		d.Budgets[u] = int64(1 + rng.Intn(3))
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			d.Weights[u][v] = int64(rng.Intn(4)) // 0 allowed
			d.Costs[u][v] = int64(1 + rng.Intn(3))
			if nonUnit {
				d.Lengths[u][v] = int64(1 + rng.Intn(3))
			}
		}
	}
	// Default M = n²+n+1 exceeds n·maxLen = 3n for every n ≥ 2.
	return d.MustSeal()
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

// TestDifferentialEnumerate cross-checks the incremental scan (cached
// oracles + pruned HasImprovement) against the reference path on random
// games, demanding byte-identical NEResult JSON.
func TestDifferentialEnumerate(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 12; trial++ {
		var spec Spec
		if trial%4 == 0 {
			spec = MustUniform(3+trial%2, 1+trial%2)
		} else {
			spec = randomDense(rng, 3+rng.Intn(2))
		}
		for _, agg := range []Aggregation{SumDistances, MaxDistance} {
			ss, err := FullSpace(spec, 0)
			if err != nil {
				t.Fatalf("trial %d: FullSpace: %v", trial, err)
			}
			got, err := EnumeratePureNEOpts(spec, agg, ss, EnumConfig{})
			if err != nil {
				t.Fatalf("trial %d: enumerate: %v", trial, err)
			}
			want := referenceEnumerate(t, spec, agg, ss)
			if g, w := mustJSON(t, got), mustJSON(t, want); g != w {
				t.Fatalf("trial %d agg %d: incremental scan diverged from reference\n got: %s\nwant: %s", trial, agg, g, w)
			}
		}
	}
}

// TestDifferentialParallel demands the parallel partitioned scan return
// byte-identical JSON to the serial incremental scan (which itself is
// reference-checked above).
func TestDifferentialParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 6; trial++ {
		spec := randomDense(rng, 4)
		ss, err := FullSpace(spec, 0)
		if err != nil {
			t.Fatalf("FullSpace: %v", err)
		}
		serial, err := EnumeratePureNEOpts(spec, SumDistances, ss, EnumConfig{})
		if err != nil {
			t.Fatalf("serial: %v", err)
		}
		par, err := EnumeratePureNEParallelOpts(spec, SumDistances, ss, EnumConfig{Workers: 4})
		if err != nil {
			t.Fatalf("parallel: %v", err)
		}
		if g, w := mustJSON(t, par), mustJSON(t, serial); g != w {
			t.Fatalf("trial %d: parallel diverged from serial\n got: %s\nwant: %s", trial, g, w)
		}
	}
}

// TestDifferentialResume interrupts the incremental scan mid-stream — once
// by context cancellation, then by profile budgets — and resumes until
// complete, demanding the final result be byte-identical to the
// uninterrupted run (which is itself reference-checked). This pins the
// interaction between the oracle cache and checkpoint/resume: a resumed
// scan starts with a cold cache mid-odometer and must still produce the
// same verdicts.
func TestDifferentialResume(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 6; trial++ {
		spec := randomDense(rng, 4)
		ss, err := FullSpace(spec, 0)
		if err != nil {
			t.Fatalf("FullSpace: %v", err)
		}
		full, err := EnumeratePureNEOpts(spec, SumDistances, ss, EnumConfig{})
		if err != nil {
			t.Fatalf("uninterrupted: %v", err)
		}
		want := mustJSON(t, full)

		// Leg 1: cancel via context after the first checkpoint fires.
		ctx, cancel := context.WithCancel(context.Background())
		res, err := EnumeratePureNEOpts(spec, SumDistances, ss, EnumConfig{
			Ctx:             ctx,
			CheckEvery:      8,
			CheckpointEvery: 32,
			OnCheckpoint:    func(*EnumCheckpoint) { cancel() },
		})
		cancel()
		if err != nil {
			t.Fatalf("leg 1: %v", err)
		}
		legs := 1
		// Later legs: small profile budgets until the scan completes.
		for !res.Complete && res.Resume != nil {
			if legs++; legs > 10000 {
				t.Fatal("resume loop did not terminate")
			}
			res, err = EnumeratePureNEOpts(spec, SumDistances, ss, EnumConfig{
				MaxProfiles: res.Checked + 64,
				Resume:      res.Resume,
			})
			if err != nil {
				t.Fatalf("leg %d: %v", legs, err)
			}
		}
		if !res.Complete {
			t.Fatalf("trial %d: scan never completed (status %v)", trial, res.Status)
		}
		if got := mustJSON(t, res); got != want {
			t.Fatalf("trial %d (%d legs): resumed scan diverged from uninterrupted\n got: %s\nwant: %s", trial, legs, got, want)
		}
	}
}
