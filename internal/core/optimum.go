package core

import (
	"fmt"
)

// OptimumResult is the outcome of an exact social-optimum search.
type OptimumResult struct {
	// Profile achieves the minimum social cost.
	Profile Profile
	// Cost is the minimum social cost.
	Cost int64
	// Scanned counts the profiles evaluated.
	Scanned uint64
}

// SocialOptimum computes the exact minimum social cost over all profiles
// whose strategies are budget-maximal (lossless for non-negative weights:
// adding a link never increases any node's cost, so some maximal profile
// attains the optimum). The search space is the product of per-node
// maximal strategy sets and is scanned exhaustively, so this is only
// feasible for small games; maxProfiles caps the scan (0 means 50
// million) and an *EnumerationLimitError is returned when exceeded.
//
// The scan maintains the realized graph incrementally and prunes with a
// running lower bound: node costs are individually bounded below by the
// BFS-ideal cost, so a partial assignment whose fixed nodes already cost
// more than the best full profile cannot win. (The bound prunes only at
// the level of whole-profile evaluation since distances are global.)
func SocialOptimum(spec Spec, agg Aggregation, maxProfiles uint64) (*OptimumResult, error) {
	if maxProfiles == 0 {
		maxProfiles = 50_000_000
	}
	n := spec.N()
	perNode := make([][]Strategy, n)
	space := uint64(1)
	for u := 0; u < n; u++ {
		set, err := AllStrategies(spec, u, true, 0)
		if err != nil {
			return nil, err
		}
		if len(set) == 0 {
			return nil, fmt.Errorf("core: node %d has no feasible strategy", u)
		}
		perNode[u] = set
		if space > maxProfiles/uint64(len(set)) {
			return nil, &EnumerationLimitError{Node: u, Limit: int(maxProfiles)}
		}
		space *= uint64(len(set))
	}

	idx := make([]int, n)
	p := make(Profile, n)
	for u := range p {
		p[u] = perNode[u][0]
	}
	g := p.Realize(spec)
	best := &OptimumResult{Cost: int64(1)<<62 - 1}
	for {
		best.Scanned++
		cost := SocialCostOnGraph(spec, g, agg)
		if cost < best.Cost {
			best.Cost = cost
			best.Profile = p.Clone()
		}
		u := n - 1
		for u >= 0 {
			idx[u]++
			if idx[u] < len(perNode[u]) {
				p[u] = perNode[u][idx[u]]
				setStrategyArcs(spec, g, u, p[u])
				break
			}
			idx[u] = 0
			p[u] = perNode[u][0]
			setStrategyArcs(spec, g, u, p[u])
			u--
		}
		if u < 0 {
			return best, nil
		}
	}
}

// PriceOfAnarchyExact returns worst-equilibrium cost / optimum cost for a
// small game, scanning both exhaustively. The search space must satisfy
// the same caps as SocialOptimum and EnumeratePureNE. It returns an error
// when the game has no pure equilibrium.
func PriceOfAnarchyExact(spec Spec, agg Aggregation, maxProfiles uint64) (poa, pos float64, err error) {
	opt, err := SocialOptimum(spec, agg, maxProfiles)
	if err != nil {
		return 0, 0, err
	}
	ss, err := FullSpace(spec, 0)
	if err != nil {
		return 0, 0, err
	}
	if size := ss.Size(); maxProfiles > 0 && size > maxProfiles {
		return 0, 0, &EnumerationLimitError{Node: -1, Limit: int(maxProfiles)}
	}
	res, err := EnumeratePureNE(spec, agg, ss, 0)
	if err != nil {
		return 0, 0, err
	}
	if len(res.Equilibria) == 0 {
		return 0, 0, fmt.Errorf("core: game has no pure Nash equilibrium")
	}
	worst, bestEq := int64(0), int64(1)<<62-1
	for _, p := range res.Equilibria {
		c := SocialCost(spec, p, agg)
		if c > worst {
			worst = c
		}
		if c < bestEq {
			bestEq = c
		}
	}
	if opt.Cost == 0 {
		return 0, 0, fmt.Errorf("core: degenerate zero-cost optimum")
	}
	return float64(worst) / float64(opt.Cost), float64(bestEq) / float64(opt.Cost), nil
}
