package core

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	spec := MustUniform(8, 2)
	for trial := 0; trial < 20; trial++ {
		p := randomProfile(rng, 8, 2)
		serial, err := FindDeviation(spec, p, SumDistances, Options{})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := FindDeviationParallel(context.Background(), spec, p, SumDistances,
			ParallelOptions{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if (serial == nil) != (parallel == nil) {
			t.Fatalf("trial %d: serial %+v, parallel %+v", trial, serial, parallel)
		}
		if serial != nil {
			if serial.Node != parallel.Node {
				t.Fatalf("trial %d: deviating node %d vs %d", trial, serial.Node, parallel.Node)
			}
			if serial.NewCost != parallel.NewCost {
				t.Fatalf("trial %d: deviation cost %d vs %d", trial, serial.NewCost, parallel.NewCost)
			}
		}
	}
}

func TestParallelStableGraph(t *testing.T) {
	spec := MustUniform(10, 1)
	stable, err := IsEquilibriumParallel(context.Background(), spec, ringProfile(10), SumDistances, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !stable {
		t.Fatal("ring should be stable")
	}
}

func TestParallelDefaultWorkers(t *testing.T) {
	spec := MustUniform(6, 1)
	dev, err := FindDeviationParallel(context.Background(), spec, NewEmptyProfile(6), SumDistances,
		ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if dev == nil {
		t.Fatal("empty profile must have a deviation")
	}
	if dev.Node != 0 {
		t.Fatalf("lowest deviating node should be 0, got %d", dev.Node)
	}
}

func TestParallelCancellation(t *testing.T) {
	spec := MustUniform(12, 3)
	rng := rand.New(rand.NewSource(132))
	p := randomProfile(rng, 12, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before starting
	_, err := FindDeviationParallel(ctx, spec, p, SumDistances, ParallelOptions{Workers: 2})
	if err == nil {
		// A very fast machine may complete the scan despite cancellation
		// racing the first send; retry with a deadline in the past to make
		// the cancellation deterministic.
		ctx2, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
		defer cancel2()
		if _, err2 := FindDeviationParallel(ctx2, spec, p, SumDistances, ParallelOptions{Workers: 1}); err2 == nil {
			t.Skip("scan completed before cancellation could take effect")
		}
	}
}

func TestParallelRace(t *testing.T) {
	// Exercised under -race in CI-style runs: concurrent scans over the
	// same spec and overlapping profiles must be data-race free.
	spec := MustUniform(7, 2)
	rng := rand.New(rand.NewSource(133))
	p := randomProfile(rng, 7, 2)
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, err := FindDeviationParallel(context.Background(), spec, p, SumDistances,
				ParallelOptions{Workers: 3})
			done <- err
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
