package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"bbc/internal/obs"
)

// ParallelOptions extends Options with a worker count for the concurrent
// stability checker.
type ParallelOptions struct {
	Options
	// Workers is the number of concurrent oracle builders; 0 means
	// runtime.NumCPU().
	Workers int
}

func (o ParallelOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

// FindDeviationParallel is FindDeviation with the per-node checks fanned
// out over a worker pool. Node deviation checks are independent (each
// builds its own oracle against the shared immutable realized graph), so
// the scan parallelizes cleanly; the lowest-indexed deviating node is
// returned to keep the result deterministic and identical to the serial
// scan.
func FindDeviationParallel(ctx context.Context, spec Spec, p Profile, agg Aggregation, opts ParallelOptions) (*Deviation, error) {
	obs.Global().Inc(obs.MStabilityChecks)
	n := spec.N()
	g := p.Realize(spec)

	type result struct {
		node int
		dev  *Deviation
		err  error
	}
	jobs := make(chan int)
	results := make(chan result)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	for w := 0; w < opts.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reg := obs.Global()
			for u := range jobs {
				reg.Inc(obs.MWorkerTasks)
				t0 := reg.Started()
				dev, err := NodeDeviation(spec, g, p, u, agg, opts.Options)
				reg.ElapsedSince(obs.MWorkerBusyNanos, t0)
				select {
				case results <- result{node: u, dev: dev, err: err}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for u := 0; u < n; u++ {
			select {
			case jobs <- u:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	var (
		firstDev *Deviation
		firstErr error
		received int
	)
	for r := range results {
		received++
		if r.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("core: node %d: %w", r.node, r.err)
			cancel()
		}
		if r.dev != nil && (firstDev == nil || r.dev.Node < firstDev.Node) {
			firstDev = r.dev
		}
		if received == n {
			break
		}
	}
	cancel()
	// Drain any stragglers so the workers can exit.
	for range results {
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if received < n {
		// The scan was cut short by parent-context cancellation.
		return nil, fmt.Errorf("core: parallel stability scan incomplete: %w", ctx.Err())
	}
	return firstDev, nil
}

// IsEquilibriumParallel is the concurrent variant of IsEquilibrium.
func IsEquilibriumParallel(ctx context.Context, spec Spec, p Profile, agg Aggregation, workers int) (bool, error) {
	dev, err := FindDeviationParallel(ctx, spec, p, agg, ParallelOptions{Workers: workers})
	if err != nil {
		return false, err
	}
	return dev == nil, nil
}
