package core

import (
	"context"
	"encoding/json"
	"math/rand"
	"testing"
)

// roundTripCheckpoint serializes and re-parses a checkpoint, as persisting
// it through runctl.Store would.
func roundTripCheckpoint(t *testing.T, cp *EnumCheckpoint) *EnumCheckpoint {
	t.Helper()
	b, err := json.Marshal(cp)
	if err != nil {
		t.Fatalf("marshal checkpoint: %v", err)
	}
	out := &EnumCheckpoint{}
	if err := json.Unmarshal(b, out); err != nil {
		t.Fatalf("unmarshal checkpoint: %v", err)
	}
	return out
}

// randomSymmetricDense draws a unit-length dense game with a built-in
// automorphism: nodes pair up as u ↔ u+m (n = 2m) and every matrix entry
// is mirrored under that involution, so swapping the halves preserves the
// spec while the entries within a half stay adversarially random.
func randomSymmetricDense(rng *rand.Rand, m int) (*Dense, []int) {
	n := 2 * m
	d := NewDense(n)
	mirror := func(x int) int { return (x + m) % n }
	for u := 0; u < m; u++ {
		d.Budgets[u] = int64(1 + rng.Intn(2))
		d.Budgets[mirror(u)] = d.Budgets[u]
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			w := int64(rng.Intn(3))
			c := int64(1 + rng.Intn(2))
			d.Weights[u][v] = w
			d.Costs[u][v] = c
			d.Weights[mirror(u)][mirror(v)] = w
			d.Costs[mirror(u)][mirror(v)] = c
		}
	}
	perm := make([]int, n)
	for u := range perm {
		perm[u] = mirror(u)
	}
	return d.MustSeal(), perm
}

// translationPerms returns the cyclic shift permutations u ↦ u+t of the
// n-player uniform game — the structural subgroup that replaces the
// intractable full Sₙ automorphism group.
func translationPerms(n int) [][]int {
	var out [][]int
	for t := 1; t < n; t++ {
		p := make([]int, n)
		for u := range p {
			p[u] = (u + t) % n
		}
		out = append(out, p)
	}
	return out
}

func TestNewQuotientValidation(t *testing.T) {
	spec := MustUniform(4, 1)
	ss, err := FullSpace(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewQuotient(spec, ss, [][]int{{0, 1}}); err == nil {
		t.Error("wrong-length generator accepted")
	}
	if _, err := NewQuotient(spec, ss, [][]int{{0, 0, 1, 2}}); err == nil {
		t.Error("non-permutation accepted")
	}
	rng := rand.New(rand.NewSource(3))
	dense := randomDense(rng, 4)
	dss, err := FullSpace(dense, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewQuotient(dense, dss, [][]int{{1, 0, 2, 3}}); err == nil {
		t.Error("spec-breaking permutation accepted for an asymmetric game")
	}
	q, err := NewQuotient(spec, ss, translationPerms(4))
	if err != nil {
		t.Fatalf("translations rejected: %v", err)
	}
	if q.Order() != 4 {
		t.Errorf("Z_4 translation group has order %d, want 4", q.Order())
	}
	fp := EnumFingerprint(spec, SumDistances, ss)
	if qfp := q.QualifyFingerprint(fp); qfp == fp {
		t.Error("qualified fingerprint equals the plain fingerprint")
	}
}

func TestSpecAutomorphismsOverflow(t *testing.T) {
	// The uniform game is fully symmetric: Aut = Sₙ, far beyond any useful
	// quotient. The enumerator must refuse rather than hand back a group
	// whose canonicality test costs more than it saves.
	if _, err := SpecAutomorphisms(MustUniform(6, 1), 100); err == nil {
		t.Fatal("S_6 (720 elements) not rejected at cap 100")
	}
	// An asymmetric random game has only the identity.
	rng := rand.New(rand.NewSource(5))
	perms, err := SpecAutomorphisms(randomDense(rng, 5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(perms) != 1 {
		t.Errorf("asymmetric game has %d automorphisms, want 1 (identity)", len(perms))
	}
}

func TestSpecAutomorphismsFindsMirror(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	spec, mirror := randomSymmetricDense(rng, 3)
	perms, err := SpecAutomorphisms(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range perms {
		if intsEqual(p, mirror) {
			found = true
		}
	}
	if !found {
		t.Fatalf("mirror involution %v not among %d discovered automorphisms", mirror, len(perms))
	}
}

// TestDifferentialQuotient cross-checks quotiented scans against the plain
// incremental scan (itself reference-checked by TestDifferentialEnumerate)
// on random mirror-symmetric games and translation-quotiented uniform
// games, for both aggregations, demanding byte-identical NEResult JSON.
func TestDifferentialQuotient(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 8; trial++ {
		var (
			spec Spec
			gens [][]int
		)
		if trial%2 == 0 {
			spec = MustUniform(4+trial%3, 1)
			gens = translationPerms(spec.N())
		} else {
			spec, _ = randomSymmetricDense(rng, 2+rng.Intn(2))
			var err error
			gens, err = SpecAutomorphisms(spec, 0)
			if err != nil {
				t.Fatalf("trial %d: SpecAutomorphisms: %v", trial, err)
			}
		}
		ss, err := FullSpace(spec, 0)
		if err != nil {
			t.Fatalf("trial %d: FullSpace: %v", trial, err)
		}
		q, err := NewQuotient(spec, ss, gens)
		if err != nil {
			t.Fatalf("trial %d: NewQuotient: %v", trial, err)
		}
		if q.Order() < 2 {
			t.Fatalf("trial %d: trivial group", trial)
		}
		for _, agg := range []Aggregation{SumDistances, MaxDistance} {
			plain, err := EnumeratePureNEOpts(spec, agg, ss, EnumConfig{})
			if err != nil {
				t.Fatalf("trial %d: plain: %v", trial, err)
			}
			quot, err := EnumeratePureNEOpts(spec, agg, ss, EnumConfig{Quotient: q})
			if err != nil {
				t.Fatalf("trial %d: quotient: %v", trial, err)
			}
			if g, w := mustJSON(t, quot), mustJSON(t, plain); g != w {
				t.Fatalf("trial %d agg %d (group order %d): quotient scan diverged\n got: %s\nwant: %s",
					trial, agg, q.Order(), g, w)
			}
		}
	}
}

// TestDifferentialQuotientParallel runs the partitioned scan under a
// quotient and demands byte-identity with the plain serial scan.
func TestDifferentialQuotientParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 5; trial++ {
		spec, _ := randomSymmetricDense(rng, 2)
		gens, err := SpecAutomorphisms(spec, 0)
		if err != nil {
			t.Fatal(err)
		}
		ss, err := FullSpace(spec, 0)
		if err != nil {
			t.Fatal(err)
		}
		q, err := NewQuotient(spec, ss, gens)
		if err != nil {
			t.Fatal(err)
		}
		for _, agg := range []Aggregation{SumDistances, MaxDistance} {
			plain, err := EnumeratePureNEOpts(spec, agg, ss, EnumConfig{})
			if err != nil {
				t.Fatal(err)
			}
			par, err := EnumeratePureNEParallelOpts(spec, agg, ss, EnumConfig{Quotient: q, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if g, w := mustJSON(t, par), mustJSON(t, plain); g != w {
				t.Fatalf("trial %d agg %d: parallel quotient diverged\n got: %s\nwant: %s", trial, agg, g, w)
			}
		}
	}
}

// TestDifferentialQuotientResume interrupts a quotiented scan (context
// cancel after the first checkpoint, then repeated profile budgets) and
// resumes to completion: the pending orbit emissions must survive the
// checkpoint round trips for the final result to match the plain scan.
func TestDifferentialQuotientResume(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 5; trial++ {
		spec, _ := randomSymmetricDense(rng, 2)
		gens, err := SpecAutomorphisms(spec, 0)
		if err != nil {
			t.Fatal(err)
		}
		ss, err := FullSpace(spec, 0)
		if err != nil {
			t.Fatal(err)
		}
		q, err := NewQuotient(spec, ss, gens)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := EnumeratePureNEOpts(spec, SumDistances, ss, EnumConfig{})
		if err != nil {
			t.Fatal(err)
		}
		want := mustJSON(t, plain)

		ctx, cancel := context.WithCancel(context.Background())
		res, err := EnumeratePureNEOpts(spec, SumDistances, ss, EnumConfig{
			Quotient:        q,
			Ctx:             ctx,
			CheckEvery:      8,
			CheckpointEvery: 16,
			OnCheckpoint:    func(*EnumCheckpoint) { cancel() },
		})
		cancel()
		if err != nil {
			t.Fatalf("leg 1: %v", err)
		}
		legs := 1
		for !res.Complete && res.Resume != nil {
			if legs++; legs > 10000 {
				t.Fatal("resume loop did not terminate")
			}
			// Round-trip the checkpoint through JSON like runctl.Store does,
			// so Pending serialization is on the tested path.
			cp := roundTripCheckpoint(t, res.Resume)
			res, err = EnumeratePureNEOpts(spec, SumDistances, ss, EnumConfig{
				Quotient:    q,
				MaxProfiles: res.Checked + 16,
				Resume:      cp,
			})
			if err != nil {
				t.Fatalf("leg %d: %v", legs, err)
			}
		}
		if !res.Complete {
			t.Fatalf("trial %d: scan never completed (status %v)", trial, res.Status)
		}
		if got := mustJSON(t, res); got != want {
			t.Fatalf("trial %d (%d legs): resumed quotient scan diverged\n got: %s\nwant: %s", trial, legs, got, want)
		}
	}
}

// TestDifferentialScalarVsBatch pins the bit-parallel traversal contract:
// scans with the batch path forced off are byte-identical to the default,
// across random uniform-length games, both aggregations, serial and
// parallel. (Random dense games in TestDifferentialEnumerate already run
// the batch path against the non-incremental reference.)
func TestDifferentialScalarVsBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 6; trial++ {
		var spec Spec
		if trial%2 == 0 {
			spec = MustUniform(4+trial%2, 1+trial%2)
		} else {
			spec, _ = randomSymmetricDense(rng, 2)
		}
		ss, err := FullSpace(spec, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, agg := range []Aggregation{SumDistances, MaxDistance} {
			batch, err := EnumeratePureNEOpts(spec, agg, ss, EnumConfig{})
			if err != nil {
				t.Fatal(err)
			}
			scalar, err := EnumeratePureNEOpts(spec, agg, ss, EnumConfig{DisableBatchBFS: true})
			if err != nil {
				t.Fatal(err)
			}
			if g, w := mustJSON(t, batch), mustJSON(t, scalar); g != w {
				t.Fatalf("trial %d agg %d: batch BFS diverged from scalar\n got: %s\nwant: %s", trial, agg, g, w)
			}
			parScalar, err := EnumeratePureNEParallelOpts(spec, agg, ss, EnumConfig{DisableBatchBFS: true, Workers: 3})
			if err != nil {
				t.Fatal(err)
			}
			if g, w := mustJSON(t, parScalar), mustJSON(t, batch); g != w {
				t.Fatalf("trial %d agg %d: parallel scalar diverged\n got: %s\nwant: %s", trial, agg, g, w)
			}
		}
	}
}

// TestQuotientCheckpointValidation exercises the Pending checks a hostile
// or corrupted checkpoint must fail.
func TestQuotientCheckpointValidation(t *testing.T) {
	spec := MustUniform(4, 1)
	ss, err := FullSpace(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	base := &EnumCheckpoint{Cursor: []int{0, 1, 0, 0}, Checked: 5}
	for name, pend := range map[string][][]int{
		"wrong length":  {{0, 1}},
		"out of range":  {{0, 99, 0, 0}},
		"before cursor": {{0, 0, 0, 0}},
		"not ascending": {{0, 2, 0, 0}, {0, 1, 1, 0}},
		"duplicate":     {{0, 2, 0, 0}, {0, 2, 0, 0}},
	} {
		cp := *base
		cp.Pending = pend
		if _, err := EnumeratePureNEOpts(spec, SumDistances, ss, EnumConfig{Resume: &cp}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// A valid pending entry at the cursor itself must be accepted.
	cp := *base
	cp.Pending = [][]int{{0, 1, 0, 0}, {0, 3, 2, 1}}
	if _, err := EnumeratePureNEOpts(spec, SumDistances, ss, EnumConfig{Resume: &cp, MaxProfiles: 6}); err != nil {
		t.Errorf("valid pending rejected: %v", err)
	}
}
