package core

import (
	"math/rand"
	"testing"
)

func TestGenerateDenseShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	tests := []struct {
		name string
		p    GenerateParams
	}{
		{name: "all uniform", p: GenerateParams{N: 6}},
		{name: "weights only", p: GenerateParams{N: 6, MaxWeight: 4}},
		{name: "weights with support", p: GenerateParams{N: 6, MaxWeight: 3, EnsureSupport: true}},
		{name: "full nonuniform", p: GenerateParams{N: 5, MaxWeight: 3, MaxCost: 2, MaxLength: 4, MaxBudget: 3}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			for trial := 0; trial < 20; trial++ {
				d, err := GenerateDense(rng, tt.p)
				if err != nil {
					t.Fatal(err)
				}
				if d.N() != tt.p.N {
					t.Fatalf("N = %d", d.N())
				}
				for u := 0; u < d.N(); u++ {
					if tt.p.MaxBudget == 0 && d.Budget(u) != 1 {
						t.Fatal("budget should default to 1")
					}
					if tt.p.MaxBudget > 0 && (d.Budget(u) < 1 || d.Budget(u) > tt.p.MaxBudget) {
						t.Fatalf("budget %d out of range", d.Budget(u))
					}
					support := false
					for v := 0; v < d.N(); v++ {
						if u == v {
							continue
						}
						if tt.p.MaxWeight == 0 && d.Weight(u, v) != 1 {
							t.Fatal("weight should default to 1")
						}
						if d.Weight(u, v) > 0 {
							support = true
						}
						if tt.p.MaxCost == 0 && d.LinkCost(u, v) != 1 {
							t.Fatal("cost should default to 1")
						}
						if tt.p.MaxLength == 0 && d.Length(u, v) != 1 {
							t.Fatal("length should default to 1")
						}
					}
					if tt.p.EnsureSupport && !support {
						t.Fatalf("node %d has no positive weight despite EnsureSupport", u)
					}
				}
			}
		})
	}
}

func TestGenerateDenseValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(152))
	if _, err := GenerateDense(rng, GenerateParams{N: 1}); err == nil {
		t.Fatal("expected error for N=1")
	}
}

func TestGenerateDensePenaltyDominates(t *testing.T) {
	rng := rand.New(rand.NewSource(153))
	d, err := GenerateDense(rng, GenerateParams{N: 8, MaxLength: 9})
	if err != nil {
		t.Fatal(err)
	}
	var maxLen int64
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			if u != v && d.Length(u, v) > maxLen {
				maxLen = d.Length(u, v)
			}
		}
	}
	if d.Penalty() <= 8*maxLen {
		t.Fatalf("penalty %d does not dominate n·maxLen = %d", d.Penalty(), 8*maxLen)
	}
}
