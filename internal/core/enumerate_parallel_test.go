package core

import (
	"testing"
)

func TestParallelEnumerationMatchesSerial(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{3, 1}, {4, 1}, {4, 2}} {
		spec := MustUniform(tc.n, tc.k)
		ss, err := FullSpace(spec, 0)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := EnumeratePureNE(spec, SumDistances, ss, 0)
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := EnumeratePureNEParallel(spec, SumDistances, ss, 0, 4)
		if err != nil {
			t.Fatal(err)
		}
		if serial.Checked != parallel.Checked {
			t.Fatalf("(%d,%d): checked %d vs %d", tc.n, tc.k, serial.Checked, parallel.Checked)
		}
		if len(serial.Equilibria) != len(parallel.Equilibria) {
			t.Fatalf("(%d,%d): equilibria %d vs %d", tc.n, tc.k,
				len(serial.Equilibria), len(parallel.Equilibria))
		}
		for i := range serial.Equilibria {
			if !serial.Equilibria[i].Equal(parallel.Equilibria[i]) {
				t.Fatalf("(%d,%d): equilibrium %d differs (order must match serial)", tc.n, tc.k, i)
			}
		}
		if !parallel.Complete {
			t.Fatal("uncapped parallel scan must be complete")
		}
	}
}

func TestParallelEnumerationCap(t *testing.T) {
	spec := MustUniform(4, 1)
	ss, err := FullSpace(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EnumeratePureNEParallel(spec, SumDistances, ss, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Equilibria) != 1 {
		t.Fatalf("cap not honored: %d equilibria", len(res.Equilibria))
	}
}

func TestParallelEnumerationSingleProfileSpace(t *testing.T) {
	spec := MustUniform(3, 1)
	ss := &SearchSpace{PerNode: [][]Strategy{
		{{1}}, {{2}}, {{0}},
	}}
	res, err := EnumeratePureNEParallel(spec, SumDistances, ss, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checked != 1 || len(res.Equilibria) != 1 {
		t.Fatalf("single-profile space: checked=%d equilibria=%d", res.Checked, len(res.Equilibria))
	}
}

func TestParallelEnumerationBadSpace(t *testing.T) {
	spec := MustUniform(3, 1)
	if _, err := EnumeratePureNEParallel(spec, SumDistances,
		&SearchSpace{PerNode: make([][]Strategy, 2)}, 0, 2); err == nil {
		t.Fatal("expected error for wrong node count")
	}
	if _, err := EnumeratePureNEParallel(spec, SumDistances,
		&SearchSpace{PerNode: make([][]Strategy, 3)}, 0, 2); err == nil {
		t.Fatal("expected error for empty sets")
	}
}
