package core

import (
	"testing"

	"bbc/internal/obs"
)

// Allocation regression tests: the incremental evaluation engine promises
// zero steady-state heap allocation. These tests pin that contract with
// testing.AllocsPerRun so a regression (an accidental closure, boxing, or
// fresh slice on the hot path) fails CI rather than silently eroding the
// recorded benchmark trajectory. Budgets:
//
//	Oracle.Evaluate        0 allocs/op  (fold into reused min-vector)
//	Oracle.HasImprovement  0 allocs/op  (shared undo stack, suffix bounds)
//	EvalScratch.OracleFor  0 allocs/op  on both cache hits and warm rebuilds
//	profileStable          0 allocs/op  on a warm scratch
//
// The obs registry is forced off: observation cost is measured separately
// and a process-global registry would make these budgets depend on test
// order.
func withObsOff(t *testing.T) {
	t.Helper()
	prev := obs.SetGlobal(nil)
	t.Cleanup(func() { obs.SetGlobal(prev) })
}

// allocFixture builds a warm scratch over a mid-sized uniform game.
func allocFixture(t *testing.T) (*EvalScratch, Profile, []int) {
	t.Helper()
	spec := MustUniform(8, 2)
	p := NewEmptyProfile(8)
	for u := 0; u < 8; u++ {
		p[u] = NormalizeStrategy([]int{(u + 1) % 8, (u + 3) % 8})
	}
	if err := p.Validate(spec); err != nil {
		t.Fatalf("fixture profile: %v", err)
	}
	g := p.Realize(spec)
	es := NewEvalScratch()
	es.Bind(spec, g, SumDistances)
	order := make([]int, 8)
	for i := range order {
		order[i] = i
	}
	// Warm every per-node slot so steady state is measured, not first use.
	for u := 0; u < 8; u++ {
		es.OracleFor(u)
	}
	return es, p, order
}

func TestEvaluateAllocFree(t *testing.T) {
	withObsOff(t)
	es, p, _ := allocFixture(t)
	o := es.OracleFor(3)
	if got := testing.AllocsPerRun(200, func() { o.Evaluate(p[3]) }); got != 0 {
		t.Errorf("Oracle.Evaluate allocates %v/op, want 0", got)
	}
}

func TestHasImprovementAllocFree(t *testing.T) {
	withObsOff(t)
	es, p, _ := allocFixture(t)
	o := es.OracleFor(3)
	cur := o.Evaluate(p[3])
	if got := testing.AllocsPerRun(200, func() { o.HasImprovement(cur) }); got != 0 {
		t.Errorf("Oracle.HasImprovement allocates %v/op, want 0", got)
	}
}

func TestOracleForAllocFree(t *testing.T) {
	withObsOff(t)
	es, _, _ := allocFixture(t)
	// Cache-hit path: nothing rewired between queries.
	if got := testing.AllocsPerRun(200, func() { es.OracleFor(5) }); got != 0 {
		t.Errorf("EvalScratch.OracleFor (cache hit) allocates %v/op, want 0", got)
	}
	// Rebuild path: invalidate node 5's oracle each run by rewiring
	// another node (the graph itself is unchanged — version bumps alone
	// force the rebuild).
	if got := testing.AllocsPerRun(200, func() {
		es.NoteRewire(2)
		es.OracleFor(5)
	}); got != 0 {
		t.Errorf("EvalScratch.OracleFor (warm rebuild) allocates %v/op, want 0", got)
	}
}

// TestOracleBatchBuildAllocFree pins the bit-parallel rebuild path
// explicitly (the uniform fixture takes it by default) and its scalar
// fallback: switching SetBatchBFS must not change the zero-alloc contract
// in either direction.
func TestOracleBatchBuildAllocFree(t *testing.T) {
	withObsOff(t)
	for _, mode := range []struct {
		name  string
		batch bool
	}{{"batch", true}, {"scalar", false}} {
		t.Run(mode.name, func(t *testing.T) {
			es, _, _ := allocFixture(t)
			es.SetBatchBFS(mode.batch)
			es.NoteRewire(2)
			es.OracleFor(5) // warm the selected traversal path
			if got := testing.AllocsPerRun(200, func() {
				es.NoteRewire(2)
				es.OracleFor(5)
			}); got != 0 {
				t.Errorf("%s rebuild allocates %v/op, want 0", mode.name, got)
			}
		})
	}
}

func TestProfileStableAllocFree(t *testing.T) {
	withObsOff(t)
	es, p, order := allocFixture(t)
	profileStable(es, p, order, -1) // warm every oracle in check order
	if got := testing.AllocsPerRun(200, func() { profileStable(es, p, order, -1) }); got != 0 {
		t.Errorf("profileStable on a warm scratch allocates %v/op, want 0", got)
	}
}
