package core

import (
	"fmt"
	"sort"
	"strings"

	"bbc/internal/graph"
)

// Strategy is the set of link targets a node buys, sorted ascending with no
// duplicates. The empty strategy (buying nothing) is always feasible since
// the budget constraint is an upper bound.
type Strategy []int

// NormalizeStrategy sorts and deduplicates targets.
func NormalizeStrategy(targets []int) Strategy {
	s := append(Strategy(nil), targets...)
	sort.Ints(s)
	out := s[:0]
	for i, t := range s {
		if i == 0 || t != s[i-1] {
			out = append(out, t)
		}
	}
	return out
}

// Equal reports whether two normalized strategies are identical.
func (s Strategy) Equal(t Strategy) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Contains reports whether the strategy buys a link to v.
func (s Strategy) Contains(v int) bool {
	i := sort.SearchInts(s, v)
	return i < len(s) && s[i] == v
}

// TotalCost returns the link-purchase cost of the strategy for node u.
func (s Strategy) TotalCost(spec Spec, u int) int64 {
	var total int64
	for _, v := range s {
		total += spec.LinkCost(u, v)
	}
	return total
}

// Profile is a full strategy selection S = {S_u}. Profile[u] must be a
// normalized Strategy.
type Profile []Strategy

// NewEmptyProfile returns the profile in which no node buys any link.
func NewEmptyProfile(n int) Profile {
	return make(Profile, n)
}

// Clone deep-copies the profile.
func (p Profile) Clone() Profile {
	c := make(Profile, len(p))
	for u, s := range p {
		c[u] = append(Strategy(nil), s...)
	}
	return c
}

// Equal reports whether two profiles buy exactly the same links.
func (p Profile) Equal(q Profile) bool {
	if len(p) != len(q) {
		return false
	}
	for u := range p {
		if !p[u].Equal(q[u]) {
			return false
		}
	}
	return true
}

// Validate checks that every strategy is normalized, in range, self-free
// and within budget for the given spec.
func (p Profile) Validate(spec Spec) error {
	n := spec.N()
	if len(p) != n {
		return fmt.Errorf("core: profile has %d strategies, want %d", len(p), n)
	}
	for u, s := range p {
		prev := -1
		for _, v := range s {
			if v < 0 || v >= n {
				return fmt.Errorf("core: node %d buys link to out-of-range node %d", u, v)
			}
			if v == u {
				return fmt.Errorf("core: node %d buys a self link", u)
			}
			if v <= prev {
				return fmt.Errorf("core: node %d strategy not sorted/deduplicated: %v", u, s)
			}
			prev = v
		}
		if cost := s.TotalCost(spec, u); cost > spec.Budget(u) {
			return fmt.Errorf("core: node %d spends %d, budget %d", u, cost, spec.Budget(u))
		}
	}
	return nil
}

// Realize builds the directed graph G(S) formed by the profile, with arc
// lengths taken from the spec.
func (p Profile) Realize(spec Spec) *graph.Digraph {
	g := graph.New(spec.N())
	for u, s := range p {
		for _, v := range s {
			g.AddArc(u, v, spec.Length(u, v))
		}
	}
	return g
}

// Key returns a canonical string encoding of the profile, usable as a map
// key for configuration-space exploration and loop detection.
func (p Profile) Key() string {
	var b strings.Builder
	for u, s := range p {
		if u > 0 {
			b.WriteByte('|')
		}
		for i, v := range s {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", v)
		}
	}
	return b.String()
}

// FromGraph extracts the profile implied by a digraph (each node's strategy
// is its distinct target set). Arc lengths are discarded; they are
// reconstructed from the spec on Realize.
func FromGraph(g *graph.Digraph) Profile {
	p := make(Profile, g.N())
	for u := range p {
		p[u] = Strategy(g.Targets(u))
	}
	return p
}

// String renders the profile compactly, e.g. "0→{1,2} 1→{} 2→{0}".
func (p Profile) String() string {
	var b strings.Builder
	for u, s := range p {
		if u > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d→{", u)
		for i, v := range s {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", v)
		}
		b.WriteByte('}')
	}
	return b.String()
}
