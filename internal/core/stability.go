package core

import (
	"fmt"

	"bbc/internal/graph"
	"bbc/internal/obs"
)

// Method selects the best-response oracle implementation.
type Method int

const (
	// Exact enumerates all maximal feasible strategies (may be exponential;
	// bounded by Options.EnumLimit).
	Exact Method = iota + 1
	// Greedy uses marginal-gain link addition.
	Greedy
	// GreedySwap runs greedy followed by 1-swap local search.
	GreedySwap
)

// Options tunes best-response and stability computations.
type Options struct {
	// Method picks the oracle; the zero value means Exact.
	Method Method
	// EnumLimit caps the number of strategies Exact examines per node;
	// 0 means unlimited.
	EnumLimit int
	// SwapRounds bounds GreedySwap's local search; 0 means 50.
	SwapRounds int
}

func (o Options) method() Method {
	if o.Method == 0 {
		return Exact
	}
	return o.Method
}

func (o Options) swapRounds() int {
	if o.SwapRounds == 0 {
		return 50
	}
	return o.SwapRounds
}

// BestResponse computes node u's best response against the rest of the
// realized graph g, returning the strategy and its cost. With Method
// Exact the result is a true best response; with Greedy/GreedySwap it is a
// heuristic response whose cost is an upper bound.
func BestResponse(spec Spec, g *graph.Digraph, u int, agg Aggregation, opts Options) (Strategy, int64, error) {
	o := NewOracle(spec, g, u, agg)
	return bestFromOracle(o, opts)
}

func bestFromOracle(o *Oracle, opts Options) (Strategy, int64, error) {
	switch opts.method() {
	case Exact:
		return o.BestExact(opts.EnumLimit)
	case Greedy:
		s, c := o.BestGreedy()
		return s, c, nil
	case GreedySwap:
		s, _ := o.BestGreedy()
		s, c := o.ImproveBySwaps(s, opts.swapRounds())
		return s, c, nil
	default:
		return nil, 0, fmt.Errorf("core: unknown best-response method %d", opts.Method)
	}
}

// Deviation describes a strictly improving unilateral move.
type Deviation struct {
	Node     int
	Strategy Strategy
	OldCost  int64
	NewCost  int64
}

// Improvement returns how much the deviation lowers the node's cost.
func (d *Deviation) Improvement() int64 { return d.OldCost - d.NewCost }

// NodeDeviation checks whether node u has a strictly improving deviation
// from profile p (with realized graph g). It returns nil when u is stable.
// The current cost is computed through the same oracle used for the best
// response, so the comparison is exact.
func NodeDeviation(spec Spec, g *graph.Digraph, p Profile, u int, agg Aggregation, opts Options) (*Deviation, error) {
	obs.Global().Inc(obs.MDeviationChecks)
	o := NewOracle(spec, g, u, agg)
	cur := o.Evaluate(p[u])
	if cur == o.LowerBound() {
		return nil, nil // provably optimal, skip enumeration
	}
	best, bestCost, err := bestFromOracle(o, opts)
	if err != nil {
		return nil, err
	}
	if bestCost < cur {
		obs.Global().Inc(obs.MDeviationsFound)
		return &Deviation{Node: u, Strategy: best, OldCost: cur, NewCost: bestCost}, nil
	}
	return nil, nil
}

// FindDeviation scans all nodes and returns the first strictly improving
// deviation, or nil when the profile is a pure Nash equilibrium. Exactness
// of the verdict requires Method Exact (the default); heuristic methods may
// miss deviations.
func FindDeviation(spec Spec, p Profile, agg Aggregation, opts Options) (*Deviation, error) {
	obs.Global().Inc(obs.MStabilityChecks)
	g := p.Realize(spec)
	for u := 0; u < spec.N(); u++ {
		dev, err := NodeDeviation(spec, g, p, u, agg, opts)
		if err != nil {
			return nil, err
		}
		if dev != nil {
			return dev, nil
		}
	}
	return nil, nil
}

// IsEquilibrium reports whether the profile is a pure Nash equilibrium
// (the paper's "stable graph"). It uses the exact oracle.
func IsEquilibrium(spec Spec, p Profile, agg Aggregation) (bool, error) {
	dev, err := FindDeviation(spec, p, agg, Options{Method: Exact})
	if err != nil {
		return false, err
	}
	return dev == nil, nil
}

// MustBeEquilibrium panics when the profile is not stable; used by
// constructions whose stability is a theorem.
func MustBeEquilibrium(spec Spec, p Profile, agg Aggregation) {
	stable, err := IsEquilibrium(spec, p, agg)
	if err != nil {
		panic(err)
	}
	if !stable {
		panic("core: profile expected to be a pure Nash equilibrium is not")
	}
}
