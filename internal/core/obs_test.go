package core

import (
	"context"
	"sync"
	"testing"

	"bbc/internal/obs"
)

// withRegistry installs a fresh global registry for the test and restores
// the previous one afterwards.
func withRegistry(t *testing.T) *obs.Registry {
	t.Helper()
	reg := obs.NewRegistry()
	prev := obs.SetGlobal(reg)
	t.Cleanup(func() { obs.SetGlobal(prev) })
	return reg
}

// TestObsCountersUnderParallelEnumeration hammers the registry from the
// partitioned NE scan's workers and checks the counts reconcile with the
// serial result. Run with -race: this is the instrumentation data-race
// test for the enumeration path.
func TestObsCountersUnderParallelEnumeration(t *testing.T) {
	reg := withRegistry(t)
	spec := MustUniform(5, 1)
	ss, err := FullSpace(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EnumeratePureNEParallel(spec, SumDistances, ss, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Get(obs.MProfilesChecked); got != int64(res.Checked) {
		t.Errorf("profiles counter = %d, enumeration checked %d", got, res.Checked)
	}
	if got := reg.Get(obs.MEquilibriaFound); got != int64(len(res.Equilibria)) {
		t.Errorf("equilibria counter = %d, found %d", got, len(res.Equilibria))
	}
	if got := reg.Get(obs.MStabilityChecks); got != int64(res.Checked) {
		t.Errorf("stability counter = %d, want %d", got, res.Checked)
	}
	if reg.Get(obs.MWorkerTasks) == 0 || reg.Get(obs.MWorkerBusyNanos) == 0 {
		t.Error("worker utilization counters stayed zero during a parallel scan")
	}
	// Uniform-length oracle rebuilds take the bit-parallel path, so the
	// traversal count lands on the batch counters rather than graph.bfs.
	if reg.Get(obs.MBFS)+reg.Get(obs.MBFSBatch) == 0 || reg.Get(obs.MOracleBuild) == 0 {
		t.Error("oracle/BFS counters stayed zero during enumeration")
	}
	if reg.Get(obs.MBFSBatch) > 0 && reg.Get(obs.MBFSBatchSources) == 0 {
		t.Error("batched traversals reported no sources")
	}
}

// TestObsCountersUnderParallelDeviationScan drives FindDeviationParallel
// from several goroutines at once against one shared registry.
func TestObsCountersUnderParallelDeviationScan(t *testing.T) {
	reg := withRegistry(t)
	spec := MustUniform(8, 2)
	p := NewEmptyProfile(8)
	const scans = 6
	var wg sync.WaitGroup
	for i := 0; i < scans; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dev, err := FindDeviationParallel(context.Background(), spec, p, SumDistances, ParallelOptions{Workers: 3})
			if err != nil {
				t.Error(err)
				return
			}
			if dev == nil {
				t.Error("empty profile must have a deviation")
			}
		}()
	}
	wg.Wait()
	// Each scan checks up to n nodes but stops counting reliably at the
	// per-node granularity: every job that ran incremented MWorkerTasks
	// and MDeviationChecks once.
	if tasks := reg.Get(obs.MWorkerTasks); tasks == 0 || tasks > scans*8 {
		t.Errorf("worker tasks = %d, want in (0, %d]", tasks, scans*8)
	}
	if reg.Get(obs.MDeviationChecks) == 0 {
		t.Error("deviation check counter stayed zero")
	}
	if reg.Get(obs.MDeviationsFound) == 0 {
		t.Error("deviations-found counter stayed zero for an unstable profile")
	}
	if got := reg.Get(obs.MStabilityChecks); got != scans {
		t.Errorf("stability checks = %d, want %d", got, scans)
	}
}

// TestEnumerationUnaffectedByRegistry pins that instrumentation does not
// change results: the same scan with and without a registry returns the
// same equilibria.
func TestEnumerationUnaffectedByRegistry(t *testing.T) {
	spec := MustUniform(4, 1)
	ss, err := FullSpace(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	prev := obs.SetGlobal(nil)
	t.Cleanup(func() { obs.SetGlobal(prev) })
	bare, err := EnumeratePureNE(spec, SumDistances, ss, 0)
	if err != nil {
		t.Fatal(err)
	}
	obs.SetGlobal(obs.NewRegistry())
	instrumented, err := EnumeratePureNE(spec, SumDistances, ss, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Checked != instrumented.Checked || len(bare.Equilibria) != len(instrumented.Equilibria) {
		t.Errorf("instrumentation changed results: %d/%d vs %d/%d",
			bare.Checked, len(bare.Equilibria), instrumented.Checked, len(instrumented.Equilibria))
	}
}
