package core

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"bbc/internal/runctl"
)

// ctrlTestSpec returns a small non-uniform game whose full space holds a
// handful of equilibria, so resume tests can compare non-trivial results.
func ctrlTestSpec(t *testing.T) (Spec, *SearchSpace) {
	t.Helper()
	spec := MustUniform(5, 1)
	ss, err := FullSpace(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	return spec, ss
}

// mustEnumerate runs an uninterrupted scan as the ground truth.
func mustEnumerate(t *testing.T, spec Spec, ss *SearchSpace) *NEResult {
	t.Helper()
	ref, err := EnumeratePureNE(spec, SumDistances, ss, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Complete || ref.Status != runctl.StatusComplete {
		t.Fatalf("reference scan incomplete: %+v", ref)
	}
	return ref
}

// TestEnumerateCancelMidScanAndResume is the run-control contract test:
// cancelling mid-enumeration yields a partial NEResult with
// Complete==false and resume state, the partial plus the resumed run
// contain no duplicate equilibria, and the combined result is exactly
// the uninterrupted result.
func TestEnumerateCancelMidScanAndResume(t *testing.T) {
	spec, ss := ctrlTestSpec(t)
	ref := mustEnumerate(t, spec, ss)
	if ref.Checked < 100 {
		t.Fatalf("space too small for a mid-scan cancel: %d profiles", ref.Checked)
	}

	// Cancel from the first checkpoint callback, mid-scan.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var snap *EnumCheckpoint
	partial, err := EnumeratePureNEOpts(spec, SumDistances, ss, EnumConfig{
		Ctx:             ctx,
		CheckEvery:      8,
		CheckpointEvery: 64,
		OnCheckpoint: func(cp *EnumCheckpoint) {
			snap = cp
			cancel()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if partial.Complete || partial.Status != runctl.StatusCancelled {
		t.Fatalf("want cancelled partial result, got complete=%v status=%v", partial.Complete, partial.Status)
	}
	if partial.Resume == nil {
		t.Fatal("cancelled scan carries no resume state")
	}
	if snap == nil {
		t.Fatal("checkpoint callback never fired")
	}
	if partial.Checked == 0 || partial.Checked >= ref.Checked {
		t.Fatalf("implausible partial progress: %d of %d", partial.Checked, ref.Checked)
	}

	// Resume from the returned state; the combination must reproduce the
	// uninterrupted scan exactly: same count, same equilibria, same order.
	rest, err := EnumeratePureNEOpts(spec, SumDistances, ss, EnumConfig{Resume: partial.Resume})
	if err != nil {
		t.Fatal(err)
	}
	if !rest.Complete || rest.Status != runctl.StatusComplete {
		t.Fatalf("resumed scan did not complete: %+v", rest.Status)
	}
	if rest.Checked != ref.Checked {
		t.Errorf("resumed Checked = %d, want %d", rest.Checked, ref.Checked)
	}
	if !reflect.DeepEqual(rest.Equilibria, ref.Equilibria) {
		t.Errorf("resumed equilibria differ from uninterrupted scan:\n got %v\nwant %v",
			rest.Equilibria, ref.Equilibria)
	}
	seen := map[string]bool{}
	for _, eq := range rest.Equilibria {
		key, _ := json.Marshal(eq)
		if seen[string(key)] {
			t.Errorf("duplicate equilibrium after resume: %v", eq)
		}
		seen[string(key)] = true
	}
}

// TestEnumerateCheckpointRoundTripsThroughJSON pins that resume state
// survives the runctl envelope byte-identically, as the CLI persists it.
func TestEnumerateCheckpointRoundTripsThroughJSON(t *testing.T) {
	spec, ss := ctrlTestSpec(t)
	ref := mustEnumerate(t, spec, ss)
	fp := EnumFingerprint(spec, SumDistances, ss)

	partial, err := EnumeratePureNEOpts(spec, SumDistances, ss, EnumConfig{
		MaxProfiles: ref.Checked / 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if partial.Status != runctl.StatusBudget || partial.Resume == nil {
		t.Fatalf("want budget-truncated scan with resume state, got %+v", partial.Status)
	}

	env, err := runctl.NewCheckpoint("enumeration", fp, partial.Status, nil, partial.Resume)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	var loaded runctl.Checkpoint
	if err := json.Unmarshal(raw, &loaded); err != nil {
		t.Fatal(err)
	}
	var cp EnumCheckpoint
	if err := loaded.Decode("enumeration", fp, &cp); err != nil {
		t.Fatal(err)
	}

	rest, err := EnumeratePureNEOpts(spec, SumDistances, ss, EnumConfig{Resume: &cp})
	if err != nil {
		t.Fatal(err)
	}
	if rest.Checked != ref.Checked || !reflect.DeepEqual(rest.Equilibria, ref.Equilibria) {
		t.Errorf("JSON round-tripped resume diverged: checked %d/%d", rest.Checked, ref.Checked)
	}
}

// TestEnumerateParallelResume interrupts a parallel scan with a profile
// budget and resumes it from the partition checkpoint; the merged result
// must match the serial uninterrupted scan exactly.
func TestEnumerateParallelResume(t *testing.T) {
	spec, ss := ctrlTestSpec(t)
	ref := mustEnumerate(t, spec, ss)

	partial, err := EnumeratePureNEParallelOpts(spec, SumDistances, ss, EnumConfig{
		MaxProfiles: ref.Checked / 3,
		Workers:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if partial.Complete {
		t.Fatal("budgeted parallel scan reported complete")
	}
	if partial.Status != runctl.StatusBudget {
		t.Fatalf("want budget status, got %v", partial.Status)
	}
	if partial.Resume == nil {
		t.Fatal("budgeted parallel scan carries no resume state")
	}

	rest, err := EnumeratePureNEParallelOpts(spec, SumDistances, ss, EnumConfig{
		Resume:  partial.Resume,
		Workers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rest.Complete || rest.Status != runctl.StatusComplete {
		t.Fatalf("resumed parallel scan did not complete: %v", rest.Status)
	}
	if rest.Checked != ref.Checked {
		t.Errorf("resumed parallel Checked = %d, want %d", rest.Checked, ref.Checked)
	}
	if !reflect.DeepEqual(rest.Equilibria, ref.Equilibria) {
		t.Errorf("resumed parallel equilibria differ from serial reference")
	}
}

// TestEnumerateResumeModeMismatch pins the loud failure when a serial
// cursor checkpoint meets the parallel scanner and vice versa.
func TestEnumerateResumeModeMismatch(t *testing.T) {
	spec, ss := ctrlTestSpec(t)
	serial, err := EnumeratePureNEOpts(spec, SumDistances, ss, EnumConfig{MaxProfiles: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EnumeratePureNEParallelOpts(spec, SumDistances, ss, EnumConfig{Resume: serial.Resume}); err == nil {
		t.Error("parallel scan accepted a serial cursor checkpoint")
	}
	par, err := EnumeratePureNEParallelOpts(spec, SumDistances, ss, EnumConfig{MaxProfiles: 10, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EnumeratePureNEOpts(spec, SumDistances, ss, EnumConfig{Resume: par.Resume}); err == nil {
		t.Error("serial scan accepted a parallel partition checkpoint")
	}
}

// panicSpec wraps a Spec and panics on the nth Weight call, standing in
// for a fault deep inside a worker's stability check.
type panicSpec struct {
	Spec
	calls atomic.Int64
	at    int64
}

func (p *panicSpec) Weight(u, v int) int64 {
	if p.calls.Add(1) == p.at {
		panic("injected fault")
	}
	return p.Spec.Weight(u, v)
}

// TestEnumerateParallelPanicContainment: a worker panic must surface as
// an error naming the partition, not crash the process.
func TestEnumerateParallelPanicContainment(t *testing.T) {
	base := MustUniform(5, 1)
	ss, err := FullSpace(base, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The oracle caches its spec-derived arrays per node, so Weight is
	// consulted only during each slot's first build: the injection point
	// must sit within the few dozen calls the workers' warm-up builds make.
	spec := &panicSpec{Spec: base, at: 10}
	_, err = EnumeratePureNEParallelOpts(spec, SumDistances, ss, EnumConfig{Workers: 2})
	if err == nil {
		t.Fatal("worker panic did not surface as an error")
	}
	var pe *runctl.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *runctl.PanicError, got %T: %v", err, err)
	}
	if !strings.Contains(pe.Label, "partition") {
		t.Errorf("panic error does not name the partition: %q", pe.Label)
	}
	if !strings.Contains(err.Error(), "injected fault") {
		t.Errorf("panic error lost the cause: %v", err)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic error carries no stack")
	}
}

// TestEnumerateBudgetIsCumulative: resuming with the same MaxProfiles
// grants only the remainder, so budget semantics do not reset across
// resume cycles.
func TestEnumerateBudgetIsCumulative(t *testing.T) {
	spec, ss := ctrlTestSpec(t)
	ref := mustEnumerate(t, spec, ss)
	budget := ref.Checked / 2

	first, err := EnumeratePureNEOpts(spec, SumDistances, ss, EnumConfig{MaxProfiles: budget})
	if err != nil {
		t.Fatal(err)
	}
	if first.Checked != budget {
		t.Fatalf("first leg checked %d, want %d", first.Checked, budget)
	}
	second, err := EnumeratePureNEOpts(spec, SumDistances, ss, EnumConfig{
		MaxProfiles: budget,
		Resume:      first.Resume,
	})
	if err != nil {
		t.Fatal(err)
	}
	if second.Checked != budget {
		t.Errorf("resumed leg with spent budget checked %d profiles, want no further progress (still %d)",
			second.Checked, budget)
	}
	if second.Status != runctl.StatusBudget || second.Complete {
		t.Errorf("spent budget must report budget truncation, got %v", second.Status)
	}
}
