package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// maxQuotientOrder bounds the automorphism groups a Quotient compiles: the
// canonicality test is O(|Γ|·n) per odometer state, so a group too large to
// pay for itself is rejected rather than silently slowing the scan. The
// fully symmetric uniform game (Aut = Sₙ) trips this immediately; such
// instances are quotiented by structural subgroups (translations) instead.
const maxQuotientOrder = 4096

// Quotient is a finite group of spec-preserving player permutations
// compiled against one SearchSpace, ready to canonicalize odometer states
// during enumeration. A permutation π acts on a profile by relabeling
// players and their targets: node π(u) plays {π(v) : v ∈ s(u)}. When π
// preserves the spec (weights, link costs, lengths, budgets) the image
// profile realizes an isomorphic graph with identical per-player costs, so
// stability is orbit-invariant: evaluating one canonical representative
// per orbit and re-expanding decides every member.
//
// The compilation precomputes, per group element, the inverse node map and
// a per-node strategy index table, so the scan-time canonicality test is
// pure table lookups with lexicographic early exit — no allocation, no
// hashing, no strategy materialization.
type Quotient struct {
	n     int
	sets  [][]Strategy // the compiled search space's per-node strategy sets
	perms [][]int      // non-identity group elements (node maps), sorted
	inv   [][]int      // inv[p][j] = the node perms[p] maps to j
	// strat[p][u][si] = index in sets[perms[p][u]] of the image of
	// sets[u][si] under perms[p].
	strat [][][]int32
}

// NewQuotient validates the generator permutations against the spec,
// closes them into a group (bounded by maxQuotientOrder), and compiles the
// group against the search space. Each generator must be a permutation of
// the n players that preserves the spec exactly — Weight, LinkCost, Length
// and Budget must be invariant under relabeling — and must map every
// strategy set of ss onto the image node's strategy set (FullSpace and
// PinnedSpace built from a preserved spec always satisfy this; a hand-
// restricted ss might not, and is rejected rather than miscounted).
func NewQuotient(spec Spec, ss *SearchSpace, gens [][]int) (*Quotient, error) {
	n := spec.N()
	if len(ss.PerNode) != n {
		return nil, fmt.Errorf("core: search space covers %d nodes, spec has %d", len(ss.PerNode), n)
	}
	seen := make([]bool, n)
	for gi, perm := range gens {
		if len(perm) != n {
			return nil, fmt.Errorf("core: generator %d has length %d, want %d", gi, len(perm), n)
		}
		for i := range seen {
			seen[i] = false
		}
		for u, v := range perm {
			if v < 0 || v >= n || seen[v] {
				return nil, fmt.Errorf("core: generator %d is not a permutation (node %d -> %d)", gi, u, v)
			}
			seen[v] = true
		}
		if !specPreserved(spec, perm) {
			return nil, fmt.Errorf("core: generator %d does not preserve the spec", gi)
		}
	}

	// Close the generators into a group. Generators preserve the spec, so
	// every composition does too; only the search-space compatibility of
	// each element still needs checking (done during compilation below).
	elems := [][]int{identityPerm(n)}
	index := map[string]bool{permKey(elems[0]): true}
	for head := 0; head < len(elems); head++ {
		for _, gen := range gens {
			c := composePerm(gen, elems[head])
			k := permKey(c)
			if index[k] {
				continue
			}
			if len(elems) >= maxQuotientOrder {
				return nil, fmt.Errorf("core: automorphism group exceeds %d elements; quotient by a structural subgroup instead", maxQuotientOrder)
			}
			index[k] = true
			elems = append(elems, c)
		}
	}

	q := &Quotient{n: n, sets: ss.PerNode}
	for _, perm := range elems[1:] { // drop the identity
		q.perms = append(q.perms, perm)
	}
	sort.Slice(q.perms, func(a, b int) bool { return lexLessInts(q.perms[a], q.perms[b]) })

	// Per-node strategy index: key each strategy once, then resolve every
	// permuted strategy against the image node's table.
	byKey := make([]map[string]int32, n)
	var sb strings.Builder
	key := func(s Strategy) string {
		sb.Reset()
		for _, v := range s {
			fmt.Fprintf(&sb, "%d,", v)
		}
		return sb.String()
	}
	for u, set := range ss.PerNode {
		byKey[u] = make(map[string]int32, len(set))
		for si, s := range set {
			byKey[u][key(s)] = int32(si)
		}
	}
	img := make([]int, 0, n)
	for _, perm := range q.perms {
		inv := make([]int, n)
		for u, v := range perm {
			inv[v] = u
		}
		q.inv = append(q.inv, inv)
		tab := make([][]int32, n)
		for u, set := range ss.PerNode {
			tab[u] = make([]int32, len(set))
			for si, s := range set {
				img = img[:0]
				for _, v := range s {
					img = append(img, perm[v])
				}
				sort.Ints(img)
				mi, ok := byKey[perm[u]][key(img)]
				if !ok {
					return nil, fmt.Errorf("core: automorphism does not preserve the search space: image of node %d strategy %v is not a strategy of node %d", u, s, perm[u])
				}
				tab[u][si] = mi
			}
		}
		q.strat = append(q.strat, tab)
	}
	return q, nil
}

// Order returns the group order including the identity.
func (q *Quotient) Order() int { return len(q.perms) + 1 }

// QualifyFingerprint appends a quotient qualifier to an enumeration
// fingerprint: a quotiented scan's checkpoints carry pending orbit
// emissions and skip evaluations the plain scan performs, so the two must
// never resume each other. The qualifier hashes the group elements, so
// different groups of equal order also get distinct fingerprints.
func (q *Quotient) QualifyFingerprint(fp string) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, perm := range q.perms {
		for _, v := range perm {
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
		}
	}
	return fmt.Sprintf("%s+q%d-%016x", fp, q.Order(), h.Sum64())
}

// ViewFor binds the quotient to one scan's search space. pivot < 0 is the
// full compiled space (serial scan). pivot >= 0 is a parallel partition:
// ss must equal the compiled space except at the pivot node, whose set is
// the singleton holding compiled strategy index `fixed`. The view is
// scan-private (it carries scratch buffers) — parallel workers get one per
// partition.
func (q *Quotient) ViewFor(ss *SearchSpace, pivot, fixed int) (*quotientView, error) {
	if len(ss.PerNode) != q.n {
		return nil, fmt.Errorf("core: quotient compiled for %d nodes, search space has %d", q.n, len(ss.PerNode))
	}
	for u, set := range ss.PerNode {
		if u == pivot {
			continue
		}
		if !strategySetsEqual(set, q.sets[u]) {
			return nil, fmt.Errorf("core: node %d strategy set differs from the quotient's compiled search space", u)
		}
	}
	if pivot >= 0 {
		if pivot >= q.n {
			return nil, fmt.Errorf("core: pivot %d out of range", pivot)
		}
		if fixed < 0 || fixed >= len(q.sets[pivot]) {
			return nil, fmt.Errorf("core: pivot strategy index %d out of range [0,%d)", fixed, len(q.sets[pivot]))
		}
		set := ss.PerNode[pivot]
		if len(set) != 1 || !strategiesEqual(set[0], q.sets[pivot][fixed]) {
			return nil, fmt.Errorf("core: partition at pivot %d does not hold compiled strategy %d", pivot, fixed)
		}
	}
	return &quotientView{q: q, pivot: pivot, fixed: fixed, gidx: make([]int, q.n), tmp: make([]int, q.n)}, nil
}

// quotientView is a Quotient bound to one (sub-)space scan. For a parallel
// partition it tests canonicality locally: a state is skipped only when a
// lex-smaller orbit member lies in the *same* partition, and orbit images
// are emitted only within the partition — sound (every orbit member's own
// partition emits it exactly once) and merge-order preserving, without any
// cross-partition coordination.
type quotientView struct {
	q     *Quotient
	pivot int // -1 = full space
	fixed int // compiled strategy index pinned at pivot
	gidx  []int
	tmp   []int
}

// globalize copies the scan-local odometer state into the view's global
// index scratch (re-inserting the pinned pivot digit) and returns it.
func (v *quotientView) globalize(idx []int) []int {
	g := v.gidx
	copy(g, idx)
	if v.pivot >= 0 {
		g[v.pivot] = v.fixed
	}
	return g
}

// canonical reports whether the state is its orbit's representative: no
// group element maps it to a lexicographically smaller state within the
// view's partition. It allocates nothing.
func (v *quotientView) canonical(idx []int) bool {
	q := v.q
	g := v.globalize(idx)
	for p := range q.perms {
		inv, strat := q.inv[p], q.strat[p]
		if v.pivot >= 0 {
			pu := inv[v.pivot]
			if int(strat[pu][g[pu]]) != v.fixed {
				continue // image leaves the partition; not this view's concern
			}
		}
		for j := 0; j < q.n; j++ {
			pu := inv[j]
			m := int(strat[pu][g[pu]])
			if m == g[j] {
				continue
			}
			if m < g[j] {
				return false
			}
			break // image is lex-greater; try the next element
		}
		// Image equals the state (a stabilizer element): not smaller.
	}
	return true
}

// refuteLevel is canonical plus a skip certificate: when the state is not
// canonical, level is the deepest *free* odometer position (a digit with
// more than one strategy) that some refuting group element's comparison
// reads — the element maps positions 0..d of the image from digits at
// {inv[0..d]} ∪ {0..d}, and digits at singleton positions are constant, so
// every state agreeing with idx on digits 0..level is refuted by that same
// element. A serial scan may therefore credit and skip the whole suffix
// block at once. The level is minimized over all refuting elements to
// maximize the block. Only full-space views (pivot < 0) may call it: the
// partition-locality pre-check of a pivoted view reads a digit the
// certificate does not cover.
func (v *quotientView) refuteLevel(idx []int) (canonical bool, level int) {
	if v.pivot >= 0 {
		panic("core: refuteLevel on a partition-local quotient view")
	}
	q := v.q
	g := v.globalize(idx)
	best := q.n // sentinel: no element refutes the state
	for p := range q.perms {
		inv, strat := q.inv[p], q.strat[p]
		for j := 0; j < q.n; j++ {
			pu := inv[j]
			m := int(strat[pu][g[pu]])
			if m == g[j] {
				continue
			}
			if m < g[j] {
				lvl := 0
				for k := 0; k <= j; k++ {
					if len(q.sets[k]) > 1 && k > lvl {
						lvl = k
					}
					if pk := inv[k]; len(q.sets[pk]) > 1 && pk > lvl {
						lvl = pk
					}
				}
				if lvl < best {
					best = lvl
				}
			}
			break
		}
	}
	return best == q.n, best
}

// orbit returns the orbit of the (canonical, stable) state under the
// group, restricted to the view's partition, excluding the state itself:
// the scan-local index vectors of every profile whose stability follows
// from the representative's, sorted ascending and deduplicated. Every
// member is lexicographically greater than the representative (that is
// what canonical means), so the scan's cursor has not passed any of them.
func (v *quotientView) orbit(idx []int) [][]int {
	q := v.q
	g := v.globalize(idx)
	var out [][]int
	for p := range q.perms {
		inv, strat := q.inv[p], q.strat[p]
		m := v.tmp
		for j := 0; j < q.n; j++ {
			pu := inv[j]
			m[j] = int(strat[pu][g[pu]])
		}
		if v.pivot >= 0 && m[v.pivot] != v.fixed {
			continue
		}
		if intsEqual(m, g) {
			continue
		}
		loc := append([]int(nil), m...)
		if v.pivot >= 0 {
			loc[v.pivot] = 0
		}
		out = append(out, loc)
	}
	sort.Slice(out, func(a, b int) bool { return lexLessInts(out[a], out[b]) })
	dedup := out[:0]
	for i, m := range out {
		if i == 0 || !intsEqual(m, out[i-1]) {
			dedup = append(dedup, m)
		}
	}
	return dedup
}

// SpecAutomorphisms enumerates every player permutation preserving the
// spec exactly (weights, link costs, lengths and budgets all invariant
// under relabeling) by backtracking with invariant-signature pruning. It
// returns an error when the group would exceed maxGroup elements (0 means
// maxQuotientOrder): near-symmetric specs like the uniform game have
// factorially many automorphisms, and such instances should be quotiented
// by a structural subgroup (e.g. group.Translations) instead of the full
// group. Structured instances — the Theorem 1 gadget, asymmetric dense
// games — resolve quickly to small groups.
func SpecAutomorphisms(spec Spec, maxGroup int) ([][]int, error) {
	if maxGroup <= 0 {
		maxGroup = maxQuotientOrder
	}
	n := spec.N()
	// Node signature: budget plus the sorted multisets of outgoing and
	// incoming (weight, cost, length) triples. Automorphisms preserve it,
	// so candidate images are restricted to equal-signature nodes.
	sig := make([]string, n)
	{
		var sb strings.Builder
		tri := make([][3]int64, 0, n)
		for u := 0; u < n; u++ {
			sb.Reset()
			fmt.Fprintf(&sb, "b%d;", spec.Budget(u))
			for _, in := range []bool{false, true} {
				tri = tri[:0]
				for v := 0; v < n; v++ {
					if v == u {
						continue
					}
					a, b := u, v
					if in {
						a, b = v, u
					}
					tri = append(tri, [3]int64{spec.Weight(a, b), spec.LinkCost(a, b), spec.Length(a, b)})
				}
				sort.Slice(tri, func(i, j int) bool {
					for k := 0; k < 3; k++ {
						if tri[i][k] != tri[j][k] {
							return tri[i][k] < tri[j][k]
						}
					}
					return false
				})
				for _, t := range tri {
					fmt.Fprintf(&sb, "%d,%d,%d;", t[0], t[1], t[2])
				}
			}
			sig[u] = sb.String()
		}
	}

	perm := make([]int, n)
	for i := range perm {
		perm[i] = -1
	}
	used := make([]bool, n)
	var out [][]int
	overflow := false
	compatible := func(u, w int) bool {
		if sig[u] != sig[w] {
			return false
		}
		for v := 0; v < n; v++ {
			pv := perm[v]
			if pv < 0 || v == u {
				continue
			}
			if spec.Weight(u, v) != spec.Weight(w, pv) || spec.Weight(v, u) != spec.Weight(pv, w) ||
				spec.LinkCost(u, v) != spec.LinkCost(w, pv) || spec.LinkCost(v, u) != spec.LinkCost(pv, w) ||
				spec.Length(u, v) != spec.Length(w, pv) || spec.Length(v, u) != spec.Length(pv, w) {
				return false
			}
		}
		return true
	}
	var dfs func(u int)
	dfs = func(u int) {
		if overflow {
			return
		}
		if u == n {
			if len(out) >= maxGroup {
				overflow = true
				return
			}
			out = append(out, append([]int(nil), perm...))
			return
		}
		for w := 0; w < n; w++ {
			if used[w] || !compatible(u, w) {
				continue
			}
			perm[u] = w
			used[w] = true
			dfs(u + 1)
			perm[u] = -1
			used[w] = false
			if overflow {
				return
			}
		}
	}
	dfs(0)
	if overflow {
		return nil, fmt.Errorf("core: spec automorphism group exceeds %d elements", maxGroup)
	}
	return out, nil
}

// specPreserved reports whether the permutation leaves the spec invariant.
func specPreserved(spec Spec, perm []int) bool {
	n := spec.N()
	for u := 0; u < n; u++ {
		if spec.Budget(u) != spec.Budget(perm[u]) {
			return false
		}
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			pu, pv := perm[u], perm[v]
			if spec.Weight(u, v) != spec.Weight(pu, pv) ||
				spec.LinkCost(u, v) != spec.LinkCost(pu, pv) ||
				spec.Length(u, v) != spec.Length(pu, pv) {
				return false
			}
		}
	}
	return true
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// composePerm returns a∘b: (a∘b)(x) = a[b[x]].
func composePerm(a, b []int) []int {
	c := make([]int, len(a))
	for x := range c {
		c[x] = a[b[x]]
	}
	return c
}

func permKey(p []int) string {
	var sb strings.Builder
	for _, v := range p {
		fmt.Fprintf(&sb, "%d,", v)
	}
	return sb.String()
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// lexLessInts is strict lexicographic comparison of equal-length vectors.
func lexLessInts(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func strategiesEqual(a, b Strategy) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func strategySetsEqual(a, b []Strategy) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !strategiesEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}
