// Package flow implements minimum-cost flow on networks with real-valued
// capacities and non-negative real costs, via successive shortest paths
// with Johnson potentials. It is the substrate for fractional BBC games
// (Section 3.2 of the paper), where the cost of a node pair (u, v) is the
// cost of a minimum-cost unit flow from u to v in the network induced by
// the players' fractional link purchases.
package flow

import (
	"container/heap"
	"fmt"
	"math"
)

// Eps is the tolerance used for capacity comparisons. Fractional strategies
// are real-valued, so exact zero tests are replaced by |x| <= Eps.
const Eps = 1e-9

// Network is a directed flow network. Arcs are added in forward/reverse
// pairs internally so the successive-shortest-path algorithm can push flow
// back along residual arcs.
type Network struct {
	n    int
	arcs []arc
	head [][]int32 // arc indices out of each node (forward and residual)
}

type arc struct {
	to   int32
	cap  float64 // residual capacity
	cost float64 // per-unit cost (negative on residual arcs)
}

// NewNetwork returns an empty network on n nodes.
func NewNetwork(n int) *Network {
	if n < 0 {
		panic(fmt.Sprintf("flow: negative node count %d", n))
	}
	return &Network{n: n, head: make([][]int32, n)}
}

// N returns the node count.
func (nw *Network) N() int { return nw.n }

// AddArc adds a directed arc from -> to with the given capacity and
// per-unit cost, returning its id. Capacity may be math.Inf(1) for
// uncapacitated arcs (the paper's disconnection-penalty arcs). Cost must be
// non-negative, which holds for the game (lengths and M are non-negative).
func (nw *Network) AddArc(from, to int, capacity, cost float64) int {
	nw.check(from)
	nw.check(to)
	if capacity < 0 {
		panic(fmt.Sprintf("flow: negative capacity %v", capacity))
	}
	if cost < 0 || math.IsNaN(cost) || math.IsInf(cost, 0) {
		panic(fmt.Sprintf("flow: invalid cost %v", cost))
	}
	id := len(nw.arcs)
	nw.arcs = append(nw.arcs,
		arc{to: int32(to), cap: capacity, cost: cost},
		arc{to: int32(from), cap: 0, cost: -cost},
	)
	nw.head[from] = append(nw.head[from], int32(id))
	nw.head[to] = append(nw.head[to], int32(id+1))
	return id
}

// Flow returns the amount of flow currently routed through the arc with the
// given id (the residual capacity of its reverse arc).
func (nw *Network) Flow(id int) float64 {
	if id < 0 || id >= len(nw.arcs) || id%2 != 0 {
		panic(fmt.Sprintf("flow: invalid arc id %d", id))
	}
	return nw.arcs[id^1].cap
}

// Reset restores all arcs to their original capacities (zero flow). The
// original capacity is recoverable because forward+reverse capacities are
// conserved by augmentation.
func (nw *Network) Reset() {
	for i := 0; i < len(nw.arcs); i += 2 {
		nw.arcs[i].cap += nw.arcs[i^1].cap
		nw.arcs[i^1].cap = 0
	}
}

// MinCostFlow ships up to want units of flow from s to t at minimum cost.
// It returns the amount actually shipped (less than want when the network
// saturates) and the total cost of the shipped flow. The network retains
// the flow; call Reset to reuse it.
func (nw *Network) MinCostFlow(s, t int, want float64) (shipped, cost float64) {
	nw.check(s)
	nw.check(t)
	if s == t || want <= 0 {
		return 0, 0
	}
	pot := make([]float64, nw.n) // Johnson potentials; costs are >= 0 so zero init is valid
	dist := make([]float64, nw.n)
	inArc := make([]int32, nw.n)
	visited := make([]bool, nw.n)

	for shipped < want-Eps {
		// Dijkstra on reduced costs.
		for i := range dist {
			dist[i] = math.Inf(1)
			visited[i] = false
			inArc[i] = -1
		}
		dist[s] = 0
		pq := &floatHeap{{node: int32(s), d: 0}}
		for pq.Len() > 0 {
			it := heap.Pop(pq).(floatItem)
			u := int(it.node)
			if visited[u] {
				continue
			}
			visited[u] = true
			for _, id := range nw.head[u] {
				a := nw.arcs[id]
				if a.cap <= Eps {
					continue
				}
				v := int(a.to)
				if visited[v] {
					continue
				}
				nd := dist[u] + a.cost + pot[u] - pot[v]
				if nd < dist[v]-Eps {
					dist[v] = nd
					inArc[v] = id
					heap.Push(pq, floatItem{node: a.to, d: nd})
				}
			}
		}
		if math.IsInf(dist[t], 1) {
			break // t unreachable: network saturated
		}
		for i := range pot {
			if !math.IsInf(dist[i], 1) {
				pot[i] += dist[i]
			}
		}
		// Bottleneck along the augmenting path.
		push := want - shipped
		for v := t; v != s; {
			a := nw.arcs[inArc[v]]
			if a.cap < push {
				push = a.cap
			}
			v = int(nw.arcs[inArc[v]^1].to)
		}
		if push <= Eps {
			break
		}
		// Apply augmentation.
		for v := t; v != s; {
			id := inArc[v]
			nw.arcs[id].cap -= push
			nw.arcs[id^1].cap += push
			cost += push * nw.arcs[id].cost
			v = int(nw.arcs[id^1].to)
		}
		shipped += push
	}
	return shipped, cost
}

func (nw *Network) check(u int) {
	if u < 0 || u >= nw.n {
		panic(fmt.Sprintf("flow: node %d out of range [0,%d)", u, nw.n))
	}
}

type floatItem struct {
	node int32
	d    float64
}

type floatHeap []floatItem

func (h floatHeap) Len() int            { return len(h) }
func (h floatHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h floatHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *floatHeap) Push(x interface{}) { *h = append(*h, x.(floatItem)) }
func (h *floatHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
