package flow

import (
	"math"
	"math/rand"
	"testing"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSinglePath(t *testing.T) {
	nw := NewNetwork(3)
	nw.AddArc(0, 1, 1, 2)
	nw.AddArc(1, 2, 1, 3)
	shipped, cost := nw.MinCostFlow(0, 2, 1)
	if !almostEqual(shipped, 1) || !almostEqual(cost, 5) {
		t.Fatalf("shipped=%v cost=%v, want 1,5", shipped, cost)
	}
}

func TestPrefersCheaperPath(t *testing.T) {
	nw := NewNetwork(4)
	nw.AddArc(0, 1, 1, 1)
	nw.AddArc(1, 3, 1, 1)
	nw.AddArc(0, 2, 1, 5)
	nw.AddArc(2, 3, 1, 5)
	shipped, cost := nw.MinCostFlow(0, 3, 1)
	if !almostEqual(shipped, 1) || !almostEqual(cost, 2) {
		t.Fatalf("shipped=%v cost=%v, want 1,2", shipped, cost)
	}
}

func TestSplitsAcrossPathsWhenSaturated(t *testing.T) {
	// Cheap path carries 0.6, the rest must take the expensive path.
	nw := NewNetwork(4)
	nw.AddArc(0, 1, 0.6, 1)
	nw.AddArc(1, 3, 0.6, 1)
	nw.AddArc(0, 2, 1, 10)
	nw.AddArc(2, 3, 1, 10)
	shipped, cost := nw.MinCostFlow(0, 3, 1)
	want := 0.6*2 + 0.4*20
	if !almostEqual(shipped, 1) || !almostEqual(cost, want) {
		t.Fatalf("shipped=%v cost=%v, want 1,%v", shipped, cost, want)
	}
}

func TestSaturation(t *testing.T) {
	nw := NewNetwork(2)
	nw.AddArc(0, 1, 0.3, 1)
	shipped, cost := nw.MinCostFlow(0, 1, 1)
	if !almostEqual(shipped, 0.3) || !almostEqual(cost, 0.3) {
		t.Fatalf("shipped=%v cost=%v, want 0.3,0.3", shipped, cost)
	}
}

func TestInfiniteCapacityPenaltyArc(t *testing.T) {
	// The fractional game's structure: a capacitated cheap arc plus an
	// uncapacitated penalty arc of cost M.
	const m = 1000.0
	nw := NewNetwork(2)
	nw.AddArc(0, 1, 0.25, 1)
	nw.AddArc(0, 1, math.Inf(1), m)
	shipped, cost := nw.MinCostFlow(0, 1, 1)
	want := 0.25*1 + 0.75*m
	if !almostEqual(shipped, 1) || !almostEqual(cost, want) {
		t.Fatalf("shipped=%v cost=%v, want 1,%v", shipped, cost, want)
	}
}

func TestResidualRerouting(t *testing.T) {
	// Classic case where the second augmentation must push flow back over
	// the first path's middle arc.
	//   0->1 cap1 cost1, 1->3 cap1 cost1 (cheap but shares 1->2)
	//   0->2 cap1 cost2, 2->3 cap1 cost2
	//   1->2 cap1 cost0
	// Want 2 units: optimum uses all four outer arcs, cost 1+1+2+2=6.
	nw := NewNetwork(4)
	nw.AddArc(0, 1, 1, 1)
	nw.AddArc(1, 3, 1, 1)
	nw.AddArc(0, 2, 1, 2)
	nw.AddArc(2, 3, 1, 2)
	nw.AddArc(1, 2, 1, 0)
	shipped, cost := nw.MinCostFlow(0, 3, 2)
	if !almostEqual(shipped, 2) || !almostEqual(cost, 6) {
		t.Fatalf("shipped=%v cost=%v, want 2,6", shipped, cost)
	}
}

func TestFlowPerArcAndReset(t *testing.T) {
	nw := NewNetwork(3)
	a := nw.AddArc(0, 1, 1, 1)
	b := nw.AddArc(1, 2, 1, 1)
	nw.MinCostFlow(0, 2, 0.5)
	if !almostEqual(nw.Flow(a), 0.5) || !almostEqual(nw.Flow(b), 0.5) {
		t.Fatalf("flows = %v,%v, want 0.5 each", nw.Flow(a), nw.Flow(b))
	}
	nw.Reset()
	if !almostEqual(nw.Flow(a), 0) {
		t.Fatalf("flow after reset = %v, want 0", nw.Flow(a))
	}
	shipped, _ := nw.MinCostFlow(0, 2, 1)
	if !almostEqual(shipped, 1) {
		t.Fatalf("shipped after reset = %v, want 1 (capacity restored)", shipped)
	}
}

func TestZeroRequestAndSameNode(t *testing.T) {
	nw := NewNetwork(2)
	nw.AddArc(0, 1, 1, 1)
	if s, c := nw.MinCostFlow(0, 1, 0); s != 0 || c != 0 {
		t.Fatalf("zero request shipped %v cost %v", s, c)
	}
	if s, c := nw.MinCostFlow(0, 0, 1); s != 0 || c != 0 {
		t.Fatalf("same-node flow shipped %v cost %v", s, c)
	}
}

func TestInvalidArcsPanic(t *testing.T) {
	tests := []struct {
		name string
		fn   func()
	}{
		{name: "negative capacity", fn: func() { NewNetwork(2).AddArc(0, 1, -1, 0) }},
		{name: "negative cost", fn: func() { NewNetwork(2).AddArc(0, 1, 1, -1) }},
		{name: "nan cost", fn: func() { NewNetwork(2).AddArc(0, 1, 1, math.NaN()) }},
		{name: "bad node", fn: func() { NewNetwork(2).AddArc(0, 5, 1, 1) }},
		{name: "bad flow id", fn: func() { NewNetwork(2).Flow(1) }},
		{name: "negative nodes", fn: func() { NewNetwork(-1) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tt.fn()
		})
	}
}

// TestAgainstBruteForceTwoPaths checks optimality against an analytic
// optimum on randomized two-parallel-path instances: route greedily by
// cost, which is optimal for parallel arcs.
func TestAgainstBruteForceParallelArcs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 100; trial++ {
		narcs := 2 + rng.Intn(4)
		type pa struct{ cap, cost float64 }
		arcs := make([]pa, narcs)
		total := 0.0
		for i := range arcs {
			arcs[i] = pa{cap: rng.Float64(), cost: float64(rng.Intn(10))}
			total += arcs[i].cap
		}
		want := rng.Float64() * total
		nw := NewNetwork(2)
		for _, a := range arcs {
			nw.AddArc(0, 1, a.cap, a.cost)
		}
		shipped, cost := nw.MinCostFlow(0, 1, want)

		// Greedy analytic optimum.
		idx := make([]int, narcs)
		for i := range idx {
			idx[i] = i
		}
		for i := 0; i < narcs; i++ {
			for j := i + 1; j < narcs; j++ {
				if arcs[idx[j]].cost < arcs[idx[i]].cost {
					idx[i], idx[j] = idx[j], idx[i]
				}
			}
		}
		remaining := want
		wantCost := 0.0
		wantShipped := 0.0
		for _, i := range idx {
			if remaining <= 0 {
				break
			}
			take := math.Min(remaining, arcs[i].cap)
			wantCost += take * arcs[i].cost
			wantShipped += take
			remaining -= take
		}
		if !almostEqual(shipped, wantShipped) || !almostEqual(cost, wantCost) {
			t.Fatalf("trial %d: shipped=%v cost=%v, want %v,%v", trial, shipped, cost, wantShipped, wantCost)
		}
	}
}
