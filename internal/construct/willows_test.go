package construct

import (
	"testing"

	"bbc/internal/core"
)

func TestWillowsParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       WillowsParams
		wantErr bool
	}{
		{name: "cycle k1", p: WillowsParams{K: 1, H: 2, L: 3}},
		{name: "k2 h2", p: WillowsParams{K: 2, H: 2, L: 1}},
		{name: "zero k", p: WillowsParams{K: 0, H: 1, L: 1}, wantErr: true},
		{name: "negative h", p: WillowsParams{K: 2, H: -1, L: 0}, wantErr: true},
		{name: "h0 l0", p: WillowsParams{K: 2, H: 0, L: 0}, wantErr: true},
		{name: "h0 l1 ok", p: WillowsParams{K: 2, H: 0, L: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestWillowsShape(t *testing.T) {
	tests := []struct {
		p                   WillowsParams
		treeSize, leaves, n int
	}{
		{p: WillowsParams{K: 2, H: 2, L: 1}, treeSize: 7, leaves: 4, n: 2 * (7 + 4)},
		{p: WillowsParams{K: 3, H: 2, L: 0}, treeSize: 13, leaves: 9, n: 39},
		{p: WillowsParams{K: 1, H: 3, L: 2}, treeSize: 4, leaves: 1, n: 6},
		{p: WillowsParams{K: 2, H: 3, L: 2}, treeSize: 15, leaves: 8, n: 2 * 31},
	}
	for _, tt := range tests {
		if got := tt.p.TreeSize(); got != tt.treeSize {
			t.Errorf("%+v TreeSize = %d, want %d", tt.p, got, tt.treeSize)
		}
		if got := tt.p.Leaves(); got != tt.leaves {
			t.Errorf("%+v Leaves = %d, want %d", tt.p, got, tt.leaves)
		}
		if got := tt.p.N(); got != tt.n {
			t.Errorf("%+v N = %d, want %d", tt.p, got, tt.n)
		}
	}
}

func TestWillowsStructure(t *testing.T) {
	w, err := NewWillows(WillowsParams{K: 2, H: 2, L: 2})
	if err != nil {
		t.Fatal(err)
	}
	n := w.Params.N()
	if len(w.Profile) != n {
		t.Fatalf("profile length %d, want %d", len(w.Profile), n)
	}
	// Every node spends exactly its budget K (maximal strategies).
	for u, s := range w.Profile {
		if len(s) != w.Params.K {
			t.Fatalf("node %d buys %d links, want %d", u, len(s), w.Params.K)
		}
	}
	// Roots are section starts.
	if w.Roots[0] != 0 || w.Roots[1] != w.Params.SectionSize() {
		t.Fatalf("roots = %v", w.Roots)
	}
	// Realized graph must be strongly connected.
	if !w.Profile.Realize(w.Spec).StronglyConnected() {
		t.Fatal("willows graph should be strongly connected")
	}
}

func TestWillowsK1IsCycle(t *testing.T) {
	w, err := NewWillows(WillowsParams{K: 1, H: 2, L: 3})
	if err != nil {
		t.Fatal(err)
	}
	g := w.Profile.Realize(w.Spec)
	diam, strong := g.Diameter(true)
	if !strong || diam != int64(w.Params.N()-1) {
		t.Fatalf("k=1 willows should be the directed cycle: diam=%d strong=%v", diam, strong)
	}
}

func TestWillowsStability(t *testing.T) {
	// Definition 1's stability theorem, verified exactly for a family of
	// parameters (including some below the paper's constraint, which this
	// implementation also finds stable).
	params := []WillowsParams{
		{K: 1, H: 2, L: 3},
		{K: 2, H: 1, L: 1},
		{K: 2, H: 2, L: 0},
		{K: 2, H: 2, L: 1},
		{K: 3, H: 1, L: 0},
	}
	for _, p := range params {
		w, err := NewWillows(p)
		if err != nil {
			t.Fatal(err)
		}
		dev, err := core.FindDeviation(w.Spec, w.Profile, core.SumDistances, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if dev != nil {
			t.Fatalf("%+v (n=%d): not stable, deviation %+v", p, p.N(), dev)
		}
	}
}

func TestWillowsStabilityLarger(t *testing.T) {
	if testing.Short() {
		t.Skip("larger stability checks skipped in -short")
	}
	params := []WillowsParams{
		{K: 2, H: 2, L: 2},
		{K: 2, H: 3, L: 0},
		{K: 2, H: 3, L: 2},
		{K: 3, H: 2, L: 0},
	}
	for _, p := range params {
		w, err := NewWillows(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, agg := range []core.Aggregation{core.SumDistances, core.MaxDistance} {
			dev, err := core.FindDeviation(w.Spec, w.Profile, agg, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if dev != nil {
				t.Fatalf("%+v agg=%v: not stable, deviation %+v", p, agg, dev)
			}
		}
	}
}

func TestWillowsMaxStability(t *testing.T) {
	// Theorem 9: willows with l=0 are stable under the max cost too.
	w, err := NewWillows(WillowsParams{K: 2, H: 2, L: 0})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := core.FindDeviation(w.Spec, w.Profile, core.MaxDistance, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dev != nil {
		t.Fatalf("l=0 willows not stable under max cost: %+v", dev)
	}
}

func TestWillowsSocialCostGrowsWithTailLength(t *testing.T) {
	// The l=0 end of the family has per-node cost O(n log n); the long-tail
	// end is Ω(n sqrt(n/k)). With n held roughly comparable, social cost
	// must increase in l.
	base, err := NewWillows(WillowsParams{K: 2, H: 3, L: 0})
	if err != nil {
		t.Fatal(err)
	}
	tailed, err := NewWillows(WillowsParams{K: 2, H: 2, L: 2}) // same n=30
	if err != nil {
		t.Fatal(err)
	}
	if base.Params.N() != tailed.Params.N() {
		t.Fatalf("test setup: n mismatch %d vs %d", base.Params.N(), tailed.Params.N())
	}
	c0 := core.SocialCost(base.Spec, base.Profile, core.SumDistances)
	c1 := core.SocialCost(tailed.Spec, tailed.Profile, core.SumDistances)
	if c1 <= c0 {
		t.Fatalf("social cost should grow with tails: l=0 gives %d, tails give %d", c0, c1)
	}
}

func TestWillowsMeetsPaperConstraint(t *testing.T) {
	if !(WillowsParams{K: 2, H: 3, L: 0}).MeetsPaperConstraint() {
		t.Fatal("K=2 H=3 L=0 should meet the constraint")
	}
	if (WillowsParams{K: 2, H: 1, L: 1}).MeetsPaperConstraint() {
		t.Fatal("K=2 H=1 L=1 should not meet the constraint (5 < 5 fails)")
	}
}
