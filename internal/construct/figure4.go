package construct

import (
	"bbc/internal/core"
)

// Figure4Start returns a (7,2)-uniform game and a starting profile from
// which the round-robin best-response walk (order 0,1,...,6) enters a
// certified cycle: six strict improvements (nodes 3, 4, 1, 3, 4, 1
// rewiring in that order over two rounds) return the configuration to
// itself. It plays the role of the paper's Figure 4 loop — the witness
// that uniform BBC games are not ordinal potential games. The profile was
// found by seeded search over random (7,2) configurations and is validated
// by replay in the tests and in experiment E12.
func Figure4Start() (*core.Uniform, core.Profile) {
	spec := core.MustUniform(7, 2)
	p := core.Profile{
		{2, 6},
		{3, 6},
		{1, 3},
		{0, 4},
		{0, 1},
		{0, 2},
		{2, 5},
	}
	if err := p.Validate(spec); err != nil {
		panic(err) // static fixture, cannot fail
	}
	return spec, p
}
