package construct

import (
	"math/rand"
	"testing"

	"bbc/internal/core"
	"bbc/internal/dynamics"
	"bbc/internal/sat"
)

func disjointFormula(m int) *sat.Formula {
	clauses := make([]sat.Clause, 0, m)
	for j := 0; j < m; j++ {
		clauses = append(clauses, sat.Clause{
			sat.Literal(3*j + 1), -sat.Literal(3*j + 2), sat.Literal(3*j + 3),
		})
	}
	return sat.MustNew(3*m, clauses...)
}

// unsatCube is the full polarity cube over 3 variables: 8 clauses covering
// every sign pattern, hence unsatisfiable.
func unsatCube() *sat.Formula {
	var clauses []sat.Clause
	for mask := 0; mask < 8; mask++ {
		c := sat.Clause{}
		for v := 1; v <= 3; v++ {
			lit := sat.Literal(v)
			if mask&(1<<(v-1)) != 0 {
				lit = -lit
			}
			c = append(c, lit)
		}
		clauses = append(clauses, c)
	}
	return sat.MustNew(3, clauses...)
}

func TestFromCNFValidation(t *testing.T) {
	if _, err := FromCNF(sat.MustNew(3), DefaultGadgetWeights()); err == nil {
		t.Fatal("no clauses should be rejected")
	}
	twoLit := sat.MustNew(2, sat.Clause{1, 2})
	if _, err := FromCNF(twoLit, DefaultGadgetWeights()); err == nil {
		t.Fatal("non-3-literal clause should be rejected")
	}
}

func TestReductionLayout(t *testing.T) {
	f := disjointFormula(2)
	r, err := FromCNF(f, DefaultGadgetWeights())
	if err != nil {
		t.Fatal(err)
	}
	wantN := 3*6 + 4*2 + 1 + gadgetSize
	if r.Spec.N() != wantN {
		t.Fatalf("N = %d, want %d", r.Spec.N(), wantN)
	}
	// Truth nodes have budget 0; S has budget m; everyone else budget 1.
	for i := 1; i <= f.NumVars; i++ {
		if r.Spec.Budget(r.TruthNode(i, true)) != 0 || r.Spec.Budget(r.TruthNode(i, false)) != 0 {
			t.Fatalf("truth nodes of var %d must have budget 0", i)
		}
		if r.Spec.Budget(r.VarNode(i)) != 1 {
			t.Fatalf("variable node %d must have budget 1", i)
		}
	}
	if r.Spec.Budget(r.S) != int64(len(f.Clauses)) {
		t.Fatalf("S budget = %d, want m = %d", r.Spec.Budget(r.S), len(f.Clauses))
	}
	// Figure edges are short; non-figure links are long.
	if r.Spec.Length(r.VarNode(1), r.TruthNode(1, true)) != 1 {
		t.Fatal("X1 -> X1T should be short")
	}
	if r.Spec.Length(r.VarNode(1), r.VarNode(2)) == 1 {
		t.Fatal("X1 -> X2 should be long")
	}
	if r.Spec.UnitLengths() {
		t.Fatal("reduction must be a non-uniform-length game")
	}
	// Centers carry the 2m-1 resolution weight.
	if got := r.Spec.Weight(r.GadgetBase+G0C, r.GadgetBase+G1C); got != int64(2*len(f.Clauses)-1) {
		t.Fatalf("center resolution weight = %d, want %d", got, 2*len(f.Clauses)-1)
	}
}

func TestAssignmentProfileRoundTrip(t *testing.T) {
	f := disjointFormula(2)
	a, ok := f.Solve()
	if !ok {
		t.Fatal("disjoint formula must be satisfiable")
	}
	r, err := FromCNF(f, DefaultGadgetWeights())
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.AssignmentProfile(a)
	if err != nil {
		t.Fatal(err)
	}
	back := r.DecodeAssignment(p)
	for i := 1; i <= f.NumVars; i++ {
		if back[i] != a[i] {
			t.Fatalf("decode mismatch at var %d", i)
		}
	}
	if !f.Satisfies(back) {
		t.Fatal("decoded assignment does not satisfy the formula")
	}
}

func TestAssignmentProfileRejectsNonSatisfying(t *testing.T) {
	f := sat.MustNew(3, sat.Clause{1, 2, 3})
	r, err := FromCNF(f, DefaultGadgetWeights())
	if err != nil {
		t.Fatal(err)
	}
	all := make(sat.Assignment, 4) // all false: clause unsatisfied
	if _, err := r.AssignmentProfile(all); err == nil {
		t.Fatal("expected error for non-satisfying assignment")
	}
}

// TestReductionTranscriptionGap certifies the machine-found gap in the
// transcribed Theorem 2 construction (DESIGN.md, experiment E2): the
// intended stable profile for a satisfiable formula admits a strictly
// improving deviation by a gadget center — the other central node becomes
// an orphaned weight-(2m−1) target once both centers resolve to S, so a
// direct length-L link to it beats the penalty M = nL. This test pins the
// finding so any future repair of the construction must consciously
// revisit it.
func TestReductionTranscriptionGap(t *testing.T) {
	f := disjointFormula(1)
	a, ok := f.Solve()
	if !ok {
		t.Fatal("formula must be satisfiable")
	}
	r, err := FromCNF(f, DefaultGadgetWeights())
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.AssignmentProfile(a)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := core.FindDeviation(r.Spec, p, core.SumDistances,
		core.Options{Method: core.Exact, EnumLimit: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if dev == nil {
		t.Fatal("expected the transcription-gap deviation; if this fails the construction was repaired — update DESIGN.md E2")
	}
	if dev.Node != r.GadgetBase+G0C && dev.Node != r.GadgetBase+G1C {
		t.Fatalf("expected a gadget center to deviate, got node %d -> %v", dev.Node, dev.Strategy)
	}
}

// TestReductionSharedVariableHubShortcut certifies the second gap: with
// shared variables, a clause node strictly prefers linking the hub S
// (reaching other clauses' satisfied truth nodes transitively) over its
// own intermediate — contradicting the paper's "the three-hop path ... is
// the shortest possible" step.
func TestReductionSharedVariableHubShortcut(t *testing.T) {
	// Two clauses sharing all variables; satisfiable.
	f := sat.MustNew(3, sat.Clause{1, 2, 3}, sat.Clause{-1, 2, 3})
	a, ok := f.Solve()
	if !ok {
		t.Fatal("formula must be satisfiable")
	}
	r, err := FromCNF(f, DefaultGadgetWeights())
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.AssignmentProfile(a)
	if err != nil {
		t.Fatal(err)
	}
	g := p.Realize(r.Spec)
	foundClauseDeviation := false
	for j := range f.Clauses {
		dev, err := core.NodeDeviation(r.Spec, g, p, r.ClauseNode(j), core.SumDistances,
			core.Options{Method: core.Exact})
		if err != nil {
			t.Fatal(err)
		}
		if dev != nil && dev.Strategy.Contains(r.S) {
			foundClauseDeviation = true
		}
	}
	if !foundClauseDeviation {
		t.Fatal("expected a clause node to deviate to S via shared-variable routes")
	}
}

func TestReductionDynamicsBehavior(t *testing.T) {
	// Empirical E2 companion: greedy best-response dynamics on the
	// reduction run to completion without error, and the converged
	// profiles' assignments decode consistently.
	if testing.Short() {
		t.Skip("reduction dynamics skipped in -short")
	}
	f := unsatCube()
	if f.Satisfiable() {
		t.Fatal("cube must be unsatisfiable")
	}
	r, err := FromCNF(f, DefaultGadgetWeights())
	if err != nil {
		t.Fatal(err)
	}
	n := r.Spec.N()
	rng := rand.New(rand.NewSource(5))
	start := core.NewEmptyProfile(n)
	_ = rng
	res, err := dynamics.Run(r.Spec, start, dynamics.NewRoundRobin(n), core.SumDistances,
		dynamics.Options{MaxSteps: 30 * n, BR: core.Options{Method: core.GreedySwap}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 {
		t.Fatal("dynamics made no steps")
	}
	// Decoding must be well-formed regardless of convergence.
	a := r.DecodeAssignment(res.Final)
	if len(a) != f.NumVars+1 {
		t.Fatalf("decoded assignment has length %d", len(a))
	}
}
