package construct

import (
	"fmt"

	"bbc/internal/core"
)

// Baseline topologies: non-equilibrium reference configurations used by
// the examples and experiments to compare selfish outcomes against
// designed ones. Each returns a uniform spec plus a feasible profile.

// Ring returns the directed n-cycle for the (n,1)-uniform game — the k=1
// equilibrium and social optimum.
func Ring(n int) (*core.Uniform, core.Profile, error) {
	spec, err := core.NewUniform(n, 1)
	if err != nil {
		return nil, nil, err
	}
	p := core.NewEmptyProfile(n)
	for u := 0; u < n; u++ {
		p[u] = core.Strategy{(u + 1) % n}
	}
	return spec, p, nil
}

// Star returns the hub-and-spoke configuration for the (n,1)-uniform game:
// every spoke links the hub (node 0) and the hub links node 1. It is the
// classic low-diameter, high-unfairness design.
func Star(n int) (*core.Uniform, core.Profile, error) {
	if n < 3 {
		return nil, nil, fmt.Errorf("construct: star needs n >= 3")
	}
	spec, err := core.NewUniform(n, 1)
	if err != nil {
		return nil, nil, err
	}
	p := core.NewEmptyProfile(n)
	p[0] = core.Strategy{1}
	for u := 1; u < n; u++ {
		p[u] = core.Strategy{0}
	}
	return spec, p, nil
}

// Complete returns the complete digraph for the (n, n-1)-uniform game —
// the unconstrained optimum every budget-limited design is measured
// against.
func Complete(n int) (*core.Uniform, core.Profile, error) {
	spec, err := core.NewUniform(n, n-1)
	if err != nil {
		return nil, nil, err
	}
	p := core.NewEmptyProfile(n)
	for u := 0; u < n; u++ {
		s := make(core.Strategy, 0, n-1)
		for v := 0; v < n; v++ {
			if v != u {
				s = append(s, v)
			}
		}
		p[u] = s
	}
	return spec, p, nil
}

// BidirectionalRing returns the (n,2)-uniform game profile in which every
// node links both neighbors — the undirected-cycle overlay designers often
// start from.
func BidirectionalRing(n int) (*core.Uniform, core.Profile, error) {
	if n < 3 {
		return nil, nil, fmt.Errorf("construct: bidirectional ring needs n >= 3")
	}
	spec, err := core.NewUniform(n, 2)
	if err != nil {
		return nil, nil, err
	}
	p := core.NewEmptyProfile(n)
	for u := 0; u < n; u++ {
		p[u] = core.NormalizeStrategy([]int{(u + 1) % n, (u + n - 1) % n})
	}
	return spec, p, nil
}
