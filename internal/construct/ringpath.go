package construct

import (
	"fmt"

	"bbc/internal/core"
)

// RingPath builds the Section 4.3 lower-bound instance for convergence to
// strong connectivity: a directed ring over r nodes together with a
// directed path of p = n − r nodes whose last node points into the ring.
// With k = 1 and a round-robin order that starts at the tail of the path
// and proceeds along the path and then around the ring, a best-response
// walk needs Ω(n²) steps to reach strong connectivity.
//
// Node layout: 0..p-1 is the path (0 is the tail T), p..n-1 is the ring;
// path node p-1 points at ring node p, and ring node i points at the next
// ring node cyclically.
func RingPath(ringSize, pathSize int) (*core.Uniform, core.Profile, error) {
	if ringSize < 2 {
		return nil, nil, fmt.Errorf("construct: ring needs at least 2 nodes, got %d", ringSize)
	}
	if pathSize < 1 {
		return nil, nil, fmt.Errorf("construct: path needs at least 1 node, got %d", pathSize)
	}
	n := ringSize + pathSize
	spec, err := core.NewUniform(n, 1)
	if err != nil {
		return nil, nil, err
	}
	p := core.NewEmptyProfile(n)
	for i := 0; i < pathSize; i++ {
		p[i] = core.Strategy{i + 1} // path node i -> i+1 (p-1 -> p enters the ring)
	}
	for i := pathSize; i < n; i++ {
		next := i + 1
		if next == n {
			next = pathSize
		}
		p[i] = core.Strategy{next}
	}
	if err := p.Validate(spec); err != nil {
		return nil, nil, fmt.Errorf("construct: ring+path produced invalid profile: %w", err)
	}
	return spec, p, nil
}

// RingPathRoundRobinOrder returns the round order the paper's lower bound
// uses: the path tail first, then along the path, then around the ring in
// ring direction.
func RingPathRoundRobinOrder(ringSize, pathSize int) []int {
	n := ringSize + pathSize
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		order = append(order, i)
	}
	return order
}
