package construct

import (
	"testing"

	"bbc/internal/core"
	"bbc/internal/dynamics"
)

func TestMatchingPenniesShape(t *testing.T) {
	d := MatchingPennies(DefaultGadgetWeights())
	if d.N() != gadgetSize {
		t.Fatalf("N = %d, want %d", d.N(), gadgetSize)
	}
	if !d.UnitLengths() {
		t.Fatal("gadget must have uniform unit lengths")
	}
	for u := 0; u < d.N(); u++ {
		if d.Budget(u) != 1 {
			t.Fatalf("node %d budget %d, want uniform 1", u, d.Budget(u))
		}
	}
	labels := GadgetLabels()
	if len(labels) != gadgetSize {
		t.Fatalf("labels cover %d nodes, want %d", len(labels), gadgetSize)
	}
}

func TestIntendedProfilesAreValidAndUnstable(t *testing.T) {
	// Theorem 1's cycle: every intended state must admit a strictly
	// improving deviation, and the deviator must be a central node
	// switching its top.
	d := MatchingPennies(DefaultGadgetWeights())
	for _, st := range []struct{ c0, c1 bool }{
		{true, true}, {true, false}, {false, true}, {false, false},
	} {
		p := IntendedGadgetProfile(st.c0, st.c1)
		if err := p.Validate(d); err != nil {
			t.Fatalf("state (%v,%v): invalid profile: %v", st.c0, st.c1, err)
		}
		dev, err := core.FindDeviation(d, p, core.SumDistances, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if dev == nil {
			t.Fatalf("state (%v,%v): stable, but the gadget must have no equilibrium", st.c0, st.c1)
		}
		if dev.Node != G0C && dev.Node != G1C {
			t.Fatalf("state (%v,%v): deviator %d is not a center", st.c0, st.c1, dev.Node)
		}
	}
}

func TestGadgetBestResponseCycle(t *testing.T) {
	// Following best responses from any intended state must cycle through
	// the four intended states and never stabilize.
	d := MatchingPennies(DefaultGadgetWeights())
	p := IntendedGadgetProfile(true, true)
	res, err := dynamics.Run(d, p, dynamics.NewRoundRobin(d.N()), core.SumDistances,
		dynamics.Options{MaxSteps: 20 * d.N(), DetectLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatalf("round-robin walk converged on the no-equilibrium gadget: %v", res.Final)
	}
	if res.Loop == nil {
		t.Fatal("expected a certified best-response loop on the gadget")
	}
	if len(res.Loop.Moves) == 0 {
		t.Fatal("loop has no moves")
	}
}

func TestGadgetPinnedSpacePinsExpectedNodes(t *testing.T) {
	d := MatchingPennies(DefaultGadgetWeights())
	ss, err := core.PinnedSpace(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	pinned := []int{G0LT, G0RT, G1LT, G1RT, GX0, GX1, GTA, GTB}
	for _, u := range pinned {
		if len(ss.PerNode[u]) != 1 {
			t.Fatalf("node %d should be pinned, has %d strategies", u, len(ss.PerNode[u]))
		}
	}
	free := []int{G0C, G1C, G0LB, G0RB, G1LB, G1RB}
	for _, u := range free {
		if len(ss.PerNode[u]) != gadgetSize {
			t.Fatalf("free node %d has %d strategies, want %d (empty + 13 singletons)",
				u, len(ss.PerNode[u]), gadgetSize)
		}
	}
}

func TestGadgetHasNoPureNashEquilibrium(t *testing.T) {
	// The full Theorem 1 verification: exhaustive scan of the pinned
	// product space (≈7.5M profiles, parallel over the first free node's strategies). The pin rule is sound, so zero
	// equilibria here means zero equilibria in the full game.
	if testing.Short() {
		t.Skip("exhaustive no-NE scan skipped in -short")
	}
	d := MatchingPennies(DefaultGadgetWeights())
	ss, err := core.PinnedSpace(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.EnumeratePureNEParallel(d, core.SumDistances, ss, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("scan did not complete")
	}
	if len(res.Equilibria) != 0 {
		t.Fatalf("gadget has %d pure equilibria, want 0; first: %v",
			len(res.Equilibria), res.Equilibria[0])
	}
}
