package construct

// NodeStructure describes a Willows node's position in its section, in
// the paper's terminology: Delta is the number of ancestors (hops from the
// section root) and Descendants the number of nodes in its subtree
// including itself (tree descendants plus all tails hanging beneath).
type NodeStructure struct {
	Section     int
	Delta       int
	Descendants int
}

// Structure computes depth and descendant counts for every node of a
// regular (uniform-tail) Willows instance, for checking the paper's
// Lemma 2 inequalities. It panics on uneven instances (Params.L < 0).
func (w *Willows) Structure() []NodeStructure {
	if w.Params.L < 0 {
		panic("construct: Structure requires a regular willows instance")
	}
	p := w.Params
	n := p.N()
	out := make([]NodeStructure, n)
	treeSize := p.TreeSize()
	leaves := p.Leaves()
	internal := treeSize - leaves

	// Subtree sizes in the heap-layout tree: a node at depth d has
	// (k^(H-d+1)-1)/(k-1) tree descendants (or H-d+1 when k=1), plus
	// l tail nodes under each of its k^(H-d) leaf descendants.
	treeSub := func(depth int) int {
		hRem := p.H - depth
		var sub, leafCount int
		if p.K == 1 {
			sub = hRem + 1
			leafCount = 1
		} else {
			sub = 0
			pow := 1
			for d := 0; d <= hRem; d++ {
				sub += pow
				pow *= p.K
			}
			leafCount = 1
			for d := 0; d < hRem; d++ {
				leafCount *= p.K
			}
		}
		return sub + leafCount*p.L
	}
	// Depth of heap index j: the level such that the level-start offset
	// covers j.
	depthOf := func(j int) int {
		start, width, depth := 0, 1, 0
		for {
			if j < start+width {
				return depth
			}
			start += width
			width *= p.K
			depth++
		}
	}

	for sec := 0; sec < p.K; sec++ {
		base := sec * p.SectionSize()
		for j := 0; j < treeSize; j++ {
			d := depthOf(j)
			out[base+j] = NodeStructure{Section: sec, Delta: d, Descendants: treeSub(d)}
		}
		_ = internal
		for lf := 0; lf < leaves; lf++ {
			for t := 0; t < p.L; t++ {
				id := base + treeSize + lf*p.L + t
				out[id] = NodeStructure{
					Section:     sec,
					Delta:       p.H + 1 + t,
					Descendants: p.L - t,
				}
			}
		}
	}
	return out
}
