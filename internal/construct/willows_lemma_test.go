package construct

import (
	"testing"
)

func TestStructureCounts(t *testing.T) {
	p := WillowsParams{K: 2, H: 2, L: 1}
	w, err := NewWillows(p)
	if err != nil {
		t.Fatal(err)
	}
	st := w.Structure()
	if len(st) != p.N() {
		t.Fatalf("structure covers %d nodes, want %d", len(st), p.N())
	}
	// Roots: delta 0, descendants = whole section.
	for sec, r := range w.Roots {
		if st[r].Delta != 0 {
			t.Fatalf("root %d delta = %d", sec, st[r].Delta)
		}
		if st[r].Descendants != p.SectionSize() {
			t.Fatalf("root %d descendants = %d, want %d", sec, st[r].Descendants, p.SectionSize())
		}
		if st[r].Section != sec {
			t.Fatalf("root %d in section %d", sec, st[r].Section)
		}
	}
	// Descendant totals per section: sum over nodes of (delta contribution)
	// is hard; instead check each leaf: delta = H, descendants = 1 + L.
	treeSize := p.TreeSize()
	leaves := p.Leaves()
	for sec := 0; sec < p.K; sec++ {
		base := sec * p.SectionSize()
		for lf := 0; lf < leaves; lf++ {
			leaf := base + treeSize - leaves + lf
			if st[leaf].Delta != p.H {
				t.Fatalf("leaf delta = %d, want %d", st[leaf].Delta, p.H)
			}
			if st[leaf].Descendants != 1+p.L {
				t.Fatalf("leaf descendants = %d, want %d", st[leaf].Descendants, 1+p.L)
			}
		}
		// Last tail node: delta = H+L, descendants = 1... wait: tails have
		// length L; the last tail node has descendants 1.
		if p.L > 0 {
			last := base + treeSize + 0*p.L + (p.L - 1)
			if st[last].Descendants != 1 {
				t.Fatalf("last tail node descendants = %d, want 1", st[last].Descendants)
			}
			if st[last].Delta != p.H+p.L {
				t.Fatalf("last tail node delta = %d, want %d", st[last].Delta, p.H+p.L)
			}
		}
	}
}

// TestLemma2Inequality verifies the paper's Lemma 2 on constructed
// instances satisfying the Definition 1 constraint: for any non-root node
// u with delta > 1, n/k − D_u − l ≥ D_u·δ_u, and for delta = 1,
// n/k − D_u ≥ D_u.
func TestLemma2Inequality(t *testing.T) {
	params := []WillowsParams{
		{K: 2, H: 2, L: 0},
		{K: 2, H: 2, L: 1},
		{K: 2, H: 3, L: 0},
		{K: 2, H: 3, L: 2},
		{K: 3, H: 2, L: 0},
		{K: 3, H: 2, L: 1},
	}
	for _, p := range params {
		if !p.MeetsPaperConstraint() {
			t.Fatalf("test params %+v must satisfy the Definition 1 constraint", p)
		}
		w, err := NewWillows(p)
		if err != nil {
			t.Fatal(err)
		}
		st := w.Structure()
		nOverK := p.N() / p.K
		for id, s := range st {
			switch {
			case s.Delta == 0:
				continue // roots are out of scope for the lemma
			case s.Delta == 1:
				if nOverK-s.Descendants < s.Descendants {
					t.Fatalf("%+v node %d (delta 1, D=%d): n/k−D < D", p, id, s.Descendants)
				}
			default:
				lhs := nOverK - s.Descendants - p.L
				rhs := s.Descendants * s.Delta
				if lhs < rhs {
					t.Fatalf("%+v node %d (delta %d, D=%d): n/k−D−l = %d < D·δ = %d",
						p, id, s.Delta, s.Descendants, lhs, rhs)
				}
			}
		}
	}
}

func TestStructurePanicsOnUneven(t *testing.T) {
	w, err := FitWillows(13, 2)
	if err != nil {
		t.Fatal(err)
	}
	if w.Params.L >= 0 {
		t.Skip("fit landed on a regular shape; nothing to check")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for uneven instance")
		}
	}()
	w.Structure()
}
