package construct

import (
	"testing"

	"bbc/internal/core"
)

func TestRingBaseline(t *testing.T) {
	spec, p, err := Ring(7)
	if err != nil {
		t.Fatal(err)
	}
	stable, err := core.IsEquilibrium(spec, p, core.SumDistances)
	if err != nil {
		t.Fatal(err)
	}
	if !stable {
		t.Fatal("the ring is the (n,1) equilibrium")
	}
}

func TestStarBaseline(t *testing.T) {
	spec, p, err := Star(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(spec); err != nil {
		t.Fatal(err)
	}
	g := p.Realize(spec)
	if !g.StronglyConnected() {
		// Star with hub->1 is not strongly connected? hub reaches 1 only;
		// spokes reach hub then 1. Nodes 2..n-1 have no in-links except...
		// spokes' links point at the hub, so only 0 and 1 are reachable.
		t.Log("star is intentionally not strongly connected; spokes are unreachable")
	}
	// The star must NOT be an equilibrium: unreachable spokes cost M and
	// any spoke can rewire.
	stable, err := core.IsEquilibrium(spec, p, core.SumDistances)
	if err != nil {
		t.Fatal(err)
	}
	if stable {
		t.Fatal("the star should not be a (n,1) equilibrium")
	}
	if _, _, err := Star(2); err == nil {
		t.Fatal("expected error for n=2")
	}
}

func TestCompleteBaseline(t *testing.T) {
	spec, p, err := Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	stable, err := core.IsEquilibrium(spec, p, core.SumDistances)
	if err != nil {
		t.Fatal(err)
	}
	if !stable {
		t.Fatal("the complete graph is the k=n-1 equilibrium")
	}
	if got := core.SocialCost(spec, p, core.SumDistances); got != 20 {
		t.Fatalf("complete cost = %d, want 20", got)
	}
}

func TestBidirectionalRingBaseline(t *testing.T) {
	spec, p, err := BidirectionalRing(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(spec); err != nil {
		t.Fatal(err)
	}
	g := p.Realize(spec)
	diam, strong := g.Diameter(true)
	if !strong || diam != 4 {
		t.Fatalf("bidirectional 8-ring diameter = %d strong=%v, want 4,true", diam, strong)
	}
	if _, _, err := BidirectionalRing(2); err == nil {
		t.Fatal("expected error for n=2")
	}
}
