package construct

import (
	"fmt"

	"bbc/internal/core"
)

// MaxPoAParams selects the Theorem 8 construction: a high-social-cost Nash
// equilibrium for the uniform BBC-max game, built from 2k−1 directed tails
// of length l each plus a root, so n = 1 + (2k−1)·l.
type MaxPoAParams struct {
	K int // budget, must be >= 3 (the paper handles k = 2 by a separate ad-hoc variant)
	L int // tail length, must be >= 2
}

// Validate checks the parameter ranges this implementation supports.
func (p MaxPoAParams) Validate() error {
	if p.K < 3 {
		return fmt.Errorf("construct: max-PoA graph needs K >= 3, got %d", p.K)
	}
	if p.L < 2 {
		return fmt.Errorf("construct: max-PoA graph needs L >= 2, got %d", p.L)
	}
	return nil
}

// N returns the total node count 1 + (2K−1)·L.
func (p MaxPoAParams) N() int { return 1 + (2*p.K-1)*p.L }

// MaxPoA holds the constructed instance.
type MaxPoA struct {
	Params  MaxPoAParams
	Spec    *core.Uniform
	Profile core.Profile
	// Root is the node id of the root r.
	Root int
	// Tails[i] lists the node ids of tail t_i in head-to-end order.
	Tails [][]int
	// Heads lists the segment heads: Heads[0] = root (segment S1 contains
	// tails t_1..t_k), Heads[j] = head of tail t_{k+j} for j >= 1.
	Heads []int
}

// NewMaxPoA builds the Figure 6 graph:
//
//   - the root points at the heads of the first K tails (segment S1);
//   - the remaining K−1 tails are their own segments, headed by their
//     first node;
//   - the last node of every tail points at all K segment heads;
//   - every interior tail node points down its tail, at its own tail's
//     end, and at the root, with any remaining budget spread over the
//     other segment heads (the paper: "the location of the rest of the
//     edges don't matter").
//
// The resulting graph is a Nash equilibrium of the (n, K)-uniform BBC-max
// game with per-node max distance l+2, giving social cost Θ(n²/k) against
// the O(n·log_k n) optimum — the Ω(n/(k·log_k n)) price-of-anarchy bound.
func NewMaxPoA(p MaxPoAParams) (*MaxPoA, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.N()
	spec, err := core.NewUniform(n, p.K)
	if err != nil {
		return nil, err
	}
	m := &MaxPoA{
		Params:  p,
		Spec:    spec,
		Profile: core.NewEmptyProfile(n),
		Root:    0,
		Tails:   make([][]int, 2*p.K-1),
	}
	// Node layout: 0 is the root; tail t_i (0-based index i) occupies
	// 1+i*L .. 1+(i+1)*L-1 in head-to-end order.
	for i := range m.Tails {
		tail := make([]int, p.L)
		for j := range tail {
			tail[j] = 1 + i*p.L + j
		}
		m.Tails[i] = tail
	}
	m.Heads = make([]int, 0, p.K)
	m.Heads = append(m.Heads, m.Root)
	for i := p.K; i < 2*p.K-1; i++ {
		m.Heads = append(m.Heads, m.Tails[i][0])
	}

	// Root: heads of the first K tails.
	rootTargets := make([]int, 0, p.K)
	for i := 0; i < p.K; i++ {
		rootTargets = append(rootTargets, m.Tails[i][0])
	}
	m.Profile[m.Root] = core.NormalizeStrategy(rootTargets)

	for _, tail := range m.Tails {
		end := tail[p.L-1]
		// End node: all K segment heads.
		m.Profile[end] = core.NormalizeStrategy(m.Heads)
		// Interior nodes: chain + own end + root + filler heads. The chain
		// target equals the end for the second-to-last node, so build the
		// target set with explicit dedup and never exceed K entries.
		for j := 0; j < p.L-1; j++ {
			node := tail[j]
			targets := []int{tail[j+1]}
			for _, t := range []int{end, m.Root} {
				if !contains(targets, t) {
					targets = append(targets, t)
				}
			}
			for _, h := range m.Heads {
				if len(targets) >= p.K {
					break
				}
				if h != node && !contains(targets, h) {
					targets = append(targets, h)
				}
			}
			m.Profile[node] = core.NormalizeStrategy(targets)
		}
	}
	if err := m.Profile.Validate(spec); err != nil {
		return nil, fmt.Errorf("construct: max-PoA produced invalid profile: %w", err)
	}
	return m, nil
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
