package construct

import (
	"testing"

	"bbc/internal/core"
)

func TestMaxPoAValidation(t *testing.T) {
	if _, err := NewMaxPoA(MaxPoAParams{K: 2, L: 3}); err == nil {
		t.Fatal("K=2 should be rejected")
	}
	if _, err := NewMaxPoA(MaxPoAParams{K: 3, L: 1}); err == nil {
		t.Fatal("L=1 should be rejected")
	}
}

func TestMaxPoAShape(t *testing.T) {
	m, err := NewMaxPoA(MaxPoAParams{K: 3, L: 3})
	if err != nil {
		t.Fatal(err)
	}
	wantN := 1 + 5*3
	if m.Spec.N() != wantN {
		t.Fatalf("N = %d, want %d", m.Spec.N(), wantN)
	}
	if len(m.Tails) != 5 {
		t.Fatalf("tails = %d, want 5", len(m.Tails))
	}
	if len(m.Heads) != 3 {
		t.Fatalf("heads = %d, want 3", len(m.Heads))
	}
	if !m.Profile.Realize(m.Spec).StronglyConnected() {
		t.Fatal("max-PoA graph must be strongly connected")
	}
}

func TestMaxPoAPerNodeMaxDistance(t *testing.T) {
	// The paper's analysis: per-node max distance is l+2.
	p := MaxPoAParams{K: 3, L: 4}
	m, err := NewMaxPoA(p)
	if err != nil {
		t.Fatal(err)
	}
	g := m.Profile.Realize(m.Spec)
	for u := 0; u < m.Spec.N(); u++ {
		cost := core.NodeCost(m.Spec, g, u, core.MaxDistance)
		if cost > int64(p.L+2) {
			t.Fatalf("node %d max distance %d exceeds l+2 = %d", u, cost, p.L+2)
		}
	}
}

func TestMaxPoAIsNashUnderMaxCost(t *testing.T) {
	// Theorem 8: the construction is a Nash equilibrium of the uniform
	// BBC-max game.
	for _, p := range []MaxPoAParams{{K: 3, L: 2}, {K: 3, L: 4}} {
		m, err := NewMaxPoA(p)
		if err != nil {
			t.Fatal(err)
		}
		dev, err := core.FindDeviation(m.Spec, m.Profile, core.MaxDistance, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if dev != nil {
			t.Fatalf("%+v (n=%d): not a max-cost Nash equilibrium: %+v", p, p.N(), dev)
		}
	}
}

func TestMaxPoAIsNashLarger(t *testing.T) {
	if testing.Short() {
		t.Skip("larger stability check skipped in -short")
	}
	for _, p := range []MaxPoAParams{{K: 4, L: 3}, {K: 3, L: 6}} {
		m, err := NewMaxPoA(p)
		if err != nil {
			t.Fatal(err)
		}
		dev, err := core.FindDeviation(m.Spec, m.Profile, core.MaxDistance, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if dev != nil {
			t.Fatalf("%+v (n=%d): not a max-cost Nash equilibrium: %+v", p, p.N(), dev)
		}
	}
}

func TestMaxPoASocialCostScales(t *testing.T) {
	// Social max-cost of the construction is Θ(n·l) = Θ(n²/k); the optimum
	// is O(n·log_k n). The ratio must grow with l at fixed k.
	ratio := func(p MaxPoAParams) float64 {
		m, err := NewMaxPoA(p)
		if err != nil {
			t.Fatal(err)
		}
		bad := core.SocialCost(m.Spec, m.Profile, core.MaxDistance)
		w, err := NewWillows(WillowsParams{K: p.K, H: 2, L: 0})
		if err != nil {
			t.Fatal(err)
		}
		good := core.SocialCost(w.Spec, w.Profile, core.MaxDistance)
		return float64(bad) / float64(good) * float64(w.Params.N()) / float64(p.N())
	}
	small := ratio(MaxPoAParams{K: 3, L: 2})
	large := ratio(MaxPoAParams{K: 3, L: 6})
	if large <= small {
		t.Fatalf("normalized PoA ratio should grow with l: %f vs %f", small, large)
	}
}
