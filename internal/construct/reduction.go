package construct

import (
	"fmt"

	"bbc/internal/core"
	"bbc/internal/sat"
)

// Reduction is the Theorem 2 instance: a non-uniform BBC game built from a
// 3SAT formula such that the game has a pure Nash equilibrium iff the
// formula is satisfiable. Following the paper, links drawn in Figure 2
// have length 1 and every other link has a large length L (so undrawn
// links are never attractive shortcuts); the disconnection penalty is
// M = n·L + 1.
//
// Layout per variable x_i: a variable node X_i plus truth nodes X_iT and
// X_iF (budget 0). Per clause c_j: a clause node K_j plus one intermediate
// node I_jk per literal. A hub node S (budget m) links every clause node.
// The embedded no-equilibrium gadget is MatchingPennies with its centers
// given two extra preference groups: weight 2 for every intermediate node
// and weight 2m−1 for the other center — so a center prefers three-hop
// paths to m intermediates (achieved by linking S when every clause node
// has linked a satisfied intermediate) over the three-hop path to the
// other center that playing the gadget game chases.
type Reduction struct {
	Formula *sat.Formula
	Spec    *core.Dense
	Weights GadgetWeights
	// S is the hub node id.
	S int
	// GadgetBase is the id of gadget node 0C; gadget node g is at
	// GadgetBase + g.
	GadgetBase int
}

// FromCNF builds the reduction for a 3SAT formula. Every clause must have
// exactly three literals over distinct variables.
func FromCNF(f *sat.Formula, w GadgetWeights) (*Reduction, error) {
	if f.NumVars < 1 || len(f.Clauses) < 1 {
		return nil, fmt.Errorf("construct: reduction needs at least one variable and one clause")
	}
	for j, c := range f.Clauses {
		if len(c) != 3 {
			return nil, fmt.Errorf("construct: clause %d has %d literals, want 3", j, len(c))
		}
	}
	m := len(f.Clauses)
	r := &Reduction{Formula: f, Weights: w}
	n := 3*f.NumVars + 4*m + 1 + gadgetSize
	r.S = 3*f.NumVars + 4*m
	r.GadgetBase = r.S + 1

	d := core.NewDense(n)
	bigL := int64(n + 1)
	d.M = int64(n)*bigL + 1
	// Default: weight 0, length L, cost 1, budget 1.
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				d.Weights[u][v] = 0
				d.Lengths[u][v] = bigL
			}
		}
	}
	short := func(u, v int) { d.Lengths[u][v] = 1 }

	// Variables.
	for i := 1; i <= f.NumVars; i++ {
		x := r.VarNode(i)
		xt := r.TruthNode(i, true)
		xf := r.TruthNode(i, false)
		d.Weights[x][xt] = 1
		d.Weights[x][xf] = 1
		short(x, xt)
		short(x, xf)
		d.Budgets[xt] = 0
		d.Budgets[xf] = 0
	}
	// Clauses and intermediates.
	for j, c := range f.Clauses {
		k := r.ClauseNode(j)
		d.Weights[k][r.S] = 1
		short(k, r.S)
		for li, lit := range c {
			in := r.InterNode(j, li)
			x := r.VarNode(lit.Var())
			truth := r.TruthNode(lit.Var(), lit.Positive())
			d.Weights[in][x] = 1
			d.Weights[in][truth] = 1
			short(in, x)
			d.Weights[k][truth] = 2
			short(k, in)
		}
	}
	// Hub S links every clause node.
	d.Budgets[r.S] = int64(m)
	for j := range f.Clauses {
		d.Weights[r.S][r.ClauseNode(j)] = 1
		short(r.S, r.ClauseNode(j))
	}

	// Gadget: same weight structure as MatchingPennies, with the centers'
	// resolution preferences added.
	gb := r.GadgetBase
	gw := func(a, b int, weight int64) {
		d.Weights[gb+a][gb+b] = weight
		short(gb+a, gb+b)
	}
	gw(G0LT, G1RB, 1)
	gw(G0RT, G1LB, 1)
	gw(G1LT, G0LB, 1)
	gw(G1RT, G0RB, 1)
	resolution := int64(2*m - 1)
	for _, c := range []struct{ center, lt, rt, other int }{
		{center: G0C, lt: G0LT, rt: G0RT, other: G1C},
		{center: G1C, lt: G1LT, rt: G1RT, other: G0C},
	} {
		gw(c.center, c.lt, w.Zeta)
		gw(c.center, c.rt, w.Zeta)
		d.Weights[gb+c.center][gb+c.other] = resolution
		// Centers reach the other center through the gadget's short links;
		// a direct link stays long.
		d.Weights[gb+c.center][r.S] = 0 // no direct S preference; S is a route
		short(gb+c.center, r.S)
		for j := range f.Clauses {
			for li := 0; li < 3; li++ {
				d.Weights[gb+c.center][r.InterNode(j, li)] = 2
			}
		}
	}
	bottoms := []struct{ b, center, cross, harbor int }{
		{b: G0LB, center: G0C, cross: G0RT, harbor: GX0},
		{b: G0RB, center: G0C, cross: G0LT, harbor: GX0},
		{b: G1LB, center: G1C, cross: G1RT, harbor: GX1},
		{b: G1RB, center: G1C, cross: G1LT, harbor: GX1},
	}
	for _, bt := range bottoms {
		d.Weights[gb+bt.b][gb+bt.harbor] = w.AlphaHarbor
		d.Weights[gb+bt.b][gb+GTA] = w.AlphaTerminal
		d.Weights[gb+bt.b][gb+bt.center] = w.Beta
		d.Weights[gb+bt.b][gb+bt.cross] = w.Gamma
		short(gb+bt.b, gb+bt.center)
		short(gb+bt.b, gb+bt.harbor)
	}
	gw(GX0, GTA, 1)
	gw(GX1, GTA, 1)
	gw(GTA, GTB, 1)
	gw(GTB, GTA, 1)

	if err := d.Seal(); err != nil {
		return nil, fmt.Errorf("construct: reduction seal: %w", err)
	}
	r.Spec = d
	return r, nil
}

// VarNode returns the node id of variable x_i (1-based i).
func (r *Reduction) VarNode(i int) int { return 3 * (i - 1) }

// TruthNode returns the node id of X_iT (val=true) or X_iF.
func (r *Reduction) TruthNode(i int, val bool) int {
	if val {
		return 3*(i-1) + 1
	}
	return 3*(i-1) + 2
}

// ClauseNode returns the node id of clause node K_j (0-based j).
func (r *Reduction) ClauseNode(j int) int { return 3*r.Formula.NumVars + 4*j }

// InterNode returns the node id of intermediate node I_jk (0-based j, k).
func (r *Reduction) InterNode(j, k int) int { return 3*r.Formula.NumVars + 4*j + 1 + k }

// AssignmentProfile returns the intended profile for a satisfying
// assignment: variables link their truth value, intermediates link their
// variable, each clause links an intermediate whose literal is satisfied,
// S links all clauses, the gadget centers link S, tops and harbors play
// their pins, and bottoms retreat to their harbors. When the assignment
// satisfies the formula this profile is a pure Nash equilibrium.
func (r *Reduction) AssignmentProfile(a sat.Assignment) (core.Profile, error) {
	if len(a) < r.Formula.NumVars+1 {
		return nil, fmt.Errorf("construct: assignment covers %d vars, need %d", len(a)-1, r.Formula.NumVars)
	}
	p := core.NewEmptyProfile(r.Spec.N())
	for i := 1; i <= r.Formula.NumVars; i++ {
		p[r.VarNode(i)] = core.Strategy{r.TruthNode(i, a[i])}
	}
	for j, c := range r.Formula.Clauses {
		satK := -1
		for li, lit := range c {
			p[r.InterNode(j, li)] = core.Strategy{r.VarNode(lit.Var())}
			if satK < 0 && a[lit.Var()] == lit.Positive() {
				satK = li
			}
		}
		if satK < 0 {
			return nil, fmt.Errorf("construct: assignment does not satisfy clause %d", j)
		}
		p[r.ClauseNode(j)] = core.Strategy{r.InterNode(j, satK)}
	}
	sLinks := make([]int, 0, len(r.Formula.Clauses))
	for j := range r.Formula.Clauses {
		sLinks = append(sLinks, r.ClauseNode(j))
	}
	p[r.S] = core.NormalizeStrategy(sLinks)

	gb := r.GadgetBase
	p[gb+G0C] = core.Strategy{r.S}
	p[gb+G1C] = core.Strategy{r.S}
	p[gb+G0LT] = core.Strategy{gb + G1RB}
	p[gb+G0RT] = core.Strategy{gb + G1LB}
	p[gb+G1LT] = core.Strategy{gb + G0LB}
	p[gb+G1RT] = core.Strategy{gb + G0RB}
	p[gb+G0LB] = core.Strategy{gb + GX0}
	p[gb+G0RB] = core.Strategy{gb + GX0}
	p[gb+G1LB] = core.Strategy{gb + GX1}
	p[gb+G1RB] = core.Strategy{gb + GX1}
	p[gb+GX0] = core.Strategy{gb + GTA}
	p[gb+GX1] = core.Strategy{gb + GTA}
	p[gb+GTA] = core.Strategy{gb + GTB}
	p[gb+GTB] = core.Strategy{gb + GTA}
	if err := p.Validate(r.Spec); err != nil {
		return nil, fmt.Errorf("construct: assignment profile invalid: %w", err)
	}
	return p, nil
}

// DecodeAssignment reads the variable nodes' links out of a profile,
// returning the implied truth assignment (variables with no readable link
// default to false).
func (r *Reduction) DecodeAssignment(p core.Profile) sat.Assignment {
	a := make(sat.Assignment, r.Formula.NumVars+1)
	for i := 1; i <= r.Formula.NumVars; i++ {
		for _, v := range p[r.VarNode(i)] {
			if v == r.TruthNode(i, true) {
				a[i] = true
			}
		}
	}
	return a
}
