package construct

import (
	"bbc/internal/core"
)

// Gadget node indices for the matching-pennies instance of Theorem 1. The
// layout follows Figure 1 — two sub-gadgets, each with a central node, two
// top and two bottom nodes — with the paper's single safe-harbor node X
// replaced by one harbor per sub-gadget (X0, X1) feeding a shared terminal
// pair (TA, TB). The extra nodes are the paper's "extends to n > 11 by
// forcing the remaining links with appropriate preferences": they arise
// because the figure's exact solid-edge set did not survive into the text,
// and the transitive-connectivity escape hatches a literal one-harbor
// reconstruction admits (a bottom node can reach its own center through its
// cross-over top when the inter-gadget loop is live) are closed by (a)
// valuing the terminal TA behind the harbors rather than the harbors
// themselves and (b) requiring alpha > beta + gamma. The no-pure-NE
// property of the resulting 14-node game is verified exhaustively in the
// tests and in experiment E1.
const (
	G0C = iota
	G0LT
	G0RT
	G0LB
	G0RB
	G1C
	G1LT
	G1RT
	G1LB
	G1RB
	GX0
	GX1
	GTA
	GTB
	gadgetSize
)

// GadgetWeights are the preference magnitudes of the no-equilibrium gadget.
type GadgetWeights struct {
	// Zeta is a center's preference for each top node of its own
	// sub-gadget; Xi is its preference for the other center (ξ < ζ).
	Zeta, Xi int64
	// AlphaHarbor is a bottom node's preference for its own safe harbor
	// and AlphaTerminal its preference for the shared terminal TA behind
	// the harbors; valuing both makes the harbor link strictly dominate a
	// direct terminal link. Beta is the preference for the bottom's own
	// center and Gamma for its cross-over top. The switch works when
	// AlphaHarbor > Beta (harbor wins when the center points away) and
	// escapes through the cross-over top are unprofitable when
	// AlphaHarbor + AlphaTerminal > Beta + Gamma.
	AlphaHarbor, AlphaTerminal, Beta, Gamma int64
}

// DefaultGadgetWeights returns weights satisfying all the switch
// inequalities: ζ=2 > ξ=1, α1=2 > β=1, α1+α2=5 > β+γ=3.
func DefaultGadgetWeights() GadgetWeights {
	return GadgetWeights{Zeta: 2, Xi: 1, AlphaHarbor: 2, AlphaTerminal: 3, Beta: 1, Gamma: 2}
}

// MatchingPennies builds the 14-node non-uniform BBC game (uniform link
// costs, uniform unit lengths, uniform budget 1, non-uniform preferences)
// that has no pure Nash equilibrium. It encodes matching pennies between
// the two central nodes:
//
//   - each top node is pinned at a bottom node of the other sub-gadget
//     (0LT→1RB, 0RT→1LB, 1LT→0LB, 1RT→0RB), so a center reaches the other
//     center exactly when the bottom its chosen top points at currently
//     links its own center;
//   - a bottom node links its center when the center points at the
//     bottom's cross-over top, and its sub-gadget's safe harbor otherwise;
//   - the harbors X0, X1 both feed the shared terminal TA (TA and TB pin
//     each other); a bottom values both its own harbor and TA, so the
//     harbor link strictly dominates a direct terminal link, and a bottom
//     that abandons its harbor duties loses both with the full
//     disconnection penalty unless some bottom on its route still links a
//     harbor.
//
// Chasing the implied best responses yields the four-state cycle
// (L,L)→(L,R)→(R,R)→(R,L)→(L,L) over the centers' choices; exhaustive
// search over the (pinned) strategy space confirms no profile is stable.
func MatchingPennies(w GadgetWeights) *core.Dense {
	d := core.NewDense(gadgetSize)
	for u := 0; u < gadgetSize; u++ {
		for v := 0; v < gadgetSize; v++ {
			if u != v {
				d.Weights[u][v] = 0
			}
		}
	}
	// Tops: singleton supports (pinned), anti-matched pairing.
	d.Weights[G0LT][G1RB] = 1
	d.Weights[G0RT][G1LB] = 1
	d.Weights[G1LT][G0LB] = 1
	d.Weights[G1RT][G0RB] = 1
	// Centers: both own tops (ζ) plus the other center (ξ).
	d.Weights[G0C][G0LT] = w.Zeta
	d.Weights[G0C][G0RT] = w.Zeta
	d.Weights[G0C][G1C] = w.Xi
	d.Weights[G1C][G1LT] = w.Zeta
	d.Weights[G1C][G1RT] = w.Zeta
	d.Weights[G1C][G0C] = w.Xi
	// Bottoms: shared terminal TA (α), own center (β), cross-over top (γ).
	bottoms := []struct{ b, center, cross, harbor int }{
		{b: G0LB, center: G0C, cross: G0RT, harbor: GX0},
		{b: G0RB, center: G0C, cross: G0LT, harbor: GX0},
		{b: G1LB, center: G1C, cross: G1RT, harbor: GX1},
		{b: G1RB, center: G1C, cross: G1LT, harbor: GX1},
	}
	for _, bt := range bottoms {
		d.Weights[bt.b][bt.harbor] = w.AlphaHarbor
		d.Weights[bt.b][GTA] = w.AlphaTerminal
		d.Weights[bt.b][bt.center] = w.Beta
		d.Weights[bt.b][bt.cross] = w.Gamma
	}
	// Harbors feed the terminal; the terminal pair pins itself.
	d.Weights[GX0][GTA] = 1
	d.Weights[GX1][GTA] = 1
	d.Weights[GTA][GTB] = 1
	d.Weights[GTB][GTA] = 1
	return d.MustSeal()
}

// GadgetLabels maps gadget node ids to their paper names, for DOT export
// and diagnostics.
func GadgetLabels() map[int]string {
	return map[int]string{
		G0C: "0C", G0LT: "0LT", G0RT: "0RT", G0LB: "0LB", G0RB: "0RB",
		G1C: "1C", G1LT: "1LT", G1RT: "1RT", G1LB: "1LB", G1RB: "1RB",
		GX0: "X0", GX1: "X1", GTA: "TA", GTB: "TB",
	}
}

// IntendedGadgetProfile returns the profile corresponding to the centers'
// choices (c0, c1) ∈ {left, right}² with every other node playing its
// intended role: tops and harbors pinned, bottoms switching between center
// and harbor. It is the state the best-response cycle walks through.
func IntendedGadgetProfile(c0Left, c1Left bool) core.Profile {
	p := core.NewEmptyProfile(gadgetSize)
	p[G0LT] = core.Strategy{G1RB}
	p[G0RT] = core.Strategy{G1LB}
	p[G1LT] = core.Strategy{G0LB}
	p[G1RT] = core.Strategy{G0RB}
	p[GX0] = core.Strategy{GTA}
	p[GX1] = core.Strategy{GTA}
	p[GTA] = core.Strategy{GTB}
	p[GTB] = core.Strategy{GTA}
	if c0Left {
		p[G0C] = core.Strategy{G0LT}
		// 0RB's cross is 0LT (pointed) -> center; 0LB's cross 0RT -> harbor.
		p[G0RB] = core.Strategy{G0C}
		p[G0LB] = core.Strategy{GX0}
	} else {
		p[G0C] = core.Strategy{G0RT}
		p[G0LB] = core.Strategy{G0C}
		p[G0RB] = core.Strategy{GX0}
	}
	if c1Left {
		p[G1C] = core.Strategy{G1LT}
		p[G1RB] = core.Strategy{G1C}
		p[G1LB] = core.Strategy{GX1}
	} else {
		p[G1C] = core.Strategy{G1RT}
		p[G1LB] = core.Strategy{G1C}
		p[G1RB] = core.Strategy{GX1}
	}
	return p
}
