package construct

import (
	"fmt"

	"bbc/internal/core"
)

// UnevenWillows builds a Forest-of-Willows-shaped graph in which each
// leaf's tail may have its own length — the machinery behind the paper's
// "this can be extended to other values of n by adding additional [nodes]
// as evenly as possible across the trees". tailLens[s][i] is the tail
// length under leaf i of section s; it must cover K sections × K^H leaves.
func UnevenWillows(k, h int, tailLens [][]int) (*Willows, error) {
	base := WillowsParams{K: k, H: h}
	if k < 1 || h < 0 {
		return nil, fmt.Errorf("construct: uneven willows needs K >= 1, H >= 0")
	}
	leaves := base.Leaves()
	if len(tailLens) != k {
		return nil, fmt.Errorf("construct: tail lengths cover %d sections, want %d", len(tailLens), k)
	}
	treeSize := base.TreeSize()
	secSizes := make([]int, k)
	n := 0
	for s := 0; s < k; s++ {
		if len(tailLens[s]) != leaves {
			return nil, fmt.Errorf("construct: section %d has %d tail lengths, want %d", s, len(tailLens[s]), leaves)
		}
		secSizes[s] = treeSize
		for _, l := range tailLens[s] {
			if l < 0 {
				return nil, fmt.Errorf("construct: negative tail length in section %d", s)
			}
			secSizes[s] += l
		}
		n += secSizes[s]
	}
	if h == 0 {
		for s := 0; s < k; s++ {
			if tailLens[s][0] == 0 {
				return nil, fmt.Errorf("construct: H=0 requires every tail non-empty (the root cannot self-link)")
			}
		}
	}
	if n < 2 {
		return nil, fmt.Errorf("construct: uneven willows has fewer than 2 nodes")
	}
	spec, err := core.NewUniform(n, k)
	if err != nil {
		return nil, fmt.Errorf("construct: uneven willows: %w", err)
	}
	w := &Willows{
		Params:   WillowsParams{K: k, H: h, L: -1}, // L is per-tail; -1 marks uneven
		Spec:     spec,
		Profile:  core.NewEmptyProfile(n),
		Roots:    make([]int, k),
		Sections: make([][]int, k),
	}
	offset := 0
	for s := 0; s < k; s++ {
		w.Roots[s] = offset
		ids := make([]int, secSizes[s])
		for j := range ids {
			ids[j] = offset + j
		}
		w.Sections[s] = ids
		offset += secSizes[s]
	}
	for sec := 0; sec < k; sec++ {
		base := w.Roots[sec]
		internal := treeSize - leaves
		for j := 0; j < internal; j++ {
			targets := make([]int, 0, k)
			for c := 1; c <= k; c++ {
				targets = append(targets, base+k*j+c)
			}
			w.Profile[base+j] = core.NormalizeStrategy(targets)
		}
		tailBase := base + treeSize
		for lf := 0; lf < leaves; lf++ {
			l := tailLens[sec][lf]
			chain := make([]int, 0, l+1)
			chain = append(chain, base+internal+lf)
			for t := 0; t < l; t++ {
				chain = append(chain, tailBase+t)
			}
			tailBase += l
			w.wireChain(sec, chain)
		}
	}
	if err := w.Profile.Validate(spec); err != nil {
		return nil, fmt.Errorf("construct: uneven willows produced invalid profile: %w", err)
	}
	return w, nil
}

// FitWillows builds a Willows-shaped graph on exactly n nodes with budget
// k, realizing the paper's remark that the construction "can be extended
// to other values of n". It picks the largest height H whose bare forest
// fits, spreads the remaining nodes as uniform tail length L, and
// distributes the final remainder one extra tail node at a time round-robin
// across sections (and leaves within a section) — "as evenly as possible
// across the trees". Stability of the fitted instances is checked
// empirically (experiment E22); the paper asserts it only for the uniform
// shape under its parameter constraint.
func FitWillows(n, k int) (*Willows, error) {
	if k < 1 {
		return nil, fmt.Errorf("construct: FitWillows needs k >= 1")
	}
	minN := (WillowsParams{K: k, H: 1}).N() // the smallest regular shape with a real tree
	if k == 1 {
		minN = 2 // a 2-cycle: H=1 tree is a 2-path with the leaf linking the root
	}
	if n < minN {
		return nil, fmt.Errorf("construct: FitWillows needs n >= %d for k=%d, got %d", minN, k, n)
	}
	// Largest H whose bare forest (L=0) fits in n.
	h := 1
	for {
		next := WillowsParams{K: k, H: h + 1}
		if next.N() > n {
			break
		}
		h++
	}
	base := WillowsParams{K: k, H: h}
	leaves := base.Leaves()
	chains := k * leaves
	remaining := n - base.N()
	l := remaining / chains
	extra := remaining % chains
	tailLens := make([][]int, k)
	for s := 0; s < k; s++ {
		tailLens[s] = make([]int, leaves)
		for i := range tailLens[s] {
			tailLens[s][i] = l
		}
	}
	// Distribute the remainder round-robin across sections first, then
	// leaves, so no tree is more than one node longer than another.
	for e := 0; e < extra; e++ {
		sec := e % k
		leaf := (e / k) % leaves
		tailLens[sec][leaf]++
	}
	return UnevenWillows(k, h, tailLens)
}
