// Package construct builds every explicit instance in the BBC paper: the
// Forest of Willows stable graphs (Definition 1, Figure 3), the
// matching-pennies gadgets behind the no-equilibrium results (Theorems 1
// and 7, Figures 1 and 5), the 3SAT reduction (Theorem 2, Figure 2), the
// ring+path slow-convergence instance (Section 4.3), and the high-cost
// BBC-max Nash graph (Theorem 8, Figure 6).
package construct

import (
	"fmt"

	"bbc/internal/core"
)

// WillowsParams selects a Forest of Willows graph: K trees (and budget K),
// each a complete K-ary tree of height H, with a tail of L extra nodes
// hanging beneath every leaf.
type WillowsParams struct {
	K, H, L int
}

// Validate checks basic shape requirements (positive K, non-negative H and
// L, and at least two nodes overall).
func (p WillowsParams) Validate() error {
	if p.K < 1 {
		return fmt.Errorf("construct: willows needs K >= 1, got %d", p.K)
	}
	if p.H < 0 || p.L < 0 {
		return fmt.Errorf("construct: willows needs H, L >= 0, got H=%d L=%d", p.H, p.L)
	}
	if p.H == 0 && p.L == 0 {
		// The chain's last node would be the root itself and point to all
		// roots, creating a self link.
		return fmt.Errorf("construct: willows needs H >= 1 or L >= 1")
	}
	if p.N() < 2 {
		return fmt.Errorf("construct: willows with K=%d H=%d L=%d has fewer than 2 nodes", p.K, p.H, p.L)
	}
	return nil
}

// MeetsPaperConstraint reports whether the parameters satisfy the paper's
// stability precondition (h+l)²/4 + h + 2l + 1 < n/k. Definition 1 proves
// stability only under this constraint; smaller instances may or may not be
// stable and are checked computationally in the experiments.
func (p WillowsParams) MeetsPaperConstraint() bool {
	n := p.N()
	lhs := float64(p.H+p.L)*float64(p.H+p.L)/4 + float64(p.H) + 2*float64(p.L) + 1
	return lhs < float64(n)/float64(p.K)
}

// TreeSize returns the number of nodes in one complete K-ary tree of
// height H, i.e. (K^(H+1)-1)/(K-1), or H+1 when K = 1.
func (p WillowsParams) TreeSize() int {
	if p.K == 1 {
		return p.H + 1
	}
	size := 0
	pow := 1
	for d := 0; d <= p.H; d++ {
		size += pow
		pow *= p.K
	}
	return size
}

// Leaves returns the number of leaves per tree, K^H.
func (p WillowsParams) Leaves() int {
	pow := 1
	for d := 0; d < p.H; d++ {
		pow *= p.K
	}
	return pow
}

// SectionSize returns the number of nodes in one section R_i: the tree
// plus all its tails.
func (p WillowsParams) SectionSize() int {
	return p.TreeSize() + p.Leaves()*p.L
}

// N returns the total number of nodes, K · SectionSize.
func (p WillowsParams) N() int { return p.K * p.SectionSize() }

// Willows holds a constructed Forest of Willows instance: the uniform game
// spec, the strategy profile realizing the graph, and the node layout.
type Willows struct {
	Params  WillowsParams
	Spec    *core.Uniform
	Profile core.Profile
	// Roots[i] is the node id of root r_i.
	Roots []int
	// Sections[i] lists the node ids of R_i (tree plus tails).
	Sections [][]int
}

// NewWillows builds the Forest of Willows graph for the given parameters.
// Node ids are laid out section by section; within a section the tree is in
// level order followed by the tails leaf by leaf.
func NewWillows(p WillowsParams) (*Willows, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.N()
	spec, err := core.NewUniform(n, p.K)
	if err != nil {
		return nil, fmt.Errorf("construct: willows: %w", err)
	}
	w := &Willows{
		Params:   p,
		Spec:     spec,
		Profile:  core.NewEmptyProfile(n),
		Roots:    make([]int, p.K),
		Sections: make([][]int, p.K),
	}
	secSize := p.SectionSize()
	treeSize := p.TreeSize()
	leaves := p.Leaves()
	for i := 0; i < p.K; i++ {
		w.Roots[i] = i * secSize
		ids := make([]int, secSize)
		for j := range ids {
			ids[j] = i*secSize + j
		}
		w.Sections[i] = ids
	}

	for sec := 0; sec < p.K; sec++ {
		base := sec * secSize
		// Tree edges: level-order (heap) layout; node j's children are
		// K*j+1 .. K*j+K for j in the internal levels.
		internal := treeSize - leaves
		for j := 0; j < internal; j++ {
			targets := make([]int, 0, p.K)
			for c := 1; c <= p.K; c++ {
				child := p.K*j + c
				targets = append(targets, base+child)
			}
			w.Profile[base+j] = core.NormalizeStrategy(targets)
		}
		// Chains: each leaf plus its tail of L nodes.
		firstLeaf := internal
		for lf := 0; lf < leaves; lf++ {
			chain := make([]int, 0, p.L+1)
			chain = append(chain, base+firstLeaf+lf)
			for t := 0; t < p.L; t++ {
				chain = append(chain, base+treeSize+lf*p.L+t)
			}
			w.wireChain(sec, chain)
		}
	}
	if err := w.Profile.Validate(spec); err != nil {
		return nil, fmt.Errorf("construct: willows produced invalid profile: %w", err)
	}
	return w, nil
}

// wireChain assigns strategies to a leaf-plus-tail chain in section sec.
// The last chain node points at every root. Above it, nodes point one step
// down the chain plus K-1 roots chosen by the paper's alternating rule:
// odd distance from the bottom omits the section's own root; even distance
// (>= 2) keeps the own root and omits one arbitrary other root.
func (w *Willows) wireChain(sec int, chain []int) {
	k := w.Params.K
	for pos, node := range chain {
		fromBottom := len(chain) - 1 - pos
		var targets []int
		if fromBottom == 0 {
			targets = append(targets, w.Roots...)
		} else {
			targets = append(targets, chain[pos+1])
			if fromBottom%2 == 1 {
				// All roots except the section's own.
				for i, r := range w.Roots {
					if i != sec {
						targets = append(targets, r)
					}
				}
			} else if k > 1 {
				// Own root plus all others except one arbitrary non-own
				// root (the next section cyclically). For k = 1 there are
				// k-1 = 0 root edges above the bottom node.
				skip := (sec + 1) % k
				for i, r := range w.Roots {
					if i != skip {
						targets = append(targets, r)
					}
				}
			}
		}
		w.Profile[node] = core.NormalizeStrategy(targets)
	}
}
