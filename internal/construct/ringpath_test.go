package construct

import (
	"testing"

	"bbc/internal/core"
	"bbc/internal/dynamics"
)

func TestRingPathValidation(t *testing.T) {
	if _, _, err := RingPath(1, 3); err == nil {
		t.Fatal("ring of 1 should be rejected")
	}
	if _, _, err := RingPath(4, 0); err == nil {
		t.Fatal("empty path should be rejected")
	}
}

func TestRingPathShape(t *testing.T) {
	spec, p, err := RingPath(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if spec.N() != 9 {
		t.Fatalf("N = %d, want 9", spec.N())
	}
	g := p.Realize(spec)
	// Path tail reaches everything; ring nodes reach only the ring.
	if got := g.ReachOf(0); got != 9 {
		t.Fatalf("tail reach = %d, want 9", got)
	}
	if got := g.ReachOf(3); got != 6 {
		t.Fatalf("ring node reach = %d, want 6", got)
	}
	if g.StronglyConnected() {
		t.Fatal("ring+path must not start strongly connected")
	}
}

func TestRingPathSlowConvergence(t *testing.T) {
	// The Section 4.3 lower bound: round-robin (tail-first, then path, then
	// ring direction) takes Ω(n²) steps to reach strong connectivity.
	// Quantitatively, each round only grows the ring by one node, so
	// connectivity needs about (ring-growth) rounds of n steps each.
	ringSize, pathSize := 8, 4
	n := ringSize + pathSize
	spec, p, err := RingPath(ringSize, pathSize)
	if err != nil {
		t.Fatal(err)
	}
	order := RingPathRoundRobinOrder(ringSize, pathSize)
	res, err := dynamics.Run(spec, p, &dynamics.RoundRobin{Order: order}, core.SumDistances,
		dynamics.Options{MaxSteps: 20 * n * n, StopAtStrongConnectivity: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ConnectivityStep < 0 {
		t.Fatal("never reached strong connectivity")
	}
	if res.ConnectivityStep > n*n {
		t.Fatalf("connectivity took %d steps, above the paper's n² = %d bound", res.ConnectivityStep, n*n)
	}
	// The lower-bound structure: with exact best responses the ring absorbs
	// two path nodes per round, so connectivity needs about p/2 rounds of n
	// steps each (measured: steps = (p/2 + 1/3)·n exactly).
	if res.ConnectivityStep < (pathSize/2)*n {
		t.Fatalf("connectivity after only %d steps; expected at least %d (slow instance)",
			res.ConnectivityStep, (pathSize/2)*n)
	}
}

func TestRingPathScalesQuadratically(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling check skipped in -short")
	}
	steps := func(ring, path int) int {
		spec, p, err := RingPath(ring, path)
		if err != nil {
			t.Fatal(err)
		}
		res, err := dynamics.Run(spec, p, &dynamics.RoundRobin{Order: RingPathRoundRobinOrder(ring, path)},
			core.SumDistances, dynamics.Options{MaxSteps: 50 * (ring + path) * (ring + path), StopAtStrongConnectivity: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.ConnectivityStep
	}
	// Doubling n (keeping ring ≈ 2·path) should roughly quadruple steps.
	s1 := steps(8, 4)
	s2 := steps(16, 8)
	if s2 < 3*s1 {
		t.Fatalf("expected superlinear growth: steps(12)=%d steps(24)=%d", s1, s2)
	}
}

func TestFigure4LoopReplays(t *testing.T) {
	spec, start := Figure4Start()
	res, err := dynamics.Run(spec, start, dynamics.NewRoundRobin(7), core.SumDistances,
		dynamics.Options{MaxSteps: 200, DetectLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Loop == nil {
		t.Fatal("Figure 4 start must produce a certified loop")
	}
	if len(res.Loop.Moves) != 6 {
		t.Fatalf("loop has %d moves, want 6 (two rounds of three movers)", len(res.Loop.Moves))
	}
	movers := map[int]bool{}
	for _, mv := range res.Loop.Moves {
		movers[mv.Node] = true
	}
	if len(movers) != 3 {
		t.Fatalf("loop involves %d distinct nodes, want 3", len(movers))
	}
	if res.Converged {
		t.Fatal("looping walk must not be reported as converged")
	}
}
