package construct

import (
	"testing"

	"bbc/internal/core"
)

func TestUnevenWillowsValidation(t *testing.T) {
	if _, err := UnevenWillows(0, 1, nil); err == nil {
		t.Fatal("expected error for k=0")
	}
	if _, err := UnevenWillows(2, 1, [][]int{{1, 1}}); err == nil {
		t.Fatal("expected error for missing section")
	}
	if _, err := UnevenWillows(2, 1, [][]int{{1}, {1, 1}}); err == nil {
		t.Fatal("expected error for wrong leaf count")
	}
	if _, err := UnevenWillows(2, 1, [][]int{{1, -1}, {1, 1}}); err == nil {
		t.Fatal("expected error for negative tail")
	}
	if _, err := UnevenWillows(2, 0, [][]int{{0}, {0}}); err == nil {
		t.Fatal("expected error for H=0 with empty tails")
	}
}

func TestUnevenWillowsMatchesUniformWhenEqual(t *testing.T) {
	// Equal tail lengths must reproduce the regular construction exactly.
	reg, err := NewWillows(WillowsParams{K: 2, H: 2, L: 1})
	if err != nil {
		t.Fatal(err)
	}
	tails := [][]int{{1, 1, 1, 1}, {1, 1, 1, 1}}
	un, err := UnevenWillows(2, 2, tails)
	if err != nil {
		t.Fatal(err)
	}
	if !un.Profile.Equal(reg.Profile) {
		t.Fatal("uneven construction with equal tails differs from the regular one")
	}
}

func TestFitWillowsExactNodeCount(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		min := 2
		if k > 1 {
			min = (WillowsParams{K: k, H: 1}).N()
		}
		for n := min; n <= min+15; n++ {
			w, err := FitWillows(n, k)
			if err != nil {
				t.Fatalf("k=%d n=%d: %v", k, n, err)
			}
			if w.Spec.N() != n {
				t.Fatalf("k=%d n=%d: built %d nodes", k, n, w.Spec.N())
			}
			if err := w.Profile.Validate(w.Spec); err != nil {
				t.Fatalf("k=%d n=%d: %v", k, n, err)
			}
			if !w.Profile.Realize(w.Spec).StronglyConnected() {
				t.Fatalf("k=%d n=%d: not strongly connected", k, n)
			}
		}
	}
}

func TestFitWillowsRejectsTooSmall(t *testing.T) {
	if _, err := FitWillows(5, 3); err == nil {
		t.Fatal("expected error for n below the minimal k=3 shape")
	}
}

func TestFitWillowsUniformShapesAreStable(t *testing.T) {
	// When the fit lands on a regular shape (zero remainder), the paper's
	// stability theorem applies and the exact check must agree.
	for _, tc := range []struct{ n, k int }{{10, 2}, {14, 2}, {30, 2}, {12, 3}} {
		w, err := FitWillows(tc.n, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		dev, err := core.FindDeviation(w.Spec, w.Profile, core.SumDistances, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if dev != nil {
			t.Fatalf("uniform-shape fit (n=%d,k=%d) unstable: %+v", tc.n, tc.k, dev)
		}
	}
}

// TestFitWillowsPaddingCanBreakStability pins the E22 finding: the paper's
// "extended to other values of n by adding additional leaves as evenly as
// possible" remark does not survive exact checking under the natural
// even-tail-padding interpretation — unbalanced tails admit strictly
// improving rewires.
func TestFitWillowsPaddingCanBreakStability(t *testing.T) {
	w, err := FitWillows(38, 2) // H=3 forest of 30 + 8 extra over 16 chains
	if err != nil {
		t.Fatal(err)
	}
	dev, err := core.FindDeviation(w.Spec, w.Profile, core.SumDistances, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dev == nil {
		t.Fatal("expected the padded (38,2) willows to be unstable; if this fails the padding scheme was repaired — update E22")
	}
}
