package graph

import (
	"fmt"
	"math/bits"

	"bbc/internal/obs"
)

// BitScratch holds the reusable storage of bit-parallel multi-source BFS
// (BFSBatchInto): one uint64 word per node for the settled-reachability,
// current-frontier and next-frontier bit sets (bit i belongs to source i of
// the batch), plus the two frontier node lists. A zero BitScratch is ready
// to use; buffers grow to the graph size on first use and are then reused,
// so steady-state batched traversals perform no heap allocation. A
// BitScratch is not safe for concurrent use — parallel callers own one per
// goroutine, exactly like Scratch.
type BitScratch struct {
	reach    []uint64 // reach[v] bit i set: source i has settled v
	cur      []uint64 // frontier bits discovered at the previous wave
	next     []uint64 // frontier bits being discovered at this wave
	frontier []int    // nodes with nonzero cur words
	incoming []int    // nodes with nonzero next words
}

// reset sizes the scratch for an n-node graph and clears all state. The
// word arrays are zeroed in one pass each; the node lists are emptied.
func (bs *BitScratch) reset(n int) {
	if cap(bs.reach) < n {
		bs.reach = make([]uint64, n)
		bs.cur = make([]uint64, n)
		bs.next = make([]uint64, n)
	}
	bs.reach = bs.reach[:n]
	bs.cur = bs.cur[:n]
	bs.next = bs.next[:n]
	for i := range bs.reach {
		bs.reach[i] = 0
		bs.cur[i] = 0
		bs.next[i] = 0
	}
	bs.frontier = bs.frontier[:0]
	bs.incoming = bs.incoming[:0]
}

// BatchWidth is the number of sources one BFSBatchInto call can serve: one
// bit of a uint64 word per source.
const BatchWidth = 64

// BFSBatchInto runs unit-length BFS from up to BatchWidth sources in one
// level-synchronized traversal: every wave expands the frontier of all
// sources at once, with set union, new-node detection and distance
// assignment done as uint64 bit operations. Against s sources it does the
// work of s BFSInto calls while touching each arc once per wave instead of
// once per source per wave, which is where the oracle's n−1 node-deleted
// rebuilds spend their time on uniform-length specs.
//
// dist is the caller-owned flat distance buffer of length len(srcs)*g.N():
// source i's distances occupy dist[i*n : (i+1)*n], written exactly as
// BFSInto would (hop counts, Unreachable for nodes no path reaches).
// opt.Skip deletes a node from the traversal as in BFSInto; no source may
// equal it. With a non-nil BitScratch the traversal reuses its storage and
// allocates nothing once the buffers have grown to the graph size.
func (g *Digraph) BFSBatchInto(dist []int64, srcs []int, opt Options, bs *BitScratch) {
	n := len(g.adj)
	if len(srcs) == 0 || len(srcs) > BatchWidth {
		panic(fmt.Sprintf("graph: batch of %d sources, want 1..%d", len(srcs), BatchWidth))
	}
	if len(dist) != len(srcs)*n {
		panic(fmt.Sprintf("graph: dist buffer has length %d, want %d sources x %d nodes", len(dist), len(srcs), n))
	}
	for _, s := range srcs {
		g.check(s)
		if s == opt.Skip {
			panic("graph: cannot skip a batch BFS source")
		}
	}
	reg := obs.Global()
	reg.Inc(obs.MBFSBatch)
	reg.Add(obs.MBFSBatchSources, int64(len(srcs)))
	if bs == nil {
		bs = &BitScratch{}
	}
	bs.reset(n)
	for i := range dist {
		dist[i] = Unreachable
	}
	for i, s := range srcs {
		if bs.reach[s] == 0 {
			bs.frontier = append(bs.frontier, s)
		}
		bit := uint64(1) << uint(i)
		bs.reach[s] |= bit
		bs.cur[s] |= bit
		dist[i*n+s] = 0
	}
	cur, nxt := bs.frontier, bs.incoming
	var level, waves int64
	var maxWidth int64
	for len(cur) > 0 {
		if w := int64(len(cur)); w > maxWidth {
			maxWidth = w
		}
		level++
		waves++
		for _, u := range cur {
			f := bs.cur[u]
			bs.cur[u] = 0
			for _, a := range g.adj[u] {
				v := a.To
				if v == opt.Skip {
					continue
				}
				// New bits for v: sources that reached u last wave and have
				// not settled v yet. reach is stable within a wave, so the
				// mask is exact no matter how many frontier nodes feed v.
				nw := f &^ bs.reach[v]
				if nw == 0 {
					continue
				}
				if bs.next[v] == 0 {
					nxt = append(nxt, v)
				}
				bs.next[v] |= nw
			}
		}
		cur = cur[:0]
		for _, v := range nxt {
			nw := bs.next[v]
			bs.next[v] = 0
			bs.reach[v] |= nw
			bs.cur[v] = nw
			for b := nw; b != 0; b &= b - 1 {
				dist[bits.TrailingZeros64(b)*n+v] = level
			}
		}
		cur, nxt = nxt, cur
	}
	bs.frontier, bs.incoming = cur[:0], nxt[:0]
	reg.Add(obs.MBFSBatchWaves, waves)
	reg.Observe(obs.HBFSWave, maxWidth)
}
