package graph

import (
	"math/rand"
	"testing"

	"bbc/internal/obs"
)

// randomDigraph builds a random n-node unit-length digraph where each node
// gets deg out-arcs to distinct random targets.
func randomDigraph(rng *rand.Rand, n, deg int) *Digraph {
	g := New(n)
	for u := 0; u < n; u++ {
		seen := map[int]bool{u: true}
		for len(seen) <= deg && len(seen) < n {
			v := rng.Intn(n)
			if seen[v] {
				continue
			}
			seen[v] = true
			g.AddArc(u, v, 1)
		}
	}
	return g
}

// TestBFSBatchIntoMatchesScalar cross-checks the bit-parallel traversal
// against per-source BFSInto on random graphs, with and without a skipped
// node and for batch widths from 1 to the full 64.
func TestBFSBatchIntoMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	bs := &BitScratch{}
	s := &Scratch{}
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(80)
		g := randomDigraph(rng, n, 1+rng.Intn(4))
		skip := -1
		if trial%3 == 0 {
			skip = rng.Intn(n)
		}
		var srcs []int
		for v := 0; v < n; v++ {
			if v != skip {
				srcs = append(srcs, v)
			}
		}
		if len(srcs) > BatchWidth {
			srcs = srcs[:BatchWidth]
		}
		opt := Options{Skip: skip}
		batch := make([]int64, len(srcs)*n)
		g.BFSBatchInto(batch, srcs, opt, bs)
		ref := make([]int64, n)
		for i, src := range srcs {
			g.BFSInto(ref, src, opt, s)
			for v := 0; v < n; v++ {
				if got := batch[i*n+v]; got != ref[v] {
					t.Fatalf("trial %d (n=%d skip=%d): dist[src %d -> %d] = %d, scalar BFS says %d",
						trial, n, skip, src, v, got, ref[v])
				}
			}
		}
	}
}

func TestBFSBatchIntoSingleSource(t *testing.T) {
	g := New(4)
	g.AddArc(0, 1, 1)
	g.AddArc(1, 2, 1)
	dist := make([]int64, 4)
	g.BFSBatchInto(dist, []int{0}, Options{Skip: -1}, nil)
	want := []int64{0, 1, 2, Unreachable}
	for v, w := range want {
		if dist[v] != w {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], w)
		}
	}
}

func TestBFSBatchIntoPanics(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1, 1)
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	expectPanic("empty batch", func() {
		g.BFSBatchInto(nil, nil, Options{Skip: -1}, nil)
	})
	expectPanic("oversized batch", func() {
		srcs := make([]int, BatchWidth+1)
		g.BFSBatchInto(make([]int64, 3*(BatchWidth+1)), srcs, Options{Skip: -1}, nil)
	})
	expectPanic("short dist buffer", func() {
		g.BFSBatchInto(make([]int64, 3), []int{0, 1}, Options{Skip: -1}, nil)
	})
	expectPanic("skipped source", func() {
		g.BFSBatchInto(make([]int64, 3), []int{1}, Options{Skip: 1}, nil)
	})
}

// TestBFSBatchIntoCounters pins the batch metrics: one traversal, the
// source count, and at least one wave on a connected graph.
func TestBFSBatchIntoCounters(t *testing.T) {
	reg := obs.NewRegistry()
	prev := obs.SetGlobal(reg)
	t.Cleanup(func() { obs.SetGlobal(prev) })
	g := New(6)
	for u := 0; u < 6; u++ {
		g.AddArc(u, (u+1)%6, 1)
	}
	dist := make([]int64, 3*6)
	g.BFSBatchInto(dist, []int{0, 2, 4}, Options{Skip: -1}, nil)
	if got := reg.Get(obs.MBFSBatch); got != 1 {
		t.Errorf("graph.bfs_batch = %d, want 1", got)
	}
	if got := reg.Get(obs.MBFSBatchSources); got != 3 {
		t.Errorf("bfs.batch_sources = %d, want 3", got)
	}
	// A directed 6-cycle settles every node in 5 levels; the 6th wave
	// drains the final frontier and discovers nothing.
	if got := reg.Get(obs.MBFSBatchWaves); got != 6 {
		t.Errorf("bfs.batch_waves = %d, want 6", got)
	}
}

func TestBFSBatchIntoAllocFree(t *testing.T) {
	prev := obs.SetGlobal(nil)
	t.Cleanup(func() { obs.SetGlobal(prev) })
	g, _, _ := traversalFixture()
	srcs := []int{0, 1, 2, 3, 4, 5, 6, 8, 9, 10, 11, 12, 13, 14, 15}
	dist := make([]int64, len(srcs)*16)
	bs := &BitScratch{}
	g.BFSBatchInto(dist, srcs, Options{Skip: 7}, bs)
	if got := testing.AllocsPerRun(200, func() {
		g.BFSBatchInto(dist, srcs, Options{Skip: 7}, bs)
	}); got != 0 {
		t.Errorf("BFSBatchInto with warm scratch allocates %v/op, want 0", got)
	}
}
