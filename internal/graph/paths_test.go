package graph

import (
	"math/rand"
	"testing"
)

func TestPathsUnit(t *testing.T) {
	g := New(5)
	g.AddArc(0, 1, 1)
	g.AddArc(1, 2, 1)
	g.AddArc(0, 3, 1)
	g.AddArc(3, 2, 1)
	res := g.Paths(0, true, Options{Skip: -1})
	if res.Dist[2] != 2 {
		t.Fatalf("dist[2] = %d", res.Dist[2])
	}
	path := res.PathTo(2)
	if len(path) != 3 || path[0] != 0 || path[2] != 2 {
		t.Fatalf("path = %v", path)
	}
	if res.PathTo(4) != nil {
		t.Fatal("unreachable node should have nil path")
	}
	if p := res.PathTo(0); len(p) != 1 || p[0] != 0 {
		t.Fatalf("path to source = %v", p)
	}
}

func TestPathsWeighted(t *testing.T) {
	g := New(4)
	g.AddArc(0, 1, 5)
	g.AddArc(0, 2, 1)
	g.AddArc(2, 1, 1)
	g.AddArc(1, 3, 1)
	res := g.Paths(0, false, Options{Skip: -1})
	if res.Dist[1] != 2 {
		t.Fatalf("dist[1] = %d, want 2 (via 2)", res.Dist[1])
	}
	path := res.PathTo(3)
	want := []int{0, 2, 1, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestPathsConsistentWithBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(rng, 2+rng.Intn(10), 0.3)
		src := rng.Intn(g.N())
		res := g.Paths(src, true, Options{Skip: -1})
		bfs := g.BFS(src, Options{Skip: -1})
		for v := range bfs {
			if res.Dist[v] != bfs[v] {
				t.Fatalf("trial %d: dist mismatch at %d", trial, v)
			}
			path := res.PathTo(v)
			if bfs[v] == Unreachable {
				if path != nil {
					t.Fatalf("trial %d: path to unreachable %d", trial, v)
				}
				continue
			}
			if int64(len(path)-1) != bfs[v] {
				t.Fatalf("trial %d: path length %d != dist %d", trial, len(path)-1, bfs[v])
			}
			// Every hop must be a real arc.
			for i := 1; i < len(path); i++ {
				if !g.HasArc(path[i-1], path[i]) {
					t.Fatalf("trial %d: fake arc %d->%d in path", trial, path[i-1], path[i])
				}
			}
		}
	}
}

func TestPathsSkip(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1, 1)
	g.AddArc(1, 2, 1)
	res := g.Paths(0, true, Options{Skip: 1})
	if res.Dist[2] != Unreachable {
		t.Fatal("skip not respected")
	}
}
