package graph

import (
	"math/rand"
	"testing"
)

// TestHashInsertionOrderInvariance: Fingerprint and Key hash the sorted
// arc multiset, so the order arcs were added in must not matter. Random
// digraphs are built twice — forward and via a shuffled arc list — and
// both encodings must agree exactly.
func TestHashInsertionOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(10)
		type arc struct {
			u, v int
			l    int64
		}
		var arcs []arc
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Intn(3) == 0 {
					arcs = append(arcs, arc{u, v, int64(1 + rng.Intn(4))})
				}
			}
		}
		a := New(n)
		for _, e := range arcs {
			a.AddArc(e.u, e.v, e.l)
		}
		b := New(n)
		for _, i := range rng.Perm(len(arcs)) {
			b.AddArc(arcs[i].u, arcs[i].v, arcs[i].l)
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("trial %d: fingerprint depends on arc insertion order", trial)
		}
		if a.Key() != b.Key() {
			t.Fatalf("trial %d: key depends on arc insertion order:\n a: %s\n b: %s", trial, a.Key(), b.Key())
		}
		if !a.Equal(b) {
			t.Fatalf("trial %d: Equal disagrees with the identical arc multiset", trial)
		}
	}
}

// TestHashDistinctnessAllThreeNodeDigraphs enumerates every labeled
// 3-node unit-length digraph (2^6 arc subsets, no self-loops) and
// demands pairwise-distinct Keys, Fingerprints, and Equal verdicts —
// distinct labeled structures must never collapse to one encoding.
func TestHashDistinctnessAllThreeNodeDigraphs(t *testing.T) {
	pairs := [][2]int{{0, 1}, {0, 2}, {1, 0}, {1, 2}, {2, 0}, {2, 1}}
	graphs := make([]*Digraph, 0, 1<<len(pairs))
	for mask := 0; mask < 1<<len(pairs); mask++ {
		g := New(3)
		for i, p := range pairs {
			if mask&(1<<i) != 0 {
				g.AddArc(p[0], p[1], 1)
			}
		}
		graphs = append(graphs, g)
	}
	keys := make(map[string]int, len(graphs))
	fps := make(map[uint64]int, len(graphs))
	for i, g := range graphs {
		if j, dup := keys[g.Key()]; dup {
			t.Fatalf("graphs %d and %d share key %s", j, i, g.Key())
		}
		keys[g.Key()] = i
		if j, dup := fps[g.Fingerprint()]; dup {
			t.Fatalf("graphs %d and %d share fingerprint %#x", j, i, g.Fingerprint())
		}
		fps[g.Fingerprint()] = i
	}
	for i, g := range graphs {
		for j, h := range graphs {
			if (i == j) != g.Equal(h) {
				t.Fatalf("Equal(%d, %d) = %v", i, j, g.Equal(h))
			}
		}
	}
}

// TestHashSensitivity: single-arc perturbations — removing an arc,
// retargeting it, or changing its length — must change both encodings.
func TestHashSensitivity(t *testing.T) {
	base := New(4)
	base.AddArc(0, 1, 1)
	base.AddArc(1, 2, 2)
	base.AddArc(2, 3, 1)
	variants := []*Digraph{New(4), New(4), New(4)}
	variants[0].AddArc(0, 1, 1)
	variants[0].AddArc(1, 2, 2) // arc 2→3 dropped
	variants[1].AddArc(0, 1, 1)
	variants[1].AddArc(1, 2, 2)
	variants[1].AddArc(2, 0, 1) // retargeted
	variants[2].AddArc(0, 1, 1)
	variants[2].AddArc(1, 2, 2)
	variants[2].AddArc(2, 3, 5) // length changed
	for i, v := range variants {
		if base.Key() == v.Key() {
			t.Errorf("variant %d: key unchanged", i)
		}
		if base.Fingerprint() == v.Fingerprint() {
			t.Errorf("variant %d: fingerprint unchanged", i)
		}
	}
}
