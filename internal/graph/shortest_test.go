package graph

import (
	"math/rand"
	"testing"
)

func TestBFSPath(t *testing.T) {
	// 0 -> 1 -> 2 -> 3, plus shortcut 0 -> 2.
	g := New(5)
	g.AddArc(0, 1, 1)
	g.AddArc(1, 2, 1)
	g.AddArc(2, 3, 1)
	g.AddArc(0, 2, 1)
	dist := g.BFS(0, Options{Skip: -1})
	want := []int64{0, 1, 1, 2, Unreachable}
	for v, d := range want {
		if dist[v] != d {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], d)
		}
	}
}

func TestBFSSkipDeletesNode(t *testing.T) {
	// 0 -> 1 -> 2 and 0 -> 3 -> 2; skipping 1 forces the long way.
	g := New(4)
	g.AddArc(0, 1, 1)
	g.AddArc(1, 2, 1)
	g.AddArc(0, 3, 1)
	g.AddArc(3, 2, 1)
	dist := g.BFS(0, Options{Skip: 1})
	if dist[1] != Unreachable {
		t.Errorf("skipped node should be unreachable, got %d", dist[1])
	}
	if dist[2] != 2 {
		t.Errorf("dist[2] = %d, want 2", dist[2])
	}
	// Skipping a cut node disconnects.
	g2 := New(3)
	g2.AddArc(0, 1, 1)
	g2.AddArc(1, 2, 1)
	d2 := g2.BFS(0, Options{Skip: 1})
	if d2[2] != Unreachable {
		t.Errorf("dist[2] with cut node skipped = %d, want Unreachable", d2[2])
	}
}

func TestBFSSkipSourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when skipping the source")
		}
	}()
	New(2).BFS(0, Options{Skip: 0})
}

func TestDijkstraWeighted(t *testing.T) {
	// Direct 0->2 of length 10 vs 0->1->2 of length 3.
	g := New(3)
	g.AddArc(0, 2, 10)
	g.AddArc(0, 1, 1)
	g.AddArc(1, 2, 2)
	dist := g.Dijkstra(0, Options{Skip: -1})
	if dist[2] != 3 {
		t.Errorf("dist[2] = %d, want 3", dist[2])
	}
	// With node 1 skipped the direct arc wins.
	dist = g.Dijkstra(0, Options{Skip: 1})
	if dist[2] != 10 {
		t.Errorf("dist[2] skip 1 = %d, want 10", dist[2])
	}
}

func TestDijkstraMatchesBFSOnUnitGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		g := randomGraph(rng, 1+rng.Intn(15), 0.25)
		src := rng.Intn(g.N())
		bfs := g.BFS(src, Options{Skip: -1})
		dij := g.Dijkstra(src, Options{Skip: -1})
		for v := range bfs {
			if bfs[v] != dij[v] {
				t.Fatalf("trial %d: node %d: BFS %d != Dijkstra %d", trial, v, bfs[v], dij[v])
			}
		}
	}
}

func TestDijkstraAgainstBellmanFord(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		g := randomWeightedGraph(rng, 2+rng.Intn(12), 0.3, 9)
		src := rng.Intn(g.N())
		want := bellmanFord(g, src)
		got := g.Dijkstra(src, Options{Skip: -1})
		for v := range want {
			if want[v] != got[v] {
				t.Fatalf("trial %d node %d: Bellman-Ford %d != Dijkstra %d", trial, v, want[v], got[v])
			}
		}
	}
}

// bellmanFord is an independent O(nm) reference implementation.
func bellmanFord(g *Digraph, src int) []int64 {
	dist := make([]int64, g.N())
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	for i := 0; i < g.N(); i++ {
		changed := false
		for u := 0; u < g.N(); u++ {
			if dist[u] == Unreachable {
				continue
			}
			for _, a := range g.Out(u) {
				nd := dist[u] + a.Len
				if dist[a.To] == Unreachable || nd < dist[a.To] {
					dist[a.To] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func TestBFSFrontierMatchesAugmentedGraph(t *testing.T) {
	// Seeding targets {t} at offset d0 with node u skipped must equal a BFS
	// in the graph where u keeps only arcs of length d0 to those targets.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(12)
		g := randomGraph(rng, n, 0.25)
		u := rng.Intn(n)
		// Pick 1..3 distinct seed targets different from u.
		k := 1 + rng.Intn(3)
		seeds := make([]Arc, 0, k)
		used := map[int]bool{u: true}
		for len(seeds) < k && len(used) < n {
			v := rng.Intn(n)
			if used[v] {
				continue
			}
			used[v] = true
			seeds = append(seeds, Arc{To: v, Len: 1})
		}
		got := g.BFSFrontier(seeds, Options{Skip: u})

		aug := g.Clone()
		aug.SetArcs(u, nil)
		for _, s := range seeds {
			aug.AddArc(u, s.To, 1)
		}
		want := aug.BFS(u, Options{Skip: -1})
		for v := range want {
			if v == u {
				continue
			}
			if got[v] != want[v] {
				t.Fatalf("trial %d node %d: frontier %d != augmented BFS %d (seeds %v, u=%d)",
					trial, v, got[v], want[v], seeds, u)
			}
		}
	}
}

func TestFrontierWithOffsets(t *testing.T) {
	// Two seeds at different offsets; the nearer one should dominate.
	g := New(4)
	g.AddArc(1, 3, 1)
	g.AddArc(2, 3, 1)
	dist := g.BFSFrontier([]Arc{{To: 1, Len: 5}, {To: 2, Len: 1}}, Options{Skip: -1})
	if dist[2] != 1 || dist[1] != 5 {
		t.Fatalf("seed offsets not respected: %v", dist)
	}
	if dist[3] != 2 {
		t.Fatalf("dist[3] = %d, want 2 (via the closer seed)", dist[3])
	}
	if dist[0] != Unreachable {
		t.Fatalf("dist[0] = %d, want Unreachable", dist[0])
	}
}

func TestDijkstraFrontierRespectsLengths(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1, 4)
	g.AddArc(1, 2, 4)
	dist := g.DijkstraFrontier([]Arc{{To: 0, Len: 2}}, Options{Skip: -1})
	if dist[0] != 2 || dist[1] != 6 || dist[2] != 10 {
		t.Fatalf("weighted frontier wrong: %v", dist)
	}
}

func TestFrontierSkipsSeedOnSkippedNode(t *testing.T) {
	g := New(3)
	g.AddArc(1, 2, 1)
	dist := g.BFSFrontier([]Arc{{To: 1, Len: 1}}, Options{Skip: 1})
	for v, d := range dist {
		if d != Unreachable {
			t.Fatalf("node %d reachable (%d) though the only seed was skipped", v, d)
		}
	}
}

func TestAllDistances(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1, 1)
	g.AddArc(1, 2, 1)
	g.AddArc(2, 0, 1)
	d := g.AllDistances(true)
	if d[0][2] != 2 || d[2][1] != 2 || d[1][1] != 0 {
		t.Fatalf("AllDistances wrong: %v", d)
	}
}
