package graph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func ringGraph(n int) *Digraph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddArc(i, (i+1)%n, 1)
	}
	return g
}

func TestReach(t *testing.T) {
	g := New(4)
	g.AddArc(0, 1, 1)
	g.AddArc(1, 2, 1)
	r := g.Reach()
	want := []int{3, 2, 1, 1}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Reach = %v, want %v", r, want)
		}
	}
}

func TestReachOnRing(t *testing.T) {
	g := ringGraph(6)
	for u := 0; u < 6; u++ {
		if got := g.ReachOf(u); got != 6 {
			t.Fatalf("ReachOf(%d) = %d, want 6", u, got)
		}
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	g := ringGraph(5)
	ecc, all := g.Eccentricity(0, true)
	if !all || ecc != 4 {
		t.Fatalf("Eccentricity = %d,%v, want 4,true", ecc, all)
	}
	diam, strong := g.Diameter(true)
	if !strong || diam != 4 {
		t.Fatalf("Diameter = %d,%v, want 4,true", diam, strong)
	}
}

func TestDiameterDisconnected(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1, 1)
	diam, strong := g.Diameter(true)
	if strong {
		t.Fatal("disconnected graph reported strongly connected")
	}
	if diam != 1 {
		t.Fatalf("finite diameter = %d, want 1", diam)
	}
}

func TestRadius(t *testing.T) {
	// Star with a back-ring so only the center has small eccentricity.
	g := New(4)
	g.AddArc(0, 1, 1)
	g.AddArc(0, 2, 1)
	g.AddArc(0, 3, 1)
	g.AddArc(1, 0, 1)
	g.AddArc(2, 0, 1)
	g.AddArc(3, 0, 1)
	r, ok := g.Radius(true)
	if !ok || r != 1 {
		t.Fatalf("Radius = %d,%v, want 1,true", r, ok)
	}
	// No node reaches everything -> ok=false.
	h := New(2)
	if _, ok := h.Radius(true); ok {
		t.Fatal("Radius on edgeless graph should report no all-reaching node")
	}
}

func TestSumDistancesWithPenalty(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1, 1)
	const penalty = 100
	if got := g.SumDistances(0, true, penalty); got != 1+penalty {
		t.Fatalf("SumDistances = %d, want %d", got, 1+penalty)
	}
	if got := g.SumDistances(2, true, penalty); got != 2*penalty {
		t.Fatalf("SumDistances = %d, want %d", got, 2*penalty)
	}
}

func TestRingDiameterProperty(t *testing.T) {
	f := func(raw uint8) bool {
		n := int(raw%20) + 2
		diam, strong := ringGraph(n).Diameter(true)
		return strong && diam == int64(n-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintAndKey(t *testing.T) {
	a := New(3)
	a.AddArc(0, 1, 1)
	a.AddArc(0, 2, 1)
	b := New(3)
	b.AddArc(0, 2, 1)
	b.AddArc(0, 1, 1)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("equal graphs have different fingerprints")
	}
	if a.Key() != b.Key() {
		t.Fatal("equal graphs have different keys")
	}
	b.AddArc(1, 2, 1)
	if a.Key() == b.Key() {
		t.Fatal("different graphs share a key")
	}
}

func TestKeyDistinguishesRandomRewirings(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	seen := make(map[string]*Digraph)
	for trial := 0; trial < 200; trial++ {
		g := randomGraph(rng, 6, 0.3)
		key := g.Key()
		if prev, ok := seen[key]; ok {
			if !prev.Equal(g) {
				t.Fatalf("key collision between structurally different graphs")
			}
		}
		seen[key] = g
	}
}

func TestDOT(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1, 1)
	dot := g.DOT("test", map[int]string{0: "src"})
	for _, want := range []string{"digraph", "0 -> 1", `"src"`} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
	g2 := New(2)
	g2.AddArc(0, 1, 7)
	if !strings.Contains(g2.DOT("w", nil), `label="7"`) {
		t.Fatal("weighted DOT output missing length label")
	}
}
