package graph

import (
	"testing"

	"bbc/internal/obs"
)

// Allocation regression tests for the *Into traversal variants: with a
// warm Scratch and a caller-owned dist buffer, BFS and Dijkstra must not
// touch the heap.
func traversalFixture() (*Digraph, []int64, *Scratch) {
	g := New(16)
	for u := 0; u < 16; u++ {
		g.AddArc(u, (u+1)%16, 2)
		g.AddArc(u, (u+5)%16, 3)
	}
	dist := make([]int64, 16)
	s := &Scratch{}
	g.BFSInto(dist, 0, Options{Skip: -1}, s)
	g.DijkstraInto(dist, 0, Options{Skip: -1}, s)
	return g, dist, s
}

func TestBFSIntoAllocFree(t *testing.T) {
	prev := obs.SetGlobal(nil)
	t.Cleanup(func() { obs.SetGlobal(prev) })
	g, dist, s := traversalFixture()
	if got := testing.AllocsPerRun(200, func() { g.BFSInto(dist, 3, Options{Skip: 7}, s) }); got != 0 {
		t.Errorf("BFSInto with warm scratch allocates %v/op, want 0", got)
	}
}

func TestDijkstraIntoAllocFree(t *testing.T) {
	prev := obs.SetGlobal(nil)
	t.Cleanup(func() { obs.SetGlobal(prev) })
	g, dist, s := traversalFixture()
	if got := testing.AllocsPerRun(200, func() { g.DijkstraInto(dist, 3, Options{Skip: 7}, s) }); got != 0 {
		t.Errorf("DijkstraInto with warm scratch allocates %v/op, want 0", got)
	}
}
