package graph

import (
	"fmt"

	"bbc/internal/obs"
)

// Scratch holds the reusable storage of the *Into traversal variants: the
// BFS queue, the Dijkstra/frontier binary heap, and the settled-node marks.
// A zero Scratch is ready to use; buffers grow on first use and are then
// reused, so steady-state traversals through a warm Scratch perform no heap
// allocation. A Scratch is not safe for concurrent use — callers that fan
// out (worker pools, parallel partition scans) own one Scratch per
// goroutine.
type Scratch struct {
	queue []int
	pq    []Arc
	done  []bool
}

// BFSInto is BFS writing into the caller-owned dist buffer, which must have
// length g.N(). The returned slice is dist itself. With a non-nil Scratch
// the traversal reuses its queue storage and allocates nothing once the
// queue has grown to the graph size.
func (g *Digraph) BFSInto(dist []int64, src int, opt Options, s *Scratch) []int64 {
	g.check(src)
	if len(dist) != len(g.adj) {
		panic(fmt.Sprintf("graph: dist buffer has length %d, graph has %d nodes", len(dist), len(g.adj)))
	}
	if opt.Skip == src {
		panic("graph: cannot skip the BFS source")
	}
	reg := obs.Global()
	reg.Inc(obs.MBFS)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	var queue []int
	if s != nil {
		queue = s.queue[:0]
	} else {
		queue = make([]int, 0, len(g.adj))
	}
	queue = append(queue, src)
	// Wave width: nodes dequeue in nondecreasing distance, so counting the
	// run length per distance level costs one compare per node and yields
	// the maximum frontier width — the parallelism a bit-parallel BFS
	// could exploit.
	var curDist, width, maxWidth int64
	// Index-based head pointer: re-slicing the queue head (queue[1:]) would
	// keep the whole backing array live and defeat queue reuse.
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		if du != curDist {
			if width > maxWidth {
				maxWidth = width
			}
			curDist, width = du, 0
		}
		width++
		for _, a := range g.adj[u] {
			v := a.To
			if v == opt.Skip || dist[v] != Unreachable {
				continue
			}
			dist[v] = du + 1
			queue = append(queue, v)
		}
	}
	if width > maxWidth {
		maxWidth = width
	}
	reg.Observe(obs.HBFSWave, maxWidth)
	if s != nil {
		s.queue = queue[:0]
	}
	return dist
}

// DijkstraInto is Dijkstra writing into the caller-owned dist buffer
// (length g.N()), reusing the Scratch's heap and settled-mark storage.
func (g *Digraph) DijkstraInto(dist []int64, src int, opt Options, s *Scratch) []int64 {
	g.check(src)
	if opt.Skip == src {
		panic("graph: cannot skip the Dijkstra source")
	}
	return g.frontierInto(dist, []Arc{{To: src, Len: 0}}, opt, false, s)
}

// BFSFrontierInto is BFSFrontier writing into the caller-owned dist buffer.
func (g *Digraph) BFSFrontierInto(dist []int64, seeds []Arc, opt Options, s *Scratch) []int64 {
	return g.frontierInto(dist, seeds, opt, true, s)
}

// DijkstraFrontierInto is DijkstraFrontier writing into the caller-owned
// dist buffer.
func (g *Digraph) DijkstraFrontierInto(dist []int64, seeds []Arc, opt Options, s *Scratch) []int64 {
	return g.frontierInto(dist, seeds, opt, false, s)
}

// frontierInto is the shared multi-source shortest-path core over
// caller-owned buffers. When unit is true, arc lengths are treated as 1
// (BFS semantics with seed offsets).
func (g *Digraph) frontierInto(dist []int64, seeds []Arc, opt Options, unit bool, s *Scratch) []int64 {
	n := len(g.adj)
	if len(dist) != n {
		panic(fmt.Sprintf("graph: dist buffer has length %d, graph has %d nodes", len(dist), n))
	}
	if unit {
		obs.Global().Inc(obs.MBFS)
	} else {
		obs.Global().Inc(obs.MDijkstra)
	}
	var (
		pq   []Arc
		done []bool
	)
	if s != nil {
		pq = s.pq[:0]
		if cap(s.done) < n {
			s.done = make([]bool, n)
		}
		done = s.done[:n]
		for i := range done {
			done[i] = false
		}
	} else {
		done = make([]bool, n)
	}
	for i := range dist {
		dist[i] = Unreachable
	}
	for _, sd := range seeds {
		if sd.To == opt.Skip {
			continue
		}
		if dist[sd.To] == Unreachable || sd.Len < dist[sd.To] {
			dist[sd.To] = sd.Len
			pq = pushArc(pq, sd)
		}
	}
	for len(pq) > 0 {
		var top Arc
		pq, top = popArc(pq)
		u := top.To
		if done[u] || dist[u] != top.Len {
			continue
		}
		done[u] = true
		du := dist[u]
		for _, a := range g.adj[u] {
			v := a.To
			if v == opt.Skip {
				continue
			}
			step := a.Len
			if unit {
				step = 1
			}
			nd := du + step
			if dist[v] == Unreachable || nd < dist[v] {
				dist[v] = nd
				pq = pushArc(pq, Arc{To: v, Len: nd})
			}
		}
	}
	if s != nil {
		s.pq = pq[:0]
	}
	return dist
}

// pushArc inserts into a concrete binary min-heap of Arc keyed by Len.
// The heap is a plain slice (no container/heap interface), so pushes never
// box values into interfaces and the storage is reusable across calls.
func pushArc(h []Arc, a Arc) []Arc {
	h = append(h, a)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].Len <= h[i].Len {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	return h
}

// popArc removes and returns the minimum-Len element.
func popArc(h []Arc) ([]Arc, Arc) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && h[l].Len < h[min].Len {
			min = l
		}
		if r < len(h) && h[r].Len < h[min].Len {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return h, top
}
