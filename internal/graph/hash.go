package graph

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Fingerprint returns a 64-bit hash of the graph's structure (node count
// plus the sorted arc multiset of every node). Two graphs with equal
// structure always produce the same fingerprint, so it is suitable for
// detecting repeated configurations in best-response walks; hash collisions
// are resolved by the callers via Equal when a repeat is suspected.
func (g *Digraph) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [10]byte
	writeInt := func(x int64) {
		n := 0
		u := uint64(x)
		for {
			b := byte(u & 0x7f)
			u >>= 7
			if u != 0 {
				b |= 0x80
			}
			buf[n] = b
			n++
			if u == 0 {
				break
			}
		}
		h.Write(buf[:n])
	}
	writeInt(int64(g.N()))
	scratch := make([]Arc, 0, 8)
	for u := range g.adj {
		scratch = append(scratch[:0], g.adj[u]...)
		sortArcs(scratch)
		writeInt(int64(len(scratch)))
		for _, a := range scratch {
			writeInt(int64(a.To))
			writeInt(a.Len)
		}
	}
	return h.Sum64()
}

// Key returns a canonical string encoding of the graph structure, usable as
// an exact map key for configuration-space exploration.
func (g *Digraph) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n%d", g.N())
	scratch := make([]Arc, 0, 8)
	for u := range g.adj {
		scratch = append(scratch[:0], g.adj[u]...)
		sortArcs(scratch)
		b.WriteByte('|')
		for i, a := range scratch {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d:%d", a.To, a.Len)
		}
	}
	return b.String()
}

// DOT renders the graph in Graphviz DOT format. Labels maps node index to a
// display label; nil means the numeric index is used.
func (g *Digraph) DOT(name string, labels map[int]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n  node [shape=circle];\n")
	for u := 0; u < g.N(); u++ {
		label := fmt.Sprintf("%d", u)
		if labels != nil {
			if l, ok := labels[u]; ok {
				label = l
			}
		}
		fmt.Fprintf(&b, "  %d [label=%q];\n", u, label)
	}
	for u := range g.adj {
		outs := append([]Arc(nil), g.adj[u]...)
		sort.Slice(outs, func(i, j int) bool { return outs[i].To < outs[j].To })
		for _, a := range outs {
			if a.Len == 1 {
				fmt.Fprintf(&b, "  %d -> %d;\n", u, a.To)
			} else {
				fmt.Fprintf(&b, "  %d -> %d [label=\"%d\"];\n", u, a.To, a.Len)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
