package graph

// PathResult carries a single-source shortest-path computation with enough
// information to reconstruct the actual routes (used by the visualization
// tooling and the examples to show how traffic flows in an equilibrium).
type PathResult struct {
	// Dist[v] is the distance from the source, or Unreachable.
	Dist []int64
	// Parent[v] is the predecessor of v on a shortest path from the
	// source, or -1 for the source and unreachable nodes.
	Parent []int
	// Source is the traversal origin.
	Source int
}

// Paths computes shortest paths with parents from src (BFS when unit is
// true, Dijkstra otherwise).
func (g *Digraph) Paths(src int, unit bool, opt Options) *PathResult {
	g.check(src)
	if opt.Skip == src {
		panic("graph: cannot skip the source")
	}
	res := &PathResult{
		Dist:   make([]int64, g.N()),
		Parent: make([]int, g.N()),
		Source: src,
	}
	for i := range res.Dist {
		res.Dist[i] = Unreachable
		res.Parent[i] = -1
	}
	res.Dist[src] = 0
	if unit {
		queue := make([]int, 0, g.N())
		queue = append(queue, src)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, a := range g.adj[u] {
				v := a.To
				if v == opt.Skip || res.Dist[v] != Unreachable {
					continue
				}
				res.Dist[v] = res.Dist[u] + 1
				res.Parent[v] = u
				queue = append(queue, v)
			}
		}
		return res
	}
	// Weighted: run Dijkstra and recover parents by edge relaxation
	// against the final distances (deterministic: smallest parent id).
	res.Dist = g.Dijkstra(src, opt)
	for u := 0; u < g.N(); u++ {
		if res.Dist[u] == Unreachable || u == opt.Skip {
			continue
		}
		for _, a := range g.adj[u] {
			v := a.To
			if v == opt.Skip || res.Dist[v] == Unreachable {
				continue
			}
			if res.Dist[u]+a.Len == res.Dist[v] && (res.Parent[v] == -1 || u < res.Parent[v]) && v != src {
				res.Parent[v] = u
			}
		}
	}
	return res
}

// PathTo reconstructs the node sequence from the source to v (inclusive),
// or nil when v is unreachable.
func (r *PathResult) PathTo(v int) []int {
	if v < 0 || v >= len(r.Dist) || r.Dist[v] == Unreachable {
		return nil
	}
	var rev []int
	for cur := v; cur != -1; cur = r.Parent[cur] {
		rev = append(rev, cur)
		if cur == r.Source {
			break
		}
	}
	if rev[len(rev)-1] != r.Source {
		return nil
	}
	out := make([]int, len(rev))
	for i, x := range rev {
		out[len(rev)-1-i] = x
	}
	return out
}
