package graph

import (
	"math/rand"
	"testing"
)

func TestSCCKnownGraphs(t *testing.T) {
	tests := []struct {
		name  string
		n     int
		arcs  [][2]int
		count int
	}{
		{name: "empty", n: 0, count: 0},
		{name: "singleton", n: 1, count: 1},
		{name: "two isolated", n: 2, count: 2},
		{name: "directed cycle", n: 4, arcs: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, count: 1},
		{name: "path", n: 3, arcs: [][2]int{{0, 1}, {1, 2}}, count: 3},
		{
			name: "two cycles bridged",
			n:    6,
			arcs: [][2]int{{0, 1}, {1, 0}, {2, 3}, {3, 2}, {1, 2}, {4, 5}},
			// {0,1}, {2,3}, {4}, {5}
			count: 4,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := New(tt.n)
			for _, a := range tt.arcs {
				g.AddArc(a[0], a[1], 1)
			}
			comp, count := g.SCC()
			if count != tt.count {
				t.Fatalf("count = %d, want %d (comp=%v)", count, tt.count, comp)
			}
		})
	}
}

func TestSCCMatchesMutualReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		g := randomGraph(rng, 1+rng.Intn(14), 0.2)
		comp, _ := g.SCC()
		n := g.N()
		reach := make([][]int64, n)
		for u := 0; u < n; u++ {
			reach[u] = g.BFS(u, Options{Skip: -1})
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				mutual := reach[u][v] != Unreachable && reach[v][u] != Unreachable
				same := comp[u] == comp[v]
				if mutual != same {
					t.Fatalf("trial %d: nodes %d,%d mutual=%v same-comp=%v", trial, u, v, mutual, same)
				}
			}
		}
	}
}

func TestSCCTopologicalOrder(t *testing.T) {
	// Tarjan component ids must be a reverse topological order: an arc from
	// component a to component b (a != b) implies comp id a > comp id b.
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 60; trial++ {
		g := randomGraph(rng, 1+rng.Intn(14), 0.25)
		comp, _ := g.SCC()
		for u := 0; u < g.N(); u++ {
			for _, a := range g.Out(u) {
				if comp[u] != comp[a.To] && comp[u] <= comp[a.To] {
					t.Fatalf("trial %d: arc %d->%d violates reverse topo order (%d vs %d)",
						trial, u, a.To, comp[u], comp[a.To])
				}
			}
		}
	}
}

func TestCondensationIsDAG(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(rng, 2+rng.Intn(12), 0.3)
		dag, comp := g.Condensation()
		if dag.N() == 0 {
			t.Fatal("condensation has no nodes")
		}
		// Each dag node must have at least one preimage.
		seen := make([]bool, dag.N())
		for _, c := range comp {
			seen[c] = true
		}
		for c, ok := range seen {
			if !ok {
				t.Fatalf("component %d has no member", c)
			}
		}
		// DAG check: every SCC of the condensation must be a singleton.
		_, count := dag.SCC()
		if count != dag.N() {
			t.Fatalf("condensation is not a DAG: %d SCCs over %d nodes", count, dag.N())
		}
	}
}

func TestStronglyConnected(t *testing.T) {
	cycle := New(5)
	for i := 0; i < 5; i++ {
		cycle.AddArc(i, (i+1)%5, 1)
	}
	if !cycle.StronglyConnected() {
		t.Fatal("cycle should be strongly connected")
	}
	path := New(3)
	path.AddArc(0, 1, 1)
	path.AddArc(1, 2, 1)
	if path.StronglyConnected() {
		t.Fatal("path should not be strongly connected")
	}
	if !New(1).StronglyConnected() || !New(0).StronglyConnected() {
		t.Fatal("trivial graphs should be strongly connected")
	}
}

func TestSCCDeepGraphNoStackOverflow(t *testing.T) {
	// A long path exercises the iterative Tarjan implementation.
	const n = 200_000
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.AddArc(i, i+1, 1)
	}
	_, count := g.SCC()
	if count != n {
		t.Fatalf("count = %d, want %d", count, n)
	}
}
