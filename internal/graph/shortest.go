package graph

import (
	"container/heap"

	"bbc/internal/obs"
)

// Unreachable is the distance reported for nodes with no path from the
// source. Callers in the game layer translate it into the disconnection
// penalty M of the game spec.
const Unreachable = int64(-1)

// Options tunes a shortest-path traversal.
type Options struct {
	// Skip, if >= 0, deletes the given node from the graph for the purposes
	// of this traversal: no path may enter or leave it. The source itself
	// may not be skipped.
	Skip int
}

// BFS computes hop-count distances from src, treating every arc as length 1
// regardless of its stored length. Unreached nodes get Unreachable.
func (g *Digraph) BFS(src int, opt Options) []int64 {
	g.check(src)
	obs.Global().Inc(obs.MBFS)
	dist := make([]int64, g.N())
	for i := range dist {
		dist[i] = Unreachable
	}
	if opt.Skip == src {
		panic("graph: cannot skip the BFS source")
	}
	dist[src] = 0
	queue := make([]int, 0, g.N())
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range g.adj[u] {
			v := a.To
			if v == opt.Skip || dist[v] != Unreachable {
				continue
			}
			dist[v] = dist[u] + 1
			queue = append(queue, v)
		}
	}
	return dist
}

// BFSFrontier runs a multi-source traversal treating every arc as length 1:
// each seed (t, d0) starts node t at distance d0. It is the primitive
// behind the best-response oracle, which evaluates a candidate link set
// {t1..tk} by seeding each target at distance ℓ(u, ti) in the graph with u
// skipped. Because seed offsets may differ, the traversal uses the same
// heap as Dijkstra with the arc length forced to 1.
func (g *Digraph) BFSFrontier(seeds []Arc, opt Options) []int64 {
	return g.frontier(seeds, opt, true)
}

// Dijkstra computes shortest-path distances from src using stored arc
// lengths. Unreached nodes get Unreachable.
func (g *Digraph) Dijkstra(src int, opt Options) []int64 {
	g.check(src)
	if opt.Skip == src {
		panic("graph: cannot skip the Dijkstra source")
	}
	return g.dijkstraSeeded([]Arc{{To: src, Len: 0}}, opt)
}

// DijkstraFrontier is the weighted analogue of BFSFrontier: each seed (t,
// d0) enters the priority queue at distance d0.
func (g *Digraph) DijkstraFrontier(seeds []Arc, opt Options) []int64 {
	return g.frontier(seeds, opt, false)
}

func (g *Digraph) dijkstraSeeded(seeds []Arc, opt Options) []int64 {
	return g.frontier(seeds, opt, false)
}

// frontier is the shared multi-source shortest-path core. When unit is
// true, arc lengths are treated as 1 (BFS semantics with offsets).
func (g *Digraph) frontier(seeds []Arc, opt Options, unit bool) []int64 {
	if unit {
		obs.Global().Inc(obs.MBFS)
	} else {
		obs.Global().Inc(obs.MDijkstra)
	}
	dist := make([]int64, g.N())
	done := make([]bool, g.N())
	for i := range dist {
		dist[i] = Unreachable
	}
	pq := &arcHeap{}
	heap.Init(pq)
	for _, s := range seeds {
		if s.To == opt.Skip {
			continue
		}
		if dist[s.To] == Unreachable || s.Len < dist[s.To] {
			dist[s.To] = s.Len
			heap.Push(pq, s)
		}
	}
	for pq.Len() > 0 {
		top := heap.Pop(pq).(Arc)
		u := top.To
		if done[u] || dist[u] != top.Len {
			continue
		}
		done[u] = true
		for _, a := range g.adj[u] {
			v := a.To
			if v == opt.Skip {
				continue
			}
			step := a.Len
			if unit {
				step = 1
			}
			nd := dist[u] + step
			if dist[v] == Unreachable || nd < dist[v] {
				dist[v] = nd
				heap.Push(pq, Arc{To: v, Len: nd})
			}
		}
	}
	return dist
}

// arcHeap is a min-heap of Arc keyed by Len, reusing Arc as (node, dist).
type arcHeap []Arc

func (h arcHeap) Len() int            { return len(h) }
func (h arcHeap) Less(i, j int) bool  { return h[i].Len < h[j].Len }
func (h arcHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *arcHeap) Push(x interface{}) { *h = append(*h, x.(Arc)) }
func (h *arcHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// AllDistances returns the full distance matrix. If unit is true, hop
// counts are used (BFS); otherwise stored lengths (Dijkstra).
func (g *Digraph) AllDistances(unit bool) [][]int64 {
	d := make([][]int64, g.N())
	for u := range d {
		if unit {
			d[u] = g.BFS(u, Options{Skip: -1})
		} else {
			d[u] = g.Dijkstra(u, Options{Skip: -1})
		}
	}
	return d
}
