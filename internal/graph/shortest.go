package graph

// Unreachable is the distance reported for nodes with no path from the
// source. Callers in the game layer translate it into the disconnection
// penalty M of the game spec.
const Unreachable = int64(-1)

// Options tunes a shortest-path traversal.
type Options struct {
	// Skip, if >= 0, deletes the given node from the graph for the purposes
	// of this traversal: no path may enter or leave it. The source itself
	// may not be skipped.
	Skip int
}

// BFS computes hop-count distances from src, treating every arc as length 1
// regardless of its stored length. Unreached nodes get Unreachable. It
// allocates a fresh distance slice per call; hot paths use BFSInto with a
// reusable Scratch instead.
func (g *Digraph) BFS(src int, opt Options) []int64 {
	return g.BFSInto(make([]int64, g.N()), src, opt, nil)
}

// BFSFrontier runs a multi-source traversal treating every arc as length 1:
// each seed (t, d0) starts node t at distance d0. It is the primitive
// behind the best-response oracle, which evaluates a candidate link set
// {t1..tk} by seeding each target at distance ℓ(u, ti) in the graph with u
// skipped. Because seed offsets may differ, the traversal uses the same
// heap as Dijkstra with the arc length forced to 1.
func (g *Digraph) BFSFrontier(seeds []Arc, opt Options) []int64 {
	return g.frontierInto(make([]int64, g.N()), seeds, opt, true, nil)
}

// Dijkstra computes shortest-path distances from src using stored arc
// lengths. Unreached nodes get Unreachable.
func (g *Digraph) Dijkstra(src int, opt Options) []int64 {
	g.check(src)
	if opt.Skip == src {
		panic("graph: cannot skip the Dijkstra source")
	}
	return g.frontierInto(make([]int64, g.N()), []Arc{{To: src, Len: 0}}, opt, false, nil)
}

// DijkstraFrontier is the weighted analogue of BFSFrontier: each seed (t,
// d0) enters the priority queue at distance d0.
func (g *Digraph) DijkstraFrontier(seeds []Arc, opt Options) []int64 {
	return g.frontierInto(make([]int64, g.N()), seeds, opt, false, nil)
}

// AllDistances returns the full distance matrix. If unit is true, hop
// counts are used (BFS); otherwise stored lengths (Dijkstra).
func (g *Digraph) AllDistances(unit bool) [][]int64 {
	d := make([][]int64, g.N())
	var s Scratch
	for u := range d {
		d[u] = make([]int64, g.N())
		if unit {
			g.BFSInto(d[u], u, Options{Skip: -1}, &s)
		} else {
			g.DijkstraInto(d[u], u, Options{Skip: -1}, &s)
		}
	}
	return d
}
