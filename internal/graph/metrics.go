package graph

// Reach returns, for every node, the number of nodes it can reach
// (including itself), matching the "reach" quantity of Section 4.3 of the
// paper. It runs one BFS per node; use ReachOf for a single node.
func (g *Digraph) Reach() []int {
	r := make([]int, g.N())
	for u := range r {
		r[u] = g.ReachOf(u)
	}
	return r
}

// ReachOf returns the number of nodes reachable from u, including u.
func (g *Digraph) ReachOf(u int) int {
	dist := g.BFS(u, Options{Skip: -1})
	count := 0
	for _, d := range dist {
		if d != Unreachable {
			count++
		}
	}
	return count
}

// Eccentricity returns the maximum finite distance from u to any other
// node, and whether u reaches every node. If u does not reach every node,
// the returned eccentricity covers only the reachable set.
func (g *Digraph) Eccentricity(u int, unit bool) (ecc int64, reachesAll bool) {
	var dist []int64
	if unit {
		dist = g.BFS(u, Options{Skip: -1})
	} else {
		dist = g.Dijkstra(u, Options{Skip: -1})
	}
	reachesAll = true
	for _, d := range dist {
		if d == Unreachable {
			reachesAll = false
			continue
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc, reachesAll
}

// Diameter returns the maximum eccentricity over all nodes and whether the
// graph is strongly connected. If it is not, the diameter covers only
// finite distances.
func (g *Digraph) Diameter(unit bool) (diam int64, strongly bool) {
	strongly = true
	for u := 0; u < g.N(); u++ {
		ecc, all := g.Eccentricity(u, unit)
		if !all {
			strongly = false
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam, strongly
}

// Radius returns the minimum eccentricity over nodes that reach every other
// node, and whether such a node exists. Lemma 7 of the paper asserts that a
// stable uniform graph has a node of eccentricity O(sqrt(n)).
func (g *Digraph) Radius(unit bool) (radius int64, ok bool) {
	for u := 0; u < g.N(); u++ {
		ecc, all := g.Eccentricity(u, unit)
		if !all {
			continue
		}
		if !ok || ecc < radius {
			radius = ecc
			ok = true
		}
	}
	return radius, ok
}

// SumDistances returns the sum of distances from u to every other node,
// charging penalty for each unreachable node.
func (g *Digraph) SumDistances(u int, unit bool, penalty int64) int64 {
	var dist []int64
	if unit {
		dist = g.BFS(u, Options{Skip: -1})
	} else {
		dist = g.Dijkstra(u, Options{Skip: -1})
	}
	var sum int64
	for v, d := range dist {
		if v == u {
			continue
		}
		if d == Unreachable {
			sum += penalty
		} else {
			sum += d
		}
	}
	return sum
}
