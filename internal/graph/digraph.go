// Package graph provides the directed-graph substrate used by the BBC game
// engine: weighted digraphs, single-source shortest paths (BFS for uniform
// lengths, Dijkstra for general integer lengths), strongly connected
// components, reachability, distance metrics, canonical configuration
// hashing, and DOT export.
//
// Nodes are dense integer indices in [0, N). Arc lengths are non-negative
// int64 values; the special traversal option Skip lets callers compute
// distances in the graph with one node deleted, which is the structure the
// best-response oracle of the BBC game relies on (a shortest path from u
// never revisits u, so d(u, v) decomposes over d_{G−u}).
package graph

import (
	"fmt"
	"sort"
)

// Arc is a directed edge to a target node with a non-negative length.
type Arc struct {
	To  int
	Len int64
}

// Digraph is a mutable directed graph over nodes 0..n-1 with weighted arcs.
// The zero value is an empty graph with no nodes; use New to create a graph
// with a fixed node count.
type Digraph struct {
	adj [][]Arc
}

// New returns an empty digraph on n nodes.
func New(n int) *Digraph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Digraph{adj: make([][]Arc, n)}
}

// FromAdjacency builds a digraph from unit-length adjacency lists.
// adj[u] lists the out-neighbors of u. Targets must be in range.
func FromAdjacency(adj [][]int) *Digraph {
	g := New(len(adj))
	for u, outs := range adj {
		for _, v := range outs {
			g.AddArc(u, v, 1)
		}
	}
	return g
}

// N returns the number of nodes.
func (g *Digraph) N() int { return len(g.adj) }

// M returns the number of arcs.
func (g *Digraph) M() int {
	m := 0
	for _, outs := range g.adj {
		m += len(outs)
	}
	return m
}

// AddArc adds a directed arc u -> v with the given length. Parallel arcs are
// permitted (shortest-path routines simply ignore the longer one). Self
// loops are rejected because they can never lie on a shortest path and the
// game model disallows buying them.
func (g *Digraph) AddArc(u, v int, length int64) {
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graph: self loop on node %d", u))
	}
	if length < 0 {
		panic(fmt.Sprintf("graph: negative arc length %d", length))
	}
	g.adj[u] = append(g.adj[u], Arc{To: v, Len: length})
}

// RemoveArcs deletes all arcs out of u. It is used when a game node rewires:
// its entire out-neighborhood is replaced by the new strategy.
func (g *Digraph) RemoveArcs(u int) {
	g.check(u)
	g.adj[u] = g.adj[u][:0]
}

// RemoveArcTo deletes one arc u -> v (the first in insertion order),
// preserving the relative order of the remaining arcs, and reports whether
// an arc was removed. It is the incremental-maintenance counterpart of
// AddArc: a caller mirroring another graph's rewires (for example the
// reversed twin the evaluation scratch keeps for column-wise oracle
// rebuilds) retracts exactly one multiset occurrence per call.
func (g *Digraph) RemoveArcTo(u, v int) bool {
	g.check(u)
	g.check(v)
	outs := g.adj[u]
	for i, a := range outs {
		if a.To == v {
			g.adj[u] = append(outs[:i], outs[i+1:]...)
			return true
		}
	}
	return false
}

// SetArcs replaces the out-neighborhood of u with unit-length arcs to the
// given targets.
func (g *Digraph) SetArcs(u int, targets []int) {
	g.RemoveArcs(u)
	for _, v := range targets {
		g.AddArc(u, v, 1)
	}
}

// Out returns the arcs out of u. The returned slice is owned by the graph
// and must not be mutated by the caller.
func (g *Digraph) Out(u int) []Arc {
	g.check(u)
	return g.adj[u]
}

// OutDegree returns the number of arcs leaving u.
func (g *Digraph) OutDegree(u int) int {
	g.check(u)
	return len(g.adj[u])
}

// HasArc reports whether an arc u -> v exists (any length).
func (g *Digraph) HasArc(u, v int) bool {
	g.check(u)
	for _, a := range g.adj[u] {
		if a.To == v {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the graph.
func (g *Digraph) Clone() *Digraph {
	c := New(g.N())
	for u, outs := range g.adj {
		c.adj[u] = append([]Arc(nil), outs...)
	}
	return c
}

// Reverse returns a new graph with every arc reversed.
func (g *Digraph) Reverse() *Digraph {
	r := New(g.N())
	for u, outs := range g.adj {
		for _, a := range outs {
			r.adj[a.To] = append(r.adj[a.To], Arc{To: u, Len: a.Len})
		}
	}
	return r
}

// Targets returns the sorted list of distinct out-neighbors of u.
func (g *Digraph) Targets(u int) []int {
	g.check(u)
	seen := make(map[int]bool, len(g.adj[u]))
	ts := make([]int, 0, len(g.adj[u]))
	for _, a := range g.adj[u] {
		if !seen[a.To] {
			seen[a.To] = true
			ts = append(ts, a.To)
		}
	}
	sort.Ints(ts)
	return ts
}

// Equal reports whether two graphs have identical node counts and identical
// arc multisets (order-insensitive per node).
func (g *Digraph) Equal(h *Digraph) bool {
	if g.N() != h.N() {
		return false
	}
	for u := range g.adj {
		a := append([]Arc(nil), g.adj[u]...)
		b := append([]Arc(nil), h.adj[u]...)
		if len(a) != len(b) {
			return false
		}
		sortArcs(a)
		sortArcs(b)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}

func sortArcs(arcs []Arc) {
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].To != arcs[j].To {
			return arcs[i].To < arcs[j].To
		}
		return arcs[i].Len < arcs[j].Len
	})
}

func (g *Digraph) check(u int) {
	if u < 0 || u >= len(g.adj) {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", u, len(g.adj)))
	}
}
