package graph

// SCC computes the strongly connected components of the graph using
// Tarjan's algorithm (iterative, so deep graphs do not overflow the
// goroutine stack). It returns comp, a slice mapping each node to its
// component id, and the number of components. Component ids are in reverse
// topological order of the condensation: if there is an arc from component
// a to component b (a != b), then comp id of a is greater than that of b.
func (g *Digraph) SCC() (comp []int, count int) {
	n := g.N()
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	stack := make([]int, 0, n)
	next := 0

	type frame struct {
		node int
		arc  int
	}
	var frames []frame

	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		frames = append(frames[:0], frame{node: root})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			u := f.node
			if f.arc < len(g.adj[u]) {
				v := g.adj[u][f.arc].To
				f.arc++
				if index[v] == -1 {
					index[v] = next
					low[v] = next
					next++
					stack = append(stack, v)
					onStack[v] = true
					frames = append(frames, frame{node: v})
				} else if onStack[v] && index[v] < low[u] {
					low[u] = index[v]
				}
				continue
			}
			// All arcs of u explored.
			if low[u] == index[u] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = count
					if w == u {
						break
					}
				}
				count++
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].node
				if low[u] < low[parent] {
					low[parent] = low[u]
				}
			}
		}
	}
	return comp, count
}

// Condensation returns the DAG over the SCCs of g: one node per component,
// with a (deduplicated, unit-length) arc between components that have any
// cross arc in g.
func (g *Digraph) Condensation() (dag *Digraph, comp []int) {
	comp, count := g.SCC()
	dag = New(count)
	seen := make(map[[2]int]bool)
	for u, outs := range g.adj {
		for _, a := range outs {
			cu, cv := comp[u], comp[a.To]
			if cu == cv {
				continue
			}
			key := [2]int{cu, cv}
			if !seen[key] {
				seen[key] = true
				dag.AddArc(cu, cv, 1)
			}
		}
	}
	return dag, comp
}

// StronglyConnected reports whether the graph consists of a single strongly
// connected component. The empty graph and the 1-node graph are considered
// strongly connected.
func (g *Digraph) StronglyConnected() bool {
	if g.N() <= 1 {
		return true
	}
	_, count := g.SCC()
	return count == 1
}
