package graph

import (
	"math/rand"
	"testing"
)

func TestNewAndCounts(t *testing.T) {
	tests := []struct {
		name string
		n    int
		arcs [][2]int
		m    int
	}{
		{name: "empty", n: 0, m: 0},
		{name: "isolated", n: 5, m: 0},
		{name: "triangle", n: 3, arcs: [][2]int{{0, 1}, {1, 2}, {2, 0}}, m: 3},
		{name: "parallel", n: 2, arcs: [][2]int{{0, 1}, {0, 1}}, m: 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := New(tt.n)
			for _, a := range tt.arcs {
				g.AddArc(a[0], a[1], 1)
			}
			if got := g.N(); got != tt.n {
				t.Errorf("N() = %d, want %d", got, tt.n)
			}
			if got := g.M(); got != tt.m {
				t.Errorf("M() = %d, want %d", got, tt.m)
			}
		})
	}
}

func TestAddArcPanics(t *testing.T) {
	tests := []struct {
		name string
		fn   func(g *Digraph)
	}{
		{name: "self loop", fn: func(g *Digraph) { g.AddArc(1, 1, 1) }},
		{name: "negative length", fn: func(g *Digraph) { g.AddArc(0, 1, -1) }},
		{name: "source out of range", fn: func(g *Digraph) { g.AddArc(5, 1, 1) }},
		{name: "target out of range", fn: func(g *Digraph) { g.AddArc(0, -2, 1) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tt.fn(New(3))
		})
	}
}

func TestSetArcsReplaces(t *testing.T) {
	g := New(4)
	g.SetArcs(0, []int{1, 2})
	if !g.HasArc(0, 1) || !g.HasArc(0, 2) || g.HasArc(0, 3) {
		t.Fatalf("unexpected arcs after first SetArcs: %v", g.Out(0))
	}
	g.SetArcs(0, []int{3})
	if g.HasArc(0, 1) || g.HasArc(0, 2) || !g.HasArc(0, 3) {
		t.Fatalf("unexpected arcs after second SetArcs: %v", g.Out(0))
	}
	if g.OutDegree(0) != 1 {
		t.Fatalf("OutDegree = %d, want 1", g.OutDegree(0))
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1, 2)
	c := g.Clone()
	c.AddArc(1, 2, 1)
	if g.HasArc(1, 2) {
		t.Fatal("mutating clone changed the original")
	}
	if !c.HasArc(0, 1) {
		t.Fatal("clone lost an arc")
	}
}

func TestReverse(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1, 5)
	g.AddArc(1, 2, 7)
	r := g.Reverse()
	if !r.HasArc(1, 0) || !r.HasArc(2, 1) {
		t.Fatalf("reverse arcs missing")
	}
	if r.M() != 2 {
		t.Fatalf("reverse M = %d, want 2", r.M())
	}
	if r.Out(1)[0].Len != 5 {
		t.Fatalf("reverse lost arc length: %v", r.Out(1))
	}
}

func TestReverseTwiceIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		g := randomGraph(rng, 1+rng.Intn(12), 0.3)
		if !g.Reverse().Reverse().Equal(g) {
			t.Fatalf("trial %d: reverse twice differs from original", trial)
		}
	}
}

func TestTargetsSortedDistinct(t *testing.T) {
	g := New(5)
	g.AddArc(0, 3, 1)
	g.AddArc(0, 1, 1)
	g.AddArc(0, 3, 2)
	got := g.Targets(0)
	want := []int{1, 3}
	if len(got) != len(want) {
		t.Fatalf("Targets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Targets = %v, want %v", got, want)
		}
	}
}

func TestEqual(t *testing.T) {
	a := New(3)
	a.AddArc(0, 1, 1)
	a.AddArc(0, 2, 1)
	b := New(3)
	b.AddArc(0, 2, 1)
	b.AddArc(0, 1, 1)
	if !a.Equal(b) {
		t.Fatal("graphs with same arcs in different order should be Equal")
	}
	b.AddArc(1, 2, 1)
	if a.Equal(b) {
		t.Fatal("graphs with different arcs should not be Equal")
	}
	if a.Equal(New(4)) {
		t.Fatal("graphs with different node counts should not be Equal")
	}
}

func TestFromAdjacency(t *testing.T) {
	g := FromAdjacency([][]int{{1, 2}, {2}, {}})
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("N=%d M=%d, want 3,3", g.N(), g.M())
	}
	if !g.HasArc(0, 2) || g.HasArc(2, 0) {
		t.Fatal("adjacency not respected")
	}
}

// randomGraph builds a random simple digraph on n nodes where each ordered
// pair gets an arc with probability p (unit lengths).
func randomGraph(rng *rand.Rand, n int, p float64) *Digraph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < p {
				g.AddArc(u, v, 1)
			}
		}
	}
	return g
}

// randomWeightedGraph builds a random digraph with lengths in [1, maxLen].
func randomWeightedGraph(rng *rand.Rand, n int, p float64, maxLen int64) *Digraph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < p {
				g.AddArc(u, v, 1+rng.Int63n(maxLen))
			}
		}
	}
	return g
}
