package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanRec is one recorded span: a named interval on a track, relative to
// the tracer's epoch. Records are plain data so the ring buffer reuses
// slots without allocation.
type SpanRec struct {
	// Name is the span's event name ("enum.partition", "oracle.build", ...).
	Name string
	// Track separates concurrent timelines in the exported trace (worker
	// index, 0 for the main line of execution). It maps to the Chrome
	// trace "tid".
	Track int
	// StartNS and DurNS position the span in nanoseconds since the
	// tracer's epoch.
	StartNS int64
	DurNS   int64
	// Instant marks a zero-duration point event ("job.checkpoint").
	Instant bool
	// ArgName/Arg carry one optional integer annotation ("checked", 123).
	ArgName string
	Arg     int64
}

// DefaultTraceCap is the ring capacity used when NewTracer is given 0.
const DefaultTraceCap = 1 << 16

// Tracer records spans into a bounded ring buffer. Like the counter
// Registry it is nil-safe and off by default: a nil *Tracer hands out
// inert Spans without reading the clock, so instrumented hot paths pay a
// single pointer test when tracing is off. When the ring fills, the
// oldest spans are overwritten and counted as dropped — a trace is a
// diagnostic window, not an unbounded log.
type Tracer struct {
	epoch time.Time

	mu   sync.Mutex
	ring []SpanRec
	next uint64 // total spans recorded; ring slot = next % cap
}

// NewTracer returns a tracer with the given ring capacity (0 =
// DefaultTraceCap). The epoch is the call time; span timestamps are
// relative to it.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{epoch: time.Now(), ring: make([]SpanRec, 0, capacity)}
}

// Span is an in-progress interval handed out by StartSpan. The zero Span
// (from a nil tracer) is inert: End and EndInt are no-ops. Spans are
// values — they live on the caller's stack and never escape.
type Span struct {
	t     *Tracer
	name  string
	t0    time.Time
	track int
}

// StartSpan begins a span on track 0. On a nil tracer no clock is read
// and the returned Span is inert.
func (t *Tracer) StartSpan(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, t0: time.Now()}
}

// OnTrack returns the span relocated to the given track. Call it before
// End; it is chainable on the StartSpan result.
func (s Span) OnTrack(track int) Span {
	s.track = track
	return s
}

// End records the span with no annotation.
func (s Span) End() { s.end("", 0) }

// EndInt records the span with one integer annotation, e.g.
// EndInt("checked", 1234).
func (s Span) EndInt(argName string, arg int64) { s.end(argName, arg) }

func (s Span) end(argName string, arg int64) {
	if s.t == nil {
		return
	}
	now := time.Now()
	s.t.record(SpanRec{
		Name:    s.name,
		Track:   s.track,
		StartNS: s.t0.Sub(s.t.epoch).Nanoseconds(),
		DurNS:   now.Sub(s.t0).Nanoseconds(),
		ArgName: argName,
		Arg:     arg,
	})
}

// RecordSpan records an explicit interval — a lifecycle phase whose
// boundaries were observed elsewhere (e.g. a serve job's queued span,
// delimited by its submit and start times). argName "" means no
// annotation. No-op on a nil tracer or a zero start.
func (t *Tracer) RecordSpan(name string, track int, start, end time.Time, argName string, arg int64) {
	if t == nil || start.IsZero() {
		return
	}
	t.record(SpanRec{
		Name:    name,
		Track:   track,
		StartNS: start.Sub(t.epoch).Nanoseconds(),
		DurNS:   end.Sub(start).Nanoseconds(),
		ArgName: argName,
		Arg:     arg,
	})
}

// Instant records a zero-duration point event at the current time.
// No-op on a nil tracer.
func (t *Tracer) Instant(name string, track int, argName string, arg int64) {
	if t == nil {
		return
	}
	t.record(SpanRec{
		Name:    name,
		Track:   track,
		StartNS: time.Since(t.epoch).Nanoseconds(),
		Instant: true,
		ArgName: argName,
		Arg:     arg,
	})
}

func (t *Tracer) record(rec SpanRec) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[t.next%uint64(cap(t.ring))] = rec
	}
	t.next++
	t.mu.Unlock()
}

// Recorded returns the total number of spans recorded, including any
// overwritten by ring wraparound.
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Dropped returns how many spans were overwritten by ring wraparound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next <= uint64(cap(t.ring)) {
		return 0
	}
	return t.next - uint64(cap(t.ring))
}

// Spans returns the surviving spans oldest-first.
func (t *Tracer) Spans() []SpanRec {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next <= uint64(cap(t.ring)) {
		return append([]SpanRec(nil), t.ring...)
	}
	head := int(t.next % uint64(cap(t.ring)))
	out := make([]SpanRec, 0, len(t.ring))
	out = append(out, t.ring[head:]...)
	out = append(out, t.ring[:head]...)
	return out
}

// WriteChromeTrace writes the recorded spans as Chrome trace-event JSON
// (the format chrome://tracing and Perfetto load): one "X" complete
// event per span, "i" instant events for point records, with timestamps
// in microseconds. The run id rides in every event's args and in the
// trace-level otherData, so traces from different processes correlate.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	spans := t.Spans()

	events := make([]map[string]any, 0, len(spans)+8)
	events = append(events, map[string]any{
		"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
		"args": map[string]any{"name": "bbc run " + RunID()},
	})
	tracks := map[int]bool{}
	for _, sp := range spans {
		tracks[sp.Track] = true
	}
	ids := make([]int, 0, len(tracks))
	for id := range tracks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		name := "main"
		if id != 0 {
			name = fmt.Sprintf("worker-%d", id)
		}
		events = append(events, map[string]any{
			"name": "thread_name", "ph": "M", "pid": 1, "tid": id,
			"args": map[string]any{"name": name},
		})
	}
	for _, sp := range spans {
		args := map[string]any{"run_id": RunID()}
		if sp.ArgName != "" {
			args[sp.ArgName] = sp.Arg
		}
		ev := map[string]any{
			"name": sp.Name,
			"pid":  1,
			"tid":  sp.Track,
			"ts":   float64(sp.StartNS) / 1e3,
			"args": args,
		}
		if sp.Instant {
			ev["ph"] = "i"
			ev["s"] = "t"
		} else {
			ev["ph"] = "X"
			ev["dur"] = float64(sp.DurNS) / 1e3
		}
		events = append(events, ev)
	}
	doc := map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
		"otherData": map[string]any{
			"run_id":   RunID(),
			"recorded": t.Recorded(),
			"dropped":  t.Dropped(),
		},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteChromeTraceFile writes the trace to path, creating or truncating
// it. A nil tracer writes an empty (but valid) trace.
func (t *Tracer) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: create trace file: %w", err)
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: write trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: close trace file: %w", err)
	}
	return nil
}

// globalTracer holds the process-wide tracer; nil means tracing off.
var globalTracer atomic.Pointer[Tracer]

// Trace returns the installed process-wide tracer, or nil when tracing
// is off. Library hot paths read it once per operation; the nil-safe
// Span API makes the off state a pointer test.
func Trace() *Tracer { return globalTracer.Load() }

// SetTracer installs t as the process-wide tracer (nil turns tracing
// off) and returns the previous tracer so tests can restore it.
func SetTracer(t *Tracer) *Tracer {
	return globalTracer.Swap(t)
}
