package obs

import (
	"bufio"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// PrometheusContentType is the Content-Type of text exposition v0.0.4.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// Gauge is one instantaneous value to expose alongside the registry
// (goroutine count, heap bytes, job-state gauges). Name is the full
// Prometheus metric name.
type Gauge struct {
	Name  string
	Help  string
	Value float64
}

// RuntimeGauges returns the standard process gauges: goroutines, heap
// usage and GC cycles. uptime ≤ 0 omits the uptime gauge.
func RuntimeGauges(uptime time.Duration) []Gauge {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	out := []Gauge{
		{Name: "bbc_goroutines", Help: "Live goroutines.", Value: float64(runtime.NumGoroutine())},
		{Name: "bbc_heap_alloc_bytes", Help: "Bytes of allocated heap objects.", Value: float64(ms.HeapAlloc)},
		{Name: "bbc_heap_sys_bytes", Help: "Bytes of heap obtained from the OS.", Value: float64(ms.HeapSys)},
		{Name: "bbc_gc_cycles", Help: "Completed GC cycles.", Value: float64(ms.NumGC)},
	}
	if uptime > 0 {
		out = append(out, Gauge{Name: "bbc_uptime_seconds", Help: "Process uptime.", Value: uptime.Seconds()})
	}
	return out
}

// promName mangles a stable obs metric name ("oracle.build_nanos") into
// a Prometheus base name and a value divisor: dots become underscores,
// the bbc_ namespace is prefixed, and nanosecond units are converted to
// Prometheus' canonical seconds ("_nanos"/"_ns" → "_seconds", divisor
// 1e9). A divisor rather than a 1e-9 multiplier because 1e9 is exactly
// representable: 500ns divides to the correctly-rounded 5e-07 and
// formats cleanly, where 500×1e-9 carries float noise into the le
// labels.
func promName(name string) (string, float64) {
	base := "bbc_" + strings.ReplaceAll(name, ".", "_")
	div := 1.0
	switch {
	case strings.HasSuffix(base, "_nanos"):
		base = strings.TrimSuffix(base, "_nanos") + "_seconds"
		div = 1e9
	case strings.HasSuffix(base, "_ns"):
		base = strings.TrimSuffix(base, "_ns") + "_seconds"
		div = 1e9
	}
	return base, div
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the registry's counters and histograms plus the
// given gauges as Prometheus text exposition v0.0.4. Counters are
// exposed with the _total suffix; nanosecond accumulators and histogram
// bounds are converted to seconds. Every defined metric is written even
// at zero, so scraped series are continuous. A nil registry writes only
// the gauges.
func WritePrometheus(w io.Writer, r *Registry, gauges []Gauge) error {
	bw := bufio.NewWriter(w)
	for _, m := range Metrics() {
		base, div := promName(m.String())
		name := base + "_total"
		fmt.Fprintf(bw, "# HELP %s BBC counter %s.\n", name, m.String())
		fmt.Fprintf(bw, "# TYPE %s counter\n", name)
		v := r.Get(m)
		if div != 1 {
			fmt.Fprintf(bw, "%s %s\n", name, promFloat(float64(v)/div))
		} else {
			fmt.Fprintf(bw, "%s %d\n", name, v)
		}
	}
	for _, h := range HMetrics() {
		base, div := promName(h.String())
		snap := r.HistogramFor(h)
		if snap.Bounds == nil {
			snap.Bounds = histBounds[h]
			snap.Counts = make([]int64, len(snap.Bounds)+1)
		}
		fmt.Fprintf(bw, "# HELP %s %s\n", base, histHelp[h])
		fmt.Fprintf(bw, "# TYPE %s histogram\n", base)
		var cum int64
		for i, bound := range snap.Bounds {
			cum += snap.Counts[i]
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", base, promFloat(float64(bound)/div), cum)
		}
		cum += snap.Counts[len(snap.Bounds)]
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", base, cum)
		fmt.Fprintf(bw, "%s_sum %s\n", base, promFloat(float64(snap.Sum)/div))
		fmt.Fprintf(bw, "%s_count %d\n", base, snap.Count)
	}
	for _, g := range gauges {
		fmt.Fprintf(bw, "# HELP %s %s\n", g.Name, g.Help)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", g.Name)
		fmt.Fprintf(bw, "%s %s\n", g.Name, promFloat(g.Value))
	}
	return bw.Flush()
}
