package obs

// Native fuzz target for journal salvage: crashed runs leave arbitrary
// bytes at the tail of a JSONL journal, and salvage must never panic,
// never claim more than it verified, and always return a prefix that
// re-parses to the same records.

import (
	"bytes"
	"encoding/json"
	"testing"
)

var salvageSeeds = []string{
	"",
	`{"type":"move","seq":0,"elapsed_ms":1}` + "\n",
	`{"type":"move","seq":0,"elapsed_ms":1}` + "\n" + `{"type":"run_status","seq":1}` + "\n",
	`{"type":"move","seq":0}` + "\n" + `{"type":"move","seq":1,"ela`,
	"\x00\xff garbage\n",
	`{"type":"move","seq":0}` + "\n" + "garbage\n" + `{"type":"move","seq":2}` + "\n",
	`{"type":"checkpoint","seq":0,"data":{"path":"a.ckpt"},"counters":{"x":1}}` + "\n",
	"\n\n\n",
	`{}` + "\n",
}

func FuzzJournalSalvage(f *testing.F) {
	for _, seed := range salvageSeeds {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, validLen := salvageRecords(data)
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("valid prefix %d out of range [0,%d]", validLen, len(data))
		}
		if validLen > 0 && data[validLen-1] != '\n' {
			t.Fatalf("valid prefix does not end on a record boundary")
		}
		// The claimed prefix must re-salvage to exactly the same records:
		// salvage is idempotent on its own output.
		recs2, validLen2 := salvageRecords(data[:validLen])
		if validLen2 != validLen || len(recs2) != len(recs) {
			t.Fatalf("salvage not idempotent: (%d recs, %d bytes) vs (%d recs, %d bytes)",
				len(recs), validLen, len(recs2), validLen2)
		}
		// Every salvaged record is a complete JSON document on its own
		// line of the prefix.
		lines := bytes.Split(data[:validLen], []byte("\n"))
		if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
			lines = lines[:len(lines)-1]
		}
		if len(lines) != len(recs) {
			t.Fatalf("%d salvaged records from %d prefix lines", len(recs), len(lines))
		}
		for i, line := range lines {
			var rec Record
			if err := json.Unmarshal(line, &rec); err != nil {
				t.Fatalf("salvaged line %d does not re-parse: %v", i, err)
			}
		}
	})
}
