package obs

import (
	"fmt"
	"io"

	"bbc/internal/faultfs"
)

// Runtime bundles the observability facilities a CLI enabled: the
// process-wide registry (always installed), the optional journal and the
// optional span tracer. The zero value / nil pointer is inert, so error
// paths can Close it blindly.
type Runtime struct {
	Reg     *Registry
	Journal *Journal
	Tracer  *Tracer

	name      string
	stderr    io.Writer
	tracePath string
}

// CLIConfig configures StartCLIConfig.
type CLIConfig struct {
	// Name prefixes stderr diagnostics ("bbcsim", ...).
	Name string
	// Journal, when non-empty, opens a JSONL run journal at this path.
	Journal string
	// AppendJournal reopens an existing journal in salvage-append mode
	// (resumed runs) instead of truncating it: the interrupted run's
	// records survive, a torn tail is dropped, and sequence numbers
	// continue.
	AppendJournal bool
	// JournalMaxBytes, when > 0, caps the live journal file: it rotates
	// to <path>.1 at record boundaries (salvage-compatible framing) so a
	// long-lived process cannot grow its journal unboundedly.
	JournalMaxBytes int64
	// Trace, when non-empty, installs the process-wide span tracer and
	// writes a Chrome trace-event JSON file (chrome://tracing /
	// Perfetto-loadable) to this path on Close.
	Trace string
	// TraceCap bounds the tracer's span ring (0 = DefaultTraceCap). When
	// the ring fills, the oldest spans are dropped and counted.
	TraceCap int
	// Pprof, when non-empty, serves the pprof/expvar debug server at
	// this address.
	Pprof string
	// Stderr receives startup diagnostics.
	Stderr io.Writer
	// FS is the filesystem for journal I/O (nil = real OS).
	FS faultfs.FS
}

// StartCLI installs a fresh global registry and wires the standard
// observability flags shared by the bbc commands: journalPath ("" = off)
// opens a JSONL run journal (truncating), pprofAddr ("" = off) starts
// the pprof/expvar debug server and announces its address on stderr. The
// caller owns Close, which flushes the journal and surfaces its first
// write error.
func StartCLI(name, journalPath, pprofAddr string, stderr io.Writer) (*Runtime, error) {
	return StartCLIConfig(CLIConfig{Name: name, Journal: journalPath, Pprof: pprofAddr, Stderr: stderr})
}

// StartCLIConfig is StartCLI with the full option set (journal append
// mode for resumed runs, span tracing, fault-injectable filesystem).
func StartCLIConfig(c CLIConfig) (*Runtime, error) {
	rt := &Runtime{Reg: NewRegistry(), name: c.Name, stderr: c.Stderr}
	SetGlobal(rt.Reg)
	if c.Journal != "" {
		j, sal, err := OpenJournalConfig(JournalConfig{
			FS: c.FS, Path: c.Journal, Reg: rt.Reg,
			MaxBytes: c.JournalMaxBytes, Append: c.AppendJournal,
		})
		if err != nil {
			return nil, err
		}
		if sal != nil && sal.DroppedBytes > 0 && c.Stderr != nil {
			fmt.Fprintf(c.Stderr, "%s: journal %s: salvaged %d records, dropped a torn tail of %d bytes\n",
				c.Name, c.Journal, sal.Kept, sal.DroppedBytes)
		}
		rt.Journal = j
	}
	if c.Trace != "" {
		rt.Tracer = NewTracer(c.TraceCap)
		rt.tracePath = c.Trace
		SetTracer(rt.Tracer)
	}
	if c.Pprof != "" {
		addr, err := ServeDebug(c.Pprof)
		if err != nil {
			rt.Journal.Close()
			return nil, err
		}
		fmt.Fprintf(c.Stderr, "%s: debug server at http://%s/debug/pprof/ (counters at /debug/vars, Prometheus at /metrics)\n", c.Name, addr)
	}
	return rt, nil
}

// Close writes the Chrome trace file (when tracing was enabled) and
// flushes the journal (when one was opened), returning the first error.
// Safe on a nil runtime.
func (rt *Runtime) Close() error {
	if rt == nil {
		return nil
	}
	var traceErr error
	if rt.tracePath != "" {
		SetTracer(nil)
		traceErr = rt.Tracer.WriteChromeTraceFile(rt.tracePath)
		if traceErr == nil && rt.stderr != nil {
			fmt.Fprintf(rt.stderr, "%s: trace written to %s (%d spans, %d dropped, run %s)\n",
				rt.name, rt.tracePath, rt.Tracer.Recorded()-rt.Tracer.Dropped(), rt.Tracer.Dropped(), RunID())
		}
	}
	if err := rt.Journal.Close(); err != nil {
		return err
	}
	return traceErr
}
