package obs

import (
	"fmt"
	"io"
)

// Runtime bundles the observability facilities a CLI enabled: the
// process-wide registry (always installed) and the optional journal. The
// zero value / nil pointer is inert, so error paths can Close it blindly.
type Runtime struct {
	Reg     *Registry
	Journal *Journal
}

// StartCLI installs a fresh global registry and wires the standard
// observability flags shared by the bbc commands: journalPath ("" = off)
// opens a JSONL run journal, pprofAddr ("" = off) starts the
// pprof/expvar debug server and announces its address on stderr. The
// caller owns Close, which flushes the journal and surfaces its first
// write error.
func StartCLI(name, journalPath, pprofAddr string, stderr io.Writer) (*Runtime, error) {
	rt := &Runtime{Reg: NewRegistry()}
	SetGlobal(rt.Reg)
	if journalPath != "" {
		j, err := OpenJournal(journalPath, rt.Reg)
		if err != nil {
			return nil, err
		}
		rt.Journal = j
	}
	if pprofAddr != "" {
		addr, err := ServeDebug(pprofAddr)
		if err != nil {
			rt.Journal.Close()
			return nil, err
		}
		fmt.Fprintf(stderr, "%s: debug server at http://%s/debug/pprof/ (counters at /debug/vars)\n", name, addr)
	}
	return rt, nil
}

// Close flushes the journal (when one was opened) and returns its first
// write error. Safe on a nil runtime.
func (rt *Runtime) Close() error {
	if rt == nil {
		return nil
	}
	return rt.Journal.Close()
}
