package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress is a throttled progress/ETA reporter for long-running scans.
// It samples a monotone "work done" reading (typically a registry
// counter) on a fixed interval from its own goroutine, so the hot path
// being observed pays nothing beyond its ordinary counter increments.
// A nil *Progress accepts Stop as a no-op.
type Progress struct {
	w        io.Writer
	label    string
	total    uint64
	read     func() uint64
	interval time.Duration
	start    time.Time
	now      func() time.Time // nil = time.Now; injectable for tests

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// minRateElapsed is the floor below which a measured rate is considered
// meaningless and omitted from output: a Stop within the first few
// milliseconds (fast runs, tests) would otherwise divide by ~0 and print
// "+Inf/s" or "NaN/s" in the final summary line.
const minRateElapsed = 10 * time.Millisecond

// StartProgress launches a reporter that prints one line per interval to
// w (conventionally stderr):
//
//	bbc: enumerate 1.20M/7.50M (16.0%) 251k/s eta 25s
//
// total is the expected final reading (0 when unknown — the percentage
// and ETA are then omitted), read returns the work done so far, and
// interval throttles output (0 means 1s). Stop prints a final summary
// line, so even sub-interval runs emit exactly one line.
func StartProgress(w io.Writer, label string, total uint64, read func() uint64, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = time.Second
	}
	p := &Progress{
		w:        w,
		label:    label,
		total:    total,
		read:     read,
		interval: interval,
		start:    time.Now(),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go p.loop()
	return p
}

func (p *Progress) loop() {
	defer close(p.done)
	tick := time.NewTicker(p.interval)
	defer tick.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-tick.C:
			p.line(false)
		}
	}
}

// line prints one progress (or final) report. The rate (and the ETA
// derived from it) is reported only when enough wall time has elapsed to
// make it meaningful; below the floor it is omitted rather than printed
// as +Inf/s, NaN/s or a wild extrapolation.
func (p *Progress) line(final bool) {
	cur := p.read()
	nowFn := p.now
	if nowFn == nil {
		nowFn = time.Now
	}
	elapsed := nowFn().Sub(p.start)
	rate, rateKnown := 0.0, false
	if elapsed >= minRateElapsed {
		rate, rateKnown = float64(cur)/elapsed.Seconds(), true
	}
	if final {
		if rateKnown {
			fmt.Fprintf(p.w, "bbc: %s done %s in %s (%s/s)\n",
				p.label, humanCount(cur), roundDuration(elapsed), humanRate(rate))
		} else {
			fmt.Fprintf(p.w, "bbc: %s done %s in %s\n",
				p.label, humanCount(cur), roundDuration(elapsed))
		}
		return
	}
	switch {
	case p.total > 0 && rateKnown && rate > 0:
		remain := time.Duration(float64(p.total-min64(cur, p.total)) / rate * float64(time.Second))
		fmt.Fprintf(p.w, "bbc: %s %s/%s (%.1f%%) %s/s eta %s\n",
			p.label, humanCount(cur), humanCount(p.total),
			100*float64(cur)/float64(p.total), humanRate(rate), roundDuration(remain))
	case rateKnown:
		fmt.Fprintf(p.w, "bbc: %s %s %s/s\n", p.label, humanCount(cur), humanRate(rate))
	default:
		fmt.Fprintf(p.w, "bbc: %s %s\n", p.label, humanCount(cur))
	}
}

// Stop halts the reporter and prints the final summary line. Safe to call
// more than once; no-op on a nil reporter.
func (p *Progress) Stop() {
	if p == nil {
		return
	}
	p.stopOnce.Do(func() {
		close(p.stop)
		<-p.done
		p.line(true)
	})
}

// MetricReader adapts a registry counter into a Progress read function.
func MetricReader(r *Registry, m Metric) func() uint64 {
	return func() uint64 {
		if v := r.Get(m); v > 0 {
			return uint64(v)
		}
		return 0
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// humanCount renders 1234567 as "1.23M".
func humanCount(v uint64) string {
	switch {
	case v >= 1_000_000_000:
		return fmt.Sprintf("%.2fG", float64(v)/1e9)
	case v >= 1_000_000:
		return fmt.Sprintf("%.2fM", float64(v)/1e6)
	case v >= 10_000:
		return fmt.Sprintf("%.1fk", float64(v)/1e3)
	default:
		return fmt.Sprintf("%d", v)
	}
}

// humanRate renders a per-second rate compactly.
func humanRate(r float64) string {
	switch {
	case r >= 1e9:
		return fmt.Sprintf("%.1fG", r/1e9)
	case r >= 1e6:
		return fmt.Sprintf("%.1fM", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fk", r/1e3)
	default:
		return fmt.Sprintf("%.1f", r)
	}
}

// roundDuration trims a duration to a readable precision.
func roundDuration(d time.Duration) time.Duration {
	switch {
	case d >= time.Minute:
		return d.Round(time.Second)
	case d >= time.Second:
		return d.Round(100 * time.Millisecond)
	default:
		return d.Round(time.Millisecond)
	}
}
