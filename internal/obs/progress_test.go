package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// fixedProgress builds a reporter whose clock is frozen at start+elapsed,
// so the rate computation sees an exact, deterministic denominator.
func fixedProgress(buf *bytes.Buffer, cur uint64, total uint64, elapsed time.Duration) *Progress {
	start := time.Unix(1_700_000_000, 0)
	return &Progress{
		w:     buf,
		label: "scan",
		total: total,
		read:  func() uint64 { return cur },
		start: start,
		now:   func() time.Time { return start.Add(elapsed) },
	}
}

// A Stop at (or near) zero elapsed must not print "+Inf/s": the division
// float64(cur)/0 is +Inf for any positive work count. Regression for the
// unguarded rate in the final summary line.
func TestProgressFinalLineZeroElapsedOmitsInfRate(t *testing.T) {
	var buf bytes.Buffer
	fixedProgress(&buf, 500, 1000, 0).line(true)
	out := buf.String()
	if strings.Contains(out, "Inf") || strings.Contains(out, "NaN") {
		t.Fatalf("final line leaks a garbage rate: %q", out)
	}
	if !strings.Contains(out, "done 500") {
		t.Errorf("final line must still report the work done: %q", out)
	}
	if strings.Contains(out, "/s") {
		t.Errorf("rate must be omitted below the elapsed floor: %q", out)
	}
}

// Zero work in zero elapsed is 0/0 = NaN; the final line must omit the
// rate rather than print "NaN/s".
func TestProgressFinalLineZeroWorkZeroElapsed(t *testing.T) {
	var buf bytes.Buffer
	fixedProgress(&buf, 0, 1000, 0).line(true)
	out := buf.String()
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatalf("0/0 leaked into the final line: %q", out)
	}
	if !strings.Contains(out, "done 0") {
		t.Errorf("final line must still report zero work: %q", out)
	}
}

// Zero work over a long elapsed time is a legitimate 0.0/s, not NaN; the
// guard must not suppress it.
func TestProgressFinalLineZeroWorkLongRun(t *testing.T) {
	var buf bytes.Buffer
	fixedProgress(&buf, 0, 1000, 2*time.Second).line(true)
	out := buf.String()
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatalf("garbage rate in final line: %q", out)
	}
	if !strings.Contains(out, "(0.0/s)") {
		t.Errorf("a real zero rate should still be reported: %q", out)
	}
}

// Above the floor, the rate math is unchanged.
func TestProgressFinalLineNormalRate(t *testing.T) {
	var buf bytes.Buffer
	fixedProgress(&buf, 2000, 4000, time.Second).line(true)
	out := buf.String()
	if !strings.Contains(out, "(2.0k/s)") {
		t.Errorf("want 2.0k/s in final line, got %q", out)
	}
}

// The periodic (non-final) line must also omit rate and ETA below the
// floor instead of extrapolating from ~0 elapsed.
func TestProgressIntervalLineBelowFloor(t *testing.T) {
	var buf bytes.Buffer
	fixedProgress(&buf, 10, 1000, time.Millisecond).line(false)
	out := buf.String()
	if strings.Contains(out, "/s") || strings.Contains(out, "eta") {
		t.Errorf("rate/ETA must be omitted below the elapsed floor: %q", out)
	}
	if !strings.Contains(out, "scan 10") {
		t.Errorf("line must still report progress: %q", out)
	}
}

// End-to-end: an immediate StartProgress/Stop pair (the fast-run shape
// that hit the bug in practice) emits exactly one clean final line.
func TestProgressImmediateStopIsClean(t *testing.T) {
	var buf bytes.Buffer
	p := StartProgress(&buf, "enumerate", 100, func() uint64 { return 100 }, time.Minute)
	p.Stop()
	out := buf.String()
	if strings.Count(out, "\n") != 1 {
		t.Fatalf("want exactly one final line, got %q", out)
	}
	if strings.Contains(out, "Inf") || strings.Contains(out, "NaN") {
		t.Fatalf("garbage rate on immediate stop: %q", out)
	}
}
