package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilTracerInert pins the off-state contract: every method on a nil
// tracer (and the inert Span it hands out) is a no-op, and the exported
// trace is still valid JSON.
func TestNilTracerInert(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("x").OnTrack(3)
	sp.End()
	sp.EndInt("n", 1)
	tr.RecordSpan("x", 0, time.Now(), time.Now(), "", 0)
	tr.Instant("x", 0, "", 0)
	if tr.Recorded() != 0 || tr.Dropped() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer should report nothing recorded")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil-tracer trace is not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal("nil-tracer trace lacks traceEvents")
	}
}

// TestInertSpanNoClock pins that the zero Span really is the zero value:
// a nil tracer must not read the clock on StartSpan.
func TestInertSpanNoClock(t *testing.T) {
	var tr *Tracer
	if sp := tr.StartSpan("x"); !sp.t0.IsZero() {
		t.Fatal("nil tracer read the clock")
	}
}

// TestTracerRingWraparound pins the bounded-window semantics: the ring
// keeps the newest capacity spans, counts the rest as dropped, and
// Spans returns survivors oldest-first.
func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	names := []string{"a", "b", "c", "d", "e", "f"}
	for _, n := range names {
		tr.StartSpan(n).End()
	}
	if got := tr.Recorded(); got != 6 {
		t.Fatalf("Recorded = %d, want 6", got)
	}
	if got := tr.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("len(Spans) = %d, want 4", len(spans))
	}
	for i, want := range []string{"c", "d", "e", "f"} {
		if spans[i].Name != want {
			t.Errorf("spans[%d].Name = %q, want %q (oldest-first order)", i, spans[i].Name, want)
		}
	}
}

// TestTracerConcurrentRecord exercises the ring under contention; the
// race detector is the assertion.
func TestTracerConcurrentRecord(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(track int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.StartSpan("work").OnTrack(track).EndInt("i", int64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Recorded(); got != 800 {
		t.Fatalf("Recorded = %d, want 800", got)
	}
}

// TestWriteChromeTrace validates the exported document shape against
// what Perfetto / chrome://tracing require: metadata events naming the
// process and each track, "X" complete events with µs ts/dur, "i"
// instants with scope "t", and the run id in args and otherData.
func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(16)
	tr.RecordSpan("enum.partition", 1, tr.epoch.Add(time.Microsecond), tr.epoch.Add(5*time.Microsecond), "part", 7)
	tr.RecordSpan("oracle.build", 0, tr.epoch, tr.epoch.Add(2*time.Microsecond), "", 0)
	tr.Instant("job.checkpoint", 0, "checked", 1234)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.OtherData["run_id"] != RunID() {
		t.Errorf("otherData.run_id = %v, want %q", doc.OtherData["run_id"], RunID())
	}
	if doc.OtherData["recorded"].(float64) != 3 || doc.OtherData["dropped"].(float64) != 0 {
		t.Errorf("otherData counters = %v/%v, want 3/0", doc.OtherData["recorded"], doc.OtherData["dropped"])
	}

	byName := map[string]map[string]any{}
	var threadNames []string
	for _, ev := range doc.TraceEvents {
		name := ev["name"].(string)
		if ev["ph"] == "M" {
			if name == "thread_name" {
				threadNames = append(threadNames, ev["args"].(map[string]any)["name"].(string))
			}
			continue
		}
		byName[name] = ev
		if got := ev["args"].(map[string]any)["run_id"]; got != RunID() {
			t.Errorf("event %s args.run_id = %v, want %q", name, got, RunID())
		}
	}
	if got := strings.Join(threadNames, ","); got != "main,worker-1" {
		t.Errorf("thread names = %q, want %q", got, "main,worker-1")
	}

	part := byName["enum.partition"]
	if part["ph"] != "X" {
		t.Fatalf("enum.partition ph = %v, want X", part["ph"])
	}
	if ts := part["ts"].(float64); ts != 1 {
		t.Errorf("enum.partition ts = %v µs, want 1", ts)
	}
	if dur := part["dur"].(float64); dur != 4 {
		t.Errorf("enum.partition dur = %v µs, want 4", dur)
	}
	if got := part["args"].(map[string]any)["part"].(float64); got != 7 {
		t.Errorf("enum.partition args.part = %v, want 7", got)
	}
	if part["tid"].(float64) != 1 {
		t.Errorf("enum.partition tid = %v, want 1", part["tid"])
	}

	inst := byName["job.checkpoint"]
	if inst["ph"] != "i" || inst["s"] != "t" {
		t.Fatalf("instant event ph/s = %v/%v, want i/t", inst["ph"], inst["s"])
	}
	if _, hasDur := inst["dur"]; hasDur {
		t.Error("instant event should not carry dur")
	}
	if got := inst["args"].(map[string]any)["checked"].(float64); got != 1234 {
		t.Errorf("instant args.checked = %v, want 1234", got)
	}
}

// TestSetTracer pins the global install/uninstall contract used by the
// CLI runtime: SetTracer swaps atomically and returns the previous
// tracer for restoration.
func TestSetTracer(t *testing.T) {
	tr := NewTracer(8)
	prev := SetTracer(tr)
	defer SetTracer(prev)
	if Trace() != tr {
		t.Fatal("Trace() did not return the installed tracer")
	}
	if got := SetTracer(nil); got != tr {
		t.Fatal("SetTracer did not return the previous tracer")
	}
	if Trace() != nil {
		t.Fatal("Trace() should be nil after uninstall")
	}
	SetTracer(prev)
}

// TestRecordSpanZeroStart pins that lifecycle spans with an unobserved
// start (zero time) are silently skipped rather than exported with a
// nonsense timestamp.
func TestRecordSpanZeroStart(t *testing.T) {
	tr := NewTracer(8)
	tr.RecordSpan("job.queued", 0, time.Time{}, time.Now(), "", 0)
	if got := tr.Recorded(); got != 0 {
		t.Fatalf("Recorded = %d, want 0 for zero start", got)
	}
}
