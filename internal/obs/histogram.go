package obs

import (
	"time"
)

// HMetric identifies one fixed-boundary histogram in a Registry. The
// *_ns metrics record latencies in nanoseconds; the rest record
// dimensionless work sizes.
type HMetric int

const (
	// HOracleBuild is the latency of one best-response oracle build (the
	// n−1 node-deleted traversals).
	HOracleBuild HMetric = iota
	// HProfileEval is the latency of one whole-profile stability check
	// during NE enumeration, sampled (1 in 64) to keep the scan hot path
	// free of extra clock reads.
	HProfileEval
	// HBFSWave is the maximum frontier width (nodes at one distance
	// level) of a unit-length BFS — the work-shape signal behind the
	// ROADMAP's bit-parallel BFS item.
	HBFSWave
	// HServeQueueWait is how long a serve job sat queued before a worker
	// picked it up.
	HServeQueueWait
	// HServeHTTP is the wall time of one bbcserved HTTP request.
	HServeHTTP

	hMetricCount // sentinel, keep last
)

// histNames are the stable external names used in snapshots, journal
// run_status records and Prometheus exposition (after unit mangling).
// Renaming one is a schema change.
var histNames = [hMetricCount]string{
	HOracleBuild:    "oracle.build_duration_ns",
	HProfileEval:    "core.profile_eval_ns",
	HBFSWave:        "graph.bfs_wave_width",
	HServeQueueWait: "serve.queue_wait_ns",
	HServeHTTP:      "serve.http_request_ns",
}

// histHelp is the one-line exposition help per histogram.
var histHelp = [hMetricCount]string{
	HOracleBuild:    "Latency of one best-response oracle build.",
	HProfileEval:    "Latency of one whole-profile stability check (sampled 1/64).",
	HBFSWave:        "Maximum BFS frontier width (nodes at one distance level).",
	HServeQueueWait: "Time a job spent queued before a worker picked it up.",
	HServeHTTP:      "Wall time of one HTTP request.",
}

// Bucket boundaries. Values ≤ bounds[i] land in bucket i; anything above
// the last bound lands in the overflow bucket. Boundaries are fixed per
// metric so histograms merge across runs and machines.
var (
	// evalNanoBounds spans sub-microsecond oracle evaluations up to
	// multi-second stalls (the PR 3 hot path runs ~500ns/profile).
	evalNanoBounds = []int64{
		250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
		100_000, 250_000, 500_000, 1e6, 5e6, 25e6, 100e6, 1e9, 10e9,
	}
	// waitNanoBounds spans scheduling-scale waits: 50µs to two minutes.
	waitNanoBounds = []int64{
		50_000, 250_000, 1e6, 5e6, 25e6, 100e6, 500e6, 1e9, 5e9, 30e9, 120e9,
	}
	// widthBounds is power-of-two BFS frontier widths.
	widthBounds = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}
)

var histBounds = [hMetricCount][]int64{
	HOracleBuild:    evalNanoBounds,
	HProfileEval:    evalNanoBounds,
	HBFSWave:        widthBounds,
	HServeQueueWait: waitNanoBounds,
	HServeHTTP:      waitNanoBounds,
}

// histMaxBuckets sizes the fixed per-metric bucket arrays inside
// Registry: the largest bounds slice plus one overflow bucket. Fixed
// arrays keep the zero-value Registry ready to use with no lazy
// initialization on the Observe path.
const histMaxBuckets = 20

func init() {
	for h, b := range histBounds {
		if len(b)+1 > histMaxBuckets {
			panic("obs: histMaxBuckets too small for " + histNames[h])
		}
	}
}

// String returns the histogram's stable external name.
func (h HMetric) String() string {
	if h < 0 || h >= hMetricCount {
		return "unknown"
	}
	return histNames[h]
}

// HMetrics returns every defined histogram metric, in declaration order.
func HMetrics() []HMetric {
	out := make([]HMetric, hMetricCount)
	for i := range out {
		out[i] = HMetric(i)
	}
	return out
}

// Observe records one value into the histogram. No-op on a nil registry.
// The cost when observation is on is a short binary search plus three
// atomic adds; there is no allocation on this path.
func (r *Registry) Observe(h HMetric, v int64) {
	if r == nil {
		return
	}
	bounds := histBounds[h]
	// Binary search for the first bound ≥ v; bounds are short (≤17), so
	// this is a handful of compares.
	lo, hi := 0, len(bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	r.hbuckets[h][lo].Add(1)
	r.hsum[h].Add(v)
	r.hcount[h].Add(1)
}

// ObserveSince records the nanoseconds elapsed since the Started token
// into a latency histogram. No-op on a nil registry or a zero token, so
// it pairs with Registry.Started exactly like ElapsedSince.
func (r *Registry) ObserveSince(h HMetric, t0 time.Time) {
	if r == nil || t0.IsZero() {
		return
	}
	r.Observe(h, time.Since(t0).Nanoseconds())
}

// Histogram is the read-side snapshot of one fixed-boundary histogram:
// cumulative-free bucket counts (Counts[i] pairs with Bounds[i]; the
// final entry is the overflow bucket) plus the interpolated quantiles
// dashboards actually want.
type Histogram struct {
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
}

// Quantile estimates the q-quantile (0 < q ≤ 1) by linear interpolation
// within the owning bucket. Values in the overflow bucket report the
// last finite bound — an understatement, but a stable one.
func (h Histogram) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	target := q * float64(h.Count)
	var cum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			var lo, hi float64
			switch {
			case i >= len(h.Bounds): // overflow bucket
				return float64(h.Bounds[len(h.Bounds)-1])
			case i == 0:
				lo, hi = 0, float64(h.Bounds[0])
			default:
				lo, hi = float64(h.Bounds[i-1]), float64(h.Bounds[i])
			}
			return lo + (hi-lo)*(target-cum)/float64(c)
		}
		cum = next
	}
	return float64(h.Bounds[len(h.Bounds)-1])
}

// HistogramFor snapshots one histogram. A nil registry returns the
// zero Histogram.
func (r *Registry) HistogramFor(h HMetric) Histogram {
	if r == nil || h < 0 || h >= hMetricCount {
		return Histogram{}
	}
	bounds := histBounds[h]
	out := Histogram{
		Count:  r.hcount[h].Load(),
		Sum:    r.hsum[h].Load(),
		Bounds: bounds,
		Counts: make([]int64, len(bounds)+1),
	}
	for i := range out.Counts {
		out.Counts[i] = r.hbuckets[h][i].Load()
	}
	out.P50 = out.Quantile(0.50)
	out.P90 = out.Quantile(0.90)
	out.P99 = out.Quantile(0.99)
	return out
}

// HistSnapshot returns the nonempty histograms keyed by stable name.
// A nil registry (or one with no observations) snapshots to nil.
func (r *Registry) HistSnapshot() map[string]Histogram {
	if r == nil {
		return nil
	}
	var out map[string]Histogram
	for h := HMetric(0); h < hMetricCount; h++ {
		if r.hcount[h].Load() == 0 {
			continue
		}
		if out == nil {
			out = make(map[string]Histogram)
		}
		out[histNames[h]] = r.HistogramFor(h)
	}
	return out
}

// resetHists zeroes every histogram; called from Registry.Reset.
func (r *Registry) resetHists() {
	for h := range r.hbuckets {
		for i := range r.hbuckets[h] {
			r.hbuckets[h][i].Store(0)
		}
		r.hsum[h].Store(0)
		r.hcount[h].Store(0)
	}
}
