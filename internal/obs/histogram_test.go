package obs

import (
	"testing"
	"time"
)

// TestObserveBucketPlacement pins the boundary rule: a value lands in
// the first bucket whose bound is ≥ the value, and values above the last
// bound land in the overflow bucket.
func TestObserveBucketPlacement(t *testing.T) {
	r := NewRegistry()
	bounds := histBounds[HProfileEval]
	r.Observe(HProfileEval, 1)                       // well under the first bound
	r.Observe(HProfileEval, bounds[0])               // exactly on a bound: inclusive
	r.Observe(HProfileEval, bounds[0]+1)             // just over: next bucket
	r.Observe(HProfileEval, bounds[len(bounds)-1]+1) // overflow

	h := r.HistogramFor(HProfileEval)
	if h.Count != 4 {
		t.Fatalf("Count = %d, want 4", h.Count)
	}
	if wantSum := 1 + bounds[0] + bounds[0] + 1 + bounds[len(bounds)-1] + 1; h.Sum != wantSum {
		t.Fatalf("Sum = %d, want %d", h.Sum, wantSum)
	}
	if h.Counts[0] != 2 {
		t.Errorf("Counts[0] = %d, want 2 (bound is inclusive)", h.Counts[0])
	}
	if h.Counts[1] != 1 {
		t.Errorf("Counts[1] = %d, want 1", h.Counts[1])
	}
	if over := h.Counts[len(h.Counts)-1]; over != 1 {
		t.Errorf("overflow bucket = %d, want 1", over)
	}
}

// TestObserveNilRegistry pins nil-safety on the hot path.
func TestObserveNilRegistry(t *testing.T) {
	var r *Registry
	r.Observe(HProfileEval, 100)
	r.ObserveSince(HOracleBuild, time.Now())
	if got := r.HistogramFor(HProfileEval); got.Count != 0 {
		t.Fatal("nil registry recorded an observation")
	}
	if r.HistSnapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
}

// TestObserveSinceZeroToken pins the Started/ObserveSince pairing: a
// zero token (from a nil registry's Started) observes nothing.
func TestObserveSinceZeroToken(t *testing.T) {
	r := NewRegistry()
	var nilReg *Registry
	r.ObserveSince(HOracleBuild, nilReg.Started())
	if got := r.HistogramFor(HOracleBuild).Count; got != 0 {
		t.Fatalf("Count = %d, want 0 for zero token", got)
	}
}

// TestQuantileInterpolation checks the interpolated quantiles on a known
// distribution: 100 observations spread evenly inside one bucket's
// range interpolate linearly across it.
func TestQuantileInterpolation(t *testing.T) {
	r := NewRegistry()
	// widthBounds: 1,2,4,8,... Observe 4 threes and 4 fours → all 8 land
	// in bucket le=4 (the third bucket, range (2,4]).
	for i := 0; i < 4; i++ {
		r.Observe(HBFSWave, 3)
		r.Observe(HBFSWave, 4)
	}
	h := r.HistogramFor(HBFSWave)
	if h.Count != 8 {
		t.Fatalf("Count = %d, want 8", h.Count)
	}
	// The p50 target (4 of 8) sits mid-bucket: lo=2, hi=4, so 2+2*(4/8)=3.
	if got := h.P50; got != 3 {
		t.Errorf("P50 = %v, want 3 (midpoint of the (2,4] bucket)", got)
	}
	if got := h.P99; got <= h.P50 || got > 4 {
		t.Errorf("P99 = %v, want in (3, 4]", got)
	}
}

// TestQuantileOverflowClamps pins the overstatement guard: quantiles of
// overflow-bucket mass report the last finite bound rather than
// extrapolating.
func TestQuantileOverflowClamps(t *testing.T) {
	r := NewRegistry()
	last := widthBounds[len(widthBounds)-1]
	for i := 0; i < 10; i++ {
		r.Observe(HBFSWave, last*10)
	}
	h := r.HistogramFor(HBFSWave)
	if got := h.P99; got != float64(last) {
		t.Errorf("P99 = %v, want clamp to last bound %d", got, last)
	}
}

// TestHistSnapshotOnlyNonEmpty pins the snapshot contract journal
// run_status records rely on: untouched histograms are omitted.
func TestHistSnapshotOnlyNonEmpty(t *testing.T) {
	r := NewRegistry()
	if snap := r.HistSnapshot(); snap != nil {
		t.Fatalf("empty registry snapshot = %v, want nil", snap)
	}
	r.Observe(HServeQueueWait, 1e6)
	snap := r.HistSnapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d entries, want 1", len(snap))
	}
	if _, ok := snap["serve.queue_wait_ns"]; !ok {
		t.Fatalf("snapshot keys = %v, want serve.queue_wait_ns", snap)
	}
}

// TestResetClearsHistograms pins that Registry.Reset zeroes histogram
// state alongside the counters.
func TestResetClearsHistograms(t *testing.T) {
	r := NewRegistry()
	r.Observe(HProfileEval, 500)
	r.Reset()
	if got := r.HistogramFor(HProfileEval); got.Count != 0 || got.Sum != 0 {
		t.Fatalf("after Reset: Count=%d Sum=%d, want zeros", got.Count, got.Sum)
	}
	if r.HistSnapshot() != nil {
		t.Fatal("after Reset: snapshot should be nil")
	}
}

// TestHMetricNames pins the stable external names — renaming one is a
// journal/exposition schema change and must be deliberate.
func TestHMetricNames(t *testing.T) {
	want := map[HMetric]string{
		HOracleBuild:    "oracle.build_duration_ns",
		HProfileEval:    "core.profile_eval_ns",
		HBFSWave:        "graph.bfs_wave_width",
		HServeQueueWait: "serve.queue_wait_ns",
		HServeHTTP:      "serve.http_request_ns",
	}
	for h, name := range want {
		if h.String() != name {
			t.Errorf("%d.String() = %q, want %q", h, h.String(), name)
		}
	}
	if len(HMetrics()) != len(want) {
		t.Errorf("HMetrics() has %d entries, want %d (update this test with the new metric)", len(HMetrics()), len(want))
	}
}
