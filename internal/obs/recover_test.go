package obs

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeJournalLines builds a journal file from raw lines.
func writeJournalLines(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRecoverJournalCleanFile: a cleanly closed journal salvages whole.
func TestRecoverJournalCleanFile(t *testing.T) {
	path := writeJournalLines(t,
		`{"type":"move","seq":0,"elapsed_ms":1}`+"\n",
		`{"type":"run_status","seq":1,"elapsed_ms":2}`+"\n",
	)
	recs, n, err := RecoverJournal(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Type != "run_status" {
		t.Fatalf("recs = %+v", recs)
	}
	fi, _ := os.Stat(path)
	if n != fi.Size() {
		t.Fatalf("valid prefix %d != file size %d", n, fi.Size())
	}
}

// TestRecoverJournalTornTail: an unterminated final line (the writer
// died mid-record) is excluded from the salvaged prefix.
func TestRecoverJournalTornTail(t *testing.T) {
	path := writeJournalLines(t,
		`{"type":"move","seq":0,"elapsed_ms":1}`+"\n",
		`{"type":"move","seq":1,"ela`, // torn: no newline, invalid JSON
	)
	recs, n, err := RecoverJournal(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 0 {
		t.Fatalf("salvage = %+v", recs)
	}
	fi, _ := os.Stat(path)
	if n >= fi.Size() {
		t.Fatalf("torn tail should be excluded: prefix %d, size %d", n, fi.Size())
	}
}

// TestRecoverJournalGarbageMiddle: the prefix stops at the first
// invalid line even when later lines parse — trailing records after a
// corruption cannot be trusted to belong to the same run.
func TestRecoverJournalGarbageMiddle(t *testing.T) {
	path := writeJournalLines(t,
		`{"type":"move","seq":0,"elapsed_ms":1}`+"\n",
		"\x00\x00 garbage \x00\n",
		`{"type":"move","seq":2,"elapsed_ms":3}`+"\n",
	)
	recs, _, err := RecoverJournal(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("want only the pre-corruption prefix, got %+v", recs)
	}
}

// TestRecoverJournalMissing: a missing journal is a not-exist error.
func TestRecoverJournalMissing(t *testing.T) {
	_, _, err := RecoverJournal(nil, filepath.Join(t.TempDir(), "nope.jsonl"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("want not-exist, got %v", err)
	}
}

// TestResumeJournalAppends is the journal-truncation regression test: a
// resumed run must append to the interrupted run's journal — continuing
// its sequence numbers after dropping the torn tail — not wipe it.
func TestResumeJournalAppends(t *testing.T) {
	path := writeJournalLines(t,
		`{"type":"move","seq":0,"elapsed_ms":1}`+"\n",
		`{"type":"checkpoint","seq":1,"elapsed_ms":2}`+"\n",
		`{"type":"move","seq":2,"ela`, // torn tail
	)
	j, sal, err := ResumeJournal(nil, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sal.Kept != 2 || sal.DroppedBytes == 0 {
		t.Fatalf("salvage = %+v", sal)
	}
	j.Event("resumed", map[string]any{"from": "ckpt"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := RecoverJournal(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("want 2 salvaged + 1 appended records, got %d", len(recs))
	}
	if recs[2].Type != "resumed" || recs[2].Seq != 2 {
		t.Fatalf("appended record must continue the sequence: %+v", recs[2])
	}
}

// TestResumeJournalFreshFile: resuming with no existing journal starts
// one from seq 0.
func TestResumeJournalFreshFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.jsonl")
	j, sal, err := ResumeJournal(nil, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sal.Kept != 0 || sal.DroppedBytes != 0 {
		t.Fatalf("fresh salvage = %+v", sal)
	}
	j.Event("start", nil)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := RecoverJournal(nil, path)
	if err != nil || len(recs) != 1 || recs[0].Seq != 0 {
		t.Fatalf("fresh journal: %+v, %v", recs, err)
	}
}

// TestStartCLIConfigAppend: the CLI runtime in append mode preserves an
// interrupted run's records end-to-end.
func TestStartCLIConfigAppend(t *testing.T) {
	path := writeJournalLines(t, `{"type":"move","seq":0,"elapsed_ms":1}`+"\n")
	var stderr strings.Builder
	rt, err := StartCLIConfig(CLIConfig{Name: "test", Journal: path, AppendJournal: true, Stderr: &stderr})
	if err != nil {
		t.Fatal(err)
	}
	rt.Journal.Event("move", nil)
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := RecoverJournal(nil, path)
	if err != nil || len(recs) != 2 {
		t.Fatalf("append-mode CLI journal: %+v, %v", recs, err)
	}
	if recs[1].Seq != 1 {
		t.Fatalf("seq continuation: %+v", recs[1])
	}
}
