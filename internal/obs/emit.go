package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"bbc/internal/faultfs"
)

// CSV and JSONL emitters for machine-readable result streams (the sweep
// harness's per-tuple rows). Both follow the journal's error discipline:
// the first write error is retained, later records are dropped, and
// Close surfaces it — so emitting code never branches on "did the row
// land" and a full disk cannot silently truncate a result file. Both are
// nil-safe: a nil emitter drops every record.

// CSVWriter emits one header row and then fixed-width records. Fields
// containing separators, quotes or newlines are quoted RFC 4180-style,
// so rows round-trip through standard CSV readers; records are written
// in single Write calls so a killed process leaves only whole rows (plus
// at most one torn tail).
type CSVWriter struct {
	w      io.Writer
	closer io.Closer
	cols   int
	err    error
}

// NewCSVWriter starts a CSV stream on w and writes the header row. The
// column count fixes the schema: records with a different field count
// are rejected as sticky errors, not written short.
func NewCSVWriter(w io.Writer, columns ...string) *CSVWriter {
	c := &CSVWriter{w: w, cols: len(columns)}
	c.Record(columns...)
	return c
}

// CreateCSVFile creates (truncating) a CSV file at path on fsys (nil =
// real OS) and writes the header row. The caller owns Close.
func CreateCSVFile(fsys faultfs.FS, path string, columns ...string) (*CSVWriter, error) {
	f, err := faultfs.Or(fsys).Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: create csv: %w", err)
	}
	c := NewCSVWriter(f, columns...)
	c.closer = f
	if c.err != nil {
		f.Close() //nolint:errcheck // surfacing the write error already
		return nil, c.err
	}
	return c, nil
}

// Record appends one row. The field count must match the header; a
// mismatch is recorded as a sticky error rather than emitting a ragged
// row. No-op on a nil writer or after a prior error.
func (c *CSVWriter) Record(fields ...string) {
	if c == nil || c.err != nil {
		return
	}
	if len(fields) != c.cols {
		c.err = fmt.Errorf("obs: csv record has %d fields, header has %d", len(fields), c.cols)
		return
	}
	var b strings.Builder
	for i, f := range fields {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(csvEscape(f))
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(c.w, b.String()); err != nil {
		c.err = fmt.Errorf("obs: write csv record: %w", err)
	}
}

// csvEscape quotes a field when it contains a separator, quote, or line
// break (RFC 4180); plain fields pass through unchanged.
func csvEscape(f string) string {
	if !strings.ContainsAny(f, ",\"\r\n") {
		return f
	}
	return `"` + strings.ReplaceAll(f, `"`, `""`) + `"`
}

// Err returns the first write error, if any.
func (c *CSVWriter) Err() error {
	if c == nil {
		return nil
	}
	return c.err
}

// Close closes the underlying file (when the writer owns one) and
// returns the first error. No-op on nil.
func (c *CSVWriter) Close() error {
	if c == nil {
		return nil
	}
	if c.closer != nil {
		if err := c.closer.Close(); err != nil && c.err == nil {
			c.err = err
		}
		c.closer = nil
	}
	return c.err
}

// JSONLWriter emits newline-delimited JSON records. Unlike Journal it
// adds no envelope (no seq/elapsed/counters): the caller's value IS the
// record, so emitted files are byte-reproducible for deterministic
// payloads.
type JSONLWriter struct {
	w      io.Writer
	closer io.Closer
	err    error
}

// NewJSONLWriter starts a JSONL stream on w.
func NewJSONLWriter(w io.Writer) *JSONLWriter { return &JSONLWriter{w: w} }

// CreateJSONLFile creates (truncating) a JSONL file at path on fsys
// (nil = real OS). The caller owns Close.
func CreateJSONLFile(fsys faultfs.FS, path string) (*JSONLWriter, error) {
	f, err := faultfs.Or(fsys).Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: create jsonl: %w", err)
	}
	return &JSONLWriter{w: f, closer: f}, nil
}

// Record marshals v and appends it as one line. No-op on a nil writer or
// after a prior error.
func (j *JSONLWriter) Record(v any) {
	if j == nil || j.err != nil {
		return
	}
	line, err := json.Marshal(v)
	if err != nil {
		j.err = fmt.Errorf("obs: marshal jsonl record: %w", err)
		return
	}
	line = append(line, '\n')
	if _, err := j.w.Write(line); err != nil {
		j.err = fmt.Errorf("obs: write jsonl record: %w", err)
	}
}

// Err returns the first write error, if any.
func (j *JSONLWriter) Err() error {
	if j == nil {
		return nil
	}
	return j.err
}

// Close closes the underlying file (when the writer owns one) and
// returns the first error. No-op on nil.
func (j *JSONLWriter) Close() error {
	if j == nil {
		return nil
	}
	if j.closer != nil {
		if err := j.closer.Close(); err != nil && j.err == nil {
			j.err = err
		}
		j.closer = nil
	}
	return j.err
}
