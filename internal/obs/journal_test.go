package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestJournalNilIsInert(t *testing.T) {
	var j *Journal
	j.Event("move", map[string]any{"x": 1})
	if j.Len() != 0 {
		t.Error("nil journal reported records")
	}
	if err := j.Close(); err != nil {
		t.Errorf("nil journal Close = %v", err)
	}
}

func TestJournalSchema(t *testing.T) {
	var buf bytes.Buffer
	reg := NewRegistry()
	reg.Add(MBFS, 7)
	j := NewJournal(&buf, reg)
	j.Event("move", map[string]any{"step": 1, "node": 2})
	j.Event("summary", nil)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var types []string
	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		types = append(types, rec.Type)
		if rec.Counters["graph.bfs"] != 7 {
			t.Errorf("record lacks counter snapshot: %v", rec.Counters)
		}
		if rec.ElapsedMS < 0 {
			t.Error("negative elapsed_ms")
		}
	}
	if len(types) != 2 || types[0] != "move" || types[1] != "summary" {
		t.Errorf("record types = %v", types)
	}
}

func TestJournalConcurrentWriters(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf, nil)
	const writers, events = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				j.Event("trial", map[string]any{"writer": w, "i": i})
			}
		}(w)
	}
	wg.Wait()
	if got := j.Len(); got != writers*events {
		t.Fatalf("journal recorded %d events, want %d", got, writers*events)
	}
	// Every line must be intact JSON with a distinct in-order seq.
	sc := bufio.NewScanner(&buf)
	var lines int64
	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("interleaved/corrupt line %q: %v", sc.Text(), err)
		}
		if rec.Seq != lines {
			t.Fatalf("seq %d at line %d", rec.Seq, lines)
		}
		lines++
	}
	if lines != writers*events {
		t.Fatalf("found %d lines, want %d", lines, writers*events)
	}
}

func TestOpenJournalWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Event("summary", map[string]any{"ok": true})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"type":"summary"`) {
		t.Errorf("journal file content: %s", data)
	}
	if _, err := OpenJournal(filepath.Join(t.TempDir(), "no/such/dir/x.jsonl"), nil); err == nil {
		t.Error("expected error for unwritable journal path")
	}
}

// failWriter fails every write.
type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestJournalSurfacesWriteError(t *testing.T) {
	j := NewJournal(failWriter{}, nil)
	j.Event("move", nil)
	j.Event("move", nil) // dropped after first error
	if err := j.Close(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Errorf("Close = %v, want disk full error", err)
	}
	if j.Len() != 0 {
		t.Error("failed writes must not advance seq")
	}
}

func TestProgressEmitsFinalLine(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	var n int64 = 500
	p := StartProgress(w, "enumerate", 1000, func() uint64 { return uint64(n) }, 10*time.Millisecond)
	time.Sleep(35 * time.Millisecond)
	p.Stop()
	p.Stop() // idempotent
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "enumerate") {
		t.Fatalf("no progress output: %q", out)
	}
	if !strings.Contains(out, "done") {
		t.Errorf("missing final line: %q", out)
	}
	if !strings.Contains(out, "%") {
		t.Errorf("missing percentage while total known: %q", out)
	}
	var nilP *Progress
	nilP.Stop() // must not panic
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestHumanFormats(t *testing.T) {
	cases := map[uint64]string{
		12:            "12",
		9_999:         "9999",
		123_456:       "123.5k",
		1_234_567:     "1.23M",
		2_500_000_000: "2.50G",
	}
	for in, want := range cases {
		if got := humanCount(in); got != want {
			t.Errorf("humanCount(%d) = %q, want %q", in, got, want)
		}
	}
	if got := humanRate(1500); got != "1.5k" {
		t.Errorf("humanRate(1500) = %q", got)
	}
}
