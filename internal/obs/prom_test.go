package obs

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// validatePromExposition walks the text exposition line by line and
// enforces the v0.0.4 grammar this package emits: every sample is
// preceded by HELP and TYPE comments for its family, histogram bucket
// counts are cumulative and end at +Inf, and values parse as floats.
func validatePromExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	typed := map[string]string{}
	helped := map[string]bool{}
	family := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suf); ok && typed[base] == "histogram" {
				return base
			}
		}
		return name
	}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			f := strings.Fields(line)
			if len(f) < 4 {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			helped[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch f[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown TYPE %q", ln+1, f[3])
			}
			if !helped[f[2]] {
				t.Errorf("line %d: TYPE %s before its HELP", ln+1, f[2])
			}
			typed[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment: %q", ln+1, line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: sample without value: %q", ln+1, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: unparseable value %q: %v", ln+1, valStr, err)
		}
		name := key
		if b := strings.IndexByte(key, '{'); b >= 0 {
			name = key[:b]
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("line %d: unterminated label set: %q", ln+1, line)
			}
		}
		if !strings.HasPrefix(name, "bbc_") {
			t.Errorf("line %d: metric %q outside the bbc_ namespace", ln+1, name)
		}
		if typed[family(name)] == "" {
			t.Errorf("line %d: sample %q has no TYPE", ln+1, name)
		}
		samples[key] = val
	}
	// Histogram family invariants: cumulative buckets ending at +Inf whose
	// total matches _count.
	for base, typ := range typed {
		if typ != "histogram" {
			continue
		}
		var sawInf bool
		for key, val := range samples {
			if !strings.HasPrefix(key, base+"_bucket{") {
				continue
			}
			if strings.Contains(key, `le="+Inf"`) {
				sawInf = true
				if count := samples[base+"_count"]; val != count {
					t.Errorf("%s: +Inf bucket %v != count %v", base, val, count)
				}
			}
			if val > samples[base+"_count"] {
				t.Errorf("%s: bucket %q = %v exceeds count", base, key, val)
			}
		}
		if !sawInf {
			t.Errorf("%s: histogram missing the +Inf bucket", base)
		}
		if _, ok := samples[base+"_sum"]; !ok {
			t.Errorf("%s: histogram missing _sum", base)
		}
	}
	return samples
}

// TestWritePrometheus validates the full exposition of a populated
// registry plus gauges, including the nanosecond→seconds conversion.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Add(MProfilesChecked, 42)
	r.Add(MOracleBuildNanos, 2_000_000_000) // 2s in the nanos counter
	r.Observe(HProfileEval, 500)            // lands exactly on the 500ns bound
	r.Observe(HProfileEval, 2_000_000_000)  // a 2s outlier
	gauges := []Gauge{{Name: "bbc_jobs_queued", Help: "Queued jobs.", Value: 3}}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r, gauges); err != nil {
		t.Fatal(err)
	}
	samples := validatePromExposition(t, buf.String())

	if got := samples["bbc_core_profiles_checked_total"]; got != 42 {
		t.Errorf("profiles_checked_total = %v, want 42", got)
	}
	// The _nanos counter converts to seconds.
	if got := samples["bbc_oracle_build_seconds_total"]; got != 2 {
		t.Errorf("oracle_build_seconds_total = %v, want 2", got)
	}
	// The _ns histogram converts its bounds to seconds too: the 500ns
	// observation is inside le="5e-07" cumulatively.
	if got := samples[`bbc_core_profile_eval_seconds_bucket{le="5e-07"}`]; got != 1 {
		t.Errorf(`eval bucket le=5e-07 = %v, want 1`, got)
	}
	if got := samples["bbc_core_profile_eval_seconds_count"]; got != 2 {
		t.Errorf("eval count = %v, want 2", got)
	}
	if got := samples["bbc_core_profile_eval_seconds_sum"]; got < 2 || got > 2.1 {
		t.Errorf("eval sum = %v, want ≈2 seconds", got)
	}
	if got := samples["bbc_jobs_queued"]; got != 3 {
		t.Errorf("gauge bbc_jobs_queued = %v, want 3", got)
	}
}

// TestWritePrometheusEmpty pins series continuity: every defined counter
// and histogram is exposed even on an untouched registry, and a nil
// registry still writes a valid document.
func TestWritePrometheusEmpty(t *testing.T) {
	for _, r := range []*Registry{NewRegistry(), nil} {
		var buf bytes.Buffer
		if err := WritePrometheus(&buf, r, nil); err != nil {
			t.Fatal(err)
		}
		samples := validatePromExposition(t, buf.String())
		for _, m := range Metrics() {
			base, _ := promName(m.String())
			if _, ok := samples[base+"_total"]; !ok {
				t.Errorf("counter %s missing from empty exposition", base)
			}
		}
		for _, h := range HMetrics() {
			base, _ := promName(h.String())
			if got := samples[base+"_count"]; got != 0 {
				t.Errorf("histogram %s count = %v, want 0", base, got)
			}
			if got, ok := samples[base+`_bucket{le="+Inf"}`]; !ok || got != 0 {
				t.Errorf("histogram %s +Inf bucket = %v (present %v), want 0", base, got, ok)
			}
		}
	}
}

// TestPromName pins the name-mangling rules.
func TestPromName(t *testing.T) {
	cases := []struct {
		in   string
		want string
		div  float64
	}{
		{"graph.bfs", "bbc_graph_bfs", 1},
		{"oracle.build_nanos", "bbc_oracle_build_seconds", 1e9},
		{"core.profile_eval_ns", "bbc_core_profile_eval_seconds", 1e9},
		{"serve.jobs_submitted", "bbc_serve_jobs_submitted", 1},
	}
	for _, c := range cases {
		got, div := promName(c.in)
		if got != c.want || div != c.div {
			t.Errorf("promName(%q) = (%q, %v), want (%q, %v)", c.in, got, div, c.want, c.div)
		}
	}
}

// TestRuntimeGauges sanity-checks the process gauges.
func TestRuntimeGauges(t *testing.T) {
	gauges := RuntimeGauges(0)
	names := map[string]bool{}
	for _, g := range gauges {
		names[g.Name] = true
		if g.Help == "" {
			t.Errorf("gauge %s has no help", g.Name)
		}
	}
	for _, want := range []string{"bbc_goroutines", "bbc_heap_alloc_bytes", "bbc_heap_sys_bytes", "bbc_gc_cycles"} {
		if !names[want] {
			t.Errorf("RuntimeGauges missing %s", want)
		}
	}
	if names["bbc_uptime_seconds"] {
		t.Error("uptime gauge present with uptime 0")
	}
	found := false
	for _, g := range RuntimeGauges(1e9) {
		if g.Name == "bbc_uptime_seconds" {
			found = true
			if g.Value != 1 {
				t.Errorf("uptime = %v, want 1", g.Value)
			}
		}
	}
	if !found {
		t.Error("uptime gauge missing with uptime 1s")
	}
}
