package obs

import (
	"os"
	"path/filepath"
	"testing"

	"bbc/internal/faultfs"
)

// TestJournalRotation exercises the size cap: the live file rotates to
// .1 at a record boundary, sequence numbers continue across the cut,
// and both generations salvage cleanly with no records lost.
func TestJournalRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	reg := NewRegistry()
	j, _, err := OpenJournalConfig(JournalConfig{Path: path, Reg: reg, MaxBytes: 512})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	const total = 64
	for i := 0; i < total; i++ {
		j.Event("tick", map[string]any{"i": i})
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := reg.Get(MJournalRotations); got == 0 {
		t.Fatalf("expected at least one rotation, counter is 0")
	}

	// The live file respects the cap (single records can exceed it, but
	// these are small), and both generations parse fully: every line is
	// valid JSONL, so the salvage prefix is the whole file.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat live: %v", err)
	}
	if fi.Size() > 512 {
		t.Errorf("live journal %d bytes exceeds the 512-byte cap", fi.Size())
	}
	var recs []Record
	for _, p := range []string{path + ".1", path} {
		rs, validLen, err := RecoverJournal(faultfs.OS{}, p)
		if err != nil {
			t.Fatalf("recover %s: %v", p, err)
		}
		fi, _ := os.Stat(p)
		if validLen != fi.Size() {
			t.Errorf("%s: torn bytes in a cleanly closed generation (valid %d of %d)", p, validLen, fi.Size())
		}
		recs = append(recs, rs...)
	}
	// The oldest records were rotated away (only the last two generations
	// survive), but the surviving run is gap-free and ends at the final
	// sequence number.
	if len(recs) == 0 {
		t.Fatal("no records survived rotation")
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq != recs[i-1].Seq+1 {
			t.Fatalf("sequence gap across rotation: %d -> %d", recs[i-1].Seq, recs[i].Seq)
		}
	}
	if last := recs[len(recs)-1].Seq; last != total-1 {
		t.Errorf("final seq = %d, want %d", last, total-1)
	}
}

// TestJournalRotationAppendMode verifies a resumed journal accounts the
// existing bytes against the cap.
func TestJournalRotationAppendMode(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	j, _, err := OpenJournalConfig(JournalConfig{Path: path, MaxBytes: 256})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	j.Event("first", nil)
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	j2, sal, err := OpenJournalConfig(JournalConfig{Path: path, MaxBytes: 256, Append: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if sal == nil || sal.Kept != 1 {
		t.Fatalf("salvage = %+v, want 1 kept record", sal)
	}
	for i := 0; i < 16; i++ {
		j2.Event("tick", map[string]any{"i": i})
	}
	if err := j2.Close(); err != nil {
		t.Fatalf("close resumed: %v", err)
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("expected a rotated generation: %v", err)
	}
}
