package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bbc/internal/faultfs"
)

func TestCSVWriterQuotingAndSchema(t *testing.T) {
	var b strings.Builder
	c := NewCSVWriter(&b, "n", "verdict", "note")
	c.Record("5", "converged", "plain")
	c.Record("6", `say "hi"`, "a,b\nc")
	if err := c.Err(); err != nil {
		t.Fatalf("Err() = %v", err)
	}
	want := "n,verdict,note\n" +
		"5,converged,plain\n" +
		"6,\"say \"\"hi\"\"\",\"a,b\nc\"\n"
	if b.String() != want {
		t.Fatalf("csv output:\n%q\nwant:\n%q", b.String(), want)
	}

	c.Record("only-one-field")
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "1 fields") {
		t.Fatalf("ragged record: Err() = %v, want field-count error", err)
	}
	// Sticky: later well-formed records are dropped, output unchanged.
	c.Record("7", "looped", "after error")
	if b.String() != want {
		t.Fatalf("record written after sticky error")
	}
	if c.Close() == nil {
		t.Fatal("Close() should surface the sticky error")
	}
}

func TestCSVWriterNilSafe(t *testing.T) {
	var c *CSVWriter
	c.Record("x")
	if c.Err() != nil || c.Close() != nil {
		t.Fatal("nil CSVWriter should be inert")
	}
	var j *JSONLWriter
	j.Record(map[string]int{"a": 1})
	if j.Err() != nil || j.Close() != nil {
		t.Fatal("nil JSONLWriter should be inert")
	}
}

func TestJSONLWriterRecords(t *testing.T) {
	var b strings.Builder
	j := NewJSONLWriter(&b)
	j.Record(map[string]any{"type": "tuple", "n": 5})
	j.Record(struct {
		ID int `json:"id"`
	}{7})
	if err := j.Err(); err != nil {
		t.Fatalf("Err() = %v", err)
	}
	want := "{\"n\":5,\"type\":\"tuple\"}\n{\"id\":7}\n"
	if b.String() != want {
		t.Fatalf("jsonl output %q, want %q", b.String(), want)
	}
	j.Record(make(chan int)) // unmarshalable
	if j.Err() == nil {
		t.Fatal("marshal failure should stick")
	}
	if b.String() != want {
		t.Fatal("output grew after marshal failure")
	}
}

func TestCreateFilesWriteAndClose(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "rows.csv")
	c, err := CreateCSVFile(nil, csvPath, "a", "b")
	if err != nil {
		t.Fatalf("CreateCSVFile: %v", err)
	}
	c.Record("1", "2")
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "a,b\n1,2\n" {
		t.Fatalf("file contents %q", got)
	}

	jlPath := filepath.Join(dir, "rows.jsonl")
	j, err := CreateJSONLFile(nil, jlPath)
	if err != nil {
		t.Fatalf("CreateJSONLFile: %v", err)
	}
	j.Record(map[string]string{"k": "v"})
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, err = os.ReadFile(jlPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "{\"k\":\"v\"}\n" {
		t.Fatalf("file contents %q", got)
	}
}

func TestCreateCSVFileFaultInjection(t *testing.T) {
	dir := t.TempDir()
	in := faultfs.NewInjector(nil, faultfs.Fault{Op: faultfs.OpCreate, Nth: 1})
	if _, err := CreateCSVFile(in, filepath.Join(dir, "x.csv"), "a"); err == nil {
		t.Fatal("expected injected create failure")
	}
	// Header-write failure: Create succeeds, the first Write faults, and
	// CreateCSVFile must surface it instead of returning a poisoned writer.
	in = faultfs.NewInjector(nil, faultfs.Fault{Op: faultfs.OpWrite, Nth: 1})
	if _, err := CreateCSVFile(in, filepath.Join(dir, "y.csv"), "a"); err == nil {
		t.Fatal("expected injected header-write failure")
	}
}
