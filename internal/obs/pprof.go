package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"sync"
)

// publishOnce guards the expvar registration, which panics on duplicates.
var publishOnce sync.Once

// ServeDebug starts an HTTP debug server on addr (e.g. ":6060") exposing
// the standard pprof endpoints under /debug/pprof/, expvar under
// /debug/vars (with the process-wide registry exported as
// "bbc_counters"), and a Prometheus text-exposition endpoint at /metrics
// covering the registry's counters, histograms and runtime gauges. It
// listens synchronously (so bad addresses fail fast), serves in the
// background for the life of the process, and returns the bound address.
func ServeDebug(addr string) (string, error) {
	publishOnce.Do(func() {
		expvar.Publish("bbc_counters", expvar.Func(func() any {
			snap := Global().Snapshot()
			if snap == nil {
				snap = map[string]int64{}
			}
			return snap
		}))
		http.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", PrometheusContentType)
			_ = WritePrometheus(w, Global(), RuntimeGauges(0))
		})
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: pprof listen: %w", err)
	}
	go func() {
		// The server lives until process exit; Serve only returns on
		// listener failure, which there is no caller left to report to.
		_ = http.Serve(ln, nil)
	}()
	return ln.Addr().String(), nil
}
