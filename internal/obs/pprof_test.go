package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

func TestServeDebugExportsCounters(t *testing.T) {
	reg := NewRegistry()
	prev := SetGlobal(reg)
	defer SetGlobal(prev)
	reg.Add(MProfilesChecked, 42)

	addr, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen in this environment: %v", err)
	}
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var vars struct {
		Counters map[string]int64 `json:"bbc_counters"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	if vars.Counters["core.profiles_checked"] != 42 {
		t.Errorf("exported counters = %v, want core.profiles_checked=42", vars.Counters)
	}

	// The pprof index must be mounted too.
	resp2, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", resp2.StatusCode)
	}

	if _, err := ServeDebug("256.256.256.256:1"); err == nil {
		t.Error("expected error for bad listen address")
	}
}
