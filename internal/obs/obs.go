// Package obs is the observability substrate of the BBC solver stack:
// race-safe atomic counters and timers collected in a Registry, a
// structured JSONL run journal, and a throttled progress/ETA reporter.
//
// Everything is nil-safe: a nil *Registry, *Journal or *Progress accepts
// every call as a no-op, so instrumented hot paths (oracle builds, BFS
// traversals, profile enumeration) pay only a nil check when observation
// is off. The package depends on the standard library only and sits below
// every other package in the repository.
//
// The registry is global-but-injectable: library code reads Global() at
// operation entry, CLIs and tests install one with SetGlobal. The global
// defaults to nil (observation off), so test and benchmark baselines are
// unaffected unless a registry is explicitly installed.
package obs

import (
	"sync/atomic"
	"time"
)

// Metric identifies one counter in a Registry. Counter metrics count
// events; *Nanos metrics accumulate wall time in nanoseconds.
type Metric int

const (
	// MBFS counts unit-length shortest-path traversals (BFS and
	// BFS-frontier), the innermost primitive of the best-response oracle.
	MBFS Metric = iota
	// MDijkstra counts weighted shortest-path traversals.
	MDijkstra
	// MOracleBuild counts best-response oracle constructions (each is n−1
	// node-deleted traversals).
	MOracleBuild
	// MOracleBuildNanos accumulates wall time spent building oracles.
	MOracleBuildNanos
	// MOracleEval counts strategy evaluations against an oracle.
	MOracleEval
	// MBestExact counts exact best-response enumerations.
	MBestExact
	// MBestExactLeaves counts maximal strategies examined across all exact
	// enumerations (the pruned search-tree leaf count).
	MBestExactLeaves
	// MBestGreedy counts greedy best-response computations.
	MBestGreedy
	// MStabilityChecks counts whole-profile stability tests.
	MStabilityChecks
	// MDeviationChecks counts per-node deviation checks.
	MDeviationChecks
	// MDeviationsFound counts strictly improving deviations discovered.
	MDeviationsFound
	// MProfilesChecked counts profiles scanned by NE enumeration.
	MProfilesChecked
	// MEquilibriaFound counts pure Nash equilibria discovered.
	MEquilibriaFound
	// MWalkSteps counts best-response walk steps attempted.
	MWalkSteps
	// MWalkMoves counts walk steps that rewired the graph.
	MWalkMoves
	// MSimRounds counts synchronous best-response rounds.
	MSimRounds
	// MTrials counts completed ensemble trials.
	MTrials
	// MWorkerTasks counts tasks executed by parallel workers.
	MWorkerTasks
	// MWorkerBusyNanos accumulates worker busy time; divided by wall time ×
	// worker count it yields pool utilization.
	MWorkerBusyNanos
	// MOracleCacheHits counts oracle queries served verbatim from an
	// EvalScratch cache, skipping the n−1 node-deleted traversals a rebuild
	// would cost.
	MOracleCacheHits
	// MHasImprovement counts pruned stability queries
	// (Oracle.HasImprovement), the existence-only alternative to a full
	// exact best-response enumeration.
	MHasImprovement
	// MServeSubmitted counts job submissions accepted by the batch-solve
	// service (including submissions answered by dedup).
	MServeSubmitted
	// MServeDeduped counts submissions that attached to an identical
	// in-flight or cached job instead of enqueueing a new solve.
	MServeDeduped
	// MServeSolves counts underlying solver invocations started by the
	// service; with dedup, N identical submissions cost one solve.
	MServeSolves
	// MServeCompleted counts jobs that reached a terminal state with a
	// result (any run status, including truncations).
	MServeCompleted
	// MServeRejected counts jobs refused before running: queue full, or
	// queued work rejected by a drain with a retry hint.
	MServeRejected
	// MServeResumed counts solves that continued from a persisted
	// checkpoint instead of starting at the first profile.
	MServeResumed
	// MFleetLeases counts shard leases granted by the fleet coordinator
	// (first grants and re-grants alike).
	MFleetLeases
	// MFleetReleases counts leases returned to pending before completion:
	// lease deadlines that expired and shard attempts that failed.
	MFleetReleases
	// MFleetRetries counts fleet client request retries (network errors,
	// 5xx, 429) — each one waited out a backoff delay first.
	MFleetRetries
	// MFleetDuplicates counts shard completions that arrived for an
	// already-merged shard (a re-lease race); they are verified against
	// the merged result and dropped, never applied twice.
	MFleetDuplicates
	// MFleetShardsDone counts shards merged into the fleet result.
	MFleetShardsDone
	// MFleetWorkerFaults counts shard attempts that failed on a worker:
	// exhausted client retries, rejected jobs, incomplete runs.
	MFleetWorkerFaults
	// MBFSBatch counts bit-parallel multi-source traversals
	// (Digraph.BFSBatchInto); each one replaces up to 64 scalar BFS calls.
	MBFSBatch
	// MBFSBatchWaves counts frontier waves expanded by batched traversals —
	// one wave settles one distance level for every source at once.
	MBFSBatchWaves
	// MBFSBatchSources counts sources served by batched traversals; divided
	// by MBFSBatch it yields the achieved bit-parallel packing (≤ 64).
	MBFSBatchSources
	// MQuotientSkipped counts odometer states skipped as non-canonical under
	// the automorphism group of a quotiented scan; each one is a stability
	// evaluation the symmetry argument made unnecessary.
	MQuotientSkipped
	// MQuotientOrbits counts equilibria emitted by orbit re-expansion (copies
	// of a canonical representative, not independently evaluated).
	MQuotientOrbits
	// MServeQueueFull counts submissions refused because the bounded job
	// queue was full (a subset of MServeRejected, split out so saturation
	// is distinguishable from drain rejections on a dashboard).
	MServeQueueFull
	// MServeThrottled counts submissions refused by a per-client
	// token-bucket rate limit.
	MServeThrottled
	// MServeQuotaDenied counts submissions refused by a per-client
	// in-flight quota.
	MServeQuotaDenied
	// MServeStoreHits counts submissions answered from the durable job
	// store: a completed result from an earlier process generation served
	// without re-solving (the cross-restart dedup tier).
	MServeStoreHits
	// MServeRequeued counts jobs found queued/running in the store at
	// startup and re-queued, resuming work orphaned by a crash.
	MServeRequeued
	// MStoreAppends counts job-state transitions appended to the store WAL.
	MStoreAppends
	// MStoreAppendErrors counts WAL appends that failed (the service keeps
	// running; the transition is lost to the durable tier only).
	MStoreAppendErrors
	// MStoreCompactions counts WAL compactions: index snapshots published
	// and the WAL truncated behind them.
	MStoreCompactions
	// MStoreReplayed counts WAL records applied during an Open replay.
	MStoreReplayed
	// MStoreQuarantined counts store records diverted to the quarantine
	// file: checksum/decode failures and semantically unreplayable
	// transitions.
	MStoreQuarantined
	// MFleetThrottled counts shard attempts released back to pending on
	// worker backpressure (429/503 + Retry-After at dispatch) without
	// burning a MaxAttempts lease attempt.
	MFleetThrottled
	// MJournalRotations counts size-capped journal rotations (the live
	// file renamed to .1 and restarted).
	MJournalRotations

	metricCount // sentinel, keep last
)

// metricNames are the stable external names used in snapshots, journals,
// expvar exports and benchmark metrics. Renaming one is a schema change.
var metricNames = [metricCount]string{
	MBFS:               "graph.bfs",
	MDijkstra:          "graph.dijkstra",
	MOracleBuild:       "oracle.builds",
	MOracleBuildNanos:  "oracle.build_nanos",
	MOracleEval:        "oracle.evals",
	MBestExact:         "oracle.best_exact",
	MBestExactLeaves:   "oracle.best_exact_leaves",
	MBestGreedy:        "oracle.best_greedy",
	MStabilityChecks:   "core.stability_checks",
	MDeviationChecks:   "core.deviation_checks",
	MDeviationsFound:   "core.deviations_found",
	MProfilesChecked:   "core.profiles_checked",
	MEquilibriaFound:   "core.equilibria_found",
	MWalkSteps:         "dynamics.steps",
	MWalkMoves:         "dynamics.moves",
	MSimRounds:         "dynamics.sim_rounds",
	MTrials:            "dynamics.trials",
	MWorkerTasks:       "parallel.tasks",
	MWorkerBusyNanos:   "parallel.busy_nanos",
	MOracleCacheHits:   "oracle.cache_hits",
	MHasImprovement:    "oracle.has_improvement",
	MServeSubmitted:    "serve.jobs_submitted",
	MServeDeduped:      "serve.jobs_deduped",
	MServeSolves:       "serve.solves",
	MServeCompleted:    "serve.jobs_completed",
	MServeRejected:     "serve.jobs_rejected",
	MServeResumed:      "serve.jobs_resumed",
	MFleetLeases:       "fleet.leases",
	MFleetReleases:     "fleet.releases",
	MFleetRetries:      "fleet.retries",
	MFleetDuplicates:   "fleet.duplicate_results",
	MFleetShardsDone:   "fleet.shards_done",
	MFleetWorkerFaults: "fleet.worker_faults",
	MBFSBatch:          "graph.bfs_batch",
	MBFSBatchWaves:     "bfs.batch_waves",
	MBFSBatchSources:   "bfs.batch_sources",
	MQuotientSkipped:   "quotient.skipped",
	MQuotientOrbits:    "quotient.orbit_equilibria",
	MServeQueueFull:    "serve.queue_full",
	MServeThrottled:    "admission.throttled",
	MServeQuotaDenied:  "admission.quota_denied",
	MServeStoreHits:    "serve.store_hits",
	MServeRequeued:     "serve.jobs_requeued",
	MStoreAppends:      "store.wal_appends",
	MStoreAppendErrors: "store.wal_append_errors",
	MStoreCompactions:  "store.compactions",
	MStoreReplayed:     "store.wal_replayed",
	MStoreQuarantined:  "store.records_quarantined",
	MFleetThrottled:    "fleet.throttled",
	MJournalRotations:  "obs.journal_rotations",
}

// String returns the metric's stable external name.
func (m Metric) String() string {
	if m < 0 || m >= metricCount {
		return "unknown"
	}
	return metricNames[m]
}

// Metrics returns every defined metric, in declaration order.
func Metrics() []Metric {
	out := make([]Metric, metricCount)
	for i := range out {
		out[i] = Metric(i)
	}
	return out
}

// Registry is a fixed set of race-safe counters and fixed-boundary
// histograms (see HMetric). The zero value is ready to use; a nil
// *Registry ignores all updates and reads as empty.
type Registry struct {
	counters [metricCount]atomic.Int64

	// Histogram state: per-metric bucket counts (fixed arrays so the zero
	// value needs no lazy setup), value sums and observation counts.
	hbuckets [hMetricCount][histMaxBuckets]atomic.Int64
	hsum     [hMetricCount]atomic.Int64
	hcount   [hMetricCount]atomic.Int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Add adds n to the metric. No-op on a nil registry.
func (r *Registry) Add(m Metric, n int64) {
	if r != nil {
		r.counters[m].Add(n)
	}
}

// Inc adds 1 to the metric. No-op on a nil registry.
func (r *Registry) Inc(m Metric) {
	if r != nil {
		r.counters[m].Add(1)
	}
}

// Get returns the metric's current value; 0 on a nil registry.
func (r *Registry) Get(m Metric) int64 {
	if r == nil {
		return 0
	}
	return r.counters[m].Load()
}

// Started returns a start token for ElapsedSince: the current time when
// the registry is active, the zero Time on a nil registry (no clock read).
// The Started/ElapsedSince pair allocates no closure, so hot paths can
// time themselves without per-call heap traffic.
func (r *Registry) Started() time.Time {
	if r == nil {
		return time.Time{}
	}
	return time.Now()
}

// ElapsedSince adds the wall time elapsed since the Started token to the
// *Nanos metric. No-op on a nil registry or a zero token.
func (r *Registry) ElapsedSince(m Metric, t0 time.Time) {
	if r == nil || t0.IsZero() {
		return
	}
	r.counters[m].Add(time.Since(t0).Nanoseconds())
}

// Reset zeroes every counter and histogram. No-op on a nil registry.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	for i := range r.counters {
		r.counters[i].Store(0)
	}
	r.resetHists()
}

// Snapshot returns the current nonzero counters keyed by stable metric
// name. A nil registry snapshots to nil.
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	out := make(map[string]int64)
	for i := range r.counters {
		if v := r.counters[i].Load(); v != 0 {
			out[metricNames[i]] = v
		}
	}
	return out
}

// Diff returns after−before per key, omitting zero deltas. Either map may
// be nil.
func Diff(before, after map[string]int64) map[string]int64 {
	if len(after) == 0 && len(before) == 0 {
		return nil
	}
	out := make(map[string]int64)
	for k, v := range after {
		if d := v - before[k]; d != 0 {
			out[k] = d
		}
	}
	for k, v := range before {
		if _, ok := after[k]; !ok && v != 0 {
			out[k] = -v
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// global holds the process-wide registry; nil means observation off.
var global atomic.Pointer[Registry]

// Global returns the installed process-wide registry, or nil when
// observation is off. Library hot paths read it once per operation.
func Global() *Registry { return global.Load() }

// SetGlobal installs r as the process-wide registry (nil turns
// observation off) and returns the previous registry so callers — tests
// in particular — can restore it.
func SetGlobal(r *Registry) *Registry {
	return global.Swap(r)
}
