package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"sync"
	"time"

	"bbc/internal/faultfs"
)

// Record is one line of a JSONL run journal. The schema is stable:
// every line carries type, seq and elapsed_ms; data holds the
// event-specific payload and counters a registry snapshot at write time.
// encoding/json sorts map keys, so records marshal deterministically for
// a given payload.
type Record struct {
	// Type names the event: "move", "round", "trial", "experiment",
	// "generate", "render", "summary", ...
	Type string `json:"type"`
	// Seq is the 0-based write sequence number within the journal.
	Seq int64 `json:"seq"`
	// ElapsedMS is wall time since the journal was opened.
	ElapsedMS float64 `json:"elapsed_ms"`
	// RunID is the per-process run identifier (RunID()), stamped into
	// every record so journals from different processes — an interrupted
	// run and its resume, a service and its jobs — correlate.
	RunID string `json:"run_id,omitempty"`
	// Data is the event payload.
	Data map[string]any `json:"data,omitempty"`
	// Counters is the registry snapshot at write time, when a registry is
	// attached.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Journal writes self-describing JSONL run records. It is safe for
// concurrent use (ensemble trials share one journal); a nil *Journal
// drops every event, so instrumented code never branches on "is
// journaling on".
type Journal struct {
	mu     sync.Mutex
	w      io.Writer
	closer io.Closer
	reg    *Registry
	start  time.Time
	seq    int64
	err    error

	// Rotation state (file-backed journals opened with a MaxBytes cap).
	fsys     faultfs.FS
	path     string
	maxBytes int64
	written  int64
}

// NewJournal writes records to w, snapshotting reg (which may be nil)
// into each record.
func NewJournal(w io.Writer, reg *Registry) *Journal {
	return &Journal{w: w, reg: reg, start: time.Now()}
}

// OpenJournal creates (truncating) the JSONL file at path on the real
// filesystem. Resumed runs must use ResumeJournal instead, which
// salvages and appends rather than wiping the interrupted run's
// records.
func OpenJournal(path string, reg *Registry) (*Journal, error) {
	return OpenJournalFS(faultfs.OS{}, path, reg)
}

// OpenJournalFS is OpenJournal on an explicit filesystem (fault
// injection in tests; nil = real OS).
func OpenJournalFS(fsys faultfs.FS, path string, reg *Registry) (*Journal, error) {
	j, _, err := OpenJournalConfig(JournalConfig{FS: fsys, Path: path, Reg: reg})
	return j, err
}

// JournalConfig is the full option set for a file-backed journal.
type JournalConfig struct {
	// FS is the filesystem to write through (nil = real OS).
	FS faultfs.FS
	// Path is the JSONL file location.
	Path string
	// Reg, when non-nil, snapshots its counters into every record.
	Reg *Registry
	// MaxBytes, when > 0, caps the live file: before a record that would
	// push the file past the cap, the journal rotates — the live file is
	// renamed to Path+".1" (replacing any previous rotation) and a fresh
	// file is started. Rotation happens at record boundaries only, so
	// both generations stay salvage-compatible JSONL, and sequence
	// numbers continue across the cut. A single record larger than the
	// cap is still written whole.
	MaxBytes int64
	// Append salvages and appends to an existing file (ResumeJournal
	// semantics) instead of truncating it.
	Append bool
}

// OpenJournalConfig opens a file-backed journal with the full option
// set. The Salvage return is non-nil only in Append mode.
func OpenJournalConfig(c JournalConfig) (*Journal, *Salvage, error) {
	fsys := faultfs.Or(c.FS)
	var (
		j       *Journal
		sal     *Salvage
		written int64
	)
	if c.Append {
		var err error
		j, sal, err = resumeJournal(fsys, c.Path, c.Reg)
		if err != nil {
			return nil, nil, err
		}
		if fi, serr := fsys.Stat(c.Path); serr == nil {
			written = fi.Size()
		}
	} else {
		f, err := fsys.Create(c.Path)
		if err != nil {
			return nil, nil, fmt.Errorf("obs: open journal: %w", err)
		}
		j = NewJournal(f, c.Reg)
		j.closer = f
	}
	j.fsys = fsys
	j.path = c.Path
	j.maxBytes = c.MaxBytes
	j.written = written
	return j, sal, nil
}

// Salvage reports what ResumeJournal recovered from an existing
// journal file.
type Salvage struct {
	// Kept is the number of valid records preserved.
	Kept int
	// DroppedBytes is the size of the discarded torn tail (0 for a
	// cleanly closed journal).
	DroppedBytes int64
}

// RecoverJournal salvages the longest valid prefix of a JSONL journal:
// the leading run of complete, newline-terminated lines that parse as
// Records. It returns those records and the byte length of the valid
// prefix. A torn tail — a partial line from a crashed writer, or
// trailing corruption — is excluded but left on disk; callers that want
// to continue the journal use ResumeJournal, which truncates it away.
// A missing file yields no records and the underlying not-exist error.
func RecoverJournal(fsys faultfs.FS, path string) ([]Record, int64, error) {
	data, err := faultfs.Or(fsys).ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("obs: recover journal: %w", err)
	}
	recs, validLen := salvageRecords(data)
	return recs, validLen, nil
}

// salvageRecords is the pure salvage parser behind RecoverJournal: it
// returns the records of the longest valid JSONL prefix of data and
// that prefix's byte length. It never fails — arbitrary bytes simply
// salvage to an empty prefix.
func salvageRecords(data []byte) ([]Record, int64) {
	var (
		recs     []Record
		validLen int64
	)
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // torn tail: an unterminated final line
		}
		line := data[:nl]
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			break // first invalid line ends the trustworthy prefix
		}
		recs = append(recs, rec)
		validLen += int64(nl) + 1
		data = data[nl+1:]
	}
	return recs, validLen
}

// ResumeJournal continues an interrupted run's journal instead of
// wiping it: the longest valid prefix is salvaged (a torn tail from the
// interrupted writer is truncated away), sequence numbers continue
// after the last surviving record, and new records are appended. The
// elapsed-time clock restarts at the resume. A missing file starts a
// fresh journal, so resume flags work even when the original run never
// journaled.
func ResumeJournal(fsys faultfs.FS, path string, reg *Registry) (*Journal, *Salvage, error) {
	fsys = faultfs.Or(fsys)
	j, sal, err := resumeJournal(fsys, path, reg)
	if err != nil {
		return nil, nil, err
	}
	j.fsys = fsys
	j.path = path
	return j, sal, nil
}

// resumeJournal is the salvage-and-append core shared by ResumeJournal
// and OpenJournalConfig.
func resumeJournal(fsys faultfs.FS, path string, reg *Registry) (*Journal, *Salvage, error) {
	sal := &Salvage{}
	recs, validLen, err := RecoverJournal(fsys, path)
	switch {
	case err == nil:
		if fi, serr := fsys.Stat(path); serr == nil {
			sal.DroppedBytes = fi.Size() - validLen
		}
		if sal.DroppedBytes > 0 {
			if terr := fsys.Truncate(path, validLen); terr != nil {
				return nil, nil, fmt.Errorf("obs: truncate torn journal tail: %w", terr)
			}
		}
		sal.Kept = len(recs)
	case errors.Is(err, fs.ErrNotExist):
		// No journal yet: start fresh.
	default:
		return nil, nil, err
	}
	f, err := fsys.OpenAppend(path)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: reopen journal: %w", err)
	}
	j := NewJournal(f, reg)
	j.closer = f
	if n := len(recs); n > 0 {
		j.seq = recs[n-1].Seq + 1
	}
	return j, sal, nil
}

// Event appends one record. The first write error is retained and
// surfaced by Close; later events after an error are dropped. No-op on a
// nil journal.
func (j *Journal) Event(typ string, data map[string]any) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	rec := Record{
		Type:      typ,
		Seq:       j.seq,
		ElapsedMS: float64(time.Since(j.start).Microseconds()) / 1000,
		RunID:     RunID(),
		Data:      data,
		Counters:  j.reg.Snapshot(),
	}
	line, err := json.Marshal(rec)
	if err != nil {
		j.err = fmt.Errorf("obs: marshal journal record: %w", err)
		return
	}
	line = append(line, '\n')
	if j.maxBytes > 0 && j.written > 0 && j.written+int64(len(line)) > j.maxBytes {
		j.rotateLocked()
		if j.err != nil {
			return
		}
	}
	if _, err := j.w.Write(line); err != nil {
		j.err = fmt.Errorf("obs: write journal record: %w", err)
		return
	}
	j.written += int64(len(line))
	j.seq++
}

// rotateLocked renames the live journal file to <path>.1 (replacing any
// previous rotation) and starts a fresh file at <path>. It runs only at
// record boundaries, so both generations remain salvage-compatible
// JSONL; sequence numbers and the elapsed clock continue. Callers hold
// j.mu.
func (j *Journal) rotateLocked() {
	if j.closer == nil || j.path == "" {
		return // not a file-backed journal; nothing to rotate
	}
	if err := j.closer.Close(); err != nil {
		j.err = fmt.Errorf("obs: close journal before rotation: %w", err)
		return
	}
	j.closer = nil
	if err := j.fsys.Rename(j.path, j.path+".1"); err != nil {
		j.err = fmt.Errorf("obs: rotate journal: %w", err)
		return
	}
	f, err := j.fsys.Create(j.path)
	if err != nil {
		j.err = fmt.Errorf("obs: reopen rotated journal: %w", err)
		return
	}
	j.w, j.closer = f, f
	j.written = 0
	j.reg.Inc(MJournalRotations)
}

// Canonical journal event types emitted by the run-control layer, in
// addition to the per-domain events ("move", "trial", "experiment", ...).
const (
	// EventCheckpoint records that a resumable snapshot was persisted
	// (data: path, kind, checked/completed progress fields).
	EventCheckpoint = "checkpoint"
	// EventRunStatus is the final record of a controlled run (data:
	// status, complete, plus run-specific progress); it is written even
	// when the run was interrupted, so a journal never just stops.
	EventRunStatus = "run_status"
)

// Checkpoint appends an EventCheckpoint record describing a persisted
// snapshot. No-op on a nil journal.
func (j *Journal) Checkpoint(path, kind string, progress map[string]any) {
	data := map[string]any{"path": path, "kind": kind}
	for k, v := range progress {
		data[k] = v
	}
	j.Event(EventCheckpoint, data)
}

// RunStatus appends the final EventRunStatus record: how the run ended
// (a runctl status name) and whether the computation was complete. When
// the attached registry holds histogram observations, their snapshot
// (bucket counts plus p50/p90/p99) rides along under "histograms" —
// run_status stays the journal's last record, so the latency
// distributions cannot trail it. No-op on a nil journal.
func (j *Journal) RunStatus(status string, complete bool, extra map[string]any) {
	data := map[string]any{"status": status, "complete": complete}
	for k, v := range extra {
		data[k] = v
	}
	if j != nil {
		if hs := j.reg.HistSnapshot(); hs != nil {
			data["histograms"] = hs
		}
	}
	j.Event(EventRunStatus, data)
}

// Len returns the number of records written so far.
func (j *Journal) Len() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Close flushes and closes the underlying file (when the journal owns
// one) and returns the first write error, if any. No-op on nil.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closer != nil {
		if err := j.closer.Close(); err != nil && j.err == nil {
			j.err = err
		}
		j.closer = nil
	}
	return j.err
}
