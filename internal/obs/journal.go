package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Record is one line of a JSONL run journal. The schema is stable:
// every line carries type, seq and elapsed_ms; data holds the
// event-specific payload and counters a registry snapshot at write time.
// encoding/json sorts map keys, so records marshal deterministically for
// a given payload.
type Record struct {
	// Type names the event: "move", "round", "trial", "experiment",
	// "generate", "render", "summary", ...
	Type string `json:"type"`
	// Seq is the 0-based write sequence number within the journal.
	Seq int64 `json:"seq"`
	// ElapsedMS is wall time since the journal was opened.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Data is the event payload.
	Data map[string]any `json:"data,omitempty"`
	// Counters is the registry snapshot at write time, when a registry is
	// attached.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Journal writes self-describing JSONL run records. It is safe for
// concurrent use (ensemble trials share one journal); a nil *Journal
// drops every event, so instrumented code never branches on "is
// journaling on".
type Journal struct {
	mu     sync.Mutex
	w      io.Writer
	closer io.Closer
	reg    *Registry
	start  time.Time
	seq    int64
	err    error
}

// NewJournal writes records to w, snapshotting reg (which may be nil)
// into each record.
func NewJournal(w io.Writer, reg *Registry) *Journal {
	return &Journal{w: w, reg: reg, start: time.Now()}
}

// OpenJournal creates (truncating) the JSONL file at path.
func OpenJournal(path string, reg *Registry) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: open journal: %w", err)
	}
	j := NewJournal(f, reg)
	j.closer = f
	return j, nil
}

// Event appends one record. The first write error is retained and
// surfaced by Close; later events after an error are dropped. No-op on a
// nil journal.
func (j *Journal) Event(typ string, data map[string]any) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	rec := Record{
		Type:      typ,
		Seq:       j.seq,
		ElapsedMS: float64(time.Since(j.start).Microseconds()) / 1000,
		Data:      data,
		Counters:  j.reg.Snapshot(),
	}
	line, err := json.Marshal(rec)
	if err != nil {
		j.err = fmt.Errorf("obs: marshal journal record: %w", err)
		return
	}
	line = append(line, '\n')
	if _, err := j.w.Write(line); err != nil {
		j.err = fmt.Errorf("obs: write journal record: %w", err)
		return
	}
	j.seq++
}

// Canonical journal event types emitted by the run-control layer, in
// addition to the per-domain events ("move", "trial", "experiment", ...).
const (
	// EventCheckpoint records that a resumable snapshot was persisted
	// (data: path, kind, checked/completed progress fields).
	EventCheckpoint = "checkpoint"
	// EventRunStatus is the final record of a controlled run (data:
	// status, complete, plus run-specific progress); it is written even
	// when the run was interrupted, so a journal never just stops.
	EventRunStatus = "run_status"
)

// Checkpoint appends an EventCheckpoint record describing a persisted
// snapshot. No-op on a nil journal.
func (j *Journal) Checkpoint(path, kind string, progress map[string]any) {
	data := map[string]any{"path": path, "kind": kind}
	for k, v := range progress {
		data[k] = v
	}
	j.Event(EventCheckpoint, data)
}

// RunStatus appends the final EventRunStatus record: how the run ended
// (a runctl status name) and whether the computation was complete.
// No-op on a nil journal.
func (j *Journal) RunStatus(status string, complete bool, extra map[string]any) {
	data := map[string]any{"status": status, "complete": complete}
	for k, v := range extra {
		data[k] = v
	}
	j.Event(EventRunStatus, data)
}

// Len returns the number of records written so far.
func (j *Journal) Len() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Close flushes and closes the underlying file (when the journal owns
// one) and returns the first write error, if any. No-op on nil.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closer != nil {
		if err := j.closer.Close(); err != nil && j.err == nil {
			j.err = err
		}
		j.closer = nil
	}
	return j.err
}
