package obs

import (
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Inc(MBFS)
	r.Add(MOracleEval, 10)
	r.Reset()
	r.ElapsedSince(MOracleBuildNanos, r.Started())
	if got := r.Get(MBFS); got != 0 {
		t.Errorf("nil registry Get = %d, want 0", got)
	}
	if snap := r.Snapshot(); snap != nil {
		t.Errorf("nil registry Snapshot = %v, want nil", snap)
	}
}

func TestRegistryCountersConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Inc(MProfilesChecked)
				r.Add(MOracleEval, 2)
			}
		}()
	}
	wg.Wait()
	if got := r.Get(MProfilesChecked); got != workers*perWorker {
		t.Errorf("profiles = %d, want %d", got, workers*perWorker)
	}
	if got := r.Get(MOracleEval); got != 2*workers*perWorker {
		t.Errorf("evals = %d, want %d", got, 2*workers*perWorker)
	}
	snap := r.Snapshot()
	if snap["core.profiles_checked"] != workers*perWorker {
		t.Errorf("snapshot mismatch: %v", snap)
	}
	if _, ok := snap["graph.bfs"]; ok {
		t.Error("snapshot should omit zero counters")
	}
	r.Reset()
	if got := r.Get(MProfilesChecked); got != 0 {
		t.Errorf("after Reset, profiles = %d", got)
	}
}

func TestRegistryStartedElapsed(t *testing.T) {
	r := NewRegistry()
	t0 := r.Started()
	time.Sleep(2 * time.Millisecond)
	r.ElapsedSince(MWorkerBusyNanos, t0)
	if got := r.Get(MWorkerBusyNanos); got < int64(time.Millisecond) {
		t.Errorf("timer recorded %dns, want >= 1ms", got)
	}
}

func TestMetricNamesComplete(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range Metrics() {
		name := m.String()
		if name == "" || name == "unknown" {
			t.Errorf("metric %d has no stable name", m)
		}
		if seen[name] {
			t.Errorf("duplicate metric name %q", name)
		}
		seen[name] = true
	}
	if Metric(-1).String() != "unknown" || Metric(metricCount).String() != "unknown" {
		t.Error("out-of-range metrics must stringify as unknown")
	}
}

func TestDiff(t *testing.T) {
	before := map[string]int64{"a": 1, "b": 5, "gone": 3}
	after := map[string]int64{"a": 4, "b": 5, "new": 2}
	d := Diff(before, after)
	want := map[string]int64{"a": 3, "new": 2, "gone": -3}
	if len(d) != len(want) {
		t.Fatalf("Diff = %v, want %v", d, want)
	}
	for k, v := range want {
		if d[k] != v {
			t.Errorf("Diff[%q] = %d, want %d", k, d[k], v)
		}
	}
	if Diff(nil, nil) != nil {
		t.Error("Diff(nil, nil) should be nil")
	}
	if d := Diff(map[string]int64{"a": 1}, map[string]int64{"a": 1}); d != nil {
		t.Errorf("identical maps should diff to nil, got %v", d)
	}
}

func TestGlobalSwapAndRestore(t *testing.T) {
	r := NewRegistry()
	prev := SetGlobal(r)
	defer SetGlobal(prev)
	if Global() != r {
		t.Fatal("Global did not return the installed registry")
	}
	Global().Inc(MBFS)
	if r.Get(MBFS) != 1 {
		t.Error("increment through Global missed the registry")
	}
	if got := SetGlobal(prev); got != r {
		t.Error("SetGlobal did not return the displaced registry")
	}
	SetGlobal(prev) // leave state as we found it for the deferred restore
}
