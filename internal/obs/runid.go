package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
)

// runID is the per-process run identifier, generated lazily on first use.
var (
	runIDOnce sync.Once
	runID     string
)

// RunID returns the per-process run identifier: 16 hex characters drawn
// from crypto/rand at first use. Every journal record, exported span and
// serve job view is stamped with it, so logs from different processes —
// a CLI run, its resumed continuation, a service and its clients — can be
// correlated after the fact.
func RunID() string {
	runIDOnce.Do(func() {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			// crypto/rand failing is effectively fatal elsewhere; here a
			// constant fallback keeps telemetry usable rather than panicking.
			runID = "0000000000000000"
			return
		}
		runID = hex.EncodeToString(b[:])
	})
	return runID
}
