package fleet

import (
	"bbc/internal/core"
	"bbc/internal/runctl"
)

// merged assembles the fleet NEResult from the completed shards, in
// shard-index order. Shard ranges are contiguous ascending slices of
// the pivot axis and every profile of partition i precedes every
// profile of partition i+1 in odometer order, so this concatenation IS
// the serial scan order: a complete merge marshals byte-identical to
// the single-box result. status is the run-level context status; a
// merge with every shard done and a live context is complete.
func (t *table) merged(status runctl.Status) (*core.NEResult, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Equilibria stays nil until the first append, exactly like the
	// in-process enumerators — nil vs empty changes the JSON encoding,
	// and byte-identity to the single-box result is the contract.
	res := &core.NEResult{}
	done := 0
	for _, sh := range t.shards {
		if sh.state != shardDone {
			continue
		}
		done++
		res.Checked += sh.result.Checked
		res.Equilibria = append(res.Equilibria, sh.result.Equilibria...)
	}
	res.Status = status
	res.Complete = done == len(t.shards) && status.Complete()
	if res.Complete {
		res.Status = runctl.StatusComplete
	}
	return res, done
}
