package fleet

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"syscall"
)

// TripMode is one injected transport fault.
type TripMode int

const (
	// TripNone forwards the request untouched.
	TripNone TripMode = iota
	// TripTimeout fails the request with a timeout error without ever
	// sending it: the server saw nothing.
	TripTimeout
	// TripReject synthesizes a 503 with Retry-After: 0 without sending
	// the request: an overloaded proxy turning the client away.
	TripReject
	// TripReset forwards the request, then throws the response away and
	// reports a connection reset: the ambiguous "did my write land?"
	// failure — the server processed it, the client cannot know.
	TripReset
	// TripDup forwards the request twice, discarding the first response:
	// an at-least-once delivery layer repeating itself. Exercises the
	// server's fingerprint dedup and the coordinator's duplicate-result
	// handling.
	TripDup
)

func (m TripMode) String() string {
	switch m {
	case TripNone:
		return "none"
	case TripTimeout:
		return "timeout"
	case TripReject:
		return "reject"
	case TripReset:
		return "reset"
	case TripDup:
		return "dup"
	default:
		return fmt.Sprintf("TripMode(%d)", int(m))
	}
}

// timeoutError mimics a net dial/read timeout.
type timeoutError struct{}

func (timeoutError) Error() string   { return "chaos: injected timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// Tripper is a fault-injecting http.RoundTripper. Plan decides, per
// request, which fault to inject; everything else forwards to Under.
// It is safe for concurrent use — the request counter is its own lock —
// and deterministic given a deterministic Plan.
type Tripper struct {
	// Under performs real round trips (nil = http.DefaultTransport).
	Under http.RoundTripper
	// Plan maps (request ordinal, request) to a fault. nil = no faults.
	Plan func(n int, req *http.Request) TripMode

	mu sync.Mutex
	n  int
}

func (t *Tripper) under() http.RoundTripper {
	if t.Under != nil {
		return t.Under
	}
	return http.DefaultTransport
}

// Count reports how many requests the tripper has seen.
func (t *Tripper) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

func (t *Tripper) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	n := t.n
	t.n++
	t.mu.Unlock()

	mode := TripNone
	if t.Plan != nil {
		mode = t.Plan(n, req)
	}
	switch mode {
	case TripTimeout:
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, timeoutError{}
	case TripReject:
		if req.Body != nil {
			req.Body.Close()
		}
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     http.Header{"Retry-After": []string{"0"}},
			Body:       http.NoBody,
			Request:    req,
		}, nil
	case TripReset:
		resp, err := t.under().RoundTrip(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return nil, fmt.Errorf("chaos: injected reset: %w", syscall.ECONNRESET)
	case TripDup:
		first, second, err := t.clonePair(req)
		if err != nil {
			// Bodies without GetBody cannot be replayed; fall through to a
			// single honest round trip.
			return t.under().RoundTrip(req)
		}
		if resp, err := t.under().RoundTrip(first); err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
		}
		return t.under().RoundTrip(second)
	default:
		return t.under().RoundTrip(req)
	}
}

// clonePair produces two independently sendable copies of a request.
func (t *Tripper) clonePair(req *http.Request) (*http.Request, *http.Request, error) {
	first := req.Clone(req.Context())
	second := req.Clone(req.Context())
	if req.Body == nil {
		return first, second, nil
	}
	if req.GetBody == nil {
		return nil, nil, fmt.Errorf("chaos: request body is not replayable")
	}
	b1, err := req.GetBody()
	if err != nil {
		return nil, nil, err
	}
	b2, err := req.GetBody()
	if err != nil {
		b1.Close()
		return nil, nil, err
	}
	first.Body, second.Body = b1, b2
	return first, second, nil
}

// SeededPlan builds a deterministic pseudo-random fault plan: roughly
// one request in `every` is faulted, the fault kind cycling through
// timeout, reject, reset and dup. The same seed replays the same
// schedule, so a chaos failure is reproducible from its log line.
func SeededPlan(seed uint64, every int) func(int, *http.Request) TripMode {
	if every < 1 {
		every = 1
	}
	return func(n int, req *http.Request) TripMode {
		// SplitMix64 of (seed, n): cheap, stateless, well mixed.
		x := seed + uint64(n)*0x9e3779b97f4a7c15
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if int(x%uint64(every)) != 0 {
			return TripNone
		}
		return TripMode(1 + (x>>8)%4)
	}
}
