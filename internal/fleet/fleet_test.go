package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bbc/internal/core"
	"bbc/internal/obs"
	"bbc/internal/runctl"
	"bbc/internal/serve"
)

// testSpec is the standard fleet test game: uniform(4,1) has a 3-wide
// pivot axis (node 0's strategies {1},{2},{3}) and a known equilibrium
// set, small enough that every chaos schedule finishes fast.
func testSpec(t *testing.T) core.Spec {
	t.Helper()
	spec, err := core.NewUniform(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// reference runs the single-box scan the fleet result must match byte
// for byte.
func reference(t *testing.T, spec core.Spec) *core.NEResult {
	t.Helper()
	ss, err := core.FullSpace(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.EnumeratePureNE(spec, core.SumDistances, ss, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checked == 0 || len(res.Equilibria) == 0 {
		t.Fatalf("degenerate reference: %+v", res)
	}
	return res
}

// startWorker runs a real bbcserved core behind an httptest listener.
func startWorker(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	if cfg.Reg == nil {
		cfg.Reg = obs.NewRegistry()
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Drain()
	})
	return s, hs
}

// mustMatch asserts the fleet result marshals byte-identical to the
// single-box reference — the paper-grade determinism contract.
func mustMatch(t *testing.T, got, want *core.NEResult) {
	t.Helper()
	g, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	w, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if string(g) != string(w) {
		t.Errorf("fleet result != single-box reference:\n got %s\nwant %s", g, w)
	}
}

func TestFleetMergesToSingleBoxReference(t *testing.T) {
	spec := testSpec(t)
	_, w1 := startWorker(t, serve.Config{})
	_, w2 := startWorker(t, serve.Config{})

	reg := obs.NewRegistry()
	res, err := Run(context.Background(), Config{
		Spec:    spec,
		Workers: []string{w1.URL, w2.URL},
		Shards:  3,
		Reg:     reg,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.NE.Complete || res.ShardsDone != res.Shards || res.Shards != 3 {
		t.Fatalf("run did not complete: %+v", res)
	}
	mustMatch(t, res.NE, reference(t, spec))
	if got := reg.Get(obs.MFleetShardsDone); got != 3 {
		t.Errorf("fleet.shards_done = %d, want 3", got)
	}
	if got := reg.Get(obs.MFleetLeases); got < 3 {
		t.Errorf("fleet.leases = %d, want >= 3", got)
	}
}

// TestPlanShards covers the shard planner: near-equal contiguous cover
// of the pivot axis, clamping to the partition count, and the trivial
// single shard for a space with no pivot.
func TestPlanShards(t *testing.T) {
	ss := &core.SearchSpace{PerNode: [][]core.Strategy{
		make([]core.Strategy, 1),
		make([]core.Strategy, 7),
		make([]core.Strategy, 2),
	}}
	for _, tc := range []struct {
		workers, requested, want int
	}{
		{workers: 2, requested: 0, want: 7}, // 4×2 clamped to 7 partitions
		{workers: 1, requested: 3, want: 3},
		{workers: 1, requested: 100, want: 7},
	} {
		plan := planShards(ss, tc.workers, tc.requested)
		if len(plan) != tc.want {
			t.Errorf("planShards(workers=%d, requested=%d) = %d shards, want %d",
				tc.workers, tc.requested, len(plan), tc.want)
			continue
		}
		// Contiguous ascending cover of [0, 7).
		at := 0
		for i, sh := range plan {
			if sh.Index != i || sh.Lo != at || sh.Hi <= sh.Lo {
				t.Errorf("shard %d = [%d, %d) at offset %d: not a contiguous cover", i, sh.Lo, sh.Hi, at)
			}
			at = sh.Hi
		}
		if at != 7 {
			t.Errorf("plan covers [0, %d), want [0, 7)", at)
		}
	}

	// No pivot — a single-profile space — is one trivial shard.
	single := &core.SearchSpace{PerNode: [][]core.Strategy{
		make([]core.Strategy, 1),
		make([]core.Strategy, 1),
	}}
	plan := planShards(single, 4, 0)
	if len(plan) != 1 || plan[0].Lo != 0 || plan[0].Hi != 1 {
		t.Errorf("no-pivot plan = %+v, want one [0, 1) shard", plan)
	}
}

// TestFleetDrainingWorkerReleasesLeases is satellite re-lease coverage:
// one worker drains before the run, its agent's readiness gate (503)
// releases every lease it grabs as backpressure — counted throttled,
// not a worker fault, and never burning the shard's attempt budget —
// and the healthy worker finishes the whole scan.
func TestFleetDrainingWorkerReleasesLeases(t *testing.T) {
	spec := testSpec(t)
	dead, deadURL := startWorker(t, serve.Config{})
	dead.Drain()
	_, live := startWorker(t, serve.Config{})

	reg := obs.NewRegistry()
	res, err := Run(context.Background(), Config{
		Spec:    spec,
		Workers: []string{deadURL.URL, live.URL},
		Shards:  3,
		Backoff: runctl.Backoff{Base: time.Millisecond},
		Reg:     reg,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.NE.Complete {
		t.Fatalf("run did not complete: %+v", res)
	}
	mustMatch(t, res.NE, reference(t, spec))
	if got := reg.Get(obs.MFleetReleases); got < 1 {
		t.Errorf("fleet.releases = %d, want >= 1 (draining worker must give leases back)", got)
	}
	if got := reg.Get(obs.MFleetThrottled); got < 1 {
		t.Errorf("fleet.throttled = %d, want >= 1 (a draining 503 is backpressure)", got)
	}
	if got := reg.Get(obs.MFleetWorkerFaults); got != 0 {
		t.Errorf("fleet.worker_faults = %d, want 0 (backpressure is not a fault)", got)
	}
}

// TestFleetDuplicateCompletionIsIdempotent is satellite 4: the same
// shard completed twice merges once, the duplicate is counted in
// fleet.duplicate_results, and the merged output is unchanged.
func TestFleetDuplicateCompletionIsIdempotent(t *testing.T) {
	spec := testSpec(t)
	ss, err := core.FullSpace(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	plan := planShards(ss, 1, 2)
	reg := obs.NewRegistry()
	tbl := newTable(plan, time.Minute, 8, reg, nil)

	res := &shardResult{Fingerprint: "fp-0", Checked: 7}
	if !tbl.complete(plan[0], "w1", res) {
		t.Fatal("first completion must apply")
	}
	if tbl.complete(plan[0], "w2", res) {
		t.Error("second completion must be dropped")
	}
	if got := reg.Get(obs.MFleetDuplicates); got != 1 {
		t.Errorf("fleet.duplicate_results = %d, want 1", got)
	}
	if got := reg.Get(obs.MFleetShardsDone); got != 1 {
		t.Errorf("fleet.shards_done = %d, want 1 (duplicate must not double-count)", got)
	}
	ne, done := tbl.merged(runctl.StatusComplete)
	if done != 1 || ne.Checked != 7 {
		t.Errorf("merged (done=%d, checked=%d), want (1, 7) — duplicate applied twice?", done, ne.Checked)
	}
	if tbl.fatalErr() != nil {
		t.Errorf("identical duplicate must not be fatal: %v", tbl.fatalErr())
	}

	// A diverging duplicate is corruption, not a race: fatal.
	tbl.complete(plan[0], "w3", &shardResult{Fingerprint: "fp-0", Checked: 9})
	if tbl.fatalErr() == nil {
		t.Error("diverging duplicate must be fatal")
	}
}

// TestFleetResume: a run with one shard already merged in its
// lease-table checkpoint only scans the rest, and the final result is
// still byte-identical to the reference.
func TestFleetResume(t *testing.T) {
	spec := testSpec(t)
	ss, err := core.FullSpace(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	const shards = 3
	plan := planShards(ss, 1, shards)
	fp := fmt.Sprintf("%s+fleet[%d]", core.EnumFingerprint(spec, core.SumDistances, ss), len(plan))

	// Compute shard 0's genuine result by slicing the pivot axis the way
	// a worker would, then persist it as a one-shard-done checkpoint.
	shardSS, err := core.FullSpace(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	pivot := shardSS.Pivot()
	shardSS.PerNode[pivot] = shardSS.PerNode[pivot][plan[0].Lo:plan[0].Hi]
	shard0, err := core.EnumeratePureNE(spec, core.SumDistances, shardSS, 0)
	if err != nil {
		t.Fatal(err)
	}
	snap := &leaseTableSnapshot{Shards: make([]shardSnapshot, shards)}
	for i, sh := range plan {
		snap.Shards[i] = shardSnapshot{Index: sh.Index, Lo: sh.Lo, Hi: sh.Hi}
	}
	snap.Shards[0].Done = true
	snap.Shards[0].Attempts = 1
	snap.Shards[0].Result = &shardResult{
		Fingerprint: "fp-shard-0",
		Checked:     shard0.Checked,
		Equilibria:  shard0.Equilibria,
	}
	ckpt := filepath.Join(t.TempDir(), "fleet.ckpt")
	env, err := runctl.NewCheckpoint(leaseCheckpointKind, fp, runctl.StatusCancelled, nil, snap)
	if err != nil {
		t.Fatal(err)
	}
	store := &runctl.Store{Path: ckpt}
	if err := store.Save(env); err != nil {
		t.Fatal(err)
	}

	_, w := startWorker(t, serve.Config{})
	reg := obs.NewRegistry()
	res, err := Run(context.Background(), Config{
		Spec:           spec,
		Workers:        []string{w.URL},
		Shards:         shards,
		CheckpointPath: ckpt,
		Resume:         true,
		Reg:            reg,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.NE.Complete || res.ShardsDone != shards {
		t.Fatalf("resumed run did not complete: %+v", res)
	}
	mustMatch(t, res.NE, reference(t, spec))
	// The restored shard was merged from the checkpoint, not re-scanned.
	if got := reg.Get(obs.MFleetShardsDone); got != shards-1 {
		t.Errorf("fleet.shards_done = %d, want %d (shard 0 came from the checkpoint)", got, shards-1)
	}
	// A completed run removes its lease table: stale leases must not
	// confuse a rerun.
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Errorf("lease checkpoint still present after a complete run (stat err=%v)", err)
	}
}

// TestFleetResumeRejectsForeignCheckpoint: a lease table persisted for a
// different shard split must refuse to resume.
func TestFleetResumeRejectsForeignCheckpoint(t *testing.T) {
	spec := testSpec(t)
	ss, err := core.FullSpace(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	fp := fmt.Sprintf("%s+fleet[%d]", core.EnumFingerprint(spec, core.SumDistances, ss), 2)
	snap := &leaseTableSnapshot{Shards: []shardSnapshot{{Index: 0, Lo: 0, Hi: 2}, {Index: 1, Lo: 2, Hi: 3}}}
	ckpt := filepath.Join(t.TempDir(), "fleet.ckpt")
	env, err := runctl.NewCheckpoint(leaseCheckpointKind, fp, runctl.StatusCancelled, nil, snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := (&runctl.Store{Path: ckpt}).Save(env); err != nil {
		t.Fatal(err)
	}

	_, w := startWorker(t, serve.Config{})
	// Same game, different shard count: the fleet-qualified fingerprint
	// must not match, and the resume must fail loudly rather than merge
	// ranges that mean something else.
	_, err = Run(context.Background(), Config{
		Spec:           spec,
		Workers:        []string{w.URL},
		Shards:         3,
		CheckpointPath: ckpt,
		Resume:         true,
		Reg:            obs.NewRegistry(),
	})
	if err == nil {
		t.Fatal("resume from a different shard split must fail")
	}
}

// TestFleetCancelReturnsPartial: a cancelled run returns what it merged
// with Complete false and a cancelled status, and checkpoints the rest.
func TestFleetCancelReturnsPartial(t *testing.T) {
	spec := testSpec(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before any lease: nothing merges
	ckpt := filepath.Join(t.TempDir(), "fleet.ckpt")
	_, w := startWorker(t, serve.Config{})
	res, err := Run(ctx, Config{
		Spec:           spec,
		Workers:        []string{w.URL},
		Shards:         2,
		CheckpointPath: ckpt,
		Reg:            obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.NE.Complete || res.ShardsDone != 0 {
		t.Fatalf("cancelled run reported progress it cannot have made: %+v", res)
	}
	if res.NE.Status != runctl.StatusCancelled {
		t.Errorf("status = %v, want cancelled", res.NE.Status)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Errorf("interrupted run must leave a lease checkpoint: %v", err)
	}
}
