package fleet

import (
	"fmt"
	"sync"
	"time"

	"bbc/internal/core"
	"bbc/internal/obs"
)

// shard lease states. A shard is born pending, cycles through leased
// (held by a worker under a TTL deadline) possibly many times, and ends
// done exactly once — the first completion wins, later ones are
// duplicates and are dropped.
const (
	shardPending = "pending"
	shardLeased  = "leased"
	shardDone    = "done"
)

// shardLease is one contiguous pivot-partition range and its lease
// state. Mutable fields are guarded by the owning table's mutex.
type shardLease struct {
	Index int // position in the plan; merge order
	Lo    int // pivot partition range [Lo, Hi)
	Hi    int

	state    string
	attempts int       // lease grants so far (bounded by maxAttempts)
	worker   string    // current holder while leased
	deadline time.Time // lease expiry while leased
	result   *shardResult
}

// shardResult is a completed shard's contribution to the merge.
type shardResult struct {
	// Fingerprint is the worker-reported shard-qualified scan
	// fingerprint — the idempotency key a duplicate is verified against.
	Fingerprint string         `json:"fingerprint"`
	Checked     uint64         `json:"checked"`
	Equilibria  []core.Profile `json:"equilibria"`
}

// leaseTableSnapshot is the persisted lease table (the checkpoint
// payload). Leases are deliberately not persisted: a lease is a promise
// by this coordinator process, void the moment it dies, so non-done
// shards always reload as pending.
type leaseTableSnapshot struct {
	Shards []shardSnapshot `json:"shards"`
}

// shardSnapshot is one shard's durable state.
type shardSnapshot struct {
	Index    int          `json:"index"`
	Lo       int          `json:"lo"`
	Hi       int          `json:"hi"`
	Attempts int          `json:"attempts"`
	Done     bool         `json:"done"`
	Result   *shardResult `json:"result,omitempty"`
}

// planShards splits the pivot partition range into contiguous,
// near-equal shards. The default over-shards 4× the worker count so a
// slow shard does not serialize the fleet behind it. A space with no
// pivot (a single profile) is one trivial shard.
func planShards(ss *core.SearchSpace, workers, requested int) []*shardLease {
	pivot := ss.Pivot()
	if pivot < 0 {
		return []*shardLease{{Index: 0, Lo: 0, Hi: 1, state: shardPending}}
	}
	parts := len(ss.PerNode[pivot])
	n := requested
	if n <= 0 {
		n = 4 * workers
	}
	if n > parts {
		n = parts
	}
	if n < 1 {
		n = 1
	}
	plan := make([]*shardLease, n)
	for i := 0; i < n; i++ {
		plan[i] = &shardLease{
			Index: i,
			Lo:    i * parts / n,
			Hi:    (i + 1) * parts / n,
			state: shardPending,
		}
	}
	return plan
}

// table is the coordinator's lease table: the single synchronization
// point between worker agents, the expiry clock, and the checkpointer.
type table struct {
	mu     sync.Mutex
	shards []*shardLease

	ttl         time.Duration
	maxAttempts int
	reg         *obs.Registry
	journal     *obs.Journal

	remaining int           // shards not yet done
	done      chan struct{} // closed when remaining hits zero
	fatal     chan struct{} // closed when fatalErr is set
	fatalOnce sync.Once
	err       error
}

func newTable(plan []*shardLease, ttl time.Duration, maxAttempts int, reg *obs.Registry, journal *obs.Journal) *table {
	return &table{
		shards:      plan,
		ttl:         ttl,
		maxAttempts: maxAttempts,
		reg:         reg,
		journal:     journal,
		remaining:   len(plan),
		done:        make(chan struct{}),
		fatal:       make(chan struct{}),
	}
}

// fail records the first fatal error and wakes the coordinator.
func (t *table) fail(err error) {
	t.fatalOnce.Do(func() {
		t.err = err
		close(t.fatal)
	})
}

func (t *table) fatalErr() error {
	select {
	case <-t.fatal:
		return t.err
	default:
		return nil
	}
}

// acquire grants the lowest-index pending shard to the worker, with a
// fresh TTL deadline. A shard that already burned through maxAttempts
// grants is a fatal condition: no worker can finish it, so the run must
// surface that instead of spinning. Returns nil when nothing is pending.
func (t *table) acquire(worker string) *shardLease {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, sh := range t.shards {
		if sh.state != shardPending {
			continue
		}
		if sh.attempts >= t.maxAttempts {
			t.fail(fmt.Errorf("fleet: shard %d [%d, %d) failed %d attempts; giving up",
				sh.Index, sh.Lo, sh.Hi, sh.attempts))
			return nil
		}
		sh.state = shardLeased
		sh.attempts++
		sh.worker = worker
		sh.deadline = time.Now().Add(t.ttl)
		t.reg.Inc(obs.MFleetLeases)
		t.journal.Event("lease", map[string]any{
			"shard": sh.Index, "lo": sh.Lo, "hi": sh.Hi,
			"worker": worker, "attempt": sh.attempts,
		})
		obs.Trace().Instant("fleet.lease", 0, "shard", int64(sh.Index))
		return sh
	}
	return nil
}

// heartbeat extends the lease deadline while the shard is still held by
// this worker. A stale heartbeat — the lease expired and moved on — is
// ignored; the late holder's completion will be dropped as a duplicate.
func (t *table) heartbeat(sh *shardLease, worker string, now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if sh.state == shardLeased && sh.worker == worker {
		sh.deadline = now.Add(t.ttl)
	}
}

// release returns a failed lease to pending so another worker (or the
// same one, after its backoff) can take it.
func (t *table) release(sh *shardLease, worker, reason string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if sh.state != shardLeased || sh.worker != worker {
		return // expired and re-leased already; nothing to give back
	}
	sh.state = shardPending
	sh.worker = ""
	t.reg.Inc(obs.MFleetReleases)
	t.journal.Event("release", map[string]any{
		"shard": sh.Index, "worker": worker, "reason": reason,
	})
	obs.Trace().Instant("fleet.release", 0, "shard", int64(sh.Index))
}

// releaseBackpressure returns a lease whose submission was shed by
// worker admission control, refunding the grant: attempts is
// decremented so throttling never counts against the shard's
// MaxAttempts budget — that bound exists to surface shards no worker
// can *compute*, and an overloaded server saying "later" is not that.
func (t *table) releaseBackpressure(sh *shardLease, worker, reason string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if sh.state != shardLeased || sh.worker != worker {
		return // expired and re-leased already; nothing to give back
	}
	sh.state = shardPending
	sh.worker = ""
	if sh.attempts > 0 {
		sh.attempts--
	}
	t.reg.Inc(obs.MFleetReleases)
	t.journal.Event("release", map[string]any{
		"shard": sh.Index, "worker": worker, "reason": reason, "backpressure": true,
	})
	obs.Trace().Instant("fleet.release", 0, "shard", int64(sh.Index))
}

// expire returns every overdue lease to pending. This is the crash
// backstop: an agent stuck on a dead worker stops heartbeating, the
// deadline passes, and a surviving worker picks the shard up.
func (t *table) expire(now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, sh := range t.shards {
		if sh.state == shardLeased && now.After(sh.deadline) {
			holder := sh.worker
			sh.state = shardPending
			sh.worker = ""
			t.reg.Inc(obs.MFleetReleases)
			t.journal.Event("release", map[string]any{
				"shard": sh.Index, "worker": holder, "reason": "lease expired",
			})
			obs.Trace().Instant("fleet.release", 0, "shard", int64(sh.Index))
		}
	}
}

// complete merges a shard result, idempotently: the first completion
// wins and marks the shard done; any later completion — the re-lease
// race, or a duplicated response — is verified against the merged
// result and dropped, counted in fleet.duplicate_results. Reports
// whether the result was applied.
func (t *table) complete(sh *shardLease, worker string, res *shardResult) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if sh.state == shardDone {
		t.reg.Inc(obs.MFleetDuplicates)
		identical := sh.result != nil && sh.result.Fingerprint == res.Fingerprint &&
			sh.result.Checked == res.Checked && len(sh.result.Equilibria) == len(res.Equilibria)
		t.journal.Event("duplicate_result", map[string]any{
			"shard": sh.Index, "worker": worker, "identical": identical,
		})
		if !identical {
			// Two workers computed the same shard and disagreed: that is
			// corruption, not a race. Keep the first result (the one already
			// merged) but surface the divergence loudly.
			t.fail(fmt.Errorf("fleet: shard %d duplicate from %s diverges from merged result", sh.Index, worker))
		}
		return false
	}
	sh.state = shardDone
	sh.worker = ""
	sh.result = res
	t.remaining--
	t.reg.Inc(obs.MFleetShardsDone)
	t.journal.Event("shard_done", map[string]any{
		"shard": sh.Index, "worker": worker,
		"checked": res.Checked, "equilibria": len(res.Equilibria),
	})
	obs.Trace().Instant("fleet.shard_done", 0, "shard", int64(sh.Index))
	if t.remaining == 0 {
		close(t.done)
	}
	return true
}

func (t *table) doneCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.shards) - t.remaining
}

// snapshot captures the durable state for the lease-table checkpoint.
func (t *table) snapshot() *leaseTableSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := &leaseTableSnapshot{Shards: make([]shardSnapshot, len(t.shards))}
	for i, sh := range t.shards {
		snap.Shards[i] = shardSnapshot{
			Index:    sh.Index,
			Lo:       sh.Lo,
			Hi:       sh.Hi,
			Attempts: sh.attempts,
			Done:     sh.state == shardDone,
			Result:   sh.result,
		}
	}
	return snap
}

// restore replays a persisted lease table into a freshly planned one.
// The plan must match shard for shard (the checkpoint fingerprint
// already pins spec, space and shard count; this is defense in depth).
// Returns how many done shards were recovered.
func (t *table) restore(snap *leaseTableSnapshot) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(snap.Shards) != len(t.shards) {
		return 0, fmt.Errorf("checkpoint has %d shards, plan has %d", len(snap.Shards), len(t.shards))
	}
	restored := 0
	for i, s := range snap.Shards {
		sh := t.shards[i]
		if s.Index != sh.Index || s.Lo != sh.Lo || s.Hi != sh.Hi {
			return 0, fmt.Errorf("checkpoint shard %d is [%d, %d), plan has [%d, %d)", s.Index, s.Lo, s.Hi, sh.Lo, sh.Hi)
		}
		sh.attempts = s.Attempts
		if s.Done {
			if s.Result == nil {
				return 0, fmt.Errorf("checkpoint shard %d is done but carries no result", s.Index)
			}
			sh.state = shardDone
			sh.result = s.Result
			t.remaining--
			restored++
		}
	}
	if t.remaining == 0 {
		close(t.done)
	}
	return restored, nil
}
