package fleet

import (
	"context"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bbc/internal/core"
	"bbc/internal/faultfs"
	"bbc/internal/obs"
	"bbc/internal/runctl"
	"bbc/internal/serve"
)

// chaosBackoff keeps chaos runs fast: real waits, but a millisecond
// schedule instead of the production 50ms-to-5s curve.
var chaosBackoff = runctl.Backoff{Base: time.Millisecond, Max: 20 * time.Millisecond, Jitter: 0.5}

// TestChaosSeededTransportSweep replays deterministic fault schedules —
// timeouts, injected 503s, connection resets after the server processed
// the request, duplicated requests — against real workers. Every
// schedule must still converge to a merge byte-identical to the
// single-box reference; only the retry/release counters may differ.
func TestChaosSeededTransportSweep(t *testing.T) {
	spec := testSpec(t)
	want := reference(t, spec)
	for _, seed := range []uint64{1, 7, 42, 1337} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			_, w1 := startWorker(t, serve.Config{})
			_, w2 := startWorker(t, serve.Config{})
			trip := &Tripper{Plan: SeededPlan(seed, 4)}
			reg := obs.NewRegistry()
			res, err := Run(context.Background(), Config{
				Spec:           spec,
				Workers:        []string{w1.URL, w2.URL},
				Shards:         3,
				LeaseTTL:       2 * time.Second,
				HTTP:           &http.Client{Transport: trip},
				Backoff:        chaosBackoff,
				ClientAttempts: 8,
				MaxAttempts:    32,
				Reg:            reg,
			})
			if err != nil {
				t.Fatalf("Run under seed %d: %v", seed, err)
			}
			if !res.NE.Complete {
				t.Fatalf("seed %d did not complete: %+v", seed, res)
			}
			mustMatch(t, res.NE, want)
			t.Logf("seed %d: %d requests, retries=%d releases=%d faults=%d dups=%d",
				seed, trip.Count(), reg.Get(obs.MFleetRetries), reg.Get(obs.MFleetReleases),
				reg.Get(obs.MFleetWorkerFaults), reg.Get(obs.MFleetDuplicates))
		})
	}
}

// TestChaosWorkerDiesMidRun kills one of two workers while it holds
// leases. Its in-flight shards must come back — released on the next
// client failure or expired at the lease deadline — and the surviving
// worker must finish the scan with the merge still byte-identical.
func TestChaosWorkerDiesMidRun(t *testing.T) {
	spec := testSpec(t)
	want := reference(t, spec)
	_, victim := startWorker(t, serve.Config{})
	_, survivor := startWorker(t, serve.Config{})

	// Kill the victim as soon as it has accepted at least one request:
	// severing established connections too, like a SIGKILL would.
	killed := make(chan struct{})
	var trip *Tripper
	trip = &Tripper{Plan: func(n int, req *http.Request) TripMode {
		if req.URL.Host == strings.TrimPrefix(victim.URL, "http://") && n > 2 {
			select {
			case <-killed:
			default:
				close(killed)
				victim.CloseClientConnections()
				victim.Close()
			}
		}
		return TripNone
	}}

	reg := obs.NewRegistry()
	res, err := Run(context.Background(), Config{
		Spec:           spec,
		Workers:        []string{victim.URL, survivor.URL},
		Shards:         4,
		LeaseTTL:       200 * time.Millisecond,
		HTTP:           &http.Client{Transport: trip},
		Backoff:        chaosBackoff,
		ClientAttempts: 3,
		MaxAttempts:    32,
		Reg:            reg,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.NE.Complete {
		t.Fatalf("fleet did not survive the worker kill: %+v", res)
	}
	mustMatch(t, res.NE, want)
	select {
	case <-killed:
	default:
		t.Fatal("victim was never killed; the schedule did not exercise the failure")
	}
	if got := reg.Get(obs.MFleetWorkerFaults); got < 1 {
		t.Errorf("fleet.worker_faults = %d, want >= 1", got)
	}
}

// TestChaosLeaseStoreFaults runs the coordinator checkpoint store on a
// fault-injecting filesystem: persistence degrades (journaled failed
// saves), the scan itself must still complete and merge byte-identical.
func TestChaosLeaseStoreFaults(t *testing.T) {
	spec := testSpec(t)
	want := reference(t, spec)
	for _, seed := range []int64{3, 99} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			_, w := startWorker(t, serve.Config{})
			fsys := faultfs.Seeded(faultfs.Or(nil), seed, 0.3)
			res, err := Run(context.Background(), Config{
				Spec:           spec,
				Workers:        []string{w.URL},
				Shards:         3,
				LeaseTTL:       40 * time.Millisecond, // fast ticks: many checkpoint attempts
				CheckpointPath: filepath.Join(t.TempDir(), "fleet.ckpt"),
				FS:             fsys,
				Backoff:        chaosBackoff,
				Reg:            obs.NewRegistry(),
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if !res.NE.Complete {
				t.Fatalf("store faults must degrade durability, not progress: %+v", res)
			}
			mustMatch(t, res.NE, want)
		})
	}
}

// TestChaosDuplicatedSubmitIsDeduped aims TripDup at every job
// submission: the worker sees each shard POSTed twice, its fingerprint
// dedup collapses the pair, and the merge stays byte-identical.
func TestChaosDuplicatedSubmitIsDeduped(t *testing.T) {
	spec := testSpec(t)
	want := reference(t, spec)
	_, w := startWorker(t, serve.Config{})
	trip := &Tripper{Plan: func(n int, req *http.Request) TripMode {
		if req.Method == http.MethodPost {
			return TripDup
		}
		return TripNone
	}}
	res, err := Run(context.Background(), Config{
		Spec:    spec,
		Workers: []string{w.URL},
		Shards:  3,
		HTTP:    &http.Client{Transport: trip},
		Backoff: chaosBackoff,
		Reg:     obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.NE.Complete {
		t.Fatalf("run did not complete: %+v", res)
	}
	mustMatch(t, res.NE, want)
}

// TestChaosLeaseExpiry pins the expiry path directly: a lease whose
// holder goes silent is returned to pending at its deadline and
// re-granted to the next caller.
func TestChaosLeaseExpiry(t *testing.T) {
	spec := testSpec(t)
	ss, err := core.FullSpace(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tbl := newTable(planShards(ss, 1, 2), 50*time.Millisecond, 8, reg, nil)

	sh := tbl.acquire("w1")
	if sh == nil {
		t.Fatal("acquire returned nil")
	}
	// Heartbeats keep it alive...
	tbl.expire(time.Now().Add(40 * time.Millisecond))
	tbl.heartbeat(sh, "w1", time.Now())
	tbl.expire(time.Now().Add(40 * time.Millisecond))
	if got := reg.Get(obs.MFleetReleases); got != 0 {
		t.Fatalf("lease expired despite heartbeats: releases=%d", got)
	}
	// ...silence kills it.
	tbl.expire(time.Now().Add(time.Minute))
	if got := reg.Get(obs.MFleetReleases); got != 1 {
		t.Fatalf("overdue lease not expired: releases=%d", got)
	}
	// The expired holder's late release is a no-op; the shard re-leases.
	tbl.release(sh, "w1", "late")
	if got := reg.Get(obs.MFleetReleases); got != 1 {
		t.Errorf("stale release counted: releases=%d", got)
	}
	again := tbl.acquire("w2")
	if again != sh {
		t.Fatalf("re-acquire = %+v, want the expired shard", again)
	}
	// The stale holder's completion after re-lease is the duplicate path:
	// first the new holder completes, then the old one echoes.
	res := &shardResult{Fingerprint: "fp", Checked: 3}
	tbl.complete(again, "w2", res)
	if tbl.complete(sh, "w1", res) {
		t.Error("stale holder's duplicate completion must be dropped")
	}
	if got := reg.Get(obs.MFleetDuplicates); got != 1 {
		t.Errorf("fleet.duplicate_results = %d, want 1", got)
	}
}
