package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"bbc/internal/obs"
	"bbc/internal/runctl"
)

// sleepless returns a Backoff that records requested delays instead of
// sleeping, so retry schedules are asserted, not waited out.
func sleepless(slept *[]time.Duration) runctl.Backoff {
	var mu sync.Mutex
	return runctl.Backoff{
		Base: 10 * time.Millisecond,
		Sleep: func(d time.Duration) {
			mu.Lock()
			*slept = append(*slept, d)
			mu.Unlock()
		},
	}
}

func TestClientRetriesTransientFailures(t *testing.T) {
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"draining"}`)
			return
		}
		fmt.Fprint(w, `{"id":"j1","state":"done"}`)
	}))
	defer srv.Close()

	var slept []time.Duration
	reg := obs.NewRegistry()
	c := &Client{Base: srv.URL, Backoff: sleepless(&slept), Reg: reg}
	view, err := c.Job(context.Background(), "j1")
	if err != nil {
		t.Fatalf("Job after transient failures: %v", err)
	}
	if view.ID != "j1" {
		t.Errorf("view.ID = %q, want j1", view.ID)
	}
	if calls != 3 {
		t.Errorf("server saw %d calls, want 3", calls)
	}
	if got := reg.Get(obs.MFleetRetries); got != 2 {
		t.Errorf("fleet.retries = %d, want 2", got)
	}
	// Attempt 1 retries after Delay(0)=10ms, attempt 2 after Delay(1)=20ms.
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Errorf("slept = %v, want %v", slept, want)
	}
}

func TestClientHonorsRetryAfter(t *testing.T) {
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls == 1 {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"queue full"}`)
			return
		}
		fmt.Fprint(w, `{"id":"j1","state":"queued"}`)
	}))
	defer srv.Close()

	var slept []time.Duration
	c := &Client{Base: srv.URL, Backoff: sleepless(&slept), Reg: obs.NewRegistry()}
	if _, err := c.Job(context.Background(), "j1"); err != nil {
		t.Fatalf("Job: %v", err)
	}
	// The server's 7s floor beats the 10ms backoff delay (and the 5s cap).
	if len(slept) != 1 || slept[0] != 7*time.Second {
		t.Errorf("slept = %v, want [7s]", slept)
	}
}

func TestClientPermanentErrorsDoNotRetry(t *testing.T) {
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"unknown mode"}`)
	}))
	defer srv.Close()

	c := &Client{Base: srv.URL, Backoff: sleepless(&[]time.Duration{}), Reg: obs.NewRegistry()}
	_, err := c.Job(context.Background(), "nope")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want APIError 400", err)
	}
	if apiErr.Msg != "unknown mode" {
		t.Errorf("msg = %q, want the server's error string", apiErr.Msg)
	}
	if calls != 1 {
		t.Errorf("server saw %d calls, want 1 (no retry on 4xx)", calls)
	}
}

func TestClientExhaustsAttempts(t *testing.T) {
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	c := &Client{Base: srv.URL, Backoff: sleepless(&[]time.Duration{}), Attempts: 3, Reg: obs.NewRegistry()}
	_, err := c.Job(context.Background(), "j1")
	if err == nil {
		t.Fatal("want exhaustion error")
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusInternalServerError {
		t.Errorf("err = %v, want wrapped APIError 500", err)
	}
	if calls != 3 {
		t.Errorf("server saw %d calls, want 3 (Attempts bound)", calls)
	}
}

func TestClientReady(t *testing.T) {
	draining := false
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			t.Errorf("Ready hit %s, want /readyz", r.URL.Path)
		}
		if draining {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"status":"ready"}`)
	}))
	defer srv.Close()

	c := &Client{Base: srv.URL, Reg: obs.NewRegistry()}
	if err := c.Ready(context.Background()); err != nil {
		t.Errorf("Ready while serving: %v", err)
	}
	draining = true
	if err := c.Ready(context.Background()); err == nil {
		t.Error("Ready while draining: want error")
	}
	srv.Close()
	if err := c.Ready(context.Background()); err == nil {
		t.Error("Ready against a dead server: want error")
	}
}

// TestClientEventsReconnect severs the SSE stream mid-job and asserts
// the reconnect resumes from Last-Event-ID: every event delivered
// exactly once, in order, ending with the terminal done event.
func TestClientEventsReconnect(t *testing.T) {
	type ev struct {
		typ  string
		seq  int64
		data string
	}
	feed := []ev{
		{"progress", 0, `{"checked":10}`},
		{"progress", 1, `{"checked":20}`},
		{"checkpoint", 2, `{"path":"x.ckpt"}`},
		{"progress", 3, `{"checked":30}`},
	}
	var conns int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conns++
		after := int64(-1)
		if v := r.Header.Get("Last-Event-ID"); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				t.Errorf("bad Last-Event-ID %q: %v", v, err)
			}
			after = n
		}
		w.Header().Set("Content-Type", "text/event-stream")
		fl := w.(http.Flusher)
		fmt.Fprint(w, ": keepalive\n\n")
		sent := 0
		for _, e := range feed {
			if e.seq <= after {
				continue
			}
			fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", e.typ, e.seq, e.data)
			fl.Flush()
			sent++
			// First connection dies after two live events, mid-stream.
			if conns == 1 && sent == 2 {
				return
			}
		}
		fmt.Fprint(w, "event: done\ndata: {\"state\":\"done\"}\n\n")
		fl.Flush()
	}))
	defer srv.Close()

	var got []ev
	c := &Client{Base: srv.URL, Backoff: sleepless(&[]time.Duration{}), Reg: obs.NewRegistry()}
	err := c.Events(context.Background(), "j1", -1, func(event string, id int64, data []byte) error {
		got = append(got, ev{event, id, string(data)})
		return nil
	})
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	if conns != 2 {
		t.Errorf("server saw %d connections, want 2", conns)
	}
	if len(got) != len(feed)+1 {
		t.Fatalf("delivered %d events, want %d: %+v", len(got), len(feed)+1, got)
	}
	for i, want := range feed {
		if got[i] != want {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want)
		}
	}
	if last := got[len(got)-1]; last.typ != "done" {
		t.Errorf("terminal event = %+v, want done", last)
	}
}

func TestClientEventsCallbackError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "event: progress\nid: 0\ndata: {}\n\n")
		fmt.Fprint(w, "event: done\ndata: {}\n\n")
	}))
	defer srv.Close()

	boom := errors.New("stop here")
	c := &Client{Base: srv.URL, Reg: obs.NewRegistry()}
	err := c.Events(context.Background(), "j1", -1, func(string, int64, []byte) error { return boom })
	if !errors.Is(err, boom) {
		t.Errorf("Events = %v, want the callback's error", err)
	}
}
