package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"bbc/internal/obs"
	"bbc/internal/runctl"
	"bbc/internal/serve"
)

// maxResponseBody bounds a job API response; shard results for the
// scans the fleet runs fit in a fraction of this.
const maxResponseBody = 64 << 20

// Client is the retrying HTTP client for the bbcserved job API.
// Transport errors, 5xx and 429 are retried with jittered exponential
// backoff; a server-supplied Retry-After is honored as a floor on the
// delay. Retrying a POST /v1/jobs is safe by construction: the server
// dedups submissions on the solve fingerprint, so a retry after an
// ambiguous failure ("did my write land?") attaches to the accepted job
// instead of double-submitting, and resubmitting a job that ran
// incompletely resumes its checkpoint.
type Client struct {
	// Base is the worker base URL, e.g. http://127.0.0.1:8371.
	Base string
	// HTTP is the underlying client (nil = a plain &http.Client{}).
	// Chaos tests install a fault-injecting Transport here. Streaming
	// (Events) uses it too, so avoid setting HTTP.Timeout — per-call
	// bounds belong to the request context.
	HTTP *http.Client
	// Backoff is the retry-delay policy (zero value = runctl defaults).
	Backoff runctl.Backoff
	// Attempts bounds tries per request (0 = 5).
	Attempts int
	// APIKey, when non-empty, is sent as X-API-Key on every request so
	// the worker's admission control attributes this fleet's load to one
	// client bucket.
	APIKey string
	// Reg counts retries into fleet.retries (nil = obs.Global()).
	Reg *obs.Registry
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{}
}

func (c *Client) attempts() int {
	if c.Attempts > 0 {
		return c.Attempts
	}
	return 5
}

func (c *Client) reg() *obs.Registry {
	if c.Reg != nil {
		return c.Reg
	}
	return obs.Global()
}

// authorize attaches the client's API key, when configured.
func (c *Client) authorize(req *http.Request) {
	if c.APIKey != "" {
		req.Header.Set("X-API-Key", c.APIKey)
	}
}

// APIError is a non-2xx job API reply.
type APIError struct {
	Status int
	Msg    string
	// RetryAfter is the server's Retry-After hint (0 when absent). On a
	// 429/503 it is the server telling this client when load shedding is
	// expected to clear.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("fleet: worker replied %d: %s", e.Status, e.Msg)
}

// Throttle reports whether err is (or wraps) a worker load-shedding
// reply — 429 Too Many Requests or 503 Service Unavailable — and the
// server's Retry-After floor on the next try (0 when the server gave no
// hint). Callers distinguish backpressure from worker faults with it:
// shed load is the server working as designed, not a failure.
func Throttle(err error) (time.Duration, bool) {
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		return 0, false
	}
	if apiErr.Status != http.StatusTooManyRequests && apiErr.Status != http.StatusServiceUnavailable {
		return 0, false
	}
	return apiErr.RetryAfter, true
}

// retryable says whether a reply status is worth retrying: throttling
// (429), unavailability (503, any 5xx). Remaining 4xx are the client's
// own fault and retrying cannot fix them.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

// retryAfter parses a Retry-After header in seconds (0 when absent or
// in the unsupported HTTP-date form — the backoff delay then rules).
func retryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// Submit posts a job submission and returns the accepted (or deduped)
// job view.
func (c *Client) Submit(ctx context.Context, req *serve.Request) (*serve.View, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("fleet: marshal request: %w", err)
	}
	var sub struct {
		Deduped bool        `json:"deduped"`
		Job     *serve.View `json:"job"`
	}
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", body, &sub); err != nil {
		return nil, err
	}
	if sub.Job == nil {
		return nil, fmt.Errorf("fleet: submission accepted without a job view")
	}
	return sub.Job, nil
}

// Job polls one job by id.
func (c *Client) Job(ctx context.Context, id string) (*serve.View, error) {
	var v serve.View
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// Cancel stops a job (best-effort; used during coordinator teardown).
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil)
}

// Ready probes /readyz once, without retry: the caller wants the
// worker's state now, not after a backoff cycle. A draining worker
// (503) or a dead one (transport error) both return an error.
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/readyz", nil)
	if err != nil {
		return err
	}
	c.authorize(req)
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		return &APIError{Status: resp.StatusCode, Msg: "not ready", RetryAfter: retryAfter(resp.Header)}
	}
	return nil
}

// do performs one API request with bounded retries. Per-attempt
// transport errors and retryable statuses wait out
// max(backoff, Retry-After) before the next try; permanent client
// errors return an *APIError immediately.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var lastErr error
	floor := time.Duration(0)
	for attempt := 0; attempt < c.attempts(); attempt++ {
		if attempt > 0 {
			c.reg().Inc(obs.MFleetRetries)
			if err := c.Backoff.WaitAtLeast(ctx, attempt-1, floor); err != nil {
				return err
			}
			floor = 0
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		c.authorize(req)
		resp, err := c.http().Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err
			continue
		}
		data, rerr := io.ReadAll(io.LimitReader(resp.Body, maxResponseBody))
		resp.Body.Close()
		if rerr != nil {
			lastErr = fmt.Errorf("read response: %w", rerr)
			continue
		}
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			if out == nil {
				return nil
			}
			if err := json.Unmarshal(data, out); err != nil {
				return fmt.Errorf("fleet: decode %s %s response: %w", method, path, err)
			}
			return nil
		}
		apiErr := &APIError{Status: resp.StatusCode, Msg: errorMessage(data), RetryAfter: retryAfter(resp.Header)}
		if !retryable(resp.StatusCode) {
			return apiErr
		}
		floor = apiErr.RetryAfter
		lastErr = apiErr
	}
	return fmt.Errorf("fleet: %s %s failed after %d attempts: %w", method, path, c.attempts(), lastErr)
}

// errorMessage extracts the server's error string from an error body.
func errorMessage(data []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	msg := strings.TrimSpace(string(data))
	if len(msg) > 200 {
		msg = msg[:200]
	}
	return msg
}

// Events streams a job's SSE event feed, calling fn for every event
// newer than lastID until the terminal "done" event arrives. Transport
// failures reconnect with backoff and a Last-Event-ID header, so
// records already delivered are never replayed to fn; a live event
// resets the retry budget. fn returning an error aborts the stream.
func (c *Client) Events(ctx context.Context, id string, lastID int64, fn func(event string, id int64, data []byte) error) error {
	attempt := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if attempt > 0 {
			c.reg().Inc(obs.MFleetRetries)
			if err := c.Backoff.Wait(ctx, attempt-1); err != nil {
				return err
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/jobs/"+id+"/events", nil)
		if err != nil {
			return err
		}
		req.Header.Set("Accept", "text/event-stream")
		c.authorize(req)
		if lastID >= 0 {
			req.Header.Set("Last-Event-ID", strconv.FormatInt(lastID, 10))
		}
		resp, err := c.http().Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if attempt++; attempt >= c.attempts() {
				return fmt.Errorf("fleet: event stream for %s failed after %d attempts: %w", id, attempt, err)
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			apiErr := &APIError{Status: resp.StatusCode, Msg: errorMessage(data), RetryAfter: retryAfter(resp.Header)}
			if !retryable(resp.StatusCode) {
				return apiErr
			}
			if attempt++; attempt >= c.attempts() {
				return fmt.Errorf("fleet: event stream for %s failed after %d attempts: %w", id, attempt, apiErr)
			}
			continue
		}
		done, progressed, err := c.readEvents(resp.Body, &lastID, fn)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		// The stream ended mid-job (connection reset, worker restart):
		// reconnect and resume after the last event seen.
		if progressed {
			attempt = 0
		}
		if attempt++; attempt >= c.attempts() {
			return fmt.Errorf("fleet: event stream for %s kept dying; gave up after %d attempts", id, attempt)
		}
	}
}

// readEvents parses one SSE connection's frames. It reports whether the
// terminal "done" event arrived and whether any event was delivered.
// Only fn errors are returned; a broken read is just an ended stream.
func (c *Client) readEvents(r io.Reader, lastID *int64, fn func(string, int64, []byte) error) (done, progressed bool, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var (
		event string
		data  []byte
		id    = int64(-1)
	)
	flush := func() error {
		defer func() { event, data, id = "", nil, -1 }()
		if event == "" && data == nil {
			return nil // keepalive gap
		}
		if id >= 0 {
			if id <= *lastID {
				return nil // replayed after reconnect; already delivered
			}
			*lastID = id
		}
		progressed = true
		if event == "done" {
			done = true
		}
		return fn(event, id, data)
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				return done, progressed, err
			}
			if done {
				return true, progressed, nil
			}
		case strings.HasPrefix(line, ":"):
			// keepalive comment
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case strings.HasPrefix(line, "id: "):
			if n, perr := strconv.ParseInt(line[len("id: "):], 10, 64); perr == nil {
				id = n
			}
		case strings.HasPrefix(line, "data: "):
			data = append(data, line[len("data: "):]...)
		}
	}
	return done, progressed, nil
}
