// Package fleet is the distributed-scan tier of the BBC stack: a
// coordinator that splits an exhaustive pure-NE enumeration across N
// bbcserved workers and merges the shard results into output
// byte-identical to a single-box scan.
//
// The odometer space is split along the pivot axis — the strategy set
// of the first node with more than one strategy, the same axis the
// in-process parallel enumerator fans out over — into contiguous shard
// ranges. Each shard becomes a lease in a lease table: granted to a
// worker with a TTL deadline, extended by heartbeats (every successful
// job poll), and returned to pending when the worker fails or the
// deadline expires, so a SIGKILLed worker only costs the fleet one
// lease TTL. Shards are dispatched over the existing HTTP/JSON job API
// through a retrying client (jittered exponential backoff, Retry-After
// honored on 429/503), and the worker-side solve fingerprint dedup
// makes redelivery safe: resubmitting a shard resumes the worker's
// partition checkpoint instead of recomputing.
//
// The merge is idempotent and deterministic: results are keyed by shard
// index (each carries its shard-qualified scan fingerprint), a
// duplicate completion from a re-lease race is verified and dropped —
// counted in fleet.duplicate_results, never applied twice — and
// concatenating shard results in range order reproduces the serial
// odometer order exactly. Whatever subset of workers died or repeated
// themselves along the way, a complete fleet run's NEResult is
// byte-identical to the single-box reference; chaos tests pin this.
//
// The coordinator checkpoints its lease table through runctl.Store, so
// a coordinator crash resumes with every merged shard intact (leases
// held at the crash collapse back to pending — a lease is void once its
// grantor is gone).
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"bbc/internal/core"
	"bbc/internal/faultfs"
	"bbc/internal/obs"
	"bbc/internal/runctl"
	"bbc/internal/serve"
)

// leaseCheckpointKind is the runctl checkpoint kind of the lease table.
const leaseCheckpointKind = "fleet-leases"

// Config parameterizes a fleet run. Spec and Workers are required;
// every other zero value is a sane default.
type Config struct {
	// Spec is the game to scan.
	Spec core.Spec
	// Agg is the cost aggregation: "sum" (default) or "max".
	Agg string
	// Pin scans the soundly pinned search space (unit-length games).
	Pin bool
	// Workers are the bbcserved base URLs (e.g. http://127.0.0.1:8371).
	Workers []string
	// Shards is how many leases the odometer space is split into
	// (0 = 4 per worker, clamped to the pivot partition count). More
	// shards than workers keeps the fleet busy when shards are uneven.
	Shards int
	// LeaseTTL is how long a granted lease lives without a heartbeat
	// before it is re-leased (0 = 30s). Every successful job poll
	// extends the holder's deadline by one TTL.
	LeaseTTL time.Duration
	// PollEvery is the job status poll period (0 = 100ms); each
	// successful poll doubles as the lease heartbeat.
	PollEvery time.Duration
	// SolveWorkers is the per-shard solver parallelism requested from
	// each worker (0 = 1, serial with fine-grained checkpoints).
	SolveWorkers int
	// LimitPerNode bounds per-node strategy enumeration during shard
	// planning (0 = 4096). It must match the workers' limit — both
	// default together — or the shard ranges would not line up.
	LimitPerNode int
	// MaxAttempts bounds lease grants per shard before the run fails
	// (0 = 8): a shard no worker can finish must surface, not spin.
	MaxAttempts int
	// CheckpointPath, when non-empty, persists the lease table through
	// runctl.Store so an interrupted coordinator can resume.
	CheckpointPath string
	// Resume loads an existing lease-table checkpoint from
	// CheckpointPath; merged shards are kept, leases collapse to pending.
	Resume bool
	// FS is the filesystem the lease store writes through (nil = OS;
	// chaos tests inject faults here).
	FS faultfs.FS
	// HTTP is the fleet client's HTTP client (nil = a plain client;
	// chaos tests install a fault-injecting transport).
	HTTP *http.Client
	// Backoff is the client retry-delay policy. The zero value is the
	// runctl default (50ms doubling, capped at 5s); set Jitter for
	// fleets large enough to thunder-herd a recovering worker.
	Backoff runctl.Backoff
	// ClientAttempts is the per-request attempt bound (0 = 5).
	ClientAttempts int
	// APIKey identifies this fleet to the workers' admission control
	// (sent as X-API-Key; "" = the anonymous bucket).
	APIKey string
	// Tail, when set, SSE-tails each running shard job and forwards its
	// progress records into the coordinator journal.
	Tail bool
	// Reg receives the fleet.* metrics (nil = obs.Global()).
	Reg *obs.Registry
	// Journal, when non-nil, receives lease/release/shard_done/merge
	// records.
	Journal *obs.Journal
}

func (c Config) leaseTTL() time.Duration {
	if c.LeaseTTL > 0 {
		return c.LeaseTTL
	}
	return 30 * time.Second
}

func (c Config) pollEvery() time.Duration {
	if c.PollEvery > 0 {
		return c.PollEvery
	}
	return 100 * time.Millisecond
}

func (c Config) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 8
}

func (c Config) limitPerNode() int {
	if c.LimitPerNode > 0 {
		return c.LimitPerNode
	}
	return 4096 // keep in lockstep with serve.Config.limitPerNode
}

// Result is a fleet run's outcome. NE is the merged scan result; a
// complete run's NE marshals byte-identical to the single-box scan.
type Result struct {
	// NE is the merged enumeration result (partial when interrupted:
	// only merged shards contribute, Complete is false).
	NE *core.NEResult
	// Space names the search space scanned: full or pinned.
	Space string
	// SpaceSize is the full product-space size.
	SpaceSize uint64
	// Pivot is the node whose strategy set the space was split along
	// (-1 for a single-profile space).
	Pivot int
	// Shards is how many leases the space was split into.
	Shards int
	// ShardsDone is how many were merged before the run ended.
	ShardsDone int
}

// Run executes one fleet scan: plan shards, lease them to workers,
// re-lease failures and expiries, merge. It returns when every shard is
// merged (NE.Complete), when ctx ends the run early (partial NE, status
// cancelled/deadline), or on a fatal error (a shard exhausted its
// attempts, or unusable configuration).
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Spec == nil {
		return nil, errors.New("fleet: a Spec is required")
	}
	if len(cfg.Workers) == 0 {
		return nil, errors.New("fleet: at least one worker URL is required")
	}
	switch cfg.Agg {
	case "", "sum", "max":
	default:
		return nil, fmt.Errorf("fleet: unknown agg %q (want sum or max)", cfg.Agg)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	reg := cfg.Reg
	if reg == nil {
		reg = obs.Global()
	}

	game, err := core.MarshalSpec(cfg.Spec)
	if err != nil {
		return nil, fmt.Errorf("fleet: marshal spec: %w", err)
	}
	agg := core.SumDistances
	if cfg.Agg == "max" {
		agg = core.MaxDistance
	}
	var (
		ss        *core.SearchSpace
		spaceName = "full"
	)
	if cfg.Pin {
		spaceName = "pinned"
		ss, err = core.PinnedSpace(cfg.Spec, cfg.limitPerNode())
	} else {
		ss, err = core.FullSpace(cfg.Spec, cfg.limitPerNode())
	}
	if err != nil {
		return nil, err
	}
	plan := planShards(ss, len(cfg.Workers), cfg.Shards)
	// The lease-table fingerprint qualifies the scan fingerprint with
	// the shard count: a checkpoint from a different split must not
	// resume, its shard indices would mean different ranges.
	fp := fmt.Sprintf("%s+fleet[%d]", core.EnumFingerprint(cfg.Spec, agg, ss), len(plan))

	c := &coordinator{
		cfg:   cfg,
		reg:   reg,
		game:  game,
		table: newTable(plan, cfg.leaseTTL(), cfg.maxAttempts(), reg, cfg.Journal),
	}
	if cfg.CheckpointPath != "" {
		c.store = &runctl.Store{Path: cfg.CheckpointPath, FS: cfg.FS, Retries: 2}
	}
	if cfg.Resume && c.store != nil {
		if err := c.resume(fp); err != nil {
			return nil, err
		}
	}
	c.fp = fp
	return c.run(ctx, spaceName, ss)
}

// coordinator owns one fleet run.
type coordinator struct {
	cfg   Config
	reg   *obs.Registry
	game  json.RawMessage
	table *table
	store *runctl.Store
	fp    string
}

// resume loads the lease-table checkpoint and replays merged shards.
func (c *coordinator) resume(fp string) error {
	env, rec, err := c.store.TryLoad()
	if err != nil {
		return fmt.Errorf("fleet: resume: %w", err)
	}
	if env == nil {
		return nil // nothing persisted yet: a fresh run
	}
	var snap leaseTableSnapshot
	if err := env.Decode(leaseCheckpointKind, fp, &snap); err != nil {
		return fmt.Errorf("fleet: resume: %w", err)
	}
	restored, err := c.table.restore(&snap)
	if err != nil {
		return fmt.Errorf("fleet: resume: %w", err)
	}
	c.cfg.Journal.Event("resume", map[string]any{
		"path": rec.Path, "fallback": rec.Fallback, "shards_done": restored,
	})
	return nil
}

// checkpoint persists the lease table (best-effort: a failed save is
// journaled, the scan itself continues — durability degrades, progress
// does not stop).
func (c *coordinator) checkpoint(status runctl.Status) {
	if c.store == nil {
		return
	}
	snap := c.table.snapshot()
	env, err := runctl.NewCheckpoint(leaseCheckpointKind, c.fp, status, c.reg.Snapshot(), snap)
	if err == nil {
		err = c.store.Save(env)
	}
	if err != nil {
		c.cfg.Journal.Event("checkpoint_error", map[string]any{"path": c.store.Path, "error": err.Error()})
		return
	}
	c.cfg.Journal.Checkpoint(c.store.Path, leaseCheckpointKind, map[string]any{
		"shards_done": c.table.doneCount(),
	})
}

// run drives the agents and the lease clock until the scan completes,
// the context ends it, or a shard exhausts its attempts.
func (c *coordinator) run(ctx context.Context, spaceName string, ss *core.SearchSpace) (*Result, error) {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	agents := make(chan struct{})
	live := 0
	for _, base := range c.cfg.Workers {
		live++
		go func(base string) {
			defer func() { agents <- struct{}{} }()
			c.agentLoop(runCtx, base)
		}(base)
	}

	// The clock tick drives lease expiry and periodic checkpoints; it is
	// a fraction of the TTL so an expiry is noticed promptly.
	tickEvery := c.cfg.leaseTTL() / 4
	if tickEvery < 10*time.Millisecond {
		tickEvery = 10 * time.Millisecond
	}
	tick := time.NewTicker(tickEvery)
	defer tick.Stop()

loop:
	for {
		select {
		case <-c.table.done:
			break loop
		case <-c.table.fatal:
			break loop
		case <-runCtx.Done():
			break loop
		case <-tick.C:
			c.table.expire(time.Now())
			c.checkpoint(runctl.StatusFromContext(ctx))
		}
	}
	cancel()
	for live > 0 {
		<-agents
		live--
	}

	if err := c.table.fatalErr(); err != nil {
		c.checkpoint(runctl.StatusFromContext(ctx))
		return nil, err
	}
	status := runctl.StatusFromContext(ctx)
	ne, done := c.table.merged(status)
	result := &Result{
		NE:         ne,
		Space:      spaceName,
		SpaceSize:  ss.Size(),
		Pivot:      ss.Pivot(),
		Shards:     len(c.table.shards),
		ShardsDone: done,
	}
	if ne.Complete {
		// The scan is done; stale lease tables would only confuse a rerun.
		if c.store != nil {
			fsys := faultfs.Or(c.cfg.FS)
			_ = fsys.Remove(c.store.Path)
			_ = fsys.Remove(c.store.PrevPath())
		}
	} else {
		c.checkpoint(status)
	}
	c.cfg.Journal.Event("merge", map[string]any{
		"shards": result.Shards, "shards_done": done,
		"checked": ne.Checked, "equilibria": len(ne.Equilibria),
		"complete": ne.Complete, "status": ne.Status.String(),
	})
	return result, nil
}

// agentLoop is one worker's drive loop: acquire a lease, run the shard,
// report, repeat. Failures release the lease and back off before the
// next acquire, so a dead worker's agent idles cheaply while surviving
// workers take the re-leased shards.
func (c *coordinator) agentLoop(ctx context.Context, base string) {
	client := &Client{
		Base:     base,
		HTTP:     c.cfg.HTTP,
		Backoff:  c.cfg.Backoff,
		Attempts: c.cfg.ClientAttempts,
		APIKey:   c.cfg.APIKey,
		Reg:      c.reg,
	}
	failStreak := 0
	for {
		if ctx.Err() != nil {
			return
		}
		sh := c.table.acquire(base)
		if sh == nil {
			select {
			case <-ctx.Done():
			case <-c.table.done:
			case <-c.table.fatal:
			case <-time.After(c.cfg.pollEvery()):
				continue // a lease may have expired back to pending
			}
			return
		}
		err := c.runShard(ctx, client, sh, base)
		var bp *backpressureError
		switch {
		case err == nil:
			failStreak = 0
		case ctx.Err() != nil:
			// Shutting down: the lease dies with the run; the checkpoint
			// records non-done shards as pending.
			return
		case errors.As(err, &bp):
			// The worker shed the submission (429/503 + Retry-After): that
			// is admission control doing its job, not a worker fault, so the
			// lease grant is refunded — a shard must never exhaust
			// MaxAttempts purely because the fleet outran the servers — and
			// the agent honors the advertised floor before trying again.
			c.reg.Inc(obs.MFleetThrottled)
			c.table.releaseBackpressure(sh, base, bp.Error())
			failStreak++
			if c.cfg.Backoff.WaitAtLeast(ctx, failStreak-1, bp.floor) != nil {
				return
			}
		default:
			c.reg.Inc(obs.MFleetWorkerFaults)
			c.table.release(sh, base, err.Error())
			failStreak++
			if c.cfg.Backoff.Wait(ctx, failStreak-1) != nil {
				return
			}
		}
	}
}

// backpressureError marks a shard attempt stopped by worker admission
// control before any work was scheduled. floor is the server's
// Retry-After hint (0 = none; the agent's backoff then rules).
type backpressureError struct {
	floor time.Duration
	err   error
}

func (e *backpressureError) Error() string { return e.err.Error() }
func (e *backpressureError) Unwrap() error { return e.err }

// wrapBackpressure classifies an error: a worker 429/503 becomes a
// *backpressureError carrying the Retry-After floor; anything else
// passes through unchanged.
func wrapBackpressure(err error) error {
	if floor, ok := Throttle(err); ok {
		return &backpressureError{floor: floor, err: err}
	}
	return err
}

// runShard executes one lease end to end against one worker: readiness
// gate, submit, poll-with-heartbeat, fetch result, merge.
func (c *coordinator) runShard(ctx context.Context, client *Client, sh *shardLease, base string) error {
	sp := obs.Trace().StartSpan("fleet.shard")
	defer sp.End()

	// Readiness gate: a draining worker answers /readyz with 503, a dead
	// one refuses the connection — either way the lease goes back now
	// instead of after a full submit/poll retry cycle.
	if err := client.Ready(ctx); err != nil {
		return wrapBackpressure(fmt.Errorf("worker not ready: %w", err))
	}
	req := &serve.Request{
		Mode:    "enumerate",
		Game:    c.game,
		Agg:     c.cfg.Agg,
		Pin:     c.cfg.Pin,
		Workers: c.cfg.SolveWorkers,
		Shard:   &serve.ShardRange{Lo: sh.Lo, Hi: sh.Hi},
	}
	view, err := client.Submit(ctx, req)
	if err != nil {
		// A submit refused by admission control (throttled, over quota,
		// queue full, draining) never scheduled any work: classify it as
		// backpressure so the agent refunds the lease attempt.
		return wrapBackpressure(fmt.Errorf("submit shard: %w", err))
	}

	var stopTail func()
	if c.cfg.Tail {
		stopTail = c.tail(ctx, client, view.ID, sh.Index)
		defer stopTail()
	}

	for view.State == serve.StateQueued || view.State == serve.StateRunning {
		if err := c.cfg.Backoff.WaitAtLeast(ctx, 0, c.cfg.pollEvery()); err != nil {
			return err
		}
		view, err = client.Job(ctx, view.ID)
		if err != nil {
			return fmt.Errorf("poll shard job: %w", err)
		}
		// A successful poll proves the worker is alive and holding our
		// shard; that is the heartbeat.
		c.table.heartbeat(sh, base, time.Now())
	}

	switch {
	case view.State == serve.StateRejected:
		return fmt.Errorf("shard job rejected: %s", view.Reason)
	case view.Error != "":
		return fmt.Errorf("shard job failed: %s", view.Error)
	case !view.Complete:
		// Worker drained or the job was cancelled; its checkpoint remains,
		// so the next lease holder on the same worker resumes mid-shard.
		return fmt.Errorf("shard run incomplete (status %s)", view.RunStatus)
	}
	var res serve.EnumResult
	if err := json.Unmarshal(view.Result, &res); err != nil {
		return fmt.Errorf("decode shard result: %w", err)
	}
	c.table.complete(sh, base, &shardResult{
		Fingerprint: res.Fingerprint,
		Checked:     res.Checked,
		Equilibria:  res.Equilibria,
	})
	return nil
}

// tail forwards a running shard job's journal records (progress,
// checkpoints) into the coordinator journal over SSE; the stream
// reconnects with Last-Event-ID on transport errors. Best-effort: tail
// failures never fail the shard.
func (c *coordinator) tail(ctx context.Context, client *Client, jobID string, shard int) func() {
	tailCtx, cancel := context.WithCancel(ctx)
	idle := make(chan struct{})
	go func() {
		defer close(idle)
		_ = client.Events(tailCtx, jobID, -1, func(event string, seq int64, data []byte) error {
			if event == "done" {
				return nil
			}
			c.cfg.Journal.Event("worker_event", map[string]any{
				"shard": shard, "job": jobID, "event": event, "seq": seq,
				"record": json.RawMessage(data),
			})
			return nil
		})
	}()
	return func() {
		cancel()
		<-idle
	}
}
