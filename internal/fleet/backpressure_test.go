package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"bbc/internal/obs"
	"bbc/internal/serve"
)

// throttleFront fronts a real worker and sheds the first `shed`
// submissions with 429 + Retry-After, the way bbcserved admission
// control does; everything else passes through. It records the API key
// each submit carried.
type throttleFront struct {
	inner      http.Handler
	shed       int32
	retryAfter string
	lastKey    atomic.Value // string
}

func (f *throttleFront) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" {
		f.lastKey.Store(r.Header.Get("X-API-Key"))
		if atomic.AddInt32(&f.shed, -1) >= 0 {
			w.Header().Set("Retry-After", f.retryAfter)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"client exceeds its sustained submission rate","reason":"throttled","retry_after_ms":1000}`)
			return
		}
	}
	f.inner.ServeHTTP(w, r)
}

// TestThrottledSubmitDoesNotBurnLeaseAttempt pins the backpressure
// contract end to end: a worker shedding a shard submission with
// 429 + Retry-After delays that shard by at least the advertised floor
// and refunds the lease grant. MaxAttempts=1 makes the refund
// observable — if the throttled grant were burned, the re-acquire would
// be fatal ("shard 0 failed 1 attempts") instead of completing.
func TestThrottledSubmitDoesNotBurnLeaseAttempt(t *testing.T) {
	spec := testSpec(t)
	s, err := serve.New(serve.Config{Workers: 1, DataDir: t.TempDir(), Reg: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	front := &throttleFront{inner: s.Handler(), shed: 1, retryAfter: "1"}
	hs := httptest.NewServer(front)
	t.Cleanup(func() {
		hs.Close()
		s.Drain()
	})

	reg := obs.NewRegistry()
	begin := time.Now()
	res, err := Run(context.Background(), Config{
		Spec:           spec,
		Workers:        []string{hs.URL},
		Shards:         1,
		MaxAttempts:    1, // any burned attempt turns the throttle fatal
		ClientAttempts: 1, // surface the 429 instead of retrying inside the client
		APIKey:         "fleet-1",
		Reg:            reg,
	})
	if err != nil {
		t.Fatalf("Run under backpressure: %v", err)
	}
	if !res.NE.Complete || res.ShardsDone != 1 {
		t.Fatalf("run did not complete: %+v", res)
	}
	mustMatch(t, res.NE, reference(t, spec))
	if elapsed := time.Since(begin); elapsed < time.Second {
		t.Errorf("run finished in %v; the 1s Retry-After floor was not honored", elapsed)
	}
	if got := reg.Get(obs.MFleetThrottled); got != 1 {
		t.Errorf("fleet.throttled = %d, want 1", got)
	}
	if got := reg.Get(obs.MFleetWorkerFaults); got != 0 {
		t.Errorf("fleet.worker_faults = %d, want 0 (backpressure is not a fault)", got)
	}
	if got := reg.Get(obs.MFleetLeases); got != 2 {
		t.Errorf("fleet.leases = %d, want 2 (shed grant + completing grant)", got)
	}
	if got, _ := front.lastKey.Load().(string); got != "fleet-1" {
		t.Errorf("submit carried X-API-Key %q, want fleet-1", got)
	}
}

// TestThrottleClassifier pins which errors count as backpressure: a
// wrapped 429 or 503 with its Retry-After floor, and nothing else.
func TestThrottleClassifier(t *testing.T) {
	throttled := fmt.Errorf("submit shard: %w",
		fmt.Errorf("fleet: POST /v1/jobs failed after 1 attempts: %w",
			&APIError{Status: 429, Msg: "throttled", RetryAfter: 2 * time.Second}))
	if floor, ok := Throttle(throttled); !ok || floor != 2*time.Second {
		t.Errorf("Throttle(429) = (%v, %t), want (2s, true)", floor, ok)
	}
	if floor, ok := Throttle(&APIError{Status: 503, Msg: "draining"}); !ok || floor != 0 {
		t.Errorf("Throttle(503, no hint) = (%v, %t), want (0, true)", floor, ok)
	}
	if _, ok := Throttle(&APIError{Status: 404, Msg: "unknown job"}); ok {
		t.Error("Throttle(404) claimed backpressure")
	}
	if _, ok := Throttle(errors.New("connection refused")); ok {
		t.Error("Throttle(transport error) claimed backpressure")
	}
}
