package dynamics

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"bbc/internal/core"
	"bbc/internal/obs"
)

// EnsembleConfig describes a batch of best-response walks over random
// starting configurations of a uniform game, used by the convergence
// experiments (Theorem 6, Section 4.3).
type EnsembleConfig struct {
	N, K int
	// Trials is the number of random starts.
	Trials int
	// Seed feeds the per-trial RNGs (trial t uses Seed + t), so runs are
	// reproducible regardless of scheduling.
	Seed int64
	// Scheduler names the walk variant: "round-robin", "max-cost-first" or
	// "random".
	Scheduler string
	// Agg is the cost aggregation (zero value means SumDistances).
	Agg core.Aggregation
	// Walk options applied to every trial.
	Walk Options
	// EmptyStart uses the empty profile instead of a random one.
	EmptyStart bool
	// Workers bounds the concurrent trials; 0 means NumCPU.
	Workers int
	// Journal, when non-nil, receives one "trial" record per completed
	// walk (the journal is mutex-protected, so concurrent trials may
	// share it). Per-move records stay off in ensembles; set Walk.Journal
	// explicitly to capture them.
	Journal *obs.Journal
}

func (c EnsembleConfig) agg() core.Aggregation {
	if c.Agg == 0 {
		return core.SumDistances
	}
	return c.Agg
}

// EnsembleStats aggregates walk outcomes over the ensemble.
type EnsembleStats struct {
	Trials int
	// Converged counts walks that reached a pure Nash equilibrium.
	Converged int
	// Looped counts walks that produced a certified best-response loop
	// (only populated when Walk.DetectLoops is set).
	Looped int
	// Exhausted counts walks that hit MaxSteps without converging or
	// looping.
	Exhausted int
	// ConnectivitySteps holds, for each trial that reached strong
	// connectivity, the step count at which it did (sorted ascending).
	ConnectivitySteps []int
	// MaxConnectivityStep is the worst observed step count (0 when no
	// trial reached connectivity).
	MaxConnectivityStep int
}

// ConnectivityQuantile returns the q-quantile (0..1) of the connectivity
// step counts, or -1 when no trial reached connectivity.
func (s *EnsembleStats) ConnectivityQuantile(q float64) int {
	if len(s.ConnectivitySteps) == 0 {
		return -1
	}
	idx := int(q * float64(len(s.ConnectivitySteps)-1))
	return s.ConnectivitySteps[idx]
}

// RunEnsemble executes the configured batch of walks concurrently and
// aggregates the outcomes. Results are deterministic for a fixed Seed: the
// per-trial randomness is derived from Seed+trial, never from scheduling.
func RunEnsemble(spec *core.Uniform, cfg EnsembleConfig) (*EnsembleStats, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("dynamics: ensemble needs at least one trial")
	}
	if spec.N() != cfg.N || spec.K() != cfg.K {
		return nil, fmt.Errorf("dynamics: spec is (%d,%d), config says (%d,%d)", spec.N(), spec.K(), cfg.N, cfg.K)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	type outcome struct {
		converged, looped, exhausted bool
		connectivity                 int
		err                          error
	}
	outcomes := make([]outcome, cfg.Trials)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for trial := 0; trial < cfg.Trials; trial++ {
		wg.Add(1)
		go func(trial int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)))
			var start core.Profile
			if cfg.EmptyStart {
				start = core.NewEmptyProfile(cfg.N)
			} else {
				start = RandomStart(rng, cfg.N, cfg.K)
			}
			sched, err := newScheduler(cfg, rng)
			if err != nil {
				outcomes[trial] = outcome{err: err}
				return
			}
			reg := obs.Global()
			reg.Inc(obs.MWorkerTasks)
			stop := reg.Time(obs.MWorkerBusyNanos)
			res, err := Run(spec, start, sched, cfg.agg(), cfg.Walk)
			stop()
			if err != nil {
				outcomes[trial] = outcome{err: err}
				return
			}
			reg.Inc(obs.MTrials)
			cfg.Journal.Event("trial", map[string]any{
				"trial":             trial,
				"steps":             res.Steps,
				"moves":             res.Moves,
				"converged":         res.Converged,
				"looped":            res.Loop != nil,
				"connectivity_step": res.ConnectivityStep,
			})
			outcomes[trial] = outcome{
				converged:    res.Converged,
				looped:       res.Loop != nil,
				exhausted:    !res.Converged && res.Loop == nil,
				connectivity: res.ConnectivityStep,
			}
		}(trial)
	}
	wg.Wait()

	stats := &EnsembleStats{Trials: cfg.Trials}
	for _, o := range outcomes {
		if o.err != nil {
			return nil, o.err
		}
		if o.converged {
			stats.Converged++
		}
		if o.looped {
			stats.Looped++
		}
		if o.exhausted {
			stats.Exhausted++
		}
		if o.connectivity >= 0 {
			stats.ConnectivitySteps = append(stats.ConnectivitySteps, o.connectivity)
			if o.connectivity > stats.MaxConnectivityStep {
				stats.MaxConnectivityStep = o.connectivity
			}
		}
	}
	sort.Ints(stats.ConnectivitySteps)
	return stats, nil
}

// newScheduler builds the per-trial scheduler named by the config.
func newScheduler(cfg EnsembleConfig, rng *rand.Rand) (Scheduler, error) {
	switch cfg.Scheduler {
	case "", "round-robin":
		return NewRoundRobin(cfg.N), nil
	case "max-cost-first":
		return &MaxCostFirst{Agg: cfg.agg(), BR: cfg.Walk.BR}, nil
	case "random":
		return &RandomScheduler{Rng: rng}, nil
	default:
		return nil, fmt.Errorf("dynamics: unknown scheduler %q", cfg.Scheduler)
	}
}

// RandomStart draws a uniformly random maximal profile for an (n, k)
// uniform game: every node buys exactly min(k, n-1) distinct targets.
func RandomStart(rng *rand.Rand, n, k int) core.Profile {
	p := core.NewEmptyProfile(n)
	for u := 0; u < n; u++ {
		perm := rng.Perm(n)
		s := make([]int, 0, k)
		for _, v := range perm {
			if v != u && len(s) < k {
				s = append(s, v)
			}
		}
		p[u] = core.NormalizeStrategy(s)
	}
	return p
}
