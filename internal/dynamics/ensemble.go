package dynamics

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"bbc/internal/core"
	"bbc/internal/obs"
	"bbc/internal/runctl"
)

// EnsembleConfig describes a batch of best-response walks over random
// starting configurations of a uniform game, used by the convergence
// experiments (Theorem 6, Section 4.3).
type EnsembleConfig struct {
	N, K int
	// Trials is the number of random starts.
	Trials int
	// Seed feeds the per-trial RNGs (trial t uses Seed + t), so runs are
	// reproducible regardless of scheduling — and so a resumed run needs
	// no serialized RNG state beyond this seed and the completed-trial
	// set.
	Seed int64
	// Scheduler names the walk variant: "round-robin", "max-cost-first" or
	// "random".
	Scheduler string
	// Agg is the cost aggregation (zero value means SumDistances).
	Agg core.Aggregation
	// Walk options applied to every trial.
	Walk Options
	// EmptyStart uses the empty profile instead of a random one.
	EmptyStart bool
	// Workers bounds the concurrent trials; 0 means NumCPU. At most
	// Workers goroutines run regardless of Trials.
	Workers int
	// Journal, when non-nil, receives one "trial" record per completed
	// walk (the journal is mutex-protected, so concurrent trials may
	// share it). Per-move records stay off in ensembles; set Walk.Journal
	// explicitly to capture them.
	Journal *obs.Journal
	// Ctx, when non-nil, cancels the ensemble: no new trial starts after
	// it fires, in-flight walks stop at their next step, and the partial
	// stats are returned with resume state.
	Ctx context.Context
	// Resume skips the trials a previous run already completed, crediting
	// their recorded outcomes.
	Resume *EnsembleCheckpoint
	// OnCheckpoint, when non-nil, receives a progress snapshot after each
	// completed trial. The callback must not mutate the snapshot.
	OnCheckpoint func(*EnsembleCheckpoint)
}

func (c EnsembleConfig) agg() core.Aggregation {
	if c.Agg == 0 {
		return core.SumDistances
	}
	return c.Agg
}

// Fingerprint identifies the ensemble configuration for checkpoint
// validation: resuming is refused unless game shape, trial count, seed,
// scheduler, aggregation and walk bounds all match.
func (c EnsembleConfig) Fingerprint() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "n=%d;k=%d;trials=%d;seed=%d;sched=%s;agg=%d;steps=%d;empty=%v;loops=%v;conn=%v;br=%d,%d,%d",
		c.N, c.K, c.Trials, c.Seed, c.Scheduler, c.agg(), c.Walk.MaxSteps, c.EmptyStart,
		c.Walk.DetectLoops, c.Walk.StopAtStrongConnectivity,
		c.Walk.BR.Method, c.Walk.BR.EnumLimit, c.Walk.BR.SwapRounds)
	return fmt.Sprintf("ensemble-%016x", h.Sum64())
}

// TrialOutcome is the checkpointable result of one completed trial.
type TrialOutcome struct {
	Converged        bool `json:"converged"`
	Looped           bool `json:"looped"`
	Exhausted        bool `json:"exhausted"`
	ConnectivityStep int  `json:"connectivity_step"`
}

// EnsembleCheckpoint is the resume state of an interrupted ensemble:
// per-trial outcomes, indexed by trial number (nil = not yet run).
// Because trial t's randomness derives from Seed+t alone, replaying the
// missing trials reproduces the uninterrupted run exactly. Wrap it in a
// runctl.Checkpoint envelope (kind "ensemble") to persist it.
type EnsembleCheckpoint struct {
	Outcomes []*TrialOutcome `json:"outcomes"`
}

// EnsembleStats aggregates walk outcomes over the ensemble.
type EnsembleStats struct {
	Trials int
	// Completed counts trials that actually ran to a verdict (equal to
	// Trials unless the run was cancelled).
	Completed int
	// Converged counts walks that reached a pure Nash equilibrium.
	Converged int
	// Looped counts walks that produced a certified best-response loop
	// (only populated when Walk.DetectLoops is set).
	Looped int
	// Exhausted counts walks that hit MaxSteps without converging or
	// looping.
	Exhausted int
	// ConnectivitySteps holds, for each trial that reached strong
	// connectivity, the step count at which it did (sorted ascending).
	ConnectivitySteps []int
	// MaxConnectivityStep is the worst observed step count (0 when no
	// trial reached connectivity).
	MaxConnectivityStep int
	// Status classifies how the ensemble ended; partial stats carry a
	// non-complete status and Resume state.
	Status runctl.Status
	// Resume, non-nil when trials remain, continues the ensemble from
	// where it stopped.
	Resume *EnsembleCheckpoint
}

// ConnectivityQuantile returns the q-quantile (0..1) of the connectivity
// step counts, or -1 when no trial reached connectivity.
func (s *EnsembleStats) ConnectivityQuantile(q float64) int {
	if len(s.ConnectivitySteps) == 0 {
		return -1
	}
	idx := int(q * float64(len(s.ConnectivitySteps)-1))
	return s.ConnectivitySteps[idx]
}

// RunEnsemble executes the configured batch of walks concurrently and
// aggregates the outcomes. Results are deterministic for a fixed Seed: the
// per-trial randomness is derived from Seed+trial, never from scheduling.
// At most cfg.Workers goroutines run; a panic inside one trial surfaces
// as an error naming that trial while other trials finish; cancelling
// cfg.Ctx returns partial stats plus checkpoint state from which a
// resumed run reproduces the uninterrupted result exactly.
func RunEnsemble(spec *core.Uniform, cfg EnsembleConfig) (*EnsembleStats, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("dynamics: ensemble needs at least one trial")
	}
	if spec.N() != cfg.N || spec.K() != cfg.K {
		return nil, fmt.Errorf("dynamics: spec is (%d,%d), config says (%d,%d)", spec.N(), spec.K(), cfg.N, cfg.K)
	}
	outcomes := make([]*TrialOutcome, cfg.Trials)
	if cfg.Resume != nil {
		if len(cfg.Resume.Outcomes) != cfg.Trials {
			return nil, fmt.Errorf("dynamics: checkpoint has %d trials, config says %d", len(cfg.Resume.Outcomes), cfg.Trials)
		}
		copy(outcomes, cfg.Resume.Outcomes)
	}
	pending := make([]int, 0, cfg.Trials)
	for t := range outcomes {
		if outcomes[t] == nil {
			pending = append(pending, t)
		}
	}

	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	// ictx stops the remaining trials promptly after the first hard error.
	ictx, icancel := context.WithCancel(ctx)
	defer icancel()

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(pending) {
		workers = len(pending)
	}

	errs := make([]error, cfg.Trials)
	jobs := make(chan int)
	var (
		wg     sync.WaitGroup
		ckptMu sync.Mutex // serializes outcomes[] updates and OnCheckpoint calls
	)
	snapshot := func() *EnsembleCheckpoint {
		return &EnsembleCheckpoint{Outcomes: append([]*TrialOutcome(nil), outcomes...)}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		track := w + 1
		go func() {
			defer wg.Done()
			reg := obs.Global()
			tr := obs.Trace()
			// One evaluation scratch per worker goroutine; every trial this
			// worker runs re-binds it to the trial's realized graph while the
			// underlying buffers stay warm.
			es := core.NewEvalScratch()
			for trial := range jobs {
				reg.Inc(obs.MWorkerTasks)
				// Busy time covers walk work only, not queue wait.
				t0 := reg.Started()
				sp := tr.StartSpan("dyn.trial").OnTrack(track)
				errs[trial] = runctl.Guard(fmt.Sprintf("ensemble trial %d", trial), func() error {
					rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)))
					var start core.Profile
					if cfg.EmptyStart {
						start = core.NewEmptyProfile(cfg.N)
					} else {
						start = RandomStart(rng, cfg.N, cfg.K)
					}
					sched, err := newScheduler(cfg, rng)
					if err != nil {
						return err
					}
					wopts := cfg.Walk
					wopts.Ctx = ictx
					wopts.scratch = es
					res, err := Run(spec, start, sched, cfg.agg(), wopts)
					if err != nil {
						return err
					}
					if !res.Status.Complete() && res.Status != runctl.StatusBudget {
						// Cancelled mid-walk: no verdict; the trial stays
						// pending in the checkpoint and reruns on resume.
						return nil
					}
					reg.Inc(obs.MTrials)
					cfg.Journal.Event("trial", map[string]any{
						"trial":             trial,
						"steps":             res.Steps,
						"moves":             res.Moves,
						"converged":         res.Converged,
						"looped":            res.Loop != nil,
						"connectivity_step": res.ConnectivityStep,
					})
					ckptMu.Lock()
					outcomes[trial] = &TrialOutcome{
						Converged:        res.Converged,
						Looped:           res.Loop != nil,
						Exhausted:        !res.Converged && res.Loop == nil,
						ConnectivityStep: res.ConnectivityStep,
					}
					if cfg.OnCheckpoint != nil {
						cfg.OnCheckpoint(snapshot())
					}
					ckptMu.Unlock()
					return nil
				})
				sp.EndInt("trial", int64(trial))
				reg.ElapsedSince(obs.MWorkerBusyNanos, t0)
				if errs[trial] != nil {
					icancel()
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, t := range pending {
			select {
			case jobs <- t:
			case <-ictx.Done():
				return
			}
		}
	}()
	wg.Wait()

	for _, t := range pending {
		if errs[t] != nil {
			return nil, errs[t]
		}
	}

	stats := &EnsembleStats{Trials: cfg.Trials}
	missing := 0
	for _, o := range outcomes {
		if o == nil {
			missing++
			continue
		}
		stats.Completed++
		if o.Converged {
			stats.Converged++
		}
		if o.Looped {
			stats.Looped++
		}
		if o.Exhausted {
			stats.Exhausted++
		}
		if o.ConnectivityStep >= 0 {
			stats.ConnectivitySteps = append(stats.ConnectivitySteps, o.ConnectivityStep)
			if o.ConnectivityStep > stats.MaxConnectivityStep {
				stats.MaxConnectivityStep = o.ConnectivityStep
			}
		}
	}
	sort.Ints(stats.ConnectivitySteps)
	if missing > 0 {
		stats.Status = runctl.StatusFromContext(ctx)
		if stats.Status.Complete() {
			stats.Status = runctl.StatusCancelled
		}
		stats.Resume = snapshot()
	}
	return stats, nil
}

// newScheduler builds the per-trial scheduler named by the config.
func newScheduler(cfg EnsembleConfig, rng *rand.Rand) (Scheduler, error) {
	switch cfg.Scheduler {
	case "", "round-robin":
		return NewRoundRobin(cfg.N), nil
	case "max-cost-first":
		return &MaxCostFirst{Agg: cfg.agg(), BR: cfg.Walk.BR}, nil
	case "random":
		return &RandomScheduler{Rng: rng}, nil
	default:
		return nil, fmt.Errorf("dynamics: unknown scheduler %q", cfg.Scheduler)
	}
}

// RandomStart draws a uniformly random maximal profile for an (n, k)
// uniform game: every node buys exactly min(k, n-1) distinct targets.
func RandomStart(rng *rand.Rand, n, k int) core.Profile {
	p := core.NewEmptyProfile(n)
	for u := 0; u < n; u++ {
		perm := rng.Perm(n)
		s := make([]int, 0, k)
		for _, v := range perm {
			if v != u && len(s) < k {
				s = append(s, v)
			}
		}
		p[u] = core.NormalizeStrategy(s)
	}
	return p
}
