package dynamics

import (
	"math/rand"
	"testing"

	"bbc/internal/core"
)

func TestRunEnsembleValidation(t *testing.T) {
	spec := core.MustUniform(6, 2)
	if _, err := RunEnsemble(spec, EnsembleConfig{N: 6, K: 2, Trials: 0}); err == nil {
		t.Fatal("zero trials should error")
	}
	if _, err := RunEnsemble(spec, EnsembleConfig{N: 5, K: 2, Trials: 1}); err == nil {
		t.Fatal("mismatched spec should error")
	}
	if _, err := RunEnsemble(spec, EnsembleConfig{N: 6, K: 2, Trials: 1, Scheduler: "bogus"}); err == nil {
		t.Fatal("unknown scheduler should error")
	}
}

func TestRunEnsembleConnectivityWithinBound(t *testing.T) {
	// Theorem 6 over an ensemble: every random start reaches strong
	// connectivity within n² steps.
	spec := core.MustUniform(7, 2)
	stats, err := RunEnsemble(spec, EnsembleConfig{
		N: 7, K: 2, Trials: 20, Seed: 42,
		Walk: Options{StopAtStrongConnectivity: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.ConnectivitySteps) != 20 {
		t.Fatalf("only %d/20 trials reached connectivity", len(stats.ConnectivitySteps))
	}
	if stats.MaxConnectivityStep > 49 {
		t.Fatalf("worst connectivity step %d exceeds n² = 49", stats.MaxConnectivityStep)
	}
	if q := stats.ConnectivityQuantile(0.5); q < 0 || q > stats.MaxConnectivityStep {
		t.Fatalf("median quantile %d inconsistent", q)
	}
}

func TestRunEnsembleDeterministic(t *testing.T) {
	spec := core.MustUniform(6, 1)
	cfg := EnsembleConfig{N: 6, K: 1, Trials: 10, Seed: 7, Walk: Options{MaxSteps: 300}}
	a, err := RunEnsemble(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEnsemble(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Converged != b.Converged || a.Looped != b.Looped || a.MaxConnectivityStep != b.MaxConnectivityStep {
		t.Fatalf("ensemble not deterministic: %+v vs %+v", a, b)
	}
}

func TestRunEnsembleMaxCostFirstLoops(t *testing.T) {
	// From random (6,2) starts, max-cost-first walks either converge or
	// loop; with loop detection on, nothing should be left "exhausted"
	// within a generous step bound.
	spec := core.MustUniform(6, 2)
	stats, err := RunEnsemble(spec, EnsembleConfig{
		N: 6, K: 2, Trials: 10, Seed: 3, Scheduler: "max-cost-first",
		Walk: Options{MaxSteps: 2000, DetectLoops: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Converged+stats.Looped != stats.Trials {
		t.Fatalf("unexpected exhausted walks: %+v", stats)
	}
}

func TestRunEnsembleRandomScheduler(t *testing.T) {
	spec := core.MustUniform(5, 1)
	stats, err := RunEnsemble(spec, EnsembleConfig{
		N: 5, K: 1, Trials: 5, Seed: 11, Scheduler: "random",
		Walk: Options{MaxSteps: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Trials != 5 {
		t.Fatalf("stats.Trials = %d", stats.Trials)
	}
}

func TestConnectivityQuantileEmpty(t *testing.T) {
	s := &EnsembleStats{}
	if s.ConnectivityQuantile(0.5) != -1 {
		t.Fatal("empty quantile should be -1")
	}
}

func TestRandomStartIsMaximalAndFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	spec := core.MustUniform(9, 3)
	for trial := 0; trial < 20; trial++ {
		p := RandomStart(rng, 9, 3)
		if err := p.Validate(spec); err != nil {
			t.Fatal(err)
		}
		for u, s := range p {
			if len(s) != 3 {
				t.Fatalf("node %d has %d links, want 3", u, len(s))
			}
		}
	}
}
