package dynamics

import (
	"context"
	"testing"

	"bbc/internal/core"
	"bbc/internal/runctl"
)

// TestRunHonorsCancelledContext: a walk under an already-cancelled
// context stops immediately with a partial result, not an error.
func TestRunHonorsCancelledContext(t *testing.T) {
	spec := core.MustUniform(8, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(spec, core.NewEmptyProfile(8), NewRoundRobin(8), core.SumDistances,
		Options{Ctx: ctx, MaxSteps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != runctl.StatusCancelled {
		t.Fatalf("want cancelled status, got %v", res.Status)
	}
	if res.Steps != 0 || res.Converged {
		t.Errorf("cancelled walk still ran: steps=%d converged=%v", res.Steps, res.Converged)
	}
}

// TestRunStatusBudgetOnExhaustion: hitting MaxSteps without converging
// or looping is classified as budget exhaustion.
func TestRunStatusBudgetOnExhaustion(t *testing.T) {
	spec := core.MustUniform(8, 2)
	res, err := Run(spec, core.NewEmptyProfile(8), NewRoundRobin(8), core.SumDistances,
		Options{MaxSteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Loop != nil {
		t.Skip("walk finished within one step; no exhaustion to classify")
	}
	if res.Status != runctl.StatusBudget {
		t.Fatalf("want budget status for exhausted walk, got %v", res.Status)
	}
}

// TestSimultaneousHonorsCancelledContext mirrors the sequential case for
// synchronous rounds.
func TestSimultaneousHonorsCancelledContext(t *testing.T) {
	spec := core.MustUniform(6, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunSimultaneousOpts(spec, core.NewEmptyProfile(6), core.SumDistances,
		SimOptions{Ctx: ctx, MaxRounds: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != runctl.StatusCancelled {
		t.Fatalf("want cancelled status, got %v", res.Status)
	}
}
