package dynamics

import (
	"math/rand"
	"testing"

	"bbc/internal/core"
)

func ringProfile(n int) core.Profile {
	p := core.NewEmptyProfile(n)
	for u := 0; u < n; u++ {
		p[u] = core.Strategy{(u + 1) % n}
	}
	return p
}

func TestRunRejectsInvalidStart(t *testing.T) {
	spec := core.MustUniform(4, 1)
	bad := core.Profile{{0}, {}, {}, {}} // self link
	if _, err := Run(spec, bad, NewRoundRobin(4), core.SumDistances, Options{}); err == nil {
		t.Fatal("expected error for invalid start")
	}
}

func TestStableStartConvergesImmediately(t *testing.T) {
	spec := core.MustUniform(6, 1)
	res, err := Run(spec, ringProfile(6), NewRoundRobin(6), core.SumDistances, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("stable start should converge")
	}
	if res.Moves != 0 {
		t.Fatalf("stable start made %d moves", res.Moves)
	}
	if !res.Final.Equal(ringProfile(6)) {
		t.Fatal("profile changed despite stability")
	}
	if res.ConnectivityStep != 0 {
		t.Fatalf("ConnectivityStep = %d, want 0 (start is strongly connected)", res.ConnectivityStep)
	}
}

func TestEmptyStartReachesConnectivityWithinBound(t *testing.T) {
	// Theorem 6: round-robin best-response walks reach strong connectivity
	// within n² steps.
	for _, tc := range []struct{ n, k int }{{5, 1}, {6, 2}, {8, 1}, {8, 3}} {
		spec := core.MustUniform(tc.n, tc.k)
		res, err := Run(spec, core.NewEmptyProfile(tc.n), NewRoundRobin(tc.n), core.SumDistances,
			Options{StopAtStrongConnectivity: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.ConnectivityStep < 0 {
			t.Fatalf("n=%d k=%d: never reached strong connectivity", tc.n, tc.k)
		}
		if res.ConnectivityStep > tc.n*tc.n {
			t.Fatalf("n=%d k=%d: connectivity after %d steps > n²=%d",
				tc.n, tc.k, res.ConnectivityStep, tc.n*tc.n)
		}
	}
}

func TestRandomStartsReachConnectivityWithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	spec := core.MustUniform(7, 2)
	for trial := 0; trial < 15; trial++ {
		start := randomProfile(rng, 7, 2)
		res, err := Run(spec, start, NewRoundRobin(7), core.SumDistances,
			Options{StopAtStrongConnectivity: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.ConnectivityStep < 0 || res.ConnectivityStep > 49 {
			t.Fatalf("trial %d: connectivity step %d outside (0, n²]", trial, res.ConnectivityStep)
		}
	}
}

func randomProfile(rng *rand.Rand, n, k int) core.Profile {
	p := core.NewEmptyProfile(n)
	for u := 0; u < n; u++ {
		perm := rng.Perm(n)
		s := make([]int, 0, k)
		for _, v := range perm {
			if v != u && len(s) < k {
				s = append(s, v)
			}
		}
		p[u] = core.NormalizeStrategy(s)
	}
	return p
}

func TestMovesStrictlyImprove(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	spec := core.MustUniform(6, 2)
	for trial := 0; trial < 10; trial++ {
		start := randomProfile(rng, 6, 2)
		res, err := Run(spec, start, NewRoundRobin(6), core.SumDistances, Options{Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range res.Trace {
			if rec.Moved && rec.CostAfter >= rec.CostBefore {
				t.Fatalf("trial %d step %d: move did not improve (%d -> %d)",
					trial, rec.Step, rec.CostBefore, rec.CostAfter)
			}
			if !rec.Moved && rec.CostAfter != rec.CostBefore {
				t.Fatalf("trial %d step %d: no-move changed cost", trial, rec.Step)
			}
		}
	}
}

func TestConvergedFinalIsEquilibrium(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	spec := core.MustUniform(5, 1)
	converged := 0
	for trial := 0; trial < 20; trial++ {
		start := randomProfile(rng, 5, 1)
		res, err := Run(spec, start, NewRoundRobin(5), core.SumDistances, Options{MaxSteps: 500})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			continue
		}
		converged++
		stable, err := core.IsEquilibrium(spec, res.Final, core.SumDistances)
		if err != nil {
			t.Fatal(err)
		}
		if !stable {
			t.Fatalf("trial %d: converged to a non-equilibrium %v", trial, res.Final)
		}
	}
	if converged == 0 {
		t.Fatal("no trial converged; cannot validate convergence invariant")
	}
}

func TestMaxCostFirstScheduler(t *testing.T) {
	spec := core.MustUniform(5, 1)
	// Profile where node 3 is disconnected (max cost): scheduler must pick
	// a node with maximal cost, which is any node that cannot reach others.
	p := core.Profile{{1}, {2}, {0}, {}, {0}}
	g := p.Realize(spec)
	sched := &MaxCostFirst{Agg: core.SumDistances}
	u := sched.Next(0, spec, p, g)
	if u != 3 {
		t.Fatalf("MaxCostFirst picked %d, want 3 (the isolated node)", u)
	}
}

func TestMaxCostFirstWalkFromEmptyConverges(t *testing.T) {
	// The paper's experimental observation: the max-cost-first walk from
	// the empty graph appears to converge to a stable graph. With this
	// implementation's deterministic tie-breaking that holds for these
	// (n, k); see TestMaxCostFirstWalkFromEmptyCanLoop for counterexamples.
	for _, tc := range []struct{ n, k int }{{5, 1}, {8, 1}, {5, 2}, {7, 2}, {6, 3}, {8, 3}} {
		spec := core.MustUniform(tc.n, tc.k)
		res, err := Run(spec, core.NewEmptyProfile(tc.n), &MaxCostFirst{Agg: core.SumDistances},
			core.SumDistances, Options{MaxSteps: 2000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("n=%d k=%d: max-cost-first from empty did not converge in %d steps",
				tc.n, tc.k, res.Steps)
		}
		stable, err := core.IsEquilibrium(spec, res.Final, core.SumDistances)
		if err != nil {
			t.Fatal(err)
		}
		if !stable {
			t.Fatal("converged profile is not an equilibrium")
		}
	}
}

func TestMaxCostFirstWalkFromEmptyCanLoop(t *testing.T) {
	// Under lexicographic tie-breaking the (6,2)- and (8,2)-uniform games
	// drive the max-cost-first walk from the empty graph into a certified
	// best-response cycle — the paper's "seems to converge" observation is
	// tie-breaking-sensitive, and this doubles as a non-potential-game
	// witness.
	for _, tc := range []struct{ n, k int }{{6, 2}, {8, 2}} {
		spec := core.MustUniform(tc.n, tc.k)
		res, err := Run(spec, core.NewEmptyProfile(tc.n), &MaxCostFirst{Agg: core.SumDistances},
			core.SumDistances, Options{MaxSteps: 2000, DetectLoops: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Loop == nil {
			t.Fatalf("n=%d k=%d: expected a certified loop, got converged=%v after %d steps",
				tc.n, tc.k, res.Converged, res.Steps)
		}
		if len(res.Loop.Moves) == 0 {
			t.Fatal("loop contains no moves")
		}
		assertLoopReplays(t, spec, res.Loop)
	}
}

// assertLoopReplays re-executes a certified loop move by move, checking
// each move is a strict improvement and the final profile matches the
// start.
func assertLoopReplays(t *testing.T, spec core.Spec, loop *LoopInfo) {
	t.Helper()
	p := loop.Start.Clone()
	for i, mv := range loop.Moves {
		g := p.Realize(spec)
		before := core.NodeCost(spec, g, mv.Node, core.SumDistances)
		if before != mv.CostBefore {
			t.Fatalf("move %d: recorded cost-before %d, actual %d", i, mv.CostBefore, before)
		}
		p[mv.Node] = mv.To
		g2 := p.Realize(spec)
		after := core.NodeCost(spec, g2, mv.Node, core.SumDistances)
		if after != mv.CostAfter {
			t.Fatalf("move %d: recorded cost-after %d, actual %d", i, mv.CostAfter, after)
		}
		if after >= before {
			t.Fatalf("move %d: not a strict improvement (%d -> %d)", i, before, after)
		}
	}
	if !p.Equal(loop.Start) {
		t.Fatalf("loop does not return to its start:\nstart %v\nend   %v", loop.Start, p)
	}
}

func TestRandomSchedulerRuns(t *testing.T) {
	spec := core.MustUniform(5, 1)
	rng := rand.New(rand.NewSource(114))
	res, err := Run(spec, core.NewEmptyProfile(5), &RandomScheduler{Rng: rng},
		core.SumDistances, Options{MaxSteps: 400})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 {
		t.Fatal("random walk made no steps")
	}
}

func TestLoopDetectionFindsPlantedCycle(t *testing.T) {
	// Loop detection on a game known to converge must NOT report a loop.
	spec := core.MustUniform(5, 1)
	res, err := Run(spec, core.NewEmptyProfile(5), NewRoundRobin(5), core.SumDistances,
		Options{DetectLoops: true, MaxSteps: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Loop != nil && len(res.Loop.Moves) == 0 {
		t.Fatal("reported a loop with no moves")
	}
}

func TestRoundRobinCustomOrder(t *testing.T) {
	r := &RoundRobin{Order: []int{2, 0, 1}}
	if r.Next(0, nil, nil, nil) != 2 || r.Next(1, nil, nil, nil) != 0 || r.Next(3, nil, nil, nil) != 2 {
		t.Fatal("custom order not respected")
	}
	if r.Phase(4) != 1 {
		t.Fatalf("Phase(4) = %d, want 1", r.Phase(4))
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	spec := core.MustUniform(4, 1)
	res, err := Run(spec, core.NewEmptyProfile(4), NewRoundRobin(4), core.SumDistances, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("trace should be nil when not requested")
	}
}
