// Package dynamics implements best-response walks on BBC game
// configuration spaces (Section 4.3 of the paper): schedulers (round-robin,
// max-cost-first, random), convergence tracking to strong connectivity
// (Theorem 6), pure-equilibrium convergence, and loop detection — the
// witness that uniform BBC games are not ordinal potential games
// (Figure 4).
package dynamics

import (
	"context"
	"fmt"
	"sort"

	"bbc/internal/core"
	"bbc/internal/graph"
	"bbc/internal/obs"
	"bbc/internal/runctl"
)

// Scheduler picks which node attempts a best-response step next.
type Scheduler interface {
	// Next returns the node to move at the given step, possibly inspecting
	// the current profile and realized graph.
	Next(step int, spec core.Spec, p core.Profile, g *graph.Digraph) int
	// Phase returns a small integer identifying the scheduler's internal
	// position at the given step; two visits to the same (profile, phase)
	// pair guarantee the walk has entered a cycle.
	Phase(step int) int
}

// RoundRobin cycles through a fixed node order, one node per step.
type RoundRobin struct {
	Order []int
}

// NewRoundRobin returns a round-robin scheduler over 0..n-1.
func NewRoundRobin(n int) *RoundRobin {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return &RoundRobin{Order: order}
}

// Next returns the node whose turn it is.
func (r *RoundRobin) Next(step int, _ core.Spec, _ core.Profile, _ *graph.Digraph) int {
	return r.Order[step%len(r.Order)]
}

// Phase returns the position within the round.
func (r *RoundRobin) Phase(step int) int { return step % len(r.Order) }

// MaxCostFirst schedules the most expensive node that has a strictly
// improving deviation (ties broken toward the lowest id), the walk variant
// the paper reports experiments on. When every node is stable it returns
// the most expensive node, whose no-move steps let the walk detect
// convergence.
type MaxCostFirst struct {
	Agg core.Aggregation
	// BR configures the deviation check; the zero value means exact.
	BR core.Options
}

// Next returns the most expensive unstable node, or the most expensive
// node overall when the profile is stable.
func (m *MaxCostFirst) Next(_ int, spec core.Spec, p core.Profile, g *graph.Digraph) int {
	type nc struct {
		node int
		cost int64
	}
	order := make([]nc, spec.N())
	for u := 0; u < spec.N(); u++ {
		order[u] = nc{node: u, cost: core.NodeCost(spec, g, u, m.Agg)}
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i].cost > order[j].cost })
	for _, c := range order {
		dev, err := core.NodeDeviation(spec, g, p, c.node, m.Agg, m.BR)
		if err != nil {
			// Enumeration limits surface on the actual move attempt in Run;
			// fall back to the plain max-cost node here.
			break
		}
		if dev != nil {
			return c.node
		}
	}
	return order[0].node
}

// Phase is constant: the scheduler is memoryless, so a repeated profile
// alone implies a cycle.
func (m *MaxCostFirst) Phase(int) int { return 0 }

// Rand abstracts the randomness source for RandomScheduler, satisfied by
// *math/rand.Rand.
type Rand interface {
	Intn(n int) int
}

// RandomScheduler picks a uniformly random node each step.
type RandomScheduler struct {
	Rng Rand
}

// Next returns a random node.
func (r *RandomScheduler) Next(_ int, spec core.Spec, _ core.Profile, _ *graph.Digraph) int {
	return r.Rng.Intn(spec.N())
}

// Phase is constant; loop detection is not meaningful for random walks and
// should be disabled by callers.
func (r *RandomScheduler) Phase(int) int { return 0 }

// StepRecord describes one attempted best-response step.
type StepRecord struct {
	Step       int
	Node       int
	Moved      bool
	From, To   core.Strategy
	CostBefore int64
	CostAfter  int64
}

// LoopInfo certifies a best-response cycle: starting from States[0] and
// applying Moves in order returns to States[0] at the same scheduler phase,
// with every move a strict best-response improvement.
type LoopInfo struct {
	// Length is the number of steps in the cycle (including no-move steps).
	Length int
	// Moves lists only the steps inside the cycle where a node rewired.
	Moves []StepRecord
	// Start is the profile at which the cycle begins.
	Start core.Profile
}

// Options controls a walk run.
type Options struct {
	// Ctx, when non-nil, is checked before every step: a cancel or
	// deadline stops the walk with a partial Result whose Status explains
	// why. Nil means the walk cannot be interrupted.
	Ctx context.Context
	// MaxSteps bounds the walk; the zero value means 10·n².
	MaxSteps int
	// BR configures the best-response oracle (default exact).
	BR core.Options
	// Trace records every step (memory proportional to MaxSteps).
	Trace bool
	// DetectLoops tracks visited (profile, phase) states and stops with a
	// certified LoopInfo when one repeats after at least one move.
	DetectLoops bool
	// StopAtStrongConnectivity ends the walk as soon as the realized graph
	// is strongly connected (used by the Theorem 6 experiments).
	StopAtStrongConnectivity bool
	// RecordSocialCost captures the social cost after every step into
	// Result.SocialCostSeries (index 0 is the starting profile's cost),
	// for convergence plots.
	RecordSocialCost bool
	// Journal, when non-nil, receives one "move" record per step that
	// rewired the graph (type move; data: step, node, from, to,
	// cost_before, cost_after). Callers emit their own summary record.
	Journal *obs.Journal

	// scratch, when non-nil, is the walk's evaluation scratch. Run creates
	// one per walk by default; RunEnsemble installs one per worker
	// goroutine so consecutive trials reuse traversal buffers and oracle
	// arenas.
	scratch *core.EvalScratch
}

func (o Options) maxSteps(n int) int {
	if o.MaxSteps > 0 {
		return o.MaxSteps
	}
	return 10 * n * n
}

// Result reports the walk outcome.
type Result struct {
	// Final is the profile when the walk ended.
	Final core.Profile
	// Steps is the number of best-response steps attempted.
	Steps int
	// Moves is the number of steps that changed the graph.
	Moves int
	// Converged is true when the walk reached a pure Nash equilibrium
	// (n consecutive steps with no move under a scheduler that eventually
	// schedules every node; for round-robin this is exactly a quiet round).
	Converged bool
	// ConnectivityStep is the first step count at which the realized graph
	// was strongly connected, or -1 if it never was.
	ConnectivityStep int
	// Loop is non-nil when DetectLoops found a certified cycle.
	Loop *LoopInfo
	// Trace holds per-step records when Options.Trace was set.
	Trace []StepRecord
	// SocialCostSeries holds the social cost before any step and after
	// every step, when Options.RecordSocialCost was set.
	SocialCostSeries []int64
	// Status classifies how the walk ended: complete (converged, looped,
	// or reached the requested connectivity stop), budget (MaxSteps
	// exhausted), or cancelled/deadline (Options.Ctx fired). Partial
	// results are returned with a nil error in every case.
	Status runctl.Status
}

// Run executes a best-response walk from the given starting profile. Each
// step, the scheduled node computes its best response and rewires if that
// strictly lowers its cost. The starting profile must be feasible.
func Run(spec core.Spec, start core.Profile, sched Scheduler, agg core.Aggregation, opts Options) (*Result, error) {
	sp := obs.Trace().StartSpan("dyn.walk")
	res, err := run(spec, start, sched, agg, opts)
	if res != nil {
		sp.EndInt("steps", int64(res.Steps))
	} else {
		sp.End()
	}
	return res, err
}

func run(spec core.Spec, start core.Profile, sched Scheduler, agg core.Aggregation, opts Options) (*Result, error) {
	if err := start.Validate(spec); err != nil {
		return nil, fmt.Errorf("dynamics: invalid start profile: %w", err)
	}
	n := spec.N()
	p := start.Clone()
	g := p.Realize(spec)
	res := &Result{ConnectivityStep: -1}
	es := opts.scratch
	if es == nil {
		es = core.NewEvalScratch()
	}
	es.Bind(spec, g, agg)

	type visit struct {
		step  int
		moves int
	}
	var seen map[string]visit
	var history []StepRecord // kept only when loop detection or tracing is on
	if opts.DetectLoops {
		seen = make(map[string]visit)
	}
	keepHistory := opts.DetectLoops || opts.Trace

	if opts.RecordSocialCost {
		res.SocialCostSeries = append(res.SocialCostSeries, core.SocialCostOnGraph(spec, g, agg))
	}
	if g.StronglyConnected() {
		res.ConnectivityStep = 0
		if opts.StopAtStrongConnectivity {
			res.Final = p
			return res, nil
		}
	}

	quiet := 0
	maxSteps := opts.maxSteps(n)
	reg := obs.Global()
	for step := 0; step < maxSteps; step++ {
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				res.Status = runctl.StatusFromError(err)
				break
			}
		}
		if opts.DetectLoops {
			key := fmt.Sprintf("%d|%s", sched.Phase(step), p.Key())
			if v, ok := seen[key]; ok && res.Moves > v.moves {
				res.Loop = buildLoop(history, v.step, step, p)
				break
			} else if !ok {
				seen[key] = visit{step: step, moves: res.Moves}
			}
		}
		u := sched.Next(step, spec, p, g)
		// The scratch serves u's oracle from cache when only u itself has
		// moved since it was built — in particular across the quiet no-move
		// steps that precede convergence detection.
		o := es.OracleFor(u)
		cur := o.Evaluate(p[u])
		best, bestCost := p[u], cur
		if cur > o.LowerBound() {
			var err error
			best, bestCost, err = bestWith(o, opts.BR)
			if err != nil {
				return nil, err
			}
		}
		rec := StepRecord{Step: step, Node: u, From: p[u], CostBefore: cur, CostAfter: cur}
		if bestCost < cur {
			rec.Moved = true
			rec.To = best
			rec.CostAfter = bestCost
			p[u] = best
			g.SetArcs(u, best)
			if !spec.UnitLengths() {
				relink(spec, g, u, best)
			}
			es.NoteRewire(u)
			res.Moves++
			reg.Inc(obs.MWalkMoves)
			opts.Journal.Event("move", map[string]any{
				"step":        step,
				"node":        u,
				"from":        strategyList(rec.From),
				"to":          strategyList(rec.To),
				"cost_before": rec.CostBefore,
				"cost_after":  rec.CostAfter,
			})
			quiet = 0
		} else {
			rec.To = p[u]
			quiet++
		}
		res.Steps++
		reg.Inc(obs.MWalkSteps)
		if keepHistory {
			history = append(history, rec)
		}
		if opts.RecordSocialCost {
			res.SocialCostSeries = append(res.SocialCostSeries, core.SocialCostOnGraph(spec, g, agg))
		}
		if rec.Moved && res.ConnectivityStep < 0 && g.StronglyConnected() {
			res.ConnectivityStep = res.Steps
			if opts.StopAtStrongConnectivity {
				break
			}
		}
		if quiet >= n {
			res.Converged = true
			break
		}
	}
	if res.Status.Complete() && !res.Converged && res.Loop == nil &&
		!(opts.StopAtStrongConnectivity && res.ConnectivityStep >= 0) {
		// The step budget ran out before any terminal condition.
		res.Status = runctl.StatusBudget
	}
	res.Final = p
	if opts.Trace {
		res.Trace = history
	}
	return res, nil
}

// strategyList normalizes a strategy for JSON journaling: the empty
// strategy serializes as [], never null.
func strategyList(s core.Strategy) []int {
	if s == nil {
		return []int{}
	}
	return s
}

// bestWith dispatches on the configured best-response method.
func bestWith(o *core.Oracle, opts core.Options) (core.Strategy, int64, error) {
	switch opts.Method {
	case 0, core.Exact:
		return o.BestExact(opts.EnumLimit)
	case core.Greedy:
		s, c := o.BestGreedy()
		return s, c, nil
	case core.GreedySwap:
		s, _ := o.BestGreedy()
		rounds := opts.SwapRounds
		if rounds == 0 {
			rounds = 50
		}
		s, c := o.ImproveBySwaps(s, rounds)
		return s, c, nil
	default:
		return nil, 0, fmt.Errorf("dynamics: unknown best-response method %d", opts.Method)
	}
}

// relink rewrites u's arcs with spec lengths (SetArcs uses unit lengths).
func relink(spec core.Spec, g *graph.Digraph, u int, s core.Strategy) {
	g.RemoveArcs(u)
	for _, v := range s {
		g.AddArc(u, v, spec.Length(u, v))
	}
}

// buildLoop extracts the certified cycle between two visits to the same
// (profile, phase) state.
func buildLoop(history []StepRecord, fromStep, toStep int, state core.Profile) *LoopInfo {
	li := &LoopInfo{Length: toStep - fromStep, Start: state.Clone()}
	for _, rec := range history[fromStep:toStep] {
		if rec.Moved {
			li.Moves = append(li.Moves, rec)
		}
	}
	return li
}
