package dynamics

import (
	"math/rand"
	"testing"

	"bbc/internal/core"
)

// TestLemma9ReachMonotone reproduces Lemma 9: when node u executes a best
// response step, u's reach cannot decrease, and every other node's reach
// either stays the same or is at least u's new reach.
func TestLemma9ReachMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(5)
		k := 1 + rng.Intn(2)
		spec := core.MustUniform(n, k)
		p := RandomStart(rng, n, k)
		// Sparsify so disconnection is common (the lemma is about
		// non-strongly-connected graphs).
		for u := 0; u < n; u++ {
			if rng.Intn(2) == 0 {
				p[u] = core.Strategy{}
			}
		}
		g := p.Realize(spec)
		if g.StronglyConnected() {
			continue
		}
		reachBefore := g.Reach()
		u := rng.Intn(n)
		o := core.NewOracle(spec, g, u, core.SumDistances)
		best, bestCost, err := o.BestExact(0)
		if err != nil {
			t.Fatal(err)
		}
		if bestCost >= o.Evaluate(p[u]) {
			continue // no move
		}
		q := p.Clone()
		q[u] = best
		after := q.Realize(spec).Reach()
		if after[u] < reachBefore[u] {
			t.Fatalf("trial %d: mover's reach decreased %d -> %d", trial, reachBefore[u], after[u])
		}
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			if after[v] != reachBefore[v] && after[v] < after[u] {
				t.Fatalf("trial %d: node %d reach changed to %d < mover's new reach %d",
					trial, v, after[v], after[u])
			}
		}
	}
}

// TestLemma10MinReachIncreasesPerRound reproduces Lemma 10: while the
// graph is not strongly connected, each full round-robin round increases
// the minimum reach by at least one.
func TestLemma10MinReachIncreasesPerRound(t *testing.T) {
	rng := rand.New(rand.NewSource(182))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(4)
		k := 1 + rng.Intn(2)
		spec := core.MustUniform(n, k)
		p := RandomStart(rng, n, k)
		for u := 0; u < n; u++ {
			if rng.Intn(3) == 0 {
				p[u] = core.Strategy{}
			}
		}
		for round := 0; round < n; round++ {
			g := p.Realize(spec)
			if g.StronglyConnected() {
				break
			}
			minBefore := minReach(g.Reach())
			// One full round of best responses.
			for u := 0; u < n; u++ {
				gg := p.Realize(spec)
				o := core.NewOracle(spec, gg, u, core.SumDistances)
				best, bestCost, err := o.BestExact(0)
				if err != nil {
					t.Fatal(err)
				}
				if bestCost < o.Evaluate(p[u]) {
					p[u] = best
				}
			}
			minAfter := minReach(p.Realize(spec).Reach())
			if minAfter < minBefore+1 {
				t.Fatalf("trial %d round %d: min reach %d -> %d (Lemma 10 violated)",
					trial, round, minBefore, minAfter)
			}
		}
	}
}

func minReach(r []int) int {
	m := r[0]
	for _, x := range r[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
