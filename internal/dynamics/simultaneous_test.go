package dynamics

import (
	"math/rand"
	"testing"

	"bbc/internal/core"
)

func TestRunSimultaneousStableStart(t *testing.T) {
	spec := core.MustUniform(6, 1)
	res, err := RunSimultaneous(spec, ringProfile(6), core.SumDistances, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Rounds != 1 {
		t.Fatalf("stable start should converge in one round: %+v", res)
	}
	if !res.Final.Equal(ringProfile(6)) {
		t.Fatal("stable start changed")
	}
}

func TestRunSimultaneousInvalidStart(t *testing.T) {
	spec := core.MustUniform(4, 1)
	if _, err := RunSimultaneous(spec, core.Profile{{0}, {}, {}, {}}, core.SumDistances, 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunSimultaneousConvergedIsEquilibrium(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	spec := core.MustUniform(5, 1)
	converged := 0
	for trial := 0; trial < 20; trial++ {
		res, err := RunSimultaneous(spec, RandomStart(rng, 5, 1), core.SumDistances, 500)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			continue
		}
		converged++
		stable, err := core.IsEquilibrium(spec, res.Final, core.SumDistances)
		if err != nil {
			t.Fatal(err)
		}
		if !stable {
			t.Fatalf("trial %d: converged to non-equilibrium %v", trial, res.Final)
		}
	}
	if converged == 0 {
		t.Skip("no synchronous run converged in this sample")
	}
}

func TestRunSimultaneousOscillatesFromEmpty(t *testing.T) {
	// From the empty profile all players face the same view and make the
	// same kind of move; synchronous updates commonly oscillate or cycle
	// where the sequential walk converges. Whatever happens, it must be
	// classified: converged, looped, or exhausted — and loops must have
	// positive length.
	spec := core.MustUniform(6, 1)
	res, err := RunSimultaneous(spec, core.NewEmptyProfile(6), core.SumDistances, 300)
	if err != nil {
		t.Fatal(err)
	}
	if res.Loop != nil && res.Loop.Length <= 0 {
		t.Fatalf("loop with non-positive length: %+v", res.Loop)
	}
	if res.Converged && res.Loop != nil {
		t.Fatal("cannot both converge and loop")
	}
	t.Logf("synchronous from empty (6,1): converged=%v loop=%v rounds=%d",
		res.Converged, res.Loop != nil, res.Rounds)
}

func TestRunSimultaneousDeterministic(t *testing.T) {
	spec := core.MustUniform(6, 2)
	rng := rand.New(rand.NewSource(162))
	start := RandomStart(rng, 6, 2)
	a, err := RunSimultaneous(spec, start, core.SumDistances, 200)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSimultaneous(spec, start, core.SumDistances, 200)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || a.Converged != b.Converged || !a.Final.Equal(b.Final) {
		t.Fatal("synchronous dynamics must be deterministic")
	}
}

func TestRunSimultaneousVsSequential(t *testing.T) {
	// Statistical comparison: over random starts, sequential round-robin
	// should converge at least as often as synchronous updates.
	spec := core.MustUniform(5, 1)
	seqConv, simConv := 0, 0
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		start := RandomStart(rng, 5, 1)
		seq, err := Run(spec, start, NewRoundRobin(5), core.SumDistances, Options{MaxSteps: 500})
		if err != nil {
			t.Fatal(err)
		}
		if seq.Converged {
			seqConv++
		}
		sim, err := RunSimultaneous(spec, start, core.SumDistances, 500)
		if err != nil {
			t.Fatal(err)
		}
		if sim.Converged {
			simConv++
		}
	}
	t.Logf("(5,1) over 15 random starts: sequential converged %d, synchronous %d", seqConv, simConv)
	if simConv > seqConv {
		t.Fatalf("synchronous converged more often (%d) than sequential (%d); unexpected for this game",
			simConv, seqConv)
	}
}
