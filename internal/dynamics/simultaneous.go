package dynamics

import (
	"context"
	"fmt"

	"bbc/internal/core"
	"bbc/internal/obs"
	"bbc/internal/runctl"
)

// SimultaneousResult reports a synchronous best-response run, where every
// unstable player rewires at once each round. The paper assumes one mover
// per step "for convenience"; the synchronous variant models uncoordinated
// systems (every peer re-optimizes on the same timer) and oscillates in
// situations the sequential walk would resolve.
type SimultaneousResult struct {
	// Final is the profile when the run ended.
	Final core.Profile
	// Rounds is the number of synchronous rounds executed.
	Rounds int
	// Converged is true when a round changed nothing (a pure Nash
	// equilibrium, since every player best-responds).
	Converged bool
	// Loop is non-nil when a previously seen profile recurred: the
	// synchronous dynamics entered a deterministic cycle of the given
	// length (in rounds).
	Loop *SimultaneousLoop
	// Status classifies how the run ended: complete (converged or looped),
	// budget (MaxRounds exhausted), or cancelled/deadline (SimOptions.Ctx
	// fired mid-run, partial result returned with a nil error).
	Status runctl.Status
}

// SimultaneousLoop certifies a cycle of the synchronous dynamics.
type SimultaneousLoop struct {
	// Length is the cycle length in rounds.
	Length int
	// Start is the first profile on the cycle.
	Start core.Profile
}

// SimOptions tunes RunSimultaneousOpts.
type SimOptions struct {
	// Ctx, when non-nil, is checked before every round; a cancel or
	// deadline ends the run with a partial result.
	Ctx context.Context
	// MaxRounds bounds the run; 0 means 1000.
	MaxRounds int
	// Journal, when non-nil, receives one "round" record per synchronous
	// round (data: round, movers).
	Journal *obs.Journal
}

// RunSimultaneous executes synchronous best-response dynamics: each round,
// every player computes its exact best response against the *current*
// profile, and all strictly-improving players switch simultaneously. The
// dynamics are deterministic, so the run either reaches an equilibrium or
// enters a cycle within the number of distinct profiles; maxRounds bounds
// the run (0 means 1000).
func RunSimultaneous(spec core.Spec, start core.Profile, agg core.Aggregation, maxRounds int) (*SimultaneousResult, error) {
	return RunSimultaneousOpts(spec, start, agg, SimOptions{MaxRounds: maxRounds})
}

// RunSimultaneousOpts is RunSimultaneous with observability hooks.
func RunSimultaneousOpts(spec core.Spec, start core.Profile, agg core.Aggregation, opts SimOptions) (*SimultaneousResult, error) {
	if err := start.Validate(spec); err != nil {
		return nil, fmt.Errorf("dynamics: invalid start profile: %w", err)
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 1000
	}
	n := spec.N()
	p := start.Clone()
	seen := map[string]int{p.Key(): 0}
	res := &SimultaneousResult{}
	reg := obs.Global()
	es := core.NewEvalScratch()
	for round := 1; round <= maxRounds; round++ {
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				res.Status = runctl.StatusFromError(err)
				res.Final = p
				return res, nil
			}
		}
		reg.Inc(obs.MSimRounds)
		spRound := obs.Trace().StartSpan("dyn.round")
		g := p.Realize(spec)
		// Each round realizes a fresh graph, so Bind invalidates the oracle
		// cache while the scratch's buffers carry over between rounds.
		es.Bind(spec, g, agg)
		next := p.Clone()
		moved := false
		movers := 0
		for u := 0; u < n; u++ {
			o := es.OracleFor(u)
			cur := o.Evaluate(p[u])
			if cur == o.LowerBound() {
				continue
			}
			best, bestCost, err := o.BestExact(0)
			if err != nil {
				return nil, err
			}
			if bestCost < cur {
				next[u] = best
				moved = true
				movers++
			}
		}
		res.Rounds = round
		spRound.EndInt("movers", int64(movers))
		opts.Journal.Event("round", map[string]any{"round": round, "movers": movers})
		if !moved {
			res.Converged = true
			res.Final = p
			return res, nil
		}
		p = next
		key := p.Key()
		if first, ok := seen[key]; ok {
			res.Loop = &SimultaneousLoop{Length: round - first, Start: p.Clone()}
			res.Final = p
			return res, nil
		}
		seen[key] = round
	}
	res.Final = p
	res.Status = runctl.StatusBudget // MaxRounds ran out without a verdict
	return res, nil
}
