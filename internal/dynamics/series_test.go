package dynamics

import (
	"testing"

	"bbc/internal/core"
)

func TestSocialCostSeriesRecorded(t *testing.T) {
	spec := core.MustUniform(6, 1)
	res, err := Run(spec, core.NewEmptyProfile(6), NewRoundRobin(6), core.SumDistances,
		Options{RecordSocialCost: true, MaxSteps: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SocialCostSeries) != res.Steps+1 {
		t.Fatalf("series length %d, want steps+1 = %d", len(res.SocialCostSeries), res.Steps+1)
	}
	// The empty start costs n·(n-1)·M; the series must start there and
	// drop sharply.
	want := int64(6*5) * spec.Penalty()
	if res.SocialCostSeries[0] != want {
		t.Fatalf("series[0] = %d, want %d", res.SocialCostSeries[0], want)
	}
	last := res.SocialCostSeries[len(res.SocialCostSeries)-1]
	if last >= want {
		t.Fatal("social cost never improved")
	}
	// The final series value must equal the final profile's cost.
	if got := core.SocialCost(spec, res.Final, core.SumDistances); got != last {
		t.Fatalf("final series value %d != final profile cost %d", last, got)
	}
}

func TestSocialCostSeriesOffByDefault(t *testing.T) {
	spec := core.MustUniform(4, 1)
	res, err := Run(spec, core.NewEmptyProfile(4), NewRoundRobin(4), core.SumDistances, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SocialCostSeries != nil {
		t.Fatal("series should be nil when not requested")
	}
}
