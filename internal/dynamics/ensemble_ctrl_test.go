package dynamics

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"bbc/internal/core"
	"bbc/internal/runctl"
)

// TestRunEnsembleCancelAndResume interrupts an ensemble mid-run and
// resumes it; the combined stats must equal the uninterrupted run
// exactly, because per-trial determinism comes from Seed+trial and the
// checkpoint records complete trials only.
func TestRunEnsembleCancelAndResume(t *testing.T) {
	spec := core.MustUniform(6, 1)
	cfg := EnsembleConfig{
		N: 6, K: 1, Trials: 12, Seed: 7,
		Walk:    Options{MaxSteps: 300, DetectLoops: true},
		Workers: 2,
	}
	ref, err := RunEnsemble(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Status != runctl.StatusComplete || ref.Completed != cfg.Trials {
		t.Fatalf("reference ensemble incomplete: %+v", ref)
	}

	// Cancel after the first completed trial's checkpoint.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ccfg := cfg
	ccfg.Ctx = ctx
	ccfg.OnCheckpoint = func(cp *EnsembleCheckpoint) { cancel() }
	partial, err := RunEnsemble(spec, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if partial.Status != runctl.StatusCancelled {
		t.Fatalf("want cancelled ensemble, got %v", partial.Status)
	}
	if partial.Completed == 0 || partial.Completed >= cfg.Trials {
		t.Fatalf("implausible partial completion: %d of %d", partial.Completed, cfg.Trials)
	}
	if partial.Resume == nil {
		t.Fatal("cancelled ensemble carries no resume state")
	}

	// Round-trip the checkpoint through its persistence envelope, as the
	// CLIs do, then resume.
	fp := cfg.Fingerprint()
	env, err := runctl.NewCheckpoint("ensemble", fp, partial.Status, nil, partial.Resume)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	var loaded runctl.Checkpoint
	if err := json.Unmarshal(raw, &loaded); err != nil {
		t.Fatal(err)
	}
	var cp EnsembleCheckpoint
	if err := loaded.Decode("ensemble", fp, &cp); err != nil {
		t.Fatal(err)
	}
	rcfg := cfg
	rcfg.Resume = &cp
	rest, err := RunEnsemble(spec, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if rest.Status != runctl.StatusComplete || rest.Completed != cfg.Trials {
		t.Fatalf("resumed ensemble incomplete: %+v", rest.Status)
	}
	ref.Resume, rest.Resume = nil, nil
	if !reflect.DeepEqual(ref, rest) {
		t.Errorf("resumed ensemble stats diverge from uninterrupted run:\n got %+v\nwant %+v", rest, ref)
	}
}
