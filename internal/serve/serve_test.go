package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"bbc/internal/core"
	"bbc/internal/obs"
	"bbc/internal/runctl"
)

// uniformGame returns the wire spec document for a uniform BBC game.
func uniformGame(n, k int) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(`{"kind":"uniform","n":%d,"k":%d}`, n, k))
}

// newTestServer builds a server with a private registry and registers a
// drain on cleanup so worker goroutines never outlive the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg.Reg = reg
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Drain() })
	return s, reg
}

// waitState polls until the job reaches the wanted state.
func waitState(t *testing.T, s *Server, id, state string) *View {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := s.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared while waiting for %q", id, state)
		}
		if v.State == state {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %q", id, state)
	return nil
}

func TestSubmitValidation(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1})
	cases := []Request{
		{Mode: "levitate"},
		{Mode: "enumerate"}, // missing game
		{Mode: "enumerate", Game: uniformGame(3, 1), Agg: "median"},
		{Mode: "enumerate", Game: uniformGame(3, 1), Workers: -1},
		{Mode: "walk", Game: uniformGame(3, 1), Sched: "alphabetical"},
		{Mode: "walk", Game: uniformGame(3, 1), Start: "sideways"},
		{Mode: "suite", Only: []string{"E999"}},
		{Mode: "enumerate", Game: uniformGame(3, 1), TimeoutMS: -5},
		{Mode: "enumerate", Game: json.RawMessage(`{"kind":"septagonal"}`)},
	}
	for i, req := range cases {
		if _, _, err := s.Submit(&req); err == nil {
			t.Errorf("case %d (%+v): invalid request accepted", i, req)
		}
	}
}

// TestConcurrentDuplicateSubmissionsDedup is the ISSUE's dedup contract:
// N concurrent identical submissions share one job and the counter
// registry shows a single underlying enumeration.
func TestConcurrentDuplicateSubmissionsDedup(t *testing.T) {
	s, reg := newTestServer(t, Config{Workers: 2})
	// core reads the global registry; install ours so profiles_checked
	// proves exactly one scan ran.
	prev := obs.SetGlobal(reg)
	defer obs.SetGlobal(prev)

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"mode":"enumerate","game":{"kind":"uniform","n":4,"k":2}}`
	const clients = 8
	type reply struct {
		code int
		resp submitResponse
	}
	replies := make([]reply, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer res.Body.Close()
			replies[i].code = res.StatusCode
			if err := json.NewDecoder(res.Body).Decode(&replies[i].resp); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	accepted, deduped := 0, 0
	ids := make(map[string]bool)
	for _, r := range replies {
		switch r.code {
		case http.StatusAccepted:
			accepted++
		case http.StatusOK:
			deduped++
			if !r.resp.Deduped {
				t.Error("200 reply without deduped flag")
			}
		default:
			t.Errorf("unexpected status %d", r.code)
		}
		ids[r.resp.Job.ID] = true
	}
	if accepted != 1 || deduped != clients-1 {
		t.Errorf("accepted=%d deduped=%d, want 1 and %d", accepted, deduped, clients-1)
	}
	if len(ids) != 1 {
		t.Errorf("submissions spread over %d job ids, want 1: %v", len(ids), ids)
	}

	var id string
	for k := range ids {
		id = k
	}
	v := waitState(t, s, id, StateDone)
	if !v.Complete || v.RunStatus != "complete" {
		t.Fatalf("job ended complete=%t status=%q error=%q", v.Complete, v.RunStatus, v.Error)
	}

	// One solve, one scan: uniform(4,2) has 7^4 = 2401 profiles.
	if got := reg.Get(obs.MServeSolves); got != 1 {
		t.Errorf("serve.solves = %d, want 1", got)
	}
	if got := reg.Get(obs.MServeSubmitted); got != clients {
		t.Errorf("serve.jobs_submitted = %d, want %d", got, clients)
	}
	if got := reg.Get(obs.MServeDeduped); got != clients-1 {
		t.Errorf("serve.jobs_deduped = %d, want %d", got, clients-1)
	}
	if got := reg.Get(obs.MProfilesChecked); got != 2401 {
		t.Errorf("core.profiles_checked = %d, want 2401 (a single enumeration)", got)
	}

	// The served result matches a direct library scan.
	var er EnumResult
	if err := json.Unmarshal(v.Result, &er); err != nil {
		t.Fatal(err)
	}
	spec := core.MustUniform(4, 2)
	ss, err := core.FullSpace(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.EnumeratePureNEOpts(spec, core.SumDistances, ss, core.EnumConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if er.Checked != ref.Checked || len(er.Equilibria) != len(ref.Equilibria) {
		t.Errorf("served scan (checked=%d, ne=%d) differs from direct scan (checked=%d, ne=%d)",
			er.Checked, len(er.Equilibria), ref.Checked, len(ref.Equilibria))
	}

	// A submission after completion still dedups against the cached result.
	view, outcome, err := s.Submit(&Request{Mode: "enumerate", Game: uniformGame(4, 2)})
	if err != nil || outcome != Deduped || view.ID != id {
		t.Errorf("post-completion submission: outcome=%v id=%s err=%v, want dedup to %s", outcome, view.ID, err, id)
	}
	if got := reg.Get(obs.MServeSolves); got != 1 {
		t.Errorf("serve.solves after cached dedup = %d, want 1", got)
	}
}

// submitSlow submits an enumeration big enough (16^6 ≈ 16.7M profiles)
// that it is reliably still running when the test interrupts it.
func submitSlow(t *testing.T, s *Server, timeoutMS int64) *View {
	t.Helper()
	v, outcome, err := s.Submit(&Request{Mode: "enumerate", Game: uniformGame(6, 2), TimeoutMS: timeoutMS})
	if err != nil || outcome != Accepted {
		t.Fatalf("submit slow job: outcome=%v err=%v", outcome, err)
	}
	return v
}

func TestCancelRunningJobCheckpoints(t *testing.T) {
	dir := t.TempDir()
	s, _ := newTestServer(t, Config{Workers: 1, DataDir: dir})
	v := submitSlow(t, s, 0)
	waitState(t, s, v.ID, StateRunning)

	if _, ok := s.Cancel(v.ID); !ok {
		t.Fatal("cancel: unknown id")
	}
	final := waitState(t, s, v.ID, StateDone)
	if final.RunStatus != "cancelled" || final.Complete {
		t.Fatalf("cancelled job: status=%q complete=%t", final.RunStatus, final.Complete)
	}
	if !final.Resumable || final.Checkpoint == "" {
		t.Fatalf("cancelled job not resumable: %+v", final)
	}
	// The flushed checkpoint is a well-formed enumeration snapshot.
	env, _, err := (&runctl.Store{Path: final.Checkpoint}).Load()
	if err != nil {
		t.Fatal(err)
	}
	var cp core.EnumCheckpoint
	if err := env.Decode("enumeration", env.Fingerprint, &cp); err != nil {
		t.Fatal(err)
	}
	if env.Status != runctl.StatusCancelled {
		t.Errorf("checkpoint status %q, want cancelled", env.Status)
	}
	// The per-job journal closed with a terminal run_status record.
	assertFinalRunStatus(t, filepath.Join(dir, v.ID+".jsonl"), "cancelled")
}

func TestJobDeadline(t *testing.T) {
	dir := t.TempDir()
	s, _ := newTestServer(t, Config{Workers: 1, DataDir: dir})
	v := submitSlow(t, s, 100)
	final, ok := s.Wait(context.Background(), v.ID)
	if !ok {
		t.Fatal("wait: unknown id")
	}
	if final.RunStatus != "deadline" || final.Complete {
		t.Fatalf("deadline job: status=%q complete=%t error=%q", final.RunStatus, final.Complete, final.Error)
	}
	if !final.Resumable {
		t.Fatal("deadline-truncated job should be resumable")
	}
}

func TestQueueFullRefused(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1, QueueSize: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	v := submitSlow(t, s, 0)
	waitState(t, s, v.ID, StateRunning) // queue is now empty

	if _, outcome, err := s.Submit(&Request{Mode: "enumerate", Game: uniformGame(3, 1)}); err != nil || outcome != Accepted {
		t.Fatalf("queued submit: outcome=%v err=%v", outcome, err)
	}
	res, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"mode":"enumerate","game":{"kind":"uniform","n":4,"k":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429", res.StatusCode)
	}
	if res.Header.Get("Retry-After") == "" {
		t.Error("429 reply missing Retry-After")
	}
}

// TestDrainAndRestartResume is the ISSUE's drain contract end to end:
// SIGTERM-equivalent drain leaves every accepted job either completed or
// resumable, and a restarted server picks the interrupted solve up from
// its checkpoint instead of rescanning.
func TestDrainAndRestartResume(t *testing.T) {
	dir := t.TempDir()
	reg1 := obs.NewRegistry()
	prev := obs.SetGlobal(reg1)
	defer obs.SetGlobal(prev)

	s1, err := New(Config{Workers: 1, DataDir: dir, Reg: reg1})
	if err != nil {
		t.Fatal(err)
	}
	// The in-flight solve: uniform(5,2), 11^5 = 161051 profiles — big
	// enough to interrupt, small enough for the resumed run to finish.
	slow, outcome, err := s1.Submit(&Request{Mode: "enumerate", Game: uniformGame(5, 2)})
	if err != nil || outcome != Accepted {
		t.Fatalf("submit: outcome=%v err=%v", outcome, err)
	}
	// Two distinct jobs stuck behind it in the queue.
	q1, _, err := s1.Submit(&Request{Mode: "enumerate", Game: uniformGame(3, 1)})
	if err != nil {
		t.Fatal(err)
	}
	q2, _, err := s1.Submit(&Request{Mode: "walk", Game: uniformGame(4, 1)})
	if err != nil {
		t.Fatal(err)
	}

	waitState(t, s1, slow.ID, StateRunning)
	// Let the scan make observable progress so the checkpoint is not empty.
	for deadline := time.Now().Add(30 * time.Second); reg1.Get(obs.MProfilesChecked) < 1000; {
		if time.Now().After(deadline) {
			t.Fatal("scan never reached 1000 profiles")
		}
		time.Sleep(2 * time.Millisecond)
	}

	sum := s1.Drain()
	if sum.Cancelled != 1 || sum.Rejected != 2 {
		t.Fatalf("drain summary %+v, want 1 cancelled / 2 rejected", sum)
	}
	if !s1.Draining() {
		t.Error("Draining() false after drain")
	}

	// Every accepted job is terminal: the in-flight one resumable, the
	// queued ones rejected with a retry hint.
	sv, _ := s1.Get(slow.ID)
	if sv.State != StateDone || sv.RunStatus != "cancelled" || !sv.Resumable || sv.Checkpoint == "" {
		t.Fatalf("drained in-flight job: %+v", sv)
	}
	for _, id := range []string{q1.ID, q2.ID} {
		qv, _ := s1.Get(id)
		if qv.State != StateRejected || qv.Reason != "draining" || qv.RetryAfterMS <= 0 {
			t.Fatalf("drained queued job %s: %+v", id, qv)
		}
	}
	// New submissions are refused outright.
	if _, outcome, err := s1.Submit(&Request{Mode: "enumerate", Game: uniformGame(4, 1)}); err != nil || outcome != Refused {
		t.Fatalf("submit during drain: outcome=%v err=%v, want refusal", outcome, err)
	}
	ckptChecked := loadCheckpointChecked(t, sv.Checkpoint)
	if ckptChecked == 0 {
		t.Fatal("drained checkpoint recorded zero progress")
	}

	// "Restart": a fresh server over the same data dir resumes the solve.
	reg2 := obs.NewRegistry()
	obs.SetGlobal(reg2)
	s2, err := New(Config{Workers: 1, DataDir: dir, Reg: reg2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()
	rv, outcome, err := s2.Submit(&Request{Mode: "enumerate", Game: uniformGame(5, 2)})
	if err != nil || outcome != Accepted {
		t.Fatalf("resubmit: outcome=%v err=%v", outcome, err)
	}
	if rv.Key != sv.Key {
		t.Fatalf("resubmission key %s differs from original %s", rv.Key, sv.Key)
	}
	final, ok := s2.Wait(context.Background(), rv.ID)
	if !ok || !final.Complete || final.RunStatus != "complete" {
		t.Fatalf("resumed job: %+v", final)
	}
	if got := reg2.Get(obs.MServeResumed); got != 1 {
		t.Errorf("serve.jobs_resumed = %d, want 1", got)
	}

	var er EnumResult
	if err := json.Unmarshal(final.Result, &er); err != nil {
		t.Fatal(err)
	}
	if er.Checked != er.SpaceSize || er.SpaceSize != 161051 {
		t.Errorf("resumed scan checked %d of %d profiles", er.Checked, er.SpaceSize)
	}
	// The restart actually reused the checkpoint: the second process
	// scanned only the remainder.
	if got := reg2.Get(obs.MProfilesChecked); got != int64(er.SpaceSize-ckptChecked) {
		t.Errorf("resumed process checked %d profiles, want %d (%d minus checkpointed %d)",
			got, er.SpaceSize-ckptChecked, er.SpaceSize, ckptChecked)
	}
	// And the merged result matches an uninterrupted library scan.
	spec := core.MustUniform(5, 2)
	ss, err := core.FullSpace(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.EnumeratePureNEOpts(spec, core.SumDistances, ss, core.EnumConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(er.Equilibria) != len(ref.Equilibria) {
		t.Errorf("resumed scan found %d equilibria, direct scan %d", len(er.Equilibria), len(ref.Equilibria))
	}
	// A completed solve removes its snapshot generations.
	if _, err := os.Stat(sv.Checkpoint); !os.IsNotExist(err) {
		t.Errorf("checkpoint %s survived solve completion (err=%v)", sv.Checkpoint, err)
	}
}

func TestWalkAndSuiteJobs(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2})
	wv, outcome, err := s.Submit(&Request{Mode: "walk", Game: uniformGame(6, 1), Sched: "round-robin"})
	if err != nil || outcome != Accepted {
		t.Fatalf("walk submit: outcome=%v err=%v", outcome, err)
	}
	ev, outcome, err := s.Submit(&Request{Mode: "suite", Only: []string{"E1"}, Quick: true})
	if err != nil || outcome != Accepted {
		t.Fatalf("suite submit: outcome=%v err=%v", outcome, err)
	}

	wf, _ := s.Wait(context.Background(), wv.ID)
	if !wf.Complete {
		t.Fatalf("walk job: %+v", wf)
	}
	var wr WalkResult
	if err := json.Unmarshal(wf.Result, &wr); err != nil {
		t.Fatal(err)
	}
	if wr.Outcome == "" || wr.N != 6 {
		t.Errorf("implausible walk result: %+v", wr)
	}

	ef, _ := s.Wait(context.Background(), ev.ID)
	if !ef.Complete {
		t.Fatalf("suite job: %+v", ef)
	}
	var sr SuiteResult
	if err := json.Unmarshal(ef.Result, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Reports) != 1 || sr.Reports[0].ID != "E1" || !sr.Reports[0].Pass {
		t.Errorf("suite result: %+v", sr)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		res, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(res.Body)
		return res.StatusCode, buf.Bytes()
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz: %d %s", code, body)
	}
	if code, body := get("/readyz"); code != 200 || !strings.Contains(string(body), "ready") {
		t.Errorf("readyz: %d %s", code, body)
	}
	if code, _ := get("/v1/jobs/job-999999"); code != 404 {
		t.Errorf("unknown job GET: %d, want 404", code)
	}
	res, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 400 {
		t.Errorf("malformed submit: %d, want 400", res.StatusCode)
	}

	// Submit, poll, list, metrics.
	res, err = http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"mode":"enumerate","game":{"kind":"uniform","n":3,"k":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	if err := json.NewDecoder(res.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	waitState(t, s, sub.Job.ID, StateDone)

	if code, body := get("/v1/jobs/" + sub.Job.ID); code != 200 || !strings.Contains(string(body), `"run_status": "complete"`) {
		t.Errorf("job GET: %d %s", code, body)
	}
	if code, body := get("/v1/jobs"); code != 200 || !strings.Contains(string(body), sub.Job.ID) {
		t.Errorf("job list: %d %s", code, body)
	}
	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.Counters["serve.solves"] != 1 || m.Jobs.Done != 1 || m.Draining {
		t.Errorf("metrics document: %+v", m)
	}
	if m.Pool.Workers != 1 || m.Pool.QueueCapacity == 0 || m.Pool.InFlight != 0 {
		t.Errorf("pool gauges: %+v", m.Pool)
	}

	// Drain flips readyz and submissions to 503; healthz is liveness and
	// stays 200 — the draining process is alive, just not accepting work.
	s.Drain()
	if code, body := get("/healthz"); code != 200 || !strings.Contains(string(body), `"draining": true`) {
		t.Errorf("healthz during drain: %d %s, want 200 + draining marker", code, body)
	}
	readyRes, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	readyRes.Body.Close()
	if readyRes.StatusCode != 503 {
		t.Errorf("readyz during drain: %d, want 503", readyRes.StatusCode)
	}
	if readyRes.Header.Get("Retry-After") == "" {
		t.Error("draining readyz reply missing Retry-After")
	}
	res, err = http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"mode":"enumerate","game":{"kind":"uniform","n":4,"k":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 503 {
		t.Errorf("submit during drain: %d, want 503", res.StatusCode)
	}
	if res.Header.Get("Retry-After") == "" {
		t.Error("503 reply missing Retry-After")
	}
}

// TestMetricsNegotiationAndBuildInfo pins the /metrics representations
// — JSON by default, Prometheus text exposition for scrapers — and the
// /buildinfo identity document.
func TestMetricsNegotiationAndBuildInfo(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	v, outcome, err := s.Submit(&Request{Mode: "enumerate", Game: uniformGame(3, 1)})
	if err != nil || outcome != Accepted {
		t.Fatalf("submit: outcome=%v err=%v", outcome, err)
	}
	waitState(t, s, v.ID, StateDone)

	// One completed HTTP request before the snapshot, so the
	// request-duration histogram has something to show (a request's own
	// wall time is observed after its response is written).
	if res, err := http.Get(ts.URL + "/healthz"); err == nil {
		res.Body.Close()
	}

	// Default (no Accept) stays JSON — existing clients depend on it.
	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	if err := json.NewDecoder(res.Body).Decode(&m); err != nil {
		t.Fatalf("default /metrics is not JSON: %v", err)
	}
	res.Body.Close()
	if m.RunID != obs.RunID() || m.Jobs.Done != 1 || m.Runtime.Goroutines <= 0 {
		t.Errorf("metrics document: %+v", m)
	}
	if m.Histograms["serve.queue_wait_ns"].Count != 1 {
		t.Errorf("queue-wait histogram count = %d, want 1", m.Histograms["serve.queue_wait_ns"].Count)
	}
	if m.Histograms["serve.http_request_ns"].Count == 0 {
		t.Error("http-request histogram empty after requests were served")
	}

	// A Prometheus scraper's Accept header selects text exposition.
	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4;q=0.5,*/*;q=0.1")
	res, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(res.Body)
	res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Errorf("prometheus Content-Type = %q", ct)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE bbc_serve_jobs_completed_total counter",
		"# TYPE bbc_serve_queue_wait_seconds histogram",
		`bbc_serve_queue_wait_seconds_bucket{le="+Inf"} 1`,
		"bbc_jobs_done 1",
		"bbc_goroutines ",
		"bbc_uptime_seconds ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
	// ?format=prometheus works without an Accept header (curl-friendly),
	// and ?format=json forces JSON even with a scraper Accept.
	if res, err = http.Get(ts.URL + "/metrics?format=prometheus"); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Errorf("?format=prometheus Content-Type = %q", ct)
	}

	res, err = http.Get(ts.URL + "/buildinfo")
	if err != nil {
		t.Fatal(err)
	}
	var bi BuildInfo
	if err := json.NewDecoder(res.Body).Decode(&bi); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if bi.RunID != obs.RunID() || !strings.HasPrefix(bi.GoVersion, "go") || bi.PID <= 0 {
		t.Errorf("buildinfo document: %+v", bi)
	}
}

// loadCheckpointChecked loads an enumeration checkpoint and returns its
// cumulative checked count.
func loadCheckpointChecked(t *testing.T, path string) uint64 {
	t.Helper()
	env, _, err := (&runctl.Store{Path: path}).Load()
	if err != nil {
		t.Fatal(err)
	}
	var cp core.EnumCheckpoint
	if err := env.Decode("enumeration", env.Fingerprint, &cp); err != nil {
		t.Fatal(err)
	}
	return cp.Checked
}

// assertFinalRunStatus checks a JSONL journal's last record is a
// run_status with the wanted status.
func assertFinalRunStatus(t *testing.T, path, status string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	last := lines[len(lines)-1]
	var rec obs.Record
	if err := json.Unmarshal(last, &rec); err != nil {
		t.Fatalf("parse journal tail %q: %v", last, err)
	}
	if rec.Type != "run_status" || rec.Data["status"] != status {
		t.Errorf("journal tail = %s, want run_status %q", last, status)
	}
}
