package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"bbc/internal/obs"
)

// TestAdmissionThrottle pins the token-bucket contract: a client over
// its sustained rate is refused with reason "throttled" and a retry
// hint, tokens re-accrue with time, and deduplicated submissions never
// spend a token.
func TestAdmissionThrottle(t *testing.T) {
	s, reg := newTestServer(t, Config{Workers: 1, Admission: AdmissionConfig{Rate: 1, Burst: 1}})
	now := time.Now()
	s.adm.now = func() time.Time { return now }

	v, outcome, _, err := s.SubmitAs(&Request{Mode: "enumerate", Game: uniformGame(3, 1)}, "client-a")
	if err != nil || outcome != Accepted {
		t.Fatalf("first submit: outcome=%v err=%v", outcome, err)
	}
	_, outcome, refusal, err := s.SubmitAs(&Request{Mode: "enumerate", Game: uniformGame(4, 1)}, "client-a")
	if err != nil || outcome != Refused || refusal == nil || refusal.Reason != "throttled" {
		t.Fatalf("over-rate submit: outcome=%v refusal=%+v err=%v", outcome, refusal, err)
	}
	if refusal.RetryAfter <= 0 {
		t.Errorf("throttle refusal carries no retry hint: %+v", refusal)
	}
	if got := reg.Get(obs.MServeThrottled); got != 1 {
		t.Errorf("admission.throttled = %d, want 1", got)
	}

	// A different client has its own bucket.
	if _, outcome, _, err := s.SubmitAs(&Request{Mode: "enumerate", Game: uniformGame(4, 1)}, "client-b"); err != nil || outcome != Accepted {
		t.Fatalf("other client: outcome=%v err=%v", outcome, err)
	}

	// Dedup hits are free: resubmitting the first game while dry succeeds.
	waitState(t, s, v.ID, StateDone)
	if _, outcome, _, err := s.SubmitAs(&Request{Mode: "enumerate", Game: uniformGame(3, 1)}, "client-a"); err != nil || outcome != Deduped {
		t.Fatalf("dedup while throttled: outcome=%v err=%v", outcome, err)
	}

	// Tokens accrue with time.
	now = now.Add(1500 * time.Millisecond)
	if _, outcome, refusal, err := s.SubmitAs(&Request{Mode: "enumerate", Game: uniformGame(5, 1)}, "client-a"); err != nil || outcome != Accepted {
		t.Fatalf("post-refill submit: outcome=%v refusal=%+v err=%v", outcome, refusal, err)
	}
}

// TestAdmissionQuota pins the in-flight quota: a client at its cap is
// refused with reason "quota", and finishing a job frees the slot.
func TestAdmissionQuota(t *testing.T) {
	s, reg := newTestServer(t, Config{Workers: 1, Admission: AdmissionConfig{MaxInFlight: 1}})
	v, outcome, _, err := s.SubmitAs(&Request{Mode: "enumerate", Game: uniformGame(6, 2)}, "client-a")
	if err != nil || outcome != Accepted {
		t.Fatalf("submit slow: outcome=%v err=%v", outcome, err)
	}
	_, outcome, refusal, err := s.SubmitAs(&Request{Mode: "enumerate", Game: uniformGame(3, 1)}, "client-a")
	if err != nil || outcome != Refused || refusal == nil || refusal.Reason != "quota" {
		t.Fatalf("over-quota submit: outcome=%v refusal=%+v err=%v", outcome, refusal, err)
	}
	if got := reg.Get(obs.MServeQuotaDenied); got != 1 {
		t.Errorf("admission.quota_denied = %d, want 1", got)
	}
	// Another client is unaffected.
	if _, outcome, _, err := s.SubmitAs(&Request{Mode: "enumerate", Game: uniformGame(3, 1)}, "client-b"); err != nil || outcome != Accepted {
		t.Fatalf("other client: outcome=%v err=%v", outcome, err)
	}

	// A terminal job frees the slot. (Wait for running first: cancelling
	// a still-queued job rejects it, which also frees the slot but ends
	// in state rejected, not done.)
	waitState(t, s, v.ID, StateRunning)
	if _, ok := s.Cancel(v.ID); !ok {
		t.Fatal("cancel: unknown id")
	}
	waitState(t, s, v.ID, StateDone)
	if _, outcome, refusal, err := s.SubmitAs(&Request{Mode: "enumerate", Game: uniformGame(4, 1)}, "client-a"); err != nil || outcome != Accepted {
		t.Fatalf("post-release submit: outcome=%v refusal=%+v err=%v", outcome, refusal, err)
	}
}

// TestQueueFullStructuredRefusal pins the wire shape of a queue-full
// refusal: 429, Retry-After, a structured reason in the error envelope,
// and a distinct serve.queue_full count.
func TestQueueFullStructuredRefusal(t *testing.T) {
	s, reg := newTestServer(t, Config{Workers: 1, QueueSize: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	v := submitSlow(t, s, 0)
	waitState(t, s, v.ID, StateRunning) // queue is now empty
	if _, outcome, err := s.Submit(&Request{Mode: "enumerate", Game: uniformGame(3, 1)}); err != nil || outcome != Accepted {
		t.Fatalf("queued submit: outcome=%v err=%v", outcome, err)
	}

	res, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"mode":"enumerate","game":{"kind":"uniform","n":4,"k":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429", res.StatusCode)
	}
	if res.Header.Get("Retry-After") == "" {
		t.Error("429 reply missing Retry-After")
	}
	var body errorResponse
	if err := json.NewDecoder(res.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Reason != "queue_full" || body.RetryAfterMS <= 0 || body.Error == "" {
		t.Errorf("refusal envelope: %+v", body)
	}
	if got := reg.Get(obs.MServeQueueFull); got != 1 {
		t.Errorf("serve.queue_full = %d, want 1", got)
	}
}

// TestThrottledHTTPStatus pins the HTTP mapping for a throttled client:
// the X-API-Key header selects the bucket, and refusal answers 429 +
// Retry-After with reason "throttled", distinct from queue_full.
func TestThrottledHTTPStatus(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1, Admission: AdmissionConfig{Rate: 0.001, Burst: 1}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submit := func(gameN int, apiKey string) *http.Response {
		t.Helper()
		req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs",
			strings.NewReader(`{"mode":"enumerate","game":{"kind":"uniform","n":`+strconv.Itoa(gameN)+`,"k":1}}`))
		req.Header.Set("Content-Type", "application/json")
		if apiKey != "" {
			req.Header.Set("X-API-Key", apiKey)
		}
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := submit(3, "key-1")
	res.Body.Close()
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d, want 202", res.StatusCode)
	}
	res = submit(4, "key-1")
	defer res.Body.Close()
	if res.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("throttled submit: %d, want 429", res.StatusCode)
	}
	if res.Header.Get("Retry-After") == "" {
		t.Error("throttled reply missing Retry-After")
	}
	var body errorResponse
	if err := json.NewDecoder(res.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Reason != "throttled" {
		t.Errorf("reason = %q, want throttled", body.Reason)
	}
}
