package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"bbc/internal/obs"
	"bbc/internal/store"
)

// ssePollEvery is how often the event stream re-reads the job journal
// for appended records while the job runs. The journal writer flushes
// one complete line per record, so polling the file is race-free: a
// torn tail is simply an incomplete line that parses on the next poll.
const ssePollEvery = 150 * time.Millisecond

// sseKeepaliveEvery bounds the silent stretch before a comment line is
// written so idle proxies do not reap the connection.
const sseKeepaliveEvery = 15 * time.Second

// handleEvents streams a job's journal as Server-Sent Events: every
// already-written record is replayed (event = record type, id = seq,
// data = the record's JSON), then the file is live-tailed until the job
// reaches a terminal state, at which point the remaining records are
// drained and a final "done" event carries the job view. A client
// reconnecting with Last-Event-ID resumes after the record it last saw.
//
// The stream is file-backed, so it requires the server to run with a
// DataDir; without one there is no journal to stream and the request is
// answered 409.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	job, ok := s.byID[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		// Terminal (or prior-generation) jobs come from the store: replay
		// the journal that survived on disk, then the final view. No
		// tailing — the job cannot produce more records.
		if rec, found := s.jobs.Lookup(r.PathValue("id")); found {
			if s.cfg.DataDir == "" {
				writeJSON(w, http.StatusConflict, errorResponse{Error: "event streaming requires per-job journals; start the server with a data dir"})
				return
			}
			s.replayStored(w, r, rec)
			return
		}
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job id (completed jobs are evicted after the retention bound)"})
		return
	}
	if s.cfg.DataDir == "" {
		writeJSON(w, http.StatusConflict, errorResponse{Error: "event streaming requires per-job journals; start the server with a data dir"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "response writer does not support streaming"})
		return
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // tell buffering proxies to pass events through
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	lastSeq := int64(-1)
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			lastSeq = n
		}
	}

	path := s.jobJournalPath(job)
	var (
		f       *os.File // kept open across polls; reads continue at the write frontier
		pending []byte   // bytes read but not yet terminated by a newline
	)
	defer func() {
		if f != nil {
			f.Close()
		}
	}()

	// emit drains everything currently readable and forwards the complete
	// records newer than lastSeq, reporting whether anything was written.
	emit := func() bool {
		if f == nil {
			var err error
			if f, err = os.Open(path); err != nil {
				return false // queued job: the journal appears when the job starts
			}
		}
		for {
			chunk := make([]byte, 32<<10)
			n, err := f.Read(chunk)
			if n > 0 {
				pending = append(pending, chunk[:n]...)
			}
			if err != nil || n == 0 {
				break
			}
		}
		wrote := false
		for {
			nl := bytes.IndexByte(pending, '\n')
			if nl < 0 {
				break
			}
			line := pending[:nl]
			pending = pending[nl+1:]
			var rec obs.Record
			if json.Unmarshal(line, &rec) != nil {
				continue // malformed line: skip rather than wedge the stream
			}
			if rec.Seq <= lastSeq {
				continue // replayed after a reconnect; the client has it
			}
			lastSeq = rec.Seq
			fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", rec.Type, rec.Seq, line)
			wrote = true
		}
		if wrote {
			fl.Flush()
		}
		return wrote
	}

	ticker := time.NewTicker(ssePollEvery)
	defer ticker.Stop()
	lastWrite := time.Now()
	for {
		if emit() {
			lastWrite = time.Now()
		}
		select {
		case <-job.done:
			// The job journal is closed before the done channel fires, so
			// one more drain reads every remaining record including the
			// final run_status.
			emit()
			s.mu.Lock()
			view := job.view(s.start)
			s.mu.Unlock()
			payload, err := json.Marshal(view)
			if err != nil {
				payload = []byte("{}")
			}
			fmt.Fprintf(w, "event: done\ndata: %s\n\n", payload)
			fl.Flush()
			return
		case <-r.Context().Done():
			return
		case <-ticker.C:
			if time.Since(lastWrite) >= sseKeepaliveEvery {
				fmt.Fprint(w, ": keepalive\n\n")
				fl.Flush()
				lastWrite = time.Now()
			}
		}
	}
}

// replayStored streams a terminal job's surviving journal records and a
// final "done" event carrying the stored view — the SSE face of the
// JobStore, so a watcher reconnecting after a restart still gets the
// full lifecycle plus the result.
func (s *Server) replayStored(w http.ResponseWriter, r *http.Request, rec *store.JobRecord) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "response writer does not support streaming"})
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	lastSeq := int64(-1)
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			lastSeq = n
		}
	}
	if raw, err := os.ReadFile(filepath.Join(s.cfg.DataDir, rec.ID+".jsonl")); err == nil {
		for _, line := range bytes.Split(raw, []byte("\n")) {
			if len(line) == 0 {
				continue
			}
			var jr obs.Record
			if json.Unmarshal(line, &jr) != nil {
				continue
			}
			if jr.Seq <= lastSeq {
				continue // the reconnecting client already has it
			}
			fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", jr.Type, jr.Seq, line)
		}
	}
	payload, err := json.Marshal(storedView(rec))
	if err != nil {
		payload = []byte("{}")
	}
	fmt.Fprintf(w, "event: done\ndata: %s\n\n", payload)
	fl.Flush()
}
