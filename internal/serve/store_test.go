package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"bbc/internal/core"
	"bbc/internal/obs"
	"bbc/internal/store"
)

// openStore opens the durable job store under dir/store.
func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, _, err := store.Open(filepath.Join(dir, "store"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestDurableStoreRestartDedup is the cross-restart dedup tier end to
// end: a result computed by one process generation answers an identical
// submission to the next generation byte-for-byte, without re-solving,
// and the historical-results query serves it by fingerprint.
func TestDurableStoreRestartDedup(t *testing.T) {
	dir := t.TempDir()

	// Generation 1: solve and drain.
	reg1 := obs.NewRegistry()
	s1, err := New(Config{Workers: 1, DataDir: filepath.Join(dir, "data"), Store: openStore(t, dir), Reg: reg1})
	if err != nil {
		t.Fatal(err)
	}
	v1, outcome, _, err := s1.SubmitAs(&Request{Mode: "enumerate", Game: uniformGame(4, 2)}, "client-a")
	if err != nil || outcome != Accepted {
		t.Fatalf("submit: outcome=%v err=%v", outcome, err)
	}
	final1, ok := s1.Wait(context.Background(), v1.ID)
	if !ok || !final1.Complete {
		t.Fatalf("generation-1 job: %+v", final1)
	}
	s1.Drain() // closes the store (final compaction included)

	// Generation 2: the identical submission is a store hit.
	reg2 := obs.NewRegistry()
	s2, err := New(Config{Workers: 1, DataDir: filepath.Join(dir, "data"), Store: openStore(t, dir), Reg: reg2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s2.Drain() })
	v2, outcome, _, err := s2.SubmitAs(&Request{Mode: "enumerate", Game: uniformGame(4, 2)}, "client-b")
	if err != nil || outcome != Deduped {
		t.Fatalf("restart resubmit: outcome=%v err=%v", outcome, err)
	}
	if !v2.Stored || v2.ID != final1.ID {
		t.Errorf("restart dedup view: stored=%t id=%s, want stored view of %s", v2.Stored, v2.ID, final1.ID)
	}
	if !bytes.Equal(v2.Result, final1.Result) {
		t.Errorf("stored result differs from the original:\n gen1: %s\n gen2: %s", final1.Result, v2.Result)
	}
	if got := reg2.Get(obs.MServeStoreHits); got != 1 {
		t.Errorf("serve.store_hits = %d, want 1", got)
	}
	if got := reg2.Get(obs.MServeSolves); got != 0 {
		t.Errorf("serve.solves = %d after a pure cache hit, want 0", got)
	}

	// The fingerprint query serves the historical result over HTTP.
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()
	res, err := http.Get(ts.URL + "/v1/jobs?spec_fingerprint=" + v2.Key)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var listing struct {
		Jobs []*View `json:"jobs"`
	}
	if err := json.NewDecoder(res.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) != 1 || listing.Jobs[0].ID != final1.ID || !listing.Jobs[0].Stored {
		t.Fatalf("fingerprint query: %+v", listing.Jobs)
	}
	// The HTTP encoder indents, so normalize the wire bytes before the
	// byte comparison.
	var compact bytes.Buffer
	if err := json.Compact(&compact, listing.Jobs[0].Result); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(compact.Bytes(), final1.Result) {
		t.Error("fingerprint query result differs from the original")
	}
	// An unknown fingerprint answers an empty list, not an error.
	res2, err := http.Get(ts.URL + "/v1/jobs?spec_fingerprint=bbc-ffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	var empty struct {
		Jobs []*View `json:"jobs"`
	}
	if err := json.NewDecoder(res2.Body).Decode(&empty); err != nil {
		t.Fatal(err)
	}
	if len(empty.Jobs) != 0 {
		t.Errorf("unknown fingerprint returned %d jobs", len(empty.Jobs))
	}
}

// TestCrashedJobRequeuedOnStartup simulates a crashed generation — the
// store holds an acknowledged submit with no finish — and asserts the
// next generation re-queues, runs, and completes the job under its
// original id, with new ids allocated past the recovered one.
func TestCrashedJobRequeuedOnStartup(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	req := Request{Mode: "enumerate", Game: uniformGame(3, 1)}
	spec, err := core.UnmarshalSpec(req.Game)
	if err != nil {
		t.Fatal(err)
	}
	key, err := dedupKey(&req, spec)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(&req)
	if err := st.Submitted(&store.JobRecord{
		ID: "job-000007", Key: key, Client: "client-a", Mode: req.Mode,
		Req: raw, SubmittedMS: time.Now().UnixMilli(),
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	s, err := New(Config{Workers: 1, DataDir: filepath.Join(dir, "data"), Store: openStore(t, dir), Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Drain() })
	if got := reg.Get(obs.MServeRequeued); got != 1 {
		t.Fatalf("serve.jobs_requeued = %d, want 1", got)
	}
	final := waitState(t, s, "job-000007", StateDone)
	if !final.Complete {
		t.Fatalf("recovered job: %+v", final)
	}

	// New ids never collide with recovered history.
	v, outcome, err := s.Submit(&Request{Mode: "walk", Game: uniformGame(4, 1)})
	if err != nil || outcome != Accepted {
		t.Fatalf("post-recovery submit: outcome=%v err=%v", outcome, err)
	}
	if v.ID != "job-000008" {
		t.Errorf("post-recovery id = %s, want job-000008", v.ID)
	}

	// The recovered result is in the store-backed dedup tier.
	dv, outcome, err := s.Submit(&req)
	if err != nil || outcome != Deduped || dv.ID != "job-000007" {
		t.Errorf("dedup against recovered job: outcome=%v id=%s err=%v", outcome, dv.ID, err)
	}
}

// TestUnreplayableRequeueRejected pins recovery robustness: a stored
// queued job whose request no longer parses is quarantined into a
// rejected terminal state instead of wedging startup.
func TestUnreplayableRequeueRejected(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	if err := st.Submitted(&store.JobRecord{
		ID: "job-000003", Key: "bbc-dead", Client: "client-a", Mode: "enumerate",
		Req: json.RawMessage(`{"mode":"enumerate","game":{"kind":"septagonal"}}`),
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	s, err := New(Config{Workers: 1, Store: openStore(t, dir), Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Drain() })
	v, ok := s.Get("job-000003")
	if !ok || v.State != StateRejected || v.Reason != "unreplayable" {
		t.Fatalf("unreplayable job: ok=%t view=%+v", ok, v)
	}
	if got := reg.Get(obs.MServeRequeued); got != 0 {
		t.Errorf("serve.jobs_requeued = %d, want 0", got)
	}
}
