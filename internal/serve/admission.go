package serve

import (
	"sync"
	"time"
)

// AdmissionConfig tunes per-client admission control. Clients are
// identified by the X-API-Key request header (empty = the shared
// "anonymous" identity), so one greedy client exhausts its own budget,
// not the server. The zero value disables all admission limits.
type AdmissionConfig struct {
	// Rate is the sustained token refill in new-job submissions per
	// second per client (0 = unlimited). Deduplicated and refused
	// submissions are free: only work that would occupy the solver pool
	// spends a token.
	Rate float64
	// Burst is the token-bucket depth (0 with Rate > 0 = ceil(Rate),
	// minimum 1): how many submissions a client can land back-to-back
	// before the sustained rate governs.
	Burst int
	// MaxInFlight bounds one client's queued-plus-running jobs
	// (0 = unlimited). Slots free when a job reaches a terminal state.
	MaxInFlight int
}

func (c AdmissionConfig) burst() float64 {
	if c.Burst > 0 {
		return float64(c.Burst)
	}
	if b := c.Rate; b >= 1 {
		return float64(int(b + 0.999999))
	}
	return 1
}

// enabled reports whether any limit is configured.
func (c AdmissionConfig) enabled() bool {
	return c.Rate > 0 || c.MaxInFlight > 0
}

// admission is the per-client token-bucket and in-flight-quota state.
// maxClients bounds the tracking map against API-key churn: when it
// fills, idle entries (full bucket, nothing in flight) are reclaimed.
type admission struct {
	cfg AdmissionConfig
	now func() time.Time

	mu      sync.Mutex
	clients map[string]*clientBucket
}

type clientBucket struct {
	tokens   float64
	last     time.Time
	inFlight int
}

const maxClients = 4096

func newAdmission(cfg AdmissionConfig) *admission {
	return &admission{cfg: cfg, now: time.Now, clients: make(map[string]*clientBucket)}
}

// bucketLocked returns (creating on demand) the client's state with its
// token balance refilled to now.
func (a *admission) bucketLocked(client string) *clientBucket {
	b, ok := a.clients[client]
	if !ok {
		if len(a.clients) >= maxClients {
			for id, old := range a.clients {
				if old.inFlight == 0 && old.tokens >= a.cfg.burst() {
					delete(a.clients, id)
				}
			}
		}
		b = &clientBucket{tokens: a.cfg.burst(), last: a.now()}
		a.clients[client] = b
		return b
	}
	if a.cfg.Rate > 0 {
		now := a.now()
		b.tokens += now.Sub(b.last).Seconds() * a.cfg.Rate
		if max := a.cfg.burst(); b.tokens > max {
			b.tokens = max
		}
		b.last = now
	}
	return b
}

// admit spends one rate token for a new job. When the bucket is dry it
// refuses and reports how long until a token accrues.
func (a *admission) admit(client string) (ok bool, retryAfter time.Duration) {
	if a == nil || a.cfg.Rate <= 0 {
		return true, 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.bucketLocked(client)
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / a.cfg.Rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second
	}
	return false, wait
}

// acquire claims an in-flight slot for a new job; release frees it when
// the job reaches a terminal state.
func (a *admission) acquire(client string) bool {
	if a == nil || a.cfg.MaxInFlight <= 0 {
		return true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.bucketLocked(client)
	if b.inFlight >= a.cfg.MaxInFlight {
		return false
	}
	b.inFlight++
	return true
}

// restore claims an in-flight slot unconditionally — recovered jobs
// re-queued at startup were already admitted by an earlier process, so
// they count against the quota but are never refused.
func (a *admission) restore(client string) {
	if a == nil || a.cfg.MaxInFlight <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.bucketLocked(client).inFlight++
}

func (a *admission) release(client string) {
	if a == nil || a.cfg.MaxInFlight <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if b, ok := a.clients[client]; ok && b.inFlight > 0 {
		b.inFlight--
	}
}

// gauges reports the tracked client count and total in-flight slots for
// /metrics.
func (a *admission) gauges() (clients, inFlight int) {
	if a == nil {
		return 0, 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, b := range a.clients {
		inFlight += b.inFlight
	}
	return len(a.clients), inFlight
}
