package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	Type string
	ID   int64
	Data string
}

// readSSE parses events off the stream one at a time. It returns false
// on stream end.
func readSSE(sc *bufio.Scanner) (sseEvent, bool) {
	ev := sseEvent{ID: -1}
	seen := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if seen {
				return ev, true
			}
		case strings.HasPrefix(line, ":"):
			// keepalive comment
		case strings.HasPrefix(line, "event: "):
			ev.Type, seen = strings.TrimPrefix(line, "event: "), true
		case strings.HasPrefix(line, "id: "):
			ev.ID, _ = strconv.ParseInt(strings.TrimPrefix(line, "id: "), 10, 64)
			seen = true
		case strings.HasPrefix(line, "data: "):
			ev.Data, seen = strings.TrimPrefix(line, "data: "), true
		}
	}
	return ev, false
}

// TestEventsReplayThenLive is the SSE contract end to end: a watcher
// attaching to a running job first replays the journal records written
// so far, then receives live progress records as they are appended, and
// after cancellation sees the final run_status before the terminating
// "done" event carrying the job view.
func TestEventsReplayThenLive(t *testing.T) {
	dir := t.TempDir()
	s, _ := newTestServer(t, Config{Workers: 1, DataDir: dir, ProgressEvery: 10 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	v := submitSlow(t, s, 0)
	waitState(t, s, v.ID, StateRunning)

	res, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("events: status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events: Content-Type %q", ct)
	}

	sc := bufio.NewScanner(res.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)

	var (
		types     []string
		lastSeq   = int64(-1)
		cancelled = false
		doneData  string
	)
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		ev, ok := readSSE(sc)
		if !ok {
			break
		}
		types = append(types, ev.Type)
		if ev.ID >= 0 {
			if ev.ID <= lastSeq {
				t.Fatalf("event ids not increasing: %d after %d", ev.ID, lastSeq)
			}
			lastSeq = ev.ID
		}
		// Cancel only after a live progress record proves tailing works;
		// everything before the subscribe time was replay.
		if ev.Type == "progress" && !cancelled {
			if _, ok := s.Cancel(v.ID); !ok {
				t.Fatal("cancel failed")
			}
			cancelled = true
		}
		if ev.Type == "done" {
			doneData = ev.Data
			break
		}
	}
	if doneData == "" {
		t.Fatalf("stream ended without a done event; saw %v", types)
	}

	joined := strings.Join(types, ",")
	if !strings.Contains(joined, "job") {
		t.Errorf("replay missing the job record: %v", types)
	}
	if !strings.Contains(joined, "progress") {
		t.Errorf("no live progress record seen: %v", types)
	}
	if !strings.HasSuffix(joined, "run_status,done") {
		t.Errorf("stream should end run_status then done, got %v", types)
	}

	var view View
	if err := json.Unmarshal([]byte(doneData), &view); err != nil {
		t.Fatalf("done payload: %v", err)
	}
	if view.ID != v.ID || view.State != StateDone || view.RunStatus != "cancelled" {
		t.Errorf("done view = %+v, want id=%s state=done run_status=cancelled", view, v.ID)
	}
	if view.RunID == "" {
		t.Error("done view missing run_id")
	}
}

// TestEventsReplayTerminalJob pins pure replay: attaching to an
// already-finished job streams the whole journal then "done"
// immediately, no tailing involved.
func TestEventsReplayTerminalJob(t *testing.T) {
	dir := t.TempDir()
	s, _ := newTestServer(t, Config{Workers: 1, DataDir: dir})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	v, outcome, err := s.Submit(&Request{Mode: "enumerate", Game: uniformGame(3, 1)})
	if err != nil || outcome != Accepted {
		t.Fatalf("submit: outcome=%v err=%v", outcome, err)
	}
	waitState(t, s, v.ID, StateDone)

	res, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	sc := bufio.NewScanner(res.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)

	var types []string
	for {
		ev, ok := readSSE(sc)
		if !ok {
			t.Fatalf("stream ended early; saw %v", types)
		}
		types = append(types, ev.Type)
		if ev.Type == "done" {
			break
		}
	}
	joined := strings.Join(types, ",")
	if !strings.HasPrefix(joined, "job") {
		t.Errorf("replay should start with the job record: %v", types)
	}
	if !strings.HasSuffix(joined, "run_status,done") {
		t.Errorf("replay should end run_status then done: %v", types)
	}
}

// TestEventsResumeAfterLastEventID pins the reconnect contract: a client
// presenting Last-Event-ID only receives records with later sequence
// numbers.
func TestEventsResumeAfterLastEventID(t *testing.T) {
	dir := t.TempDir()
	s, _ := newTestServer(t, Config{Workers: 1, DataDir: dir})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	v, outcome, err := s.Submit(&Request{Mode: "enumerate", Game: uniformGame(3, 1)})
	if err != nil || outcome != Accepted {
		t.Fatalf("submit: outcome=%v err=%v", outcome, err)
	}
	waitState(t, s, v.ID, StateDone)

	// First pass: read everything, note the final sequence number.
	first, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(first.Body)
	lastSeq := int64(-1)
	for {
		ev, ok := readSSE(sc)
		if !ok || ev.Type == "done" {
			break
		}
		if ev.ID > lastSeq {
			lastSeq = ev.ID
		}
	}
	first.Body.Close()
	if lastSeq < 0 {
		t.Fatal("first pass saw no sequenced events")
	}

	// Second pass: resume from the penultimate record; only the final
	// sequenced record (plus done) should arrive.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+v.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", strconv.FormatInt(lastSeq-1, 10))
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	sc = bufio.NewScanner(res.Body)
	var sequenced int
	for {
		ev, ok := readSSE(sc)
		if !ok || ev.Type == "done" {
			break
		}
		if ev.ID >= 0 {
			sequenced++
			if ev.ID <= lastSeq-1 {
				t.Errorf("resumed stream replayed seq %d ≤ Last-Event-ID %d", ev.ID, lastSeq-1)
			}
		}
	}
	if sequenced != 1 {
		t.Errorf("resumed stream delivered %d sequenced records, want 1", sequenced)
	}
}

// TestEventsErrors pins the failure modes: unknown ids 404 and a server
// without a data dir (no journals to stream) answers 409.
func TestEventsErrors(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res, err := http.Get(ts.URL + "/v1/jobs/job-999999/events")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 404 {
		t.Errorf("unknown id: %d, want 404", res.StatusCode)
	}

	v, outcome, err := s.Submit(&Request{Mode: "enumerate", Game: uniformGame(3, 1)})
	if err != nil || outcome != Accepted {
		t.Fatalf("submit: outcome=%v err=%v", outcome, err)
	}
	res, err = http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 409 {
		t.Errorf("no data dir: %d, want 409", res.StatusCode)
	}
}
