// Package serve is the batch-solve service layer of the BBC stack: it
// exposes the existing solvers (pure-NE enumeration, best-response
// dynamics, the reproduction experiment suite) as asynchronous HTTP/JSON
// jobs behind cmd/bbcserved.
//
// The design reuses the layers below it rather than re-implementing
// them. Submissions are validated with the core spec loaders and keyed
// by a solve fingerprint, so identical in-flight or completed requests
// dedup to one underlying solve (completed results live in a bounded LRU
// cache). A bounded worker pool drains a bounded job queue; each job
// runs under its own runctl context (per-job deadline, max-profiles
// budget, cancellation via DELETE) with a per-job obs journal, and
// enumeration jobs persist runctl.Store checkpoints so an interrupted
// job — or a drained server — resumes instead of recomputing.
//
// Drain contract: once Drain is called (SIGTERM in cmd/bbcserved), new
// submissions are refused with 503 + Retry-After, jobs still queued are
// rejected with a retry hint, in-flight jobs are cancelled and flush a
// final checkpoint, and Drain returns only after the pool has exited.
// Every accepted job therefore ends either completed or resumable.
package serve

import (
	"container/list"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"bbc/internal/core"
	"bbc/internal/obs"
	"bbc/internal/runctl"
)

// Config tunes a Server. The zero value is usable for tests: sane pool
// and queue bounds, a temp-less DataDir ("" keeps checkpoints off).
type Config struct {
	// Workers is the job pool size (0 = NumCPU, capped at 8).
	Workers int
	// QueueSize bounds the number of queued-but-not-running jobs
	// (0 = 64). A full queue refuses submissions with a retry hint.
	QueueSize int
	// CacheSize bounds how many terminal jobs are retained for polling
	// and dedup (0 = 128). Older terminal jobs are evicted LRU-style.
	CacheSize int
	// DataDir, when non-empty, is where per-job journals and enumeration
	// checkpoints live; it is created on demand. Empty disables both.
	DataDir string
	// LimitPerNode bounds per-node strategy-set enumeration for service
	// requests (0 = 4096), so a hostile dense spec cannot demand an
	// astronomic search-space build at submit cost.
	LimitPerNode int
	// CheckpointEvery is the serial-scan checkpoint period in profiles
	// (0 = core default, 1<<20).
	CheckpointEvery uint64
	// ProgressEvery is the period at which a running job appends a
	// "progress" record (live counters) to its journal for SSE watchers
	// (0 = 1s). Only meaningful with a DataDir.
	ProgressEvery time.Duration
	// RetryAfter is the hint attached to refused submissions and
	// drain-rejected jobs (0 = 5s).
	RetryAfter time.Duration
	// Reg receives the serve.* metrics and feeds /metrics (nil =
	// obs.Global()).
	Reg *obs.Registry
	// Journal, when non-nil, receives server lifecycle records
	// (job_submitted, job_started, job_done, job_rejected, drain).
	Journal *obs.Journal
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	w := runtime.NumCPU()
	if w > 8 {
		w = 8
	}
	return w
}

func (c Config) queueSize() int {
	if c.QueueSize > 0 {
		return c.QueueSize
	}
	return 64
}

func (c Config) cacheSize() int {
	if c.CacheSize > 0 {
		return c.CacheSize
	}
	return 128
}

func (c Config) limitPerNode() int {
	if c.LimitPerNode > 0 {
		return c.LimitPerNode
	}
	return 4096
}

func (c Config) retryAfter() time.Duration {
	if c.RetryAfter > 0 {
		return c.RetryAfter
	}
	return 5 * time.Second
}

func (c Config) progressEvery() time.Duration {
	if c.ProgressEvery > 0 {
		return c.ProgressEvery
	}
	return time.Second
}

// Server is the batch-solve job service. Create with New, mount
// Handler() on an HTTP server, and call Drain before exit.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	start time.Time

	baseCtx    context.Context // parent of every job context; Drain cancels it
	baseCancel context.CancelFunc

	mu       sync.Mutex
	draining bool
	byID     map[string]*Job
	byKey    map[string]*Job // queued, running, or done-and-complete jobs
	terminal *list.List      // *Job in terminal order; front = oldest (LRU eviction)
	nextID   int64

	queue chan *Job
	wg    sync.WaitGroup

	drainOnce sync.Once
	summary   DrainSummary
}

// DrainSummary reports what a drain did.
type DrainSummary struct {
	// Cancelled is how many in-flight jobs were interrupted.
	Cancelled int
	// Rejected is how many queued jobs were refused with a retry hint.
	Rejected int
}

// New builds and starts a server: the worker pool is live on return.
func New(cfg Config) (*Server, error) {
	if cfg.DataDir != "" {
		if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: create data dir: %w", err)
		}
	}
	reg := cfg.Reg
	if reg == nil {
		reg = obs.Global()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		reg:        reg,
		start:      time.Now(),
		baseCtx:    ctx,
		baseCancel: cancel,
		byID:       make(map[string]*Job),
		byKey:      make(map[string]*Job),
		terminal:   list.New(),
		queue:      make(chan *Job, cfg.queueSize()),
	}
	for i := 0; i < cfg.workers(); i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// worker drains the job queue. During a drain, remaining queued jobs are
// rejected with a retry hint instead of run.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.mu.Lock()
		switch {
		case job.state != StateQueued:
			// Deleted while queued; already terminal.
			s.mu.Unlock()
			continue
		case s.draining:
			s.rejectLocked(job, "draining")
			s.mu.Unlock()
			continue
		}
		job.state = StateRunning
		job.started = time.Now()
		jctx, cancel := runctl.WithDeadline(s.baseCtx, time.Duration(job.Req.TimeoutMS)*time.Millisecond)
		jctx, jcancel := context.WithCancel(jctx)
		job.cancel = func() { jcancel(); cancel() }
		s.mu.Unlock()
		s.reg.Observe(obs.HServeQueueWait, job.started.Sub(job.submitted).Nanoseconds())
		tr := obs.Trace()
		tr.RecordSpan("job.queued", 0, job.submitted, job.started, "", 0)
		s.cfg.Journal.Event("job_started", map[string]any{"id": job.ID, "mode": job.Req.Mode})

		sp := tr.StartSpan("job.run")
		s.runJob(jctx, job)
		sp.End()
		job.cancel()
	}
}

// rejectLocked marks a job refused-before-running with a retry hint.
// Callers hold s.mu.
func (s *Server) rejectLocked(job *Job, reason string) {
	job.state = StateRejected
	job.reason = reason
	job.retryMS = s.cfg.retryAfter().Milliseconds()
	s.finishLocked(job)
	s.reg.Inc(obs.MServeRejected)
	s.cfg.Journal.Event("job_rejected", map[string]any{
		"id": job.ID, "reason": reason, "retry_after_ms": job.retryMS,
	})
}

// finishLocked moves a job into the terminal retention list, evicting the
// oldest terminal jobs beyond the cache bound, and wakes waiters. A job
// that did not complete is removed from the dedup index so a resubmission
// starts (and, for enumerations, resumes) a fresh run.
func (s *Server) finishLocked(job *Job) {
	job.finished = time.Now()
	if !(job.state == StateDone && job.complete) {
		if s.byKey[job.Key] == job {
			delete(s.byKey, job.Key)
		}
	}
	s.terminal.PushBack(job)
	close(job.done)
	for s.terminal.Len() > s.cfg.cacheSize() {
		front := s.terminal.Front()
		old := front.Value.(*Job)
		s.terminal.Remove(front)
		delete(s.byID, old.ID)
		if s.byKey[old.Key] == old {
			delete(s.byKey, old.Key)
		}
	}
}

// SubmitOutcome says how a submission was handled.
type SubmitOutcome int

const (
	// Accepted: a new job was created and enqueued.
	Accepted SubmitOutcome = iota
	// Deduped: an identical in-flight or completed job was returned.
	Deduped
	// Refused: the server is draining or the queue is full; retry later.
	Refused
)

// Submit validates a request and either enqueues a new job, attaches to
// an identical existing one, or refuses with a retry hint. The returned
// View is the job's state at return time (nil when refused).
func (s *Server) Submit(req *Request) (*View, SubmitOutcome, error) {
	if err := parseRequest(req); err != nil {
		return nil, Refused, err
	}
	var spec core.Spec
	if len(req.Game) > 0 {
		var err error
		spec, err = core.UnmarshalSpec(req.Game)
		if err != nil {
			return nil, Refused, err
		}
	}
	key, err := dedupKey(req, spec)
	if err != nil {
		return nil, Refused, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg.Inc(obs.MServeSubmitted)
	if prior, ok := s.byKey[key]; ok {
		s.reg.Inc(obs.MServeDeduped)
		s.cfg.Journal.Event("job_submitted", map[string]any{
			"id": prior.ID, "key": key, "mode": req.Mode, "deduped": true,
		})
		return prior.view(s.start), Deduped, nil
	}
	if s.draining {
		s.reg.Inc(obs.MServeRejected)
		return nil, Refused, nil
	}
	s.nextID++
	job := &Job{
		ID:        fmt.Sprintf("job-%06d", s.nextID),
		Key:       key,
		Req:       *req,
		spec:      spec,
		agg:       parseAgg(req.Agg),
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	select {
	case s.queue <- job:
	default:
		s.nextID-- // job was never visible; reuse the id
		s.reg.Inc(obs.MServeRejected)
		s.cfg.Journal.Event("job_rejected", map[string]any{
			"key": key, "reason": "queue_full", "retry_after_ms": s.cfg.retryAfter().Milliseconds(),
		})
		return nil, Refused, nil
	}
	s.byID[job.ID] = job
	s.byKey[key] = job
	s.cfg.Journal.Event("job_submitted", map[string]any{
		"id": job.ID, "key": key, "mode": req.Mode, "deduped": false,
	})
	return job.view(s.start), Accepted, nil
}

// Get returns a job view by id.
func (s *Server) Get(id string) (*View, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	return job.view(s.start), true
}

// List returns every retained job, oldest submission first.
func (s *Server) List() []*View {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*View, 0, len(s.byID))
	for _, job := range s.byID {
		out = append(out, job.view(s.start))
	}
	// Deterministic order for clients: by id (ids are zero-padded).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].ID > out[j].ID; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Cancel stops a job: queued jobs become rejected (reason "cancelled"),
// running jobs get their context cancelled and end with run status
// "cancelled" plus a final checkpoint when enabled. Terminal jobs are
// left as they are. The bool reports whether the id was known.
func (s *Server) Cancel(id string) (*View, bool) {
	s.mu.Lock()
	job, ok := s.byID[id]
	if !ok {
		s.mu.Unlock()
		return nil, false
	}
	switch job.state {
	case StateQueued:
		s.rejectLocked(job, "cancelled")
	case StateRunning:
		if job.cancel != nil {
			job.cancel()
		}
	}
	v := job.view(s.start)
	s.mu.Unlock()
	return v, true
}

// Wait blocks until the job is terminal or ctx fires; it returns the
// final view. Unknown ids return ok=false immediately.
func (s *Server) Wait(ctx context.Context, id string) (*View, bool) {
	s.mu.Lock()
	job, ok := s.byID[id]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	select {
	case <-job.done:
	case <-ctx.Done():
	}
	v, _ := s.Get(id)
	return v, true
}

// Draining reports whether the server has begun its drain.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain performs the graceful shutdown: refuse new submissions, cancel
// in-flight jobs (they flush final checkpoints and report run_status),
// reject still-queued jobs with a retry hint, and wait for the worker
// pool to exit. Safe to call more than once; later calls return the
// first drain's summary after it finishes.
func (s *Server) Drain() DrainSummary {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		inflight := 0
		for _, job := range s.byID {
			if job.state == StateRunning {
				inflight++
			}
		}
		s.mu.Unlock()

		// Stop in-flight work: every job context derives from baseCtx, so
		// this interrupts all running solves; each flushes its checkpoint
		// and final journal records on the way out.
		s.baseCancel()
		// No submission can enqueue after the draining flag is set (Submit
		// checks it under the lock), so closing the queue is race-free and
		// lets workers reject the remaining queued jobs and exit.
		close(s.queue)
		s.wg.Wait()

		s.mu.Lock()
		rejected := 0
		for _, job := range s.byID {
			if job.state == StateRejected && job.reason == "draining" {
				rejected++
			}
			// A queued job that never reached a worker (closed queue drained
			// first) is rejected here so no accepted job is left dangling.
			if job.state == StateQueued {
				s.rejectLocked(job, "draining")
				rejected++
			}
		}
		s.summary = DrainSummary{Cancelled: inflight, Rejected: rejected}
		s.mu.Unlock()
		s.cfg.Journal.Event("drain", map[string]any{
			"cancelled_in_flight": inflight, "rejected_queued": rejected,
		})
	})
	return s.summary
}

// checkpointPath is where an enumeration job persists resume state.
func (s *Server) checkpointPath(job *Job) string {
	if s.cfg.DataDir == "" {
		return ""
	}
	return filepath.Join(s.cfg.DataDir, job.Key+".ckpt")
}

// jobJournalPath is where a job's JSONL journal lives ("" when DataDir
// is off). The SSE event stream tails this file.
func (s *Server) jobJournalPath(job *Job) string {
	if s.cfg.DataDir == "" {
		return ""
	}
	return filepath.Join(s.cfg.DataDir, job.ID+".jsonl")
}

// jobJournal opens the per-job JSONL journal (nil when DataDir is off —
// obs journals are nil-safe).
func (s *Server) jobJournal(job *Job) *obs.Journal {
	path := s.jobJournalPath(job)
	if path == "" {
		return nil
	}
	j, err := obs.OpenJournal(path, s.reg)
	if err != nil {
		s.cfg.Journal.Event("job_journal_error", map[string]any{"id": job.ID, "error": err.Error()})
		return nil
	}
	return j
}
