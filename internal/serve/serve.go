// Package serve is the batch-solve service layer of the BBC stack: it
// exposes the existing solvers (pure-NE enumeration, best-response
// dynamics, the reproduction experiment suite) as asynchronous HTTP/JSON
// jobs behind cmd/bbcserved.
//
// The design reuses the layers below it rather than re-implementing
// them. Submissions are validated with the core spec loaders and keyed
// by a solve fingerprint, so identical in-flight or completed requests
// dedup to one underlying solve. Terminal jobs live in a JobStore — by
// default a bounded in-memory store, or the durable WAL-backed
// internal/store when the server runs with one, in which case completed
// results dedup across process restarts and crashed-out work is
// re-queued at startup (its enumeration checkpoints make the resume
// cheap). A bounded worker pool drains a bounded job queue; each job
// runs under its own runctl context (per-job deadline, max-profiles
// budget, cancellation via DELETE) with a per-job obs journal, and
// enumeration jobs persist runctl.Store checkpoints so an interrupted
// job — or a drained server — resumes instead of recomputing.
//
// Admission control shapes the intake: per-client (X-API-Key) token
// buckets bound the sustained submission rate, per-client in-flight
// quotas bound pool occupancy, and the bounded queue refuses overflow —
// each refusal class answered with 429 + Retry-After and counted
// distinctly (admission.throttled, admission.quota_denied,
// serve.queue_full).
//
// Drain contract: once Drain is called (SIGTERM in cmd/bbcserved), new
// submissions are refused with 503 + Retry-After, jobs still queued are
// rejected with a retry hint, in-flight jobs are cancelled and flush a
// final checkpoint, and Drain returns only after the pool has exited.
// Every accepted job therefore ends either completed or resumable.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"bbc/internal/core"
	"bbc/internal/obs"
	"bbc/internal/runctl"
	"bbc/internal/store"
)

// Config tunes a Server. The zero value is usable for tests: sane pool
// and queue bounds, a temp-less DataDir ("" keeps checkpoints off).
type Config struct {
	// Workers is the job pool size (0 = NumCPU, capped at 8).
	Workers int
	// QueueSize bounds the number of queued-but-not-running jobs
	// (0 = 64). A full queue refuses submissions with a retry hint.
	QueueSize int
	// CacheSize bounds how many terminal jobs the default in-memory
	// JobStore retains for polling and dedup (0 = 128). Ignored when
	// Store is set — the durable store has its own retention bound.
	CacheSize int
	// DataDir, when non-empty, is where per-job journals and enumeration
	// checkpoints live; it is created on demand. Empty disables both.
	DataDir string
	// Store, when non-nil, is the job persistence layer — typically
	// *store.Store opened on a durable directory, which makes results
	// dedup across restarts and interrupted jobs re-queue at startup.
	// Nil uses an in-memory store bounded by CacheSize.
	Store JobStore
	// Admission configures per-client rate limits and in-flight quotas
	// (zero value = no limits).
	Admission AdmissionConfig
	// LimitPerNode bounds per-node strategy-set enumeration for service
	// requests (0 = 4096), so a hostile dense spec cannot demand an
	// astronomic search-space build at submit cost.
	LimitPerNode int
	// CheckpointEvery is the serial-scan checkpoint period in profiles
	// (0 = core default, 1<<20).
	CheckpointEvery uint64
	// ProgressEvery is the period at which a running job appends a
	// "progress" record (live counters) to its journal for SSE watchers
	// (0 = 1s). Only meaningful with a DataDir.
	ProgressEvery time.Duration
	// RetryAfter is the hint attached to refused submissions and
	// drain-rejected jobs (0 = 5s).
	RetryAfter time.Duration
	// Reg receives the serve.* metrics and feeds /metrics (nil =
	// obs.Global()).
	Reg *obs.Registry
	// Journal, when non-nil, receives server lifecycle records
	// (job_submitted, job_started, job_done, job_rejected, drain).
	Journal *obs.Journal
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	w := runtime.NumCPU()
	if w > 8 {
		w = 8
	}
	return w
}

func (c Config) queueSize() int {
	if c.QueueSize > 0 {
		return c.QueueSize
	}
	return 64
}

func (c Config) cacheSize() int {
	if c.CacheSize > 0 {
		return c.CacheSize
	}
	return 128
}

func (c Config) limitPerNode() int {
	if c.LimitPerNode > 0 {
		return c.LimitPerNode
	}
	return 4096
}

func (c Config) retryAfter() time.Duration {
	if c.RetryAfter > 0 {
		return c.RetryAfter
	}
	return 5 * time.Second
}

func (c Config) progressEvery() time.Duration {
	if c.ProgressEvery > 0 {
		return c.ProgressEvery
	}
	return time.Second
}

// Server is the batch-solve job service. Create with New, mount
// Handler() on an HTTP server, and call Drain before exit.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	jobs  JobStore
	adm   *admission
	start time.Time

	baseCtx    context.Context // parent of every job context; Drain cancels it
	baseCancel context.CancelFunc

	mu            sync.Mutex
	draining      bool
	byID          map[string]*Job // live (queued or running) jobs
	byKey         map[string]*Job // live jobs by dedup key
	nextID        int64
	drainRejected int

	queue chan *Job
	wg    sync.WaitGroup

	drainOnce sync.Once
	summary   DrainSummary
}

// DrainSummary reports what a drain did.
type DrainSummary struct {
	// Cancelled is how many in-flight jobs were interrupted.
	Cancelled int
	// Rejected is how many queued jobs were refused with a retry hint.
	Rejected int
}

// New builds and starts a server. Jobs the store marks queued or
// running — accepted by an earlier process generation that crashed or
// was killed — are re-queued before the worker pool starts, so recovery
// needs no client involvement. The pool is live on return.
func New(cfg Config) (*Server, error) {
	if cfg.DataDir != "" {
		if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: create data dir: %w", err)
		}
	}
	reg := cfg.Reg
	if reg == nil {
		reg = obs.Global()
	}
	jobs := cfg.Store
	if jobs == nil {
		jobs = newMemStore(cfg.cacheSize())
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		reg:        reg,
		jobs:       jobs,
		adm:        newAdmission(cfg.Admission),
		start:      time.Now(),
		baseCtx:    ctx,
		baseCancel: cancel,
		byID:       make(map[string]*Job),
		byKey:      make(map[string]*Job),
		queue:      make(chan *Job, cfg.queueSize()),
	}
	s.recover()
	for i := 0; i < cfg.workers(); i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// recover re-queues the store's unfinished jobs and advances the id
// counter past every stored id, so new jobs never collide with history.
// Runs before the worker pool starts, so no lock ordering is at stake.
func (s *Server) recover() {
	for _, rec := range s.jobs.Query("") {
		var n int64
		if _, err := fmt.Sscanf(rec.ID, "job-%d", &n); err == nil && n > s.nextID {
			s.nextID = n
		}
	}
	for _, rec := range s.jobs.Requeue() {
		job, err := s.rebuild(rec)
		s.mu.Lock()
		if err != nil {
			job = &Job{ID: rec.ID, Key: rec.Key, client: rec.Client, submitted: time.Now(), done: make(chan struct{})}
			job.errMsg = err.Error()
			s.rejectLocked(job, "unreplayable")
			s.mu.Unlock()
			s.reg.Inc(obs.MStoreQuarantined)
			continue
		}
		if len(s.queue) == cap(s.queue) {
			s.rejectLocked(job, "queue_full")
			s.mu.Unlock()
			continue
		}
		s.byID[job.ID] = job
		s.byKey[job.Key] = job
		s.adm.restore(job.client)
		s.queue <- job
		s.mu.Unlock()
		s.reg.Inc(obs.MServeRequeued)
		s.cfg.Journal.Event("job_requeued", map[string]any{"id": job.ID, "key": job.Key, "mode": job.Req.Mode})
	}
}

// rebuild reconstitutes a live Job from a stored record: the original
// request is re-parsed (spec, aggregation) and the job keeps its id and
// key so checkpoints and journals line up.
func (s *Server) rebuild(rec *store.JobRecord) (*Job, error) {
	var req Request
	if err := json.Unmarshal(rec.Req, &req); err != nil {
		return nil, fmt.Errorf("serve: requeue %s: %w", rec.ID, err)
	}
	if err := parseRequest(&req); err != nil {
		return nil, fmt.Errorf("serve: requeue %s: %w", rec.ID, err)
	}
	var spec core.Spec
	if len(req.Game) > 0 {
		var err error
		if spec, err = core.UnmarshalSpec(req.Game); err != nil {
			return nil, fmt.Errorf("serve: requeue %s: %w", rec.ID, err)
		}
	}
	return &Job{
		ID:        rec.ID,
		Key:       rec.Key,
		Req:       req,
		client:    rec.Client,
		requeued:  true,
		spec:      spec,
		agg:       parseAgg(req.Agg),
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}, nil
}

// worker drains the job queue. During a drain, remaining queued jobs are
// rejected with a retry hint instead of run.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.mu.Lock()
		switch {
		case job.state != StateQueued:
			// Deleted while queued; already terminal.
			s.mu.Unlock()
			continue
		case s.draining:
			s.rejectLocked(job, "draining")
			s.mu.Unlock()
			continue
		}
		job.state = StateRunning
		job.started = time.Now()
		jctx, cancel := runctl.WithDeadline(s.baseCtx, time.Duration(job.Req.TimeoutMS)*time.Millisecond)
		jctx, jcancel := context.WithCancel(jctx)
		job.cancel = func() { jcancel(); cancel() }
		s.mu.Unlock()
		if err := s.jobs.Started(job.ID, job.started.UnixMilli()); err != nil {
			s.cfg.Journal.Event("store_error", map[string]any{"id": job.ID, "op": "started", "error": err.Error()})
		}
		s.reg.Observe(obs.HServeQueueWait, job.started.Sub(job.submitted).Nanoseconds())
		tr := obs.Trace()
		tr.RecordSpan("job.queued", 0, job.submitted, job.started, "", 0)
		s.cfg.Journal.Event("job_started", map[string]any{"id": job.ID, "mode": job.Req.Mode})

		sp := tr.StartSpan("job.run")
		s.runJob(jctx, job)
		sp.End()
		job.cancel()
	}
}

// rejectLocked marks a job refused-before-running with a retry hint.
// Callers hold s.mu.
func (s *Server) rejectLocked(job *Job, reason string) {
	job.state = StateRejected
	job.reason = reason
	job.retryMS = s.cfg.retryAfter().Milliseconds()
	if reason == "draining" {
		s.drainRejected++
	}
	s.finishLocked(job)
	s.reg.Inc(obs.MServeRejected)
	s.cfg.Journal.Event("job_rejected", map[string]any{
		"id": job.ID, "reason": reason, "retry_after_ms": job.retryMS,
	})
}

// finishLocked records a job's terminal state in the JobStore, releases
// its admission slot, removes it from the live indexes and wakes
// waiters. From here on, lookups are answered from the store — which is
// what makes terminal state survive a restart when the store is
// durable. A store write failure is journaled, not fatal: the service
// keeps answering from memory for this job's lifetime.
func (s *Server) finishLocked(job *Job) {
	job.finished = time.Now()
	if err := s.jobs.Finished(job.jobRecord()); err != nil {
		s.cfg.Journal.Event("store_error", map[string]any{"id": job.ID, "op": "finished", "error": err.Error()})
	}
	s.adm.release(job.client)
	delete(s.byID, job.ID)
	if s.byKey[job.Key] == job {
		delete(s.byKey, job.Key)
	}
	close(job.done)
}

// SubmitOutcome says how a submission was handled.
type SubmitOutcome int

const (
	// Accepted: a new job was created and enqueued.
	Accepted SubmitOutcome = iota
	// Deduped: an identical in-flight or completed job was returned.
	Deduped
	// Refused: draining, throttled, over quota, or the queue is full;
	// the Refusal says which and when to retry.
	Refused
)

// Refusal explains a Refused outcome.
type Refusal struct {
	// Reason is the machine-readable class: "draining", "throttled",
	// "quota" or "queue_full".
	Reason string
	// RetryAfter is the server's backoff hint.
	RetryAfter time.Duration
}

// Submit is SubmitAs for the anonymous client.
func (s *Server) Submit(req *Request) (*View, SubmitOutcome, error) {
	view, outcome, _, err := s.SubmitAs(req, "")
	return view, outcome, err
}

// SubmitAs validates a request on behalf of a client identity and
// either enqueues a new job, attaches to an identical live or stored
// one, or refuses. Dedup is checked before admission, so cache hits are
// free; only work that would occupy the pool spends rate tokens and
// quota slots. The returned View is the job's state at return time
// (nil when refused); a Refused outcome carries a non-nil Refusal.
func (s *Server) SubmitAs(req *Request, client string) (*View, SubmitOutcome, *Refusal, error) {
	if err := parseRequest(req); err != nil {
		return nil, Refused, nil, err
	}
	var spec core.Spec
	if len(req.Game) > 0 {
		var err error
		spec, err = core.UnmarshalSpec(req.Game)
		if err != nil {
			return nil, Refused, nil, err
		}
	}
	key, err := dedupKey(req, spec)
	if err != nil {
		return nil, Refused, nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg.Inc(obs.MServeSubmitted)
	if prior, ok := s.byKey[key]; ok {
		s.reg.Inc(obs.MServeDeduped)
		s.cfg.Journal.Event("job_submitted", map[string]any{
			"id": prior.ID, "key": key, "mode": req.Mode, "deduped": true,
		})
		return prior.view(s.start), Deduped, nil, nil
	}
	if rec, ok := s.jobs.Find(key); ok {
		// The cross-restart dedup tier: a completed result from any earlier
		// process generation answers without re-solving.
		s.reg.Inc(obs.MServeDeduped)
		s.reg.Inc(obs.MServeStoreHits)
		s.cfg.Journal.Event("job_submitted", map[string]any{
			"id": rec.ID, "key": key, "mode": req.Mode, "deduped": true, "stored": true,
		})
		return storedView(rec), Deduped, nil, nil
	}
	if s.draining {
		s.reg.Inc(obs.MServeRejected)
		return nil, Refused, &Refusal{Reason: "draining", RetryAfter: s.cfg.retryAfter()}, nil
	}
	if ok, wait := s.adm.admit(client); !ok {
		s.reg.Inc(obs.MServeThrottled)
		s.cfg.Journal.Event("job_throttled", map[string]any{"client": client, "key": key, "retry_after_ms": wait.Milliseconds()})
		return nil, Refused, &Refusal{Reason: "throttled", RetryAfter: wait}, nil
	}
	if !s.adm.acquire(client) {
		s.reg.Inc(obs.MServeQuotaDenied)
		s.cfg.Journal.Event("job_quota_denied", map[string]any{"client": client, "key": key})
		return nil, Refused, &Refusal{Reason: "quota", RetryAfter: s.cfg.retryAfter()}, nil
	}
	if len(s.queue) == cap(s.queue) {
		s.adm.release(client)
		s.reg.Inc(obs.MServeRejected)
		s.reg.Inc(obs.MServeQueueFull)
		s.cfg.Journal.Event("job_rejected", map[string]any{
			"key": key, "reason": "queue_full", "retry_after_ms": s.cfg.retryAfter().Milliseconds(),
		})
		return nil, Refused, &Refusal{Reason: "queue_full", RetryAfter: s.cfg.retryAfter()}, nil
	}
	s.nextID++
	job := &Job{
		ID:        fmt.Sprintf("job-%06d", s.nextID),
		Key:       key,
		Req:       *req,
		client:    client,
		spec:      spec,
		agg:       parseAgg(req.Agg),
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	// Durably record the acceptance before the job becomes visible; the
	// worker's start record can then never precede it. Every send into
	// the queue happens under s.mu after the capacity check above, so
	// this send cannot block.
	if err := s.jobs.Submitted(job.jobRecord()); err != nil {
		s.cfg.Journal.Event("store_error", map[string]any{"id": job.ID, "op": "submitted", "error": err.Error()})
	}
	s.queue <- job
	s.byID[job.ID] = job
	s.byKey[key] = job
	s.cfg.Journal.Event("job_submitted", map[string]any{
		"id": job.ID, "key": key, "mode": req.Mode, "deduped": false,
	})
	return job.view(s.start), Accepted, nil, nil
}

// Get returns a job view by id: live jobs from the in-flight indexes,
// terminal or prior-generation jobs from the JobStore.
func (s *Server) Get(id string) (*View, bool) {
	s.mu.Lock()
	if job, ok := s.byID[id]; ok {
		v := job.view(s.start)
		s.mu.Unlock()
		return v, true
	}
	s.mu.Unlock()
	if rec, ok := s.jobs.Lookup(id); ok {
		return storedView(rec), true
	}
	return nil, false
}

// List returns every live and stored job, sorted by id (ids are
// zero-padded, so id order is submission order within a process
// generation). Live state wins when both tiers know an id.
func (s *Server) List() []*View {
	return s.Jobs("")
}

// Jobs returns the jobs matching a dedup key ("" = all), live and
// stored, sorted by id. This is the GET /v1/jobs?spec_fingerprint=
// backend: a fleet coordinator (or a curious operator) asks whether any
// process generation already solved a fingerprint.
func (s *Server) Jobs(key string) []*View {
	s.mu.Lock()
	live := make(map[string]*View, len(s.byID))
	for _, job := range s.byID {
		if key == "" || job.Key == key {
			live[job.ID] = job.view(s.start)
		}
	}
	s.mu.Unlock()

	out := make([]*View, 0, len(live))
	seen := make(map[string]bool, len(live))
	for _, rec := range s.jobs.Query(key) {
		if v, ok := live[rec.ID]; ok {
			out = append(out, v)
		} else {
			out = append(out, storedView(rec))
		}
		seen[rec.ID] = true
	}
	for id, v := range live {
		if !seen[id] {
			out = append(out, v)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].ID > out[j].ID; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Cancel stops a job: queued jobs become rejected (reason "cancelled"),
// running jobs get their context cancelled and end with run status
// "cancelled" plus a final checkpoint when enabled. Terminal jobs are
// left as they are. The bool reports whether the id was known.
func (s *Server) Cancel(id string) (*View, bool) {
	s.mu.Lock()
	job, ok := s.byID[id]
	if !ok {
		s.mu.Unlock()
		if rec, found := s.jobs.Lookup(id); found {
			return storedView(rec), true
		}
		return nil, false
	}
	switch job.state {
	case StateQueued:
		s.rejectLocked(job, "cancelled")
	case StateRunning:
		if job.cancel != nil {
			job.cancel()
		}
	}
	v := job.view(s.start)
	s.mu.Unlock()
	return v, true
}

// Wait blocks until the job is terminal or ctx fires; it returns the
// final view. Unknown ids return ok=false immediately; already-terminal
// ids return their stored view.
func (s *Server) Wait(ctx context.Context, id string) (*View, bool) {
	s.mu.Lock()
	job, ok := s.byID[id]
	s.mu.Unlock()
	if !ok {
		if rec, found := s.jobs.Lookup(id); found {
			return storedView(rec), true
		}
		return nil, false
	}
	select {
	case <-job.done:
	case <-ctx.Done():
	}
	v, _ := s.Get(id)
	return v, true
}

// Draining reports whether the server has begun its drain.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain performs the graceful shutdown: refuse new submissions, cancel
// in-flight jobs (they flush final checkpoints and report run_status),
// reject still-queued jobs with a retry hint, wait for the worker pool
// to exit, and close the JobStore (a durable store compacts its WAL on
// the way out). Safe to call more than once; later calls return the
// first drain's summary after it finishes.
func (s *Server) Drain() DrainSummary {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		inflight := 0
		for _, job := range s.byID {
			if job.state == StateRunning {
				inflight++
			}
		}
		s.mu.Unlock()

		// Stop in-flight work: every job context derives from baseCtx, so
		// this interrupts all running solves; each flushes its checkpoint
		// and final journal records on the way out.
		s.baseCancel()
		// No submission can enqueue after the draining flag is set (Submit
		// checks it under the lock), so closing the queue is race-free and
		// lets workers reject the remaining queued jobs and exit.
		close(s.queue)
		s.wg.Wait()

		s.mu.Lock()
		// A queued job that never reached a worker (closed queue drained
		// first) is rejected here so no accepted job is left dangling.
		for _, job := range s.byID {
			if job.state == StateQueued {
				s.rejectLocked(job, "draining")
			}
		}
		s.summary = DrainSummary{Cancelled: inflight, Rejected: s.drainRejected}
		s.mu.Unlock()
		if err := s.jobs.Close(); err != nil {
			s.cfg.Journal.Event("store_error", map[string]any{"op": "close", "error": err.Error()})
		}
		s.cfg.Journal.Event("drain", map[string]any{
			"cancelled_in_flight": inflight, "rejected_queued": s.summary.Rejected,
		})
	})
	return s.summary
}

// checkpointPath is where an enumeration job persists resume state.
func (s *Server) checkpointPath(job *Job) string {
	if s.cfg.DataDir == "" {
		return ""
	}
	return filepath.Join(s.cfg.DataDir, job.Key+".ckpt")
}

// jobJournalPath is where a job's JSONL journal lives ("" when DataDir
// is off). The SSE event stream tails this file.
func (s *Server) jobJournalPath(job *Job) string {
	if s.cfg.DataDir == "" {
		return ""
	}
	return filepath.Join(s.cfg.DataDir, job.ID+".jsonl")
}

// jobJournal opens the per-job JSONL journal (nil when DataDir is off —
// obs journals are nil-safe). A re-queued job appends to its previous
// generation's journal (salvaging a torn tail) so the SSE replay shows
// the whole lifecycle across the restart.
func (s *Server) jobJournal(job *Job) *obs.Journal {
	path := s.jobJournalPath(job)
	if path == "" {
		return nil
	}
	j, _, err := obs.OpenJournalConfig(obs.JournalConfig{Path: path, Reg: s.reg, Append: job.requeued})
	if err != nil {
		s.cfg.Journal.Event("job_journal_error", map[string]any{"id": job.ID, "error": err.Error()})
		return nil
	}
	return j
}
