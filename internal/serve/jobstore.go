package serve

import (
	"bytes"
	"encoding/json"
	"sync"

	"bbc/internal/obs"
	"bbc/internal/store"
)

// JobStore is the persistence seam of the service: every job-state
// transition flows through it, and lookups for jobs that are no longer
// live (terminal, or accepted by an earlier process generation) are
// answered from it. *store.Store implements it with a durable WAL +
// compacted index; the in-memory memStore (the default) implements it
// with the same semantics bounded by the retention cap — which is what
// keeps the serve tests hermetic and the zero Config usable.
type JobStore interface {
	// Submitted records a newly accepted job (state queued).
	Submitted(rec *store.JobRecord) error
	// Started records that a job began running at a unix-ms timestamp.
	Started(id string, atMS int64) error
	// Finished records a job's terminal state, result included.
	Finished(rec *store.JobRecord) error
	// Lookup returns a job by id.
	Lookup(id string) (*store.JobRecord, bool)
	// Find returns the most recent completed result for a dedup key —
	// the cross-restart dedup tier.
	Find(key string) (*store.JobRecord, bool)
	// Query returns every job with the given dedup key in submission
	// order ("" = all).
	Query(key string) []*store.JobRecord
	// Requeue returns jobs that are queued or running — work an earlier
	// process accepted but never finished.
	Requeue() []*store.JobRecord
	// Counts tallies stored jobs by state.
	Counts() (queued, running, done, rejected int)
	// Close flushes and releases the store.
	Close() error
}

// memStore is the in-memory JobStore: identical transition semantics to
// store.Store, no durability, terminal retention bounded by cap (oldest
// terminal evicted first; queued and running jobs are never evicted).
type memStore struct {
	mu    sync.Mutex
	cap   int
	jobs  map[string]*store.JobRecord
	order []string // submission order
	done  []string // terminal order, for eviction
}

func newMemStore(capacity int) *memStore {
	return &memStore{cap: capacity, jobs: make(map[string]*store.JobRecord)}
}

func copyRec(rec *store.JobRecord) *store.JobRecord {
	c := *rec
	return &c
}

func (m *memStore) Submitted(rec *store.JobRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	job := copyRec(rec)
	if job.State == "" {
		job.State = StateQueued
	}
	if _, ok := m.jobs[job.ID]; !ok {
		m.order = append(m.order, job.ID)
	}
	m.jobs[job.ID] = job
	return nil
}

func (m *memStore) Started(id string, atMS int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[id]; ok {
		j.State = StateRunning
		j.StartedMS = atMS
	}
	return nil
}

func (m *memStore) Finished(rec *store.JobRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	job := copyRec(rec)
	if _, ok := m.jobs[job.ID]; !ok {
		m.order = append(m.order, job.ID)
	}
	m.jobs[job.ID] = job
	m.done = append(m.done, job.ID)
	for len(m.done) > m.cap {
		evict := m.done[0]
		m.done = m.done[1:]
		if j, ok := m.jobs[evict]; ok && terminal(j) {
			delete(m.jobs, evict)
			for i, id := range m.order {
				if id == evict {
					m.order = append(m.order[:i], m.order[i+1:]...)
					break
				}
			}
		}
	}
	return nil
}

func terminal(j *store.JobRecord) bool {
	return j.State == StateDone || j.State == StateRejected
}

func (m *memStore) Lookup(id string) (*store.JobRecord, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, false
	}
	return copyRec(j), true
}

func (m *memStore) Find(key string) (*store.JobRecord, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := len(m.order) - 1; i >= 0; i-- {
		j := m.jobs[m.order[i]]
		if j.Key == key && j.State == StateDone && j.Complete {
			return copyRec(j), true
		}
	}
	return nil, false
}

func (m *memStore) Query(key string) []*store.JobRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []*store.JobRecord
	for _, id := range m.order {
		if j := m.jobs[id]; key == "" || j.Key == key {
			out = append(out, copyRec(j))
		}
	}
	return out
}

func (m *memStore) Requeue() []*store.JobRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []*store.JobRecord
	for _, id := range m.order {
		if j := m.jobs[id]; !terminal(j) {
			out = append(out, copyRec(j))
		}
	}
	return out
}

func (m *memStore) Counts() (queued, running, done, rejected int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		switch j.State {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		case StateDone:
			done++
		case StateRejected:
			rejected++
		}
	}
	return
}

func (m *memStore) Close() error { return nil }

// jobRecord renders a job's current state as a store record. Callers
// hold the server lock.
func (j *Job) jobRecord() *store.JobRecord {
	rec := &store.JobRecord{
		ID:           j.ID,
		Key:          j.Key,
		Client:       j.client,
		Mode:         j.Req.Mode,
		State:        j.state,
		Complete:     j.complete,
		Error:        j.errMsg,
		Reason:       j.reason,
		RetryAfterMS: j.retryMS,
		Checkpoint:   j.checkpoint,
		Resumable:    j.resumable,
	}
	if raw, err := json.Marshal(&j.Req); err == nil {
		rec.Req = raw
	}
	if j.state == StateDone {
		rec.RunStatus = j.runStatus.String()
	}
	if j.result != nil {
		if raw, err := json.Marshal(j.result); err == nil {
			rec.Result = raw
		}
	}
	if !j.submitted.IsZero() {
		rec.SubmittedMS = j.submitted.UnixMilli()
	}
	if !j.started.IsZero() {
		rec.StartedMS = j.started.UnixMilli()
	}
	if !j.finished.IsZero() {
		rec.FinishedMS = j.finished.UnixMilli()
	}
	return rec
}

// storedView renders a store record as a wire view. Stored views carry
// absolute timestamps (the record may predate this process), flagged
// with "stored": true.
func storedView(rec *store.JobRecord) *View {
	v := &View{
		ID:              rec.ID,
		Key:             rec.Key,
		RunID:           obs.RunID(),
		Mode:            rec.Mode,
		State:           rec.State,
		Complete:        rec.Complete,
		Error:           rec.Error,
		Reason:          rec.Reason,
		RetryAfterMS:    rec.RetryAfterMS,
		Checkpoint:      rec.Checkpoint,
		Resumable:       rec.Resumable,
		Stored:          true,
		SubmittedUnixMS: rec.SubmittedMS,
		StartedUnixMS:   rec.StartedMS,
		FinishedUnixMS:  rec.FinishedMS,
	}
	if rec.State == StateDone {
		v.RunStatus = rec.RunStatus
	}
	if len(rec.Result) > 0 {
		// Results are recorded compact; the index checkpoint's indented
		// envelope re-indents embedded raw JSON on the round trip, so
		// re-compact here — a stored result is then byte-identical to the
		// view the original process served.
		var buf bytes.Buffer
		if err := json.Compact(&buf, rec.Result); err == nil {
			v.Result = buf.Bytes()
		} else {
			v.Result = rec.Result
		}
	}
	return v
}
