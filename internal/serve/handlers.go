package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// maxRequestBody bounds a submission document; the largest legitimate
// dense spec (1024 nodes, three matrices) fits comfortably.
const maxRequestBody = 8 << 20

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs       submit a job (202 accepted, 200 dedup hit,
//	                      400 invalid, 429 queue full, 503 draining)
//	GET    /v1/jobs       list retained jobs
//	GET    /v1/jobs/{id}  poll one job
//	DELETE /v1/jobs/{id}  cancel: queued jobs are rejected, running jobs
//	                      stop with run status "cancelled" (and a final
//	                      checkpoint when persistence is on)
//	GET    /metrics       counter-registry snapshot plus job gauges
//	GET    /healthz       200 ok / 503 draining
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// submitResponse wraps the job view with how the submission was routed.
type submitResponse struct {
	Deduped bool  `json:"deduped"`
	Job     *View `json:"job"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error        string `json:"error"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "read body: " + err.Error()})
		return
	}
	if len(body) > maxRequestBody {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: "request body exceeds limit"})
		return
	}
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "decode request: " + err.Error()})
		return
	}
	view, outcome, err := s.Submit(&req)
	switch {
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	case outcome == Refused:
		status := http.StatusTooManyRequests
		msg := "job queue is full; retry later"
		if s.Draining() {
			status = http.StatusServiceUnavailable
			msg = "server is draining; retry against the restarted instance"
		}
		retry := s.cfg.retryAfter()
		w.Header().Set("Retry-After", strconv.Itoa(int(retry/time.Second)))
		writeJSON(w, status, errorResponse{Error: msg, RetryAfterMS: retry.Milliseconds()})
	case outcome == Deduped:
		writeJSON(w, http.StatusOK, submitResponse{Deduped: true, Job: view})
	default:
		writeJSON(w, http.StatusAccepted, submitResponse{Job: view})
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.List()})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	view, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job id (completed jobs are evicted after the retention bound)"})
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job id"})
		return
	}
	writeJSON(w, http.StatusAccepted, view)
}

// Metrics is the /metrics document: the counter-registry snapshot plus
// job-state gauges, the machine-readable face of the obs layer.
type Metrics struct {
	UptimeMS float64          `json:"uptime_ms"`
	Draining bool             `json:"draining"`
	Counters map[string]int64 `json:"counters"`
	Jobs     JobGauges        `json:"jobs"`
}

// JobGauges counts retained jobs by state.
type JobGauges struct {
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Done     int `json:"done"`
	Rejected int `json:"rejected"`
}

// Snapshot assembles the current Metrics document.
func (s *Server) Snapshot() *Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := &Metrics{
		UptimeMS: float64(time.Since(s.start).Microseconds()) / 1000,
		Draining: s.draining,
		Counters: s.reg.Snapshot(),
	}
	if m.Counters == nil {
		m.Counters = map[string]int64{}
	}
	for _, job := range s.byID {
		switch job.state {
		case StateQueued:
			m.Jobs.Queued++
		case StateRunning:
			m.Jobs.Running++
		case StateDone:
			m.Jobs.Done++
		case StateRejected:
			m.Jobs.Rejected++
		}
	}
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing more useful than noting it server-side.
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
	}
}
