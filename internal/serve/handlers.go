package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"bbc/internal/obs"
)

// maxRequestBody bounds a submission document; the largest legitimate
// dense spec (1024 nodes, three matrices) fits comfortably.
const maxRequestBody = 8 << 20

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs             submit a job (202 accepted, 200 dedup hit,
//	                            400 invalid, 429 queue full, 503 draining)
//	GET    /v1/jobs             list retained jobs
//	GET    /v1/jobs/{id}        poll one job
//	GET    /v1/jobs/{id}/events SSE stream: replay the job's journal, then
//	                            live-tail it until the job is terminal
//	DELETE /v1/jobs/{id}        cancel: queued jobs are rejected, running
//	                            jobs stop with run status "cancelled" (and
//	                            a final checkpoint when persistence is on)
//	GET    /metrics             JSON snapshot by default; Prometheus text
//	                            exposition via Accept: text/plain or
//	                            ?format=prometheus
//	GET    /healthz             liveness: 200 whenever the process can
//	                            answer, draining or not
//	GET    /readyz              readiness: 200 accepting work, 503 +
//	                            Retry-After while draining
//	GET    /buildinfo           go version, VCS revision, run id, uptime
//
// Every request's wall time is observed into the serve.http_request_ns
// histogram.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /buildinfo", s.handleBuildInfo)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		mux.ServeHTTP(w, r)
		s.reg.Observe(obs.HServeHTTP, time.Since(t0).Nanoseconds())
	})
}

// submitResponse wraps the job view with how the submission was routed.
type submitResponse struct {
	Deduped bool  `json:"deduped"`
	Job     *View `json:"job"`
}

// errorResponse is the uniform error body. Reason carries the
// machine-readable refusal class ("draining", "throttled", "quota",
// "queue_full") so clients branch on it instead of parsing the text.
type errorResponse struct {
	Error        string `json:"error"`
	Reason       string `json:"reason,omitempty"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// refusalText is the human-facing line for each refusal class.
var refusalText = map[string]string{
	"draining":   "server is draining; retry against the restarted instance",
	"throttled":  "client submission rate limit exceeded; retry later",
	"quota":      "client in-flight job quota reached; retry after a job finishes",
	"queue_full": "job queue is full; retry later",
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "read body: " + err.Error()})
		return
	}
	if len(body) > maxRequestBody {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: "request body exceeds limit"})
		return
	}
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "decode request: " + err.Error()})
		return
	}
	view, outcome, refusal, err := s.SubmitAs(&req, r.Header.Get("X-API-Key"))
	switch {
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	case outcome == Refused:
		if refusal == nil {
			refusal = &Refusal{Reason: "queue_full", RetryAfter: s.cfg.retryAfter()}
		}
		status := http.StatusTooManyRequests
		if refusal.Reason == "draining" {
			status = http.StatusServiceUnavailable
		}
		retrySec := int(refusal.RetryAfter / time.Second)
		if retrySec < 1 {
			retrySec = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(retrySec))
		writeJSON(w, status, errorResponse{
			Error:        refusalText[refusal.Reason],
			Reason:       refusal.Reason,
			RetryAfterMS: refusal.RetryAfter.Milliseconds(),
		})
	case outcome == Deduped:
		writeJSON(w, http.StatusOK, submitResponse{Deduped: true, Job: view})
	default:
		writeJSON(w, http.StatusAccepted, submitResponse{Job: view})
	}
}

// handleList answers GET /v1/jobs: all live and stored jobs, or — with
// ?spec_fingerprint=KEY — only the jobs for one dedup key. The filtered
// form is the historical-results API: a fleet coordinator asks whether
// any process generation already solved a fingerprint before paying for
// the solve again.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("spec_fingerprint")
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs(key)})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	view, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job id (completed jobs are evicted after the retention bound)"})
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job id"})
		return
	}
	writeJSON(w, http.StatusAccepted, view)
}

// Metrics is the /metrics document: the counter-registry snapshot,
// latency/work histograms with quantiles, job-state gauges and process
// runtime gauges — the machine-readable face of the obs layer.
type Metrics struct {
	RunID      string                   `json:"run_id"`
	UptimeMS   float64                  `json:"uptime_ms"`
	Draining   bool                     `json:"draining"`
	Counters   map[string]int64         `json:"counters"`
	Histograms map[string]obs.Histogram `json:"histograms,omitempty"`
	Jobs       JobGauges                `json:"jobs"`
	Pool       PoolGauges               `json:"pool"`
	Store      StoreGauges              `json:"store"`
	Admission  AdmissionGauges          `json:"admission"`
	Runtime    RuntimeStats             `json:"runtime"`
}

// JobGauges counts retained jobs by state: queued and running from the
// live indexes, done and rejected from the JobStore's retention.
type JobGauges struct {
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Done     int `json:"done"`
	Rejected int `json:"rejected"`
}

// StoreGauges is the JobStore's retention by state — with a durable
// store this spans process generations, not just this run.
type StoreGauges struct {
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Done     int `json:"done"`
	Rejected int `json:"rejected"`
}

// AdmissionGauges is the admission layer's live occupancy.
type AdmissionGauges struct {
	// Clients is how many distinct client identities are tracked.
	Clients int `json:"clients"`
	// InFlight is the total quota slots currently held across clients.
	InFlight int `json:"in_flight"`
}

// PoolGauges is the worker pool's saturation face: how deep the queue
// is against its bound and how much of the pool is busy. The fleet
// coordinator (and dashboards) read these to spot a saturated worker
// before the 429s start.
type PoolGauges struct {
	// Workers is the pool size.
	Workers int `json:"workers"`
	// InFlight is how many jobs are executing right now.
	InFlight int `json:"in_flight"`
	// QueueDepth is how many accepted jobs await a worker.
	QueueDepth int `json:"queue_depth"`
	// QueueCapacity is the queue bound; depth == capacity refuses with 429.
	QueueCapacity int `json:"queue_capacity"`
}

// RuntimeStats are the process gauges exposed alongside the counters.
type RuntimeStats struct {
	Goroutines     int    `json:"goroutines"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64 `json:"heap_sys_bytes"`
	GCCycles       uint32 `json:"gc_cycles"`
}

// Snapshot assembles the current Metrics document.
func (s *Server) Snapshot() *Metrics {
	s.mu.Lock()
	m := &Metrics{
		RunID:      obs.RunID(),
		UptimeMS:   float64(time.Since(s.start).Microseconds()) / 1000,
		Draining:   s.draining,
		Counters:   s.reg.Snapshot(),
		Histograms: s.reg.HistSnapshot(),
	}
	if m.Counters == nil {
		m.Counters = map[string]int64{}
	}
	for _, job := range s.byID {
		switch job.state {
		case StateQueued:
			m.Jobs.Queued++
		case StateRunning:
			m.Jobs.Running++
		}
	}
	m.Pool = PoolGauges{
		Workers:       s.cfg.workers(),
		InFlight:      m.Jobs.Running,
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
	}
	s.mu.Unlock()

	sq, sr, sd, sj := s.jobs.Counts()
	m.Store = StoreGauges{Queued: sq, Running: sr, Done: sd, Rejected: sj}
	m.Jobs.Done, m.Jobs.Rejected = sd, sj
	m.Admission.Clients, m.Admission.InFlight = s.adm.gauges()

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.Runtime = RuntimeStats{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		GCCycles:       ms.NumGC,
	}
	return m
}

// wantsPrometheus decides the /metrics representation: JSON stays the
// default (and is forced by ?format=json); Prometheus text exposition is
// selected by ?format=prometheus or an Accept header asking for
// text/plain or OpenMetrics — which is exactly what a Prometheus scraper
// sends.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus", "text":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !wantsPrometheus(r) {
		writeJSON(w, http.StatusOK, s.Snapshot())
		return
	}
	m := s.Snapshot()
	draining := 0.0
	if m.Draining {
		draining = 1
	}
	gauges := append(obs.RuntimeGauges(time.Since(s.start)),
		obs.Gauge{Name: "bbc_draining", Help: "1 while the server drains.", Value: draining},
		obs.Gauge{Name: "bbc_jobs_queued", Help: "Retained jobs in state queued.", Value: float64(m.Jobs.Queued)},
		obs.Gauge{Name: "bbc_jobs_running", Help: "Retained jobs in state running.", Value: float64(m.Jobs.Running)},
		obs.Gauge{Name: "bbc_jobs_done", Help: "Retained jobs in state done.", Value: float64(m.Jobs.Done)},
		obs.Gauge{Name: "bbc_jobs_rejected", Help: "Retained jobs in state rejected.", Value: float64(m.Jobs.Rejected)},
		obs.Gauge{Name: "bbc_pool_workers", Help: "Job pool size.", Value: float64(m.Pool.Workers)},
		obs.Gauge{Name: "bbc_jobs_in_flight", Help: "Jobs executing right now.", Value: float64(m.Pool.InFlight)},
		obs.Gauge{Name: "bbc_queue_depth", Help: "Accepted jobs awaiting a worker.", Value: float64(m.Pool.QueueDepth)},
		obs.Gauge{Name: "bbc_queue_capacity", Help: "Queue bound; depth == capacity refuses with 429.", Value: float64(m.Pool.QueueCapacity)},
		obs.Gauge{Name: "bbc_store_jobs", Help: "Jobs retained in the job store across all states.", Value: float64(m.Store.Queued + m.Store.Running + m.Store.Done + m.Store.Rejected)},
		obs.Gauge{Name: "bbc_admission_clients", Help: "Distinct client identities tracked by admission control.", Value: float64(m.Admission.Clients)},
		obs.Gauge{Name: "bbc_admission_in_flight", Help: "In-flight quota slots currently held across clients.", Value: float64(m.Admission.InFlight)},
	)
	w.Header().Set("Content-Type", obs.PrometheusContentType)
	_ = obs.WritePrometheus(w, s.reg, gauges)
}

// BuildInfo is the /buildinfo document: enough to answer "what exactly
// is running here" — toolchain, VCS revision, run id, process vitals.
type BuildInfo struct {
	RunID       string  `json:"run_id"`
	GoVersion   string  `json:"go_version"`
	Module      string  `json:"module,omitempty"`
	VCSRevision string  `json:"vcs_revision,omitempty"`
	VCSTime     string  `json:"vcs_time,omitempty"`
	VCSModified bool    `json:"vcs_modified,omitempty"`
	PID         int     `json:"pid"`
	UptimeMS    float64 `json:"uptime_ms"`
}

func (s *Server) handleBuildInfo(w http.ResponseWriter, _ *http.Request) {
	info := BuildInfo{
		RunID:     obs.RunID(),
		GoVersion: runtime.Version(),
		PID:       os.Getpid(),
		UptimeMS:  float64(time.Since(s.start).Microseconds()) / 1000,
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		info.Module = bi.Main.Path
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				info.VCSRevision = kv.Value
			case "vcs.time":
				info.VCSTime = kv.Value
			case "vcs.modified":
				info.VCSModified = kv.Value == "true"
			}
		}
	}
	writeJSON(w, http.StatusOK, info)
}

// handleHealth is pure liveness: a draining server is still alive (it
// is finishing checkpoints), so /healthz answers 200 until the process
// exits. Orchestrators restart on failed liveness — which is exactly
// wrong during a drain — so the "stop sending work" signal lives on
// /readyz instead.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "draining": s.Draining()})
}

// handleReady is readiness: 503 + Retry-After while draining, so load
// balancers and the fleet coordinator route work elsewhere while the
// process finishes its drain.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		retry := s.cfg.retryAfter()
		w.Header().Set("Retry-After", strconv.Itoa(int(retry/time.Second)))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing more useful than noting it server-side.
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
	}
}
