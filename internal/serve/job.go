package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"time"

	"bbc/internal/core"
	"bbc/internal/exper"
	"bbc/internal/obs"
	"bbc/internal/runctl"
)

// Request is the JSON body of a job submission. Mode selects the solver;
// the remaining fields parameterize it. Every field that changes the
// solve's outcome participates in the dedup key, so two requests dedup to
// one underlying solve exactly when they would compute the same thing.
type Request struct {
	// Mode is "enumerate" (exhaustive pure-NE scan), "walk" (best-response
	// dynamics) or "suite" (reproduction experiments).
	Mode string `json:"mode"`
	// Game is a core spec document (same schema bbcgen emits); required
	// for enumerate and walk.
	Game json.RawMessage `json:"game,omitempty"`
	// Agg is the cost aggregation: "sum" (default) or "max".
	Agg string `json:"agg,omitempty"`

	// Enumerate parameters.
	Pin         bool        `json:"pin,omitempty"`          // soundly pinned search space (unit lengths)
	Workers     int         `json:"workers,omitempty"`      // solver workers inside the job (0 = 1, serial)
	MaxNE       int         `json:"max_ne,omitempty"`       // stop after this many equilibria (0 = all)
	MaxProfiles uint64      `json:"max_profiles,omitempty"` // profile budget (0 = unbounded)
	Shard       *ShardRange `json:"shard,omitempty"`        // scan only pivot partitions [Lo, Hi)

	// Walk parameters.
	Sched string `json:"sched,omitempty"` // round-robin (default), max-cost-first, random
	Start string `json:"start,omitempty"` // empty (default) or random
	Seed  int64  `json:"seed,omitempty"`
	Steps int    `json:"steps,omitempty"` // max walk steps (0 = 10·n²)

	// Suite parameters.
	Only  []string `json:"only,omitempty"` // experiment ids (empty = all)
	Quick bool     `json:"quick,omitempty"`

	// TimeoutMS is the per-job wall-time budget in milliseconds (0 = none).
	// It bounds this run, not the solve identity, so it is excluded from
	// the dedup key.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// ShardRange restricts an enumerate job to the half-open range
// [Lo, Hi) of the search space's pivot partitions — the same
// partitioning the parallel enumerator fans out over (the strategy set
// of the first node with more than one strategy). Concatenating shard
// results in Lo order reproduces the serial odometer order exactly,
// which is what makes the fleet coordinator's merge byte-identical to a
// single-box scan. The shard participates in the dedup key and in the
// checkpoint fingerprint, so different shards of one game never collide.
type ShardRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// job states. A job is terminal in StateDone (ran, result attached,
// RunStatus says how it ended) or StateRejected (never ran: queue full,
// drain, or cancelled while queued; retry hint attached).
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateRejected = "rejected"
)

// Job is one accepted submission and its lifecycle state. Mutable fields
// are guarded by the owning Server's mutex.
type Job struct {
	ID  string
	Key string
	Req Request

	client   string // admission identity (X-API-Key; "" = anonymous)
	requeued bool   // recovered from the store at startup

	spec core.Spec
	agg  core.Aggregation

	state     string
	runStatus runctl.Status
	complete  bool
	result    any
	errMsg    string
	reason    string // rejection reason
	retryMS   int64  // retry hint for rejected jobs

	checkpoint string // persisted snapshot path ("" = none)
	resumable  bool

	submitted time.Time
	started   time.Time
	finished  time.Time

	cancel context.CancelFunc // non-nil while running; DELETE fires it
	done   chan struct{}      // closed when the job reaches a terminal state
}

// View is the wire representation of a job, safe to marshal concurrently
// because it is built under the server lock.
type View struct {
	ID        string `json:"id"`
	Key       string `json:"key"`
	RunID     string `json:"run_id"`
	Mode      string `json:"mode"`
	State     string `json:"state"`
	RunStatus string `json:"run_status,omitempty"` // terminal done jobs only
	Complete  bool   `json:"complete"`

	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`

	Reason       string `json:"reason,omitempty"`         // rejected jobs: why
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"` // rejected jobs: when to retry

	Checkpoint string `json:"checkpoint,omitempty"`
	Resumable  bool   `json:"resumable"`

	// Stored marks a view served from the JobStore rather than the live
	// job indexes — possibly recorded by an earlier process generation.
	Stored bool `json:"stored,omitempty"`

	SubmittedMS float64 `json:"submitted_ms"`
	StartedMS   float64 `json:"started_ms,omitempty"`
	FinishedMS  float64 `json:"finished_ms,omitempty"`

	// Absolute wall-clock timestamps (unix milliseconds). Unlike the
	// relative *_ms fields above, these stay meaningful across restarts.
	SubmittedUnixMS int64 `json:"submitted_unix_ms,omitempty"`
	StartedUnixMS   int64 `json:"started_unix_ms,omitempty"`
	FinishedUnixMS  int64 `json:"finished_unix_ms,omitempty"`
}

// view renders the job relative to the server start time. Callers hold
// the server lock.
func (j *Job) view(epoch time.Time) *View {
	v := &View{
		ID:           j.ID,
		Key:          j.Key,
		RunID:        obs.RunID(),
		Mode:         j.Req.Mode,
		State:        j.state,
		Complete:     j.complete,
		Error:        j.errMsg,
		Reason:       j.reason,
		RetryAfterMS: j.retryMS,
		Checkpoint:   j.checkpoint,
		Resumable:    j.resumable,
		SubmittedMS:  msSince(epoch, j.submitted),
	}
	if j.state == StateDone {
		v.RunStatus = j.runStatus.String()
	}
	if !j.submitted.IsZero() {
		v.SubmittedUnixMS = j.submitted.UnixMilli()
	}
	if !j.started.IsZero() {
		v.StartedMS = msSince(epoch, j.started)
		v.StartedUnixMS = j.started.UnixMilli()
	}
	if !j.finished.IsZero() {
		v.FinishedMS = msSince(epoch, j.finished)
		v.FinishedUnixMS = j.finished.UnixMilli()
	}
	if j.result != nil {
		if raw, err := json.Marshal(j.result); err == nil {
			v.Result = raw
		}
	}
	return v
}

func msSince(epoch, t time.Time) float64 {
	return float64(t.Sub(epoch).Microseconds()) / 1000
}

// parseRequest validates a submission and resolves the pieces the solver
// needs (spec, aggregation). Validation failures are client errors.
func parseRequest(req *Request) error {
	switch req.Agg {
	case "", "sum", "max":
	default:
		return fmt.Errorf("unknown agg %q (want sum or max)", req.Agg)
	}
	if req.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms must be >= 0")
	}
	switch req.Mode {
	case "enumerate":
		if req.Workers < 0 || req.MaxNE < 0 {
			return fmt.Errorf("workers and max_ne must be >= 0")
		}
		if req.Shard != nil && (req.Shard.Lo < 0 || req.Shard.Hi <= req.Shard.Lo) {
			return fmt.Errorf("shard range [%d, %d) is empty or negative", req.Shard.Lo, req.Shard.Hi)
		}
	case "walk":
		switch req.Sched {
		case "", "round-robin", "max-cost-first", "random":
		default:
			return fmt.Errorf("unknown sched %q", req.Sched)
		}
		switch req.Start {
		case "", "empty", "random":
		default:
			return fmt.Errorf("unknown start %q (want empty or random)", req.Start)
		}
		if req.Steps < 0 {
			return fmt.Errorf("steps must be >= 0")
		}
	case "suite":
		known := make(map[string]bool)
		for _, e := range exper.Suite() {
			known[e.ID] = true
		}
		for _, id := range req.Only {
			if !known[id] {
				return fmt.Errorf("unknown experiment %q", id)
			}
		}
		return nil // no game document
	default:
		return fmt.Errorf("unknown mode %q (want enumerate, walk or suite)", req.Mode)
	}
	if len(req.Game) == 0 {
		return fmt.Errorf("mode %s requires a game document", req.Mode)
	}
	return nil
}

// parseAgg maps the request aggregation name ("" = sum).
func parseAgg(name string) core.Aggregation {
	if name == "max" {
		return core.MaxDistance
	}
	return core.SumDistances
}

// dedupKey fingerprints the solve a request describes: every field that
// determines the outcome (and, for workers, the checkpoint shape) feeds
// the hash, normalized through the canonical spec encoding so equivalent
// game documents collide. TimeoutMS is deliberately excluded — a deadline
// bounds a run, it does not change what is being computed.
func dedupKey(req *Request, spec core.Spec) (string, error) {
	h := fnv.New64a()
	fmt.Fprintf(h, "mode=%s;agg=%s;", req.Mode, req.Agg)
	switch req.Mode {
	case "enumerate":
		fmt.Fprintf(h, "pin=%t;workers=%d;maxne=%d;maxprof=%d;", req.Pin, req.Workers, req.MaxNE, req.MaxProfiles)
		if req.Shard != nil {
			fmt.Fprintf(h, "shard=%d:%d;", req.Shard.Lo, req.Shard.Hi)
		}
	case "walk":
		fmt.Fprintf(h, "sched=%s;start=%s;seed=%d;steps=%d;", req.Sched, req.Start, req.Seed, req.Steps)
	case "suite":
		fmt.Fprintf(h, "quick=%t;only=%v;", req.Quick, req.Only)
	}
	if spec != nil {
		canon, err := core.MarshalSpec(spec)
		if err != nil {
			return "", err
		}
		h.Write(canon)
	}
	return fmt.Sprintf("bbc-%016x", h.Sum64()), nil
}
