package serve

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"time"

	"bbc/internal/core"
	"bbc/internal/dynamics"
	"bbc/internal/exper"
	"bbc/internal/obs"
	"bbc/internal/runctl"
)

// enumCheckpointKind matches the bbcsim snapshot schema, so a checkpoint
// left by a drained server can equally be resumed by the CLI.
const enumCheckpointKind = "enumeration"

// EnumResult is the wire result of an enumerate job. For sharded jobs,
// SpaceSize/Checked/Equilibria describe the shard's slice of the space
// and Fingerprint is the shard-qualified scan fingerprint — the
// idempotency key the fleet coordinator merges on.
type EnumResult struct {
	N           int            `json:"n"`
	Agg         string         `json:"agg"`
	Space       string         `json:"space"` // full | pinned
	SpaceSize   uint64         `json:"space_size"`
	Checked     uint64         `json:"checked"`
	Equilibria  []core.Profile `json:"equilibria"`
	Shard       *ShardRange    `json:"shard,omitempty"`
	Fingerprint string         `json:"fingerprint,omitempty"`
}

// WalkResult is the wire result of a walk job.
type WalkResult struct {
	N          int          `json:"n"`
	Steps      int          `json:"steps"`
	Moves      int          `json:"moves"`
	Outcome    string       `json:"outcome"` // converged | loop | exhausted | cancelled | deadline
	SocialCost int64        `json:"social_cost"`
	Final      core.Profile `json:"final"`
}

// SuiteResult is the wire result of a suite job.
type SuiteResult struct {
	Reports []SuiteReport `json:"reports"`
	Passed  int           `json:"passed"`
	Failed  int           `json:"failed"`
}

// SuiteReport is one experiment's outcome.
type SuiteReport struct {
	ID       string   `json:"id"`
	Title    string   `json:"title"`
	Pass     bool     `json:"pass"`
	Rows     []string `json:"rows,omitempty"`
	Findings []string `json:"findings,omitempty"`
	WallMS   float64  `json:"wall_ms"`
}

// runJob executes one job end to end and records its terminal state.
func (s *Server) runJob(ctx context.Context, job *Job) {
	jj := s.jobJournal(job)
	jj.Event("job", map[string]any{"id": job.ID, "key": job.Key, "mode": job.Req.Mode})
	s.reg.Inc(obs.MServeSolves)
	stopProgress := s.startProgress(job, jj)

	var (
		result any
		status runctl.Status
		err    error
	)
	switch job.Req.Mode {
	case "enumerate":
		result, status, err = s.runEnumerate(ctx, job, jj)
	case "walk":
		result, status, err = s.runWalk(ctx, job, jj)
	case "suite":
		result, status, err = s.runSuite(ctx, job)
	default:
		err = fmt.Errorf("serve: unhandled mode %q", job.Req.Mode)
	}
	stopProgress()

	s.mu.Lock()
	job.state = StateDone
	job.runStatus = status
	job.complete = err == nil && status.Complete()
	job.result = result
	if err != nil {
		job.errMsg = err.Error()
	}
	view := job.view(s.start)
	s.mu.Unlock()

	s.reg.Inc(obs.MServeCompleted)
	// The job journal is finished and closed before finishLocked marks the
	// job terminal: an SSE tail woken by job.done then always finds the
	// final run_status record already on disk.
	jj.RunStatus(status.String(), view.Complete, map[string]any{
		"id": job.ID, "mode": job.Req.Mode, "resumable": view.Resumable,
	})
	if cerr := jj.Close(); cerr != nil {
		s.cfg.Journal.Event("job_journal_error", map[string]any{"id": job.ID, "error": cerr.Error()})
	}
	s.cfg.Journal.Event("job_done", map[string]any{
		"id": job.ID, "status": status.String(), "complete": view.Complete,
		"resumable": view.Resumable, "error": view.Error,
	})

	s.mu.Lock()
	s.finishLocked(job)
	s.mu.Unlock()
}

// startProgress journals a throttled "progress" record (live counters
// ride in the snapshot every record carries) while the job runs, so SSE
// watchers see movement between checkpoints. The returned stop function
// must be called before the journal's final records are written. A nil
// journal starts nothing.
func (s *Server) startProgress(job *Job, jj *obs.Journal) func() {
	if jj == nil {
		return func() {}
	}
	stop := make(chan struct{})
	idle := make(chan struct{})
	go func() {
		defer close(idle)
		tick := time.NewTicker(s.cfg.progressEvery())
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				jj.Event("progress", map[string]any{"id": job.ID, "state": StateRunning})
			}
		}
	}()
	return func() {
		close(stop)
		<-idle
	}
}

// runEnumerate executes an exhaustive pure-NE scan with checkpoint
// persistence: an existing snapshot for the same solve key is resumed,
// periodic and final snapshots are saved through runctl.Store, and a
// completed solve removes its snapshot generations.
func (s *Server) runEnumerate(ctx context.Context, job *Job, jj *obs.Journal) (any, runctl.Status, error) {
	spec, agg := job.spec, job.agg
	var (
		ss        *core.SearchSpace
		spaceName = "full"
		err       error
	)
	if job.Req.Pin {
		spaceName = "pinned"
		ss, err = core.PinnedSpace(spec, s.cfg.limitPerNode())
	} else {
		ss, err = core.FullSpace(spec, s.cfg.limitPerNode())
	}
	if err != nil {
		return nil, runctl.StatusComplete, err
	}
	// The fingerprint hashes the full space, then is shard-qualified:
	// EnumFingerprint only sees per-node set *lengths*, so two different
	// equal-width shards of one game would otherwise share a fingerprint
	// and could cross-resume each other's checkpoints.
	fp := core.EnumFingerprint(spec, agg, ss)
	if sh := job.Req.Shard; sh != nil {
		if err := sliceShard(ss, sh); err != nil {
			return nil, runctl.StatusComplete, err
		}
		fp = fmt.Sprintf("%s+shard[%d:%d)", fp, sh.Lo, sh.Hi)
	}

	ckptPath := s.checkpointPath(job)
	var store *runctl.Store
	var resume *core.EnumCheckpoint
	if ckptPath != "" {
		store = &runctl.Store{Path: ckptPath, Retries: 2}
		env, rec, lerr := store.TryLoad()
		switch {
		case lerr != nil:
			// Both generations unusable: journal it and start fresh — a
			// service must make progress, not wedge on stale state.
			jj.Event("checkpoint_unreadable", map[string]any{"path": ckptPath, "error": lerr.Error()})
		case env != nil:
			var cp core.EnumCheckpoint
			if derr := env.Decode(enumCheckpointKind, fp, &cp); derr != nil {
				jj.Event("resume_mismatch", map[string]any{"path": rec.Path, "error": derr.Error()})
			} else {
				resume = &cp
				s.reg.Inc(obs.MServeResumed)
				jj.Event("resume", map[string]any{"path": rec.Path, "checked": cp.Checked, "fallback": rec.Fallback})
			}
		}
	}
	save := func(cp *core.EnumCheckpoint, st runctl.Status) {
		if store == nil || cp == nil {
			return
		}
		env, serr := runctl.NewCheckpoint(enumCheckpointKind, fp, st, s.reg.Snapshot(), cp)
		if serr == nil {
			serr = store.Save(env)
		}
		if serr != nil {
			jj.Event("checkpoint_error", map[string]any{"path": ckptPath, "error": serr.Error()})
			return
		}
		obs.Trace().Instant("job.checkpoint", 0, "checked", int64(cp.Checked))
		jj.Checkpoint(ckptPath, enumCheckpointKind, map[string]any{"checked": cp.Checked})
	}

	workers := job.Req.Workers
	if workers <= 0 {
		workers = 1
	}
	cfg := core.EnumConfig{
		Ctx:             ctx,
		MaxEquilibria:   job.Req.MaxNE,
		MaxProfiles:     job.Req.MaxProfiles,
		Workers:         workers,
		Resume:          resume,
		CheckpointEvery: s.cfg.CheckpointEvery,
		OnCheckpoint: func(cp *core.EnumCheckpoint) {
			save(cp, runctl.StatusFromContext(ctx))
		},
	}
	var res *core.NEResult
	if workers == 1 {
		res, err = core.EnumeratePureNEOpts(spec, agg, ss, cfg)
	} else {
		res, err = core.EnumeratePureNEParallelOpts(spec, agg, ss, cfg)
	}
	if err != nil {
		return nil, runctl.StatusComplete, err
	}
	if res.Resume != nil {
		save(res.Resume, res.Status)
		s.mu.Lock()
		job.checkpoint = ckptPath
		job.resumable = store != nil
		s.mu.Unlock()
	} else if store != nil {
		// The solve is complete; stale mid-scan snapshots would only make a
		// future identical submission redo the tail, so drop them.
		_ = os.Remove(store.Path)
		_ = os.Remove(store.PrevPath())
	}
	agg_ := job.Req.Agg
	if agg_ == "" {
		agg_ = "sum"
	}
	return &EnumResult{
		N:           spec.N(),
		Agg:         agg_,
		Space:       spaceName,
		SpaceSize:   ss.Size(),
		Checked:     res.Checked,
		Equilibria:  res.Equilibria,
		Shard:       job.Req.Shard,
		Fingerprint: fp,
	}, res.Status, nil
}

// sliceShard restricts the search space to the requested pivot
// partition range in place. The range is half-open over the pivot
// node's strategy set; a space with no pivot (a single profile) only
// admits the trivial shard [0, 1).
func sliceShard(ss *core.SearchSpace, sh *ShardRange) error {
	pivot := ss.Pivot()
	if pivot < 0 {
		if sh.Lo != 0 || sh.Hi != 1 {
			return fmt.Errorf("serve: shard [%d, %d) on a single-profile space (only [0, 1) exists)", sh.Lo, sh.Hi)
		}
		return nil
	}
	parts := len(ss.PerNode[pivot])
	if sh.Hi > parts {
		return fmt.Errorf("serve: shard [%d, %d) exceeds the %d pivot partitions", sh.Lo, sh.Hi, parts)
	}
	ss.PerNode[pivot] = ss.PerNode[pivot][sh.Lo:sh.Hi]
	return nil
}

// runWalk executes a best-response walk job. Walks are deterministic
// given (sched, start, seed), which is what makes them dedupable.
func (s *Server) runWalk(ctx context.Context, job *Job, jj *obs.Journal) (any, runctl.Status, error) {
	spec, agg := job.spec, job.agg
	n := spec.N()
	rng := rand.New(rand.NewSource(job.Req.Seed))

	var start core.Profile
	switch job.Req.Start {
	case "", "empty":
		start = core.NewEmptyProfile(n)
	case "random":
		uni, ok := spec.(*core.Uniform)
		if !ok {
			return nil, runctl.StatusComplete, fmt.Errorf("serve: random start requires a uniform game")
		}
		start = dynamics.RandomStart(rng, n, uni.K())
	}
	var sched dynamics.Scheduler
	switch job.Req.Sched {
	case "", "round-robin":
		sched = dynamics.NewRoundRobin(n)
	case "max-cost-first":
		sched = &dynamics.MaxCostFirst{Agg: agg}
	case "random":
		sched = &dynamics.RandomScheduler{Rng: rng}
	}
	res, err := dynamics.Run(spec, start, sched, agg, dynamics.Options{
		Ctx:         ctx,
		MaxSteps:    job.Req.Steps,
		DetectLoops: job.Req.Sched != "random",
		Journal:     jj,
	})
	if err != nil {
		return nil, runctl.StatusComplete, err
	}
	out := &WalkResult{
		N:          n,
		Steps:      res.Steps,
		Moves:      res.Moves,
		SocialCost: core.SocialCost(spec, res.Final, agg),
		Final:      res.Final,
	}
	switch {
	case res.Converged:
		out.Outcome = "converged"
	case res.Loop != nil:
		out.Outcome = "loop"
	case res.Status == runctl.StatusCancelled:
		out.Outcome = "cancelled"
	case res.Status == runctl.StatusDeadline:
		out.Outcome = "deadline"
	default:
		out.Outcome = "exhausted"
	}
	// A walk that merely exhausted its step budget is a delivered answer,
	// not a truncation the client needs to retry.
	status := res.Status
	if status == runctl.StatusBudget {
		status = runctl.StatusComplete
	}
	return out, status, nil
}

// runSuite runs the selected reproduction experiments under the job
// context; an interrupt stops scheduling further experiments.
func (s *Server) runSuite(ctx context.Context, job *Job) (any, runctl.Status, error) {
	cfg := exper.Config{Quick: job.Req.Quick, Ctx: ctx}
	selected := exper.Suite()
	if len(job.Req.Only) > 0 {
		want := make(map[string]bool, len(job.Req.Only))
		for _, id := range job.Req.Only {
			want[id] = true
		}
		kept := selected[:0]
		for _, e := range selected {
			if want[e.ID] {
				kept = append(kept, e)
			}
		}
		selected = kept
	}
	out := &SuiteResult{}
	for _, e := range selected {
		if cfg.Interrupted() {
			return out, runctl.StatusFromContext(ctx), nil
		}
		r := exper.Instrumented(e.Run, cfg)
		out.Reports = append(out.Reports, SuiteReport{
			ID: r.ID, Title: r.Title, Pass: r.Pass,
			Rows: r.Rows, Findings: r.Findings, WallMS: r.WallMS,
		})
		if r.Pass {
			out.Passed++
		} else {
			out.Failed++
		}
	}
	return out, runctl.StatusFromContext(ctx), nil
}
