package serve

import (
	"encoding/json"
	"fmt"
	"testing"

	"bbc/internal/core"
)

// decodeEnum unwraps an enumerate job's result document.
func decodeEnum(t *testing.T, v *View) *EnumResult {
	t.Helper()
	if v.State != StateDone || v.Error != "" {
		t.Fatalf("job %s: state=%s err=%q", v.ID, v.State, v.Error)
	}
	var res EnumResult
	if err := json.Unmarshal(v.Result, &res); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	return &res
}

// TestShardedScanMergesToReference is the sharding contract: splitting
// the pivot partition range across jobs and concatenating the shard
// results in range order reproduces the unsharded scan — same checked
// count, same equilibria, same order.
func TestShardedScanMergesToReference(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2})
	game := uniformGame(4, 1)

	ref, outcome, err := s.Submit(&Request{Mode: "enumerate", Game: game})
	if err != nil || outcome != Accepted {
		t.Fatalf("reference submit: outcome=%v err=%v", outcome, err)
	}
	refRes := decodeEnum(t, waitState(t, s, ref.ID, StateDone))
	if refRes.Checked == 0 || len(refRes.Equilibria) == 0 {
		t.Fatalf("degenerate reference scan: %+v", refRes)
	}

	// The pivot of the uniform(4,1) full space is node 0 with 3
	// strategies ({1},{2},{3}); slice it into uneven shards.
	spec, err := core.UnmarshalSpec(game)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := core.FullSpace(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	parts := len(ss.PerNode[ss.Pivot()])
	if parts < 2 {
		t.Fatalf("test game has %d pivot partitions; need >= 2", parts)
	}

	var (
		merged  []core.Profile
		checked uint64
		fps     = map[string]bool{}
	)
	for _, sh := range []ShardRange{{Lo: 0, Hi: 1}, {Lo: 1, Hi: parts}} {
		sh := sh
		v, outcome, err := s.Submit(&Request{Mode: "enumerate", Game: game, Shard: &sh})
		if err != nil || outcome != Accepted {
			t.Fatalf("shard %+v submit: outcome=%v err=%v", sh, outcome, err)
		}
		res := decodeEnum(t, waitState(t, s, v.ID, StateDone))
		if res.Shard == nil || *res.Shard != sh {
			t.Errorf("shard echo = %+v, want %+v", res.Shard, sh)
		}
		if res.Fingerprint == "" || fps[res.Fingerprint] {
			t.Errorf("shard %+v fingerprint %q empty or colliding", sh, res.Fingerprint)
		}
		fps[res.Fingerprint] = true
		merged = append(merged, res.Equilibria...)
		checked += res.Checked
	}

	if checked != refRes.Checked {
		t.Errorf("merged checked = %d, reference = %d", checked, refRes.Checked)
	}
	got, _ := json.Marshal(merged)
	want, _ := json.Marshal(refRes.Equilibria)
	if string(got) != string(want) {
		t.Errorf("merged equilibria != reference:\n got %s\nwant %s", got, want)
	}
}

// TestShardValidation: malformed or out-of-range shards are refused,
// and distinct shards of one game never dedup to the same job.
func TestShardValidation(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1})
	game := uniformGame(4, 1)

	for _, sh := range []ShardRange{{Lo: -1, Hi: 1}, {Lo: 2, Hi: 2}, {Lo: 3, Hi: 1}} {
		sh := sh
		if _, _, err := s.Submit(&Request{Mode: "enumerate", Game: game, Shard: &sh}); err == nil {
			t.Errorf("shard %+v accepted, want validation error", sh)
		}
	}

	// Out of range against the actual partition count: caught at run
	// time, surfacing as a failed job rather than a hung one.
	big := ShardRange{Lo: 0, Hi: 1000}
	v, outcome, err := s.Submit(&Request{Mode: "enumerate", Game: game, Shard: &big})
	if err != nil || outcome != Accepted {
		t.Fatalf("submit: outcome=%v err=%v", outcome, err)
	}
	if final := waitState(t, s, v.ID, StateDone); final.Error == "" {
		t.Error("out-of-range shard ran without error")
	}

	// Distinct shards must get distinct dedup keys; a resubmitted
	// identical shard must dedup.
	a, outcomeA, _ := s.Submit(&Request{Mode: "enumerate", Game: game, Shard: &ShardRange{Lo: 0, Hi: 1}})
	b, outcomeB, _ := s.Submit(&Request{Mode: "enumerate", Game: game, Shard: &ShardRange{Lo: 1, Hi: 2}})
	if outcomeA != Accepted || outcomeB != Accepted {
		t.Fatalf("shard submits: %v %v", outcomeA, outcomeB)
	}
	if a.Key == b.Key {
		t.Errorf("distinct shards share dedup key %s", a.Key)
	}
	waitState(t, s, a.ID, StateDone)
	dup, outcomeDup, _ := s.Submit(&Request{Mode: "enumerate", Game: game, Shard: &ShardRange{Lo: 0, Hi: 1}})
	if outcomeDup != Deduped || dup.ID != a.ID {
		t.Errorf("identical shard resubmit: outcome=%v id=%s, want dedup to %s", outcomeDup, dup.ID, a.ID)
	}
}

// TestShardCheckpointFingerprintsDiffer guards the fingerprint
// qualification: equal-width shards hash identical per-node set lengths,
// so only the shard suffix keeps their checkpoints from cross-resuming.
func TestShardCheckpointFingerprintsDiffer(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1})
	game := uniformGame(4, 1)
	fps := map[string]string{}
	for _, sh := range []ShardRange{{Lo: 0, Hi: 1}, {Lo: 1, Hi: 2}, {Lo: 2, Hi: 3}} {
		sh := sh
		v, outcome, err := s.Submit(&Request{Mode: "enumerate", Game: game, Shard: &sh})
		if err != nil || outcome != Accepted {
			t.Fatalf("submit %+v: outcome=%v err=%v", sh, outcome, err)
		}
		res := decodeEnum(t, waitState(t, s, v.ID, StateDone))
		key := fmt.Sprintf("%d:%d", sh.Lo, sh.Hi)
		for prior, fp := range fps {
			if fp == res.Fingerprint {
				t.Errorf("shards %s and %s share fingerprint %q", prior, key, fp)
			}
		}
		fps[key] = res.Fingerprint
	}
}
