// Package brspace explores the best-response configuration graph of a BBC
// game: states are strategy profiles, and each unstable player contributes
// one edge to the profile where it plays its (deterministic, exact) best
// response. Sink states are exactly the pure Nash equilibria; sink
// strongly-connected components with more than one state are *inescapable
// best-response cycles* — from those states no best-response walk can ever
// reach an equilibrium, a strictly stronger phenomenon than the escapable
// loop of the paper's Figure 4. The explorer powers the weak-acyclicity
// experiment (E18) extending Section 4.3.
package brspace

import (
	"fmt"

	"bbc/internal/core"
	"bbc/internal/graph"
)

// Explorer configures a best-response space exploration.
type Explorer struct {
	Spec core.Spec
	Agg  core.Aggregation
	// MaxStates caps the explored state count; 0 means 200,000.
	MaxStates int
}

func (e *Explorer) maxStates() int {
	if e.MaxStates > 0 {
		return e.MaxStates
	}
	return 200_000
}

// Space is the explored portion of the best-response graph.
type Space struct {
	// States holds the discovered profiles; the index is the state id.
	States []core.Profile
	// Index maps profile keys to state ids.
	Index map[string]int
	// Edges[s] lists successor state ids (one per unstable player of s,
	// deduplicated).
	Edges [][]int
	// Movers[s][i] is the player whose best response produces Edges[s][i].
	Movers [][]int
	// Equilibria lists the sink state ids (no unstable player).
	Equilibria []int
	// Truncated reports whether the exploration hit MaxStates; analyses
	// over a truncated space are lower bounds only.
	Truncated bool
}

// Explore runs a BFS over best-response moves from the given start
// profiles. Every start must be feasible.
func (e *Explorer) Explore(starts []core.Profile) (*Space, error) {
	if len(starts) == 0 {
		return nil, fmt.Errorf("brspace: need at least one start profile")
	}
	s := &Space{Index: make(map[string]int)}
	var queue []int
	add := func(p core.Profile) (int, bool) {
		key := p.Key()
		if id, ok := s.Index[key]; ok {
			return id, false
		}
		id := len(s.States)
		s.States = append(s.States, p.Clone())
		s.Index[key] = id
		s.Edges = append(s.Edges, nil)
		s.Movers = append(s.Movers, nil)
		return id, true
	}
	for _, p := range starts {
		if err := p.Validate(e.Spec); err != nil {
			return nil, fmt.Errorf("brspace: invalid start: %w", err)
		}
		if id, fresh := add(p); fresh {
			queue = append(queue, id)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		p := s.States[id]
		g := p.Realize(e.Spec)
		stable := true
		seenSucc := map[int]bool{}
		for u := 0; u < e.Spec.N(); u++ {
			o := core.NewOracle(e.Spec, g, u, e.Agg)
			cur := o.Evaluate(p[u])
			if cur == o.LowerBound() {
				continue
			}
			best, bestCost, err := o.BestExact(0)
			if err != nil {
				return nil, err
			}
			if bestCost >= cur {
				continue
			}
			stable = false
			q := p.Clone()
			q[u] = best
			succ, fresh := add(q)
			if fresh {
				if len(s.States) > e.maxStates() {
					s.Truncated = true
					// Remove the over-cap state again to keep invariants.
					s.States = s.States[:len(s.States)-1]
					delete(s.Index, q.Key())
					s.Edges = s.Edges[:len(s.Edges)-1]
					s.Movers = s.Movers[:len(s.Movers)-1]
					continue
				}
				queue = append(queue, succ)
			}
			if !seenSucc[succ] {
				seenSucc[succ] = true
				s.Edges[id] = append(s.Edges[id], succ)
				s.Movers[id] = append(s.Movers[id], u)
			}
		}
		if stable {
			s.Equilibria = append(s.Equilibria, id)
		}
	}
	return s, nil
}

// AllProfiles enumerates every feasible profile of the spec (the full
// state space), for exhaustive analyses of small games. The product of
// per-node feasible strategy counts must not exceed cap (0 means 200,000).
func AllProfiles(spec core.Spec, cap uint64) ([]core.Profile, error) {
	if cap == 0 {
		cap = 200_000
	}
	n := spec.N()
	perNode := make([][]core.Strategy, n)
	size := uint64(1)
	for u := 0; u < n; u++ {
		set, err := core.AllStrategies(spec, u, false, 0)
		if err != nil {
			return nil, err
		}
		perNode[u] = set
		if size > cap/uint64(len(set)) {
			return nil, fmt.Errorf("brspace: state space exceeds cap %d", cap)
		}
		size *= uint64(len(set))
	}
	out := make([]core.Profile, 0, size)
	idx := make([]int, n)
	for {
		p := make(core.Profile, n)
		for u := range p {
			p[u] = perNode[u][idx[u]]
		}
		out = append(out, p)
		u := n - 1
		for u >= 0 {
			idx[u]++
			if idx[u] < len(perNode[u]) {
				break
			}
			idx[u] = 0
			u--
		}
		if u < 0 {
			return out, nil
		}
	}
}

// Analysis summarizes the structure of an explored space.
type Analysis struct {
	States     int
	Equilibria int
	// ReachEquilibrium counts states from which at least one best-response
	// walk reaches some equilibrium ("weakly acyclic" states).
	ReachEquilibrium int
	// RecurrentCycleStates counts states inside sink SCCs of size > 1 —
	// from these, no best-response walk ever reaches an equilibrium.
	RecurrentCycleStates int
	// RecurrentClasses is the number of sink SCCs of size > 1.
	RecurrentClasses int
	// Truncated propagates Space.Truncated; a truncated analysis is only
	// a lower bound on reachability.
	Truncated bool
}

// Analyze computes equilibrium reachability and recurrent classes.
func (s *Space) Analyze() *Analysis {
	a := &Analysis{States: len(s.States), Equilibria: len(s.Equilibria), Truncated: s.Truncated}

	// Backward reachability from equilibria over reversed edges.
	rev := make([][]int, len(s.States))
	for from, outs := range s.Edges {
		for _, to := range outs {
			rev[to] = append(rev[to], from)
		}
	}
	reach := make([]bool, len(s.States))
	queue := append([]int(nil), s.Equilibria...)
	for _, id := range queue {
		reach[id] = true
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, from := range rev[id] {
			if !reach[from] {
				reach[from] = true
				queue = append(queue, from)
			}
		}
	}
	for _, ok := range reach {
		if ok {
			a.ReachEquilibrium++
		}
	}

	// Sink SCCs of size > 1 = inescapable cycles. Build a graph.Digraph to
	// reuse Tarjan.
	dg := graph.New(len(s.States))
	for from, outs := range s.Edges {
		for _, to := range outs {
			if from != to {
				dg.AddArc(from, to, 1)
			}
		}
	}
	comp, count := dg.SCC()
	compSize := make([]int, count)
	compHasExit := make([]bool, count)
	for id, c := range comp {
		compSize[c]++
		for _, to := range s.Edges[id] {
			if comp[to] != c {
				compHasExit[c] = true
			}
		}
	}
	for c := 0; c < count; c++ {
		if compSize[c] > 1 && !compHasExit[c] {
			a.RecurrentClasses++
			a.RecurrentCycleStates += compSize[c]
		}
	}
	return a
}
