package brspace

import (
	"testing"

	"bbc/internal/construct"
	"bbc/internal/core"
)

func TestAllProfilesCount(t *testing.T) {
	spec := core.MustUniform(3, 1)
	ps, err := AllProfiles(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 3 strategies per node (empty + 2 singletons), 3 nodes -> 27.
	if len(ps) != 27 {
		t.Fatalf("profiles = %d, want 27", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if err := p.Validate(spec); err != nil {
			t.Fatal(err)
		}
		if seen[p.Key()] {
			t.Fatalf("duplicate profile %v", p)
		}
		seen[p.Key()] = true
	}
}

func TestAllProfilesCap(t *testing.T) {
	spec := core.MustUniform(10, 3)
	if _, err := AllProfiles(spec, 1000); err == nil {
		t.Fatal("expected cap error")
	}
}

func TestExploreFullSmallGame(t *testing.T) {
	// The (3,1)-uniform game: the full best-response graph has exactly the
	// two directed 3-cycles as sinks, and every state reaches one.
	spec := core.MustUniform(3, 1)
	starts, err := AllProfiles(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := &Explorer{Spec: spec, Agg: core.SumDistances}
	space, err := e.Explore(starts)
	if err != nil {
		t.Fatal(err)
	}
	if space.Truncated {
		t.Fatal("tiny space should not truncate")
	}
	if len(space.States) != 27 {
		t.Fatalf("states = %d, want 27", len(space.States))
	}
	if len(space.Equilibria) != 2 {
		t.Fatalf("equilibria = %d, want 2", len(space.Equilibria))
	}
	a := space.Analyze()
	if a.ReachEquilibrium != a.States {
		t.Fatalf("only %d/%d states reach an equilibrium", a.ReachEquilibrium, a.States)
	}
	if a.RecurrentClasses != 0 {
		t.Fatalf("unexpected recurrent classes: %d", a.RecurrentClasses)
	}
}

func TestExploreEquilibriaMatchChecker(t *testing.T) {
	// Every sink the explorer reports must pass the exact equilibrium
	// check, and vice versa over the full space.
	spec := core.MustUniform(4, 1)
	starts, err := AllProfiles(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := &Explorer{Spec: spec, Agg: core.SumDistances}
	space, err := e.Explore(starts)
	if err != nil {
		t.Fatal(err)
	}
	sink := map[string]bool{}
	for _, id := range space.Equilibria {
		p := space.States[id]
		stable, err := core.IsEquilibrium(spec, p, core.SumDistances)
		if err != nil {
			t.Fatal(err)
		}
		if !stable {
			t.Fatalf("sink %v is not an equilibrium", p)
		}
		sink[p.Key()] = true
	}
	for _, p := range starts {
		stable, err := core.IsEquilibrium(spec, p, core.SumDistances)
		if err != nil {
			t.Fatal(err)
		}
		if stable && !sink[p.Key()] {
			t.Fatalf("equilibrium %v not reported as a sink", p)
		}
	}
}

func TestExploreGadgetFindsNoEquilibrium(t *testing.T) {
	// From the gadget's intended states, no best-response walk reaches an
	// equilibrium (there is none), and the reachable set contains at
	// least one recurrent class.
	d := construct.MatchingPennies(construct.DefaultGadgetWeights())
	e := &Explorer{Spec: d, Agg: core.SumDistances, MaxStates: 5000}
	space, err := e.Explore([]core.Profile{
		construct.IntendedGadgetProfile(true, true),
		construct.IntendedGadgetProfile(false, false),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(space.Equilibria) != 0 {
		t.Fatalf("gadget BR space contains %d sinks; it has no pure NE", len(space.Equilibria))
	}
	a := space.Analyze()
	if a.ReachEquilibrium != 0 {
		t.Fatal("no state should reach an equilibrium")
	}
	if !space.Truncated && a.RecurrentClasses == 0 {
		t.Fatal("a complete equilibrium-free BR space must contain a recurrent class")
	}
}

func TestExploreValidation(t *testing.T) {
	spec := core.MustUniform(3, 1)
	e := &Explorer{Spec: spec, Agg: core.SumDistances}
	if _, err := e.Explore(nil); err == nil {
		t.Fatal("expected error for no starts")
	}
	bad := core.Profile{{0}, {}, {}}
	if _, err := e.Explore([]core.Profile{bad}); err == nil {
		t.Fatal("expected error for invalid start")
	}
}

func TestExploreTruncation(t *testing.T) {
	spec := core.MustUniform(6, 2)
	e := &Explorer{Spec: spec, Agg: core.SumDistances, MaxStates: 5}
	space, err := e.Explore([]core.Profile{core.NewEmptyProfile(6)})
	if err != nil {
		t.Fatal(err)
	}
	if !space.Truncated {
		t.Fatal("expected truncation at 5 states")
	}
	if len(space.States) > 6 {
		t.Fatalf("states = %d exceeds cap", len(space.States))
	}
}

func TestFigure4LoopIsReachableInSpace(t *testing.T) {
	// The (7,2) Figure 4 start leads into a cycle; the explored space from
	// that start must contain a recurrent class or at least revisit states
	// (the loop), and may or may not reach equilibria elsewhere.
	spec, start := construct.Figure4Start()
	e := &Explorer{Spec: spec, Agg: core.SumDistances, MaxStates: 3000}
	space, err := e.Explore([]core.Profile{start})
	if err != nil {
		t.Fatal(err)
	}
	if len(space.States) < 3 {
		t.Fatalf("expected a nontrivial explored space, got %d states", len(space.States))
	}
	a := space.Analyze()
	t.Logf("figure-4 space: %d states, %d equilibria, %d reach, %d recurrent states (truncated=%v)",
		a.States, a.Equilibria, a.ReachEquilibrium, a.RecurrentCycleStates, a.Truncated)
}
