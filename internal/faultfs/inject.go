package faultfs

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"sync"
	"syscall"
)

// ErrInjected is the base error of every deliberately injected failure;
// check it with errors.Is to distinguish injected faults from real I/O
// errors in tests.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrashed is returned by every operation after the injector has
// simulated a crash: as far as persistence is concerned, the process is
// dead.
var ErrCrashed = fmt.Errorf("%w: simulated crash", ErrInjected)

// Mode is how an injected fault manifests.
type Mode int

const (
	// ModeFail fails the operation with an I/O-style error; nothing is
	// persisted by the faulted call.
	ModeFail Mode = iota
	// ModeTorn persists only the first TornBytes bytes of a write, then
	// fails — the on-disk file holds a torn prefix.
	ModeTorn
	// ModeENOSPC fails the operation with ENOSPC ("no space left on
	// device"), the canonical transient save error.
	ModeENOSPC
	// ModeDropSync makes a Sync report success without persisting: the
	// bytes written since the last successful sync are silently lost when
	// the crash fires (lost page cache after power failure).
	ModeDropSync
	// ModeShortRead makes a ReadFile return a truncated prefix of the
	// file together with an error (interrupted read).
	ModeShortRead
)

var modeNames = map[Mode]string{
	ModeFail:      "fail",
	ModeTorn:      "torn",
	ModeENOSPC:    "enospc",
	ModeDropSync:  "dropsync",
	ModeShortRead: "shortread",
}

// String returns the mode's stable name.
func (m Mode) String() string {
	if s, ok := modeNames[m]; ok {
		return s
	}
	return "mode?"
}

// Fault injects Mode at the Nth occurrence (1-based) of Op, and at the
// Times-1 following occurrences (Times <= 1 fires exactly once — the
// multi-shot form models transient errors that outlast a few retries).
type Fault struct {
	Op        Op
	Nth       int
	Mode      Mode
	TornBytes int // ModeTorn: bytes of the faulted write that persist
	Times     int
}

// String labels the fault for sweep diagnostics, e.g. "torn@write#3".
func (f Fault) String() string { return fmt.Sprintf("%v@%v#%d", f.Mode, f.Op, f.Nth) }

// Injector wraps an FS and fails deterministic operations according to a
// fault plan. It is safe for concurrent use.
//
// Crash simulation: with CrashOnFault set, the first firing fault also
// freezes persistence — every later operation returns ErrCrashed — so
// the on-disk state a recovery sees is exactly the state at the fault.
// A ModeDropSync fault defers the freeze until the next file-open
// operation: the in-flight save sequence (write, close, rename) still
// completes and publishes the unsynced file, reproducing the classic
// lost-page-cache torn publish. Crash can also be called explicitly.
type Injector struct {
	under        FS
	CrashOnFault bool

	mu     sync.Mutex
	counts [numOps]int
	trace  []Op
	faults []Fault
	fired  int

	crashed bool
	// crashPending defers the crash past the in-flight save sequence
	// (set by ModeDropSync, consumed at the next open-style operation).
	crashPending bool
	// dropped maps path -> last-synced size for files whose fsync was
	// dropped; crashing truncates them to that size.
	dropped map[string]int64

	// rng, when set, fails any operation with probability p (seeded
	// transient noise for retry/robustness tests).
	rng *rand.Rand
	p   float64
}

// NewInjector wraps under (nil = real OS) with a deterministic fault
// plan.
func NewInjector(under FS, faults ...Fault) *Injector {
	return &Injector{under: Or(under), faults: faults, dropped: map[string]int64{}}
}

// Seeded wraps under with seeded random transient failures: every
// operation independently fails (ModeFail) with probability p. The same
// seed reproduces the same failure sequence for the same operation
// sequence.
func Seeded(under FS, seed int64, p float64) *Injector {
	in := NewInjector(under)
	in.rng, in.p = rand.New(rand.NewSource(seed)), p
	return in
}

// Counts returns how many operations of each class have been issued so
// far; a counting pass over a run enumerates its failpoints.
func (in *Injector) Counts() map[Op]int {
	in.mu.Lock()
	defer in.mu.Unlock()
	m := make(map[Op]int, numOps)
	for op, c := range in.counts {
		if c > 0 {
			m[Op(op)] = c
		}
	}
	return m
}

// Trace returns the operation sequence issued so far.
func (in *Injector) Trace() []Op {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Op(nil), in.trace...)
}

// Fired returns how many faults have fired (planned plus seeded).
func (in *Injector) Fired() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// Crash simulates process death plus lost page cache: files whose fsync
// was dropped are truncated back to their last-synced size, and every
// subsequent operation returns ErrCrashed. Idempotent.
func (in *Injector) Crash() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.crashLocked()
}

func (in *Injector) crashLocked() {
	if in.crashed {
		return
	}
	in.crashed = true
	in.crashPending = false
	for path, size := range in.dropped {
		// Lost unsynced data: cut the file back to its durable prefix. A
		// file that no longer exists lost everything already.
		in.under.Truncate(path, size) //nolint:errcheck
	}
	in.dropped = map[string]int64{}
}

// step records one operation and returns the fault to apply to it, if
// any. For a failing-mode fault with CrashOnFault set, the injector is
// crashed for all subsequent operations while the current one still
// executes its faulty behavior (a torn write must persist its prefix).
func (in *Injector) step(op Op) (*Fault, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashPending && (op == OpCreate || op == OpCreateTemp || op == OpOpenAppend) {
		in.crashLocked()
	}
	if in.crashed {
		return nil, ErrCrashed
	}
	in.counts[op]++
	in.trace = append(in.trace, op)
	for i := range in.faults {
		f := &in.faults[i]
		times := f.Times
		if times < 1 {
			times = 1
		}
		if f.Op == op && in.counts[op] >= f.Nth && in.counts[op] < f.Nth+times {
			in.fired++
			if in.CrashOnFault {
				if f.Mode == ModeDropSync {
					in.crashPending = true
				} else {
					// The current op still executes its faulty behavior (it
					// already passed the crashed check); every later op fails.
					in.crashLocked()
				}
			}
			return f, nil
		}
	}
	if in.rng != nil && in.rng.Float64() < in.p {
		in.fired++
		return &Fault{Op: op, Mode: ModeFail}, nil
	}
	return nil, nil
}

// injErr wraps an injected failure with its fault context.
func injErr(f *Fault) error {
	if f.Mode == ModeENOSPC {
		return fmt.Errorf("%w: %v: %w", ErrInjected, *f, syscall.ENOSPC)
	}
	return fmt.Errorf("%w: %v", ErrInjected, *f)
}

// Create implements FS.
func (in *Injector) Create(name string) (File, error) {
	f, err := in.step(OpCreate)
	if err != nil {
		return nil, err
	}
	if f != nil {
		return nil, injErr(f)
	}
	uf, err := in.under.Create(name)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: uf, path: name}, nil
}

// CreateTemp implements FS.
func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	f, err := in.step(OpCreateTemp)
	if err != nil {
		return nil, err
	}
	if f != nil {
		return nil, injErr(f)
	}
	uf, err := in.under.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: uf, path: uf.Name()}, nil
}

// OpenAppend implements FS.
func (in *Injector) OpenAppend(name string) (File, error) {
	f, err := in.step(OpOpenAppend)
	if err != nil {
		return nil, err
	}
	if f != nil {
		return nil, injErr(f)
	}
	var size int64
	if fi, err := in.under.Stat(name); err == nil {
		size = fi.Size()
	}
	uf, err := in.under.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: uf, path: name, size: size, synced: size}, nil
}

// ReadFile implements FS, honoring read faults.
func (in *Injector) ReadFile(name string) ([]byte, error) {
	f, err := in.step(OpRead)
	if err != nil {
		return nil, err
	}
	if f != nil && f.Mode != ModeShortRead {
		return nil, injErr(f)
	}
	data, err := in.under.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if f != nil { // ModeShortRead: a truncated prefix plus the error
		return data[:len(data)/2], injErr(f)
	}
	return data, nil
}

// Rename implements FS, transferring dropped-sync bookkeeping to the new
// path so a later crash truncates the published file.
func (in *Injector) Rename(oldpath, newpath string) error {
	f, err := in.step(OpRename)
	if err != nil {
		return err
	}
	if f != nil {
		return injErr(f)
	}
	if err := in.under.Rename(oldpath, newpath); err != nil {
		return err
	}
	in.mu.Lock()
	if size, ok := in.dropped[oldpath]; ok {
		delete(in.dropped, oldpath)
		in.dropped[newpath] = size
	}
	in.mu.Unlock()
	return nil
}

// Remove implements FS.
func (in *Injector) Remove(name string) error {
	f, err := in.step(OpRemove)
	if err != nil {
		return err
	}
	if f != nil {
		return injErr(f)
	}
	if err := in.under.Remove(name); err != nil {
		return err
	}
	in.mu.Lock()
	delete(in.dropped, name)
	in.mu.Unlock()
	return nil
}

// Stat implements FS.
func (in *Injector) Stat(name string) (fs.FileInfo, error) {
	f, err := in.step(OpStat)
	if err != nil {
		return nil, err
	}
	if f != nil {
		return nil, injErr(f)
	}
	return in.under.Stat(name)
}

// Truncate implements FS.
func (in *Injector) Truncate(name string, size int64) error {
	f, err := in.step(OpTruncate)
	if err != nil {
		return err
	}
	if f != nil {
		return injErr(f)
	}
	return in.under.Truncate(name, size)
}

// injFile wraps an open file, tracking written and synced sizes for
// dropped-sync crash simulation.
type injFile struct {
	in     *Injector
	f      File
	path   string
	size   int64 // bytes in the file, counting this handle's writes
	synced int64 // durable prefix: size at the last successful sync
}

// Name implements File.
func (w *injFile) Name() string { return w.f.Name() }

// Write implements File, honoring write faults (fail, torn, ENOSPC).
func (w *injFile) Write(p []byte) (int, error) {
	f, err := w.in.step(OpWrite)
	if err != nil {
		return 0, err
	}
	if f != nil {
		if f.Mode == ModeTorn {
			keep := f.TornBytes
			if keep > len(p) {
				keep = len(p)
			}
			n, _ := w.f.Write(p[:keep])
			w.size += int64(n)
			return n, injErr(f)
		}
		return 0, injErr(f)
	}
	n, err := w.f.Write(p)
	w.size += int64(n)
	return n, err
}

// Sync implements File, honoring failed and dropped fsyncs.
func (w *injFile) Sync() error {
	f, err := w.in.step(OpSync)
	if err != nil {
		return err
	}
	if f != nil {
		if f.Mode == ModeDropSync {
			// Report success without persisting: the bytes since the last
			// real sync are lost if a crash fires before the next one.
			w.in.mu.Lock()
			if _, ok := w.in.dropped[w.path]; !ok {
				w.in.dropped[w.path] = w.synced
			}
			w.in.mu.Unlock()
			return nil
		}
		return injErr(f)
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.synced = w.size
	w.in.mu.Lock()
	delete(w.in.dropped, w.path)
	w.in.mu.Unlock()
	return nil
}

// Close implements File.
func (w *injFile) Close() error {
	f, err := w.in.step(OpClose)
	if err != nil {
		w.f.Close() //nolint:errcheck // the real handle must not leak
		return err
	}
	if f != nil {
		w.f.Close() //nolint:errcheck
		return injErr(f)
	}
	return w.f.Close()
}
