package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// writeAll drives a full create-write-sync-close-rename save sequence
// through fsys, mirroring what an atomic checkpoint save does.
func writeAll(fsys FS, dir, name string, data []byte) error {
	f, err := fsys.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(tmp, filepath.Join(dir, name))
}

// TestOSRoundTrip pins the real-OS implementation: create, append,
// read, rename, truncate, stat, remove all behave like the os package.
func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fsys := OS{}
	if err := writeAll(fsys, dir, "f", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "f")
	a, err := fsys.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write([]byte(" world")); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := fsys.ReadFile(path)
	if err != nil || string(data) != "hello world" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if err := fsys.Truncate(path, 5); err != nil {
		t.Fatal(err)
	}
	if fi, err := fsys.Stat(path); err != nil || fi.Size() != 5 {
		t.Fatalf("after truncate: size=%v err=%v", fi, err)
	}
	if err := fsys.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("want IsNotExist after remove, got %v", err)
	}
	if Or(nil) != (OS{}) {
		t.Fatal("Or(nil) must be the real OS")
	}
}

// TestInjectFailNthWrite pins the core contract: exactly the Nth write
// fails, everything else passes through.
func TestInjectFailNthWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{}, Fault{Op: OpWrite, Nth: 2, Mode: ModeFail})
	if err := writeAll(in, dir, "a", []byte("one")); err != nil {
		t.Fatalf("write #1 should pass: %v", err)
	}
	err := writeAll(in, dir, "b", []byte("two"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write #2 should fail injected, got %v", err)
	}
	if err := writeAll(in, dir, "c", []byte("three")); err != nil {
		t.Fatalf("write #3 should pass: %v", err)
	}
	if got := in.Fired(); got != 1 {
		t.Fatalf("fired = %d, want 1", got)
	}
	if c := in.Counts()[OpWrite]; c != 3 {
		t.Fatalf("write count = %d, want 3", c)
	}
}

// TestInjectTornWrite: the faulted write persists exactly TornBytes
// bytes and then errors — the on-disk file is a torn prefix.
func TestInjectTornWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{}, Fault{Op: OpWrite, Nth: 1, Mode: ModeTorn, TornBytes: 4})
	f, err := in.CreateTemp(dir, "t-*")
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if n != 4 || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write: n=%d err=%v", n, err)
	}
	f.Close()
	data, _ := os.ReadFile(f.Name())
	if string(data) != "0123" {
		t.Fatalf("on-disk torn prefix = %q, want %q", data, "0123")
	}
}

// TestInjectENOSPC: the injected error chain includes syscall.ENOSPC so
// retry policies can classify it.
func TestInjectENOSPC(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{}, Fault{Op: OpWrite, Nth: 1, Mode: ModeENOSPC})
	err := writeAll(in, dir, "x", []byte("data"))
	if !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, ErrInjected) {
		t.Fatalf("want ENOSPC in chain, got %v", err)
	}
}

// TestInjectDroppedSyncCrash reproduces the classic lost-page-cache torn
// publish: sync silently drops, close and rename succeed, and the crash
// truncates the published file back to its durable prefix (empty here).
func TestInjectDroppedSyncCrash(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{}, Fault{Op: OpSync, Nth: 1, Mode: ModeDropSync})
	if err := writeAll(in, dir, "ckpt", []byte("full snapshot")); err != nil {
		t.Fatalf("the save sequence must appear to succeed: %v", err)
	}
	path := filepath.Join(dir, "ckpt")
	if data, _ := os.ReadFile(path); string(data) != "full snapshot" {
		t.Fatalf("before crash the file looks fine, got %q", data)
	}
	in.Crash()
	data, err := os.ReadFile(path)
	if err != nil || len(data) != 0 {
		t.Fatalf("after crash the unsynced bytes are gone: %q, %v", data, err)
	}
	if err := writeAll(in, dir, "later", []byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash ops must fail with ErrCrashed, got %v", err)
	}
}

// TestInjectSyncedPrefixSurvivesDrop: only bytes written after the last
// successful sync are lost.
func TestInjectSyncedPrefixSurvivesDrop(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{}, Fault{Op: OpSync, Nth: 2, Mode: ModeDropSync})
	f, err := in.Create(filepath.Join(dir, "j"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable|")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil { // sync #1: real
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil { // sync #2: dropped
		t.Fatal(err)
	}
	f.Close()
	in.Crash()
	data, _ := os.ReadFile(filepath.Join(dir, "j"))
	if string(data) != "durable|" {
		t.Fatalf("durable prefix = %q, want %q", data, "durable|")
	}
}

// TestInjectCrashOnFault: with CrashOnFault, persistence freezes at the
// fault — the op trace is the exact failpoint prefix.
func TestInjectCrashOnFault(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{}, Fault{Op: OpRename, Nth: 1, Mode: ModeFail})
	in.CrashOnFault = true
	err := writeAll(in, dir, "a", []byte("one"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("rename fault: %v", err)
	}
	if err := writeAll(in, dir, "b", []byte("two")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("ops after a crash-on-fault must fail with ErrCrashed, got %v", err)
	}
}

// TestInjectShortRead returns a truncated prefix plus an error.
func TestInjectShortRead(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r")
	if err := os.WriteFile(path, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	in := NewInjector(OS{}, Fault{Op: OpRead, Nth: 1, Mode: ModeShortRead})
	data, err := in.ReadFile(path)
	if !errors.Is(err, ErrInjected) || string(data) != "01234" {
		t.Fatalf("short read = %q, %v", data, err)
	}
	data, err = in.ReadFile(path)
	if err != nil || string(data) != "0123456789" {
		t.Fatalf("read #2 should pass: %q, %v", data, err)
	}
}

// TestInjectTransientTimes: Times makes a fault fire on consecutive
// occurrences, modelling a transient error that outlasts some retries.
func TestInjectTransientTimes(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{}, Fault{Op: OpCreateTemp, Nth: 1, Mode: ModeFail, Times: 2})
	for i := 0; i < 2; i++ {
		if err := writeAll(in, dir, "f", []byte("x")); !errors.Is(err, ErrInjected) {
			t.Fatalf("attempt %d should fail, got %v", i+1, err)
		}
	}
	if err := writeAll(in, dir, "f", []byte("x")); err != nil {
		t.Fatalf("attempt 3 should succeed: %v", err)
	}
}

// TestSeededDeterminism: the same seed over the same op sequence yields
// the same failure pattern.
func TestSeededDeterminism(t *testing.T) {
	runSeq := func(seed int64) []bool {
		dir := t.TempDir()
		in := Seeded(OS{}, seed, 0.3)
		var fails []bool
		for i := 0; i < 40; i++ {
			fails = append(fails, writeAll(in, dir, "f", []byte("x")) != nil)
		}
		return fails
	}
	a, b, c := runSeq(7), runSeq(7), runSeq(8)
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	same := true
	diff := false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed must reproduce the same failure sequence")
	}
	if !diff {
		t.Fatal("different seeds should differ somewhere in 40 sequences")
	}
}

// TestRenameTransfersDroppedBookkeeping: a dropped-sync temp file that
// is renamed into place is truncated at its published path on crash.
func TestRenameTransfersDroppedBookkeeping(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{}, Fault{Op: OpSync, Nth: 1, Mode: ModeDropSync})
	if err := writeAll(in, dir, "ckpt", []byte("snapshot-bytes")); err != nil {
		t.Fatal(err)
	}
	in.Crash()
	fi, err := os.Stat(filepath.Join(dir, "ckpt"))
	if err != nil || fi.Size() != 0 {
		t.Fatalf("published path must be truncated on crash: %v, %v", fi, err)
	}
}
